package mica

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// reducedStoreBenchSet is a 3-benchmark slice of the tracked reduced
// set — enough suites (branchy SPEC, hashing, FP) to make the
// clustering non-trivial while keeping the exact-profile oracle runs
// affordable in tier-1.
var reducedStoreBenchSet = []string{
	"SPEC2000/gzip/program",
	"MiBench/sha/large",
	"MiBench/FFT/fft-large",
}

// TestReducedStoreHashDisjoint: reduced shards must never be adopted
// by the plain store pipeline or vice versa, and the sampling fraction
// is part of the reduced stamp.
func TestReducedStoreHashDisjoint(t *testing.T) {
	cfg := reducedAcceptanceConfig().WithDefaults()
	if reducedStoreHash(cfg) == phaseConfigHash(cfg.CheapConfig()) {
		t.Error("reduced store stamp collides with the plain phase stamp")
	}
	sampled := cfg
	sampled.SampleFrac = 0.5
	if reducedStoreHash(cfg) == reducedStoreHash(sampled) {
		t.Error("changing SampleFrac does not change the reduced store stamp")
	}
	if reducedStoreHash(cfg) != reducedStoreHash(cfg) {
		t.Error("reduced store stamp is not deterministic")
	}
}

// TestAnalyzeReducedStoreMatchesInMemory is the store-backed reduced
// acceptance differential: on real registry benchmarks at the tracked
// configuration, the store-backed per-benchmark reduction must agree
// with the in-memory pipeline (same K, extrapolations within the
// pipeline's own 5% bound) and stay within the 5% per-metric bound of
// the exact matched-grid oracle — the same bound the in-memory path
// is held to.
func TestAnalyzeReducedStoreMatchesInMemory(t *testing.T) {
	bs := storeBenchmarks(t, reducedStoreBenchSet...)
	cfg := ReducedPipelineConfig{Reduced: reducedAcceptanceConfig(), Workers: 2}

	want, err := AnalyzeReducedBenchmarks(bs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := AnalyzeReducedStore(bs, cfg, StoreOptions{Dir: filepath.Join(t.TempDir(), "store")})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Characterized) != len(bs) {
		t.Fatalf("fresh reduced store build characterized %v, want all %d", stats.Characterized, len(bs))
	}
	if stats.Cache.Decodes == 0 || stats.Cache.PeakBytes == 0 {
		t.Errorf("cache accounting empty after store-backed replay: %+v", stats.Cache)
	}

	for i, b := range bs {
		g, w := got[i].Result, want[i].Result
		if g == nil {
			t.Fatalf("%s: no store-backed result", b.Name())
		}
		if g.Phases.K != w.Phases.K {
			t.Errorf("%s: store-backed K=%d, in-memory K=%d", b.Name(), g.Phases.K, w.Phases.K)
		}
		if d := maxRelDiff(g.Chars[:], w.Chars[:]); d > 0.05 {
			t.Errorf("%s: store-backed characteristics deviate %.4f from in-memory (>5%%)", b.Name(), d)
		}
		if d := maxRelDiff(g.HPC[:], w.HPC[:]); d > 0.05 {
			t.Errorf("%s: store-backed HPC deviates %.4f from in-memory (>5%%)", b.Name(), d)
		}

		// Against the exact oracle: the acceptance bound the in-memory
		// pipeline is held to applies unchanged.
		ex, err := ProfileExact(b, cfg.Reduced)
		if err != nil {
			t.Fatal(err)
		}
		for c, e := range g.CharErrors(ex) {
			if e > 0.05 {
				t.Errorf("%s: characteristic %s extrapolates with %.2f%% relative error (>5%%)",
					b.Name(), CharName(c), e*100)
			}
		}
		for c, e := range g.HPCErrors(ex) {
			if e > 0.05 {
				t.Errorf("%s: HPC metric %s extrapolates with %.2f%% relative error (>5%%)",
					b.Name(), HPCMetricName(c), e*100)
			}
		}
	}
}

// TestAnalyzeReducedJointStoreMatchesInMemory: the store-backed joint
// reduction agrees with the in-memory joint reduction on a real set —
// same benchmark coverage, extrapolations within the shared 5% bound.
func TestAnalyzeReducedJointStoreMatchesInMemory(t *testing.T) {
	bs := storeBenchmarks(t, reducedStoreBenchSet...)
	cfg := ReducedPipelineConfig{Reduced: reducedAcceptanceConfig(), Workers: 2}

	want, err := AnalyzeReducedJoint(bs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := AnalyzeReducedJointStore(bs, cfg, StoreOptions{Dir: filepath.Join(t.TempDir(), "store")})
	if err != nil {
		t.Fatal(err)
	}
	if stats.WarmStarted {
		t.Error("fresh joint store run claims a warm start")
	}
	if !reflect.DeepEqual(got.Joint.Benchmarks, want.Joint.Benchmarks) {
		t.Fatalf("store-backed joint reduction covers %v, in-memory %v", got.Joint.Benchmarks, want.Joint.Benchmarks)
	}
	if got.Joint.Vectors != nil {
		t.Error("store-backed joint reduction materialized the joint matrix")
	}
	for i, name := range got.Joint.Benchmarks {
		if d := maxRelDiff(got.Chars[i][:], want.Chars[i][:]); d > 0.05 {
			t.Errorf("%s: store-backed joint characteristics deviate %.4f from in-memory (>5%%)", name, d)
		}
		if d := maxRelDiff(got.HPC[i][:], want.HPC[i][:]); d > 0.05 {
			t.Errorf("%s: store-backed joint HPC deviates %.4f from in-memory (>5%%)", name, d)
		}
	}
}

// TestJointStoreWarmStartIncremental is the warm-start acceptance
// regression: an incremental rerun after a one-benchmark change
// re-characterizes exactly that benchmark, takes the warm path, and
// converges to the fresh-start vocabulary's K.
func TestJointStoreWarmStartIncremental(t *testing.T) {
	names := []string{"MiBench/sha/large", "CommBench/drr/drr", "SPEC2000/gzip/program"}
	bs := storeBenchmarks(t, names...)
	dir := filepath.Join(t.TempDir(), "store")
	profiled := 0
	pcfg := PhasePipelineConfig{
		Phase:    storeTestConfig,
		Workers:  1,
		Progress: func(done, total int, name string) { profiled++ },
	}
	opt := StoreOptions{Dir: dir, Incremental: true, WarmStart: true}

	fresh, stats, err := AnalyzePhasesJointStore(bs, pcfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if stats.WarmStarted {
		t.Error("fresh build claims a warm start (no state existed)")
	}
	if _, err := os.Stat(filepath.Join(dir, warmAuxName)); err != nil {
		t.Fatalf("warm state not persisted next to the store: %v", err)
	}

	// Unchanged rerun: everything reused, warm path taken, identical K.
	profiled = 0
	again, stats, err := AnalyzePhasesJointStore(bs, pcfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if profiled != 0 || len(stats.Reused) != len(bs) {
		t.Fatalf("unchanged rerun profiled %d, stats %+v", profiled, stats)
	}
	if !stats.WarmStarted {
		t.Error("unchanged rerun did not take the warm path")
	}
	if again.K != fresh.K {
		t.Errorf("warm rerun chose K=%d, fresh K=%d", again.K, fresh.K)
	}
	if !reflect.DeepEqual(again.Assign, fresh.Assign) {
		t.Error("warm rerun on identical data changed the assignment")
	}

	// One-benchmark change (vanished shard): exactly it is rebuilt, the
	// warm state still applies (the data is re-characterized
	// identically, so the statistics have not drifted), and the
	// vocabulary converges to the fresh K.
	if err := os.Remove(filepath.Join(dir, shardFileOf(t, dir, names[1]))); err != nil {
		t.Fatal(err)
	}
	profiled = 0
	warm, stats, err := AnalyzePhasesJointStore(bs, pcfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if profiled != 1 || !reflect.DeepEqual(stats.Characterized, []string{names[1]}) {
		t.Fatalf("one-benchmark change re-characterized %v (progress %d), want just %s",
			stats.Characterized, profiled, names[1])
	}
	if !stats.WarmStarted {
		t.Error("incremental rerun did not take the warm path")
	}
	if warm.K != fresh.K {
		t.Errorf("incremental warm rerun chose K=%d, fresh K=%d", warm.K, fresh.K)
	}

	// A configuration change invalidates the warm state along with the
	// shards (the stamp changed), falling back to fresh seeding.
	changed := pcfg
	changed.Phase.IntervalLen = 600
	_, stats, err = AnalyzePhasesJointStore(bs, changed, opt)
	if err != nil {
		t.Fatal(err)
	}
	if stats.WarmStarted {
		t.Error("config change reused a stale warm state")
	}
}

// maxRelDiff is the largest per-element relative difference, with the
// same tiny-denominator guard the pipeline's error scoring uses.
func maxRelDiff(got, want []float64) float64 {
	worst := 0.0
	for i := range got {
		den := math.Abs(want[i])
		if den < 1e-9 {
			den = 1e-9
		}
		if d := math.Abs(got[i]-want[i]) / den; d > worst {
			worst = d
		}
	}
	return worst
}
