package mica

import (
	"math"
	"testing"
)

func TestAnalyzePhasesOnRegistryBenchmark(t *testing.T) {
	b, err := BenchmarkByName("SPEC2000/twolf/ref")
	if err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzePhases(b, PhaseConfig{
		IntervalLen:  5_000,
		MaxIntervals: 20,
		MaxK:         5,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals) != 20 {
		t.Fatalf("got %d intervals", len(res.Intervals))
	}
	if res.K < 1 || res.K > 5 {
		t.Errorf("K = %d out of range", res.K)
	}
	sum := 0.0
	for _, rep := range res.Representatives {
		sum += rep.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("representative weights sum to %g", sum)
	}
}

func TestAnalyzePhasesDefaultsApplied(t *testing.T) {
	b, err := BenchmarkByName("MiBench/sha/large")
	if err != nil {
		t.Fatal(err)
	}
	// Zero-valued config: defaults must kick in (including profiler
	// options with memory-dependence tracking).
	res, err := AnalyzePhases(b, PhaseConfig{MaxIntervals: 5, IntervalLen: 2_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals) != 5 {
		t.Fatalf("got %d intervals", len(res.Intervals))
	}
	// sha's PPM accuracy must be measured (non-zero) under defaults.
	if res.Intervals[0].Vec[43] == 0 {
		t.Error("PPM characteristics not measured with default options")
	}
}

func BenchmarkPhaseAnalysis(b *testing.B) {
	bench, err := BenchmarkByName("SPEC2000/twolf/ref")
	if err != nil {
		b.Fatal(err)
	}
	var k int
	for i := 0; i < b.N; i++ {
		res, err := AnalyzePhases(bench, PhaseConfig{
			IntervalLen:  5_000,
			MaxIntervals: 20,
			MaxK:         6,
			Seed:         int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		k = res.K
	}
	b.ReportMetric(float64(k), "phases")
}
