package mica

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"mica/internal/phases"
)

func TestAnalyzePhasesOnRegistryBenchmark(t *testing.T) {
	b, err := BenchmarkByName("SPEC2000/twolf/ref")
	if err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzePhases(b, PhaseConfig{
		IntervalLen:  5_000,
		MaxIntervals: 20,
		MaxK:         5,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals) != 20 {
		t.Fatalf("got %d intervals", len(res.Intervals))
	}
	if res.K < 1 || res.K > 5 {
		t.Errorf("K = %d out of range", res.K)
	}
	sum := 0.0
	for _, rep := range res.Representatives {
		sum += rep.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("representative weights sum to %g", sum)
	}
}

func TestAnalyzePhasesDefaultsApplied(t *testing.T) {
	b, err := BenchmarkByName("MiBench/sha/large")
	if err != nil {
		t.Fatal(err)
	}
	// Zero-valued config: defaults must kick in (including profiler
	// options with memory-dependence tracking).
	res, err := AnalyzePhases(b, PhaseConfig{MaxIntervals: 5, IntervalLen: 2_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals) != 5 {
		t.Fatalf("got %d intervals", len(res.Intervals))
	}
	// sha's PPM accuracy must be measured (non-zero) under defaults.
	if res.Vectors.At(0, 43) == 0 {
		t.Error("PPM characteristics not measured with default options")
	}
}

// TestAnalyzePhasesHonorsOptions is the regression test for the option
// clobbering bug: AnalyzePhases used to replace the caller's entire
// Options struct whenever PPMOrder was zero, silently discarding Subset
// (and a disabled mem-deps setting). A subset restricted to the
// instruction mix must keep every non-mix characteristic at zero.
func TestAnalyzePhasesHonorsOptions(t *testing.T) {
	b, err := BenchmarkByName("MiBench/sha/large")
	if err != nil {
		t.Fatal(err)
	}
	subset := make([]bool, NumChars)
	for c := 0; c < 6; c++ { // instruction mix only
		subset[c] = true
	}
	cfg := PhaseConfig{MaxIntervals: 4, IntervalLen: 2_000}
	cfg.Options.Subset = subset
	res, err := AnalyzePhases(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Intervals {
		for c := 6; c < NumChars; c++ {
			if res.Vectors.At(i, c) != 0 {
				t.Fatalf("interval %d: %s measured despite mix-only subset (Options clobbered)",
					i, CharName(c))
			}
		}
		if res.Vectors.At(i, 0) == 0 && res.Vectors.At(i, 3) == 0 {
			t.Fatalf("interval %d: selected mix characteristics not measured", i)
		}
	}

}

// TestAnalyzePhasesAllRegistryPaperScale is the acceptance test for the
// registry-wide pipeline: the full 122-benchmark registry at >= 1000
// intervals per benchmark under the fixed worker pool, with results in
// Table I order and bit-identical to the unpooled per-interval-profiler
// reference path on sampled benchmarks.
func TestAnalyzePhasesAllRegistryPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale registry sweep skipped in -short mode")
	}
	pcfg := PhaseConfig{IntervalLen: 400, MaxIntervals: 1000, MaxK: 3, Seed: 2006}
	cfg := PhasePipelineConfig{Phase: pcfg, Workers: 4}
	results, err := AnalyzePhasesAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	all := Benchmarks()
	if len(results) != len(all) {
		t.Fatalf("got %d results, want %d", len(results), len(all))
	}
	full := 0
	for i, r := range results {
		if r.Benchmark.Name() != all[i].Name() {
			t.Fatalf("result %d is %s, want Table I order (%s)", i, r.Benchmark.Name(), all[i].Name())
		}
		if len(r.Result.Intervals) == 0 {
			t.Fatalf("%s: no intervals", r.Benchmark.Name())
		}
		if len(r.Result.Intervals) == pcfg.MaxIntervals {
			full++
		}
	}
	if full < len(all)*9/10 {
		t.Errorf("only %d/%d benchmarks reached %d intervals", full, len(all), pcfg.MaxIntervals)
	}

	// Differential check against the unpooled reference on a sample
	// spanning suites and kernel families.
	for _, name := range []string{
		"SPEC2000/gzip/program", "MediaBench/mpeg2/encode", "BioInfoMark/blast/protein",
	} {
		var got *PhaseResult
		for _, r := range results {
			if r.Benchmark.Name() == name {
				got = r.Result
				break
			}
		}
		if got == nil {
			t.Fatalf("%s missing from registry results", name)
		}
		b, err := BenchmarkByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := b.Instantiate()
		if err != nil {
			t.Fatal(err)
		}
		want, err := phases.AnalyzeUnpooled(m, pcfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: pipeline result diverges from unpooled reference", name)
		}
	}
}

// TestAnalyzePhasesBenchmarksOrder covers the pipeline at small scale:
// input order preserved and per-benchmark results equal to the
// single-benchmark entry point.
func TestAnalyzePhasesBenchmarksOrder(t *testing.T) {
	names := []string{"MiBench/sha/large", "SPEC2000/gzip/program", "CommBench/drr/drr"}
	bs := make([]Benchmark, len(names))
	for i, n := range names {
		b, err := BenchmarkByName(n)
		if err != nil {
			t.Fatal(err)
		}
		bs[i] = b
	}
	pcfg := PhaseConfig{IntervalLen: 1_000, MaxIntervals: 12, MaxK: 3, Seed: 9}
	var seen []string
	results, err := AnalyzePhasesBenchmarks(bs, PhasePipelineConfig{
		Phase:   pcfg,
		Workers: 2,
		Progress: func(done, total int, name string) {
			seen = append(seen, name)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(bs) || len(seen) != len(bs) {
		t.Fatalf("got %d results, %d progress calls", len(results), len(seen))
	}
	for i, r := range results {
		if r.Benchmark.Name() != names[i] {
			t.Errorf("result %d is %s, want %s", i, r.Benchmark.Name(), names[i])
		}
		single, err := AnalyzePhases(bs[i], pcfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r.Result, single) {
			t.Errorf("%s: pipeline result diverges from AnalyzePhases", names[i])
		}
	}
}

// TestAnalyzePhasesBenchmarksReportsErrors pins the pipeline's error
// aggregation: an instantiation failure anywhere in the batch surfaces
// as an error naming the broken benchmark, and a broken entry does not
// take down its worker's remaining shard silently.
func TestAnalyzePhasesBenchmarksReportsErrors(t *testing.T) {
	good, err := BenchmarkByName("MiBench/sha/large")
	if err != nil {
		t.Fatal(err)
	}
	broken := good
	broken.Kernel = "no-such-kernel"
	_, err = AnalyzePhasesBenchmarks([]Benchmark{good, broken}, PhasePipelineConfig{
		Phase:   PhaseConfig{IntervalLen: 500, MaxIntervals: 3, MaxK: 2, Seed: 1},
		Workers: 1,
	})
	if err == nil {
		t.Fatal("broken benchmark accepted")
	}
	if !strings.Contains(err.Error(), "no-such-kernel") && !strings.Contains(err.Error(), good.Name()) {
		t.Errorf("error does not identify the failure: %v", err)
	}
}

func BenchmarkPhaseAnalysis(b *testing.B) {
	bench, err := BenchmarkByName("SPEC2000/twolf/ref")
	if err != nil {
		b.Fatal(err)
	}
	var k int
	for i := 0; i < b.N; i++ {
		res, err := AnalyzePhases(bench, PhaseConfig{
			IntervalLen:  5_000,
			MaxIntervals: 20,
			MaxK:         6,
			Seed:         int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		k = res.K
	}
	b.ReportMetric(float64(k), "phases")
}
