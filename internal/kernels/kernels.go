// Package kernels provides the workload kernel library: small assembly
// programs for the synthetic ISA that stand in for the 122 real
// benchmarks of Table I. Each kernel is a real program with data-dependent
// control flow and memory behaviour — compression, entropy coding,
// checksums, DSP transforms, graph algorithms, sequence alignment,
// floating-point solvers — parameterized by input size and seed so that
// one kernel can back several benchmark/input pairs.
//
// Kernels are written as infinite outer loops: the VM's instruction
// budget determines the trace length, mirroring how the paper's traces
// cover a benchmark's dynamic execution.
package kernels

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"mica/internal/asm"
	"mica/internal/isa"
	"mica/internal/vm"
)

// Params configures one kernel instantiation.
type Params struct {
	// Size is the primary input size (meaning is kernel-specific:
	// bytes, elements, nodes, ...). Zero selects the kernel default.
	Size int
	// Seed drives deterministic input generation.
	Seed uint64
	// Variant selects kernel-specific behaviour flavours (e.g. encode
	// versus decode); kernels ignore it unless documented.
	Variant int
}

// Kernel is one workload program plus its input builder.
type Kernel struct {
	// Name identifies the kernel.
	Name string
	// Prog is the assembled program.
	Prog *isa.Program
	// DefaultSize is used when Params.Size is zero.
	DefaultSize int
	// MaxSize bounds Params.Size (input buffers are statically sized).
	MaxSize int
	// Setup writes the input data and parameter block for p into the
	// machine's memory.
	Setup func(m *vm.Machine, p Params) error
}

// Instantiate creates a Machine loaded with the kernel and its inputs.
func (k *Kernel) Instantiate(p Params) (*vm.Machine, error) {
	if p.Size == 0 {
		p.Size = k.DefaultSize
	}
	if p.Size < 1 || p.Size > k.MaxSize {
		return nil, fmt.Errorf("kernels: %s size %d out of range [1, %d]", k.Name, p.Size, k.MaxSize)
	}
	m := vm.New(k.Prog)
	if err := k.Setup(m, p); err != nil {
		return nil, fmt.Errorf("kernels: %s setup: %w", k.Name, err)
	}
	return m, nil
}

var registry = map[string]*Kernel{}

// register adds a kernel at init time; name collisions are programming
// errors.
func register(k *Kernel) *Kernel {
	if _, dup := registry[k.Name]; dup {
		panic("kernels: duplicate kernel " + k.Name)
	}
	registry[k.Name] = k
	return k
}

// ByName returns the named kernel.
func ByName(name string) (*Kernel, error) {
	k, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("kernels: unknown kernel %q", name)
	}
	return k, nil
}

// Names returns all kernel names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// mustKernel assembles a kernel source at init time.
func mustKernel(name, source string, defaultSize, maxSize int,
	setup func(m *vm.Machine, p Params) error) *Kernel {
	return register(&Kernel{
		Name:        name,
		Prog:        asm.MustAssemble(name, source),
		DefaultSize: defaultSize,
		MaxSize:     maxSize,
		Setup:       setup,
	})
}

// rng is a splitmix64 generator for deterministic input data.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed ^ 0x9e3779b97f4a7c15} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) float01() float64 { return float64(r.next()>>11) / (1 << 53) }

// writeParams stores 64-bit parameter slots at the kernel's "params"
// symbol.
func writeParams(m *vm.Machine, vals ...uint64) {
	base := m.Program().MustSymbol("params")
	for i, v := range vals {
		m.Mem.WriteUint(base+uint64(i*8), 8, v)
	}
}

// writeQuads stores 64-bit values starting at a symbol. Values are
// encoded into one buffer and stored with a single page-granular write;
// large kernels (the megabyte pointer-chase rings) build their data
// segments on every Instantiate, so this path is part of end-to-end
// profiling throughput.
func writeQuads(m *vm.Machine, sym string, vals []uint64) {
	base := m.Program().MustSymbol(sym)
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], v)
	}
	m.Mem.Write(base, buf)
}

// writeBytes stores raw bytes starting at a symbol.
func writeBytes(m *vm.Machine, sym string, data []byte) {
	m.Mem.Write(m.Program().MustSymbol(sym), data)
}

// writeFloats stores float64 values starting at a symbol.
func writeFloats(m *vm.Machine, sym string, vals []float64) {
	base := m.Program().MustSymbol(sym)
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], floatBits(v))
	}
	m.Mem.Write(base, buf)
}

func floatBits(v float64) uint64 { return math.Float64bits(v) }
