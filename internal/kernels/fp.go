package kernels

import (
	"math"

	"mica/internal/vm"
)

// FFT is an iterative radix-2 complex FFT over double-precision arrays
// with a precomputed twiddle table: the floating-point butterfly loops of
// MiBench's FFT, lame/mad's filterbanks and SPEC's lucas. Size is the
// transform length (rounded down to a power of two, minimum 64).
var FFT = mustKernel("fft", `
	.data
params:	.space 64		# [0]=n
re:	.space 65536
im:	.space 65536
wre:	.space 32768
wim:	.space 32768
	.text
main:
outer:	lda	r1, params
	ldq	r16, 0(r1)	# n
	lda	r2, re
	lda	r3, im
	lda	r4, wre
	lda	r5, wim
	lda	r6, 2		# len
stage:	srl	r6, 1, r7	# half
	divq	r16, r6, r8	# twiddle stride
	lda	r9, 0		# group base i
group:	lda	r10, 0		# j
bfly:	mulq	r10, r8, r11	# twiddle index
	s8addq	r11, r4, r12
	ldt	f1, 0(r12)	# wr
	s8addq	r11, r5, r12
	ldt	f2, 0(r12)	# wi
	addq	r9, r10, r13	# a
	addq	r13, r7, r14	# b
	s8addq	r14, r2, r15
	ldt	f3, 0(r15)	# re[b]
	s8addq	r14, r3, r18
	ldt	f4, 0(r18)	# im[b]
	mult	f3, f1, f5
	mult	f4, f2, f6
	subt	f5, f6, f5	# tr
	mult	f3, f2, f6
	mult	f4, f1, f7
	addt	f6, f7, f6	# ti
	s8addq	r13, r2, r19
	ldt	f8, 0(r19)	# re[a]
	s8addq	r13, r3, r20
	ldt	f9, 0(r20)	# im[a]
	subt	f8, f5, f10
	stt	f10, 0(r15)
	subt	f9, f6, f10
	stt	f10, 0(r18)
	addt	f8, f5, f10
	stt	f10, 0(r19)
	addt	f9, f6, f10
	stt	f10, 0(r20)
	addq	r10, 1, r10
	subq	r7, r10, r11
	bgt	r11, bfly
	addq	r9, r6, r9
	subq	r16, r9, r11
	bgt	r11, group
	sll	r6, 1, r6
	subq	r6, r16, r11
	ble	r11, stage
	br	outer
`, 2048, 8192, func(m *vm.Machine, p Params) error {
	n := 64
	for n*2 <= p.Size && n < 8192 {
		n *= 2
	}
	r := newRNG(p.Seed)
	re := make([]float64, n)
	im := make([]float64, n)
	for i := range re {
		re[i] = r.float01()*2 - 1
		im[i] = r.float01()*2 - 1
	}
	writeFloats(m, "re", re)
	writeFloats(m, "im", im)
	wre := make([]float64, n/2)
	wim := make([]float64, n/2)
	for k := range wre {
		ang := 2 * math.Pi * float64(k) / float64(n)
		wre[k] = math.Cos(ang)
		wim[k] = -math.Sin(ang)
	}
	writeFloats(m, "wre", wre)
	writeFloats(m, "wim", wim)
	writeParams(m, uint64(n))
	return nil
})

// Stencil5 is the 2-D five-point relaxation sweep at the heart of SPEC
// CPU2000's swim/mgrid/applu: regular strided double-precision loads,
// a multiply-add per point, and near-perfect spatial locality. Size is
// the square grid edge length.
var Stencil5 = mustKernel("stencil5", `
	.data
params:	.space 64		# [0]=n
grid:	.space 524288		# n x n doubles (n <= 256)
outg:	.space 524288
coef:	.space 8
	.text
main:
outer:	lda	r1, params
	ldq	r16, 0(r1)	# n
	lda	r2, grid
	lda	r3, outg
	lda	r4, coef
	ldt	f1, 0(r4)	# 0.2
	lda	r5, 1		# y
yloop:	lda	r6, 1		# x
	mulq	r5, r16, r7	# row offset
xloop:	addq	r7, r6, r8	# idx
	s8addq	r8, r2, r9	# &in[y][x]
	ldt	f2, 0(r9)
	ldt	f3, -8(r9)
	ldt	f4, 8(r9)
	addt	f2, f3, f2
	addt	f2, f4, f2
	sll	r16, 3, r10	# row bytes
	subq	r9, r10, r11
	ldt	f5, 0(r11)	# north
	addq	r9, r10, r11
	ldt	f6, 0(r11)	# south
	addt	f2, f5, f2
	addt	f2, f6, f2
	mult	f2, f1, f2
	s8addq	r8, r3, r9
	stt	f2, 0(r9)
	addq	r6, 1, r6
	subq	r16, r6, r8
	subq	r8, 1, r8
	bgt	r8, xloop
	addq	r5, 1, r5
	subq	r16, r5, r8
	subq	r8, 1, r8
	bgt	r8, yloop
	br	outer
`, 128, 256, func(m *vm.Machine, p Params) error {
	r := newRNG(p.Seed)
	n := p.Size
	grid := make([]float64, n*n)
	for i := range grid {
		grid[i] = r.float01()
	}
	writeFloats(m, "grid", grid)
	writeFloats(m, "coef", []float64{0.2})
	writeParams(m, uint64(n))
	return nil
})

// MatMul is dense double-precision matrix multiplication (csu's subspace
// projections, facerec, wupwise): the classic ijk triple loop with a
// multiply-add recurrence on the accumulator. Size is the matrix edge
// length. Variant 1 walks B transposed (sequential rather than strided),
// the access shape of covariance/Gram-matrix computations like csu's
// subspace training — a distinctly different stride signature.
var MatMul = mustKernel("matmul", `
	.data
params:	.space 64		# [0]=n  [1]=transposed B
ma:	.space 131072		# n x n doubles (n <= 128)
mb:	.space 131072
mc:	.space 131072
	.text
main:
outer:	lda	r1, params
	ldq	r16, 0(r1)	# n
	ldq	r17, 8(r1)	# transposed flag
	lda	r2, ma
	lda	r3, mb
	lda	r4, mc
	lda	r5, 0		# i
iloop:	lda	r6, 0		# j
jloop:	fmov	f31, f1		# acc = 0
	lda	r7, 0		# k
	mulq	r5, r16, r8	# row i offset
	mulq	r6, r16, r11	# row j offset (transposed walk)
kloop:	addq	r8, r7, r9	# a[i][k]
	s8addq	r9, r2, r9
	ldt	f2, 0(r9)
	bne	r17, bt
	mulq	r7, r16, r10
	addq	r10, r6, r10	# b[k][j] (strided)
	br	bgo
bt:	addq	r11, r7, r10	# b[j][k] (sequential)
bgo:	s8addq	r10, r3, r10
	ldt	f3, 0(r10)
	mult	f2, f3, f4
	addt	f1, f4, f1
	addq	r7, 1, r7
	subq	r16, r7, r9
	bgt	r9, kloop
	addq	r8, r6, r9	# c[i][j]
	s8addq	r9, r4, r9
	stt	f1, 0(r9)
	addq	r6, 1, r6
	subq	r16, r6, r9
	bgt	r9, jloop
	addq	r5, 1, r5
	subq	r16, r5, r9
	bgt	r9, iloop
	br	outer
`, 64, 128, func(m *vm.Machine, p Params) error {
	r := newRNG(p.Seed)
	n := p.Size
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := range a {
		a[i] = r.float01()
		b[i] = r.float01()
	}
	writeFloats(m, "ma", a)
	writeFloats(m, "mb", b)
	writeParams(m, uint64(n), uint64(p.Variant))
	return nil
})

// NBody is the all-pairs gravitational force kernel of molecular/particle
// codes (ammp, fma3d, eon's shading loops): per pair, subtractions,
// multiply-adds, one square root and one divide — heavy FP with long
// latencies. Size is the particle count.
var NBody = mustKernel("nbody", `
	.data
params:	.space 64		# [0]=n
px:	.space 32768
py:	.space 32768
pz:	.space 32768
fx:	.space 32768
eps:	.space 8
	.text
main:
outer:	lda	r1, params
	ldq	r16, 0(r1)	# n
	lda	r2, px
	lda	r3, py
	lda	r4, pz
	lda	r5, fx
	lda	r6, eps
	ldt	f1, 0(r6)	# epsilon
	lda	r7, 0		# i
iloop:	s8addq	r7, r2, r8
	ldt	f2, 0(r8)	# xi
	s8addq	r7, r3, r8
	ldt	f3, 0(r8)	# yi
	s8addq	r7, r4, r8
	ldt	f4, 0(r8)	# zi
	fmov	f31, f5		# force accumulator
	lda	r9, 0		# j
jloop:	s8addq	r9, r2, r10
	ldt	f6, 0(r10)
	subt	f6, f2, f6	# dx
	s8addq	r9, r3, r10
	ldt	f7, 0(r10)
	subt	f7, f3, f7	# dy
	s8addq	r9, r4, r10
	ldt	f8, 0(r10)
	subt	f8, f4, f8	# dz
	mult	f6, f6, f9
	mult	f7, f7, f10
	addt	f9, f10, f9
	mult	f8, f8, f10
	addt	f9, f10, f9
	addt	f9, f1, f9	# r2 + eps
	sqrtt	f9, f10		# r
	mult	f9, f10, f9	# r^3
	divt	f6, f9, f10	# dx / r^3
	addt	f5, f10, f5
	addq	r9, 1, r9
	subq	r16, r9, r10
	bgt	r10, jloop
	s8addq	r7, r5, r8
	stt	f5, 0(r8)
	addq	r7, 1, r7
	subq	r16, r7, r8
	bgt	r8, iloop
	br	outer
`, 256, 4096, func(m *vm.Machine, p Params) error {
	r := newRNG(p.Seed)
	n := p.Size
	xs := make([]float64, n)
	ys := make([]float64, n)
	zs := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = r.float01() * 10
		ys[i] = r.float01() * 10
		zs[i] = r.float01() * 10
	}
	writeFloats(m, "px", xs)
	writeFloats(m, "py", ys)
	writeFloats(m, "pz", zs)
	writeFloats(m, "eps", []float64{1e-6})
	writeParams(m, uint64(n))
	return nil
})

// Neural is the art-style neural-network evaluation: stream a large
// weight matrix through a dot-product per output neuron, find the winner,
// and update the winning row — large-footprint sequential FP reads with
// poor temporal locality, exactly what makes art an outlier in the paper.
// Size is the input dimension; the network has Size/4 output neurons.
var Neural = mustKernel("neural", `
	.data
params:	.space 64		# [0]=inputs  [1]=neurons
weights:	.space 4194304	# neurons x inputs doubles
input:	.space 32768
activ:	.space 8192
rate:	.space 8
	.text
main:
outer:	lda	r1, params
	ldq	r16, 0(r1)	# inputs
	ldq	r17, 8(r1)	# neurons
	lda	r2, weights
	lda	r3, input
	lda	r4, activ
	lda	r5, 0		# neuron j
nloop:	fmov	f31, f1		# dot = 0
	mulq	r5, r16, r6	# row offset
	lda	r7, 0		# i
dloop:	addq	r6, r7, r8
	s8addq	r8, r2, r8
	ldt	f2, 0(r8)	# w[j][i]
	s8addq	r7, r3, r9
	ldt	f3, 0(r9)	# x[i]
	mult	f2, f3, f4
	addt	f1, f4, f1
	addq	r7, 1, r7
	subq	r16, r7, r8
	bgt	r8, dloop
	s8addq	r5, r4, r8
	stt	f1, 0(r8)
	addq	r5, 1, r5
	subq	r17, r5, r8
	bgt	r8, nloop
	# winner-take-all scan
	lda	r5, 1
	lda	r9, 0		# argmax
	ldt	f1, 0(r4)	# max
wloop:	s8addq	r5, r4, r8
	ldt	f2, 0(r8)
	subt	f2, f1, f3
	fblt	f3, nw
	fmov	f2, f1
	or	r5, r31, r9
nw:	addq	r5, 1, r5
	subq	r17, r5, r8
	bgt	r8, wloop
	# update winner row toward the input
	lda	r10, rate
	ldt	f5, 0(r10)
	mulq	r9, r16, r6
	lda	r7, 0
uloop:	addq	r6, r7, r8
	s8addq	r8, r2, r8
	ldt	f2, 0(r8)
	s8addq	r7, r3, r11
	ldt	f3, 0(r11)
	subt	f3, f2, f4
	mult	f4, f5, f4
	addt	f2, f4, f2
	stt	f2, 0(r8)
	addq	r7, 1, r7
	subq	r16, r7, r8
	bgt	r8, uloop
	br	outer
`, 1024, 2048, func(m *vm.Machine, p Params) error {
	r := newRNG(p.Seed)
	inputs := p.Size
	neurons := inputs / 4
	if neurons < 8 {
		neurons = 8
	}
	if inputs*neurons > 524288 {
		neurons = 524288 / inputs
	}
	w := make([]float64, neurons*inputs)
	for i := range w {
		w[i] = r.float01()
	}
	writeFloats(m, "weights", w)
	x := make([]float64, inputs)
	for i := range x {
		x[i] = r.float01()
	}
	writeFloats(m, "input", x)
	writeFloats(m, "rate", []float64{0.1})
	writeParams(m, uint64(inputs), uint64(neurons))
	return nil
})

// Likelihood is the per-site probability evaluation of phylogenetic codes
// (phylip promlk, predator): a floating-point recurrence per data site
// with a data-dependent renormalization branch. Size is the number of
// sites.
var Likelihood = mustKernel("likelihood", `
	.data
params:	.space 64		# [0]=sites  [1]=rounds
sites:	.space 131072		# doubles
consts:	.space 24		# a, b, one
	.text
main:
outer:	lda	r1, params
	ldq	r16, 0(r1)	# sites
	ldq	r17, 8(r1)	# rounds
	lda	r2, sites
	lda	r3, consts
	ldt	f1, 0(r3)	# a
	ldt	f2, 8(r3)	# b
	ldt	f3, 16(r3)	# 1.0
	fmov	f31, f10	# accumulator
	lda	r4, 0		# site
sloop:	s8addq	r4, r2, r5
	ldt	f4, 0(r5)	# p
	lda	r6, 0		# round
rloop:	mult	f4, f1, f5
	addt	f5, f2, f4	# p = p*a + b
	subt	f4, f3, f6
	fblt	f6, norm	# p < 1: no renormalize
	subt	f4, f3, f4	# p -= 1
norm:	addq	r6, 1, r6
	subq	r17, r6, r7
	bgt	r7, rloop
	addt	f10, f4, f10
	addq	r4, 1, r4
	subq	r16, r4, r5
	bgt	r5, sloop
	br	outer
`, 4096, 16384, func(m *vm.Machine, p Params) error {
	r := newRNG(p.Seed)
	vals := make([]float64, p.Size)
	for i := range vals {
		vals[i] = r.float01()
	}
	writeFloats(m, "sites", vals)
	writeFloats(m, "consts", []float64{0.97, 0.11, 1.0})
	rounds := uint64(16)
	if p.Variant == 1 {
		rounds = 48 // deeper trees
	}
	writeParams(m, uint64(p.Size), rounds)
	return nil
})
