package kernels

import "mica/internal/vm"

// SHA is a hash compression loop in the SHA-1/SHA-256 family: per 64-byte
// block, a long sequence of rotates, xors and additions with a serial
// dependence through the working variables. Almost no memory traffic
// beyond the message schedule — a pure integer-ALU, low-ILP workload.
// Size is the number of 64-byte blocks.
var SHA = mustKernel("sha", `
	.data
params:	.space 64		# [0]=blocks
msg:	.space 262144
	.text
main:
outer:	lda	r1, params
	ldq	r16, 0(r1)	# blocks
	lda	r2, msg
	lda	r3, 0		# block index
	lda	r4, 0x67452301	# a
	lda	r5, 0xefcdab89	# b
	lda	r6, 0x98badcfe	# c
	lda	r7, 0x10325476	# d
	lda	r8, 0xc3d2e1f0	# e
bloop:	lda	r9, 0		# round
rloop:	# w = msg word (round mod 8)
	and	r9, 7, r10
	s8addq	r10, r2, r10
	ldq	r11, 0(r10)
	# f = (b & c) | (~b & d)
	and	r5, r6, r12
	bic	r7, r5, r13
	or	r12, r13, r12
	# rotl5(a)
	sll	r4, 5, r13
	srl	r4, 27, r14
	or	r13, r14, r13
	addq	r13, r12, r13
	addq	r13, r8, r13
	addq	r13, r11, r13
	addq	r13, 0x5a827999, r13	# temp
	# rotate registers: e=d d=c c=rotl30(b) b=a a=temp
	or	r7, r31, r8
	or	r6, r31, r7
	sll	r5, 30, r12
	srl	r5, 2, r14
	or	r12, r14, r6
	or	r4, r31, r5
	or	r13, r31, r4
	addq	r9, 1, r9
	subq	r9, 80, r10
	blt	r10, rloop
	addq	r2, 64, r2
	addq	r3, 1, r3
	subq	r16, r3, r10
	bgt	r10, bloop
	br	outer
`, 1024, 4096, func(m *vm.Machine, p Params) error {
	r := newRNG(p.Seed)
	msg := make([]uint64, p.Size*8)
	for i := range msg {
		msg[i] = r.next()
	}
	writeQuads(m, "msg", msg)
	writeParams(m, uint64(p.Size))
	return nil
})

// Blowfish is the Feistel cipher round loop of MiBench's blowfish: 16
// rounds per 8-byte block, each round doing four S-box lookups in 8KB of
// tables — dependent loads feeding ALU ops. Size is the number of 8-byte
// blocks.
var Blowfish = mustKernel("blowfish", `
	.data
params:	.space 64		# [0]=blocks
data:	.space 262144
sbox:	.space 8192		# 4 x 256 x 8
parr:	.space 160		# 18 round keys + padding
	.text
main:
outer:	lda	r1, params
	ldq	r16, 0(r1)	# blocks
	lda	r2, data
	lda	r3, sbox
	lda	r15, parr
	lda	r4, 0		# block index
bloop:	s8addq	r4, r2, r5
	ldq	r6, 0(r5)	# block
	srl	r6, 32, r7	# left
	lda	r8, 0xffffffff
	and	r6, r8, r8	# right
	lda	r9, 0		# round
rloop:	s8addq	r9, r15, r10
	ldq	r10, 0(r10)	# round key
	xor	r7, r10, r7
	# F(left): four s-box lookups
	srl	r7, 24, r10
	and	r10, 255, r10
	s8addq	r10, r3, r10
	ldq	r10, 0(r10)
	srl	r7, 16, r11
	and	r11, 255, r11
	s8addq	r11, r3, r11
	ldq	r11, 2048(r11)
	addq	r10, r11, r10
	srl	r7, 8, r12
	and	r12, 255, r12
	s8addq	r12, r3, r12
	ldq	r12, 4096(r12)
	xor	r10, r12, r10
	and	r7, 255, r13
	s8addq	r13, r3, r13
	ldq	r13, 6144(r13)
	addq	r10, r13, r10
	xor	r8, r10, r8
	# swap halves
	or	r7, r31, r14
	or	r8, r31, r7
	or	r14, r31, r8
	addq	r9, 1, r9
	subq	r9, 16, r10
	blt	r10, rloop
	sll	r7, 32, r7
	or	r7, r8, r6
	stq	r6, 0(r5)
	addq	r4, 1, r4
	subq	r16, r4, r10
	bgt	r10, bloop
	br	outer
`, 8192, 32768, func(m *vm.Machine, p Params) error {
	r := newRNG(p.Seed)
	data := make([]uint64, p.Size)
	for i := range data {
		data[i] = r.next()
	}
	writeQuads(m, "data", data)
	sbox := make([]uint64, 1024)
	for i := range sbox {
		sbox[i] = r.next() & 0xffffffff
	}
	writeQuads(m, "sbox", sbox)
	pa := make([]uint64, 18)
	for i := range pa {
		pa[i] = r.next() & 0xffffffff
	}
	writeQuads(m, "parr", pa)
	writeParams(m, uint64(p.Size))
	return nil
})

// Bignum is the multi-precision multiply-reduce of public-key crypto
// (MiBench pgp): schoolbook multiplication of 16-limb numbers using
// mulq/umulh pairs with carry chains. Integer-multiply dominated. Size is
// the number of multiplications per pass.
var Bignum = mustKernel("bignum", `
	.data
params:	.space 64		# [0]=count
anum:	.space 131072		# operand pool
bnum:	.space 131072
prod:	.space 256		# 32-limb product scratch
	.text
main:
outer:	lda	r1, params
	ldq	r16, 0(r1)	# count
	lda	r14, 0		# op index
oloop:	lda	r2, anum
	lda	r3, bnum
	and	r14, 511, r4	# pool slot
	sll	r4, 7, r4	# x 128 bytes (16 limbs)
	addq	r2, r4, r2
	addq	r3, r4, r3
	lda	r4, prod
	# clear product
	lda	r5, 0
clr:	s8addq	r5, r4, r6
	stq	r31, 0(r6)
	addq	r5, 1, r5
	subq	r5, 32, r6
	blt	r6, clr
	lda	r5, 0		# i
iloop:	s8addq	r5, r2, r6
	ldq	r6, 0(r6)	# a[i]
	lda	r7, 0		# j
	lda	r8, 0		# carry
jloop:	s8addq	r7, r3, r9
	ldq	r9, 0(r9)	# b[j]
	mulq	r6, r9, r10	# lo
	umulh	r6, r9, r11	# hi
	addq	r5, r7, r12
	s8addq	r12, r4, r12	# &prod[i+j]
	ldq	r13, 0(r12)
	addq	r13, r10, r13
	cmpult	r13, r10, r15	# carry out of lo add
	addq	r11, r15, r11
	addq	r13, r8, r13
	cmpult	r13, r8, r15
	addq	r11, r15, r11
	stq	r13, 0(r12)
	or	r11, r31, r8	# carry = hi
	addq	r7, 1, r7
	subq	r7, 16, r9
	blt	r9, jloop
	addq	r5, 16, r12
	s8addq	r12, r4, r12
	stq	r8, 0(r12)
	addq	r5, 1, r5
	subq	r5, 16, r6
	blt	r6, iloop
	addq	r14, 1, r14
	subq	r16, r14, r6
	bgt	r6, oloop
	br	outer
`, 64, 4096, func(m *vm.Machine, p Params) error {
	r := newRNG(p.Seed)
	pool := make([]uint64, 512*16)
	for i := range pool {
		pool[i] = r.next()
	}
	writeQuads(m, "anum", pool)
	pool2 := make([]uint64, 512*16)
	for i := range pool2 {
		pool2[i] = r.next()
	}
	writeQuads(m, "bnum", pool2)
	writeParams(m, uint64(p.Size))
	return nil
})

// Bitcount runs MiBench's bit-manipulation medley over a word array:
// parallel popcount, parity, bit reversal — shift/mask ALU chains with a
// loop branch and almost no memory pressure. Size is the array length in
// words.
var Bitcount = mustKernel("bitcount", `
	.data
params:	.space 64		# [0]=n
words:	.space 262144
	.text
main:
outer:	lda	r1, params
	ldq	r16, 0(r1)	# n
	lda	r2, words
	lda	r3, 0		# i
	lda	r4, 0		# total
	lda	r20, 0x5555555555555555
	lda	r21, 0x3333333333333333
	lda	r22, 0x0f0f0f0f0f0f0f0f
loop:	s8addq	r3, r2, r5
	ldq	r6, 0(r5)
	# popcount
	srl	r6, 1, r7
	and	r7, r20, r7
	subq	r6, r7, r7
	srl	r7, 2, r8
	and	r7, r21, r7
	and	r8, r21, r8
	addq	r7, r8, r7
	srl	r7, 4, r8
	addq	r7, r8, r7
	and	r7, r22, r7
	mulq	r7, 0x0101010101010101, r7
	srl	r7, 56, r7
	addq	r4, r7, r4
	# parity of the word
	srl	r6, 32, r8
	xor	r6, r8, r8
	srl	r8, 16, r9
	xor	r8, r9, r8
	srl	r8, 8, r9
	xor	r8, r9, r8
	and	r8, 1, r8
	beq	r8, even
	addq	r4, 1, r4
even:	addq	r3, 1, r3
	subq	r16, r3, r5
	bgt	r5, loop
	br	outer
`, 8192, 32768, func(m *vm.Machine, p Params) error {
	r := newRNG(p.Seed)
	words := make([]uint64, p.Size)
	for i := range words {
		words[i] = r.next()
	}
	writeQuads(m, "words", words)
	writeParams(m, uint64(p.Size))
	return nil
})
