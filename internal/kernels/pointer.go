package kernels

import "mica/internal/vm"

// PointerChase is the mcf/patricia-style dependent-load workload: walk a
// random permutation cycle through a large array of next-indices. Every
// load depends on the previous one, so ILP is minimal and the data
// working set is the whole array. Size is the number of 8-byte nodes.
var PointerChase = mustKernel("pointerchase", `
	.data
params:	.space 64		# [0]=steps per pass
ring:	.space 8388608		# up to 1M nodes x 8
	.text
main:
outer:	lda	r1, params
	ldq	r16, 0(r1)	# steps
	lda	r2, ring
	lda	r3, 0		# current index
	lda	r4, 0		# step
	lda	r5, 0		# checksum
chase:	s8addq	r3, r2, r6
	ldq	r3, 0(r6)	# next index (dependent load)
	addq	r5, r3, r5
	addq	r4, 1, r4
	subq	r16, r4, r6
	bgt	r6, chase
	br	outer
`, 65536, 1048576, func(m *vm.Machine, p Params) error {
	r := newRNG(p.Seed)
	// Sattolo's algorithm: a single cycle covering all nodes.
	n := p.Size
	next := make([]uint64, n)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := 0; i < n; i++ {
		next[perm[i]] = uint64(perm[(i+1)%n])
	}
	writeQuads(m, "ring", next)
	writeParams(m, uint64(4*n))
	return nil
})

// DRR is CommBench's deficit round robin scheduler: cycle over a ring of
// flow descriptors, accumulate quantum into per-flow deficit counters and
// dequeue packets whose lengths come from a per-flow packet list —
// pointer-linked structures with short branchy loops. Size is the number
// of flows.
var DRR = mustKernel("drr", `
	.data
params:	.space 64		# [0]=flows  [1]=quantum
flows:	.space 65536		# per flow: deficit, head (2 quads = 16B)
pkts:	.space 524288		# packet length pool (quads)
	.text
main:
outer:	lda	r1, params
	ldq	r16, 0(r1)	# flows
	ldq	r17, 8(r1)	# quantum
	lda	r2, flows
	lda	r3, pkts
	lda	r4, 0		# flow index
floop:	sll	r4, 4, r5
	addq	r2, r5, r5	# &flow[f]
	ldq	r6, 0(r5)	# deficit
	ldq	r7, 8(r5)	# packet cursor
	addq	r6, r17, r6	# deficit += quantum
deq:	and	r7, 65535, r8	# wrap cursor
	s8addq	r8, r3, r9
	ldq	r10, 0(r9)	# packet length
	subq	r6, r10, r11	# enough deficit?
	blt	r11, stop
	or	r11, r31, r6	# deficit -= len
	addq	r7, 1, r7	# next packet
	br	deq
stop:	stq	r6, 0(r5)
	stq	r7, 8(r5)
	addq	r4, 1, r4
	subq	r16, r4, r8
	bgt	r8, floop
	br	outer
`, 256, 4096, func(m *vm.Machine, p Params) error {
	r := newRNG(p.Seed)
	flows := make([]uint64, p.Size*2)
	for f := 0; f < p.Size; f++ {
		flows[2*f] = 0                      // deficit
		flows[2*f+1] = uint64(r.intn(4096)) // cursor start
	}
	writeQuads(m, "flows", flows)
	pkts := make([]uint64, 65536)
	for i := range pkts {
		pkts[i] = uint64(64 + r.intn(1400)) // packet sizes
	}
	writeQuads(m, "pkts", pkts)
	writeParams(m, uint64(p.Size), 1500)
	return nil
})

// Dijkstra is MiBench's shortest-path benchmark: an O(n^2)
// adjacency-matrix single-source Dijkstra with a linear min-scan — long
// dependent compare/branch chains over a quadratically sized data set.
// Size is the number of graph nodes.
var Dijkstra = mustKernel("dijkstra", `
	.data
params:	.space 64		# [0]=n
adj:	.space 2097152		# n x n quads (n <= 512)
dist:	.space 4096
visit:	.space 4096
	.text
main:
outer:	lda	r1, params
	ldq	r16, 0(r1)	# n
	lda	r2, adj
	lda	r3, dist
	lda	r4, visit
	# init dist = INF except source, visit = 0
	lda	r5, 0
	lda	r6, 1000000000
init:	s8addq	r5, r3, r7
	stq	r6, 0(r7)
	s8addq	r5, r4, r7
	stq	r31, 0(r7)
	addq	r5, 1, r5
	subq	r16, r5, r7
	bgt	r7, init
	stq	r31, 0(r3)	# dist[0] = 0
	lda	r15, 0		# iteration
iter:	# find unvisited min
	lda	r5, 0		# scan index
	lda	r7, -1		# argmin
	lda	r8, 2000000000	# min
scan:	s8addq	r5, r4, r9
	ldq	r9, 0(r9)	# visited?
	bne	r9, skip
	s8addq	r5, r3, r9
	ldq	r9, 0(r9)	# dist[v]
	subq	r9, r8, r10
	bge	r10, skip
	or	r9, r31, r8
	or	r5, r31, r7
skip:	addq	r5, 1, r5
	subq	r16, r5, r9
	bgt	r9, scan
	blt	r7, restart	# all visited
	# mark visited, relax neighbours
	s8addq	r7, r4, r9
	lda	r10, 1
	stq	r10, 0(r9)
	mulq	r7, r16, r9
	s8addq	r9, r2, r9	# adjacency row of argmin
	lda	r5, 0
relax:	s8addq	r5, r31, r10
	addq	r9, r10, r10
	ldq	r11, 0(r10)	# weight
	beq	r11, next	# no edge
	addq	r8, r11, r11	# dist[u] + w
	s8addq	r5, r3, r12
	ldq	r13, 0(r12)
	subq	r11, r13, r14
	bge	r14, next
	stq	r11, 0(r12)
next:	addq	r5, 1, r5
	subq	r16, r5, r10
	bgt	r10, relax
	addq	r15, 1, r15
	subq	r16, r15, r9
	bgt	r9, iter
restart:
	br	outer
`, 128, 512, func(m *vm.Machine, p Params) error {
	r := newRNG(p.Seed)
	n := p.Size
	adj := make([]uint64, n*n)
	// Sparse random digraph: ~8 out-edges per node.
	for u := 0; u < n; u++ {
		for e := 0; e < 8; e++ {
			v := r.intn(n)
			if v != u {
				adj[u*n+v] = uint64(1 + r.intn(100))
			}
		}
	}
	writeQuads(m, "adj", adj)
	writeParams(m, uint64(n))
	return nil
})

// Qsort is an iterative quicksort with an explicit range stack: the
// recursive partitioning of MiBench's qsort with data-dependent branches
// on every comparison and swap traffic across a shrinking working set.
// Size is the array length in words.
var Qsort = mustKernel("qsort", `
	.data
params:	.space 64		# [0]=n
arr:	.space 524288
orig:	.space 524288
stack:	.space 8192		# (lo, hi) pairs
	.text
main:
outer:	# restore the unsorted array so each pass does real work
	lda	r1, params
	ldq	r16, 0(r1)	# n
	lda	r2, arr
	lda	r3, orig
	lda	r4, 0
copy:	s8addq	r4, r3, r5
	ldq	r6, 0(r5)
	s8addq	r4, r2, r5
	stq	r6, 0(r5)
	addq	r4, 1, r4
	subq	r16, r4, r5
	bgt	r5, copy
	# push (0, n-1)
	lda	r7, stack	# stack pointer
	stq	r31, 0(r7)
	subq	r16, 1, r5
	stq	r5, 8(r7)
	addq	r7, 16, r7
qloop:	lda	r8, stack
	subq	r7, r8, r8
	ble	r8, outer	# stack empty -> restart
	subq	r7, 16, r7
	ldq	r9, 0(r7)	# lo
	ldq	r10, 8(r7)	# hi
	subq	r10, r9, r11
	ble	r11, qloop	# trivial range
	# partition around arr[hi]
	s8addq	r10, r2, r12
	ldq	r12, 0(r12)	# pivot
	or	r9, r31, r13	# store index i
	or	r9, r31, r14	# scan index j
part:	s8addq	r14, r2, r5
	ldq	r6, 0(r5)	# arr[j]
	subq	r6, r12, r4
	bge	r4, noswap
	# swap arr[i], arr[j]
	s8addq	r13, r2, r4
	ldq	r15, 0(r4)
	stq	r6, 0(r4)
	stq	r15, 0(r5)
	addq	r13, 1, r13
noswap:	addq	r14, 1, r14
	subq	r10, r14, r5
	bgt	r5, part
	# place pivot at i
	s8addq	r10, r2, r5
	ldq	r6, 0(r5)	# pivot value again
	s8addq	r13, r2, r4
	ldq	r15, 0(r4)
	stq	r6, 0(r4)
	stq	r15, 0(r5)
	# push (lo, i-1) and (i+1, hi)
	subq	r13, 1, r5
	subq	r5, r9, r6
	ble	r6, right
	stq	r9, 0(r7)
	stq	r5, 8(r7)
	addq	r7, 16, r7
right:	addq	r13, 1, r5
	subq	r10, r5, r6
	ble	r6, qloop
	stq	r5, 0(r7)
	stq	r10, 8(r7)
	addq	r7, 16, r7
	br	qloop
`, 16384, 65536, func(m *vm.Machine, p Params) error {
	r := newRNG(p.Seed)
	arr := make([]uint64, p.Size)
	for i := range arr {
		arr[i] = r.next() >> 32
	}
	writeQuads(m, "orig", arr)
	writeParams(m, uint64(p.Size))
	return nil
})

// StringSearch is a Horspool-style multi-pattern text scanner (ispell,
// parser, typeset workloads): byte comparisons with a bad-character skip
// table and irregular, data-dependent advance. Size is the text length in
// bytes.
var StringSearch = mustKernel("stringsearch", `
	.data
params:	.space 64		# [0]=text len  [1]=pattern len
text:	.space 262144
pat:	.space 64
skip:	.space 2048		# 256 x 8
	.text
main:
outer:	lda	r1, params
	ldq	r16, 0(r1)	# n
	ldq	r17, 8(r1)	# m
	lda	r2, text
	lda	r3, pat
	lda	r4, skip
	subq	r17, 1, r18	# m-1
	lda	r5, 0		# window start
	lda	r15, 0		# match count
wloop:	# compare pattern right-to-left
	or	r18, r31, r6	# k = m-1
cmp:	addq	r5, r6, r7
	addq	r2, r7, r7
	ldbu	r8, 0(r7)	# text[s+k]
	addq	r3, r6, r9
	ldbu	r10, 0(r9)	# pat[k]
	subq	r8, r10, r11
	bne	r11, miss
	subq	r6, 1, r6
	bge	r6, cmp
	addq	r15, 1, r15	# full match
	addq	r5, 1, r5
	br	bound
miss:	# advance by skip[text[s+m-1]]
	addq	r5, r18, r7
	addq	r2, r7, r7
	ldbu	r8, 0(r7)
	s8addq	r8, r4, r8
	ldq	r8, 0(r8)
	addq	r5, r8, r5
bound:	addq	r5, r17, r7
	subq	r16, r7, r7
	bgt	r7, wloop
	br	outer
`, 65536, 262080, func(m *vm.Machine, p Params) error {
	r := newRNG(p.Seed)
	// English-ish text over a 27-letter alphabet.
	text := make([]byte, p.Size+64)
	for i := range text {
		text[i] = byte('a' + r.intn(27))
	}
	mLen := 6
	if p.Variant == 1 {
		mLen = 3 // short patterns: more partial matches
	}
	pat := make([]byte, mLen)
	for i := range pat {
		pat[i] = byte('a' + r.intn(27))
	}
	// Plant occurrences so full matches happen.
	for k := 0; k < p.Size/500; k++ {
		copy(text[r.intn(p.Size-mLen):], pat)
	}
	writeBytes(m, "text", text)
	writeBytes(m, "pat", pat)
	skip := make([]uint64, 256)
	for i := range skip {
		skip[i] = uint64(mLen)
	}
	for i := 0; i < mLen-1; i++ {
		skip[pat[i]] = uint64(mLen - 1 - i)
	}
	writeQuads(m, "skip", skip)
	writeParams(m, uint64(p.Size), uint64(mLen))
	return nil
})

// Interp is a bytecode interpreter with an indirect-dispatch loop over 16
// handlers operating on a memory-resident register file — the branchy,
// instruction-footprint-heavy structure of gcc/perlbmk/crafty. Size is
// the bytecode program length.
var Interp = mustKernel("interp", `
	.data
params:	.space 64		# [0]=code len
code:	.space 65536		# bytecode: 1 byte op, 1 byte operand
jtab:	.space 128		# 16 handler addresses
regs:	.space 256		# 32 virtual registers
	.text
main:
outer:	lda	r1, params
	ldq	r16, 0(r1)	# code len
	lda	r2, code
	lda	r3, jtab
	lda	r4, regs
	lda	r5, 0		# vpc
fetch:	addq	r2, r5, r6
	ldbu	r7, 0(r6)	# opcode
	ldbu	r8, 1(r6)	# operand
	addq	r5, 2, r5
	and	r7, 15, r7
	s8addq	r7, r3, r9
	ldq	r9, 0(r9)	# handler address
	jmp	(r9)
op0:	# add reg, imm
	and	r8, 31, r10
	s8addq	r10, r4, r10
	ldq	r11, 0(r10)
	addq	r11, 3, r11
	stq	r11, 0(r10)
	br	bound
op1:	# sub
	and	r8, 31, r10
	s8addq	r10, r4, r10
	ldq	r11, 0(r10)
	subq	r11, 1, r11
	stq	r11, 0(r10)
	br	bound
op2:	# xor with accumulator r14
	and	r8, 31, r10
	s8addq	r10, r4, r10
	ldq	r11, 0(r10)
	xor	r14, r11, r14
	br	bound
op3:	# shift
	and	r8, 31, r10
	s8addq	r10, r4, r10
	ldq	r11, 0(r10)
	sll	r11, 1, r11
	srl	r11, 7, r12
	or	r11, r12, r11
	stq	r11, 0(r10)
	br	bound
op4:	# mul accumulate
	and	r8, 31, r10
	s8addq	r10, r4, r10
	ldq	r11, 0(r10)
	mulq	r11, 17, r11
	addq	r14, r11, r14
	br	bound
op5:	# compare and conditionally bump
	and	r8, 31, r10
	s8addq	r10, r4, r10
	ldq	r11, 0(r10)
	and	r11, 1, r12
	beq	r12, b5
	addq	r14, 1, r14
b5:	br	bound
op6:	# store accumulator
	and	r8, 31, r10
	s8addq	r10, r4, r10
	stq	r14, 0(r10)
	br	bound
op7:	# load accumulator
	and	r8, 31, r10
	s8addq	r10, r4, r10
	ldq	r14, 0(r10)
	br	bound
op8:	and	r14, 255, r10
	addq	r14, r10, r14
	br	bound
op9:	srl	r14, 3, r10
	xor	r14, r10, r14
	br	bound
op10:	addq	r14, r8, r14
	br	bound
op11:	subq	r14, r8, r14
	br	bound
op12:	mulq	r14, 13, r14
	br	bound
op13:	ornot	r14, r8, r14
	br	bound
op14:	sra	r14, 1, r14
	br	bound
op15:	xor	r14, r8, r14
	br	bound
bound:	subq	r16, r5, r6
	bgt	r6, fetch
	lda	r5, 0		# rewind bytecode
	br	outer
`, 8192, 32768, func(m *vm.Machine, p Params) error {
	r := newRNG(p.Seed)
	n := p.Size &^ 1 // even: op/operand pairs
	code := make([]byte, n)
	for i := 0; i < n; i += 2 {
		code[i] = byte(r.intn(16))
		code[i+1] = byte(r.intn(256))
	}
	writeBytes(m, "code", code)
	prog := m.Program()
	jtab := make([]uint64, 16)
	for i := 0; i < 16; i++ {
		jtab[i] = prog.MustSymbol("op" + itoa(i))
	}
	writeQuads(m, "jtab", jtab)
	regs := make([]uint64, 32)
	for i := range regs {
		regs[i] = r.next()
	}
	writeQuads(m, "regs", regs)
	writeParams(m, uint64(n))
	return nil
})

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return string(rune('0'+n/10)) + string(rune('0'+n%10))
}
