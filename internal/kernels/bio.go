package kernels

import "mica/internal/vm"

// SmithWaterman is banded local sequence alignment by dynamic programming
// (clustalw, fasta, ce, hmmer's DP): the two-row integer DP recurrence
// with a four-way max implemented as data-dependent branches. Size is the
// database sequence length; the query length is fixed at 128.
var SmithWaterman = mustKernel("smithwaterman", `
	.data
params:	.space 64		# [0]=n (db length)  [1]=m (query length)
dbseq:	.space 131072
query:	.space 256
hprev:	.space 1048584		# n+1 quads
hcur:	.space 1048584
	.text
main:
outer:	lda	r1, params
	ldq	r16, 0(r1)	# n
	ldq	r17, 8(r1)	# m
	lda	r2, dbseq
	lda	r3, query
	lda	r4, hprev
	lda	r5, hcur
	# zero hprev row
	lda	r6, 0
zrow:	s8addq	r6, r4, r7
	stq	r31, 0(r7)
	addq	r6, 1, r6
	subq	r16, r6, r7
	bge	r7, zrow
	lda	r15, 0		# best score
	lda	r8, 1		# i (query index)
irow:	addq	r3, r8, r9
	ldbu	r9, -1(r9)	# query[i-1]
	stq	r31, 0(r5)	# hcur[0] = 0
	lda	r10, 1		# j
jcol:	addq	r2, r10, r11
	ldbu	r11, -1(r11)	# db[j-1]
	subq	r9, r11, r12
	# score: +2 match, -1 mismatch
	lda	r13, -1
	bne	r12, mis
	lda	r13, 2
mis:	s8addq	r10, r4, r12
	ldq	r14, -8(r12)	# hprev[j-1]
	addq	r14, r13, r14	# diag
	ldq	r13, 0(r12)	# hprev[j]
	subq	r13, 1, r13	# up
	subq	r14, r13, r12
	bge	r12, m1
	or	r13, r31, r14
m1:	s8addq	r10, r5, r12
	ldq	r13, -8(r12)	# hcur[j-1]
	subq	r13, 1, r13	# left
	subq	r14, r13, r18
	bge	r18, m2
	or	r13, r31, r14
m2:	bge	r14, m3		# max(0, .)
	lda	r14, 0
m3:	stq	r14, 0(r12)	# hcur[j]
	subq	r14, r15, r18
	ble	r18, m4
	or	r14, r31, r15	# new best
m4:	addq	r10, 1, r10
	subq	r16, r10, r18
	bge	r18, jcol
	# swap rows
	or	r4, r31, r18
	or	r5, r31, r4
	or	r18, r31, r5
	addq	r8, 1, r8
	subq	r17, r8, r18
	bge	r18, irow
	br	outer
`, 4096, 131071, func(m *vm.Machine, p Params) error {
	r := newRNG(p.Seed)
	db := make([]byte, p.Size)
	for i := range db {
		db[i] = byte(r.intn(4)) // DNA alphabet
	}
	writeBytes(m, "dbseq", db)
	q := make([]byte, 128)
	copy(q, db[:64]) // plant similarity so the DP finds real alignments
	for i := 64; i < 128; i++ {
		q[i] = byte(r.intn(4))
	}
	writeBytes(m, "query", q)
	writeParams(m, uint64(p.Size), 128)
	return nil
})

// KmerCount is the k-mer hashing core of blast/glimmer: a rolling 2-bit
// encoding of a DNA stream hashed into a large count table. The table
// size parameter (grown with Variant) gives blast its paper-visible
// signature: a huge, randomly accessed data working set. Size is the
// sequence length in bases.
var KmerCount = mustKernel("kmercount", `
	.data
params:	.space 64		# [0]=n  [1]=table mask (entries-1)
seq:	.space 262144
table:	.space 8388608		# up to 1M counters
	.text
main:
outer:	lda	r1, params
	ldq	r16, 0(r1)	# n
	ldq	r17, 8(r1)	# mask
	lda	r2, seq
	lda	r3, table
	lda	r4, 0		# i
	lda	r5, 0		# rolling code
kloop:	addq	r2, r4, r6
	ldbu	r7, 0(r6)	# base (0..3)
	sll	r5, 2, r5
	or	r5, r7, r5
	lda	r8, 0xffffffff
	and	r5, r8, r5	# keep 16 bases
	mulq	r5, 2654435761, r8
	srl	r8, 16, r8
	and	r8, r17, r8	# bucket
	s8addq	r8, r3, r9
	ldq	r10, 0(r9)
	addq	r10, 1, r10
	stq	r10, 0(r9)	# count++
	addq	r4, 1, r4
	subq	r16, r4, r6
	bgt	r6, kloop
	br	outer
`, 65536, 262144, func(m *vm.Machine, p Params) error {
	r := newRNG(p.Seed)
	seq := make([]byte, p.Size)
	for i := range seq {
		seq[i] = byte(r.intn(4))
	}
	writeBytes(m, "seq", seq)
	// Variant selects the count-table footprint: 0 -> 64K entries
	// (512KB), 1 -> 1M entries (8MB, the blast-like configuration).
	mask := uint64(1<<16 - 1)
	if p.Variant == 1 {
		mask = 1<<20 - 1
	}
	writeParams(m, uint64(p.Size), mask)
	return nil
})

// Parsimony is the bit-parallel Fitch parsimony step of phylip's
// dnapenny: AND/OR set operations over packed state vectors for every
// tree node — wide bitwise ALU work over medium-sized arrays. Size is the
// number of packed words per state vector.
var Parsimony = mustKernel("parsimony", `
	.data
params:	.space 64		# [0]=words  [1]=nodes
states:	.space 1048576		# nodes x words quads
cost:	.space 8
	.text
main:
outer:	lda	r1, params
	ldq	r16, 0(r1)	# words
	ldq	r17, 8(r1)	# nodes (pairs combined)
	lda	r2, states
	lda	r14, 0		# node pair index
nloop:	mulq	r14, r16, r3
	sll	r3, 4, r3	# two children per pair: 2*words*8
	addq	r2, r3, r3	# child A; child B at +words*8
	sll	r16, 3, r4
	addq	r3, r4, r4	# child B
	lda	r5, 0		# word index
	lda	r15, 0		# cost accumulator
wloop:	s8addq	r5, r3, r6
	ldq	r7, 0(r6)	# a
	s8addq	r5, r4, r8
	ldq	r9, 0(r8)	# b
	and	r7, r9, r10	# intersection
	bne	r10, keep
	or	r7, r9, r10	# union when disjoint
	addq	r15, 1, r15	# mutation cost
keep:	stq	r10, 0(r6)	# write parent state over child A
	addq	r5, 1, r5
	subq	r16, r5, r6
	bgt	r6, wloop
	addq	r14, 1, r14
	subq	r17, r14, r6
	bgt	r6, nloop
	br	outer
`, 512, 2048, func(m *vm.Machine, p Params) error {
	r := newRNG(p.Seed)
	words := p.Size
	nodes := 32
	for nodes*words*16 > 1048576 {
		nodes /= 2
	}
	if nodes < 2 {
		nodes = 2
	}
	states := make([]uint64, nodes*words*2)
	for i := range states {
		// Sparse set bits so AND is often zero (cost path taken).
		states[i] = r.next() & r.next() & r.next()
	}
	writeQuads(m, "states", states)
	writeParams(m, uint64(words), uint64(nodes))
	return nil
})
