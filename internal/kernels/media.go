package kernels

import "mica/internal/vm"

// DCT8 applies a 1-D 8-point integer transform pass over image rows, the
// arithmetic core of JPEG/MPEG encoders: strided loads, butterflies of
// adds/subs and integer multiplies by fixed-point cosines. Size is the
// number of 8-sample rows.
var DCT8 = mustKernel("dct8", `
	.data
params:	.space 64		# [0]=rows
img:	.space 524288		# rows x 8 quads
	.text
main:
outer:	lda	r1, params
	ldq	r16, 0(r1)	# rows
	lda	r2, img
	lda	r3, 0		# row index
rloop:	ldq	r4, 0(r2)
	ldq	r5, 8(r2)
	ldq	r6, 16(r2)
	ldq	r7, 24(r2)
	ldq	r8, 32(r2)
	ldq	r9, 40(r2)
	ldq	r10, 48(r2)
	ldq	r11, 56(r2)
	# stage 1 butterflies
	addq	r4, r11, r12	# s0 = x0+x7
	subq	r4, r11, r13	# d0 = x0-x7
	addq	r5, r10, r14	# s1 = x1+x6
	subq	r5, r10, r15	# d1
	addq	r6, r9, r4	# s2
	subq	r6, r9, r5	# d2
	addq	r7, r8, r6	# s3
	subq	r7, r8, r7	# d3
	# stage 2: even part
	addq	r12, r6, r8	# e0 = s0+s3
	subq	r12, r6, r9	# e1 = s0-s3
	addq	r14, r4, r10	# e2 = s1+s2
	subq	r14, r4, r11	# e3 = s1-s2
	addq	r8, r10, r12	# X0
	subq	r8, r10, r14	# X4
	mulq	r9, 17734, r9	# X2 ~ c2*e1
	mulq	r11, 7344, r11
	addq	r9, r11, r9
	sra	r9, 14, r9
	# odd part
	mulq	r13, 16069, r13
	mulq	r15, 13623, r15
	mulq	r5, 9102, r5
	mulq	r7, 3196, r7
	addq	r13, r15, r13
	addq	r5, r7, r5
	addq	r13, r5, r13
	sra	r13, 14, r13
	# store transformed row
	stq	r12, 0(r2)
	stq	r9, 16(r2)
	stq	r14, 32(r2)
	stq	r13, 48(r2)
	addq	r2, 64, r2
	addq	r3, 1, r3
	subq	r16, r3, r4
	bgt	r4, rloop
	br	outer
`, 2048, 8192, func(m *vm.Machine, p Params) error {
	r := newRNG(p.Seed)
	rows := make([]uint64, p.Size*8)
	for i := range rows {
		rows[i] = uint64(r.intn(256))
	}
	writeQuads(m, "img", rows)
	writeParams(m, uint64(p.Size))
	return nil
})

// MotionEst is the sum-of-absolute-differences search of an MPEG encoder:
// for each 16-byte macroblock row, scan nine candidate offsets in the
// reference frame and keep the minimum SAD. Byte loads, data-dependent
// abs/min branches. Size is the number of macroblock rows.
var MotionEst = mustKernel("motionest", `
	.data
params:	.space 64		# [0]=blocks
cur:	.space 65536
ref:	.space 65600		# + slack for candidate offsets
	.text
main:
outer:	lda	r1, params
	ldq	r16, 0(r1)	# blocks
	lda	r2, cur
	lda	r3, ref
	lda	r4, 0		# block index
bloop:	lda	r5, 0		# candidate dx
	ornot	r31, r31, r6	# best = maxint
	srl	r6, 1, r6
cand:	lda	r7, 0		# sad
	lda	r8, 0		# byte index
sad:	addq	r2, r8, r9
	ldbu	r10, 0(r9)	# cur[b]
	addq	r3, r8, r11
	addq	r11, r5, r11
	ldbu	r12, 0(r11)	# ref[b+dx]
	subq	r10, r12, r13
	bge	r13, pos
	subq	r31, r13, r13	# abs
pos:	addq	r7, r13, r7
	addq	r8, 1, r8
	subq	r8, 16, r9
	blt	r9, sad
	subq	r7, r6, r9	# sad - best
	bge	r9, worse
	or	r7, r31, r6	# new best
worse:	addq	r5, 1, r5
	subq	r5, 9, r9
	blt	r9, cand
	addq	r2, 16, r2
	addq	r3, 16, r3
	addq	r4, 1, r4
	subq	r16, r4, r9
	bgt	r9, bloop
	# reset block pointers for the next outer pass
	br	outer
`, 2048, 4096, func(m *vm.Machine, p Params) error {
	r := newRNG(p.Seed)
	cur := make([]byte, p.Size*16)
	ref := make([]byte, p.Size*16+64)
	for i := range ref {
		ref[i] = byte(r.intn(256))
	}
	for i := range cur {
		// Current frame is the reference shifted with noise, so SAD
		// minima exist at nonzero offsets.
		cur[i] = ref[i+3] + byte(r.intn(7))
	}
	writeBytes(m, "cur", cur)
	writeBytes(m, "ref", ref)
	writeParams(m, uint64(p.Size))
	return nil
})

// ADPCM is the serial adaptive differential PCM codec of MediaBench and
// MiBench: a tight, branchy loop with a four-instruction serial
// dependence through the predictor state and step-table lookups. Size is
// the number of input samples. Variant 1 biases toward the decoder's
// shorter path.
var ADPCM = mustKernel("adpcm", `
	.data
params:	.space 64		# [0]=n
in:	.space 131072
steps:	.space 1024		# 89-entry step table + padding
	.text
main:
outer:	lda	r1, params
	ldq	r16, 0(r1)	# n
	lda	r2, in
	lda	r3, steps
	lda	r4, 0		# i
	lda	r5, 0		# predictor
	lda	r6, 0		# step index
sloop:	addq	r2, r4, r7
	ldbu	r8, 0(r7)	# delta nibble source
	and	r8, 15, r8
	s8addq	r6, r3, r9
	ldq	r9, 0(r9)	# step = steps[index]
	# diff = step>>3 + (delta&1)*step>>2 + ...
	srl	r9, 3, r10
	blbc	r8, b0
	addq	r10, r9, r10
b0:	and	r8, 2, r11
	beq	r11, b1
	srl	r9, 1, r11
	addq	r10, r11, r10
b1:	and	r8, 4, r11
	beq	r11, b2
	addq	r10, r9, r10
b2:	and	r8, 8, r11
	beq	r11, up
	subq	r5, r10, r5	# predictor -= diff
	br	clamp
up:	addq	r5, r10, r5	# predictor += diff
clamp:	lda	r11, 32767
	subq	r5, r11, r12
	ble	r12, cl2
	or	r11, r31, r5
cl2:	addq	r5, r11, r12
	bge	r12, cl3
	subq	r31, r11, r5
cl3:	# index adjust: +- from table of nibble
	and	r8, 7, r11
	subq	r11, 3, r11
	ble	r11, down
	addq	r6, r11, r6
	br	ixcl
down:	subq	r6, 1, r6
ixcl:	bge	r6, ixlo
	lda	r6, 0
ixlo:	subq	r6, 88, r11
	ble	r11, ixok
	lda	r6, 88
ixok:	addq	r4, 1, r4
	subq	r16, r4, r7
	bgt	r7, sloop
	br	outer
`, 32768, 131072, func(m *vm.Machine, p Params) error {
	r := newRNG(p.Seed)
	in := make([]byte, p.Size)
	for i := range in {
		if p.Variant == 1 {
			in[i] = byte(r.intn(8)) // decoder-ish: small deltas
		} else {
			in[i] = byte(r.intn(256))
		}
	}
	writeBytes(m, "in", in)
	// The IMA ADPCM step table.
	steps := []uint64{
		7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34,
		37, 41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143,
		157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494,
		544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552,
		1707, 1878, 2066, 2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428,
		4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487,
		12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086,
		29794, 32767,
	}
	writeQuads(m, "steps", steps)
	writeParams(m, uint64(p.Size))
	return nil
})

// Susan is a 3x3 neighbourhood image filter with a brightness threshold,
// the structure of MiBench's susan corner/edge detector and of simple
// raster filters (tiff dither/median): two-dimensional byte addressing
// and data-dependent accumulation. Size is the square image edge length.
var Susan = mustKernel("susan", `
	.data
params:	.space 64		# [0]=edge length  [1]=threshold
img:	.space 262144
out:	.space 262144
	.text
main:
outer:	lda	r1, params
	ldq	r16, 0(r1)	# n
	ldq	r17, 8(r1)	# threshold
	lda	r2, img
	lda	r3, out
	lda	r4, 1		# y
yloop:	lda	r5, 1		# x
	mulq	r4, r16, r6	# row base
xloop:	addq	r6, r5, r7	# index = y*n + x
	addq	r2, r7, r8
	ldbu	r9, 0(r8)	# center
	lda	r10, 0		# count of similar neighbours
	# neighbours: -n-1, -n, -n+1, -1, +1, +n-1, +n, +n+1
	subq	r8, r16, r11
	ldbu	r12, -1(r11)
	subq	r12, r9, r12
	bge	r12, s1
	subq	r31, r12, r12
s1:	subq	r12, r17, r12
	bgt	r12, n1
	addq	r10, 1, r10
n1:	ldbu	r12, 0(r11)
	subq	r12, r9, r12
	bge	r12, s2
	subq	r31, r12, r12
s2:	subq	r12, r17, r12
	bgt	r12, n2
	addq	r10, 1, r10
n2:	ldbu	r12, 1(r11)
	subq	r12, r9, r12
	bge	r12, s3
	subq	r31, r12, r12
s3:	subq	r12, r17, r12
	bgt	r12, n3
	addq	r10, 1, r10
n3:	ldbu	r12, -1(r8)
	subq	r12, r9, r12
	bge	r12, s4
	subq	r31, r12, r12
s4:	subq	r12, r17, r12
	bgt	r12, n4
	addq	r10, 1, r10
n4:	ldbu	r12, 1(r8)
	subq	r12, r9, r12
	bge	r12, s5
	subq	r31, r12, r12
s5:	subq	r12, r17, r12
	bgt	r12, n5
	addq	r10, 1, r10
n5:	addq	r8, r16, r11
	ldbu	r12, 0(r11)
	subq	r12, r9, r12
	bge	r12, s6
	subq	r31, r12, r12
s6:	subq	r12, r17, r12
	bgt	r12, n6
	addq	r10, 1, r10
n6:	addq	r3, r7, r13
	stb	r10, 0(r13)
	addq	r5, 1, r5
	subq	r16, r5, r7
	subq	r7, 1, r7
	bgt	r7, xloop
	addq	r4, 1, r4
	subq	r16, r4, r7
	subq	r7, 1, r7
	bgt	r7, yloop
	br	outer
`, 256, 512, func(m *vm.Machine, p Params) error {
	r := newRNG(p.Seed)
	img := make([]byte, p.Size*p.Size)
	for i := range img {
		// Smooth-ish image: neighbouring pixels correlate.
		if i > 0 && r.intn(3) != 0 {
			img[i] = img[i-1] + byte(r.intn(9)) - 4
		} else {
			img[i] = byte(r.intn(256))
		}
	}
	writeBytes(m, "img", img)
	thresh := uint64(20)
	if p.Variant == 1 {
		thresh = 60 // smoothing flavour: more "similar" neighbours
	}
	writeParams(m, uint64(p.Size), thresh)
	return nil
})

// Fragment is CommBench's packet fragmentation: copy variable-size
// packets from an input ring to an output ring in 8-byte chunks, writing
// a small header per fragment — a streaming store-heavy workload. Size is
// the packet buffer length in bytes.
var Fragment = mustKernel("fragment", `
	.data
params:	.space 64		# [0]=buffer len  [1]=mtu
inb:	.space 262144
outb:	.space 524288
	.text
main:
outer:	lda	r1, params
	ldq	r16, 0(r1)	# len
	ldq	r17, 8(r1)	# mtu
	lda	r2, inb
	lda	r3, outb
	lda	r4, 0		# input offset
	lda	r15, 0		# fragment id
floop:	# fragment header: id and offset
	stq	r15, 0(r3)
	stq	r4, 8(r3)
	addq	r3, 16, r3
	lda	r5, 0		# copied
cpy:	addq	r2, r4, r6
	ldq	r7, 0(r6)
	stq	r7, 0(r3)
	addq	r3, 8, r3
	addq	r4, 8, r4
	addq	r5, 8, r5
	subq	r16, r4, r8	# input exhausted?
	ble	r8, done
	subq	r17, r5, r8	# mtu filled?
	bgt	r8, cpy
	addq	r15, 1, r15
	br	floop
done:	br	outer
`, 65536, 262144-8, func(m *vm.Machine, p Params) error {
	r := newRNG(p.Seed)
	buf := make([]byte, p.Size+8)
	for i := range buf {
		buf[i] = byte(r.next())
	}
	writeBytes(m, "inb", buf)
	mtu := uint64(256)
	if p.Variant == 1 {
		mtu = 1024
	}
	writeParams(m, uint64(p.Size), mtu)
	return nil
})
