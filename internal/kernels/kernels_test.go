package kernels

import (
	"errors"
	"testing"

	"mica/internal/isa"
	"mica/internal/trace"
	"mica/internal/vm"
)

// TestAllKernelsRunCleanly executes every registered kernel for a slice
// of instructions and checks that it neither faults nor halts early
// (kernels must be infinite loops truncated by the budget).
func TestAllKernelsRunCleanly(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			k, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			m, err := k.Instantiate(Params{Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			n, err := m.Run(60_000, nil)
			if !errors.Is(err, vm.ErrBudget) {
				t.Fatalf("kernel stopped early after %d instructions: %v", n, err)
			}
		})
	}
}

// TestKernelsAreDeterministic reruns a kernel with the same seed and
// checks that the dynamic instruction stream is identical.
func TestKernelsAreDeterministic(t *testing.T) {
	for _, name := range []string{"lz77", "fft", "interp", "qsort"} {
		k, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		sig := func() uint64 {
			m, err := k.Instantiate(Params{Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			var h uint64 = 14695981039346656037
			_, err = m.Run(30_000, trace.ObserverFunc(func(ev *trace.Event) {
				h ^= ev.PC ^ ev.MemAddr<<1
				h *= 1099511628211
			}))
			if !errors.Is(err, vm.ErrBudget) {
				t.Fatal(err)
			}
			return h
		}
		if sig() != sig() {
			t.Errorf("%s: same seed produced different traces", name)
		}
	}
}

// TestSeedChangesData checks that the seed actually changes the input.
func TestSeedChangesData(t *testing.T) {
	k, err := ByName("crc32")
	if err != nil {
		t.Fatal(err)
	}
	sum := func(seed uint64) uint64 {
		m, err := k.Instantiate(Params{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		base := m.Program().MustSymbol("buf")
		s := uint64(0)
		for i := uint64(0); i < 64; i++ {
			s = s*31 + uint64(m.Mem.ByteAt(base+i))
		}
		return s
	}
	if sum(1) == sum(2) {
		t.Error("different seeds produced identical input data")
	}
}

func TestInstantiateSizeBounds(t *testing.T) {
	k, err := ByName("crc32")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Instantiate(Params{Size: k.MaxSize + 1}); err == nil {
		t.Error("oversized input accepted")
	}
	if _, err := k.Instantiate(Params{Size: -1}); err == nil {
		t.Error("negative size accepted")
	}
	m, err := k.Instantiate(Params{}) // default size
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("nil machine")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestKernelClassDiversity(t *testing.T) {
	// The kernel library must span the behavioural axes the paper's
	// suites span. Check a few signatures: FP kernels execute FP ops,
	// integer kernels do not, the multiply kernel is multiply-heavy,
	// pointerchase is load-dominated.
	classFractions := func(name string) (fp, mul, load float64) {
		k, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := k.Instantiate(Params{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		var c trace.Counter
		if _, err := m.Run(50_000, &c); !errors.Is(err, vm.ErrBudget) {
			t.Fatal(err)
		}
		tot := float64(c.Total)
		return float64(c.ByClass[isa.ClassFP]) / tot,
			float64(c.ByClass[isa.ClassIntMul]) / tot,
			float64(c.ByClass[isa.ClassLoad]) / tot
	}

	if fp, _, _ := classFractions("fft"); fp < 0.2 {
		t.Errorf("fft FP fraction = %g, want > 0.2", fp)
	}
	if fp, _, _ := classFractions("crc32"); fp != 0 {
		t.Errorf("crc32 FP fraction = %g, want 0", fp)
	}
	if _, mul, _ := classFractions("bignum"); mul < 0.05 {
		t.Errorf("bignum multiply fraction = %g, want > 0.05", mul)
	}
	if _, _, load := classFractions("pointerchase"); load < 0.15 {
		t.Errorf("pointerchase load fraction = %g, want > 0.15", load)
	}
}

func TestKernelWorkingSetDiversity(t *testing.T) {
	// blast-like kmercount (variant 1) must touch far more data pages
	// than the cache-resident sha kernel.
	pages := func(name string, variant int) int {
		k, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := k.Instantiate(Params{Seed: 5, Variant: variant})
		if err != nil {
			t.Fatal(err)
		}
		seen := map[uint64]struct{}{}
		if _, err := m.Run(100_000, trace.ObserverFunc(func(ev *trace.Event) {
			if ev.MemSize > 0 {
				seen[ev.MemAddr>>12] = struct{}{}
			}
		})); !errors.Is(err, vm.ErrBudget) {
			t.Fatal(err)
		}
		return len(seen)
	}
	big := pages("kmercount", 1)
	small := pages("sha", 0)
	if big < 20*small {
		t.Errorf("kmercount pages (%d) not much larger than sha pages (%d)", big, small)
	}
}
