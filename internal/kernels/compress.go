package kernels

import "mica/internal/vm"

// LZ77 is a hash-chain string-matching compressor loop in the spirit of
// gzip/bzip2's match finders: hash three bytes, probe a hash table,
// compare candidate matches. Size is the input buffer length in bytes.
var LZ77 = mustKernel("lz77", `
	.data
params:	.space 64		# [0]=n  [1]=hash mask
src:	.space 262144
htab:	.space 524288		# 65536 entries x 8
	.text
main:
outer:	lda	r1, params
	ldq	r16, 0(r1)	# n
	ldq	r17, 8(r1)	# hash mask
	lda	r2, src
	lda	r3, htab
	lda	r4, 0		# i
	lda	r5, 0		# matched bytes accumulator
loop:	addq	r2, r4, r6	# &src[i]
	ldbu	r7, 0(r6)
	ldbu	r8, 1(r6)
	ldbu	r9, 2(r6)
	sll	r8, 8, r8
	sll	r9, 16, r9
	or	r7, r8, r7
	or	r7, r9, r7
	mulq	r7, 2654435761, r7
	srl	r7, 12, r7
	and	r7, r17, r7	# hash bucket
	s8addq	r7, r3, r10
	ldq	r11, 0(r10)	# previous position with this hash
	stq	r4, 0(r10)
	beq	r11, nomatch
	addq	r2, r11, r12	# candidate
	ldq	r13, 0(r12)
	ldq	r14, 0(r6)
	xor	r13, r14, r13
	beq	r13, match8
	addq	r5, 1, r5	# partial match
	br	nomatch
match8:	addq	r5, 8, r5	# full 8-byte match
nomatch:
	addq	r4, 1, r4
	subq	r16, r4, r6
	subq	r6, 8, r6
	bgt	r6, loop
	br	outer
`, 65536, 262144-16, func(m *vm.Machine, p Params) error {
	r := newRNG(p.Seed)
	// Compressible data: random bytes with repeated phrases copied from
	// earlier in the buffer.
	buf := make([]byte, p.Size+16)
	for i := range buf {
		if i > 64 && r.intn(4) != 0 {
			// Copy a short phrase from a recent position.
			src := i - 8 - r.intn(48)
			buf[i] = buf[src]
		} else {
			buf[i] = byte(r.intn(64))
		}
	}
	writeBytes(m, "src", buf)
	writeParams(m, uint64(p.Size), 65535)
	return nil
})

// Huffman is a bit-serial entropy decoder: walk a binary code tree one
// bit at a time, emitting a symbol at each leaf, as in JPEG/MPEG entropy
// decoding. Size is the bitstream length in 64-bit words.
var Huffman = mustKernel("huffman", `
	.data
params:	.space 64		# [0]=nwords
bits:	.space 65536
tree:	.space 16384		# 1024 nodes x 16 (left, right)
	.text
main:
outer:	lda	r1, params
	ldq	r16, 0(r1)	# nwords
	lda	r2, bits
	lda	r3, tree
	lda	r4, 0		# word index
	lda	r9, 0		# symbols decoded
wloop:	s8addq	r4, r2, r5
	ldq	r6, 0(r5)	# bit buffer
	lda	r7, 64		# bits remaining
	lda	r8, 0		# current node
bloop:	and	r6, 1, r10
	srl	r6, 1, r6
	sll	r8, 4, r11	# node offset = node*16
	addq	r3, r11, r11
	s8addq	r10, r11, r11	# &node.child[bit]
	ldq	r8, 0(r11)
	and	r8, 1024, r12	# leaf flag (bit 10)
	beq	r12, noleaf
	addq	r9, 1, r9	# emit symbol
	lda	r8, 0		# back to root
noleaf:	subq	r7, 1, r7
	bgt	r7, bloop
	addq	r4, 1, r4
	subq	r16, r4, r5
	bgt	r5, wloop
	br	outer
`, 4096, 8192, func(m *vm.Machine, p Params) error {
	r := newRNG(p.Seed)
	// Build a random binary code tree with 1024 node slots. Node i has
	// children at entries 2i and 2i+1 (as values); children past the
	// interior depth become leaves (flag bit 10 set).
	const nodes = 1024
	tree := make([]uint64, 2*nodes)
	for i := 0; i < nodes; i++ {
		for c := 0; c < 2; c++ {
			child := 2*i + 1 + c
			// Interior with decreasing probability in depth; all
			// nodes past half the table are leaves.
			if child < nodes/2 && r.intn(3) != 0 {
				tree[2*i+c] = uint64(child)
			} else {
				tree[2*i+c] = 1024 | uint64(r.intn(256)) // leaf
			}
		}
	}
	writeQuads(m, "tree", tree)
	bits := make([]uint64, p.Size)
	for i := range bits {
		bits[i] = r.next()
	}
	writeQuads(m, "bits", bits)
	writeParams(m, uint64(p.Size))
	return nil
})

// CRC32 is the table-driven cyclic redundancy checksum of CommBench's tcp
// and MiBench's CRC32: one table lookup and a handful of ALU operations
// per input byte, fully serial through the crc register. Size is the
// buffer length in bytes.
var CRC32 = mustKernel("crc32", `
	.data
params:	.space 64		# [0]=n
buf:	.space 131072
ctab:	.space 2048		# 256 x 8
	.text
main:
outer:	lda	r1, params
	ldq	r16, 0(r1)
	lda	r2, buf
	lda	r3, ctab
	lda	r4, 0
	ornot	r31, r31, r5	# crc = ~0
cloop:	addq	r2, r4, r6
	ldbu	r7, 0(r6)
	xor	r5, r7, r8
	and	r8, 255, r8
	s8addq	r8, r3, r8
	ldq	r8, 0(r8)
	srl	r5, 8, r5
	xor	r5, r8, r5
	addq	r4, 1, r4
	subq	r16, r4, r6
	bgt	r6, cloop
	br	outer
`, 32768, 131072, func(m *vm.Machine, p Params) error {
	r := newRNG(p.Seed)
	buf := make([]byte, p.Size)
	for i := range buf {
		buf[i] = byte(r.next())
	}
	writeBytes(m, "buf", buf)
	// Standard CRC-32 (IEEE) table, stored as 64-bit entries.
	tab := make([]uint64, 256)
	for i := 0; i < 256; i++ {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = 0xedb88320 ^ (c >> 1)
			} else {
				c >>= 1
			}
		}
		tab[i] = uint64(c)
	}
	writeQuads(m, "ctab", tab)
	writeParams(m, uint64(p.Size))
	return nil
})

// ReedSolomon is the GF(256) systematic encoder inner loop of CommBench's
// reed benchmark: per input byte, four Galois-field multiply-accumulate
// steps through a 64KB log/antilog-free multiplication table. Size is the
// message length in bytes.
var ReedSolomon = mustKernel("reedsolomon", `
	.data
params:	.space 64		# [0]=n  [1..4]=generator coefficients
data:	.space 65536
gmul:	.space 65536		# gmul[a*256+b] = GF(256) product
	.text
main:
outer:	lda	r1, params
	ldq	r16, 0(r1)	# n
	ldq	r20, 8(r1)	# g0
	ldq	r21, 16(r1)	# g1
	ldq	r22, 24(r1)	# g2
	ldq	r23, 32(r1)	# g3
	lda	r2, data
	lda	r3, gmul
	lda	r4, 0		# i
	lda	r5, 0		# parity0
	lda	r6, 0		# parity1
	lda	r7, 0		# parity2
	lda	r8, 0		# parity3
eloop:	addq	r2, r4, r9
	ldbu	r10, 0(r9)	# data byte
	xor	r5, r10, r10	# feedback
	and	r10, 255, r10
	sll	r10, 8, r10	# row offset
	addq	r3, r10, r10
	addq	r10, r20, r11
	ldbu	r11, 0(r11)
	xor	r6, r11, r5	# parity0'
	addq	r10, r21, r12
	ldbu	r12, 0(r12)
	xor	r7, r12, r6	# parity1'
	addq	r10, r22, r13
	ldbu	r13, 0(r13)
	xor	r8, r13, r7	# parity2'
	addq	r10, r23, r14
	ldbu	r14, 0(r14)
	or	r14, r31, r8	# parity3'
	addq	r4, 1, r4
	subq	r16, r4, r9
	bgt	r9, eloop
	br	outer
`, 16384, 65536, func(m *vm.Machine, p Params) error {
	r := newRNG(p.Seed)
	buf := make([]byte, p.Size)
	for i := range buf {
		buf[i] = byte(r.next())
	}
	writeBytes(m, "data", buf)
	// GF(256) multiplication table for the AES polynomial 0x11b.
	tab := make([]byte, 65536)
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			tab[a*256+b] = gfMul(byte(a), byte(b))
		}
	}
	writeBytes(m, "gmul", tab)
	writeParams(m, uint64(p.Size), 0x45, 0x87, 0xa9, 0x13)
	return nil
})

// gfMul multiplies in GF(2^8) with polynomial 0x11b.
func gfMul(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}
