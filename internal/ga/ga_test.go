package ga

import "testing"

// onemax counts set bits: the classic GA sanity problem.
func onemax(genes []bool) float64 {
	n := 0.0
	for _, g := range genes {
		if g {
			n++
		}
	}
	return n
}

func TestRunSolvesOneMax(t *testing.T) {
	res := Run(Config{Genes: 32, Seed: 1}, onemax)
	if res.Best.Fitness < 31 {
		t.Errorf("best fitness = %g on 32-bit onemax, want >= 31", res.Best.Fitness)
	}
}

func TestRunDeterministic(t *testing.T) {
	a := Run(Config{Genes: 24, Seed: 7}, onemax)
	b := Run(Config{Genes: 24, Seed: 7}, onemax)
	if a.Best.Fitness != b.Best.Fitness || a.Generations != b.Generations {
		t.Error("same seed gave different results")
	}
	for i := range a.Best.Genes {
		if a.Best.Genes[i] != b.Best.Genes[i] {
			t.Fatal("same seed gave different genes")
		}
	}
}

func TestRunTargetSubset(t *testing.T) {
	// Fitness rewards exactly genes {2, 5, 11} and punishes others:
	// the GA should find the precise subset.
	target := map[int]bool{2: true, 5: true, 11: true}
	fit := func(genes []bool) float64 {
		score := 0.0
		for i, g := range genes {
			if g == target[i] {
				score++
			}
		}
		return score
	}
	res := Run(Config{Genes: 16, Seed: 3}, fit)
	for i, g := range res.Best.Genes {
		if g != target[i] {
			t.Errorf("gene %d = %v, want %v", i, g, target[i])
		}
	}
}

func TestHistoryMonotone(t *testing.T) {
	res := Run(Config{Genes: 20, Seed: 5}, onemax)
	for i := 1; i < len(res.History); i++ {
		if res.History[i] < res.History[i-1] {
			t.Fatal("best-so-far history decreased")
		}
	}
}

func TestStallStopsEarly(t *testing.T) {
	// Constant fitness: the run should stop after StallGenerations.
	res := Run(Config{Genes: 8, Seed: 2, StallGenerations: 5, MaxGenerations: 1000},
		func([]bool) float64 { return 1 })
	if res.Generations > 10 {
		t.Errorf("ran %d generations on flat fitness, want <= 10", res.Generations)
	}
}

func TestCountSet(t *testing.T) {
	ind := Individual{Genes: []bool{true, false, true, true}}
	if ind.CountSet() != 3 {
		t.Errorf("CountSet = %d, want 3", ind.CountSet())
	}
}

func TestZeroGenesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Run with 0 genes did not panic")
		}
	}()
	Run(Config{}, onemax)
}

func TestElitismPreservesBest(t *testing.T) {
	// A deceptive fitness where mutation usually hurts: the best found
	// must never regress thanks to elitism (checked via history).
	fit := func(genes []bool) float64 {
		v := 0.0
		for i, g := range genes {
			if g && i%2 == 0 {
				v += 2
			} else if g {
				v -= 1
			}
		}
		return v
	}
	res := Run(Config{Genes: 30, Seed: 11}, fit)
	for i := 1; i < len(res.History); i++ {
		if res.History[i] < res.History[i-1] {
			t.Fatal("elite lost between generations")
		}
	}
}
