// Package ga implements the genetic algorithm of Section V-B: a
// generational GA over fixed-length bitstrings with tournament selection,
// uniform crossover, per-gene mutation and elitism. The paper uses it to
// search for small subsets of program characteristics whose reduced
// workload space preserves the distance structure of the full space; the
// engine here is generic over any bitstring fitness function.
package ga

import "math/rand"

// Config holds the GA hyper-parameters. Zero values select the defaults
// documented on each field.
type Config struct {
	// Genes is the bitstring length (required, > 0).
	Genes int
	// PopSize is the population size (default 64).
	PopSize int
	// MaxGenerations bounds the run (default 200).
	MaxGenerations int
	// StallGenerations stops the run when the best fitness has not
	// improved for this many generations (default 30), implementing the
	// paper's "until no more improvement is observed" rule.
	StallGenerations int
	// MutationRate is the per-gene flip probability (default 1/Genes).
	MutationRate float64
	// CrossoverRate is the probability a child is produced by uniform
	// crossover rather than cloning (default 0.9).
	CrossoverRate float64
	// TournamentK is the tournament selection size (default 3).
	TournamentK int
	// Elitism is how many best individuals survive unchanged (default 2).
	Elitism int
	// Seed makes runs reproducible.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.PopSize == 0 {
		c.PopSize = 64
	}
	if c.MaxGenerations == 0 {
		c.MaxGenerations = 200
	}
	if c.StallGenerations == 0 {
		c.StallGenerations = 30
	}
	if c.MutationRate == 0 {
		c.MutationRate = 1 / float64(c.Genes)
	}
	if c.CrossoverRate == 0 {
		c.CrossoverRate = 0.9
	}
	if c.TournamentK == 0 {
		c.TournamentK = 3
	}
	if c.Elitism == 0 {
		c.Elitism = 2
	}
	if c.Elitism > c.PopSize {
		c.Elitism = c.PopSize
	}
	return c
}

// Individual is one candidate solution.
type Individual struct {
	Genes   []bool
	Fitness float64
}

func (ind Individual) clone() Individual {
	g := make([]bool, len(ind.Genes))
	copy(g, ind.Genes)
	return Individual{Genes: g, Fitness: ind.Fitness}
}

// CountSet returns the number of set genes.
func (ind Individual) CountSet() int {
	n := 0
	for _, g := range ind.Genes {
		if g {
			n++
		}
	}
	return n
}

// FitnessFunc scores a bitstring; higher is better.
type FitnessFunc func(genes []bool) float64

// Result reports the outcome of a run.
type Result struct {
	Best        Individual
	Generations int
	// History records the best fitness at each generation.
	History []float64
}

// Run executes the GA and returns the best individual found. It panics if
// cfg.Genes <= 0.
func Run(cfg Config, fit FitnessFunc) Result {
	if cfg.Genes <= 0 {
		panic("ga: Config.Genes must be positive")
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	pop := make([]Individual, cfg.PopSize)
	for i := range pop {
		genes := make([]bool, cfg.Genes)
		for j := range genes {
			genes[j] = rng.Intn(2) == 1
		}
		pop[i] = Individual{Genes: genes, Fitness: fit(genes)}
	}

	best := bestOf(pop).clone()
	stall := 0
	var history []float64

	gen := 0
	for ; gen < cfg.MaxGenerations && stall < cfg.StallGenerations; gen++ {
		next := make([]Individual, 0, cfg.PopSize)

		// Elitism: copy the best individuals unchanged.
		order := sortedByFitness(pop)
		for i := 0; i < cfg.Elitism; i++ {
			next = append(next, order[i].clone())
		}

		for len(next) < cfg.PopSize {
			a := tournament(pop, cfg.TournamentK, rng)
			b := tournament(pop, cfg.TournamentK, rng)
			child := make([]bool, cfg.Genes)
			if rng.Float64() < cfg.CrossoverRate {
				for j := range child {
					if rng.Intn(2) == 0 {
						child[j] = a.Genes[j]
					} else {
						child[j] = b.Genes[j]
					}
				}
			} else {
				copy(child, a.Genes)
			}
			for j := range child {
				if rng.Float64() < cfg.MutationRate {
					child[j] = !child[j]
				}
			}
			next = append(next, Individual{Genes: child, Fitness: fit(child)})
		}
		pop = next

		if cand := bestOf(pop); cand.Fitness > best.Fitness {
			best = cand.clone()
			stall = 0
		} else {
			stall++
		}
		history = append(history, best.Fitness)
	}
	return Result{Best: best, Generations: gen, History: history}
}

func bestOf(pop []Individual) Individual {
	best := pop[0]
	for _, ind := range pop[1:] {
		if ind.Fitness > best.Fitness {
			best = ind
		}
	}
	return best
}

func sortedByFitness(pop []Individual) []Individual {
	out := make([]Individual, len(pop))
	copy(out, pop)
	// Insertion sort: populations are small and this avoids pulling in
	// sort for a hot path that runs once per generation.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Fitness > out[j-1].Fitness; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func tournament(pop []Individual, k int, rng *rand.Rand) Individual {
	best := pop[rng.Intn(len(pop))]
	for i := 1; i < k; i++ {
		if c := pop[rng.Intn(len(pop))]; c.Fitness > best.Fitness {
			best = c
		}
	}
	return best
}
