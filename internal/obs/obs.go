// Package obs is a dependency-free metrics layer: atomic counters,
// gauges and fixed-boundary histograms collected in a Registry,
// renderable as Prometheus text exposition or a JSON snapshot.
//
// Metric names follow the mica_<layer>_<name> snake_case convention
// and are validated at registration time; labeled families
// (CounterVec, GaugeVec, HistogramVec) materialize one child per
// label-value tuple on first use.
//
// The package-level Default() registry is what the pipeline layers
// (pool, ivstore, phases, cluster, trace) record into; servers that
// need per-instance isolation (internal/serve) construct their own
// Registry and render both.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// nameRE is the registration-time contract for every metric name:
// mica_<layer>_<name>, all snake_case. The lint test at the repo root
// walks live registries with the same expression.
var nameRE = regexp.MustCompile(`^mica(_[a-z][a-z0-9]*)+$`)

// ValidName reports whether name satisfies the mica_<layer>_<name>
// snake_case convention. Exposed for the registry lint test.
func ValidName(name string) bool {
	// Require at least layer + name beyond the mica prefix.
	return nameRE.MatchString(name) && strings.Count(name, "_") >= 2
}

// Counter is a monotonically increasing float64 value.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v. Negative deltas are ignored: counters only go up.
func (c *Counter) Add(v float64) {
	if v < 0 || v != v {
		return
	}
	addFloat(&c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a float64 value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (may be negative).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// SetMax raises the gauge to v if v is larger than the current value.
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// metricKind discriminates registry entries for rendering.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// family is one registered metric name: help text, kind, label names,
// and the children keyed by label-value tuple (the unlabeled child
// lives under the empty key).
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string
	bounds []float64 // histograms only

	mu       sync.Mutex
	children map[string]any // label tuple key -> *Counter | *Gauge | *Histogram
}

// childKey encodes label values into a deterministic map key.
func childKey(vals []string) string {
	if len(vals) == 0 {
		return ""
	}
	return strings.Join(vals, "\x00")
}

// child returns (creating if needed) the metric for the given label
// values.
func (f *family) child(vals []string) any {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s expects %d label values, got %d", f.name, len(f.labels), len(vals)))
	}
	key := childKey(vals)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[key]; ok {
		return m
	}
	var m any
	switch f.kind {
	case kindCounter:
		m = &Counter{}
	case kindGauge:
		m = &Gauge{}
	case kindHistogram:
		m = newHistogram(f.bounds)
	}
	f.children[key] = m
	return m
}

// Registry holds metric families by name. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-global registry the pipeline layers
// record into.
func Default() *Registry { return defaultRegistry }

// lookup returns (creating if needed) the family for name, panicking
// on invalid names or kind/label mismatches with a prior
// registration. Metric registration is programmer-controlled (no
// user input reaches it), so misuse is a bug worth failing loudly on.
func (r *Registry) lookup(name, help string, kind metricKind, labels []string, bounds []float64) *family {
	if !ValidName(name) {
		panic(fmt.Sprintf("obs: metric name %q does not match mica_<layer>_<name> snake_case", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different kind", name))
		}
		if len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered with different labels", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %s re-registered with different labels", name))
			}
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		bounds:   bounds,
		children: make(map[string]any),
	}
	r.families[name] = f
	return f
}

// Counter returns the unlabeled counter for name, registering it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, kindCounter, nil, nil).child(nil).(*Counter)
}

// Gauge returns the unlabeled gauge for name, registering it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, kindGauge, nil, nil).child(nil).(*Gauge)
}

// Histogram returns the unlabeled histogram for name, registering it
// on first use with the given bucket upper bounds (nil means
// DefaultDurationBounds).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.lookup(name, help, kindHistogram, nil, normBounds(bounds))
	return f.child(nil).(*Histogram)
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (in declaration
// order).
func (v *CounterVec) With(vals ...string) *Counter { return v.f.child(vals).(*Counter) }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(vals ...string) *Gauge { return v.f.child(vals).(*Gauge) }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(vals ...string) *Histogram { return v.f.child(vals).(*Histogram) }

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.lookup(name, help, kindCounter, labels, nil)}
}

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.lookup(name, help, kindGauge, labels, nil)}
}

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.lookup(name, help, kindHistogram, labels, normBounds(bounds))}
}

// Names returns every registered metric name, sorted. Used by the
// lint test and the Prometheus writer.
func (r *Registry) Names() []string {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// sortedChildren returns the family's children as (label-values, metric)
// pairs sorted by label tuple, for deterministic rendering.
func (f *family) sortedChildren() []childEntry {
	f.mu.Lock()
	entries := make([]childEntry, 0, len(f.children))
	for k, m := range f.children {
		var vals []string
		if k != "" || len(f.labels) > 0 {
			vals = strings.Split(k, "\x00")
		}
		entries = append(entries, childEntry{vals: vals, metric: m})
	}
	f.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool {
		return childKey(entries[i].vals) < childKey(entries[j].vals)
	})
	return entries
}

type childEntry struct {
	vals   []string
	metric any
}
