package obs

import "time"

// Stage-span metrics: every pipeline stage wrapped in StartSpan/End
// shows up as a duration histogram, a runs counter and an
// active-stage gauge, all labeled by stage name.
const (
	stageDurationName = "mica_stage_duration_seconds"
	stageRunsName     = "mica_stage_runs_total"
	stageActiveName   = "mica_stage_active"
)

// Span measures one execution of a named pipeline stage.
type Span struct {
	reg   *Registry
	stage string
	begin time.Time
	done  bool
}

// StartSpan opens a span for stage on the default registry.
// The caller must call End exactly once.
func StartSpan(stage string) *Span { return Default().StartSpan(stage) }

// StartSpan opens a span for stage on r.
func (r *Registry) StartSpan(stage string) *Span {
	r.GaugeVec(stageActiveName, "Stages currently executing.", "stage").With(stage).Add(1)
	return &Span{reg: r, stage: stage, begin: time.Now()}
}

// End closes the span: the duration is observed into the stage
// histogram, the runs counter is incremented and the active gauge
// decremented. Safe to call at most once; extra calls are no-ops.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	s.done = true
	d := time.Since(s.begin).Seconds()
	s.reg.GaugeVec(stageActiveName, "Stages currently executing.", "stage").With(s.stage).Add(-1)
	s.reg.HistogramVec(stageDurationName, "Stage wall-clock duration in seconds.", nil, "stage").With(s.stage).Observe(d)
	s.reg.CounterVec(stageRunsName, "Completed stage executions.", "stage").With(s.stage).Inc()
}

// StageRuns returns how many spans for stage have completed on r.
// Test helper for the exactly-once span assertions.
func (r *Registry) StageRuns(stage string) float64 {
	return r.CounterVec(stageRunsName, "Completed stage executions.", "stage").With(stage).Value()
}

// StageSeconds returns the total observed duration for stage on r.
func (r *Registry) StageSeconds(stage string) float64 {
	return r.HistogramVec(stageDurationName, "Stage wall-clock duration in seconds.", nil, "stage").With(stage).Sum()
}
