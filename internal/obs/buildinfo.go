package obs

import (
	"fmt"
	"runtime/debug"
)

// BuildInfo is the build-identity surface for -version flags and
// GET /api/v1/version: module version, Go toolchain, and the VCS
// state stamped by `go build` (absent under plain `go test` or when
// building outside a checkout).
type BuildInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision,omitempty"`
	Time      string `json:"time,omitempty"`
	Dirty     bool   `json:"dirty"`
}

// Build reads the running binary's build info.
func Build() BuildInfo {
	bi := BuildInfo{Version: "(devel)"}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	bi.GoVersion = info.GoVersion
	if info.Main.Version != "" {
		bi.Version = info.Main.Version
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			bi.Revision = s.Value
		case "vcs.time":
			bi.Time = s.Value
		case "vcs.modified":
			bi.Dirty = s.Value == "true"
		}
	}
	return bi
}

// String renders the one-line form printed by every cmd's -version
// flag.
func (b BuildInfo) String() string {
	rev := b.Revision
	if rev == "" {
		rev = "unknown"
	} else if len(rev) > 12 {
		rev = rev[:12]
	}
	dirty := ""
	if b.Dirty {
		dirty = " (dirty)"
	}
	return fmt.Sprintf("mica %s %s rev %s%s", b.Version, b.GoVersion, rev, dirty)
}
