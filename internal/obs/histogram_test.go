package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func exactQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// bucketWidthAt returns the width of the bucket containing v, the
// histogram's intrinsic resolution at that point.
func bucketWidthAt(bounds []float64, v float64) float64 {
	i := sort.SearchFloat64s(bounds, v)
	if i >= len(bounds) {
		return math.Inf(1)
	}
	lo := 0.0
	if i > 0 {
		lo = bounds[i-1]
	}
	return bounds[i] - lo
}

// TestQuantileAccuracyProperty drives random workloads through the
// histogram and checks every estimated quantile against an exact
// oracle: the estimate must land within one bucket width of the true
// value (the best any fixed-boundary sketch can promise).
func TestQuantileAccuracyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	dists := []struct {
		name string
		gen  func() float64
	}{
		{"uniform", func() float64 { return rng.Float64() * 5 }},
		{"exp", func() float64 { return rng.ExpFloat64() * 0.05 }},
		{"lognormal", func() float64 { return math.Exp(rng.NormFloat64()*1.5 - 4) }},
		{"bimodal", func() float64 {
			if rng.Intn(2) == 0 {
				return 0.001 + rng.Float64()*0.001
			}
			return 1 + rng.Float64()
		}},
	}
	quantiles := []float64{0.1, 0.5, 0.9, 0.99}
	for _, d := range dists {
		for trial := 0; trial < 5; trial++ {
			h := newHistogram(normBounds(nil))
			n := 100 + rng.Intn(5000)
			vals := make([]float64, n)
			for i := range vals {
				v := d.gen()
				vals[i] = v
				h.Observe(v)
			}
			sort.Float64s(vals)
			for _, q := range quantiles {
				got := h.Quantile(q)
				want := exactQuantile(vals, q)
				tol := bucketWidthAt(h.bounds, want)
				// Values beyond the last finite bound clamp there.
				if want > h.bounds[len(h.bounds)-1] {
					if got != h.bounds[len(h.bounds)-1] {
						t.Errorf("%s trial %d q%v: overflow clamp got %v", d.name, trial, q, got)
					}
					continue
				}
				if math.Abs(got-want) > tol {
					t.Errorf("%s trial %d n=%d q%v: estimate %v vs exact %v exceeds bucket width %v",
						d.name, trial, n, q, got, want, tol)
				}
			}
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	h := newHistogram(normBounds(nil))
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	h.Observe(math.NaN()) // dropped
	if h.Count() != 0 {
		t.Fatal("NaN was observed")
	}
	h.Observe(1e9) // far past the last bound
	if got := h.Quantile(0.99); got != h.bounds[len(h.bounds)-1] {
		t.Fatalf("overflow quantile = %v, want clamp to %v", got, h.bounds[len(h.bounds)-1])
	}
	// Quantile args outside [0,1] are clamped, not rejected.
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Fatalf("q=-1 -> %v, q=0 -> %v", got, h.Quantile(0))
	}
	if got := h.Quantile(2); got != h.Quantile(1) {
		t.Fatalf("q=2 -> %v, q=1 -> %v", got, h.Quantile(1))
	}
}

func TestHistogramBucketsCumulativeInvariant(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 9, 2} {
		h.Observe(v)
	}
	counts := h.BucketCounts()
	want := []uint64{2, 2, 1, 1} // (<=1)=0.5,1  (<=2)=1.5,2  (<=4)=3  (+Inf)=9
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, counts[i], want[i], counts)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if math.Abs(h.Sum()-17.0) > 1e-9 {
		t.Fatalf("sum = %v, want 17", h.Sum())
	}
}

func TestCustomBoundsAreSorted(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mica_test_x_seconds", "", []float64{4, 1, 2})
	h.Observe(1.5)
	if got := h.Quantile(0.5); got < 1 || got > 2 {
		t.Fatalf("quantile with unsorted bounds = %v, want in [1,2]", got)
	}
}
