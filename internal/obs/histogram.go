package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// DefaultDurationBounds covers 100µs .. ~100s in roughly-log-spaced
// steps — wide enough for both sub-millisecond HTTP handlers and
// multi-second pipeline stages.
var DefaultDurationBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

func normBounds(b []float64) []float64 {
	if len(b) == 0 {
		b = DefaultDurationBounds
	}
	out := append([]float64(nil), b...)
	sort.Float64s(out)
	return out
}

// Histogram is a fixed-boundary histogram: observations land in the
// first bucket whose upper bound is >= v, with an implicit +Inf
// overflow bucket. Quantiles are estimated by linear interpolation
// within the bucket containing the requested rank.
type Histogram struct {
	bounds  []float64       // sorted upper bounds; buckets has len(bounds)+1
	buckets []atomic.Uint64 // non-cumulative per-bucket counts
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds:  bounds,
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if v != v { // NaN
		return
	}
	// First bound >= v; len(bounds) is the +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns a snapshot of the non-cumulative per-bucket
// counts (last entry is the +Inf overflow bucket).
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation within the bucket containing rank q*count. Values in
// the overflow bucket are reported as the largest finite bound: the
// estimate is clamped to the observable range, like Prometheus's
// histogram_quantile. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	counts := h.BucketCounts()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range counts {
		prev := cum
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		if i == len(h.bounds) {
			// Overflow bucket: clamp to the largest finite bound.
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		// Position of the rank within this bucket, in [0,1].
		frac := (rank - float64(prev)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return lo + (hi-lo)*frac
	}
	return h.bounds[len(h.bounds)-1]
}
