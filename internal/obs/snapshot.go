package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// HistSnap is the JSON form of one histogram child in a Snapshot.
type HistSnap struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snap is a point-in-time copy of a registry, keyed by
// `name` or `name{label="value",...}` for labeled children. It is the
// -stats dump format for the CLIs and the source for mica-bench's
// per-run metric deltas.
type Snap struct {
	Counters   map[string]float64  `json:"counters,omitempty"`
	Gauges     map[string]float64  `json:"gauges,omitempty"`
	Histograms map[string]HistSnap `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() Snap {
	s := Snap{
		Counters:   map[string]float64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnap{},
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	for _, f := range fams {
		for _, e := range f.sortedChildren() {
			key := f.name + labelSet(f.labels, e.vals, "", "")
			switch m := e.metric.(type) {
			case *Counter:
				s.Counters[key] = m.Value()
			case *Gauge:
				s.Gauges[key] = m.Value()
			case *Histogram:
				s.Histograms[key] = HistSnap{
					Count: m.Count(),
					Sum:   m.Sum(),
					P50:   m.Quantile(0.50),
					P90:   m.Quantile(0.90),
					P99:   m.Quantile(0.99),
				}
			}
		}
	}
	return s
}

// Flatten renders the snapshot as a single map of float64s, suitable
// for embedding in bench-history JSON: counters and gauges keep their
// keys, histograms contribute `<key>_count`, `<key>_sum_seconds` (the
// raw sum; for duration histograms the unit is seconds) and
// `<key>_p99`.
func (s Snap) Flatten() map[string]float64 {
	out := make(map[string]float64, len(s.Counters)+len(s.Gauges)+3*len(s.Histograms))
	for k, v := range s.Counters {
		out[k] = v
	}
	for k, v := range s.Gauges {
		out[k] = v
	}
	for k, h := range s.Histograms {
		out[k+":count"] = float64(h.Count)
		out[k+":sum"] = h.Sum
		out[k+":p99"] = h.P99
	}
	return out
}

// Delta returns flattened current-minus-base for counters and
// histogram counts/sums, and the current value for gauges (gauges are
// levels, not totals). Keys whose delta is zero are dropped so bench
// entries only record what the run actually touched.
func Delta(base, cur Snap) map[string]float64 {
	out := map[string]float64{}
	for k, v := range cur.Counters {
		if d := v - base.Counters[k]; d != 0 {
			out[k] = d
		}
	}
	for k, v := range cur.Gauges {
		if v != 0 {
			out[k] = v
		}
	}
	for k, h := range cur.Histograms {
		b := base.Histograms[k]
		if d := h.Count - b.Count; d != 0 {
			out[k+":count"] = float64(d)
			out[k+":sum"] = h.Sum - b.Sum
		}
	}
	return out
}

// DumpStats writes Default()'s snapshot as indented JSON to path, or
// to stdout when path is "-". It backs the CLIs' -stats flag.
func DumpStats(path string) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(Default().Snapshot()); err != nil {
		return fmt.Errorf("write stats: %w", err)
	}
	return nil
}

// LayerOf extracts the <layer> component of a mica_<layer>_<name>
// metric key (label suffix tolerated). Empty when malformed.
func LayerOf(key string) string {
	name, _, _ := strings.Cut(key, "{")
	parts := strings.SplitN(name, "_", 3)
	if len(parts) < 3 || parts[0] != "mica" {
		return ""
	}
	return parts[1]
}
