package obs

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WritePrometheus renders every metric in the registry in Prometheus
// text exposition format (version 0.0.4), families sorted by name and
// children sorted by label tuple so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sortFamilies(fams)
	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func sortFamilies(fams []*family) {
	for i := 1; i < len(fams); i++ {
		for j := i; j > 0 && fams[j-1].name > fams[j].name; j-- {
			fams[j-1], fams[j] = fams[j], fams[j-1]
		}
	}
}

func (f *family) write(w io.Writer) error {
	kind := "counter"
	switch f.kind {
	case kindGauge:
		kind = "gauge"
	case kindHistogram:
		kind = "histogram"
	}
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, kind); err != nil {
		return err
	}
	for _, e := range f.sortedChildren() {
		if err := f.writeChild(w, e); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeChild(w io.Writer, e childEntry) error {
	switch m := e.metric.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelSet(f.labels, e.vals, "", ""), formatValue(m.Value()))
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelSet(f.labels, e.vals, "", ""), formatValue(m.Value()))
		return err
	case *Histogram:
		counts := m.BucketCounts()
		var cum uint64
		for i, c := range counts {
			cum += c
			le := "+Inf"
			if i < len(m.bounds) {
				le = formatValue(m.bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelSet(f.labels, e.vals, "le", le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelSet(f.labels, e.vals, "", ""), formatValue(m.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelSet(f.labels, e.vals, "", ""), cum)
		return err
	}
	return nil
}

// labelSet renders {k="v",...} for the family labels plus an optional
// extra pair (the histogram "le" bound). Empty set renders as "".
func labelSet(names, vals []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(vals) {
			v = vals[i]
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteString(`"`)
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraV))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
func escapeHelp(s string) string  { return helpEscaper.Replace(s) }

// formatValue renders a float the way Prometheus clients do: integral
// values without a decimal point, %g otherwise.
func formatValue(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
