package obs

import (
	"fmt"
	"strings"
	"testing"
)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("mica_test_items_total", "Items processed.").Add(7)
	r.Gauge("mica_test_depth", "Queue depth.").Set(2.5)
	h := r.Histogram("mica_test_dur_seconds", "Duration.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)
	v := r.CounterVec("mica_test_req_total", "Requests.", "endpoint", "code")
	v.With("stats", "200").Inc()
	v.With(`we"ird`+"\n", `back\slash`).Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# HELP mica_test_items_total Items processed.\n# TYPE mica_test_items_total counter\nmica_test_items_total 7\n",
		"# TYPE mica_test_depth gauge\nmica_test_depth 2.5\n",
		"# TYPE mica_test_dur_seconds histogram\n",
		`mica_test_dur_seconds_bucket{le="0.1"} 1`,
		`mica_test_dur_seconds_bucket{le="1"} 2`,
		`mica_test_dur_seconds_bucket{le="+Inf"} 3`,
		"mica_test_dur_seconds_sum 3.55",
		"mica_test_dur_seconds_count 3",
		`mica_test_req_total{endpoint="stats",code="200"} 1`,
		`mica_test_req_total{endpoint="we\"ird\n",code="back\\slash"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n---\n%s", want, out)
		}
	}

	AssertWellFormedExposition(t, out)

	// Families must be sorted by name for deterministic scrapes.
	var order []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			order = append(order, strings.Fields(line)[2])
		}
	}
	for i := 1; i < len(order); i++ {
		if order[i-1] > order[i] {
			t.Fatalf("families out of order: %v", order)
		}
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		7:      "7",
		2.5:    "2.5",
		-3:     "-3",
		0.0001: "0.0001",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
	if got := fmt.Sprint(formatValue(1e20)); got != "1e+20" {
		t.Errorf("formatValue(1e20) = %q", got)
	}
}
