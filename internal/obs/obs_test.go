package obs

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mica_test_items_total", "items")
	c.Inc()
	c.Add(2.5)
	c.Add(-10) // ignored: counters are monotonic
	c.Add(math.NaN())
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	// Same name returns the same counter.
	if r.Counter("mica_test_items_total", "items") != c {
		t.Fatal("re-registration did not return the same counter")
	}

	g := r.Gauge("mica_test_depth", "depth")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	g.SetMax(10)
	g.SetMax(3) // lower: no-op
	if got := g.Value(); got != 10 {
		t.Fatalf("gauge after SetMax = %v, want 10", got)
	}
}

func TestNameValidation(t *testing.T) {
	valid := []string{"mica_pool_items_total", "mica_serve_request_seconds", "mica_stage_active"}
	invalid := []string{"", "pool_items", "mica_", "mica_pool", "Mica_pool_x", "mica_pool_Items", "mica-pool-items", "mica_pool__items", "mica_pool_items "}
	for _, n := range valid {
		if !ValidName(n) {
			t.Errorf("ValidName(%q) = false, want true", n)
		}
	}
	for _, n := range invalid {
		if ValidName(n) {
			t.Errorf("ValidName(%q) = true, want false", n)
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("registering an invalid name did not panic")
		}
	}()
	NewRegistry().Counter("bad_name", "")
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("mica_test_thing", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering as a different kind did not panic")
		}
	}()
	r.Gauge("mica_test_thing", "")
}

func TestVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("mica_serve_requests_total", "requests", "endpoint")
	v.With("stats").Inc()
	v.With("stats").Inc()
	v.With("similar").Inc()
	if got := v.With("stats").Value(); got != 2 {
		t.Fatalf(`With("stats") = %v, want 2`, got)
	}
	if got := v.With("similar").Value(); got != 1 {
		t.Fatalf(`With("similar") = %v, want 1`, got)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	v.With("a", "b")
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mica_test_ops_total", "")
	g := r.Gauge("mica_test_level", "")
	h := r.Histogram("mica_test_latency_seconds", "", nil)
	vec := r.CounterVec("mica_test_labeled_total", "", "k")

	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 1000)
				vec.With("x").Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %v, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Errorf("gauge = %v, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %v, want %d", got, workers*per)
	}
	if got := vec.With("x").Value(); got != workers*per {
		t.Errorf("vec counter = %v, want %d", got, workers*per)
	}
}

func TestSnapshotAndDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mica_test_items_total", "")
	c.Add(5)
	r.Gauge("mica_test_depth", "").Set(3)
	h := r.Histogram("mica_test_dur_seconds", "", nil)
	h.Observe(0.2)
	h.Observe(0.3)
	base := r.Snapshot()
	if base.Counters["mica_test_items_total"] != 5 {
		t.Fatalf("snapshot counter = %v", base.Counters["mica_test_items_total"])
	}
	hs := base.Histograms["mica_test_dur_seconds"]
	if hs.Count != 2 || hs.Sum != 0.5 {
		t.Fatalf("snapshot histogram = %+v", hs)
	}

	c.Add(2)
	h.Observe(1.5)
	d := Delta(base, r.Snapshot())
	if d["mica_test_items_total"] != 2 {
		t.Errorf("delta counter = %v, want 2", d["mica_test_items_total"])
	}
	if d["mica_test_dur_seconds:count"] != 1 {
		t.Errorf("delta hist count = %v, want 1", d["mica_test_dur_seconds:count"])
	}
	if math.Abs(d["mica_test_dur_seconds:sum"]-1.5) > 1e-9 {
		t.Errorf("delta hist sum = %v, want 1.5", d["mica_test_dur_seconds:sum"])
	}
	// Gauges report current level.
	if d["mica_test_depth"] != 3 {
		t.Errorf("delta gauge = %v, want 3", d["mica_test_depth"])
	}
	// Untouched keys are dropped.
	if _, ok := d["mica_test_items_total:count"]; ok {
		t.Error("unexpected key in delta")
	}
}

func TestLayerOf(t *testing.T) {
	cases := map[string]string{
		"mica_pool_items_total":                   "pool",
		`mica_serve_requests_total{endpoint="s"}`: "serve",
		"mica_stage_duration_seconds":             "stage",
		"not_a_metric":                            "",
		"mica_pool":                               "",
	}
	for in, want := range cases {
		if got := LayerOf(in); got != want {
			t.Errorf("LayerOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSpans(t *testing.T) {
	r := NewRegistry()
	s := r.StartSpan("phases.test")
	if got := r.GaugeVec(stageActiveName, "", "stage").With("phases.test").Value(); got != 1 {
		t.Fatalf("active gauge during span = %v, want 1", got)
	}
	s.End()
	s.End() // idempotent
	if got := r.StageRuns("phases.test"); got != 1 {
		t.Fatalf("StageRuns = %v, want 1", got)
	}
	if got := r.GaugeVec(stageActiveName, "", "stage").With("phases.test").Value(); got != 0 {
		t.Fatalf("active gauge after span = %v, want 0", got)
	}
	if r.StageSeconds("phases.test") < 0 {
		t.Fatal("negative stage seconds")
	}
	var nilSpan *Span
	nilSpan.End() // must not panic
}

func TestBuildInfo(t *testing.T) {
	b := Build()
	if b.Version == "" {
		t.Fatal("empty version")
	}
	if !strings.HasPrefix(b.String(), "mica ") {
		t.Fatalf("String() = %q", b.String())
	}
}

// TestDumpStatsAndFlatten covers the CLI-facing surface: the global
// registry's -stats JSON dump round-trips, Default()/StartSpan/Names
// feed it, and Flatten exposes histogram count/sum/p99 keys.
func TestDumpStatsAndFlatten(t *testing.T) {
	Default().Counter("mica_test_dumped_total", "Dump coverage.").Add(3)
	StartSpan("phases.dumptest").End()
	if !slices.Contains(Default().Names(), "mica_test_dumped_total") {
		t.Fatal("Names() is missing a registered counter")
	}

	path := filepath.Join(t.TempDir(), "stats.json")
	if err := DumpStats(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snap
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("stats dump is not a Snap document: %v", err)
	}
	if snap.Counters["mica_test_dumped_total"] != 3 {
		t.Fatalf("dump counters = %v", snap.Counters)
	}

	flat := snap.Flatten()
	key := stageDurationName + `{stage="phases.dumptest"}`
	if flat[key+":count"] < 1 {
		t.Fatalf("flattened dump missing %s:count (have %d keys)", key, len(flat))
	}
	if _, ok := flat[key+":p99"]; !ok {
		t.Fatalf("flattened dump missing %s:p99", key)
	}
	h := Default().Histogram("mica_test_dump_seconds", "", nil)
	if len(h.Bounds()) != len(DefaultDurationBounds) {
		t.Fatal("nil bounds did not normalize to the defaults")
	}

	if err := DumpStats(filepath.Join(t.TempDir(), "no/such/dir/stats.json")); err == nil {
		t.Fatal("DumpStats to an uncreatable path must error")
	}
}
