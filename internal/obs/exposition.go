package obs

import (
	"bufio"
	"regexp"
	"strings"
)

var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (?:[-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|[-+]?Inf|NaN)$`)

// TestReporter is the slice of *testing.T the exposition checker
// needs; taking the interface keeps the testing package out of
// non-test builds.
type TestReporter interface {
	Helper()
	Errorf(string, ...any)
}

// AssertWellFormedExposition fails t unless text parses as Prometheus
// text exposition format 0.0.4: every non-comment line is
// `name{labels} value`, every sample name is introduced by a # TYPE
// line, and only known metric types appear. Shared by the obs format
// tests, the serve scrape tests and the daemon e2e smoke, so all
// three hold /metrics to one definition of well-formed.
func AssertWellFormedExposition(t TestReporter, text string) {
	t.Helper()
	typed := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	n := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		n++
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Errorf("malformed TYPE line: %q", line)
				continue
			}
			switch f[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Errorf("unknown metric type in %q", line)
			}
			typed[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed sample line: %q", line)
			continue
		}
		name, _, _ := strings.Cut(line, "{")
		name, _, _ = strings.Cut(name, " ")
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) {
				if _, ok := typed[strings.TrimSuffix(name, suffix)]; ok {
					base = strings.TrimSuffix(name, suffix)
				}
			}
		}
		if _, ok := typed[base]; !ok {
			t.Errorf("sample %q has no preceding # TYPE line", name)
		}
	}
	if n == 0 {
		t.Errorf("empty exposition")
	}
}
