// Package predict implements performance prediction from inherent
// program similarity, the application the paper's companion work (Hoste
// et al., PACT 2006, reference [8]) builds on the same characteristics:
// a new application's performance on a machine is estimated from the
// measured performance of its nearest neighbours in the
// microarchitecture-independent workload space.
//
// The package provides distance-weighted k-nearest-neighbour regression
// plus leave-one-out evaluation, which quantifies how much predictive
// power a characteristic subset retains — an end-to-end validation of
// the paper's key-characteristic selection.
package predict

import (
	"fmt"
	"math"
	"sort"

	"mica/internal/stats"
)

// KNN is a fitted nearest-neighbour regressor over a normalized workload
// space.
type KNN struct {
	feats  *stats.Matrix
	target []float64
	k      int
}

// NewKNN builds a regressor from a (normalized) benchmark-by-
// characteristic matrix and one target metric per benchmark (e.g. IPC on
// some machine). k is the neighbourhood size.
func NewKNN(feats *stats.Matrix, target []float64, k int) (*KNN, error) {
	if feats.Rows != len(target) {
		return nil, fmt.Errorf("predict: %d feature rows but %d targets", feats.Rows, len(target))
	}
	if k < 1 {
		return nil, fmt.Errorf("predict: k must be >= 1, got %d", k)
	}
	if feats.Rows == 0 {
		return nil, fmt.Errorf("predict: empty training set")
	}
	return &KNN{feats: feats, target: target, k: k}, nil
}

// Predict estimates the target metric for a query characteristic vector
// using inverse-distance weighting over the k nearest training
// benchmarks. exclude >= 0 removes one training row (for leave-one-out);
// pass -1 to use all rows.
func (p *KNN) Predict(query []float64, exclude int) float64 {
	type cand struct {
		dist float64
		val  float64
		row  int
	}
	cands := make([]cand, 0, p.feats.Rows)
	for i := 0; i < p.feats.Rows; i++ {
		if i == exclude {
			continue
		}
		cands = append(cands, cand{stats.Euclidean(query, p.feats.Row(i)), p.target[i], i})
	}
	// Ties on distance (duplicate benchmarks, symmetric synthetic rows)
	// are broken by training-row index: sort.Slice alone leaves the
	// order of equal keys up to the sorting algorithm, which would make
	// the selected neighbourhood — and hence the prediction — an
	// artifact of the sort rather than of the data.
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].dist != cands[b].dist {
			return cands[a].dist < cands[b].dist
		}
		return cands[a].row < cands[b].row
	})
	k := p.k
	if k > len(cands) {
		k = len(cands)
	}
	num, den := 0.0, 0.0
	for _, c := range cands[:k] {
		w := 1 / (c.dist + 1e-9)
		num += w * c.val
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Evaluation summarizes leave-one-out prediction quality.
type Evaluation struct {
	// Predictions holds the leave-one-out estimate per benchmark.
	Predictions []float64
	// MAE is the mean absolute error.
	MAE float64
	// MAPE is the mean absolute percentage error (rows with zero truth
	// are skipped).
	MAPE float64
	// Correlation is the Pearson correlation of predicted vs true.
	Correlation float64
	// RankCorrelation is the Spearman correlation of predicted vs true
	// — the metric that matters for machine ranking, as in the PACT
	// 2006 use case.
	RankCorrelation float64
}

// LeaveOneOut predicts every benchmark's target from all the others and
// scores the result.
func LeaveOneOut(feats *stats.Matrix, target []float64, k int) (Evaluation, error) {
	p, err := NewKNN(feats, target, k)
	if err != nil {
		return Evaluation{}, err
	}
	n := feats.Rows
	ev := Evaluation{Predictions: make([]float64, n)}
	var absErr, pctErr float64
	pctN := 0
	for i := 0; i < n; i++ {
		pred := p.Predict(feats.Row(i), i)
		ev.Predictions[i] = pred
		absErr += math.Abs(pred - target[i])
		if target[i] != 0 {
			pctErr += math.Abs(pred-target[i]) / math.Abs(target[i])
			pctN++
		}
	}
	ev.MAE = absErr / float64(n)
	if pctN > 0 {
		ev.MAPE = pctErr / float64(pctN)
	}
	ev.Correlation = stats.Pearson(ev.Predictions, target)
	ev.RankCorrelation = stats.Spearman(ev.Predictions, target)
	return ev, nil
}
