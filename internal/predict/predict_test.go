package predict

import (
	"math"
	"math/rand"
	"testing"

	"mica/internal/stats"
)

// syntheticSpace builds a feature matrix whose target is a smooth
// function of the features plus noise, so nearby points have nearby
// targets.
func syntheticSpace(n int, seed int64) (*stats.Matrix, []float64) {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	target := make([]float64, n)
	for i := range rows {
		a, b, c := rng.Float64(), rng.Float64(), rng.Float64()
		rows[i] = []float64{a, b, c}
		target[i] = 2*a - b + 0.5*c + rng.NormFloat64()*0.02
	}
	return stats.FromRows(rows), target
}

func TestKNNExactNeighbor(t *testing.T) {
	feats, target := syntheticSpace(50, 1)
	p, err := NewKNN(feats, target, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Querying a training point with k=1 and no exclusion returns its
	// own target (distance ~0 dominates the weighting).
	for i := 0; i < 10; i++ {
		got := p.Predict(feats.Row(i), -1)
		if math.Abs(got-target[i]) > 1e-6 {
			t.Errorf("row %d: predicted %g, own target %g", i, got, target[i])
		}
	}
}

func TestLeaveOneOutTracksSmoothFunction(t *testing.T) {
	feats, target := syntheticSpace(200, 2)
	ev, err := LeaveOneOut(feats, target, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Correlation < 0.9 {
		t.Errorf("LOO correlation = %g, want > 0.9 on smooth target", ev.Correlation)
	}
	if ev.RankCorrelation < 0.85 {
		t.Errorf("LOO rank correlation = %g, want > 0.85", ev.RankCorrelation)
	}
	if ev.MAE > 0.2 {
		t.Errorf("MAE = %g, want small", ev.MAE)
	}
	if len(ev.Predictions) != 200 {
		t.Error("prediction count wrong")
	}
}

func TestUninformativeFeaturesPredictPoorly(t *testing.T) {
	// Target independent of features: prediction cannot beat chance.
	rng := rand.New(rand.NewSource(3))
	rows := make([][]float64, 150)
	target := make([]float64, 150)
	for i := range rows {
		rows[i] = []float64{rng.Float64(), rng.Float64()}
		target[i] = rng.Float64()
	}
	ev, err := LeaveOneOut(stats.FromRows(rows), target, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev.Correlation) > 0.35 {
		t.Errorf("correlation %g on random target, want ~0", ev.Correlation)
	}
}

func TestValidation(t *testing.T) {
	feats, target := syntheticSpace(10, 4)
	if _, err := NewKNN(feats, target[:5], 3); err == nil {
		t.Error("row/target mismatch accepted")
	}
	if _, err := NewKNN(feats, target, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewKNN(stats.NewMatrix(0, 3), nil, 1); err == nil {
		t.Error("empty training set accepted")
	}
}

func TestKLargerThanTrainingSet(t *testing.T) {
	feats, target := syntheticSpace(4, 5)
	p, err := NewKNN(feats, target, 100)
	if err != nil {
		t.Fatal(err)
	}
	got := p.Predict([]float64{0.5, 0.5, 0.5}, -1)
	if math.IsNaN(got) {
		t.Error("prediction NaN with k > n")
	}
}
