package predict

import (
	"math"
	"math/rand"
	"testing"

	"mica/internal/stats"
)

// syntheticSpace builds a feature matrix whose target is a smooth
// function of the features plus noise, so nearby points have nearby
// targets.
func syntheticSpace(n int, seed int64) (*stats.Matrix, []float64) {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	target := make([]float64, n)
	for i := range rows {
		a, b, c := rng.Float64(), rng.Float64(), rng.Float64()
		rows[i] = []float64{a, b, c}
		target[i] = 2*a - b + 0.5*c + rng.NormFloat64()*0.02
	}
	return stats.FromRows(rows), target
}

func TestKNNExactNeighbor(t *testing.T) {
	feats, target := syntheticSpace(50, 1)
	p, err := NewKNN(feats, target, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Querying a training point with k=1 and no exclusion returns its
	// own target (distance ~0 dominates the weighting).
	for i := 0; i < 10; i++ {
		got := p.Predict(feats.Row(i), -1)
		if math.Abs(got-target[i]) > 1e-6 {
			t.Errorf("row %d: predicted %g, own target %g", i, got, target[i])
		}
	}
}

func TestLeaveOneOutTracksSmoothFunction(t *testing.T) {
	feats, target := syntheticSpace(200, 2)
	ev, err := LeaveOneOut(feats, target, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Correlation < 0.9 {
		t.Errorf("LOO correlation = %g, want > 0.9 on smooth target", ev.Correlation)
	}
	if ev.RankCorrelation < 0.85 {
		t.Errorf("LOO rank correlation = %g, want > 0.85", ev.RankCorrelation)
	}
	if ev.MAE > 0.2 {
		t.Errorf("MAE = %g, want small", ev.MAE)
	}
	if len(ev.Predictions) != 200 {
		t.Error("prediction count wrong")
	}
}

func TestUninformativeFeaturesPredictPoorly(t *testing.T) {
	// Target independent of features: prediction cannot beat chance.
	rng := rand.New(rand.NewSource(3))
	rows := make([][]float64, 150)
	target := make([]float64, 150)
	for i := range rows {
		rows[i] = []float64{rng.Float64(), rng.Float64()}
		target[i] = rng.Float64()
	}
	ev, err := LeaveOneOut(stats.FromRows(rows), target, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev.Correlation) > 0.35 {
		t.Errorf("correlation %g on random target, want ~0", ev.Correlation)
	}
}

func TestValidation(t *testing.T) {
	feats, target := syntheticSpace(10, 4)
	if _, err := NewKNN(feats, target[:5], 3); err == nil {
		t.Error("row/target mismatch accepted")
	}
	if _, err := NewKNN(feats, target, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewKNN(stats.NewMatrix(0, 3), nil, 1); err == nil {
		t.Error("empty training set accepted")
	}
}

func TestKLargerThanTrainingSet(t *testing.T) {
	feats, target := syntheticSpace(4, 5)
	p, err := NewKNN(feats, target, 100)
	if err != nil {
		t.Fatal(err)
	}
	got := p.Predict([]float64{0.5, 0.5, 0.5}, -1)
	if math.IsNaN(got) {
		t.Error("prediction NaN with k > n")
	}
}

// TestPredictTieBreakByRowIndex is the determinism regression for tied
// distances: with duplicated training rows (equidistant neighbours),
// the neighbourhood must be filled in ascending training-row order, so
// the prediction is a property of the data, not of the sort algorithm's
// handling of equal keys.
func TestPredictTieBreakByRowIndex(t *testing.T) {
	feats := stats.FromRows([][]float64{
		{0, 0, 0}, // row 0: the query point, target 1
		{0, 0, 0}, // row 1: duplicate, target 5
		{0, 0, 0}, // row 2: duplicate, target 9
		{9, 9, 9}, // row 3: far away
	})
	target := []float64{1, 5, 9, 100}
	p, err := NewKNN(feats, target, 1)
	if err != nil {
		t.Fatal(err)
	}
	query := []float64{0, 0, 0}
	// k=1 over three zero-distance candidates: the lowest row index
	// wins the single slot.
	if got := p.Predict(query, -1); got != 1 {
		t.Errorf("k=1 tied prediction = %g, want row 0's target 1", got)
	}
	// Excluding row 0 promotes row 1, never row 2.
	if got := p.Predict(query, 0); got != 5 {
		t.Errorf("k=1 tied prediction excluding row 0 = %g, want row 1's target 5", got)
	}
	// k=2 must take rows 0 and 1 (equal weights at distance 0): the
	// mean of their targets, not any pair involving row 2.
	p2, err := NewKNN(feats, target, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Predict(query, -1); math.Abs(got-3) > 1e-9 {
		t.Errorf("k=2 tied prediction = %g, want (1+5)/2 = 3", got)
	}
	// And the choice is stable across repeated calls.
	for trial := 0; trial < 10; trial++ {
		if got := p2.Predict(query, -1); math.Abs(got-3) > 1e-9 {
			t.Fatalf("trial %d: tied prediction drifted to %g", trial, got)
		}
	}
}

// TestLeaveOneOutDuplicateRows: leave-one-out over a training set with
// duplicated benchmarks must be reproducible call to call.
func TestLeaveOneOutDuplicateRows(t *testing.T) {
	feats, target := syntheticSpace(20, 7)
	rows := make([][]float64, 0, 40)
	dup := make([]float64, 0, 40)
	for i := 0; i < feats.Rows; i++ {
		rows = append(rows, feats.Row(i), feats.Row(i))
		dup = append(dup, target[i], target[i]+0.1)
	}
	m := stats.FromRows(rows)
	first, err := LeaveOneOut(m, dup, 3)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		again, err := LeaveOneOut(m, dup, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i := range first.Predictions {
			if first.Predictions[i] != again.Predictions[i] {
				t.Fatalf("trial %d: prediction %d drifted from %g to %g",
					trial, i, first.Predictions[i], again.Predictions[i])
			}
		}
	}
}
