package asm

import (
	"strings"
	"testing"

	"mica/internal/isa"
)

func TestAssembleMinimal(t *testing.T) {
	prog, err := Assemble("t", `
main:	addq r1, 1, r1
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Insts) != 2 {
		t.Fatalf("got %d instructions, want 2", len(prog.Insts))
	}
	in := prog.Insts[0]
	if in.Op != isa.OpAddQ || !in.HasImm || in.Imm != 1 {
		t.Errorf("first instruction = %s, want addq r1, 1, r1", in.String())
	}
	if prog.Entry != 0 {
		t.Errorf("entry = %d, want 0", prog.Entry)
	}
}

func TestAssembleDataAndSymbols(t *testing.T) {
	prog, err := Assemble("t", `
	.data
tbl:	.quad 1, 2, 3
b:	.byte 0xff
	.align 8
buf:	.space 16
	.text
main:	lda r1, tbl
	ldq r2, 0(r1)
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	tbl := prog.MustSymbol("tbl")
	if tbl != prog.DataBase {
		t.Errorf("tbl at %#x, want data base %#x", tbl, prog.DataBase)
	}
	if got := prog.MustSymbol("b"); got != prog.DataBase+24 {
		t.Errorf("b at %#x, want +24", got)
	}
	if got := prog.MustSymbol("buf"); got != prog.DataBase+32 {
		t.Errorf("buf at %#x, want +32 (aligned)", got)
	}
	if len(prog.Data) != 48 {
		t.Errorf("data segment %d bytes, want 48", len(prog.Data))
	}
	// .quad values are little-endian.
	if prog.Data[0] != 1 || prog.Data[8] != 2 || prog.Data[16] != 3 {
		t.Errorf("quad data wrong: % x", prog.Data[:24])
	}
	if prog.Data[24] != 0xff {
		t.Errorf("byte data wrong: %#x", prog.Data[24])
	}
	// lda of a data label resolves to its absolute address.
	in := prog.Insts[0]
	if in.Op != isa.OpLda || uint64(in.Imm) != tbl || in.Rb != isa.RegZero {
		t.Errorf("lda encoding wrong: %s", in.String())
	}
}

func TestAssembleBranchTargets(t *testing.T) {
	prog, err := Assemble("t", `
main:	lda  r1, 10
loop:	subq r1, 1, r1
	bne  r1, loop
	br   end
	nop
end:	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	bne := prog.Insts[2]
	if bne.Target != 1 {
		t.Errorf("bne target = %d, want 1", bne.Target)
	}
	br := prog.Insts[3]
	if br.Target != 5 {
		t.Errorf("br target = %d, want 5", br.Target)
	}
}

func TestAssembleEntryDefaultsToZero(t *testing.T) {
	prog, err := Assemble("t", "start:\taddq r1, 1, r1\n\thalt\n")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Entry != 0 {
		t.Errorf("entry = %d, want 0 without main", prog.Entry)
	}
}

func TestAssembleEntryAtMain(t *testing.T) {
	prog, err := Assemble("t", `
helper:	ret (r26)
main:	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Entry != 1 {
		t.Errorf("entry = %d, want 1 (main)", prog.Entry)
	}
}

func TestAssembleLabelOffset(t *testing.T) {
	prog, err := Assemble("t", `
	.data
arr:	.space 64
	.text
main:	lda r1, arr+16
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	want := prog.MustSymbol("arr") + 16
	if got := uint64(prog.Insts[0].Imm); got != want {
		t.Errorf("arr+16 resolved to %#x, want %#x", got, want)
	}
}

func TestAssembleComments(t *testing.T) {
	prog, err := Assemble("t", `
# full-line comment
main:	addq r1, 1, r1   # trailing comment
	halt             ; alt comment char
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Insts) != 2 {
		t.Errorf("got %d instructions, want 2", len(prog.Insts))
	}
}

func TestAssembleFPOps(t *testing.T) {
	prog, err := Assemble("t", `
main:	addt  f1, f2, f3
	sqrtt f3, f4
	itoft r1, f5
	ftoit f5, r2
	fbne  f4, main
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	addt := prog.Insts[0]
	if !addt.Ra.IsFP() || !addt.Rb.IsFP() || !addt.Rc.IsFP() {
		t.Errorf("addt registers not FP: %s", addt.String())
	}
	itof := prog.Insts[2]
	if itof.Rb.IsFP() || !itof.Rc.IsFP() {
		t.Errorf("itoft register files wrong: %s", itof.String())
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown mnemonic", "main:\tfrob r1, r2, r3\n", "unknown mnemonic"},
		{"bad register", "main:\taddq r1, r99, r3\n\thalt\n", "undefined symbol"},
		{"fp reg in int op dst", "main:\taddq r1, r2, f3\n\thalt\n", "must be a integer register"},
		{"int reg in fp op", "main:\taddt r1, f2, f3\n\thalt\n", "must be a floating-point register"},
		{"undefined branch label", "main:\tbeq r1, nowhere\n\thalt\n", "undefined code label"},
		{"redefined label", "x:\tnop\nx:\thalt\n", "redefined"},
		{"operand count", "main:\taddq r1, r2\n\thalt\n", "wants 3 operands"},
		{"imm in fp op", "main:\taddt f1, 3, f3\n\thalt\n", "not allowed"},
		{"inst in data", "\t.data\nmain:\taddq r1, 1, r1\n", "in .data segment"},
		{"directive in text", "main:\t.quad 3\n", "outside .data"},
		{"bad align", "\t.data\n\t.align 3\n\t.text\nmain:\thalt\n", "power of two"},
		{"empty program", "# nothing\n", "no instructions"},
		{"fp base register", "main:\tldq r1, 0(f2)\n\thalt\n", "must be an integer register"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble("t", c.src)
			if err == nil {
				t.Fatalf("assembly succeeded, want error containing %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := Assemble("prog.s", "main:\tnop\n\tfrob r1\n\thalt\n")
	if err == nil {
		t.Fatal("want error")
	}
	aerr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T, want *Error", err)
	}
	if aerr.Line != 2 || aerr.Source != "prog.s" {
		t.Errorf("error at %s:%d, want prog.s:2", aerr.Source, aerr.Line)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble("t", "main:\tfrob\n")
}

func TestJumpEncodings(t *testing.T) {
	prog, err := Assemble("t", `
main:	lda  r5, fn
	jsr  r26, (r5)
	halt
fn:	ret  (r26)
`)
	if err != nil {
		t.Fatal(err)
	}
	jsr := prog.Insts[1]
	if jsr.Ra != isa.RegRA || jsr.Rb != isa.IntReg(5) {
		t.Errorf("jsr encoding wrong: %s", jsr.String())
	}
	ret := prog.Insts[3]
	if ret.Rb != isa.RegRA {
		t.Errorf("ret encoding wrong: %s", ret.String())
	}
}
