package asm

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"mica/internal/isa"
)

// TestDisassemblyReassembles generates random well-formed instruction
// sequences, assembles them, renders each instruction back through
// Inst.String-like syntax, and checks the reassembled program encodes to
// identical instructions — a round-trip property over the whole operate/
// memory/branch surface.
func TestDisassemblyReassembles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	reg := func() string { return fmt.Sprintf("r%d", rng.Intn(30)) }
	freg := func() string { return fmt.Sprintf("f%d", rng.Intn(30)) }

	for trial := 0; trial < 50; trial++ {
		var lines []string
		lines = append(lines, "main:")
		n := 5 + rng.Intn(20)
		for i := 0; i < n; i++ {
			switch rng.Intn(6) {
			case 0:
				lines = append(lines, fmt.Sprintf("\taddq %s, %d, %s", reg(), rng.Intn(1000)-500, reg()))
			case 1:
				lines = append(lines, fmt.Sprintf("\tmulq %s, %s, %s", reg(), reg(), reg()))
			case 2:
				lines = append(lines, fmt.Sprintf("\tldq %s, %d(%s)", reg(), rng.Intn(256)*8, reg()))
			case 3:
				lines = append(lines, fmt.Sprintf("\tstq %s, %d(%s)", reg(), rng.Intn(256)*8, reg()))
			case 4:
				lines = append(lines, fmt.Sprintf("\taddt %s, %s, %s", freg(), freg(), freg()))
			case 5:
				lines = append(lines, fmt.Sprintf("\tbne %s, main", reg()))
			}
		}
		lines = append(lines, "\thalt")
		src := strings.Join(lines, "\n") + "\n"

		p1, err := Assemble("trip", src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		// Re-render: branches need label syntax, so rebuild source from
		// the decoded instructions.
		var re []string
		re = append(re, "main:")
		for _, in := range p1.Insts[:len(p1.Insts)-1] {
			re = append(re, "\t"+renderInst(in))
		}
		re = append(re, "\thalt")
		p2, err := Assemble("trip2", strings.Join(re, "\n")+"\n")
		if err != nil {
			t.Fatalf("trial %d reassembly: %v", trial, err)
		}
		if len(p1.Insts) != len(p2.Insts) {
			t.Fatalf("trial %d: %d vs %d instructions", trial, len(p1.Insts), len(p2.Insts))
		}
		for i := range p1.Insts {
			a, b := p1.Insts[i], p2.Insts[i]
			a.Line, b.Line = 0, 0
			if a != b {
				t.Fatalf("trial %d inst %d: %+v vs %+v", trial, i, a, b)
			}
		}
	}
}

// renderInst renders an instruction in re-assemblable syntax (branch
// targets become "main", which is instruction 0 — the only target the
// generator emits).
func renderInst(in isa.Inst) string {
	switch in.Op.Format() {
	case isa.FmtBranch:
		return fmt.Sprintf("%s %s, main", in.Op.Name(), in.Ra)
	default:
		return in.String()
	}
}
