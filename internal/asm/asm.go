// Package asm implements a two-pass assembler for the synthetic ISA.
//
// The accepted syntax is a small Alpha-flavoured assembly language:
//
//	# comment (also ';')
//	        .data
//	table:  .quad 1, 2, 3          # 64-bit words
//	pix:    .byte 0xff, 0x00       # bytes
//	buf:    .space 4096            # zeroed bytes
//	        .align 8
//	        .text
//	main:   lda   r1, table        # address of a label
//	loop:   ldq   r2, 0(r1)
//	        addq  r2, 1, r2        # immediate form
//	        stq   r2, 0(r1)
//	        subq  r3, r4, r3       # register form
//	        bne   r3, loop
//	        halt
//
// Pass one assigns addresses to labels (instruction indices for code,
// data-segment offsets for data); pass two encodes instructions and
// resolves label references. Errors carry the source name and line.
package asm

import (
	"fmt"
	"strings"

	"mica/internal/isa"
)

// Error is an assembly error at a specific source location.
type Error struct {
	Source string
	Line   int
	Msg    string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.Source, e.Line, e.Msg)
}

type segment int

const (
	segText segment = iota
	segData
)

type lineKind int

const (
	lineEmpty lineKind = iota
	lineInst
	lineDirective
)

// parsedLine is the pass-one representation of one source line.
type parsedLine struct {
	num       int
	labels    []string
	kind      lineKind
	mnemonic  string // instruction mnemonic or directive (with dot)
	operands  []string
	instIndex int // assigned in pass one for lineInst in .text
}

// Assemble translates source into a Program. name identifies the source in
// error messages and becomes the program name.
func Assemble(name, source string) (*isa.Program, error) {
	a := &assembler{
		name:     name,
		symbols:  make(map[string]uint64),
		dataBase: isa.DefaultDataBase,
	}
	if err := a.passOne(source); err != nil {
		return nil, err
	}
	if err := a.passTwo(); err != nil {
		return nil, err
	}
	prog := &isa.Program{
		Name:     name,
		Insts:    a.insts,
		Data:     a.data,
		DataBase: a.dataBase,
		Symbols:  a.symbols,
	}
	if entry, ok := a.symbols["main"]; ok && entry >= isa.CodeBase {
		prog.Entry = isa.IndexForPC(entry)
	}
	if len(prog.Insts) == 0 {
		return nil, &Error{Source: name, Line: 1, Msg: "program has no instructions"}
	}
	prog.Finalize()
	return prog, nil
}

// MustAssemble is Assemble but panics on error; intended for the built-in
// kernel library where the sources are compile-time constants.
func MustAssemble(name, source string) *isa.Program {
	prog, err := Assemble(name, source)
	if err != nil {
		panic(err)
	}
	return prog
}

type assembler struct {
	name     string
	lines    []parsedLine
	insts    []isa.Inst
	data     []byte
	dataBase uint64
	symbols  map[string]uint64
	// codeLabels maps a label to its instruction index for branch
	// resolution (symbols stores byte addresses).
	codeLabels map[string]int
}

func (a *assembler) errf(line int, format string, args ...any) error {
	return &Error{Source: a.name, Line: line, Msg: fmt.Sprintf(format, args...)}
}

// passOne splits the source into lines, assigns label addresses, and sizes
// the data segment.
func (a *assembler) passOne(source string) error {
	a.codeLabels = make(map[string]int)
	seg := segText
	nInst := 0
	dataOff := 0

	defineLabel := func(lineNum int, label string) error {
		if _, dup := a.symbols[label]; dup {
			return a.errf(lineNum, "label %q redefined", label)
		}
		if seg == segText {
			a.codeLabels[label] = nInst
			a.symbols[label] = isa.PCForIndex(nInst)
		} else {
			a.symbols[label] = a.dataBase + uint64(dataOff)
		}
		return nil
	}

	for i, raw := range strings.Split(source, "\n") {
		lineNum := i + 1
		pl, err := splitLine(a.name, lineNum, raw)
		if err != nil {
			return err
		}
		if pl.kind == lineDirective && (pl.mnemonic == ".text" || pl.mnemonic == ".data") {
			for _, lb := range pl.labels {
				if err := defineLabel(lineNum, lb); err != nil {
					return err
				}
			}
			if pl.mnemonic == ".text" {
				seg = segText
			} else {
				seg = segData
			}
			continue
		}
		for _, lb := range pl.labels {
			if err := defineLabel(lineNum, lb); err != nil {
				return err
			}
		}
		switch pl.kind {
		case lineEmpty:
			continue
		case lineInst:
			if seg != segText {
				return a.errf(lineNum, "instruction %q in .data segment", pl.mnemonic)
			}
			pl.instIndex = nInst
			nInst++
		case lineDirective:
			if seg != segData {
				return a.errf(lineNum, "data directive %q outside .data segment", pl.mnemonic)
			}
			n, err := a.directiveSize(lineNum, pl.mnemonic, pl.operands, dataOff)
			if err != nil {
				return err
			}
			dataOff += n
		}
		a.lines = append(a.lines, pl)
	}
	a.insts = make([]isa.Inst, 0, nInst)
	a.data = make([]byte, 0, dataOff)
	return nil
}

// directiveSize returns the number of data bytes a directive contributes.
func (a *assembler) directiveSize(line int, dir string, ops []string, off int) (int, error) {
	switch dir {
	case ".quad":
		return 8 * len(ops), nil
	case ".long":
		return 4 * len(ops), nil
	case ".word":
		return 2 * len(ops), nil
	case ".byte":
		return len(ops), nil
	case ".space":
		if len(ops) != 1 {
			return 0, a.errf(line, ".space wants one operand, got %d", len(ops))
		}
		n, err := parseInt(ops[0])
		if err != nil || n < 0 {
			return 0, a.errf(line, ".space operand %q is not a non-negative integer", ops[0])
		}
		return int(n), nil
	case ".align":
		if len(ops) != 1 {
			return 0, a.errf(line, ".align wants one operand, got %d", len(ops))
		}
		n, err := parseInt(ops[0])
		if err != nil || n <= 0 || n&(n-1) != 0 {
			return 0, a.errf(line, ".align operand %q is not a power of two", ops[0])
		}
		pad := (int(n) - off%int(n)) % int(n)
		return pad, nil
	default:
		return 0, a.errf(line, "unknown directive %q", dir)
	}
}

// passTwo encodes instructions and emits data bytes.
func (a *assembler) passTwo() error {
	for _, pl := range a.lines {
		switch pl.kind {
		case lineInst:
			inst, err := a.encode(pl)
			if err != nil {
				return err
			}
			a.insts = append(a.insts, inst)
		case lineDirective:
			if err := a.emitData(pl); err != nil {
				return err
			}
		}
	}
	return nil
}

func (a *assembler) emitData(pl parsedLine) error {
	emitInt := func(v int64, width int) {
		for b := 0; b < width; b++ {
			a.data = append(a.data, byte(v>>(8*b)))
		}
	}
	switch pl.mnemonic {
	case ".quad", ".long", ".word", ".byte":
		width := map[string]int{".quad": 8, ".long": 4, ".word": 2, ".byte": 1}[pl.mnemonic]
		for _, op := range pl.operands {
			v, err := a.resolveValue(pl.num, op)
			if err != nil {
				return err
			}
			emitInt(v, width)
		}
	case ".space":
		n, _ := parseInt(pl.operands[0])
		a.data = append(a.data, make([]byte, n)...)
	case ".align":
		n, _ := parseInt(pl.operands[0])
		pad := (int(n) - len(a.data)%int(n)) % int(n)
		a.data = append(a.data, make([]byte, pad)...)
	}
	return nil
}

// resolveValue evaluates an integer literal or label reference (optionally
// label+offset / label-offset).
func (a *assembler) resolveValue(line int, s string) (int64, error) {
	if v, err := parseInt(s); err == nil {
		return v, nil
	}
	base, off := splitLabelOffset(s)
	if addr, ok := a.symbols[base]; ok {
		return int64(addr) + off, nil
	}
	return 0, a.errf(line, "undefined symbol or bad integer %q", s)
}
