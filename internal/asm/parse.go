package asm

import (
	"strconv"
	"strings"

	"mica/internal/isa"
)

// splitLine performs the lexical split of one source line: comment
// stripping, label extraction, mnemonic and comma-separated operands.
func splitLine(source string, num int, raw string) (parsedLine, error) {
	pl := parsedLine{num: num}
	line := raw
	if i := strings.IndexAny(line, "#;"); i >= 0 {
		line = line[:i]
	}
	line = strings.TrimSpace(line)

	// Peel off leading labels ("name:"), possibly several on one line.
	for {
		i := strings.IndexByte(line, ':')
		if i < 0 {
			break
		}
		label := strings.TrimSpace(line[:i])
		if !isIdent(label) {
			break
		}
		pl.labels = append(pl.labels, label)
		line = strings.TrimSpace(line[i+1:])
	}
	if line == "" {
		pl.kind = lineEmpty
		return pl, nil
	}

	var mnemonic, rest string
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnemonic, rest = line[:i], strings.TrimSpace(line[i+1:])
	} else {
		mnemonic = line
	}
	pl.mnemonic = strings.ToLower(mnemonic)
	if rest != "" {
		for _, op := range strings.Split(rest, ",") {
			op = strings.TrimSpace(op)
			if op == "" {
				return pl, &Error{Source: source, Line: num, Msg: "empty operand"}
			}
			pl.operands = append(pl.operands, op)
		}
	}
	if strings.HasPrefix(pl.mnemonic, ".") {
		pl.kind = lineDirective
	} else {
		pl.kind = lineInst
	}
	return pl, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// parseInt parses decimal and 0x-hex integer literals, with optional sign.
func parseInt(s string) (int64, error) {
	return strconv.ParseInt(s, 0, 64)
}

// splitLabelOffset splits "label+off" / "label-off" into the label and the
// signed offset; a bare label has offset 0.
func splitLabelOffset(s string) (string, int64) {
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			off, err := parseInt(s[i:])
			if err != nil {
				return s, 0
			}
			return s[:i], off
		}
	}
	return s, 0
}

// parseReg parses a register operand ("r12", "f3", "sp", "ra").
func parseReg(s string) (isa.Reg, bool) {
	switch strings.ToLower(s) {
	case "sp":
		return isa.RegSP, true
	case "ra":
		return isa.RegRA, true
	case "zero":
		return isa.RegZero, true
	}
	if len(s) < 2 {
		return isa.RegInvalid, false
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 31 {
		return isa.RegInvalid, false
	}
	switch s[0] {
	case 'r', 'R':
		return isa.IntReg(n), true
	case 'f', 'F':
		return isa.FPReg(n), true
	}
	return isa.RegInvalid, false
}

// parseMemOperand parses "disp(reg)", "(reg)", "label", "label+off" or a
// bare integer into (base register, displacement). For label and integer
// forms the base is the zero register.
func (a *assembler) parseMemOperand(line int, s string) (isa.Reg, int64, error) {
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return 0, 0, a.errf(line, "malformed memory operand %q", s)
		}
		regName := s[i+1 : len(s)-1]
		base, ok := parseReg(regName)
		if !ok {
			return 0, 0, a.errf(line, "bad base register %q in %q", regName, s)
		}
		dispStr := strings.TrimSpace(s[:i])
		var disp int64
		if dispStr != "" {
			v, err := a.resolveValue(line, dispStr)
			if err != nil {
				return 0, 0, err
			}
			disp = v
		}
		return base, disp, nil
	}
	v, err := a.resolveValue(line, s)
	if err != nil {
		return 0, 0, err
	}
	return isa.RegZero, v, nil
}

// encode translates one instruction line to an isa.Inst.
func (a *assembler) encode(pl parsedLine) (isa.Inst, error) {
	op, ok := isa.OpByName(pl.mnemonic)
	if !ok {
		return isa.Inst{}, a.errf(pl.num, "unknown mnemonic %q", pl.mnemonic)
	}
	in := isa.Inst{Op: op, Ra: isa.RegInvalid, Rb: isa.RegInvalid, Rc: isa.RegInvalid, Line: pl.num}
	ops := pl.operands

	wantRegFile := func(r isa.Reg, fp bool, what string) error {
		if r.IsFP() != fp {
			kind := "integer"
			if fp {
				kind = "floating-point"
			}
			return a.errf(pl.num, "%s of %s must be a %s register, got %s", what, op.Name(), kind, r)
		}
		return nil
	}
	reg := func(i int, what string) (isa.Reg, error) {
		if i >= len(ops) {
			return isa.RegInvalid, a.errf(pl.num, "%s: missing %s operand", op.Name(), what)
		}
		r, ok := parseReg(ops[i])
		if !ok {
			return isa.RegInvalid, a.errf(pl.num, "%s: bad register %q for %s", op.Name(), ops[i], what)
		}
		return r, nil
	}

	switch op.Format() {
	case isa.FmtOperate:
		if len(ops) != 3 {
			return in, a.errf(pl.num, "%s wants 3 operands, got %d", op.Name(), len(ops))
		}
		ra, err := reg(0, "source 1")
		if err != nil {
			return in, err
		}
		if err := wantRegFile(ra, op.IsFPRegs(), "source 1"); err != nil {
			return in, err
		}
		in.Ra = ra
		if rb, ok := parseReg(ops[1]); ok {
			if err := wantRegFile(rb, op.IsFPRegs(), "source 2"); err != nil {
				return in, err
			}
			in.Rb = rb
		} else {
			v, err := a.resolveValue(pl.num, ops[1])
			if err != nil {
				return in, err
			}
			if op.IsFPRegs() {
				return in, a.errf(pl.num, "%s: immediate operands are not allowed for FP ops", op.Name())
			}
			in.Imm, in.HasImm = v, true
		}
		rc, err := reg(2, "destination")
		if err != nil {
			return in, err
		}
		if err := wantRegFile(rc, op.IsFPRegs(), "destination"); err != nil {
			return in, err
		}
		in.Rc = rc

	case isa.FmtFPUnary:
		if len(ops) != 2 {
			return in, a.errf(pl.num, "%s wants 2 operands, got %d", op.Name(), len(ops))
		}
		rb, err := reg(0, "source")
		if err != nil {
			return in, err
		}
		rc, err := reg(1, "destination")
		if err != nil {
			return in, err
		}
		srcFP, dstFP := true, true
		switch op {
		case isa.OpItofT:
			srcFP = false
		case isa.OpFtoiT:
			dstFP = false
		}
		if err := wantRegFile(rb, srcFP, "source"); err != nil {
			return in, err
		}
		if err := wantRegFile(rc, dstFP, "destination"); err != nil {
			return in, err
		}
		in.Rb, in.Rc = rb, rc

	case isa.FmtMem:
		if len(ops) != 2 {
			return in, a.errf(pl.num, "%s wants 2 operands, got %d", op.Name(), len(ops))
		}
		ra, err := reg(0, "data")
		if err != nil {
			return in, err
		}
		if err := wantRegFile(ra, op.IsFPRegs(), "data"); err != nil {
			return in, err
		}
		base, disp, err := a.parseMemOperand(pl.num, ops[1])
		if err != nil {
			return in, err
		}
		if base.IsFP() {
			return in, a.errf(pl.num, "%s: base register %s must be an integer register", op.Name(), base)
		}
		in.Ra, in.Rb, in.Imm = ra, base, disp

	case isa.FmtLea:
		if len(ops) != 2 {
			return in, a.errf(pl.num, "%s wants 2 operands, got %d", op.Name(), len(ops))
		}
		ra, err := reg(0, "destination")
		if err != nil {
			return in, err
		}
		if ra.IsFP() {
			return in, a.errf(pl.num, "lda destination must be an integer register")
		}
		base, disp, err := a.parseMemOperand(pl.num, ops[1])
		if err != nil {
			return in, err
		}
		if base.IsFP() {
			return in, a.errf(pl.num, "lda base register %s must be an integer register", base)
		}
		in.Ra, in.Rb, in.Imm = ra, base, disp

	case isa.FmtBranch:
		targetIdx := 0
		switch {
		case op.IsConditional():
			if len(ops) != 2 {
				return in, a.errf(pl.num, "%s wants 2 operands, got %d", op.Name(), len(ops))
			}
			ra, err := reg(0, "test")
			if err != nil {
				return in, err
			}
			if err := wantRegFile(ra, op.IsFPRegs(), "test"); err != nil {
				return in, err
			}
			in.Ra = ra
			targetIdx = 1
		default: // br, bsr
			switch len(ops) {
			case 1:
				in.Ra = isa.RegZero
			case 2:
				ra, err := reg(0, "link")
				if err != nil {
					return in, err
				}
				in.Ra = ra
				targetIdx = 1
			default:
				return in, a.errf(pl.num, "%s wants 1 or 2 operands, got %d", op.Name(), len(ops))
			}
		}
		label := ops[targetIdx]
		idx, ok := a.codeLabels[label]
		if !ok {
			return in, a.errf(pl.num, "%s: undefined code label %q", op.Name(), label)
		}
		in.Target = idx

	case isa.FmtJump:
		switch op {
		case isa.OpJsr:
			if len(ops) != 2 {
				return in, a.errf(pl.num, "jsr wants 2 operands (link, (target)), got %d", len(ops))
			}
			ra, err := reg(0, "link")
			if err != nil {
				return in, err
			}
			in.Ra = ra
			base, disp, err := a.parseMemOperand(pl.num, ops[1])
			if err != nil {
				return in, err
			}
			if disp != 0 {
				return in, a.errf(pl.num, "jsr target must be a plain (reg)")
			}
			in.Rb = base
		default: // jmp, ret
			if len(ops) != 1 {
				return in, a.errf(pl.num, "%s wants 1 operand, got %d", op.Name(), len(ops))
			}
			base, disp, err := a.parseMemOperand(pl.num, ops[0])
			if err != nil {
				return in, err
			}
			if disp != 0 {
				return in, a.errf(pl.num, "%s target must be a plain (reg)", op.Name())
			}
			in.Rb = base
			in.Ra = isa.RegZero
		}

	case isa.FmtMisc:
		if len(ops) != 0 {
			return in, a.errf(pl.num, "%s wants no operands", op.Name())
		}

	default:
		return in, a.errf(pl.num, "internal: unhandled format for %s", op.Name())
	}
	return in, nil
}
