package pool

import "mica/internal/obs"

// Pool metrics on the default registry. Batch (RunCtx/Run) items and
// long-lived Queue tasks are separate families so a server's steady
// task stream doesn't drown the pipeline batch counts.
var (
	metItems    = obs.Default().Counter("mica_pool_items_total", "Work items dispatched by RunCtx/Run.")
	metFailed   = obs.Default().Counter("mica_pool_item_failures_total", "Work items that returned an error.")
	metPanics   = obs.Default().Counter("mica_pool_item_panics_total", "Work items recovered from a panic.")
	metBusy     = obs.Default().Counter("mica_pool_busy_seconds_total", "Total worker time spent inside work items and queue tasks.")
	metQDepth   = obs.Default().Gauge("mica_pool_queue_depth", "Queue tasks accepted but not finished.")
	metQTasks   = obs.Default().Counter("mica_pool_queue_tasks_total", "Queue tasks accepted.")
	metQRejects = obs.Default().Counter("mica_pool_queue_rejected_total", "Queue submissions rejected (saturated or closed).")
	metQPanics  = obs.Default().Counter("mica_pool_queue_panics_total", "Queue tasks recovered from a panic.")
)
