package pool

import (
	"errors"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// ErrQueueSaturated is returned by Queue.TrySubmit when the pending
// buffer is full — the caller's backpressure signal (a server maps it
// to 429 with Retry-After).
var ErrQueueSaturated = errors.New("pool: queue saturated")

// ErrQueueClosed is returned by Queue.TrySubmit after Close has begun
// — the caller's shutdown signal (a server maps it to 503).
var ErrQueueClosed = errors.New("pool: queue closed")

// Queue is the long-lived counterpart of RunCtx: a fixed set of
// workers draining a bounded task buffer, for server-style workloads
// where work arrives over time instead of as one indexed batch. It
// keeps RunCtx's isolation guarantee — a panicking task is recovered
// on its worker and reported through the task's own completion
// callback, never killing the serving process — and its worker-id
// contract, so callers can pool expensive per-worker state (one
// profiler per worker) exactly as the batch pipelines do.
type Queue struct {
	tasks   chan func(worker int)
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
	onPanic func(v any, stack []byte)
}

// NewQueue starts a queue with the given worker count (<= 0 means
// GOMAXPROCS) and pending-task capacity (< 0 means unbuffered).
// onPanic, if non-nil, observes panics recovered from tasks (the
// task is already over by then); nil drops them after recovery.
func NewQueue(workers, capacity int, onPanic func(v any, stack []byte)) *Queue {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if capacity < 0 {
		capacity = 0
	}
	q := &Queue{
		tasks:   make(chan func(worker int), capacity),
		onPanic: onPanic,
	}
	for w := 0; w < workers; w++ {
		q.wg.Add(1)
		go func(worker int) {
			defer q.wg.Done()
			for fn := range q.tasks {
				q.runTask(worker, fn)
			}
		}(w)
	}
	return q
}

// runTask executes one task with panic recovery, isolating the queue's
// workers from a bad task exactly as RunCtx isolates batch items.
func (q *Queue) runTask(worker int, fn func(worker int)) {
	begin := time.Now()
	defer func() {
		metBusy.Add(time.Since(begin).Seconds())
		metQDepth.Add(-1)
		if r := recover(); r != nil {
			metQPanics.Inc()
			if q.onPanic != nil {
				q.onPanic(r, debug.Stack())
			}
		}
	}()
	fn(worker)
}

// TrySubmit enqueues fn without blocking. It returns ErrQueueSaturated
// when the pending buffer is full and ErrQueueClosed once Close has
// begun; fn runs (exactly once, on some worker) only on a nil return.
func (q *Queue) TrySubmit(fn func(worker int)) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		metQRejects.Inc()
		return ErrQueueClosed
	}
	select {
	case q.tasks <- fn:
		metQTasks.Inc()
		metQDepth.Add(1)
		return nil
	default:
		metQRejects.Inc()
		return ErrQueueSaturated
	}
}

// Len reports the number of pending (not yet started) tasks.
func (q *Queue) Len() int {
	return len(q.tasks)
}

// Close stops accepting new tasks, drains the ones already accepted,
// and returns once every worker has exited. Safe to call more than
// once.
func (q *Queue) Close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.tasks)
	}
	q.mu.Unlock()
	q.wg.Wait()
}
