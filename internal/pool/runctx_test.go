package pool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mica/internal/faults"
)

func TestRunCtxCoversAllItems(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 57
		seen := make([]int32, n)
		err := RunCtx(context.Background(), n, workers, func(_ context.Context, _, i int) error {
			atomic.AddInt32(&seen[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunCtxCollectsAllErrors(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := RunCtx(context.Background(), 10, workers, func(_ context.Context, _, i int) error {
			if i%3 == 0 {
				return fmt.Errorf("boom %d", i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: nil error for failing items", workers)
		}
		var ie *ItemError
		if !errors.As(err, &ie) {
			t.Fatalf("workers=%d: no *ItemError in %v", workers, err)
		}
		for _, i := range []int{0, 3, 6, 9} {
			if want := fmt.Sprintf("boom %d", i); !containsStr(err.Error(), want) {
				t.Fatalf("workers=%d: error %q missing %q", workers, err, want)
			}
		}
	}
}

func containsStr(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}

func TestRunCtxIsolatesPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran int32
		err := RunCtx(context.Background(), 8, workers, func(_ context.Context, _, i int) error {
			if i == 5 {
				panic("worker exploded")
			}
			atomic.AddInt32(&ran, 1)
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: panic was swallowed", workers)
		}
		var ie *ItemError
		if !errors.As(err, &ie) {
			t.Fatalf("workers=%d: no *ItemError in %v", workers, err)
		}
		if ie.Item != 5 {
			t.Fatalf("workers=%d: panic attributed to item %d, want 5", workers, ie.Item)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: no *PanicError in %v", workers, err)
		}
		if pe.Value != "worker exploded" {
			t.Fatalf("workers=%d: panic value %v", workers, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: panic stack not captured", workers)
		}
		if ran != 7 {
			t.Fatalf("workers=%d: %d other items completed, want 7", workers, ran)
		}
	}
}

func TestRunCtxCancelStopsDispatchAndDrains(t *testing.T) {
	const n = 100
	ctx, cancel := context.WithCancel(context.Background())
	var started, finished int32
	err := RunCtx(ctx, n, 2, func(_ context.Context, _, i int) error {
		atomic.AddInt32(&started, 1)
		if i == 0 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt32(&finished, 1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if started == n {
		t.Fatalf("cancellation did not stop dispatch (all %d items started)", n)
	}
	if started != finished {
		t.Fatalf("in-flight items not drained: %d started, %d finished", started, finished)
	}
}

func TestRunCtxCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int32
	err := RunCtx(ctx, 50, 4, func(_ context.Context, _, i int) error {
		atomic.AddInt32(&ran, 1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The dispatcher may race one item in before seeing Done; what it
	// must not do is run the whole batch.
	if ran > 4 {
		t.Fatalf("%d items ran under a pre-cancelled context", ran)
	}
}

func TestRunCtxWorkerAttribution(t *testing.T) {
	err := RunCtx(context.Background(), 6, 3, func(_ context.Context, worker, i int) error {
		if i == 2 {
			return errors.New("bad")
		}
		return nil
	})
	var ie *ItemError
	if !errors.As(err, &ie) {
		t.Fatalf("no *ItemError in %v", err)
	}
	if ie.Worker < 0 || ie.Worker >= 3 {
		t.Fatalf("worker id %d out of range", ie.Worker)
	}
	if !errors.Is(err, ie.Err) {
		t.Fatalf("joined error does not expose the item's cause")
	}
}

func TestRunCtxInjectedCrashIsIsolated(t *testing.T) {
	disarm := faults.Arm(faults.Address{Point: faults.PoolItem, Key: "3", Nth: 0}, faults.Crash)
	defer disarm()
	var ran int32
	err := RunCtx(context.Background(), 6, 2, func(_ context.Context, _, i int) error {
		atomic.AddInt32(&ran, 1)
		return nil
	})
	if err == nil {
		t.Fatal("injected crash vanished")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("injected crash not converted to *PanicError: %v", err)
	}
	var ie *ItemError
	if !errors.As(err, &ie) || ie.Item != 3 {
		t.Fatalf("injected crash misattributed: %v", err)
	}
	if ran != 5 {
		t.Fatalf("%d items completed around the crash, want 5", ran)
	}
}

func TestRunCtxInjectedFail(t *testing.T) {
	disarm := faults.Arm(faults.Address{Point: faults.PoolItem, Key: "1", Nth: 0}, faults.Fail)
	defer disarm()
	err := RunCtx(context.Background(), 3, 1, func(_ context.Context, _, i int) error { return nil })
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want an injected fault", err)
	}
}

func TestRunCtxZeroItems(t *testing.T) {
	err := RunCtx(context.Background(), 0, 4, func(_ context.Context, _, _ int) error {
		t.Fatal("fn called with n=0")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunCtxBoundsLiveWorkers(t *testing.T) {
	const n, workers = 40, 4
	var live, peak int32
	var mu sync.Mutex
	err := RunCtx(context.Background(), n, workers, func(_ context.Context, _, i int) error {
		cur := atomic.AddInt32(&live, 1)
		mu.Lock()
		if cur > peak {
			peak = cur
		}
		mu.Unlock()
		atomic.AddInt32(&live, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Fatalf("observed %d concurrent items with %d workers", peak, workers)
	}
}
