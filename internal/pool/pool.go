// Package pool provides the fixed worker pool shared by the repo's
// parallel pipelines: registry-wide profiling (ProfileBenchmarks),
// sharded phase analysis (AnalyzePhasesBenchmarks) and the clustering
// k-sweep (cluster.SelectK). Work items are pulled from one shared
// queue by a bounded set of goroutines, so the number of live
// per-worker states (VMs, memories, analyzer tables, k-means scratch
// buffers) is genuinely bounded by the worker count — not merely
// rate-limited after all goroutines have been spawned.
//
// # Error contract
//
// RunCtx is the fault-tolerant entry point. Its guarantees:
//
//   - Isolation: one item's failure (an error return or a panic) never
//     stops the others — every dispatched item runs to completion, and
//     a panicking item is recovered on its worker and converted into
//     an error, so a single bad work item cannot kill the pipeline.
//   - Attribution: every failure is reported as an *ItemError carrying
//     the item index and worker id; a recovered panic is wrapped as a
//     *PanicError (value + stack) inside it.
//   - Collection: RunCtx returns the errors of ALL failed items joined
//     with errors.Join, not just the first — nil if and only if every
//     item was dispatched and returned nil.
//   - Cancellation: when ctx is cancelled, dispatch stops promptly,
//     in-flight items drain (fn is never abandoned mid-call), and the
//     returned error includes ctx.Err(). Items never dispatched are
//     simply skipped, not errors.
//
// Run is the legacy non-cancellable form: fn returns nothing, panics
// propagate and kill the process. New pipeline code should use RunCtx.
package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"mica/internal/faults"
)

// ItemError attributes one work item's failure to the item and the
// worker that ran it.
type ItemError struct {
	// Item is the failed item's index in [0, n).
	Item int
	// Worker is the pool worker id that ran the item.
	Worker int
	// Err is the item's error; a recovered panic is a *PanicError.
	Err error
}

func (e *ItemError) Error() string {
	return fmt.Sprintf("pool: item %d (worker %d): %v", e.Item, e.Worker, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *ItemError) Unwrap() error { return e.Err }

// PanicError is a panic recovered on a pool worker, preserved with
// the panicking goroutine's stack so the report reads like the crash
// it replaced.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}

// RunCtx executes fn(ctx, worker, i) for every i in [0, n) on a fixed
// pool of goroutines pulling from a shared work queue, with the error
// contract documented in the package comment: per-item panic recovery,
// full error collection, and prompt cancellation with in-flight drain.
// workers <= 0 means GOMAXPROCS; the pool never exceeds n. The worker
// id (in [0, workers)) lets callers pool expensive state — a
// profiler's analyzer tables, a k-means scratch buffer — across the
// items one worker processes.
func RunCtx(ctx context.Context, n, workers int, fn func(ctx context.Context, worker, i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		// Degenerate pool: run inline, keeping call order and avoiding
		// goroutine overhead for serial configurations. Cancellation is
		// checked between items, matching the dispatcher below.
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return joinWith(ctx.Err(), errs)
			}
			errs[i] = runItem(ctx, 0, i, fn)
		}
		return joinWith(nil, errs)
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range work {
				errs[i] = runItem(ctx, worker, i, fn)
			}
		}(w)
	}
	var ctxErr error
dispatch:
	for i := 0; i < n; i++ {
		select {
		case work <- i:
		case <-ctx.Done():
			ctxErr = ctx.Err()
			break dispatch
		}
	}
	close(work)
	wg.Wait()
	return joinWith(ctxErr, errs)
}

// runItem runs one item with panic recovery and the pool.item fault
// injection point (armed only by tests; one atomic load when not).
func runItem(ctx context.Context, worker, i int, fn func(ctx context.Context, worker, i int) error) (err error) {
	metItems.Inc()
	begin := time.Now()
	defer func() {
		metBusy.Add(time.Since(begin).Seconds())
		if r := recover(); r != nil {
			metPanics.Inc()
			metFailed.Inc()
			err = &ItemError{Item: i, Worker: worker,
				Err: &PanicError{Value: r, Stack: debug.Stack()}}
		} else if err != nil {
			metFailed.Inc()
		}
	}()
	if faults.Enabled() {
		// The injection point sits inside the recovery scope, so a
		// Crash fault exercises the real panic-isolation machinery.
		if kind, ok := faults.Fire(faults.PoolItem, strconv.Itoa(i)); ok {
			return &ItemError{Item: i, Worker: worker,
				Err: faults.Errorf(faults.PoolItem, strconv.Itoa(i), kind)}
		}
	}
	if ferr := fn(ctx, worker, i); ferr != nil {
		return &ItemError{Item: i, Worker: worker, Err: ferr}
	}
	return nil
}

// joinWith joins the non-nil per-item errors (in item order) with an
// optional leading context error.
func joinWith(ctxErr error, errs []error) error {
	all := make([]error, 0, 1)
	if ctxErr != nil {
		all = append(all, ctxErr)
	}
	for _, err := range errs {
		if err != nil {
			all = append(all, err)
		}
	}
	return errors.Join(all...)
}

// Run executes fn(worker, i) for every i in [0, n) on a fixed pool of
// goroutines pulling from a shared work queue. workers <= 0 means
// GOMAXPROCS; the pool never exceeds n. Run returns after every item
// has completed. It is the legacy non-cancellable entry point: fn has
// no error channel and a panic in fn propagates. New pipeline code
// should use RunCtx.
func Run(n, workers int, fn func(worker, i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Degenerate pool: run inline, keeping call order and avoiding
		// goroutine overhead for serial configurations.
		for i := 0; i < n; i++ {
			runLegacyItem(0, i, fn)
		}
		return
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range work {
				runLegacyItem(worker, i, fn)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}

// runLegacyItem counts one legacy Run item. Panics still propagate —
// the busy time of a crashing item is recorded on the way out.
func runLegacyItem(worker, i int, fn func(worker, i int)) {
	metItems.Inc()
	begin := time.Now()
	defer func() { metBusy.Add(time.Since(begin).Seconds()) }()
	fn(worker, i)
}
