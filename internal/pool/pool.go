// Package pool provides the fixed worker pool shared by the repo's
// parallel pipelines: registry-wide profiling (ProfileBenchmarks),
// sharded phase analysis (AnalyzePhasesBenchmarks) and the clustering
// k-sweep (cluster.SelectK). Work items are pulled from one shared
// queue by a bounded set of goroutines, so the number of live
// per-worker states (VMs, memories, analyzer tables, k-means scratch
// buffers) is genuinely bounded by the worker count — not merely
// rate-limited after all goroutines have been spawned.
package pool

import (
	"runtime"
	"sync"
)

// Run executes fn(worker, i) for every i in [0, n) on a fixed pool of
// goroutines pulling from a shared work queue. workers <= 0 means
// GOMAXPROCS; the pool never exceeds n. The worker id (in [0,
// workers)) lets callers pool expensive state — a profiler's analyzer
// tables, a k-means scratch buffer — across the items one worker
// processes. Run returns after every item has completed.
func Run(n, workers int, fn func(worker, i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Degenerate pool: run inline, keeping call order and avoiding
		// goroutine overhead for serial configurations.
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range work {
				fn(worker, i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}
