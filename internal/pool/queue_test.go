package pool

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestQueueRunsAllAccepted: every task TrySubmit accepts runs exactly
// once, and Close drains the accepted backlog before returning.
func TestQueueRunsAllAccepted(t *testing.T) {
	q := NewQueue(4, 64, nil)
	var ran atomic.Int64
	const n = 50
	for i := 0; i < n; i++ {
		if err := q.TrySubmit(func(worker int) { ran.Add(1) }); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	q.Close()
	if got := ran.Load(); got != n {
		t.Fatalf("ran %d tasks, want %d", got, n)
	}
}

// TestQueueSaturation: a full pending buffer rejects with
// ErrQueueSaturated while earlier tasks are still blocked, and
// capacity frees up as they complete.
func TestQueueSaturation(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	q := NewQueue(1, 1, nil)
	defer q.Close()
	// Occupy the single worker...
	if err := q.TrySubmit(func(worker int) { close(started); <-release }); err != nil {
		t.Fatal(err)
	}
	<-started
	// ...and the single buffer slot.
	if err := q.TrySubmit(func(worker int) {}); err != nil {
		t.Fatal(err)
	}
	if err := q.TrySubmit(func(worker int) {}); !errors.Is(err, ErrQueueSaturated) {
		t.Fatalf("submit to full queue: %v, want ErrQueueSaturated", err)
	}
	close(release)
}

// TestQueueClosed: Close rejects later submissions with ErrQueueClosed
// and is idempotent.
func TestQueueClosed(t *testing.T) {
	q := NewQueue(2, 4, nil)
	q.Close()
	q.Close()
	if err := q.TrySubmit(func(worker int) {}); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("submit after close: %v, want ErrQueueClosed", err)
	}
}

// TestQueuePanicIsolation: a panicking task is recovered, reported to
// the onPanic hook, and does not take down its worker — subsequent
// tasks still run.
func TestQueuePanicIsolation(t *testing.T) {
	var mu sync.Mutex
	var panics []any
	q := NewQueue(1, 8, func(v any, stack []byte) {
		mu.Lock()
		panics = append(panics, v)
		mu.Unlock()
		if len(stack) == 0 {
			t.Error("panic reported without a stack")
		}
	})
	var ran atomic.Int64
	if err := q.TrySubmit(func(worker int) { panic("boom") }); err != nil {
		t.Fatal(err)
	}
	if err := q.TrySubmit(func(worker int) { ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	q.Close()
	if ran.Load() != 1 {
		t.Fatal("task after a panicking task did not run")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(panics) != 1 || panics[0] != "boom" {
		t.Fatalf("recovered panics %v, want [boom]", panics)
	}
}

// TestQueueWorkerIDs: worker ids stay in [0, workers), the contract
// that lets submitters pool per-worker state.
func TestQueueWorkerIDs(t *testing.T) {
	const workers = 3
	q := NewQueue(workers, 64, nil)
	var bad atomic.Int64
	for i := 0; i < 30; i++ {
		if err := q.TrySubmit(func(worker int) {
			if worker < 0 || worker >= workers {
				bad.Add(1)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()
	if bad.Load() != 0 {
		t.Fatal("worker id out of range")
	}
}
