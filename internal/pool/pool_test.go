package pool

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunCoversAllItems(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 57
		seen := make([]int32, n)
		Run(n, workers, func(_, i int) {
			atomic.AddInt32(&seen[i], 1)
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunBoundsLiveWorkers(t *testing.T) {
	const n, workers = 40, 4
	var live, peak int32
	var mu sync.Mutex
	Run(n, workers, func(_, i int) {
		cur := atomic.AddInt32(&live, 1)
		mu.Lock()
		if cur > peak {
			peak = cur
		}
		mu.Unlock()
		atomic.AddInt32(&live, -1)
	})
	if peak > workers {
		t.Fatalf("observed %d concurrent items with %d workers", peak, workers)
	}
}

func TestRunWorkerIDsInRange(t *testing.T) {
	const n, workers = 30, 3
	var bad int32
	Run(n, workers, func(worker, _ int) {
		if worker < 0 || worker >= workers {
			atomic.AddInt32(&bad, 1)
		}
	})
	if bad != 0 {
		t.Fatalf("%d calls saw an out-of-range worker id", bad)
	}
}

func TestRunSerialInOrder(t *testing.T) {
	var order []int
	Run(5, 1, func(worker, i int) {
		if worker != 0 {
			t.Fatalf("serial run used worker %d", worker)
		}
		order = append(order, i)
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v", order)
		}
	}
}

func TestRunZeroItems(t *testing.T) {
	Run(0, 4, func(_, _ int) { t.Fatal("fn called with n=0") })
}
