package flathash

import (
	"encoding/binary"
	"testing"
)

// opStream decodes a fuzz byte string into container operations: each
// op consumes 1 byte of opcode and up to 8 bytes of key material.
// Short tails pad with zero, so every byte string is a valid program —
// including ones that hammer the zero key, force growth, and Clear
// mid-stream (the pooled-analyzer lifecycle).
func opStream(data []byte, apply func(op byte, key uint64)) {
	for len(data) > 0 {
		op := data[0]
		data = data[1:]
		var kb [8]byte
		n := copy(kb[:], data)
		data = data[n:]
		key := binary.LittleEndian.Uint64(kb[:])
		// A few ops bias toward small keys so collisions and
		// first-probe paths actually get exercised.
		if op&0x40 != 0 {
			key %= 16
		}
		apply(op, key)
	}
}

// FuzzU64Set mirrors an op stream against Go's built-in map: Add,
// Contains, Len and Clear must agree after every operation. The seed
// corpus runs as a normal test in CI; `go test -fuzz=FuzzU64Set
// ./internal/flathash` explores further.
func FuzzU64Set(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0}) // Add(0)
	f.Add([]byte{1, 5, 0, 0, 0, 0, 0, 0, 0, 2})
	// A growth burst: many distinct small-ish keys.
	var burst []byte
	for i := byte(1); i < 60; i++ {
		burst = append(burst, 0, i, i, 0, 0, 0, 0, 0, 0)
	}
	f.Add(burst)
	f.Add(append(burst, 3)) // growth then Clear
	f.Fuzz(func(t *testing.T, data []byte) {
		s := NewU64Set(0)
		ref := map[uint64]bool{}
		opStream(data, func(op byte, key uint64) {
			switch op & 3 {
			case 0, 1: // Add (twice as likely: growth needs inserts)
				added := s.Add(key)
				if added == ref[key] {
					t.Fatalf("Add(%d) reported added=%v but ref has=%v", key, added, ref[key])
				}
				ref[key] = true
			case 2: // Contains
				if got := s.Contains(key); got != ref[key] {
					t.Fatalf("Contains(%d) = %v, ref %v", key, got, ref[key])
				}
			case 3: // Clear
				s.Clear()
				ref = map[uint64]bool{}
			}
			if s.Len() != len(ref) {
				t.Fatalf("Len() = %d, ref %d", s.Len(), len(ref))
			}
		})
		// Closing audit: every reference key present, and a probe of
		// absent keys stays absent.
		for k := range ref {
			if !s.Contains(k) {
				t.Fatalf("key %d lost", k)
			}
			if !ref[k+1] && s.Contains(k+1) {
				t.Fatalf("phantom key %d", k+1)
			}
		}
	})
}

// FuzzU64Map mirrors an op stream against map[uint64]uint64: Put, Get,
// Ref-increment, Len and Clear must agree after every operation.
func FuzzU64Map(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0, 9, 0, 0, 0, 0, 0, 0, 0, 1, 9, 0, 0, 0, 0, 0, 0, 0})
	var burst []byte
	for i := byte(1); i < 60; i++ {
		burst = append(burst, 0, i, 1, 0, 0, 0, 0, 0, 0)
	}
	f.Add(burst)
	f.Add(append(burst, 3))
	f.Fuzz(func(t *testing.T, data []byte) {
		m := NewU64Map(0)
		ref := map[uint64]uint64{}
		opStream(data, func(op byte, key uint64) {
			switch op & 3 {
			case 0: // Put (value derived from key so it is checkable)
				v := key*2718281829 + 7
				m.Put(key, v)
				ref[key] = v
			case 1: // Ref increment — the analyzers' hot in-place update
				*m.Ref(key)++
				ref[key]++
			case 2: // Get
				got, ok := m.Get(key)
				want, wok := ref[key]
				if got != want || ok != wok {
					t.Fatalf("Get(%d) = (%d, %v), ref (%d, %v)", key, got, ok, want, wok)
				}
			case 3: // Clear
				m.Clear()
				ref = map[uint64]uint64{}
			}
			if m.Len() != len(ref) {
				t.Fatalf("Len() = %d, ref %d", m.Len(), len(ref))
			}
		})
		for k, want := range ref {
			if got, ok := m.Get(k); !ok || got != want {
				t.Fatalf("key %d: got (%d, %v), want %d", k, got, ok, want)
			}
		}
	})
}

// FuzzU64MapGen pins the Gen/Ref pointer-stability contract under a
// fuzzable op mix: a pointer from Ref stays valid (writes land in the
// table) as long as Gen is unchanged.
func FuzzU64MapGen(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	var burst []byte
	for i := byte(1); i < 40; i++ {
		burst = append(burst, i)
	}
	f.Add(burst)
	f.Fuzz(func(t *testing.T, keys []byte) {
		m := NewU64Map(0)
		type held struct {
			key uint64
			ptr *uint64
			gen uint64
		}
		var holds []held
		for _, kb := range keys {
			k := uint64(kb) + 1
			p := m.Ref(k)
			*p += k
			holds = append(holds, held{key: k, ptr: p, gen: m.Gen()})
		}
		// Every pointer taken at the final generation must still be
		// live: writing through it must be observable via Get.
		for _, h := range holds {
			if h.gen != m.Gen() {
				continue // invalidated by a later rehash, contract makes no claim
			}
			*h.ptr += 1000
			got, _ := m.Get(h.key)
			if got != *h.ptr {
				t.Fatalf("stale Ref pointer for key %d at stable Gen", h.key)
			}
		}
	})
}
