// Package flathash provides open-addressed hash containers specialized
// for uint64 keys on the profiling hot path. Compared to Go's built-in
// map they avoid per-entry pointers, interface hashing and bucket
// indirection: slots live in one flat array, lookup is a fibonacci-hash
// multiply plus a short linear probe, and values are stored inline.
//
// The containers support insertion and lookup only (no deletion) — the
// analyzers that use them only ever accumulate state over a trace. Slot
// zero ambiguity is resolved by tracking key 0 out of band, so any
// uint64 is a valid key.
package flathash

import "math/bits"

// fibMul is 2^64 / phi, the fibonacci hashing multiplier. Multiplying by
// it and taking the top bits spreads consecutive keys (PCs, block and
// page numbers) across the table, which linear probing needs.
const fibMul = 0x9E3779B97F4A7C15

// minCap is the smallest table size; small enough that per-benchmark
// short-lived tables stay cheap, large enough to avoid immediate growth.
const minCap = 16

// maxLoadNum/maxLoadDen give the 13/16 (~0.81) load factor at which
// tables double. Linear probing stays short below this.
const (
	maxLoadNum = 13
	maxLoadDen = 16
)

// clearShrinkCap is the capacity above which Clear reallocates at the
// previous occupancy instead of zeroing in place: a pooled table left
// huge by one outlier trace would otherwise charge a full-capacity
// memset to every later Clear, while a fresh occupancy-sized table
// costs one allocation and adapts back down immediately.
const clearShrinkCap = 1 << 15

// capFor returns the power-of-two capacity for an expected element count.
func capFor(hint int) int {
	c := minCap
	for c*maxLoadNum/maxLoadDen < hint {
		c <<= 1
	}
	return c
}

// U64Set is an open-addressed set of uint64 keys.
type U64Set struct {
	// keys holds the occupied slots; 0 marks an empty slot.
	keys    []uint64
	shift   uint // 64 - log2(len(keys))
	n       int  // occupied slots, excluding the zero key
	growAt  int
	hasZero bool
}

// NewU64Set returns a set sized for about hint elements (0 for default).
func NewU64Set(hint int) *U64Set {
	s := &U64Set{}
	s.init(capFor(hint))
	return s
}

func (s *U64Set) init(capacity int) {
	s.keys = make([]uint64, capacity)
	s.shift = uint(64 - bits.TrailingZeros(uint(capacity)))
	s.growAt = capacity * maxLoadNum / maxLoadDen
}

// Len returns the number of distinct keys added.
func (s *U64Set) Len() int {
	if s.hasZero {
		return s.n + 1
	}
	return s.n
}

// Add inserts k, reporting whether it was newly added.
func (s *U64Set) Add(k uint64) bool {
	if k != 0 {
		// First-probe membership hit, inlinable into observer loops.
		if s.keys[(k*fibMul)>>s.shift] == k {
			return false
		}
	}
	return s.addSlow(k)
}

func (s *U64Set) addSlow(k uint64) bool {
	if k == 0 {
		added := !s.hasZero
		s.hasZero = true
		return added
	}
	i := (k * fibMul) >> s.shift
	mask := uint64(len(s.keys) - 1)
	for {
		kk := s.keys[i]
		if kk == k {
			return false
		}
		if kk == 0 {
			s.keys[i] = k
			s.n++
			if s.n >= s.growAt {
				s.grow()
			}
			return true
		}
		i = (i + 1) & mask
	}
}

// Clear removes every key in place, keeping the allocated table (or,
// past clearShrinkCap, reallocating it sized to the previous
// occupancy). A cleared set behaves exactly like a fresh one, minus the
// allocation — the mechanism pooled analyzers use to recycle their
// tables between trace intervals and across benchmarks.
func (s *U64Set) Clear() {
	if len(s.keys) > clearShrinkCap {
		s.init(capFor(s.Len()))
	} else {
		clear(s.keys)
	}
	s.n = 0
	s.hasZero = false
}

// Contains reports whether k is in the set.
func (s *U64Set) Contains(k uint64) bool {
	if k == 0 {
		return s.hasZero
	}
	i := (k * fibMul) >> s.shift
	mask := uint64(len(s.keys) - 1)
	for {
		kk := s.keys[i]
		if kk == k {
			return true
		}
		if kk == 0 {
			return false
		}
		i = (i + 1) & mask
	}
}

func (s *U64Set) grow() {
	old := s.keys
	s.init(len(old) * 2)
	n := 0
	mask := uint64(len(s.keys) - 1)
	for _, k := range old {
		if k == 0 {
			continue
		}
		i := (k * fibMul) >> s.shift
		for s.keys[i] != 0 {
			i = (i + 1) & mask
		}
		s.keys[i] = k
		n++
	}
	s.n = n
}

// U64Map is an open-addressed uint64 -> uint64 map with inline values.
type U64Map struct {
	keys    []uint64 // 0 marks an empty slot
	vals    []uint64
	shift   uint
	n       int
	growAt  int
	gen     uint64
	hasZero bool
	zeroVal uint64
}

// NewU64Map returns a map sized for about hint elements (0 for default).
func NewU64Map(hint int) *U64Map {
	m := &U64Map{}
	m.init(capFor(hint))
	return m
}

func (m *U64Map) init(capacity int) {
	m.keys = make([]uint64, capacity)
	m.vals = make([]uint64, capacity)
	m.shift = uint(64 - bits.TrailingZeros(uint(capacity)))
	m.growAt = capacity * maxLoadNum / maxLoadDen
}

// Len returns the number of distinct keys stored.
func (m *U64Map) Len() int {
	if m.hasZero {
		return m.n + 1
	}
	return m.n
}

// Gen returns the table's growth generation: it increments every time
// the table rehashes. While Gen is unchanged, pointers obtained from Ref
// remain valid (inserts that do not grow never move existing slots).
func (m *U64Map) Gen() uint64 { return m.gen }

// Clear removes every entry in place, keeping the allocated tables
// (or, past clearShrinkCap, reallocating them sized to the previous
// occupancy). The values array is zeroed too: Ref relies on untouched
// slots reading as zero, exactly as in a fresh map. Clear counts as a
// rehash for Gen — pointers previously obtained from Ref must not be
// used afterwards.
func (m *U64Map) Clear() {
	if len(m.keys) > clearShrinkCap {
		m.init(capFor(m.Len()))
	} else {
		clear(m.keys)
		clear(m.vals)
	}
	m.n = 0
	m.hasZero = false
	m.zeroVal = 0
	m.gen++
}

// Get returns the value for k and whether it is present.
func (m *U64Map) Get(k uint64) (uint64, bool) {
	if k == 0 {
		return m.zeroVal, m.hasZero
	}
	i := (k * fibMul) >> m.shift
	mask := uint64(len(m.keys) - 1)
	for {
		kk := m.keys[i]
		if kk == k {
			return m.vals[i], true
		}
		if kk == 0 {
			return 0, false
		}
		i = (i + 1) & mask
	}
}

// Put stores v under k.
func (m *U64Map) Put(k, v uint64) { *m.Ref(k) = v }

// Ref returns a pointer to k's value slot, inserting a zero value if the
// key is absent. The pointer is invalidated by the next insertion of a
// new key (which may grow the table); callers use it for immediate
// in-place updates only.
func (m *U64Map) Ref(k uint64) *uint64 {
	if k == 0 {
		m.hasZero = true
		return &m.zeroVal
	}
	// First-probe hit is the overwhelmingly common case and inlines
	// into the analyzers' Observe loops.
	if i := (k * fibMul) >> m.shift; m.keys[i] == k {
		return &m.vals[i]
	}
	return m.refSlow(k)
}

// refSlow probes past the first slot and handles insertion and growth.
func (m *U64Map) refSlow(k uint64) *uint64 {
	i := (k * fibMul) >> m.shift
	mask := uint64(len(m.keys) - 1)
	for {
		kk := m.keys[i]
		if kk == k {
			return &m.vals[i]
		}
		if kk == 0 {
			m.keys[i] = k
			m.n++
			if m.n >= m.growAt {
				m.grow()
				// Re-probe: the slot moved during rehashing.
				i = (k * fibMul) >> m.shift
				mask = uint64(len(m.keys) - 1)
				for m.keys[i] != k {
					i = (i + 1) & mask
				}
			}
			return &m.vals[i]
		}
		i = (i + 1) & mask
	}
}

func (m *U64Map) grow() {
	m.gen++
	oldK, oldV := m.keys, m.vals
	m.init(len(oldK) * 2)
	mask := uint64(len(m.keys) - 1)
	n := 0
	for j, k := range oldK {
		if k == 0 {
			continue
		}
		i := (k * fibMul) >> m.shift
		for m.keys[i] != 0 {
			i = (i + 1) & mask
		}
		m.keys[i] = k
		m.vals[i] = oldV[j]
		n++
	}
	m.n = n
}
