package flathash

import (
	"math/rand"
	"testing"
)

// keyGen produces keys with the distributions the analyzers see: dense
// sequential runs (PCs, block numbers), clustered addresses, uniform
// noise, and the zero key.
func keyGen(rng *rand.Rand) func() uint64 {
	base := rng.Uint64() >> 16
	return func() uint64 {
		switch rng.Intn(8) {
		case 0:
			return 0
		case 1, 2, 3:
			return base + uint64(rng.Intn(4096)) // dense run
		case 4, 5:
			return (base << 12) | uint64(rng.Intn(64)) // clustered
		default:
			return rng.Uint64()
		}
	}
}

func TestU64SetVsBuiltin(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		gen := keyGen(rng)
		s := NewU64Set(0)
		ref := make(map[uint64]struct{})
		for i := 0; i < 20000; i++ {
			k := gen()
			_, had := ref[k]
			ref[k] = struct{}{}
			if added := s.Add(k); added == had {
				t.Fatalf("seed %d op %d: Add(%#x) = %v, want %v", seed, i, k, added, !had)
			}
			if i%37 == 0 {
				probe := gen()
				_, want := ref[probe]
				if got := s.Contains(probe); got != want {
					t.Fatalf("seed %d op %d: Contains(%#x) = %v, want %v", seed, i, probe, got, want)
				}
			}
		}
		if s.Len() != len(ref) {
			t.Fatalf("seed %d: Len = %d, want %d", seed, s.Len(), len(ref))
		}
		for k := range ref {
			if !s.Contains(k) {
				t.Fatalf("seed %d: lost key %#x", seed, k)
			}
		}
	}
}

func TestU64MapVsBuiltin(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		gen := keyGen(rng)
		m := NewU64Map(0)
		ref := make(map[uint64]uint64)
		for i := 0; i < 20000; i++ {
			k := gen()
			switch rng.Intn(3) {
			case 0: // Put
				v := rng.Uint64()
				m.Put(k, v)
				ref[k] = v
			case 1: // Ref increment (the PPM/ILP usage pattern)
				*m.Ref(k) += 3
				ref[k] += 3
			case 2: // Get
				want, wantOK := ref[k]
				got, ok := m.Get(k)
				if ok != wantOK || got != want {
					t.Fatalf("seed %d op %d: Get(%#x) = %v,%v want %v,%v",
						seed, i, k, got, ok, want, wantOK)
				}
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("seed %d: Len = %d, want %d", seed, m.Len(), len(ref))
		}
		for k, want := range ref {
			if got, ok := m.Get(k); !ok || got != want {
				t.Fatalf("seed %d: Get(%#x) = %v,%v want %v,true", seed, k, got, ok, want)
			}
		}
	}
}

// TestU64SetSequential pins behaviour on the fully sequential key stream
// an instruction working-set analyzer produces: every key distinct and
// adjacent, forcing repeated growth.
func TestU64SetSequential(t *testing.T) {
	s := NewU64Set(0)
	const n = 1 << 16
	for i := uint64(0); i < n; i++ {
		if !s.Add(i) {
			t.Fatalf("Add(%d) reported duplicate", i)
		}
	}
	for i := uint64(0); i < n; i++ {
		if s.Add(i) {
			t.Fatalf("re-Add(%d) reported new", i)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
}

// TestU64MapRefAcrossGrowth verifies the documented Ref contract: the
// pointer stays valid for immediate updates even when the insertion that
// produced it grew the table.
func TestU64MapRefAcrossGrowth(t *testing.T) {
	m := NewU64Map(0)
	for i := uint64(1); i <= 10000; i++ {
		p := m.Ref(i)
		*p = i * 7
	}
	for i := uint64(1); i <= 10000; i++ {
		if v, ok := m.Get(i); !ok || v != i*7 {
			t.Fatalf("Get(%d) = %v,%v want %d,true", i, v, ok, i*7)
		}
	}
}

func TestCapFor(t *testing.T) {
	for _, tc := range []struct{ hint, want int }{
		{0, minCap}, {1, minCap}, {13, minCap}, {14, 32}, {1000, 2048},
	} {
		if got := capFor(tc.hint); got != tc.want {
			t.Errorf("capFor(%d) = %d, want %d", tc.hint, got, tc.want)
		}
	}
}

func BenchmarkU64SetAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 1<<14)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	b.Run("flathash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := NewU64Set(0)
			for _, k := range keys {
				s.Add(k)
			}
		}
	})
	b.Run("builtin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := make(map[uint64]struct{})
			for _, k := range keys {
				s[k] = struct{}{}
			}
		}
	})
}
