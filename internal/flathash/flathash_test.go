package flathash

import (
	"math/rand"
	"testing"
)

// keyGen produces keys with the distributions the analyzers see: dense
// sequential runs (PCs, block numbers), clustered addresses, uniform
// noise, and the zero key.
func keyGen(rng *rand.Rand) func() uint64 {
	base := rng.Uint64() >> 16
	return func() uint64 {
		switch rng.Intn(8) {
		case 0:
			return 0
		case 1, 2, 3:
			return base + uint64(rng.Intn(4096)) // dense run
		case 4, 5:
			return (base << 12) | uint64(rng.Intn(64)) // clustered
		default:
			return rng.Uint64()
		}
	}
}

func TestU64SetVsBuiltin(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		gen := keyGen(rng)
		s := NewU64Set(0)
		ref := make(map[uint64]struct{})
		for i := 0; i < 20000; i++ {
			k := gen()
			_, had := ref[k]
			ref[k] = struct{}{}
			if added := s.Add(k); added == had {
				t.Fatalf("seed %d op %d: Add(%#x) = %v, want %v", seed, i, k, added, !had)
			}
			if i%37 == 0 {
				probe := gen()
				_, want := ref[probe]
				if got := s.Contains(probe); got != want {
					t.Fatalf("seed %d op %d: Contains(%#x) = %v, want %v", seed, i, probe, got, want)
				}
			}
		}
		if s.Len() != len(ref) {
			t.Fatalf("seed %d: Len = %d, want %d", seed, s.Len(), len(ref))
		}
		for k := range ref {
			if !s.Contains(k) {
				t.Fatalf("seed %d: lost key %#x", seed, k)
			}
		}
	}
}

func TestU64MapVsBuiltin(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		gen := keyGen(rng)
		m := NewU64Map(0)
		ref := make(map[uint64]uint64)
		for i := 0; i < 20000; i++ {
			k := gen()
			switch rng.Intn(3) {
			case 0: // Put
				v := rng.Uint64()
				m.Put(k, v)
				ref[k] = v
			case 1: // Ref increment (the PPM/ILP usage pattern)
				*m.Ref(k) += 3
				ref[k] += 3
			case 2: // Get
				want, wantOK := ref[k]
				got, ok := m.Get(k)
				if ok != wantOK || got != want {
					t.Fatalf("seed %d op %d: Get(%#x) = %v,%v want %v,%v",
						seed, i, k, got, ok, want, wantOK)
				}
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("seed %d: Len = %d, want %d", seed, m.Len(), len(ref))
		}
		for k, want := range ref {
			if got, ok := m.Get(k); !ok || got != want {
				t.Fatalf("seed %d: Get(%#x) = %v,%v want %v,true", seed, k, got, ok, want)
			}
		}
	}
}

// TestU64SetSequential pins behaviour on the fully sequential key stream
// an instruction working-set analyzer produces: every key distinct and
// adjacent, forcing repeated growth.
func TestU64SetSequential(t *testing.T) {
	s := NewU64Set(0)
	const n = 1 << 16
	for i := uint64(0); i < n; i++ {
		if !s.Add(i) {
			t.Fatalf("Add(%d) reported duplicate", i)
		}
	}
	for i := uint64(0); i < n; i++ {
		if s.Add(i) {
			t.Fatalf("re-Add(%d) reported new", i)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
}

// TestU64MapRefAcrossGrowth verifies the documented Ref contract: the
// pointer stays valid for immediate updates even when the insertion that
// produced it grew the table.
func TestU64MapRefAcrossGrowth(t *testing.T) {
	m := NewU64Map(0)
	for i := uint64(1); i <= 10000; i++ {
		p := m.Ref(i)
		*p = i * 7
	}
	for i := uint64(1); i <= 10000; i++ {
		if v, ok := m.Get(i); !ok || v != i*7 {
			t.Fatalf("Get(%d) = %v,%v want %d,true", i, v, ok, i*7)
		}
	}
}

// TestU64SetClear verifies a cleared set is indistinguishable from a
// fresh one over randomized workloads, including re-adding the same keys
// (pooled analyzers clear and refill the same tables every interval).
func TestU64SetClear(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		gen := keyGen(rng)
		s := NewU64Set(0)
		for round := 0; round < 3; round++ {
			ref := make(map[uint64]struct{})
			for i := 0; i < 5000; i++ {
				k := gen()
				_, had := ref[k]
				ref[k] = struct{}{}
				if added := s.Add(k); added == had {
					t.Fatalf("seed %d round %d: Add(%#x) = %v, want %v", seed, round, k, added, !had)
				}
			}
			if s.Len() != len(ref) {
				t.Fatalf("seed %d round %d: Len = %d, want %d", seed, round, s.Len(), len(ref))
			}
			s.Clear()
			if s.Len() != 0 {
				t.Fatalf("seed %d round %d: Len = %d after Clear", seed, round, s.Len())
			}
			for k := range ref {
				if s.Contains(k) {
					t.Fatalf("seed %d round %d: key %#x survived Clear", seed, round, k)
				}
			}
		}
	}
}

// TestU64MapClear verifies a cleared map behaves exactly like a fresh
// one: no keys, all values read as zero (Ref's insert-zero contract),
// and the growth generation advances so cached Ref pointers are known
// stale.
func TestU64MapClear(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		gen := keyGen(rng)
		m := NewU64Map(0)
		for round := 0; round < 3; round++ {
			gen0 := m.Gen()
			ref := make(map[uint64]uint64)
			for i := 0; i < 5000; i++ {
				k := gen()
				*m.Ref(k) += 3
				ref[k] += 3
			}
			for k, want := range ref {
				if got, ok := m.Get(k); !ok || got != want {
					t.Fatalf("seed %d round %d: Get(%#x) = %v,%v want %v,true", seed, round, k, got, ok, want)
				}
			}
			m.Clear()
			if m.Len() != 0 {
				t.Fatalf("seed %d round %d: Len = %d after Clear", seed, round, m.Len())
			}
			if m.Gen() <= gen0 {
				t.Fatalf("seed %d round %d: Gen did not advance across Clear", seed, round)
			}
			for k := range ref {
				if v, ok := m.Get(k); ok || v != 0 {
					t.Fatalf("seed %d round %d: Get(%#x) = %v,%v after Clear", seed, round, k, v, ok)
				}
			}
			// Refilled slots must start from zero even where the old
			// round left values behind.
			for k := range ref {
				if *m.Ref(k) != 0 {
					t.Fatalf("seed %d round %d: Ref(%#x) nonzero after Clear", seed, round, k)
				}
				break
			}
			m.Clear()
		}
	}
}

// TestClearShrinksOversizedTables pins the pooled-reuse guard: one
// outlier trace that grows a table past clearShrinkCap must not charge
// a full-capacity memset to every later interval's Clear — the table is
// reallocated at the previous occupancy instead.
func TestClearShrinksOversizedTables(t *testing.T) {
	s := NewU64Set(0)
	for i := uint64(1); i <= clearShrinkCap; i++ {
		s.Add(i)
	}
	if len(s.keys) <= clearShrinkCap {
		t.Fatalf("test premise broken: capacity %d not past threshold", len(s.keys))
	}
	for i := 0; i < 3; i++ {
		s.Clear()
	}
	if len(s.keys) > minCap {
		t.Errorf("empty-set capacity %d after Clear, want shrink to %d", len(s.keys), minCap)
	}
	if s.Len() != 0 || s.Contains(5) {
		t.Error("shrunken set not empty")
	}
	if !s.Add(5) || !s.Contains(5) {
		t.Error("shrunken set unusable")
	}

	m := NewU64Map(0)
	for i := uint64(1); i <= clearShrinkCap; i++ {
		m.Put(i, i)
	}
	if len(m.keys) <= clearShrinkCap {
		t.Fatalf("test premise broken: map capacity %d not past threshold", len(m.keys))
	}
	for i := 0; i < 3; i++ {
		m.Clear()
	}
	if len(m.keys) > minCap {
		t.Errorf("empty-map capacity %d after Clear, want shrink to %d", len(m.keys), minCap)
	}
	if *m.Ref(7) != 0 {
		t.Error("shrunken map slot not zero")
	}
}

func TestCapFor(t *testing.T) {
	for _, tc := range []struct{ hint, want int }{
		{0, minCap}, {1, minCap}, {13, minCap}, {14, 32}, {1000, 2048},
	} {
		if got := capFor(tc.hint); got != tc.want {
			t.Errorf("capFor(%d) = %d, want %d", tc.hint, got, tc.want)
		}
	}
}

func BenchmarkU64SetAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 1<<14)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	b.Run("flathash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := NewU64Set(0)
			for _, k := range keys {
				s.Add(k)
			}
		}
	})
	b.Run("builtin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := make(map[uint64]struct{})
			for _, k := range keys {
				s[k] = struct{}{}
			}
		}
	})
}
