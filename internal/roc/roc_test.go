package roc

import (
	"math"
	"sort"
	"testing"
)

func TestClassifyQuadrants(t *testing.T) {
	hpc := []float64{10, 10, 1, 1}
	indep := []float64{10, 1, 10, 1}
	q := Classify(hpc, indep, 5, 5)
	if q.TruePositive != 1 || q.FalseNegative != 1 || q.FalsePositive != 1 || q.TrueNegative != 1 {
		t.Errorf("quadrants = %+v, want one each", q)
	}
	if q.Total() != 4 {
		t.Errorf("total = %d", q.Total())
	}
	fn, tp, tn, fp := q.Fractions()
	if fn != 0.25 || tp != 0.25 || tn != 0.25 || fp != 0.25 {
		t.Error("fractions wrong")
	}
}

func TestClassifyAtFraction(t *testing.T) {
	// Max distances: hpc 10, indep 100; 20% thresholds: 2 and 20.
	hpc := []float64{10, 3, 1}
	indep := []float64{100, 10, 30}
	q := ClassifyAtFraction(hpc, indep, 0.2)
	// (10,100): TP. (3,10): large hpc, small indep: FN. (1,30): small
	// hpc, large indep: FP.
	if q.TruePositive != 1 || q.FalseNegative != 1 || q.FalsePositive != 1 || q.TrueNegative != 0 {
		t.Errorf("quadrants = %+v", q)
	}
}

func TestSensitivitySpecificity(t *testing.T) {
	q := Quadrants{TruePositive: 8, FalseNegative: 2, TrueNegative: 3, FalsePositive: 7}
	if got := q.Sensitivity(); got != 0.8 {
		t.Errorf("sensitivity = %g, want 0.8", got)
	}
	if got := q.Specificity(); got != 0.3 {
		t.Errorf("specificity = %g, want 0.3", got)
	}
	var empty Quadrants
	if empty.Sensitivity() != 0 || empty.Specificity() != 0 {
		t.Error("empty quadrants should give 0 rates")
	}
}

func TestPerfectClassifierAUC(t *testing.T) {
	// Indep distance identical to HPC distance: perfect agreement.
	d := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	pts := Curve(d, d, 0.5)
	auc := AUC(pts)
	if auc < 0.99 {
		t.Errorf("perfect agreement AUC = %g, want ~1", auc)
	}
}

func TestAntiCorrelatedAUCIsLow(t *testing.T) {
	hpc := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	indep := []float64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}
	auc := AUC(Curve(hpc, indep, 0.5))
	if auc > 0.2 {
		t.Errorf("anti-correlated AUC = %g, want ~0", auc)
	}
}

func TestCurveEndpoints(t *testing.T) {
	hpc := []float64{1, 5, 9, 2, 7}
	indep := []float64{3, 1, 8, 6, 2}
	pts := Curve(hpc, indep, 0.2)
	if len(pts) == 0 {
		t.Fatal("empty curve")
	}
	// With threshold below all distances everything is "large":
	// sensitivity 1, specificity 0.
	first := pts[len(pts)-1]
	if first.Sensitivity != 1 || first.OneMinusSpec != 1 {
		t.Errorf("lowest-threshold point = %+v, want (1,1)", first)
	}
	// With threshold at the max everything is "small".
	last := pts[0]
	if last.Sensitivity != 0 || last.OneMinusSpec != 0 {
		t.Errorf("highest-threshold point = %+v, want (0,0)", last)
	}
}

func TestCurveMonotone(t *testing.T) {
	hpc := []float64{1, 5, 9, 2, 7, 4, 8, 3}
	indep := []float64{2, 4, 7, 3, 6, 5, 9, 1}
	pts := Curve(hpc, indep, 0.3)
	for i := 1; i < len(pts); i++ {
		if pts[i].OneMinusSpec < pts[i-1].OneMinusSpec {
			t.Fatal("curve x not sorted")
		}
		if pts[i].Sensitivity+1e-12 < pts[i-1].Sensitivity {
			t.Fatal("sensitivity not monotone along curve")
		}
	}
}

func TestAUCBounds(t *testing.T) {
	hpc := []float64{1, 5, 9, 2, 7, 4}
	indep := []float64{2, 4, 7, 3, 6, 5}
	auc := AUC(Curve(hpc, indep, 0.2))
	if auc < 0 || auc > 1 || math.IsNaN(auc) {
		t.Errorf("AUC = %g out of bounds", auc)
	}
}

func TestQuadrantsString(t *testing.T) {
	q := Quadrants{TruePositive: 1, TrueNegative: 1, FalsePositive: 1, FalseNegative: 1}
	s := q.String()
	if s == "" {
		t.Error("empty string")
	}
}

// naiveCurve is the pre-deduplication reference implementation: one
// classification pass per entry of indepDist, duplicates included. The
// regression below pins that removing duplicate thresholds changes
// neither the curve's shape nor its area.
func naiveCurve(hpcDist, indepDist []float64, hpcFrac float64) []Point {
	hpcThresh := hpcFrac * max(hpcDist)
	thresholds := append([]float64{-1}, indepDist...)
	sort.Float64s(thresholds)
	points := make([]Point, 0, len(thresholds))
	for _, th := range thresholds {
		q := Classify(hpcDist, indepDist, hpcThresh, th)
		points = append(points, Point{Threshold: th, Sensitivity: q.Sensitivity(), OneMinusSpec: 1 - q.Specificity()})
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].OneMinusSpec != points[j].OneMinusSpec {
			return points[i].OneMinusSpec < points[j].OneMinusSpec
		}
		return points[i].Sensitivity < points[j].Sensitivity
	})
	return points
}

func max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// TestCurveDeduplicatesRepeatedDistances: repeated indep distances
// (duplicate benchmarks, symmetric tuples) must not emit duplicate
// curve points, and deduplication must leave the AUC untouched.
func TestCurveDeduplicatesRepeatedDistances(t *testing.T) {
	hpc := []float64{1, 8, 3, 9, 2, 8, 3, 9, 5, 5}
	indep := []float64{2, 7, 2, 9, 2, 7, 4, 9, 4, 6}

	curve := Curve(hpc, indep, 0.2)
	reference := naiveCurve(hpc, indep, 0.2)

	// AUC unchanged: the duplicate points the old sweep emitted were
	// zero-width trapezoids.
	if got, want := AUC(curve), AUC(reference); math.Abs(got-want) > 1e-12 {
		t.Errorf("AUC changed by deduplication: %g vs %g", got, want)
	}

	// One point per distinct threshold: 5 distinct distances
	// (2, 4, 6, 7, 9) plus the -1 sentinel.
	if len(curve) != 6 {
		t.Errorf("curve has %d points, want 6 (5 distinct distances + sentinel)", len(curve))
	}

	// Points strictly ordered: sorted ascending and pairwise distinct —
	// each threshold step flips at least one tuple in one direction, so
	// no two points may coincide.
	for i := 1; i < len(curve); i++ {
		a, b := curve[i-1], curve[i]
		if a.OneMinusSpec > b.OneMinusSpec {
			t.Errorf("points %d,%d out of order on 1-specificity: %g > %g", i-1, i, a.OneMinusSpec, b.OneMinusSpec)
		}
		if a.OneMinusSpec == b.OneMinusSpec && a.Sensitivity >= b.Sensitivity {
			t.Errorf("points %d,%d not strictly ordered: (%g,%g) then (%g,%g)",
				i-1, i, a.OneMinusSpec, a.Sensitivity, b.OneMinusSpec, b.Sensitivity)
		}
	}
}
