// Package roc implements the paper's similarity-classification analysis:
// the quadrant classification of benchmark tuples (Table III) and the
// receiver operating characteristic evaluation of workload
// characterization methods (Figure 4).
//
// The convention follows Section IV: the "truth" label of a benchmark
// tuple is whether its distance in the hardware-performance-counter space
// is large (greater than a threshold fixed at 20% of the maximum observed
// distance); the "prediction" is whether its distance in the
// microarchitecture-independent space is large.
package roc

import (
	"fmt"
	"sort"

	"mica/internal/stats"
)

// DefaultThresholdFraction is the paper's 20%-of-maximum-distance
// classification threshold.
const DefaultThresholdFraction = 0.20

// Quadrants counts benchmark tuples by classification outcome (Table III).
type Quadrants struct {
	TruePositive  int // large HPC distance, large uarch-independent distance
	TrueNegative  int // small HPC distance, small uarch-independent distance
	FalsePositive int // small HPC distance, large uarch-independent distance
	FalseNegative int // large HPC distance, small uarch-independent distance
}

// Total returns the number of classified tuples.
func (q Quadrants) Total() int {
	return q.TruePositive + q.TrueNegative + q.FalsePositive + q.FalseNegative
}

// Fractions returns the four quadrant fractions in Table III order
// (FN, TP, TN, FP).
func (q Quadrants) Fractions() (fn, tp, tn, fp float64) {
	t := float64(q.Total())
	if t == 0 {
		return 0, 0, 0, 0
	}
	return float64(q.FalseNegative) / t, float64(q.TruePositive) / t,
		float64(q.TrueNegative) / t, float64(q.FalsePositive) / t
}

// Sensitivity is the true positive rate: of the tuples distant in the HPC
// space, the fraction also distant in the uarch-independent space.
func (q Quadrants) Sensitivity() float64 {
	d := q.TruePositive + q.FalseNegative
	if d == 0 {
		return 0
	}
	return float64(q.TruePositive) / float64(d)
}

// Specificity is the true negative rate: of the tuples close in the HPC
// space, the fraction also close in the uarch-independent space.
func (q Quadrants) Specificity() float64 {
	d := q.TrueNegative + q.FalsePositive
	if d == 0 {
		return 0
	}
	return float64(q.TrueNegative) / float64(d)
}

// String formats the quadrants as the Table III percentages.
func (q Quadrants) String() string {
	fn, tp, tn, fp := q.Fractions()
	return fmt.Sprintf("FN %.1f%%  TP %.1f%%  TN %.1f%%  FP %.1f%%",
		fn*100, tp*100, tn*100, fp*100)
}

// Classify labels every benchmark tuple given the two distance vectors
// (in the same canonical pair order) and absolute distance thresholds.
func Classify(hpcDist, indepDist []float64, hpcThresh, indepThresh float64) Quadrants {
	if len(hpcDist) != len(indepDist) {
		panic(fmt.Sprintf("roc: distance vectors of length %d and %d", len(hpcDist), len(indepDist)))
	}
	var q Quadrants
	for i := range hpcDist {
		largeHPC := hpcDist[i] > hpcThresh
		largeIndep := indepDist[i] > indepThresh
		switch {
		case largeHPC && largeIndep:
			q.TruePositive++
		case !largeHPC && !largeIndep:
			q.TrueNegative++
		case !largeHPC && largeIndep:
			q.FalsePositive++
		default:
			q.FalseNegative++
		}
	}
	return q
}

// ClassifyAtFraction classifies with both thresholds at the given
// fraction of each space's maximum observed distance (the paper uses
// 0.20 for both).
func ClassifyAtFraction(hpcDist, indepDist []float64, frac float64) Quadrants {
	return Classify(hpcDist, indepDist, frac*stats.Max(hpcDist), frac*stats.Max(indepDist))
}

// Point is one ROC curve point: sensitivity versus one minus specificity
// at some uarch-independent-space threshold.
type Point struct {
	Threshold    float64
	Sensitivity  float64
	OneMinusSpec float64
}

// Curve sweeps the classification threshold in the
// microarchitecture-independent space while holding the HPC-space
// threshold fixed at hpcFrac of its maximum distance, exactly as in
// Figure 4. The sweep visits every distinct indep distance (plus the
// extremes), producing a monotone curve from (0,0) to (1,1).
func Curve(hpcDist, indepDist []float64, hpcFrac float64) []Point {
	if len(hpcDist) != len(indepDist) {
		panic("roc: mismatched distance vectors")
	}
	hpcThresh := hpcFrac * stats.Max(hpcDist)

	// Sweep each distinct distance once: between two consecutive
	// distinct distances the classification is constant, so a repeated
	// distance would re-emit the same point — every duplicate in
	// indepDist used to add a redundant Classify pass and a duplicate
	// curve point.
	thresholds := append([]float64{-1}, indepDist...)
	sort.Float64s(thresholds)
	uniq := thresholds[:1]
	for _, th := range thresholds[1:] {
		if th != uniq[len(uniq)-1] {
			uniq = append(uniq, th)
		}
	}
	thresholds = uniq
	points := make([]Point, 0, len(thresholds))
	for _, th := range thresholds {
		q := Classify(hpcDist, indepDist, hpcThresh, th)
		points = append(points, Point{
			Threshold:    th,
			Sensitivity:  q.Sensitivity(),
			OneMinusSpec: 1 - q.Specificity(),
		})
	}
	// Order by x (one minus specificity) for AUC integration; with a
	// rising threshold both axes fall monotonically from (1,1) to (0,0).
	sort.Slice(points, func(i, j int) bool {
		if points[i].OneMinusSpec != points[j].OneMinusSpec {
			return points[i].OneMinusSpec < points[j].OneMinusSpec
		}
		return points[i].Sensitivity < points[j].Sensitivity
	})
	return points
}

// AUC integrates the area under the ROC curve with the trapezoid rule.
// Points must be sorted by OneMinusSpec (Curve returns them sorted).
func AUC(points []Point) float64 {
	if len(points) == 0 {
		return 0
	}
	area := 0.0
	prevX, prevY := 0.0, 0.0
	for _, p := range points {
		area += (p.OneMinusSpec - prevX) * (p.Sensitivity + prevY) / 2
		prevX, prevY = p.OneMinusSpec, p.Sensitivity
	}
	// Close the curve at (1, 1).
	area += (1 - prevX) * (1 + prevY) / 2
	return area
}
