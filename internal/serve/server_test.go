package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"mica"
	"mica/internal/ivstore"
)

// testPhase is the tiny phase grid the serve tests run under: a few
// thousand instructions per benchmark so the suite stays seconds-scale.
var testPhase = mica.PhaseConfig{IntervalLen: 2000, MaxIntervals: 10, MaxK: 4, Seed: 1}

// testBenchmarks is a small cross-suite slice of the registry.
var testBenchmarks = []string{
	"MiBench/sha/large",
	"SPEC2000/gzip/program",
	"MiBench/FFT/fft-large",
}

// buildTestStore characterizes names into a fresh store directory and
// returns the open committed store.
func buildTestStore(t testing.TB, names []string, phase mica.PhaseConfig) *ivstore.Store {
	t.Helper()
	bs := make([]mica.Benchmark, len(names))
	for i, n := range names {
		b, err := mica.BenchmarkByName(n)
		if err != nil {
			t.Fatal(err)
		}
		bs[i] = b
	}
	st, _, err := mica.CharacterizeToStore(bs,
		mica.PhasePipelineConfig{Phase: phase},
		mica.StoreOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// startServer stands a Server up over st behind an httptest listener.
func startServer(t testing.TB, st *ivstore.Store, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// getJSON GETs url and decodes the JSON body into out, asserting the
// status code.
func getJSON(t testing.TB, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding body: %v", url, err)
		}
	}
}

// postJSON POSTs body to url and decodes the response.
func postJSON(t testing.TB, url string, body any, wantStatus int, out any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding body: %v", url, err)
		}
	}
	return resp
}

// pollJob polls a job until it leaves the queued/running states.
func pollJob(t testing.TB, base, id string) jobResponse {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var jr jobResponse
		getJSON(t, base+"/api/v1/jobs/"+id, http.StatusOK, &jr)
		if jr.Status == JobDone || jr.Status == JobFailed {
			return jr
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in status %s", id, jr.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeCharacterizeMatchesLibrary: a submitted job's result is
// bit-identical to the direct library path (mica.Profile +
// mica.AnalyzePhases) for the same configuration, and duplicate
// submissions collapse onto one execution.
func TestServeCharacterizeMatchesLibrary(t *testing.T) {
	st := buildTestStore(t, testBenchmarks, testPhase)
	s, ts := startServer(t, st, Config{Phase: testPhase})

	bench := testBenchmarks[0]
	var sub jobResponse
	postJSON(t, ts.URL+"/api/v1/characterize", characterizeRequest{Benchmark: bench}, http.StatusAccepted, &sub)
	if sub.Status == JobFailed {
		t.Fatalf("submission failed: %s", sub.Error)
	}
	done := pollJob(t, ts.URL, sub.ID)
	if done.Status != JobDone {
		t.Fatalf("job finished %s: %s", done.Status, done.Error)
	}
	res := done.Result
	if res == nil {
		t.Fatal("done job has no result")
	}

	// The library path, computed directly.
	b, err := mica.BenchmarkByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	phase := testPhase.WithDefaults()
	pr, err := mica.Profile(b, mica.Config{
		InstBudget: phase.IntervalLen * uint64(phase.MaxIntervals),
		Workers:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ph, err := mica.AnalyzePhases(b, phase)
	if err != nil {
		t.Fatal(err)
	}

	if res.Insts != pr.Insts {
		t.Fatalf("served insts %d, library %d", res.Insts, pr.Insts)
	}
	if !reflect.DeepEqual(res.Chars, pr.Chars[:]) {
		t.Fatal("served characteristic vector diverges from mica.Profile")
	}
	if !reflect.DeepEqual(res.HPC, pr.HPC[:]) {
		t.Fatal("served HPC vector diverges from mica.Profile")
	}
	if want := mica.RenderTableI([]mica.ProfileResult{pr}); res.TableI != want {
		t.Fatal("served Table I diverges from RenderTableI")
	}
	if want := mica.RenderTableII([]mica.ProfileResult{pr}); res.TableII != want {
		t.Fatal("served Table II diverges from RenderTableII")
	}
	if res.Phases.K != ph.K || res.Phases.Intervals != len(ph.Intervals) {
		t.Fatalf("served phases K=%d/%d intervals, library K=%d/%d",
			res.Phases.K, res.Phases.Intervals, ph.K, len(ph.Intervals))
	}
	wantTimeline := make([]byte, len(ph.Assign))
	for i, p := range ph.Assign {
		wantTimeline[i] = byte('A' + p%26)
	}
	if res.Phases.Timeline != string(wantTimeline) {
		t.Fatal("served phase timeline diverges from mica.AnalyzePhases")
	}
	if res.Kiviat == nil || len(res.Kiviat.Labels) != len(mica.KeyCharacteristics()) {
		t.Fatal("stored benchmark's job result is missing kiviat data")
	}

	// A duplicate submission dedups onto the completed job.
	var dup jobResponse
	postJSON(t, ts.URL+"/api/v1/characterize", characterizeRequest{Benchmark: bench}, http.StatusAccepted, &dup)
	if dup.ID != sub.ID || !dup.Deduped {
		t.Fatalf("duplicate submission got job %s (deduped=%v), want dedup onto %s", dup.ID, dup.Deduped, sub.ID)
	}
	js := s.jobs.stats()
	if js.Executed != 1 || js.Deduped != 1 {
		t.Fatalf("job stats %+v, want 1 executed / 1 deduped", js)
	}

	// Unknown benchmarks are a 404, not a job.
	postJSON(t, ts.URL+"/api/v1/characterize", characterizeRequest{Benchmark: "no/such/bench"}, http.StatusNotFound, nil)
}

// TestServeSimilarMatchesLibrary: the similarity endpoint's answers
// are bit-identical to a BuildSimilarity index assembled directly
// from the same store, and bad queries map to 4xx.
func TestServeSimilarMatchesLibrary(t *testing.T) {
	st := buildTestStore(t, testBenchmarks, testPhase)
	_, ts := startServer(t, st, Config{Phase: testPhase})

	direct, err := BuildSimilarity(st, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, bench := range testBenchmarks {
		var resp similarResponse
		getJSON(t, fmt.Sprintf("%s/api/v1/similar?bench=%s&k=2", ts.URL, bench), http.StatusOK, &resp)
		want, err := direct.Nearest(bench, 2, SpacePCA)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(resp.Neighbors, want) {
			t.Fatalf("%s: served neighbors %+v, library %+v", bench, resp.Neighbors, want)
		}
	}
	getJSON(t, ts.URL+"/api/v1/similar?bench=no/such/bench", http.StatusNotFound, nil)
	getJSON(t, ts.URL+"/api/v1/similar", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/api/v1/similar?bench="+testBenchmarks[0]+"&space=phase", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/api/v1/similar?bench="+testBenchmarks[0]+"&k=bogus", http.StatusBadRequest, nil)
}

// TestServeVectorsMatchesStore: the vectors endpoint returns exactly
// the stored interval vectors.
func TestServeVectorsMatchesStore(t *testing.T) {
	st := buildTestStore(t, testBenchmarks, testPhase)
	_, ts := startServer(t, st, Config{Phase: testPhase})

	bench := testBenchmarks[1]
	i, ok := st.ShardIndex(bench)
	if !ok {
		t.Fatalf("%s not in store", bench)
	}
	data, err := st.ReadShard(i)
	if err != nil {
		t.Fatal(err)
	}
	var resp vectorsResponse
	getJSON(t, fmt.Sprintf("%s/api/v1/vectors?bench=%s", ts.URL, bench), http.StatusOK, &resp)
	if len(resp.Vectors) != data.Vecs.Rows || resp.Dims != data.Vecs.Cols {
		t.Fatalf("served %dx%d, store %dx%d", len(resp.Vectors), resp.Dims, data.Vecs.Rows, data.Vecs.Cols)
	}
	for r, row := range resp.Vectors {
		if !reflect.DeepEqual(row, data.Vecs.Row(r)) {
			t.Fatalf("row %d diverges from store", r)
		}
	}
	var sub vectorsResponse
	getJSON(t, fmt.Sprintf("%s/api/v1/vectors?bench=%s&from=2&count=3", ts.URL, bench), http.StatusOK, &sub)
	if len(sub.Vectors) != 3 || !reflect.DeepEqual(sub.Vectors[0], data.Vecs.Row(2)) {
		t.Fatal("from/count window diverges from store rows")
	}
	getJSON(t, ts.URL+"/api/v1/vectors?bench=no/such/bench", http.StatusNotFound, nil)
}

// TestServeCorruptShard is the satellite-2 regression: corrupting one
// shard under a live server turns queries touching it into 500s on
// the affected requests while every other endpoint keeps serving —
// the Reader's former mid-stream panic no longer kills the process.
func TestServeCorruptShard(t *testing.T) {
	st := buildTestStore(t, testBenchmarks, testPhase)
	_, ts := startServer(t, st, Config{Phase: testPhase})

	victim := testBenchmarks[2]
	i, ok := st.ShardIndex(victim)
	if !ok {
		t.Fatal("victim not in store")
	}
	path := filepath.Join(st.Dir(), st.Shards()[i].File)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// Drop the decoded-shard cache so the corruption is actually hit.
	st.SetCacheBytes(0)

	var errResp map[string]string
	getJSON(t, fmt.Sprintf("%s/api/v1/vectors?bench=%s", ts.URL, victim), http.StatusInternalServerError, &errResp)
	if errResp["error"] == "" {
		t.Fatal("corrupt-shard 500 carries no error message")
	}
	// Other benchmarks and endpoints are unaffected; the process is up.
	getJSON(t, fmt.Sprintf("%s/api/v1/vectors?bench=%s", ts.URL, testBenchmarks[0]), http.StatusOK, nil)
	getJSON(t, fmt.Sprintf("%s/api/v1/similar?bench=%s&k=1", ts.URL, victim), http.StatusOK, nil)
	getJSON(t, ts.URL+"/healthz", http.StatusOK, nil)

	// The failed decode is accounted as an error, not a decode.
	cs := st.CacheStats()
	if cs.DecodeErrors == 0 {
		t.Fatalf("cache stats %+v: corrupt decode not counted", cs)
	}
	if cs.Decodes != cs.Misses-cs.DecodeErrors {
		t.Fatalf("cache stats %+v: Decodes != Misses - DecodeErrors", cs)
	}
}

// TestServeBackpressureAndShutdown: a full queue answers 429 with
// Retry-After, and a closing server answers 503.
func TestServeBackpressureAndShutdown(t *testing.T) {
	st := buildTestStore(t, testBenchmarks, testPhase)
	s, err := New(st, Config{Phase: testPhase})
	if err != nil {
		t.Fatal(err)
	}
	// Replace the job manager with one worker, one queue slot and a
	// gated job body, so saturation is deterministic. The swap happens
	// before the listener starts, so no handler observes it mid-write.
	release := make(chan struct{})
	s.jobs.close()
	s.jobs = newJobManager(1, 1, 0, newServerMetrics(), func(worker int, b mica.Benchmark) (*CharacterizationResult, error) {
		<-release
		return &CharacterizationResult{Benchmark: b.Name()}, nil
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	// First job occupies the worker, second fills the queue slot.
	var j1, j2 jobResponse
	postJSON(t, ts.URL+"/api/v1/characterize", characterizeRequest{Benchmark: testBenchmarks[0]}, http.StatusAccepted, &j1)
	waitForRunning(t, s)
	postJSON(t, ts.URL+"/api/v1/characterize", characterizeRequest{Benchmark: testBenchmarks[1]}, http.StatusAccepted, &j2)

	// Third distinct submission: queue full → 429 + Retry-After.
	resp := postJSON(t, ts.URL+"/api/v1/characterize", characterizeRequest{Benchmark: testBenchmarks[2]}, http.StatusTooManyRequests, nil)
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	// A duplicate of an accepted job still dedups — no new slot needed.
	var dup jobResponse
	postJSON(t, ts.URL+"/api/v1/characterize", characterizeRequest{Benchmark: testBenchmarks[0]}, http.StatusAccepted, &dup)
	if !dup.Deduped || dup.ID != j1.ID {
		t.Fatalf("duplicate during saturation: got %+v, want dedup onto %s", dup, j1.ID)
	}

	// Graceful shutdown: close drains the accepted jobs...
	close(release)
	s.Close()
	if got := pollJob(t, ts.URL, j1.ID); got.Status != JobDone {
		t.Fatalf("drained job %s finished %s", j1.ID, got.Status)
	}
	if got := pollJob(t, ts.URL, j2.ID); got.Status != JobDone {
		t.Fatalf("drained job %s finished %s", j2.ID, got.Status)
	}
	// ...and later submissions are refused with 503.
	postJSON(t, ts.URL+"/api/v1/characterize", characterizeRequest{Benchmark: testBenchmarks[2]}, http.StatusServiceUnavailable, nil)
}

// waitForRunning spins until the job manager reports a running job.
func waitForRunning(t testing.TB, s *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.jobs.stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no job started running")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeStats: the stats endpoint reports per-endpoint counters,
// job stats and the store's cache stats.
func TestServeStats(t *testing.T) {
	st := buildTestStore(t, testBenchmarks, testPhase)
	_, ts := startServer(t, st, Config{Phase: testPhase})

	getJSON(t, fmt.Sprintf("%s/api/v1/similar?bench=%s&k=1", ts.URL, testBenchmarks[0]), http.StatusOK, nil)
	getJSON(t, ts.URL+"/api/v1/similar", http.StatusBadRequest, nil)
	var sr statsResponse
	getJSON(t, ts.URL+"/api/v1/stats", http.StatusOK, &sr)
	sim := sr.Endpoints["similar"]
	if sim.Count != 2 || sim.Errors != 1 {
		t.Fatalf("similar endpoint stats %+v, want 2 requests / 1 error", sim)
	}
	if sim.QPS <= 0 || sim.P99Ms < sim.P50Ms {
		t.Fatalf("similar endpoint stats %+v: implausible latency summary", sim)
	}
	if sr.Store.Decodes == 0 {
		t.Fatalf("store cache stats %+v: similarity build decoded nothing?", sr.Store)
	}
	if sr.UptimeSeconds <= 0 {
		t.Fatal("non-positive uptime")
	}
}

// testBench builds a synthetic benchmark for jobManager unit tests;
// the injected run func never instantiates it.
func testBench(name string) mica.Benchmark {
	return mica.TraceBenchmark("test/"+name+"/in", "")
}

// TestJobManagerFailureRetry: a failed job releases its dedup key so
// the next submission retries, while queued/running/done jobs hold it.
func TestJobManagerFailureRetry(t *testing.T) {
	calls := 0
	fail := true
	m := newJobManager(1, 4, 0, newServerMetrics(), func(worker int, b mica.Benchmark) (*CharacterizationResult, error) {
		calls++
		if fail {
			return nil, errors.New("injected failure")
		}
		return &CharacterizationResult{Benchmark: b.Name()}, nil
	})
	defer m.close()

	j1, deduped, err := m.submit(testBench("b"), "key")
	if err != nil || deduped {
		t.Fatalf("first submit: %v deduped=%v", err, deduped)
	}
	waitStatus(t, m, j1.ID, JobFailed)

	fail = false
	j2, deduped, err := m.submit(testBench("b"), "key")
	if err != nil || deduped {
		t.Fatalf("retry submit: %v deduped=%v", err, deduped)
	}
	if j2.ID == j1.ID {
		t.Fatal("retry reused the failed job")
	}
	waitStatus(t, m, j2.ID, JobDone)
	if _, deduped, _ := m.submit(testBench("b"), "key"); !deduped {
		t.Fatal("submission after success did not dedup")
	}
	if calls != 2 {
		t.Fatalf("run called %d times, want 2", calls)
	}
}

// TestJobManagerPanicIsolation: a panicking characterization marks the
// job failed and the manager keeps serving.
func TestJobManagerPanicIsolation(t *testing.T) {
	m := newJobManager(1, 4, 0, newServerMetrics(), func(worker int, b mica.Benchmark) (*CharacterizationResult, error) {
		if b.Program == "bad" {
			panic("characterization exploded")
		}
		return &CharacterizationResult{Benchmark: b.Name()}, nil
	})
	defer m.close()
	bad, _, err := m.submit(testBench("bad"), "bad-key")
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, bad.ID, JobFailed)
	got, _ := m.get(bad.ID)
	if got.Error == "" {
		t.Fatal("panicked job carries no error")
	}
	good, _, err := m.submit(testBench("good"), "good-key")
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, good.ID, JobDone)
}

// TestJobManagerRetention: finished jobs beyond the retention bound
// are evicted, in-flight dedup mappings are never evicted.
func TestJobManagerRetention(t *testing.T) {
	m := newJobManager(1, 16, 2, newServerMetrics(), func(worker int, b mica.Benchmark) (*CharacterizationResult, error) {
		return &CharacterizationResult{Benchmark: b.Name()}, nil
	})
	var ids []string
	for i := 0; i < 5; i++ {
		j, _, err := m.submit(testBench(fmt.Sprintf("b%d", i)), fmt.Sprintf("key%d", i))
		if err != nil {
			t.Fatal(err)
		}
		waitStatus(t, m, j.ID, JobDone)
		ids = append(ids, j.ID)
	}
	m.close()
	if _, ok := m.get(ids[0]); ok {
		t.Fatal("oldest finished job survived retention")
	}
	if _, ok := m.get(ids[4]); !ok {
		t.Fatal("newest finished job was evicted")
	}
}

// waitStatus polls the manager until job id reaches want.
func waitStatus(t testing.TB, m *jobManager, id string, want JobStatus) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, ok := m.get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if j.Status == want {
			return
		}
		if j.Status == JobDone || j.Status == JobFailed {
			t.Fatalf("job %s finished %s, want %s", id, j.Status, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, j.Status, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// postRaw POSTs raw bytes to url and asserts the status code,
// returning the decoded JSON body (when out is non-nil) and response.
func postRaw(t testing.TB, url string, body []byte, wantStatus int, out any) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s (%d bytes): status %d, want %d", url, len(body), resp.StatusCode, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding body: %v", url, err)
		}
	}
	return resp
}

// TestServeTraceUpload: an uploaded recorded trace is validated,
// persisted and characterized through the normal job path, and the
// result is bit-identical to characterizing the live benchmark the
// trace was recorded from. Oversized and corrupt uploads are refused
// with 4xx and the daemon keeps serving.
func TestServeTraceUpload(t *testing.T) {
	st := buildTestStore(t, testBenchmarks, testPhase)

	// Record the trace the upload will carry: the same instruction
	// window the server's job body profiles.
	bench := testBenchmarks[0]
	b, err := mica.BenchmarkByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	phase := testPhase.WithDefaults()
	budget := phase.IntervalLen * uint64(phase.MaxIntervals)
	tracePath := filepath.Join(t.TempDir(), "rec.trc")
	if _, err := mica.RecordTrace(b, tracePath, budget); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}

	s, ts := startServer(t, st, Config{
		Phase:         testPhase,
		TraceDir:      t.TempDir(),
		MaxTraceBytes: int64(len(raw)),
	})

	// Upload → accepted job → done, with the event count surfaced.
	var sub jobResponse
	resp := postRaw(t, ts.URL+"/api/v1/traces?name=sha", raw, http.StatusAccepted, &sub)
	if got := resp.Header.Get("X-Trace-Events"); got != fmt.Sprint(budget) {
		t.Fatalf("X-Trace-Events = %q, want %d", got, budget)
	}
	if !strings.HasPrefix(sub.Benchmark, "trace/sha/") {
		t.Fatalf("upload benchmark name %q, want trace/sha/<hash>", sub.Benchmark)
	}
	done := pollJob(t, ts.URL, sub.ID)
	if done.Status != JobDone {
		t.Fatalf("upload job finished %s: %s", done.Status, done.Error)
	}
	res := done.Result
	if res == nil {
		t.Fatal("done upload job has no result")
	}

	// The replayed characterization is bit-identical to the live
	// benchmark's library path at the same budget.
	pr, err := mica.Profile(b, mica.Config{InstBudget: budget, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ph, err := mica.AnalyzePhases(b, phase)
	if err != nil {
		t.Fatal(err)
	}
	if res.Insts != pr.Insts {
		t.Fatalf("uploaded-trace insts %d, live %d", res.Insts, pr.Insts)
	}
	if !reflect.DeepEqual(res.Chars, pr.Chars[:]) {
		t.Fatal("uploaded-trace characteristic vector diverges from live VM")
	}
	if !reflect.DeepEqual(res.HPC, pr.HPC[:]) {
		t.Fatal("uploaded-trace HPC vector diverges from live VM")
	}
	if res.Phases.K != ph.K || res.Phases.Intervals != len(ph.Intervals) {
		t.Fatalf("uploaded-trace phases K=%d/%d, live K=%d/%d",
			res.Phases.K, res.Phases.Intervals, ph.K, len(ph.Intervals))
	}
	wantTimeline := make([]byte, len(ph.Assign))
	for i, p := range ph.Assign {
		wantTimeline[i] = byte('A' + p%26)
	}
	if res.Phases.Timeline != string(wantTimeline) {
		t.Fatal("uploaded-trace phase timeline diverges from live VM")
	}

	// Re-uploading identical bytes dedups onto the same job.
	var dup jobResponse
	postRaw(t, ts.URL+"/api/v1/traces?name=sha", raw, http.StatusAccepted, &dup)
	if dup.ID != sub.ID || !dup.Deduped {
		t.Fatalf("identical re-upload got job %s (deduped=%v), want dedup onto %s", dup.ID, dup.Deduped, sub.ID)
	}

	// Oversized upload → 413; corrupt payload → 400; both leave the
	// daemon serving.
	postRaw(t, ts.URL+"/api/v1/traces", append(append([]byte(nil), raw...), 0), http.StatusRequestEntityTooLarge, nil)
	bad := append([]byte(nil), raw...)
	bad[len(bad)/2] ^= 0xFF
	postRaw(t, ts.URL+"/api/v1/traces", bad, http.StatusBadRequest, nil)
	postRaw(t, ts.URL+"/api/v1/traces", []byte("not a trace"), http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/healthz", http.StatusOK, nil)
	if js := s.jobs.stats(); js.Executed != 1 {
		t.Fatalf("job stats %+v, want exactly 1 executed", js)
	}

	// A server without a trace directory refuses uploads outright.
	_, ts2 := startServer(t, st, Config{Phase: testPhase})
	postRaw(t, ts2.URL+"/api/v1/traces", raw, http.StatusNotFound, nil)
}
