package serve

import (
	"fmt"
	"sync"
	"time"

	"mica"
	"mica/internal/pool"
)

// JobStatus is a characterization job's lifecycle state.
type JobStatus string

const (
	// JobQueued: accepted, waiting for a pool worker.
	JobQueued JobStatus = "queued"
	// JobRunning: characterizing on a worker.
	JobRunning JobStatus = "running"
	// JobDone: finished; Result is set.
	JobDone JobStatus = "done"
	// JobFailed: finished with an error; Error is set. Failed jobs do
	// not satisfy later submissions of the same key (they retry).
	JobFailed JobStatus = "failed"
)

// Job is one characterization request's record. Fields are written
// under the manager's lock; handlers read snapshots via view().
type Job struct {
	ID        string
	Key       string // dedup key: benchmark name + config stamp
	Benchmark string
	// bench is the resolved benchmark the job runs — a registry entry
	// or a trace-backed one built from an upload. Carrying it in the
	// job (instead of re-resolving the name at run time) is what lets
	// uploaded traces flow through the same queue as registry names.
	bench    mica.Benchmark
	Status   JobStatus
	Created  time.Time
	Finished time.Time
	Result   *CharacterizationResult
	Error    string
	// Deduped counts later submissions collapsed onto this job.
	Deduped uint64
}

// JobStats is the job-model section of the /stats payload.
type JobStats struct {
	// Submitted counts accepted submissions (including deduplicated
	// ones); Rejected counts submissions refused for backpressure or
	// shutdown.
	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
	// Executed counts characterizations actually run; Deduped counts
	// submissions served by an existing in-flight or completed job —
	// the dedup hit counter (Submitted == Executed + Deduped).
	Executed uint64 `json:"executed"`
	Deduped  uint64 `json:"deduped"`
	Done     uint64 `json:"done"`
	Failed   uint64 `json:"failed"`
	// Queued and Running describe the present moment.
	Queued  int `json:"queued"`
	Running int `json:"running"`
}

// jobManager owns the request/job model: submissions dedup against
// in-flight and completed jobs by config-hash key, accepted jobs run
// on a bounded pool.Queue, and completed jobs are retained (bounded)
// for polling.
type jobManager struct {
	queue  *pool.Queue
	run    func(worker int, b mica.Benchmark) (*CharacterizationResult, error)
	retain int
	met    *serverMetrics

	mu        sync.Mutex
	seq       int
	byID      map[string]*Job
	byKey     map[string]*Job
	finished  []string // finished job ids, oldest first, for retention
	submitted uint64
	rejected  uint64
	executed  uint64
	deduped   uint64
	done      uint64
	failed    uint64
	running   int
}

func newJobManager(workers, queueCap, retain int, met *serverMetrics,
	run func(worker int, b mica.Benchmark) (*CharacterizationResult, error)) *jobManager {
	if queueCap <= 0 {
		queueCap = 64
	}
	if retain <= 0 {
		retain = 1024
	}
	m := &jobManager{
		run:    run,
		retain: retain,
		met:    met,
		byID:   make(map[string]*Job),
		byKey:  make(map[string]*Job),
	}
	// Task panics are recovered by the queue (keeping the process up);
	// execute additionally converts them into job failures, so the
	// hook only needs to exist as the documented backstop.
	m.queue = pool.NewQueue(workers, queueCap, nil)
	return m
}

// submit registers a job for (bench, key), deduplicating against any
// queued, running or done job with the same key. It returns the job
// serving the request and whether the submission was collapsed onto
// an existing one; pool.ErrQueueSaturated and pool.ErrQueueClosed
// pass through for the handler to map onto 429/503.
func (m *jobManager) submit(bench mica.Benchmark, key string) (*Job, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.byKey[key]; ok && j.Status != JobFailed {
		m.submitted++
		m.deduped++
		m.met.jobsSubmitted.Inc()
		m.met.jobsDeduped.Inc()
		j.Deduped++
		return j, true, nil
	}
	m.seq++
	j := &Job{
		ID:        fmt.Sprintf("job-%06d", m.seq),
		Key:       key,
		Benchmark: bench.Name(),
		bench:     bench,
		Status:    JobQueued,
		Created:   time.Now(),
	}
	if err := m.queue.TrySubmit(func(worker int) { m.execute(worker, j) }); err != nil {
		m.rejected++
		m.met.jobsRejected.Inc()
		return nil, false, err
	}
	m.submitted++
	m.met.jobsSubmitted.Inc()
	m.met.jobsQueued.Add(1)
	m.byID[j.ID] = j
	m.byKey[key] = j
	return j, false, nil
}

// execute runs one job on a queue worker, converting a panicking
// characterization into a job failure (the serving process stays up
// and the job is observable as failed, matching pool.RunCtx's
// isolation contract).
func (m *jobManager) execute(worker int, j *Job) {
	m.mu.Lock()
	j.Status = JobRunning
	m.running++
	m.executed++
	m.met.jobsQueued.Add(-1)
	m.met.jobsRunning.Add(1)
	m.met.jobsExecuted.Inc()
	m.mu.Unlock()

	var res *CharacterizationResult
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("characterization panicked: %v", r)
			}
		}()
		res, err = m.run(worker, j.bench)
	}()

	m.mu.Lock()
	defer m.mu.Unlock()
	m.running--
	m.met.jobsRunning.Add(-1)
	j.Finished = time.Now()
	if err != nil {
		j.Status = JobFailed
		j.Error = err.Error()
		m.failed++
		m.met.jobsFailed.Inc()
		// Drop the failed key mapping (if this job still owns it) so
		// the next submission retries instead of polling a corpse.
		if m.byKey[j.Key] == j {
			delete(m.byKey, j.Key)
		}
	} else {
		j.Status = JobDone
		j.Result = res
		m.done++
		m.met.jobsDone.Inc()
	}
	m.finished = append(m.finished, j.ID)
	m.evictLocked()
}

// evictLocked drops the oldest finished jobs beyond the retention
// bound, releasing their results and (for done jobs still owning
// their key) their dedup mapping.
func (m *jobManager) evictLocked() {
	for len(m.finished) > m.retain {
		id := m.finished[0]
		m.finished = m.finished[1:]
		j, ok := m.byID[id]
		if !ok {
			continue
		}
		delete(m.byID, id)
		if m.byKey[j.Key] == j {
			delete(m.byKey, j.Key)
		}
	}
}

// get returns a snapshot of job id.
func (m *jobManager) get(id string) (Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.byID[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// stats snapshots the job counters.
func (m *jobManager) stats() JobStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return JobStats{
		Submitted: m.submitted,
		Rejected:  m.rejected,
		Executed:  m.executed,
		Deduped:   m.deduped,
		Done:      m.done,
		Failed:    m.failed,
		Queued:    m.queue.Len(),
		Running:   m.running,
	}
}

// close stops accepting jobs and drains the accepted backlog.
func (m *jobManager) close() { m.queue.Close() }
