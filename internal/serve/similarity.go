package serve

import (
	"fmt"
	"math"
	"sort"

	"mica/internal/ivstore"
	"mica/internal/pca"
	"mica/internal/stats"
)

// Similarity answers the paper's headline query — "which benchmarks
// are nearest to X in the normalized PCA space" — from a warm store's
// cached vectors, without touching a VM. Each benchmark's signature is
// the instruction-weighted mean of its interval vectors (what a full
// profile of the characterized trace measures, assembled from the
// shards already on disk); signatures are z-score normalized across
// benchmarks and projected onto the principal components, exactly the
// paper's Section V-C pipeline. An optional phase space answers the
// same query over the joint vocabulary's occupancy rows instead.
type Similarity struct {
	names  []string
	index  map[string]int
	sig    *stats.Matrix // raw signatures, benchmarks x dims
	norm   *stats.Matrix // z-scored signatures
	coords *stats.Matrix // PCA coordinates, benchmarks x pcaK

	pcaK      int
	explained float64

	occ *stats.Matrix // joint-vocabulary occupancy rows; nil without a joint result
}

// SpacePCA and SpacePhase name the two query spaces.
const (
	SpacePCA   = "pca"
	SpacePhase = "phase"
)

// Neighbor is one similarity answer.
type Neighbor struct {
	Name     string  `json:"name"`
	Distance float64 `json:"distance"`
}

// BuildSimilarity assembles the index from a committed store's cached
// shards. pcaFrac selects how much variance the retained components
// must explain (<= 0 means 0.9). occ, when non-nil, is the joint
// vocabulary's benchmarks-by-phases occupancy matrix in the store's
// shard order, enabling the phase space.
func BuildSimilarity(st *ivstore.Store, pcaFrac float64, occ *stats.Matrix) (*Similarity, error) {
	shards := st.Shards()
	if len(shards) < 2 {
		return nil, fmt.Errorf("serve: similarity needs at least 2 benchmarks in the store, have %d", len(shards))
	}
	if pcaFrac <= 0 {
		pcaFrac = 0.9
	}
	if occ != nil && occ.Rows != len(shards) {
		return nil, fmt.Errorf("serve: occupancy has %d rows, store has %d shards", occ.Rows, len(shards))
	}
	s := &Similarity{
		names: st.Benchmarks(),
		index: make(map[string]int, len(shards)),
		sig:   stats.NewMatrix(len(shards), st.Dims()),
		occ:   occ,
	}
	for i, name := range s.names {
		s.index[name] = i
	}
	for i := range shards {
		data, err := st.CachedShard(i)
		if err != nil {
			return nil, fmt.Errorf("serve: building similarity index: %w", err)
		}
		sig := s.sig.Row(i)
		var total float64
		for r := 0; r < data.Vecs.Rows; r++ {
			w := float64(data.Insts[r])
			total += w
			row := data.Vecs.Row(r)
			for j, v := range row {
				sig[j] += w * v
			}
		}
		if total > 0 {
			for j := range sig {
				sig[j] /= total
			}
		}
	}
	s.norm = stats.ZScoreNormalize(s.sig)
	fit := pca.Fit(s.norm)
	s.pcaK = fit.ComponentsNeeded(pcaFrac)
	s.explained = fit.ExplainedVariance(s.pcaK)
	s.coords = fit.Transform(s.norm, s.pcaK)
	return s, nil
}

// Len returns the number of indexed benchmarks.
func (s *Similarity) Len() int { return len(s.names) }

// Names returns the indexed benchmark names in store order.
func (s *Similarity) Names() []string { return s.names }

// Components returns the retained PCA dimensionality and the variance
// fraction it explains.
func (s *Similarity) Components() (k int, explained float64) {
	return s.pcaK, s.explained
}

// HasPhaseSpace reports whether the index was built with a joint
// vocabulary (enabling SpacePhase queries).
func (s *Similarity) HasPhaseSpace() bool { return s.occ != nil }

// NormRow returns benchmark name's z-scored signature, or false if it
// is not indexed. The returned slice is the index's own storage.
func (s *Similarity) NormRow(name string) ([]float64, bool) {
	i, ok := s.index[name]
	if !ok {
		return nil, false
	}
	return s.norm.Row(i), true
}

// Nearest returns the k benchmarks closest to name (excluding itself)
// in the requested space, nearest first; ties break by store order so
// answers are deterministic.
func (s *Similarity) Nearest(name string, k int, space string) ([]Neighbor, error) {
	q, ok := s.index[name]
	if !ok {
		return nil, fmt.Errorf("serve: benchmark %q is not in the store", name)
	}
	var m *stats.Matrix
	switch space {
	case "", SpacePCA:
		m = s.coords
	case SpacePhase:
		if s.occ == nil {
			return nil, fmt.Errorf("serve: phase space not available (no joint vocabulary loaded)")
		}
		m = s.occ
	default:
		return nil, fmt.Errorf("serve: unknown similarity space %q (want %q or %q)", space, SpacePCA, SpacePhase)
	}
	if k <= 0 {
		k = 5
	}
	if k > len(s.names)-1 {
		k = len(s.names) - 1
	}
	qrow := m.Row(q)
	all := make([]Neighbor, 0, len(s.names)-1)
	for i, name := range s.names {
		if i == q {
			continue
		}
		var d2 float64
		row := m.Row(i)
		for j, v := range row {
			diff := v - qrow[j]
			d2 += diff * diff
		}
		all = append(all, Neighbor{Name: name, Distance: math.Sqrt(d2)})
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].Distance < all[b].Distance })
	return all[:k], nil
}
