package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"sync"
	"testing"

	"mica"
)

// loadPhase keeps the registry-scale load test seconds-scale: 8
// intervals of 500 instructions per benchmark.
var loadPhase = mica.PhaseConfig{IntervalLen: 500, MaxIntervals: 8, MaxK: 3, Seed: 7}

// TestServeLoad is the end-to-end load test from the PR's acceptance
// criteria: against a registry-scale store (every registry benchmark),
// it drives 500+ concurrent similarity queries interleaved with
// sustained characterization traffic full of duplicate submissions,
// asserting zero races (run under -race in CI), responses
// bit-identical to the library path, and exactly one characterization
// executed per distinct dedup key.
func TestServeLoad(t *testing.T) {
	bs := mica.Benchmarks()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.Name()
	}
	st, _, err := mica.CharacterizeToStore(bs,
		mica.PhasePipelineConfig{Phase: loadPhase},
		mica.StoreOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	s, ts := startServer(t, st, Config{Phase: loadPhase})

	// The library oracle, computed from the same store.
	direct, err := BuildSimilarity(st, 0, nil)
	if err != nil {
		t.Fatal(err)
	}

	const (
		simClients   = 32
		simPerClient = 16 // 512 concurrent similarity queries in total
		jobBenches   = 6
		dupsPerBench = 5 // 30 submissions collapsing onto 6 jobs
	)

	var wg sync.WaitGroup
	errs := make(chan error, simClients+jobBenches*dupsPerBench)

	// Concurrent similarity traffic, every answer checked against the
	// library path bit-for-bit.
	for c := 0; c < simClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := ts.Client()
			for q := 0; q < simPerClient; q++ {
				bench := names[(c*simPerClient+q*31)%len(names)]
				k := 1 + (c+q)%8
				resp, err := client.Get(fmt.Sprintf("%s/api/v1/similar?bench=%s&k=%d", ts.URL, bench, k))
				if err != nil {
					errs <- err
					return
				}
				var got similarResponse
				err = decodeBody(resp, http.StatusOK, &got)
				if err != nil {
					errs <- fmt.Errorf("similar %s k=%d: %w", bench, k, err)
					return
				}
				want, err := direct.Nearest(bench, k, SpacePCA)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got.Neighbors, want) {
					errs <- fmt.Errorf("similar %s k=%d: served answer diverges from library path", bench, k)
					return
				}
			}
		}(c)
	}

	// Sustained characterization traffic: dupsPerBench concurrent
	// submissions per benchmark, all racing on the same dedup key.
	jobIDs := make([][]string, jobBenches)
	for b := 0; b < jobBenches; b++ {
		jobIDs[b] = make([]string, dupsPerBench)
		for d := 0; d < dupsPerBench; d++ {
			wg.Add(1)
			go func(b, d int) {
				defer wg.Done()
				body, _ := json.Marshal(characterizeRequest{Benchmark: names[b*7]})
				resp, err := ts.Client().Post(ts.URL+"/api/v1/characterize", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var jr jobResponse
				if err := decodeBody(resp, http.StatusAccepted, &jr); err != nil {
					errs <- fmt.Errorf("characterize %s: %w", names[b*7], err)
					return
				}
				jobIDs[b][d] = jr.ID
			}(b, d)
		}
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every duplicate submission landed on the same job, and exactly
	// one characterization ran per distinct key — the profiler-call
	// counter of the serving layer.
	for b := 0; b < jobBenches; b++ {
		for d := 1; d < dupsPerBench; d++ {
			if jobIDs[b][d] != jobIDs[b][0] {
				t.Fatalf("bench %d: submissions split across jobs %s and %s", b, jobIDs[b][0], jobIDs[b][d])
			}
		}
		if done := pollJob(t, ts.URL, jobIDs[b][0]); done.Status != JobDone {
			t.Fatalf("job %s finished %s: %s", jobIDs[b][0], done.Status, done.Error)
		}
	}
	js := s.jobs.stats()
	if js.Executed != jobBenches {
		t.Fatalf("job stats %+v: %d characterizations executed, want exactly %d (dedup broken)", js, js.Executed, jobBenches)
	}
	if js.Deduped != jobBenches*(dupsPerBench-1) {
		t.Fatalf("job stats %+v: %d deduplicated, want %d", js, js.Deduped, jobBenches*(dupsPerBench-1))
	}

	// One job result checked bit-identical against the library path.
	done := pollJob(t, ts.URL, jobIDs[0][0])
	b0, err := mica.BenchmarkByName(done.Benchmark)
	if err != nil {
		t.Fatal(err)
	}
	phase := loadPhase.WithDefaults()
	pr, err := mica.Profile(b0, mica.Config{
		InstBudget: phase.IntervalLen * uint64(phase.MaxIntervals),
		Workers:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(done.Result.Chars, pr.Chars[:]) {
		t.Fatal("served job vector diverges from mica.Profile")
	}

	// The stats endpoint saw the traffic and the store stayed healthy.
	var sr statsResponse
	getJSON(t, ts.URL+"/api/v1/stats", http.StatusOK, &sr)
	sim := sr.Endpoints["similar"]
	if sim.Count < simClients*simPerClient {
		t.Fatalf("similar endpoint served %d requests, want >= %d", sim.Count, simClients*simPerClient)
	}
	if sim.Errors != 0 || sim.QPS <= 0 {
		t.Fatalf("similar endpoint stats %+v: errors or zero QPS under load", sim)
	}
	if sr.Store.DecodeErrors != 0 {
		t.Fatalf("store cache stats %+v: decode errors on a healthy store", sr.Store)
	}
	if sr.Store.Decodes != sr.Store.Misses-sr.Store.DecodeErrors {
		t.Fatalf("store cache stats %+v: accounting invariant broken", sr.Store)
	}
	dedupRate := float64(js.Deduped) / float64(js.Submitted)
	t.Logf("load: %d similarity queries at %.0f QPS (p50 %.2fms, p99 %.2fms), %d/%d submissions deduplicated (%.0f%%)",
		sim.Count, sim.QPS, sim.P50Ms, sim.P99Ms, js.Deduped, js.Submitted, 100*dedupRate)
}

// decodeBody asserts a response status and decodes its JSON body.
func decodeBody(resp *http.Response, wantStatus int, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		return fmt.Errorf("status %d, want %d", resp.StatusCode, wantStatus)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
