// Package serve implements characterization-as-a-service: an
// HTTP/JSON layer over the mica library and a warm interval-vector
// store. It serves three query families:
//
//   - Characterization jobs (submit → job id → poll): a registry
//     benchmark name comes in; Table I/II rows, the phase timeline and
//     kiviat data come out. Jobs run on a bounded pool.Queue and are
//     deduplicated — in-flight and completed — by the benchmark name
//     composed with the library's phase-configuration stamp
//     (mica.PhaseConfigKey), so identical concurrent submissions cost
//     one characterization. Recorded trace files can be uploaded
//     (POST /api/v1/traces, bounded and validated before a byte is
//     persisted) and are characterized by the identical job path —
//     an upload is just a benchmark whose instruction stream replays
//     from disk instead of the embedded VM.
//   - Similarity queries, the paper's headline use case: k nearest
//     benchmarks to X in the normalized PCA space (or the joint
//     vocabulary's phase-occupancy space), answered inline from the
//     warm store's cached vectors.
//   - Store reads: a benchmark's interval vectors streamed through the
//     store's error-returning Reader path, so one corrupt shard
//     degrades to a 500 on the affected query, never a crash.
//
// Backpressure is explicit: a full job queue answers 429 with
// Retry-After, a closed (shutting down) server answers 503. Every
// endpoint feeds per-endpoint latency/QPS counters surfaced on
// /api/v1/stats together with the store's ivstore.CacheStats.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"mica"
	"mica/internal/ivstore"
	"mica/internal/obs"
	"mica/internal/pool"
	"mica/internal/stats"
)

// Config parameterizes a Server.
type Config struct {
	// Phase is the server-wide phase-analysis configuration
	// characterization jobs run under; its stamp
	// (mica.PhaseConfigKey) is the dedup key component. The zero
	// value means the library defaults.
	Phase mica.PhaseConfig
	// SkipHPC drops the machine-model half of job profiles.
	SkipHPC bool
	// Workers bounds concurrent characterizations (<= 0 means
	// GOMAXPROCS).
	Workers int
	// QueueCap bounds pending jobs; a full queue answers 429
	// (default 64).
	QueueCap int
	// Retain bounds finished jobs kept for polling (default 1024).
	Retain int
	// PCAVariance is the variance fraction the similarity index's
	// retained components must explain (default 0.9).
	PCAVariance float64
	// Joint, when non-nil, is the store's joint vocabulary; it
	// enables space=phase similarity queries over its occupancy rows.
	Joint *mica.PhaseJointResult
	// TraceDir, when non-empty, enables POST /api/v1/traces: validated
	// uploads are persisted there (durably, content-addressed) and
	// characterized through the normal job path. Empty disables the
	// endpoint (404).
	TraceDir string
	// MaxTraceBytes bounds an uploaded trace's size; larger requests
	// answer 413 (default 64 MiB).
	MaxTraceBytes int64
}

// Server is the HTTP serving layer. Create with New, expose with
// Handler, stop with Close.
type Server struct {
	st    *ivstore.Store
	sim   *Similarity
	jobs  *jobManager
	cfg   Config
	start time.Time

	mux *http.ServeMux
	met *serverMetrics

	closing chan struct{}
	once    sync.Once
}

// CharacterizationResult is a finished job's payload. The numeric
// fields are exactly what the library path (mica.Profile +
// mica.AnalyzePhases) produces for the same configuration —
// regression-tested bit-identical.
type CharacterizationResult struct {
	Benchmark string `json:"benchmark"`
	Suite     string `json:"suite"`
	// Insts is the profiled dynamic instruction count.
	Insts uint64 `json:"insts"`
	// Chars is the 47-dimensional microarchitecture-independent
	// vector (Table II order); HPC the machine-model counters (absent
	// under SkipHPC).
	Chars []float64 `json:"chars"`
	HPC   []float64 `json:"hpc,omitempty"`
	// TableI and TableII are the rendered per-benchmark rows.
	TableI  string `json:"table_i"`
	TableII string `json:"table_ii"`
	// Phases summarizes the benchmark's phase structure.
	Phases PhaseSummary `json:"phases"`
	// Kiviat is the paper's kiviat-diagram data for the benchmark,
	// min-max normalized over the store's benchmark population
	// (absent when the benchmark is not in the store).
	Kiviat *KiviatData `json:"kiviat,omitempty"`
}

// PhaseSummary is the phase-analysis section of a job result.
type PhaseSummary struct {
	// K is the BIC-selected phase count over Intervals intervals.
	K         int `json:"k"`
	Intervals int `json:"intervals"`
	// Timeline is one rune per interval, 'A' + phase mod 26 — the
	// same cycle the CLI renders.
	Timeline string `json:"timeline"`
	// Representatives are the weighted simulation points, descending
	// by weight.
	Representatives []RepresentativePoint `json:"representatives"`
}

// RepresentativePoint is one phase's chosen simulation point.
type RepresentativePoint struct {
	Phase    int     `json:"phase"`
	Interval int     `json:"interval"`
	Weight   float64 `json:"weight"`
}

// KiviatData is the kiviat diagram's axes: per-characteristic labels
// and [0,1] values.
type KiviatData struct {
	Labels []string  `json:"labels"`
	Values []float64 `json:"values"`
}

// New builds a Server over an open committed store. The similarity
// index is assembled eagerly (decoding every shard once through the
// store's cache), so a freshly started server answers its first
// similarity query warm.
func New(st *ivstore.Store, cfg Config) (*Server, error) {
	cfg.Phase = cfg.Phase.WithDefaults()
	if cfg.PCAVariance <= 0 {
		cfg.PCAVariance = 0.9
	}
	if cfg.MaxTraceBytes <= 0 {
		cfg.MaxTraceBytes = 64 << 20
	}
	if cfg.TraceDir != "" {
		if err := os.MkdirAll(cfg.TraceDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: trace dir: %w", err)
		}
	}
	var occ *stats.Matrix
	if cfg.Joint != nil {
		occ = cfg.Joint.Occupancy
	}
	sim, err := BuildSimilarity(st, cfg.PCAVariance, occ)
	if err != nil {
		return nil, err
	}
	s := &Server{
		st:      st,
		sim:     sim,
		cfg:     cfg,
		start:   time.Now(),
		met:     newServerMetrics(),
		closing: make(chan struct{}),
	}
	s.jobs = newJobManager(cfg.Workers, cfg.QueueCap, cfg.Retain, s.met, s.characterize)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	s.mux.Handle("GET /api/v1/benchmarks", s.wrap("benchmarks", s.handleBenchmarks))
	s.mux.Handle("POST /api/v1/characterize", s.wrap("characterize", s.handleCharacterize))
	s.mux.Handle("POST /api/v1/traces", s.wrap("traces", s.handleTraceUpload))
	s.mux.Handle("GET /api/v1/jobs/{id}", s.wrap("jobs", s.handleJob))
	s.mux.Handle("GET /api/v1/similar", s.wrap("similar", s.handleSimilar))
	s.mux.Handle("GET /api/v1/vectors", s.wrap("vectors", s.handleVectors))
	s.mux.Handle("GET /api/v1/stats", s.wrap("stats", s.handleStats))
	s.mux.Handle("GET /api/v1/version", s.wrap("version", s.handleVersion))
	s.mux.Handle("GET /metrics", s.wrap("metrics", s.handleMetrics))
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ConfigKey returns the server-wide phase-configuration stamp new
// submissions are deduplicated under.
func (s *Server) ConfigKey() string { return mica.PhaseConfigKey(s.cfg.Phase) }

// Close stops accepting jobs, drains the accepted backlog and
// returns. The caller owns the store and shuts the http.Server down
// itself (mica-serve wires both to signal.NotifyContext).
func (s *Server) Close() {
	s.once.Do(func() { close(s.closing) })
	s.jobs.close()
}

// characterize is the job body: the plain library path, so service
// responses are bit-identical to what a CLI/library user computes for
// the same configuration — whether b is a registry entry or a
// trace-backed benchmark built from an upload (the handlers resolve
// the name; the job carries the benchmark). The queue's worker id is
// accepted for future per-worker state pooling (profiler reuse),
// matching the batch pipelines' worker contract.
func (s *Server) characterize(worker int, b mica.Benchmark) (*CharacterizationResult, error) {
	name := b.Name()
	profCfg := mica.Config{
		InstBudget: s.cfg.Phase.IntervalLen * uint64(s.cfg.Phase.MaxIntervals),
		SkipHPC:    s.cfg.SkipHPC,
		Workers:    1,
	}
	pr, err := mica.Profile(b, profCfg)
	if err != nil {
		return nil, fmt.Errorf("profiling %s: %w", name, err)
	}
	ph, err := mica.AnalyzePhases(b, s.cfg.Phase)
	if err != nil {
		return nil, fmt.Errorf("phase analysis of %s: %w", name, err)
	}
	res := &CharacterizationResult{
		Benchmark: name,
		Suite:     b.Suite,
		Insts:     pr.Insts,
		Chars:     append([]float64(nil), pr.Chars[:]...),
		TableI:    mica.RenderTableI([]mica.ProfileResult{pr}),
		TableII:   mica.RenderTableII([]mica.ProfileResult{pr}),
		Phases:    summarizePhases(ph),
	}
	if !s.cfg.SkipHPC {
		res.HPC = append([]float64(nil), pr.HPC[:]...)
	}
	res.Kiviat = s.kiviat(name)
	return res, nil
}

// summarizePhases flattens a phase result into the JSON summary.
func summarizePhases(ph *mica.PhaseResult) PhaseSummary {
	timeline := make([]byte, len(ph.Assign))
	for i, p := range ph.Assign {
		timeline[i] = byte('A' + p%26)
	}
	reps := make([]RepresentativePoint, len(ph.Representatives))
	for i, rep := range ph.Representatives {
		reps[i] = RepresentativePoint{Phase: rep.Phase, Interval: rep.Interval, Weight: rep.Weight}
	}
	return PhaseSummary{
		K:               ph.K,
		Intervals:       len(ph.Intervals),
		Timeline:        string(timeline),
		Representatives: reps,
	}
}

// kiviat builds the paper's kiviat axes for a stored benchmark: the
// key characteristics of its store signature, min-max normalized
// across the store's benchmark population (nil when the benchmark is
// not in the store).
func (s *Server) kiviat(name string) *KiviatData {
	if _, ok := s.sim.NormRow(name); !ok {
		return nil
	}
	cols := mica.KeyCharacteristics()
	sub := s.sim.norm.SelectColumns(cols)
	mm := stats.MinMaxNormalizeColumns(sub)
	labels := make([]string, len(cols))
	for i, c := range cols {
		labels[i] = mica.CharName(c)
	}
	row := mm.Row(s.sim.index[name])
	return &KiviatData{Labels: labels, Values: append([]float64(nil), row...)}
}

// --- HTTP plumbing ---

// statusWriter records the response status for the metrics layer.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// wrap gives a handler the cross-cutting serving behavior: panic
// recovery (a handler bug or a Reader panic fails the one request
// with a 500, never the process) and per-endpoint latency/QPS/error
// accounting.
func (s *Server) wrap(name string, h func(http.ResponseWriter, *http.Request)) http.Handler {
	s.met.register(name)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		begin := time.Now()
		defer func() {
			if rec := recover(); rec != nil {
				// Headers may already be out; best-effort error body.
				writeError(sw, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec))
			}
			s.met.observe(name, time.Since(begin), sw.status >= 400)
		}()
		h(sw, r)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// BenchmarkInfo is one row of the benchmark listing.
type BenchmarkInfo struct {
	Name string `json:"name"`
	// InStore reports whether the warm store holds the benchmark's
	// interval vectors (similarity and kiviat need it).
	InStore bool `json:"in_store"`
	// Rows is the stored interval count (0 when not in store).
	Rows int `json:"rows"`
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	stored := make(map[string]int, len(s.st.Shards()))
	for _, sh := range s.st.Shards() {
		stored[sh.Name] = sh.Rows
	}
	var out []BenchmarkInfo
	for _, b := range mica.Benchmarks() {
		rows, ok := stored[b.Name()]
		out = append(out, BenchmarkInfo{Name: b.Name(), InStore: ok, Rows: rows})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"benchmarks": out,
		"config_key": s.ConfigKey(),
	})
}

// characterizeRequest is the submit body.
type characterizeRequest struct {
	Benchmark string `json:"benchmark"`
}

// jobResponse is the submit/poll payload.
type jobResponse struct {
	ID        string                  `json:"id"`
	Benchmark string                  `json:"benchmark"`
	ConfigKey string                  `json:"config_key"`
	Status    JobStatus               `json:"status"`
	Deduped   bool                    `json:"deduped,omitempty"`
	Error     string                  `json:"error,omitempty"`
	Result    *CharacterizationResult `json:"result,omitempty"`
}

func (s *Server) handleCharacterize(w http.ResponseWriter, r *http.Request) {
	var req characterizeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	if req.Benchmark == "" {
		writeError(w, http.StatusBadRequest, "missing benchmark name")
		return
	}
	b, err := mica.BenchmarkByName(req.Benchmark)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	s.submitJob(w, b)
}

// submitJob queues benchmark b (registry or trace-backed) under the
// server-wide config stamp and writes the accepted-job response,
// mapping queue backpressure onto 429/503.
func (s *Server) submitJob(w http.ResponseWriter, b mica.Benchmark) {
	key := b.Name() + "|" + s.ConfigKey()
	j, deduped, err := s.jobs.submit(b, key)
	switch {
	case errors.Is(err, pool.ErrQueueSaturated):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "job queue is full, retry later")
		return
	case errors.Is(err, pool.ErrQueueClosed):
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.writeJob(w, http.StatusAccepted, j.ID, deduped)
}

// handleTraceUpload accepts a recorded trace file (the request body is
// the raw trace bytes), validates it end to end — header, CRCs, every
// event — before a byte is persisted, stores it durably under a
// content-addressed name in the trace directory, and submits it as a
// normal characterization job. Re-uploading identical bytes dedups
// onto the same job, exactly like resubmitting a registry name.
func (s *Server) handleTraceUpload(w http.ResponseWriter, r *http.Request) {
	if s.cfg.TraceDir == "" {
		writeError(w, http.StatusNotFound, "trace uploads are not enabled (no trace directory configured)")
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxTraceBytes)
	data, err := io.ReadAll(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("trace exceeds upload limit of %d bytes", s.cfg.MaxTraceBytes))
			return
		}
		writeError(w, http.StatusBadRequest, "reading upload: "+err.Error())
		return
	}
	events, err := mica.ValidateTrace(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid trace: "+err.Error())
		return
	}
	sum := sha256.Sum256(data)
	hash := hex.EncodeToString(sum[:4])
	label := sanitizeTraceLabel(r.URL.Query().Get("name"))
	name := "trace/" + label + "/" + hash
	path := filepath.Join(s.cfg.TraceDir, hash+".trc")
	if err := mica.SaveTrace(path, data); err != nil {
		writeError(w, http.StatusInternalServerError, "persisting trace: "+err.Error())
		return
	}
	w.Header().Set("X-Trace-Events", strconv.FormatUint(events, 10))
	s.submitJob(w, mica.TraceBenchmark(name, path))
}

// sanitizeTraceLabel maps a caller-supplied upload label onto the
// program segment of the "trace/<label>/<hash>" benchmark name:
// letters, digits, dot, dash and underscore pass through; anything
// else (including the name separator '/') becomes '-'. An empty label
// is "upload".
func sanitizeTraceLabel(label string) string {
	if label == "" {
		return "upload"
	}
	if len(label) > 64 {
		label = label[:64]
	}
	out := []byte(label)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '-', c == '_':
		default:
			out[i] = '-'
		}
	}
	return string(out)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.jobs.get(id); !ok {
		writeError(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	s.writeJob(w, http.StatusOK, id, false)
}

func (s *Server) writeJob(w http.ResponseWriter, status int, id string, deduped bool) {
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	writeJSON(w, status, jobResponse{
		ID:        j.ID,
		Benchmark: j.Benchmark,
		ConfigKey: s.ConfigKey(),
		Status:    j.Status,
		Deduped:   deduped,
		Error:     j.Error,
		Result:    j.Result,
	})
}

// similarResponse is the similarity payload.
type similarResponse struct {
	Benchmark string     `json:"benchmark"`
	Space     string     `json:"space"`
	K         int        `json:"k"`
	PCAK      int        `json:"pca_components,omitempty"`
	Explained float64    `json:"explained_variance,omitempty"`
	Neighbors []Neighbor `json:"neighbors"`
}

func (s *Server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("bench")
	if name == "" {
		writeError(w, http.StatusBadRequest, "missing bench parameter")
		return
	}
	space := r.URL.Query().Get("space")
	if space == "" {
		space = SpacePCA
	}
	k := 5
	if ks := r.URL.Query().Get("k"); ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v <= 0 {
			writeError(w, http.StatusBadRequest, "invalid k parameter")
			return
		}
		k = v
	}
	neighbors, err := s.sim.Nearest(name, k, space)
	if err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "not in the store") {
			status = http.StatusNotFound
		}
		writeError(w, status, err.Error())
		return
	}
	resp := similarResponse{Benchmark: name, Space: space, K: len(neighbors), Neighbors: neighbors}
	if space == SpacePCA {
		resp.PCAK, resp.Explained = s.sim.Components()
	}
	writeJSON(w, http.StatusOK, resp)
}

// vectorsResponse carries a benchmark's stored interval vectors.
type vectorsResponse struct {
	Benchmark string      `json:"benchmark"`
	From      int         `json:"from"`
	Dims      int         `json:"dims"`
	Vectors   [][]float64 `json:"vectors"`
}

// handleVectors streams a benchmark's interval vectors out of the
// store through the Reader's error-returning path: a shard that fails
// to decode mid-query is a 500 on this request, and the server keeps
// serving everything else.
func (s *Server) handleVectors(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("bench")
	if name == "" {
		writeError(w, http.StatusBadRequest, "missing bench parameter")
		return
	}
	shard, ok := s.st.ShardIndex(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("benchmark %q is not in the store", name))
		return
	}
	start, end := s.st.RowRange(shard)
	from, count := 0, end-start
	q := r.URL.Query()
	if v := q.Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "invalid from parameter")
			return
		}
		from = n
	}
	if v := q.Get("count"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "invalid count parameter")
			return
		}
		count = n
	}
	if from > end-start {
		from = end - start
	}
	if from+count > end-start {
		count = end - start - from
	}
	reader := s.st.Rows()
	out := make([][]float64, 0, count)
	for i := 0; i < count; i++ {
		row, err := reader.RowErr(start + from + i)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "store read failed: "+err.Error())
			return
		}
		out = append(out, append([]float64(nil), row...))
	}
	writeJSON(w, http.StatusOK, vectorsResponse{
		Benchmark: name,
		From:      from,
		Dims:      s.st.Dims(),
		Vectors:   out,
	})
}

// statsResponse is the /stats payload.
type statsResponse struct {
	UptimeSeconds float64                  `json:"uptime_seconds"`
	Endpoints     map[string]EndpointStats `json:"endpoints"`
	Jobs          JobStats                 `json:"jobs"`
	Store         ivstore.CacheStats       `json:"store_cache"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	uptime := time.Since(s.start)
	eps := make(map[string]EndpointStats, len(s.met.endpoints))
	for _, name := range s.met.endpoints {
		eps[name] = s.met.snapshot(name, uptime)
	}
	writeJSON(w, http.StatusOK, statsResponse{
		UptimeSeconds: uptime.Seconds(),
		Endpoints:     eps,
		Jobs:          s.jobs.stats(),
		Store:         s.st.CacheStats(),
	})
}

// handleVersion reports the running binary's build identity.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, obs.Build())
}

// handleMetrics serves the Prometheus text exposition: the
// process-global registry first (pool, ivstore, trace, pipeline stage
// spans — everything the daemon's jobs exercise), then this server's
// own registry (endpoints, job queue). The two registries have
// disjoint name sets, so the concatenation is a valid exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.Default().WritePrometheus(w); err != nil {
		return
	}
	_ = s.met.reg.WritePrometheus(w)
}
