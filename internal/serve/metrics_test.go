package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"mica/internal/obs"
)

// TestStatsJSONShape pins the /api/v1/stats wire format: the exact
// field names PR 8 shipped must survive the registry-backed rewrite,
// because dashboards consume them by name.
func TestStatsJSONShape(t *testing.T) {
	st := buildTestStore(t, testBenchmarks[:2], testPhase)
	_, ts := startServer(t, st, Config{Phase: testPhase})

	// Generate one request so the endpoint sections carry data.
	getJSON(t, ts.URL+"/api/v1/benchmarks", http.StatusOK, nil)

	resp, err := http.Get(ts.URL + "/api/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"uptime_seconds", "endpoints", "jobs", "store_cache"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("stats payload is missing top-level %q", key)
		}
	}

	var eps map[string]map[string]json.Number
	if err := json.Unmarshal(raw["endpoints"], &eps); err != nil {
		t.Fatal(err)
	}
	// Every wrapped route appears from the first scrape, hit or not.
	for _, ep := range []string{"benchmarks", "characterize", "traces", "jobs", "similar", "vectors", "stats", "version", "metrics"} {
		fields, ok := eps[ep]
		if !ok {
			t.Errorf("endpoints section is missing %q", ep)
			continue
		}
		for _, f := range []string{"count", "errors", "qps", "mean_ms", "p50_ms", "p99_ms"} {
			if _, ok := fields[f]; !ok {
				t.Errorf("endpoint %q is missing field %q", ep, f)
			}
		}
	}
	if n, _ := eps["benchmarks"]["count"].Int64(); n != 1 {
		t.Errorf("benchmarks count = %v, want 1", eps["benchmarks"]["count"])
	}

	var jobs map[string]json.Number
	if err := json.Unmarshal(raw["jobs"], &jobs); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"submitted", "rejected", "executed", "deduped", "done", "failed", "queued", "running"} {
		if _, ok := jobs[f]; !ok {
			t.Errorf("jobs section is missing field %q", f)
		}
	}

	var store map[string]json.Number
	if err := json.Unmarshal(raw["store_cache"], &store); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"budget_bytes", "bytes", "peak_bytes", "hits", "misses", "decodes", "decode_errors", "error_waits", "evictions"} {
		if _, ok := store[f]; !ok {
			t.Errorf("store_cache section is missing field %q", f)
		}
	}
}

// TestStatsPercentilesFromHistogram: the p50/p99 the stats endpoint
// reports come from the full-history histogram, not a sample window —
// seed the latency histogram directly and check the estimates land in
// the right buckets.
func TestStatsPercentilesFromHistogram(t *testing.T) {
	m := newServerMetrics()
	m.register("similar")
	// 95 fast requests and 5 slow ones: p50 must stay in the fast
	// bucket, p99 must reach the slow one.
	for i := 0; i < 95; i++ {
		m.observe("similar", 2*time.Millisecond, false)
	}
	for i := 0; i < 5; i++ {
		m.observe("similar", 4*time.Second, false)
	}
	s := m.snapshot("similar", time.Minute)
	if s.Count != 100 || s.Errors != 0 {
		t.Fatalf("snapshot %+v, want 100 requests", s)
	}
	if s.P50Ms < 1 || s.P50Ms > 2.5 {
		t.Errorf("p50 = %v ms, want ~2ms", s.P50Ms)
	}
	if s.P99Ms < 1000 {
		t.Errorf("p99 = %v ms, want in the seconds bucket", s.P99Ms)
	}
	if s.MeanMs < 195 || s.MeanMs > 210 {
		t.Errorf("mean = %v ms, want ~202ms", s.MeanMs)
	}
	if qps := s.QPS; qps < 1.6 || qps > 1.7 {
		t.Errorf("qps = %v, want 100/60s", qps)
	}
}

// TestServeMetricNames holds the per-server registry to the same
// mica_<layer>_<name> contract the process-global metrics follow (the
// root-level lint cannot see this registry — it is per-Server).
func TestServeMetricNames(t *testing.T) {
	m := newServerMetrics()
	names := m.reg.Names()
	if len(names) == 0 {
		t.Fatal("server registry is empty")
	}
	for _, name := range names {
		if !obs.ValidName(name) {
			t.Errorf("metric %q violates the mica_<layer>_<name> snake_case contract", name)
		}
		if layer := obs.LayerOf(name); layer != "serve" {
			t.Errorf("metric %q has layer %q, want serve", name, layer)
		}
	}
}

// TestServeVersion: the build-info endpoint answers with the binary's
// identity fields.
func TestServeVersion(t *testing.T) {
	st := buildTestStore(t, testBenchmarks[:2], testPhase)
	_, ts := startServer(t, st, Config{Phase: testPhase})
	var v obs.BuildInfo
	getJSON(t, ts.URL+"/api/v1/version", http.StatusOK, &v)
	if v.Version == "" {
		t.Fatal("version endpoint reports no version")
	}
}

// TestMetricsExposition: GET /metrics serves well-formed Prometheus
// text exposition covering every layer the issue names — serve
// endpoints, job queue, ivstore cache, pool, and pipeline stage
// histograms.
func TestMetricsExposition(t *testing.T) {
	st := buildTestStore(t, testBenchmarks[:2], testPhase)
	_, ts := startServer(t, st, Config{Phase: testPhase})

	// Drive one job through so the stage and job metrics are non-zero.
	var sub jobResponse
	postJSON(t, ts.URL+"/api/v1/characterize", characterizeRequest{Benchmark: testBenchmarks[0]}, http.StatusAccepted, &sub)
	pollJob(t, ts.URL, sub.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	obs.AssertWellFormedExposition(t, text)
	for _, want := range []string{
		`mica_serve_requests_total{endpoint="characterize"} 1`,
		"mica_serve_request_seconds_bucket",
		"mica_serve_jobs_executed_total",
		"mica_ivstore_cache_decodes_total",
		"mica_pool_items_total",
		`mica_stage_duration_seconds_bucket{stage="phases.characterize"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestMetricsConcurrentScrape hammers /metrics while 100+ requests run
// against /api/v1/characterize and /api/v1/similar — under -race (the
// CI serve race step runs this package) any unsynchronized registry
// access between scrapers, handlers and job workers surfaces here.
func TestMetricsConcurrentScrape(t *testing.T) {
	st := buildTestStore(t, testBenchmarks, testPhase)
	_, ts := startServer(t, st, Config{Phase: testPhase, Workers: 2, QueueCap: 256})

	client := &http.Client{Timeout: 30 * time.Second}
	get := func(path string) (int, string, error) {
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			return 0, "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b), err
	}

	const traffic = 120
	var wg sync.WaitGroup
	errc := make(chan error, traffic+32)
	for i := 0; i < traffic; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				bench := testBenchmarks[i%len(testBenchmarks)]
				if _, _, err := get("/api/v1/similar?bench=" + bench + "&k=2"); err != nil {
					errc <- err
				}
				return
			}
			resp, err := client.Post(ts.URL+"/api/v1/characterize", "application/json",
				strings.NewReader(fmt.Sprintf(`{"benchmark":%q}`, testBenchmarks[i%len(testBenchmarks)])))
			if err != nil {
				errc <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}(i)
	}
	// Scrapers run concurrently with the traffic above; every scrape
	// must be well-formed even mid-flight.
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, text, err := get("/metrics")
			if err != nil {
				errc <- err
				return
			}
			if status != http.StatusOK {
				errc <- fmt.Errorf("scrape status %d", status)
				return
			}
			obs.AssertWellFormedExposition(t, text)
			if _, _, err := get("/api/v1/stats"); err != nil {
				errc <- err
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
