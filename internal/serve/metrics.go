package serve

import (
	"sort"
	"sync"
	"time"
)

// latWindow bounds the per-endpoint latency samples kept for the
// percentile estimates; beyond it the ring overwrites oldest-first,
// so the percentiles track recent traffic.
const latWindow = 4096

// endpointMetrics accumulates one endpoint's counters. All methods
// are safe for concurrent use.
type endpointMetrics struct {
	mu     sync.Mutex
	count  uint64
	errors uint64
	total  time.Duration
	ring   []time.Duration
	next   int
	full   bool
}

func (m *endpointMetrics) observe(d time.Duration, isErr bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.count++
	if isErr {
		m.errors++
	}
	m.total += d
	if m.ring == nil {
		m.ring = make([]time.Duration, latWindow)
	}
	m.ring[m.next] = d
	m.next++
	if m.next == len(m.ring) {
		m.next, m.full = 0, true
	}
}

// EndpointStats is one endpoint's snapshot in the /stats payload.
type EndpointStats struct {
	// Count is the number of requests served (including errors).
	Count uint64 `json:"count"`
	// Errors is the number of responses with status >= 400.
	Errors uint64 `json:"errors"`
	// QPS is Count divided by the server's uptime.
	QPS float64 `json:"qps"`
	// MeanMs, P50Ms and P99Ms summarize latency over the recent
	// window (mean is over the endpoint's whole lifetime).
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

func (m *endpointMetrics) snapshot(uptime time.Duration) EndpointStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := EndpointStats{Count: m.count, Errors: m.errors}
	if uptime > 0 {
		s.QPS = float64(m.count) / uptime.Seconds()
	}
	if m.count > 0 {
		s.MeanMs = float64(m.total.Milliseconds()) / float64(m.count)
	}
	n := m.next
	if m.full {
		n = len(m.ring)
	}
	if n == 0 {
		return s
	}
	window := make([]time.Duration, n)
	copy(window, m.ring[:n])
	sort.Slice(window, func(a, b int) bool { return window[a] < window[b] })
	s.P50Ms = float64(window[n/2]) / float64(time.Millisecond)
	s.P99Ms = float64(window[n*99/100]) / float64(time.Millisecond)
	return s
}
