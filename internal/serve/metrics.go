package serve

import (
	"sort"
	"time"

	"mica/internal/obs"
)

// requestBounds extends the default duration buckets downward: warm
// similarity and stats queries answer in tens of microseconds, and the
// percentile estimates are only as good as the bucket resolution
// around the mass of the distribution.
var requestBounds = append([]float64{0.00001, 0.000025, 0.00005}, obs.DefaultDurationBounds...)

// serverMetrics is the serve layer's metric surface: a per-server
// obs.Registry (so concurrent servers in one process — tests, embedded
// uses — keep isolated endpoint stats) holding per-endpoint
// request/error counters and latency histograms plus the job-model
// counters. GET /metrics renders this registry together with the
// process-global obs.Default() (pool, ivstore, trace, stage spans).
type serverMetrics struct {
	reg       *obs.Registry
	requests  *obs.CounterVec
	errors    *obs.CounterVec
	latency   *obs.HistogramVec
	endpoints []string

	jobsSubmitted *obs.Counter
	jobsRejected  *obs.Counter
	jobsExecuted  *obs.Counter
	jobsDeduped   *obs.Counter
	jobsDone      *obs.Counter
	jobsFailed    *obs.Counter
	jobsQueued    *obs.Gauge
	jobsRunning   *obs.Gauge
}

func newServerMetrics() *serverMetrics {
	reg := obs.NewRegistry()
	return &serverMetrics{
		reg:           reg,
		requests:      reg.CounterVec("mica_serve_requests_total", "HTTP requests served, including errors.", "endpoint"),
		errors:        reg.CounterVec("mica_serve_request_errors_total", "HTTP responses with status >= 400.", "endpoint"),
		latency:       reg.HistogramVec("mica_serve_request_seconds", "HTTP request latency in seconds.", requestBounds, "endpoint"),
		jobsSubmitted: reg.Counter("mica_serve_jobs_submitted_total", "Accepted job submissions, including deduplicated ones."),
		jobsRejected:  reg.Counter("mica_serve_jobs_rejected_total", "Submissions refused for backpressure or shutdown."),
		jobsExecuted:  reg.Counter("mica_serve_jobs_executed_total", "Characterizations actually run."),
		jobsDeduped:   reg.Counter("mica_serve_jobs_deduped_total", "Submissions collapsed onto an existing job."),
		jobsDone:      reg.Counter("mica_serve_jobs_done_total", "Jobs finished successfully."),
		jobsFailed:    reg.Counter("mica_serve_jobs_failed_total", "Jobs finished with an error."),
		jobsQueued:    reg.Gauge("mica_serve_jobs_queued", "Jobs accepted but not yet running."),
		jobsRunning:   reg.Gauge("mica_serve_jobs_running", "Jobs characterizing right now."),
	}
}

// register pre-creates an endpoint's children so every route appears
// in /metrics and /api/v1/stats from the first scrape, count 0.
func (m *serverMetrics) register(endpoint string) {
	m.requests.With(endpoint)
	m.errors.With(endpoint)
	m.latency.With(endpoint)
	m.endpoints = append(m.endpoints, endpoint)
	sort.Strings(m.endpoints)
}

// observe records one finished request.
func (m *serverMetrics) observe(endpoint string, d time.Duration, isErr bool) {
	m.requests.With(endpoint).Inc()
	if isErr {
		m.errors.With(endpoint).Inc()
	}
	m.latency.With(endpoint).Observe(d.Seconds())
}

// EndpointStats is one endpoint's snapshot in the /stats payload.
type EndpointStats struct {
	// Count is the number of requests served (including errors).
	Count uint64 `json:"count"`
	// Errors is the number of responses with status >= 400.
	Errors uint64 `json:"errors"`
	// QPS is Count divided by the server's uptime.
	QPS float64 `json:"qps"`
	// MeanMs, P50Ms and P99Ms summarize latency over the endpoint's
	// lifetime; the percentiles are estimated from the fixed-boundary
	// latency histogram (no sample window — history is never dropped).
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// snapshot derives one endpoint's stats from the registry.
func (m *serverMetrics) snapshot(endpoint string, uptime time.Duration) EndpointStats {
	h := m.latency.With(endpoint)
	s := EndpointStats{
		Count:  uint64(m.requests.With(endpoint).Value()),
		Errors: uint64(m.errors.With(endpoint).Value()),
	}
	if uptime > 0 {
		s.QPS = float64(s.Count) / uptime.Seconds()
	}
	if n := h.Count(); n > 0 {
		s.MeanMs = h.Sum() / float64(n) * 1e3
		s.P50Ms = h.Quantile(0.50) * 1e3
		s.P99Ms = h.Quantile(0.99) * 1e3
	}
	return s
}
