// Package vm implements the interpreter for the synthetic ISA. The VM is
// the reproduction's execution substrate: it runs assembled programs over a
// sparse paged memory and streams one trace.Event per retired instruction
// to registered observers, standing in for ATOM instrumentation of Alpha
// binaries.
package vm

import "encoding/binary"

// pageBits is log2 of the VM memory page size.
const pageBits = 12

// PageSize is the VM memory page size in bytes.
const PageSize = 1 << pageBits

const pageMask = PageSize - 1

// Memory is a sparse, demand-allocated paged memory. Reads of unmapped
// pages return zeroes without allocating; writes allocate pages. All
// multi-byte accesses are little-endian and may straddle page boundaries.
type Memory struct {
	pages map[uint64]*[PageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[PageSize]byte)}
}

// Reset drops all mapped pages.
func (m *Memory) Reset() {
	m.pages = make(map[uint64]*[PageSize]byte)
}

// MappedPages returns the number of pages currently allocated.
func (m *Memory) MappedPages() int { return len(m.pages) }

func (m *Memory) page(addr uint64, alloc bool) *[PageSize]byte {
	pn := addr >> pageBits
	p := m.pages[pn]
	if p == nil && alloc {
		p = new([PageSize]byte)
		m.pages[pn] = p
	}
	return p
}

// ByteAt reads one byte.
func (m *Memory) ByteAt(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// SetByte writes one byte.
func (m *Memory) SetByte(addr uint64, v byte) {
	m.page(addr, true)[addr&pageMask] = v
}

// Read fills buf from memory starting at addr.
func (m *Memory) Read(addr uint64, buf []byte) {
	for len(buf) > 0 {
		off := addr & pageMask
		n := PageSize - off
		if uint64(len(buf)) < n {
			n = uint64(len(buf))
		}
		if p := m.page(addr, false); p != nil {
			copy(buf[:n], p[off:off+n])
		} else {
			for i := uint64(0); i < n; i++ {
				buf[i] = 0
			}
		}
		buf = buf[n:]
		addr += n
	}
}

// Write copies buf into memory starting at addr.
func (m *Memory) Write(addr uint64, buf []byte) {
	for len(buf) > 0 {
		off := addr & pageMask
		n := PageSize - off
		if uint64(len(buf)) < n {
			n = uint64(len(buf))
		}
		copy(m.page(addr, true)[off:off+n], buf[:n])
		buf = buf[n:]
		addr += n
	}
}

// ReadUint reads an unsigned little-endian integer of the given width
// (1, 2, 4 or 8 bytes).
func (m *Memory) ReadUint(addr uint64, size int) uint64 {
	// Fast path: access within one page.
	off := addr & pageMask
	if p := m.page(addr, false); p != nil && off+uint64(size) <= PageSize {
		switch size {
		case 1:
			return uint64(p[off])
		case 2:
			return uint64(binary.LittleEndian.Uint16(p[off:]))
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off:]))
		case 8:
			return binary.LittleEndian.Uint64(p[off:])
		}
	}
	var buf [8]byte
	m.Read(addr, buf[:size])
	switch size {
	case 1:
		return uint64(buf[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(buf[:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(buf[:]))
	case 8:
		return binary.LittleEndian.Uint64(buf[:])
	}
	panic("vm: bad access size")
}

// WriteUint writes an unsigned little-endian integer of the given width.
func (m *Memory) WriteUint(addr uint64, size int, v uint64) {
	off := addr & pageMask
	if off+uint64(size) <= PageSize {
		p := m.page(addr, true)
		switch size {
		case 1:
			p[off] = byte(v)
			return
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(v))
			return
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(v))
			return
		case 8:
			binary.LittleEndian.PutUint64(p[off:], v)
			return
		}
	}
	var buf [8]byte
	switch size {
	case 1:
		buf[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(buf[:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(buf[:], uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(buf[:], v)
	default:
		panic("vm: bad access size")
	}
	m.Write(addr, buf[:size])
}
