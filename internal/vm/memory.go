// Package vm implements the interpreter for the synthetic ISA. The VM is
// the reproduction's execution substrate: it runs assembled programs over a
// sparse paged memory and streams one trace.Event per retired instruction
// to registered observers, standing in for ATOM instrumentation of Alpha
// binaries.
package vm

import (
	"encoding/binary"

	"mica/internal/flathash"
)

// pageBits is log2 of the VM memory page size.
const pageBits = 12

// PageSize is the VM memory page size in bytes.
const PageSize = 1 << pageBits

const pageMask = PageSize - 1

// noPage is the µTLB tag for "no page cached"; no valid page number can
// reach it (it would need a 76-bit address space).
const noPage = ^uint64(0)

// Memory is a sparse, demand-allocated paged memory. Reads of unmapped
// pages return zeroes without allocating; writes allocate pages. All
// multi-byte accesses are little-endian and may straddle page boundaries.
//
// Page lookup is two-level: a single-entry page cache (µTLB) catches the
// sequential-access common case with one compare, and behind it a flat
// open-addressed table maps page numbers to slots in a page arena —
// no built-in map traffic anywhere on the access path.
type Memory struct {
	// lastPN/lastPage cache the most recently resolved mapped page.
	lastPN   uint64
	lastPage *[PageSize]byte

	// pageIndex maps a page number to 1 + its index in pages.
	pageIndex *flathash.U64Map
	pages     []*[PageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{lastPN: noPage, pageIndex: flathash.NewU64Map(0)}
}

// Reset drops all mapped pages.
func (m *Memory) Reset() {
	m.lastPN, m.lastPage = noPage, nil
	m.pageIndex = flathash.NewU64Map(0)
	clear(m.pages) // release the page memory, not just the slots
	m.pages = m.pages[:0]
}

// MappedPages returns the number of pages currently allocated.
func (m *Memory) MappedPages() int { return len(m.pages) }

func (m *Memory) page(addr uint64, alloc bool) *[PageSize]byte {
	pn := addr >> pageBits
	if pn == m.lastPN {
		return m.lastPage
	}
	return m.pageSlow(pn, alloc)
}

func (m *Memory) pageSlow(pn uint64, alloc bool) *[PageSize]byte {
	if off, ok := m.pageIndex.Get(pn); ok {
		p := m.pages[off-1]
		m.lastPN, m.lastPage = pn, p
		return p
	}
	if !alloc {
		return nil
	}
	p := new([PageSize]byte)
	m.pages = append(m.pages, p)
	m.pageIndex.Put(pn, uint64(len(m.pages)))
	m.lastPN, m.lastPage = pn, p
	return p
}

// ByteAt reads one byte.
func (m *Memory) ByteAt(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// SetByte writes one byte.
func (m *Memory) SetByte(addr uint64, v byte) {
	m.page(addr, true)[addr&pageMask] = v
}

// Read fills buf from memory starting at addr.
func (m *Memory) Read(addr uint64, buf []byte) {
	for len(buf) > 0 {
		off := addr & pageMask
		n := PageSize - off
		if uint64(len(buf)) < n {
			n = uint64(len(buf))
		}
		if p := m.page(addr, false); p != nil {
			copy(buf[:n], p[off:off+n])
		} else {
			for i := uint64(0); i < n; i++ {
				buf[i] = 0
			}
		}
		buf = buf[n:]
		addr += n
	}
}

// Write copies buf into memory starting at addr.
func (m *Memory) Write(addr uint64, buf []byte) {
	for len(buf) > 0 {
		off := addr & pageMask
		n := PageSize - off
		if uint64(len(buf)) < n {
			n = uint64(len(buf))
		}
		copy(m.page(addr, true)[off:off+n], buf[:n])
		buf = buf[n:]
		addr += n
	}
}

// ReadUint reads an unsigned little-endian integer of the given width
// (1, 2, 4 or 8 bytes).
func (m *Memory) ReadUint(addr uint64, size int) uint64 {
	// Fast path: access within one page.
	off := addr & pageMask
	if p := m.page(addr, false); p != nil && off+uint64(size) <= PageSize {
		switch size {
		case 1:
			return uint64(p[off])
		case 2:
			return uint64(binary.LittleEndian.Uint16(p[off:]))
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off:]))
		case 8:
			return binary.LittleEndian.Uint64(p[off:])
		}
	}
	var buf [8]byte
	m.Read(addr, buf[:size])
	switch size {
	case 1:
		return uint64(buf[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(buf[:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(buf[:]))
	case 8:
		return binary.LittleEndian.Uint64(buf[:])
	}
	panic("vm: bad access size")
}

// WriteUint writes an unsigned little-endian integer of the given width.
func (m *Memory) WriteUint(addr uint64, size int, v uint64) {
	off := addr & pageMask
	if off+uint64(size) <= PageSize {
		p := m.page(addr, true)
		switch size {
		case 1:
			p[off] = byte(v)
			return
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(v))
			return
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(v))
			return
		case 8:
			binary.LittleEndian.PutUint64(p[off:], v)
			return
		}
	}
	var buf [8]byte
	switch size {
	case 1:
		buf[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(buf[:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(buf[:], uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(buf[:], v)
	default:
		panic("vm: bad access size")
	}
	m.Write(addr, buf[:size])
}
