package vm

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"mica/internal/asm"
	"mica/internal/isa"
	"mica/internal/trace"
)

func run(t *testing.T, src string) *Machine {
	t.Helper()
	prog, err := asm.Assemble(t.Name(), src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog)
	if _, err := m.Run(1_000_000, nil); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMemoryReadWriteRoundTrip(t *testing.T) {
	m := NewMemory()
	f := func(addr uint64, v uint64, szSel uint8) bool {
		addr %= 1 << 30
		size := []int{1, 2, 4, 8}[szSel%4]
		m.WriteUint(addr, size, v)
		got := m.ReadUint(addr, size)
		want := v
		if size < 8 {
			want &= 1<<(8*size) - 1
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryCrossPageAccess(t *testing.T) {
	m := NewMemory()
	addr := uint64(PageSize - 3)
	m.WriteUint(addr, 8, 0x1122334455667788)
	if got := m.ReadUint(addr, 8); got != 0x1122334455667788 {
		t.Errorf("cross-page read = %#x", got)
	}
	// Bytes land on both pages.
	if m.ByteAt(addr) != 0x88 || m.ByteAt(addr+7) != 0x11 {
		t.Error("cross-page bytes wrong")
	}
}

func TestMemoryUnmappedReadsZero(t *testing.T) {
	m := NewMemory()
	if m.ReadUint(0xdeadbeef, 8) != 0 {
		t.Error("unmapped read not zero")
	}
	if m.MappedPages() != 0 {
		t.Error("read allocated a page")
	}
}

func TestMemoryBulkReadWrite(t *testing.T) {
	m := NewMemory()
	data := make([]byte, 3*PageSize+17)
	for i := range data {
		data[i] = byte(i * 7)
	}
	m.Write(100, data)
	got := make([]byte, len(data))
	m.Read(100, got)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], data[i])
		}
	}
}

func TestArithmetic(t *testing.T) {
	m := run(t, `
main:	lda   r1, 10
	lda   r2, 3
	addq  r1, r2, r3     # 13
	subq  r1, r2, r4     # 7
	mulq  r1, r2, r5     # 30
	divq  r1, r2, r6     # 3
	remq  r1, r2, r7     # 1
	sll   r1, 2, r8      # 40
	sra   r1, 1, r9      # 5
	cmplt r2, r1, r10    # 1
	xor   r1, r2, r11    # 9
	halt
`)
	want := map[int]uint64{3: 13, 4: 7, 5: 30, 6: 3, 7: 1, 8: 40, 9: 5, 10: 1, 11: 9}
	for r, v := range want {
		if got := m.R[r]; got != v {
			t.Errorf("r%d = %d, want %d", r, got, v)
		}
	}
}

func TestNegativeImmediates(t *testing.T) {
	m := run(t, `
main:	lda   r1, -5
	addq  r1, -3, r2
	halt
`)
	if int64(m.R[1]) != -5 || int64(m.R[2]) != -8 {
		t.Errorf("r1 = %d, r2 = %d; want -5, -8", int64(m.R[1]), int64(m.R[2]))
	}
}

func TestZeroRegisterIgnoresWrites(t *testing.T) {
	m := run(t, `
main:	lda   r31, 42
	addq  r31, 7, r1
	halt
`)
	if m.R[31] != 0 {
		t.Errorf("r31 = %d, want 0", m.R[31])
	}
	if m.R[1] != 7 {
		t.Errorf("r1 = %d, want 7", m.R[1])
	}
}

func TestLoadsAndStores(t *testing.T) {
	m := run(t, `
	.data
v:	.quad 0x1122334455667788
out:	.space 32
	.text
main:	lda  r1, v
	lda  r2, out
	ldq  r3, 0(r1)
	stq  r3, 0(r2)
	ldl  r4, 0(r1)       # sign-extends low 32 bits
	ldbu r5, 7(r1)       # top byte
	ldwu r6, 0(r1)
	stb  r5, 8(r2)
	stw  r6, 10(r2)
	stl  r4, 12(r2)
	halt
`)
	out := m.Program().MustSymbol("out")
	if got := m.Mem.ReadUint(out, 8); got != 0x1122334455667788 {
		t.Errorf("stored quad = %#x", got)
	}
	if got := m.R[4]; got != 0x55667788 {
		t.Errorf("ldl = %#x, want %#x", got, 0x55667788)
	}
	if got := m.R[5]; got != 0x11 {
		t.Errorf("ldbu = %#x, want 0x11", got)
	}
	if got := m.R[6]; got != 0x7788 {
		t.Errorf("ldwu = %#x, want 0x7788", got)
	}
}

func TestSignExtendingLoad(t *testing.T) {
	m := run(t, `
	.data
v:	.long 0x80000000
	.text
main:	lda r1, v
	ldl r2, 0(r1)
	halt
`)
	if int64(m.R[2]) != -2147483648 {
		t.Errorf("ldl of 0x80000000 = %d, want -2^31", int64(m.R[2]))
	}
}

func TestFloatingPoint(t *testing.T) {
	m := run(t, `
	.data
a:	.quad 0x4000000000000000   # 2.0
b:	.quad 0x4008000000000000   # 3.0
res:	.space 8
	.text
main:	lda   r1, a
	lda   r2, b
	ldt   f1, 0(r1)
	ldt   f2, 0(r2)
	addt  f1, f2, f3      # 5.0
	mult  f1, f2, f4      # 6.0
	divt  f2, f1, f5      # 1.5
	sqrtt f4, f6          # sqrt(6)
	subt  f3, f2, f7      # 2.0
	cmpteq f7, f1, f8     # 1.0
	lda   r3, res
	stt   f3, 0(r3)
	halt
`)
	if got := m.F[3]; got != 5.0 {
		t.Errorf("addt = %g, want 5", got)
	}
	if got := m.F[5]; got != 1.5 {
		t.Errorf("divt = %g, want 1.5", got)
	}
	if got := m.F[6]; math.Abs(got-math.Sqrt(6)) > 1e-15 {
		t.Errorf("sqrtt = %g, want sqrt(6)", got)
	}
	if m.F[8] != 1.0 {
		t.Errorf("cmpteq = %g, want 1", m.F[8])
	}
	res := m.Program().MustSymbol("res")
	if got := math.Float64frombits(m.Mem.ReadUint(res, 8)); got != 5.0 {
		t.Errorf("stt stored %g, want 5", got)
	}
}

func TestIntFPConversion(t *testing.T) {
	m := run(t, `
main:	lda   r1, 7
	itoft r1, f1        # raw bits
	cvtqt f1, f2        # 7.0
	addt  f2, f2, f3    # 14.0
	cvttq f3, f4        # int 14 bits
	ftoit f4, r2        # 14
	halt
`)
	if m.F[2] != 7.0 {
		t.Errorf("cvtqt = %g, want 7", m.F[2])
	}
	if m.R[2] != 14 {
		t.Errorf("round trip = %d, want 14", m.R[2])
	}
}

func TestLoopAndBranches(t *testing.T) {
	// Sum 1..100 with a loop.
	m := run(t, `
main:	lda  r1, 100
	lda  r2, 0
loop:	addq r2, r1, r2
	subq r1, 1, r1
	bgt  r1, loop
	halt
`)
	if m.R[2] != 5050 {
		t.Errorf("sum = %d, want 5050", m.R[2])
	}
}

func TestCallReturn(t *testing.T) {
	m := run(t, `
main:	lda  r16, 21
	lda  r5, double
	jsr  r26, (r5)
	addq r0, 1, r3
	halt
double:	addq r16, r16, r0
	ret  (r26)
`)
	if m.R[3] != 43 {
		t.Errorf("result = %d, want 43", m.R[3])
	}
}

func TestStackConvention(t *testing.T) {
	m := run(t, `
main:	subq sp, 16, sp
	lda  r1, 99
	stq  r1, 0(sp)
	ldq  r2, 0(sp)
	addq sp, 16, sp
	halt
`)
	if m.R[2] != 99 {
		t.Errorf("stack round trip = %d, want 99", m.R[2])
	}
	if m.R[isa.RegSP.Index()] != StackBase {
		t.Errorf("sp = %#x, want %#x", m.R[isa.RegSP.Index()], StackBase)
	}
}

func TestBudgetStopsInfiniteLoop(t *testing.T) {
	prog, err := asm.Assemble("t", "main:\tbr main\n\thalt\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog)
	n, err := m.Run(1000, nil)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if n != 1000 {
		t.Errorf("retired %d, want 1000", n)
	}
}

func TestRunResumesAfterBudget(t *testing.T) {
	prog, err := asm.Assemble("t", `
main:	lda  r1, 10
loop:	subq r1, 1, r1
	bgt  r1, loop
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog)
	if _, err := m.Run(5, nil); !errors.Is(err, ErrBudget) {
		t.Fatalf("first run err = %v", err)
	}
	if _, err := m.Run(0, nil); err != nil {
		t.Fatalf("resume err = %v", err)
	}
	if m.R[1] != 0 {
		t.Errorf("r1 = %d, want 0 after resume", m.R[1])
	}
	// lda + 10 iterations of (subq, bgt) = 21 instructions.
	if m.Retired() != 21 {
		t.Errorf("retired = %d, want 21", m.Retired())
	}
}

func TestDivideByZeroFaults(t *testing.T) {
	prog, err := asm.Assemble("t", "main:\tlda r1, 1\n\tdivq r1, r31, r2\n\thalt\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog)
	if _, err := m.Run(100, nil); err == nil {
		t.Error("divide by zero did not fault")
	}
}

func TestBadIndirectJumpFaults(t *testing.T) {
	prog, err := asm.Assemble("t", "main:\tlda r1, 3\n\tjmp (r1)\n\thalt\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog)
	if _, err := m.Run(100, nil); err == nil {
		t.Error("jump to non-code address did not fault")
	}
}

func TestEventStream(t *testing.T) {
	prog, err := asm.Assemble("t", `
	.data
v:	.quad 5
	.text
main:	lda  r1, v
	ldq  r2, 0(r1)
	addq r2, 1, r2
	stq  r2, 0(r1)
	beq  r2, main
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	var events []trace.Event
	m := New(prog)
	if _, err := m.Run(0, trace.ObserverFunc(func(ev *trace.Event) {
		events = append(events, *ev)
	})); err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("got %d events, want 5 (halt not counted)", len(events))
	}
	v := prog.MustSymbol("v")
	ld := events[1]
	if ld.Class != isa.ClassLoad || ld.MemAddr != v || ld.MemSize != 8 {
		t.Errorf("load event wrong: %+v", ld)
	}
	st := events[3]
	if st.Class != isa.ClassStore || st.MemAddr != v {
		t.Errorf("store event wrong: %+v", st)
	}
	br := events[4]
	if !br.Conditional || br.Taken {
		t.Errorf("branch event wrong: %+v", br)
	}
	if br.Target != isa.PCForIndex(5) {
		t.Errorf("not-taken target = %#x, want fall-through", br.Target)
	}
	for i, ev := range events {
		if ev.Seq != uint64(i) {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
		if ev.PC != isa.PCForIndex(i) {
			t.Errorf("event %d has pc %#x", i, ev.PC)
		}
	}
}

func TestEventRegisterOperands(t *testing.T) {
	prog, err := asm.Assemble("t", "main:\taddq r1, r2, r3\n\thalt\n")
	if err != nil {
		t.Fatal(err)
	}
	var got trace.Event
	m := New(prog)
	if _, err := m.Run(0, trace.ObserverFunc(func(ev *trace.Event) { got = *ev })); err != nil {
		t.Fatal(err)
	}
	if got.NSrc != 2 || got.Src[0] != isa.IntReg(1) || got.Src[1] != isa.IntReg(2) {
		t.Errorf("sources = %v x%d", got.Src, got.NSrc)
	}
	if !got.HasDst || got.Dst != isa.IntReg(3) {
		t.Errorf("dst = %v (%v)", got.Dst, got.HasDst)
	}
}

func TestTakenBranchTarget(t *testing.T) {
	prog, err := asm.Assemble("t", `
main:	lda r1, 1
	bne r1, skip
	nop
skip:	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	var branch trace.Event
	m := New(prog)
	if _, err := m.Run(0, trace.ObserverFunc(func(ev *trace.Event) {
		if ev.Class == isa.ClassBranch {
			branch = *ev
		}
	})); err != nil {
		t.Fatal(err)
	}
	if !branch.Taken || branch.Target != isa.PCForIndex(3) {
		t.Errorf("taken branch event wrong: %+v", branch)
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	prog, err := asm.Assemble("t", `
	.data
v:	.quad 1
	.text
main:	lda  r1, v
	ldq  r2, 0(r1)
	addq r2, 41, r2
	stq  r2, 0(r1)
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog)
	if _, err := m.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	v := prog.MustSymbol("v")
	if m.Mem.ReadUint(v, 8) != 42 {
		t.Fatal("first run did not execute")
	}
	m.Reset()
	if m.Mem.ReadUint(v, 8) != 1 {
		t.Error("Reset did not restore data segment")
	}
	if m.Retired() != 0 {
		t.Error("Reset did not clear retired count")
	}
	if _, err := m.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if m.Mem.ReadUint(v, 8) != 42 {
		t.Error("second run after Reset wrong")
	}
}

func TestCounterObserver(t *testing.T) {
	prog, err := asm.Assemble("t", `
main:	lda  r1, 3
loop:	subq r1, 1, r1
	bgt  r1, loop
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	var c trace.Counter
	m := New(prog)
	if _, err := m.Run(0, &c); err != nil {
		t.Fatal(err)
	}
	// lda + 3x(subq, bgt)
	if c.Total != 7 {
		t.Errorf("total = %d, want 7", c.Total)
	}
	if c.ByClass[isa.ClassBranch] != 3 {
		t.Errorf("branches = %d, want 3", c.ByClass[isa.ClassBranch])
	}
	if c.ByClass[isa.ClassIntArith] != 4 {
		t.Errorf("arith = %d, want 4", c.ByClass[isa.ClassIntArith])
	}
}
