package vm

import (
	"fmt"
	"math"
	"math/bits"

	"mica/internal/isa"
	"mica/internal/trace"
)

// ErrBudget is returned by Run when the instruction budget is reached
// before the program halts. It is an expected, non-fatal outcome: workload
// kernels are written as long-running loops and the budget plays the role
// of the trace length. It is the same sentinel every trace.Source returns
// (the Machine is one Source among others), re-exported here so existing
// vm.ErrBudget comparisons keep working.
var ErrBudget = trace.ErrBudget

// Machine executes one assembled program. It is not safe for concurrent
// use; run one Machine per goroutine.
type Machine struct {
	prog *isa.Program
	// R and F are the integer and floating-point register files. R[31]
	// and F[31] are forced to zero after every write.
	R [isa.NumIntRegs]uint64
	F [isa.NumFPRegs]float64
	// Mem is the machine's memory.
	Mem *Memory
	// pc is the current instruction index.
	pc int
	// retired counts executed instructions across Run calls.
	retired uint64
}

// StackBase is the initial stack pointer, placed in its own address
// region; the stack grows down.
const StackBase uint64 = 0x0000_0000_7fff_f000

// New creates a Machine for prog with the data segment loaded and the
// stack pointer initialized. The program's decode-time metadata is
// finalized here so that hand-built Program literals behave exactly like
// assembler output.
func New(prog *isa.Program) *Machine {
	prog.Finalize()
	m := &Machine{prog: prog, Mem: NewMemory()}
	m.Reset()
	return m
}

// Program returns the loaded program.
func (m *Machine) Program() *isa.Program { return m.prog }

// Retired returns the number of instructions retired so far.
func (m *Machine) Retired() uint64 { return m.retired }

// Reset restores the machine to its initial state: registers cleared,
// memory reloaded from the program image, PC at the entry point.
func (m *Machine) Reset() {
	m.R = [isa.NumIntRegs]uint64{}
	m.F = [isa.NumFPRegs]float64{}
	m.Mem.Reset()
	if len(m.prog.Data) > 0 {
		m.Mem.Write(m.prog.DataBase, m.prog.Data)
	}
	m.R[isa.RegSP.Index()] = StackBase
	m.pc = m.prog.Entry
	m.retired = 0
}

// SetReg sets an integer register; used by kernel input builders to pass
// parameters (by convention in r16..r21, the Alpha argument registers).
func (m *Machine) SetReg(r isa.Reg, v uint64) {
	if r.IsFP() {
		panic(fmt.Sprintf("vm: SetReg on FP register %s", r))
	}
	if r != isa.RegZero {
		m.R[r.Index()] = v
	}
}

// SetFReg sets a floating-point register.
func (m *Machine) SetFReg(r isa.Reg, v float64) {
	if !r.IsFP() {
		panic(fmt.Sprintf("vm: SetFReg on integer register %s", r))
	}
	if r != isa.RegFZero {
		m.F[r.Index()] = v
	}
}

// Reg reads an integer register.
func (m *Machine) Reg(r isa.Reg) uint64 { return m.R[r.Index()] }

// FReg reads a floating-point register.
func (m *Machine) FReg(r isa.Reg) float64 { return m.F[r.Index()] }

// execError is a runtime fault with PC context.
type execError struct {
	pc   int
	line int
	msg  string
}

func (e *execError) Error() string {
	return fmt.Sprintf("vm: fault at instruction %d (source line %d): %s", e.pc, e.line, e.msg)
}

// Run executes until the program halts, the budget is exhausted, or a
// fault occurs. budget <= 0 means unlimited. Every retired instruction is
// delivered to obs (which may be nil for pure execution). Returns the
// number of instructions retired by this call, and ErrBudget if the budget
// stopped execution.
func (m *Machine) Run(budget uint64, obs trace.Observer) (uint64, error) {
	insts := m.prog.Insts
	var ev trace.Event
	var n uint64
	for {
		if budget > 0 && n >= budget {
			m.retired += n
			return n, ErrBudget
		}
		if m.pc < 0 || m.pc >= len(insts) {
			m.retired += n
			return n, &execError{pc: m.pc, msg: "pc out of range"}
		}
		in := &insts[m.pc]
		if in.Op == isa.OpHalt {
			// The halt itself is not a workload instruction; stop
			// without emitting an event, mirroring how the paper's
			// traces end at program exit.
			m.retired += n
			return n, nil
		}
		next := m.pc + 1
		meta := &in.Meta

		if obs != nil {
			ev = trace.Event{
				Seq:       m.retired + n,
				PC:        isa.PCForIndex(m.pc),
				Op:        in.Op,
				Class:     meta.Class,
				Src:       meta.Src,
				NSrc:      meta.NSrc,
				Dst:       meta.Dst,
				HasDst:    meta.HasDst,
				DepSrc:    meta.DepSrc,
				NDepSrc:   meta.NDepSrc,
				DepDst:    meta.DepDst,
				HasDepDst: meta.HasDepDst,
			}
		}

		switch meta.Fmt {
		case isa.FmtOperate:
			var b uint64
			var fb float64
			if meta.FPRegs {
				fb = m.F[in.Rb.Index()]
			} else if in.HasImm {
				b = uint64(in.Imm)
			} else {
				b = m.R[in.Rb.Index()]
			}
			if err := m.operate(in, b, fb); err != nil {
				m.retired += n
				return n, err
			}

		case isa.FmtFPUnary:
			m.fpUnary(in)

		case isa.FmtMem:
			addr := m.R[in.Rb.Index()] + uint64(in.Imm)
			size := int(meta.MemSize)
			ev.MemAddr = addr
			ev.MemSize = meta.MemSize
			if meta.Load {
				m.load(in, addr, size)
			} else {
				m.store(in, addr, size)
			}

		case isa.FmtLea:
			v := uint64(in.Imm)
			if in.Rb != isa.RegZero {
				v += m.R[in.Rb.Index()]
			}
			m.writeInt(in.Ra, v)

		case isa.FmtBranch:
			taken := true
			if meta.Conditional {
				taken = m.evalCond(in)
				ev.Conditional = true
			} else if in.Op == isa.OpBr || in.Op == isa.OpBsr {
				m.writeInt(in.Ra, isa.PCForIndex(m.pc+1))
			}
			ev.Taken = taken
			if taken {
				next = in.Target
				ev.Target = isa.PCForIndex(in.Target)
			} else {
				ev.Target = isa.PCForIndex(m.pc + 1)
			}

		case isa.FmtJump:
			target := m.R[in.Rb.Index()]
			if in.Op == isa.OpJsr {
				m.writeInt(in.Ra, isa.PCForIndex(m.pc+1))
			}
			if target < isa.CodeBase || (target-isa.CodeBase)%isa.InstBytes != 0 {
				m.retired += n
				return n, &execError{pc: m.pc, line: in.Line, msg: fmt.Sprintf("indirect jump to non-code address %#x", target)}
			}
			next = isa.IndexForPC(target)
			ev.Taken = true
			ev.Target = target

		case isa.FmtMisc:
			// nop

		default:
			m.retired += n
			return n, &execError{pc: m.pc, line: in.Line, msg: "unhandled format"}
		}

		if obs != nil {
			obs.Observe(&ev)
		}

		m.pc = next
		n++
	}
}

// writeInt writes an integer register honoring the zero register.
func (m *Machine) writeInt(r isa.Reg, v uint64) {
	if r != isa.RegZero {
		m.R[r.Index()] = v
	}
}

// writeFP writes an FP register honoring the zero register.
func (m *Machine) writeFP(r isa.Reg, v float64) {
	if r != isa.RegFZero {
		m.F[r.Index()] = v
	}
}

func boolToU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func (m *Machine) operate(in *isa.Inst, b uint64, fb float64) error {
	if in.Meta.FPRegs {
		fa := m.F[in.Ra.Index()]
		var v float64
		switch in.Op {
		case isa.OpAddT:
			v = fa + fb
		case isa.OpSubT:
			v = fa - fb
		case isa.OpMulT:
			v = fa * fb
		case isa.OpDivT:
			v = fa / fb
		case isa.OpCmpTEq:
			v = float64(boolToU64(fa == fb))
		case isa.OpCmpTLt:
			v = float64(boolToU64(fa < fb))
		case isa.OpCmpTLe:
			v = float64(boolToU64(fa <= fb))
		default:
			return &execError{pc: m.pc, line: in.Line, msg: "unhandled FP operate " + in.Op.Name()}
		}
		m.writeFP(in.Rc, v)
		return nil
	}

	a := m.R[in.Ra.Index()]
	var v uint64
	switch in.Op {
	case isa.OpAddQ:
		v = a + b
	case isa.OpSubQ:
		v = a - b
	case isa.OpAnd:
		v = a & b
	case isa.OpBic:
		v = a &^ b
	case isa.OpOr:
		v = a | b
	case isa.OpOrnot:
		v = a | ^b
	case isa.OpXor:
		v = a ^ b
	case isa.OpSll:
		v = a << (b & 63)
	case isa.OpSrl:
		v = a >> (b & 63)
	case isa.OpSra:
		v = uint64(int64(a) >> (b & 63))
	case isa.OpCmpEq:
		v = boolToU64(a == b)
	case isa.OpCmpLt:
		v = boolToU64(int64(a) < int64(b))
	case isa.OpCmpLe:
		v = boolToU64(int64(a) <= int64(b))
	case isa.OpCmpULt:
		v = boolToU64(a < b)
	case isa.OpCmpULe:
		v = boolToU64(a <= b)
	case isa.OpS4AddQ:
		v = a*4 + b
	case isa.OpS8AddQ:
		v = a*8 + b
	case isa.OpSextL:
		v = uint64(int64(int32(a)))
	case isa.OpMulQ:
		v = a * b
	case isa.OpUMulH:
		v, _ = bits.Mul64(a, b)
	case isa.OpDivQ:
		if b == 0 {
			return &execError{pc: m.pc, line: in.Line, msg: "integer divide by zero"}
		}
		v = uint64(int64(a) / int64(b))
	case isa.OpRemQ:
		if b == 0 {
			return &execError{pc: m.pc, line: in.Line, msg: "integer remainder by zero"}
		}
		v = uint64(int64(a) % int64(b))
	default:
		return &execError{pc: m.pc, line: in.Line, msg: "unhandled operate " + in.Op.Name()}
	}
	m.writeInt(in.Rc, v)
	return nil
}

func (m *Machine) fpUnary(in *isa.Inst) {
	switch in.Op {
	case isa.OpSqrtT:
		m.writeFP(in.Rc, math.Sqrt(m.F[in.Rb.Index()]))
	case isa.OpCvtQT:
		m.writeFP(in.Rc, float64(int64(math.Float64bits(m.F[in.Rb.Index()]))))
	case isa.OpCvtTQ:
		m.writeFP(in.Rc, math.Float64frombits(uint64(int64(m.F[in.Rb.Index()]))))
	case isa.OpFMov:
		m.writeFP(in.Rc, m.F[in.Rb.Index()])
	case isa.OpFNeg:
		m.writeFP(in.Rc, -m.F[in.Rb.Index()])
	case isa.OpFAbs:
		m.writeFP(in.Rc, math.Abs(m.F[in.Rb.Index()]))
	case isa.OpItofT:
		m.writeFP(in.Rc, math.Float64frombits(m.R[in.Rb.Index()]))
	case isa.OpFtoiT:
		m.writeInt(in.Rc, math.Float64bits(m.F[in.Rb.Index()]))
	}
}

func (m *Machine) load(in *isa.Inst, addr uint64, size int) {
	v := m.Mem.ReadUint(addr, size)
	switch in.Op {
	case isa.OpLdL:
		v = uint64(int64(int32(v)))
	case isa.OpLdT:
		m.writeFP(in.Ra, math.Float64frombits(v))
		return
	case isa.OpLdS:
		m.writeFP(in.Ra, float64(math.Float32frombits(uint32(v))))
		return
	}
	m.writeInt(in.Ra, v)
}

func (m *Machine) store(in *isa.Inst, addr uint64, size int) {
	var v uint64
	switch in.Op {
	case isa.OpStT:
		v = math.Float64bits(m.F[in.Ra.Index()])
	case isa.OpStS:
		v = uint64(math.Float32bits(float32(m.F[in.Ra.Index()])))
	default:
		v = m.R[in.Ra.Index()]
	}
	m.Mem.WriteUint(addr, size, v)
}

func (m *Machine) evalCond(in *isa.Inst) bool {
	if in.Meta.FPRegs {
		fa := m.F[in.Ra.Index()]
		switch in.Op {
		case isa.OpFBeq:
			return fa == 0
		case isa.OpFBne:
			return fa != 0
		case isa.OpFBlt:
			return fa < 0
		case isa.OpFBge:
			return fa >= 0
		}
		return false
	}
	a := m.R[in.Ra.Index()]
	switch in.Op {
	case isa.OpBeq:
		return a == 0
	case isa.OpBne:
		return a != 0
	case isa.OpBlt:
		return int64(a) < 0
	case isa.OpBle:
		return int64(a) <= 0
	case isa.OpBgt:
		return int64(a) > 0
	case isa.OpBge:
		return int64(a) >= 0
	case isa.OpBlbc:
		return a&1 == 0
	case isa.OpBlbs:
		return a&1 == 1
	}
	return false
}
