package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("short", 1)
	tb.AddRow("a-much-longer-name", 123456)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4 (header, rule, 2 rows): %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header line = %q", lines[0])
	}
	// The value column must start at the same offset in both data rows.
	off2 := strings.Index(lines[2], "1")
	off3 := strings.Index(lines[3], "123456")
	if off2 != off3 {
		t.Errorf("columns misaligned: %d vs %d\n%s", off2, off3, out)
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("x")
	tb.AddRow(0.123456789)
	if !strings.Contains(tb.String(), "0.1235") {
		t.Errorf("float not formatted compactly: %q", tb.String())
	}
}

func TestTableNoTrailingSpaces(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("x", "y")
	for _, line := range strings.Split(tb.String(), "\n") {
		if strings.HasSuffix(line, " ") {
			t.Errorf("trailing space in %q", line)
		}
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("a", "b", "c")
	tb.AddRow("only-one")
	out := tb.String()
	if !strings.Contains(out, "only-one") {
		t.Error("short row dropped")
	}
}
