// Package report renders aligned text tables for the command-line tools
// and benchmark harness output.
package report

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}

	var b strings.Builder
	writeRow := func(r []string) {
		var line strings.Builder
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				line.WriteString("  ")
			}
			fmt.Fprintf(&line, "%-*s", widths[i], cell)
		}
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		total := 0
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(cols-1)))
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
