// Package kiviat renders kiviat (radar) diagrams of benchmark
// characteristic vectors, the presentation format of the paper's Figure
// 6. Two renderers are provided: a character-grid renderer for terminals
// and an SVG renderer for files.
package kiviat

import (
	"fmt"
	"math"
	"strings"
)

// Diagram is one kiviat plot: a label per axis and a value in [0, 1] per
// axis. Values outside [0, 1] are clamped at render time.
type Diagram struct {
	Title  string
	Labels []string
	Values []float64
}

// New builds a diagram; labels and values must have equal nonzero length.
func New(title string, labels []string, values []float64) (*Diagram, error) {
	if len(labels) == 0 || len(labels) != len(values) {
		return nil, fmt.Errorf("kiviat: %d labels but %d values", len(labels), len(values))
	}
	return &Diagram{Title: title, Labels: labels, Values: values}, nil
}

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}

// ASCII renders the diagram on a character grid of the given radius (in
// character cells; height is compressed 2:1 to account for cell aspect).
// Each axis is drawn as a spoke with a marker at the value position.
func (d *Diagram) ASCII(radius int) string {
	if radius < 3 {
		radius = 3
	}
	w := radius*4 + 1
	h := radius*2 + 1
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	cx, cy := w/2, h/2
	put := func(x, y int, ch byte) {
		if x >= 0 && x < w && y >= 0 && y < h {
			grid[y][x] = ch
		}
	}
	n := len(d.Values)
	for i := 0; i < n; i++ {
		angle := 2*math.Pi*float64(i)/float64(n) - math.Pi/2
		dx, dy := math.Cos(angle), math.Sin(angle)
		// Spoke.
		for r := 0; r <= radius; r++ {
			x := cx + int(math.Round(float64(2*r)*dx))
			y := cy + int(math.Round(float64(r)*dy))
			put(x, y, '.')
		}
		// Value marker.
		val := clamp01(d.Values[i])
		r := val * float64(radius)
		x := cx + int(math.Round(2*r*dx))
		y := cy + int(math.Round(r*dy))
		put(x, y, '*')
		// Axis index label just beyond the spoke end.
		lx := cx + int(math.Round(float64(2*(radius+1))*dx))
		ly := cy + int(math.Round(float64(radius+1)*dy))
		label := fmt.Sprintf("%d", i+1)
		for k := 0; k < len(label); k++ {
			put(lx+k, ly, label[k])
		}
	}
	put(cx, cy, '+')

	var b strings.Builder
	if d.Title != "" {
		fmt.Fprintf(&b, "%s\n", d.Title)
	}
	for _, row := range grid {
		b.WriteString(strings.TrimRight(string(row), " "))
		b.WriteByte('\n')
	}
	for i, lab := range d.Labels {
		fmt.Fprintf(&b, "  %2d: %-26s %.3f\n", i+1, lab, clamp01(d.Values[i]))
	}
	return b.String()
}

// SVG renders the diagram as a standalone SVG document of the given pixel
// size.
func (d *Diagram) SVG(size int) string {
	if size < 100 {
		size = 100
	}
	c := float64(size) / 2
	rMax := c * 0.72
	n := len(d.Values)

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		size, size, size, size)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", size, size)
	if d.Title != "" {
		fmt.Fprintf(&b, `<text x="%.1f" y="16" text-anchor="middle" font-size="12" font-family="sans-serif">%s</text>`+"\n",
			c, xmlEscape(d.Title))
	}
	// Reference rings at 25/50/75/100%.
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		b.WriteString(ringPath(c, c, rMax*frac, n, `fill="none" stroke="#ddd" stroke-width="1"`))
	}
	// Spokes and labels.
	for i := 0; i < n; i++ {
		x, y := polar(c, c, rMax, i, n)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#bbb" stroke-width="1"/>`+"\n", c, c, x, y)
		lx, ly := polar(c, c, rMax*1.12, i, n)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle" font-size="9" font-family="sans-serif">%s</text>`+"\n",
			lx, ly, xmlEscape(d.Labels[i]))
	}
	// Value polygon.
	var pts []string
	for i, v := range d.Values {
		x, y := polar(c, c, rMax*clamp01(v), i, n)
		pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y))
	}
	fmt.Fprintf(&b, `<polygon points="%s" fill="rgba(70,110,200,0.35)" stroke="#3a5fb0" stroke-width="1.5"/>`+"\n",
		strings.Join(pts, " "))
	b.WriteString("</svg>\n")
	return b.String()
}

func polar(cx, cy, r float64, i, n int) (float64, float64) {
	angle := 2*math.Pi*float64(i)/float64(n) - math.Pi/2
	return cx + r*math.Cos(angle), cy + r*math.Sin(angle)
}

func ringPath(cx, cy, r float64, n int, attrs string) string {
	var pts []string
	for i := 0; i < n; i++ {
		x, y := polar(cx, cy, r, i, n)
		pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y))
	}
	return fmt.Sprintf(`<polygon points="%s" %s/>`+"\n", strings.Join(pts, " "), attrs)
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
