package kiviat

import (
	"strings"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New("t", []string{"a"}, []float64{0.5}); err != nil {
		t.Errorf("valid diagram rejected: %v", err)
	}
	if _, err := New("t", []string{"a", "b"}, []float64{0.5}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := New("t", nil, nil); err == nil {
		t.Error("empty diagram accepted")
	}
}

func TestASCIIContainsAxesAndLegend(t *testing.T) {
	d, err := New("demo", []string{"alpha", "beta", "gamma", "delta"},
		[]float64{0.2, 0.9, 0.5, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	out := d.ASCII(6)
	if !strings.Contains(out, "demo") {
		t.Error("title missing")
	}
	for _, lab := range []string{"alpha", "beta", "gamma", "delta"} {
		if !strings.Contains(out, lab) {
			t.Errorf("legend missing %q", lab)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("markers missing")
	}
	if strings.Count(out, "*") != 4 {
		t.Errorf("got %d value markers, want 4", strings.Count(out, "*"))
	}
}

func TestASCIIClampsValues(t *testing.T) {
	d, _ := New("", []string{"x", "y"}, []float64{-5, 42})
	out := d.ASCII(5)
	if !strings.Contains(out, "0.000") || !strings.Contains(out, "1.000") {
		t.Error("legend did not show clamped values")
	}
}

func TestSVGWellFormed(t *testing.T) {
	d, _ := New("plot <1>", []string{"a&b", "c"}, []float64{0.3, 0.8})
	svg := d.SVG(300)
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Error("not a complete SVG document")
	}
	if !strings.Contains(svg, "polygon") {
		t.Error("value polygon missing")
	}
	if strings.Contains(svg, "a&b") {
		t.Error("unescaped ampersand in SVG")
	}
	if !strings.Contains(svg, "a&amp;b") || !strings.Contains(svg, "&lt;1&gt;") {
		t.Error("escaping missing")
	}
}

func TestSVGMinimumSize(t *testing.T) {
	d, _ := New("", []string{"a", "b", "c"}, []float64{1, 1, 1})
	svg := d.SVG(10)
	if !strings.Contains(svg, `width="100"`) {
		t.Error("size floor not applied")
	}
}
