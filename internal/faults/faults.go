// Package faults is the repo's deterministic fault-injection harness:
// a small set of named injection points compiled into the REAL code
// paths of the durability and execution layers (ivstore's
// write/fsync/rename sequence, the worker pool's per-item dispatch),
// armed only by tests.
//
// Every dynamic occurrence of a point has a deterministic Address —
// the point's name, an optional discriminator key provided by the
// call site (a file's base name, a work-item index) and the
// occurrence ordinal among matching hits. A test first runs a
// pipeline in Record mode to enumerate the addresses it crosses, then
// replays the pipeline once per address with a fault armed there —
// the "kill at every injection point" discipline. Addresses are
// stable as long as the pipeline itself is deterministic (the
// durability tests run with one worker so dispatch order is, too; the
// key-addressed form is scheduling-independent and is what the
// concurrent tests use).
//
// When nothing is armed, every hook call is one atomic load
// (Enabled), so the instrumented paths cost nothing in production.
//
// The harness is process-internal by design: a "crash" is simulated
// by the injected failure (an error return, a torn half-write, a
// panic), after which the test abandons the in-memory state and
// re-opens the on-disk state from scratch — exactly what a process
// kill leaves behind, without needing a subprocess per point.
package faults

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Point names one injection site compiled into the real code.
type Point string

// The compiled-in injection points. The ivstore points cover every
// step of its atomic-write protocol (torn payload write, file fsync,
// rename, directory fsync) for both shards and the manifest; the pool
// point covers per-item worker execution (panics, slowness, plain
// failures).
const (
	// ShardWrite is the payload write of a shard's temp file.
	ShardWrite Point = "ivstore.shard.write"
	// ShardSync is the fsync of a shard's temp file before rename.
	ShardSync Point = "ivstore.shard.sync"
	// ShardRename is the rename of a shard temp file into place.
	ShardRename Point = "ivstore.shard.rename"
	// ManifestWrite is the payload write of the manifest's temp file.
	ManifestWrite Point = "ivstore.manifest.write"
	// ManifestSync is the fsync of the manifest temp file.
	ManifestSync Point = "ivstore.manifest.sync"
	// ManifestRename is the rename of the manifest into place.
	ManifestRename Point = "ivstore.manifest.rename"
	// DirSync is the store-directory fsync after a rename.
	DirSync Point = "ivstore.dir.sync"
	// PoolItem is one work item's execution on a pool worker.
	PoolItem Point = "pool.item"
)

// Kind is what an injected fault does at its point.
type Kind int

const (
	// Fail makes the operation return an injected error with no side
	// effects — an EIO-style clean failure.
	Fail Kind = iota
	// Torn makes a write-path operation persist only a prefix of its
	// bytes before failing — the on-disk shape of a crash (or a
	// short write that was never fsync'd) mid-write.
	Torn
	// Crash panics at the point — the in-process shape of a crashing
	// worker, exercised through the pool's real recovery machinery.
	Crash
	// Slow delays the point briefly, then lets it succeed — for
	// cancellation-promptness and drain tests.
	Slow
)

// String names the kind for error messages and test labels.
func (k Kind) String() string {
	switch k {
	case Fail:
		return "fail"
	case Torn:
		return "torn"
	case Crash:
		return "crash"
	case Slow:
		return "slow"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Address identifies one dynamic occurrence of a point: the Nth hit
// (0-based) whose discriminator matches Key ("" matches every key).
type Address struct {
	Point Point
	Key   string
	Nth   int
}

// String renders the address for test names.
func (a Address) String() string {
	if a.Key == "" {
		return fmt.Sprintf("%s#%d", a.Point, a.Nth)
	}
	return fmt.Sprintf("%s[%s]#%d", a.Point, a.Key, a.Nth)
}

// ErrInjected is the sentinel every injected failure wraps; tests
// distinguish injected faults from genuine ones with errors.Is.
var ErrInjected = errors.New("injected fault")

// SlowDelay is how long a Slow fault stalls its point.
const SlowDelay = 10 * time.Millisecond

// state is the armed plan or recorder. One at a time, tests only.
type state struct {
	mu     sync.Mutex
	addr   Address
	kind   Kind
	record bool
	counts map[Point]map[string]int // per point, per key occurrence counts
	hits   []Address                // record mode: every address crossed
	fired  int                      // times the armed fault actually fired
}

var (
	enabled atomic.Bool
	cur     struct {
		sync.Mutex
		s *state
	}
)

// Enabled reports whether a plan or recorder is armed. The
// instrumented code paths guard their Fire calls behind it, so the
// disarmed cost is one atomic load.
func Enabled() bool { return enabled.Load() }

// Arm installs a fault: the occurrence matching addr behaves as kind.
// It returns a disarm func that also reports how many times the fault
// fired (0 means the address was never reached). Only one plan or
// recorder may be armed at a time; Arm panics otherwise — the harness
// is for sequential tests, not concurrent suites.
func Arm(addr Address, kind Kind) (disarm func() int) {
	s := &state{addr: addr, kind: kind, counts: make(map[Point]map[string]int)}
	install(s)
	return func() int {
		uninstall(s)
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.fired
	}
}

// Record installs a recorder that never faults; the returned stop
// func disarms it and returns every address crossed, in hit order.
func Record() (stop func() []Address) {
	s := &state{record: true, counts: make(map[Point]map[string]int)}
	install(s)
	return func() []Address {
		uninstall(s)
		s.mu.Lock()
		defer s.mu.Unlock()
		return append([]Address(nil), s.hits...)
	}
}

func install(s *state) {
	cur.Lock()
	defer cur.Unlock()
	if cur.s != nil {
		panic("faults: a plan is already armed")
	}
	cur.s = s
	enabled.Store(true)
}

func uninstall(s *state) {
	cur.Lock()
	defer cur.Unlock()
	if cur.s == s {
		cur.s = nil
		enabled.Store(false)
	}
}

// Fire consults the armed plan at point p with discriminator key and
// reports the fault kind elected for this occurrence. Crash is
// handled here (the panic originates inside the instrumented
// operation, exactly where the real failure would); Slow sleeps and
// reports no fault. Call sites therefore only handle Fail and Torn.
// With nothing armed — the production state — Fire reports no fault;
// callers should guard with Enabled() to skip even the call.
func Fire(p Point, key string) (Kind, bool) {
	cur.Lock()
	s := cur.s
	cur.Unlock()
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	perKey := s.counts[p]
	if perKey == nil {
		perKey = make(map[string]int)
		s.counts[p] = perKey
	}
	nth := perKey[key]
	perKey[key]++
	if s.record {
		s.hits = append(s.hits, Address{Point: p, Key: key, Nth: nth})
		s.mu.Unlock()
		return 0, false
	}
	a := s.addr
	match := a.Point == p && (a.Key == "" || a.Key == key)
	if match {
		// Keyless addresses count occurrences across all keys; keyed
		// ones only among their own key's hits.
		if a.Key == "" {
			total := 0
			for _, n := range perKey {
				total += n
			}
			match = total-1 == a.Nth
		} else {
			match = nth == a.Nth
		}
	}
	if !match {
		s.mu.Unlock()
		return 0, false
	}
	s.fired++
	kind := s.kind
	s.mu.Unlock()
	switch kind {
	case Crash:
		panic(fmt.Sprintf("faults: injected crash at %s[%s]", p, key))
	case Slow:
		time.Sleep(SlowDelay)
		return 0, false
	}
	return kind, true
}

// Errorf builds the error an instrumented call site returns for an
// elected Fail or Torn fault, wrapping ErrInjected.
func Errorf(p Point, key string, kind Kind) error {
	return fmt.Errorf("%w: %s at %s[%s]", ErrInjected, kind, p, key)
}
