package faults

import (
	"errors"
	"sync"
	"testing"
)

func TestDisarmedFiresNothing(t *testing.T) {
	if Enabled() {
		t.Fatal("harness enabled with nothing armed")
	}
	if _, ok := Fire(ShardWrite, "x"); ok {
		t.Fatal("disarmed Fire elected a fault")
	}
}

func TestArmFiresExactOccurrence(t *testing.T) {
	disarm := Arm(Address{Point: ShardWrite, Nth: 2}, Fail)
	var hits []bool
	for i := 0; i < 5; i++ {
		_, ok := Fire(ShardWrite, "k")
		hits = append(hits, ok)
	}
	if n := disarm(); n != 1 {
		t.Fatalf("fault fired %d times, want 1", n)
	}
	want := []bool{false, false, true, false, false}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("hits = %v, want %v", hits, want)
		}
	}
}

func TestKeyedAddressCountsPerKey(t *testing.T) {
	disarm := Arm(Address{Point: PoolItem, Key: "b", Nth: 1}, Fail)
	defer disarm()
	seq := []struct {
		key  string
		want bool
	}{
		{"a", false}, // a#0
		{"b", false}, // b#0
		{"a", false}, // a#1
		{"b", true},  // b#1 <- armed
		{"b", false}, // b#2
	}
	for i, s := range seq {
		if _, ok := Fire(PoolItem, s.key); ok != s.want {
			t.Fatalf("hit %d (%s): fired=%v, want %v", i, s.key, ok, s.want)
		}
	}
}

func TestKeylessAddressCountsAcrossKeys(t *testing.T) {
	disarm := Arm(Address{Point: ShardSync, Nth: 2}, Fail)
	defer disarm()
	keys := []string{"a", "b", "c", "d"}
	var fired []string
	for _, k := range keys {
		if _, ok := Fire(ShardSync, k); ok {
			fired = append(fired, k)
		}
	}
	if len(fired) != 1 || fired[0] != "c" {
		t.Fatalf("fired at %v, want [c]", fired)
	}
}

func TestRecordEnumeratesAddresses(t *testing.T) {
	stop := Record()
	Fire(ShardWrite, "a")
	Fire(ShardWrite, "a")
	Fire(ShardRename, "a")
	Fire(ShardWrite, "b")
	got := stop()
	want := []Address{
		{ShardWrite, "a", 0},
		{ShardWrite, "a", 1},
		{ShardRename, "a", 0},
		{ShardWrite, "b", 0},
	}
	if len(got) != len(want) {
		t.Fatalf("recorded %d addresses, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("address %d = %v, want %v", i, got[i], want[i])
		}
	}
	if Enabled() {
		t.Fatal("recorder still enabled after stop")
	}
}

func TestCrashPanicsAtPoint(t *testing.T) {
	disarm := Arm(Address{Point: PoolItem, Nth: 0}, Crash)
	defer disarm()
	defer func() {
		if recover() == nil {
			t.Fatal("Crash fault did not panic")
		}
	}()
	Fire(PoolItem, "0")
}

func TestErrorfWrapsSentinel(t *testing.T) {
	err := Errorf(ShardWrite, "x", Torn)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Errorf result %v does not wrap ErrInjected", err)
	}
}

func TestDoubleArmPanics(t *testing.T) {
	disarm := Arm(Address{Point: ShardWrite}, Fail)
	defer disarm()
	defer func() {
		if recover() == nil {
			t.Fatal("second Arm did not panic")
		}
	}()
	Arm(Address{Point: ShardSync}, Fail)
}

// The counters are hit from concurrent pool workers; the harness must
// be race-free even when tests arm keyed addresses under parallelism.
func TestConcurrentFire(t *testing.T) {
	disarm := Arm(Address{Point: PoolItem, Key: "7", Nth: 0}, Fail)
	defer disarm()
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, ok := Fire(PoolItem, "7"); ok {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 1 {
		t.Fatalf("keyed Nth=0 fault fired %d times under concurrency, want exactly 1", fired)
	}
}
