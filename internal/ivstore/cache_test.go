package ivstore

import (
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"mica/internal/stats"
)

// TestCacheDefaultBudget: the default budget is the total decoded size
// for small stores, is clamped at the cap for huge inventories, and
// never drops below the largest single shard.
func TestCacheDefaultBudget(t *testing.T) {
	dims := 4
	small := []Shard{{Rows: 10}, {Rows: 20}}
	want := decodedShardBytes(10, dims) + decodedShardBytes(20, dims)
	if got := defaultCacheBudget(small, dims); got != want {
		t.Fatalf("small-store budget %d, want total %d", got, want)
	}
	huge := []Shard{{Rows: 1 << 28}, {Rows: 1 << 28}} // decoded far beyond the cap
	got := defaultCacheBudget(huge, dims)
	if largest := decodedShardBytes(1<<28, dims); got != largest {
		// Both shards exceed the cap, so the floor (one shard) wins.
		t.Fatalf("huge-store budget %d, want largest-shard floor %d", got, largest)
	}
	if got := defaultCacheBudget(nil, dims); got != 0 {
		t.Fatalf("empty-store budget %d, want 0", got)
	}
}

// TestCachedShardMatchesReadShard: cached reads are the same decoded
// bytes as direct reads, hits are served without re-decoding, and the
// stats counters account for every access.
func TestCachedShardMatchesReadShard(t *testing.T) {
	for _, enc := range []Encoding{Float32, Quant8} {
		t.Run(string(enc), func(t *testing.T) {
			st := buildStore(t, t.TempDir(), Config{Dims: 6, Encoding: enc}, []string{"a", "b", "c"}, 25)
			opened, err := Open(st.Dir())
			if err != nil {
				t.Fatal(err)
			}
			defer opened.Close()
			for i := range opened.Shards() {
				direct, err := opened.ReadShard(i)
				if err != nil {
					t.Fatal(err)
				}
				cached, err := opened.CachedShard(i)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(direct, cached) {
					t.Fatalf("shard %d: cached decode diverges from direct read", i)
				}
				again, err := opened.CachedShard(i)
				if err != nil {
					t.Fatal(err)
				}
				if again != cached {
					t.Fatalf("shard %d: second lookup did not hit the cache", i)
				}
			}
			cs := opened.CacheStats()
			if cs.Misses != 3 || cs.Decodes != 3 {
				t.Fatalf("stats %+v, want 3 misses / 3 decodes", cs)
			}
			if cs.Hits != 3 {
				t.Fatalf("stats %+v, want 3 hits", cs)
			}
			if cs.Evictions != 0 || cs.Bytes == 0 || cs.PeakBytes != cs.Bytes {
				t.Fatalf("stats %+v: unexpected eviction/byte accounting", cs)
			}
		})
	}
}

// TestCacheEviction: a budget that holds roughly one shard evicts in
// LRU order, the peak counter records the high-water mark, and the
// most recent shard always stays resident even when it alone exceeds
// the budget.
func TestCacheEviction(t *testing.T) {
	st := buildStore(t, t.TempDir(), Config{Dims: 8}, []string{"a", "b", "c"}, 40)
	opened, err := Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()
	// Budget of one byte: the keep-the-latest rule retains exactly the
	// most recent shard.
	opened.SetCacheBytes(1)
	if got := opened.CacheBytes(); got != 1 {
		t.Fatalf("budget %d after SetCacheBytes(1)", got)
	}
	for i := 0; i < 3; i++ {
		if _, err := opened.CachedShard(i); err != nil {
			t.Fatal(err)
		}
	}
	cs := opened.CacheStats()
	if cs.Evictions != 2 || cs.Misses != 3 {
		t.Fatalf("stats %+v, want 2 evictions over 3 misses", cs)
	}
	last, err := opened.ReadShard(2)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Bytes != decodedShardBytes(last.Vecs.Rows, last.Vecs.Cols) {
		t.Fatalf("resident bytes %d, want exactly the last shard", cs.Bytes)
	}
	// Re-touching shard 0 is a miss now (it was evicted)...
	if _, err := opened.CachedShard(0); err != nil {
		t.Fatal(err)
	}
	if cs := opened.CacheStats(); cs.Misses != 4 {
		t.Fatalf("stats %+v, want re-decode of evicted shard", cs)
	}
	// ...and resetting to the default budget holds everything again.
	opened.SetCacheBytes(0)
	for i := 0; i < 3; i++ {
		if _, err := opened.CachedShard(i); err != nil {
			t.Fatal(err)
		}
		if _, err := opened.CachedShard(i); err != nil {
			t.Fatal(err)
		}
	}
	cs = opened.CacheStats()
	if cs.Evictions != 0 || cs.Misses != 3 || cs.Hits != 3 {
		t.Fatalf("stats after default reset %+v", cs)
	}
}

// TestCacheLRUOrder: with room for two of three shards, the
// least-recently-used one is the casualty.
func TestCacheLRUOrder(t *testing.T) {
	st := buildStore(t, t.TempDir(), Config{Dims: 8}, []string{"a", "b", "c"}, 40)
	opened, err := Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()
	sizes := make([]int64, 3)
	for i := range sizes {
		sd, err := opened.ReadShard(i)
		if err != nil {
			t.Fatal(err)
		}
		sizes[i] = decodedShardBytes(sd.Vecs.Rows, sd.Vecs.Cols)
	}
	// Room for shards 0 and 2 together (shards differ in size, so the
	// budget is chosen to fit exactly the set that should survive).
	opened.SetCacheBytes(sizes[0] + sizes[2])
	opened.CachedShard(0)
	opened.CachedShard(1)
	opened.CachedShard(0) // refresh 0, making 1 the LRU victim
	opened.CachedShard(2) // evicts 1
	cs := opened.CacheStats()
	if cs.Evictions != 1 {
		t.Fatalf("stats %+v, want exactly one eviction", cs)
	}
	opened.CachedShard(0) // must still be a hit
	if cs := opened.CacheStats(); cs.Misses != 3 {
		t.Fatalf("stats %+v: LRU evicted the wrong shard", cs)
	}
}

// TestReaderUsesSharedCache: two Readers over one store share decodes
// — the second full scan is all cache hits — and rows keep matching
// the direct ReadShard decode bit for bit.
func TestReaderUsesSharedCache(t *testing.T) {
	st := buildStore(t, t.TempDir(), Config{Dims: 5}, []string{"a", "b"}, 30)
	opened, err := Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()
	r1, r2 := opened.Rows(), opened.Rows()
	for i := 0; i < opened.NumRows(); i++ {
		want := append([]float64(nil), r1.Row(i)...)
		if !reflect.DeepEqual(r2.Row(i), want) {
			t.Fatalf("row %d diverges between readers", i)
		}
	}
	cs := opened.CacheStats()
	if cs.Decodes != uint64(len(opened.Shards())) {
		t.Fatalf("stats %+v, want one decode per shard across both readers", cs)
	}
}

// TestCacheConcurrentReaders: many goroutines scanning and gathering
// through the shared cache under a tiny budget (constant eviction
// churn) stay bit-identical to a reference scan. Run with -race.
func TestCacheConcurrentReaders(t *testing.T) {
	st := buildStore(t, t.TempDir(), Config{Dims: 6}, []string{"a", "b", "c", "d"}, 30)
	opened, err := Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()
	n := opened.NumRows()
	ref := stats.NewMatrix(n, 6)
	refReader := opened.Rows()
	for i := 0; i < n; i++ {
		copy(ref.Row(i), refReader.Row(i))
	}
	sd, err := opened.ReadShard(0)
	if err != nil {
		t.Fatal(err)
	}
	opened.SetCacheBytes(decodedShardBytes(sd.Vecs.Rows, sd.Vecs.Cols)) // ~1 shard: force churn

	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := opened.Rows()
			if g%2 == 0 {
				for i := 0; i < n; i++ {
					if !reflect.DeepEqual(r.Row(i), ref.Row(i)) {
						errs <- "scan diverged"
						return
					}
				}
				return
			}
			idx := []int{n - 1, 0, n / 2, 1, n - 2, n / 3}
			dst := stats.NewMatrix(len(idx), 6)
			r.Gather(idx, dst)
			for j, i := range idx {
				if !reflect.DeepEqual(dst.Row(j), ref.Row(i)) {
					errs <- "gather diverged"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	cs := opened.CacheStats()
	if cs.Decodes != cs.Misses {
		t.Fatalf("stats %+v: in-flight dedup broken (decodes != misses)", cs)
	}
}

// TestCacheSingleflight: concurrent first touches of the same shard
// share one decode.
func TestCacheSingleflight(t *testing.T) {
	st := buildStore(t, t.TempDir(), Config{Dims: 5}, []string{"only"}, 200)
	opened, err := Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := opened.CachedShard(0); err != nil {
				t.Error(err)
			}
		}()
	}
	close(start)
	wg.Wait()
	cs := opened.CacheStats()
	if cs.Decodes != 1 {
		t.Fatalf("stats %+v, want exactly one decode for 16 concurrent readers", cs)
	}
	if cs.Hits+cs.Misses != 16 {
		t.Fatalf("stats %+v, want 16 accounted lookups", cs)
	}
}

// TestCacheFailedDecodeAccounting pins the error-path accounting:
// waiters that join an in-flight decode which then fails must receive
// the error and count as ErrorWaits (not Hits), and the failed attempt
// counts as a DecodeError (not a Decode), preserving the documented
// Decodes == Misses - DecodeErrors relation.
func TestCacheFailedDecodeAccounting(t *testing.T) {
	st := buildStore(t, t.TempDir(), Config{Dims: 4}, []string{"a"}, 10)
	opened, err := Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()

	c := opened.cacheHandle()
	realDecode := c.decode
	started := make(chan struct{})
	release := make(chan struct{})
	c.decode = func(i int) (*ShardData, error) {
		close(started)
		<-release
		return nil, errors.New("injected decode failure")
	}

	const joiners = 4
	var wg sync.WaitGroup
	errCh := make(chan error, joiners+1)
	wg.Add(1)
	go func() { // the decoding lookup
		defer wg.Done()
		_, err := opened.CachedShard(0)
		errCh <- err
	}()
	<-started // the entry is registered and its decode is in flight
	for g := 0; g < joiners; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := opened.CachedShard(0)
			errCh <- err
		}()
	}
	// Wait until every joiner has registered on the in-flight entry,
	// so all of them are classified on the error path.
	for {
		c.mu.Lock()
		e := c.entries[0]
		n := 0
		if e != nil {
			n = e.waiters
		}
		c.mu.Unlock()
		if n == joiners {
			break
		}
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err == nil {
			t.Fatal("a lookup joined the failed decode but got no error")
		}
	}
	cs := opened.CacheStats()
	if cs.Misses != 1 || cs.Decodes != 0 || cs.DecodeErrors != 1 {
		t.Fatalf("stats %+v, want 1 miss / 0 decodes / 1 decode error", cs)
	}
	if cs.Hits != 0 || cs.ErrorWaits != joiners {
		t.Fatalf("stats %+v, want 0 hits / %d error waits", cs, joiners)
	}

	// The failure is not cached: a retry decodes fresh and succeeds,
	// and the invariant holds across the mixed history.
	c.decode = realDecode
	if _, err := opened.CachedShard(0); err != nil {
		t.Fatalf("retry after failed decode: %v", err)
	}
	if _, err := opened.CachedShard(0); err != nil {
		t.Fatalf("cached retry: %v", err)
	}
	cs = opened.CacheStats()
	if cs.Misses != 2 || cs.Decodes != 1 || cs.DecodeErrors != 1 || cs.Hits != 1 {
		t.Fatalf("stats %+v, want 2 misses / 1 decode / 1 decode error / 1 hit", cs)
	}
	if cs.Decodes != cs.Misses-cs.DecodeErrors {
		t.Fatalf("stats %+v: Decodes != Misses - DecodeErrors", cs)
	}
}
