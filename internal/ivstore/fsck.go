package ivstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// quarantineExt is appended to a corrupt shard's file name when
// Repair moves it aside. Quarantined files are never pruned and never
// referenced; they exist for postmortems and are listed by Verify.
const quarantineExt = ".quarantined"

// ShardStatus is one manifest entry's verification outcome.
type ShardStatus struct {
	// Shard is the manifest entry.
	Shard Shard
	// Err is nil for a clean shard; otherwise the validation failure
	// (missing file, bad CRC, size mismatch, manifest disagreement).
	Err error
}

// FsckReport is the outcome of a Verify or Repair pass over a store.
type FsckReport struct {
	// Dir is the store directory.
	Dir string
	// Shards holds one status per manifest entry, manifest order.
	Shards []ShardStatus
	// OrphanTmps lists abandoned temp files (interrupted writes).
	OrphanTmps []string
	// OrphanShards lists shard files no manifest entry references.
	OrphanShards []string
	// Quarantines lists quarantined shard files present in the
	// directory (from this Repair or earlier ones).
	Quarantines []string
	// Quarantined lists the corrupt shards Repair moved aside this
	// pass (benchmark names).
	Quarantined []string
	// Removed lists the orphan files Repair deleted this pass.
	Removed []string
	// Warnings lists non-fatal problems encountered while repairing
	// (failed removals, failed quarantine renames).
	Warnings []string
}

// Clean reports whether the store needs no attention: every manifest
// shard validates and no crash artifacts (orphan temp or shard files)
// are present. Pre-existing quarantined files don't count against
// cleanliness — they are deliberate debris, already outside the
// store's referenced state.
func (r *FsckReport) Clean() bool {
	for _, st := range r.Shards {
		if st.Err != nil {
			return false
		}
	}
	return len(r.OrphanTmps) == 0 && len(r.OrphanShards) == 0
}

// Bad returns the benchmark names of manifest shards that failed
// validation.
func (r *FsckReport) Bad() []string {
	var bad []string
	for _, st := range r.Shards {
		if st.Err != nil {
			bad = append(bad, st.Shard.Name)
		}
	}
	return bad
}

// String renders a one-line-per-finding summary for CLI output.
func (r *FsckReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "store %s: %d shards", r.Dir, len(r.Shards))
	if r.Clean() && len(r.Quarantined) == 0 && len(r.Removed) == 0 {
		b.WriteString(", clean")
	}
	b.WriteString("\n")
	for _, st := range r.Shards {
		if st.Err != nil {
			fmt.Fprintf(&b, "  bad shard %s (%s): %v\n", st.Shard.Name, st.Shard.File, st.Err)
		}
	}
	for _, f := range r.OrphanTmps {
		fmt.Fprintf(&b, "  orphan temp file %s\n", f)
	}
	for _, f := range r.OrphanShards {
		fmt.Fprintf(&b, "  orphan shard file %s\n", f)
	}
	for _, n := range r.Quarantined {
		fmt.Fprintf(&b, "  quarantined %s\n", n)
	}
	for _, f := range r.Removed {
		fmt.Fprintf(&b, "  removed %s\n", f)
	}
	for _, w := range r.Warnings {
		fmt.Fprintf(&b, "  warning: %s\n", w)
	}
	return b.String()
}

// Verify checks an open committed store end to end: every manifest
// shard is read, CRC-validated and cross-checked against its manifest
// entry (rows, dims, instruction total), and the directory is scanned
// for crash artifacts. Read-only; the report says what Repair would
// act on.
func (s *Store) Verify() (*FsckReport, error) {
	if !s.committed {
		return nil, fmt.Errorf("ivstore: verifying %s: store has no committed manifest", s.dir)
	}
	return verifyDir(s.dir, s.cfg, s.shards)
}

// Verify checks the committed store in dir without holding it open:
// the manifest is loaded (and is itself validated), every shard is
// CRC-checked against its entry, and crash artifacts are listed. A
// directory with no manifest is an error (nothing committed to
// verify).
func Verify(dir string) (*FsckReport, error) {
	cfg, shards, err := Inventory(dir)
	if err != nil {
		return nil, err
	}
	return verifyDir(dir, cfg, shards)
}

// verifyDir is the shared checking pass behind both Verify forms.
func verifyDir(dir string, cfg Config, shards []Shard) (*FsckReport, error) {
	rep := &FsckReport{Dir: dir}
	referenced := make(map[string]bool, len(shards))
	for _, sh := range shards {
		referenced[sh.File] = true
		rep.Shards = append(rep.Shards, ShardStatus{Shard: sh, Err: checkShard(dir, cfg, sh)})
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ivstore: verifying %s: %w", dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		if !e.Type().IsRegular() {
			continue
		}
		switch {
		case strings.HasSuffix(name, shardExt+".tmp") || name == manifestName+".tmp":
			rep.OrphanTmps = append(rep.OrphanTmps, name)
		case strings.HasSuffix(name, shardExt) && !referenced[name]:
			rep.OrphanShards = append(rep.OrphanShards, name)
		case strings.HasSuffix(name, quarantineExt):
			rep.Quarantines = append(rep.Quarantines, name)
		}
	}
	return rep, nil
}

// checkShard validates one manifest entry against its file: the file
// must exist, decode (magic, size, CRC), and agree with the manifest
// on rows, dimensionality and total instruction count.
func checkShard(dir string, cfg Config, sh Shard) error {
	raw, err := os.ReadFile(filepath.Join(dir, sh.File))
	if err != nil {
		return err
	}
	insts, vecs, err := decodeShard(raw)
	if err != nil {
		return err
	}
	if vecs.Rows != sh.Rows || vecs.Cols != cfg.Dims {
		return fmt.Errorf("shard is %dx%d, manifest says %dx%d", vecs.Rows, vecs.Cols, sh.Rows, cfg.Dims)
	}
	var total uint64
	for _, n := range insts {
		total += n
	}
	if total != sh.Insts {
		return fmt.Errorf("shard holds %d instructions, manifest says %d", total, sh.Insts)
	}
	return nil
}

// Repair makes the committed store in dir consistent again after a
// crash or corruption: corrupt shards are quarantined (moved aside,
// preserving the bytes for postmortems) and dropped from the
// manifest, orphaned temp files are removed, and the repaired
// manifest is written with the full durability protocol. It takes the
// store's lock exclusive for the duration — live readers or writers
// make Repair fail fast rather than pull files from under them.
//
// After a successful Repair the store reopens cleanly, and an
// incremental rerun re-characterizes exactly the dropped benchmarks.
// A directory with no manifest is an error: there is nothing
// committed to repair (a crash before the first commit leaves only
// temp files, which the next build's Commit prunes).
func Repair(dir string) (*FsckReport, error) {
	cfg, shards, err := Inventory(dir)
	if err != nil {
		return nil, err
	}
	lk, err := acquireDirLock(dir, true)
	if err != nil {
		return nil, err
	}
	defer lk.release()

	rep, err := verifyDir(dir, cfg, shards)
	if err != nil {
		return nil, err
	}

	kept := make([]Shard, 0, len(shards))
	for _, st := range rep.Shards {
		if st.Err == nil {
			kept = append(kept, st.Shard)
			continue
		}
		// Quarantine the corrupt file if it exists; a missing file has
		// nothing to move.
		src := filepath.Join(dir, st.Shard.File)
		if _, statErr := os.Stat(src); statErr == nil {
			if mvErr := os.Rename(src, src+quarantineExt); mvErr != nil {
				rep.Warnings = append(rep.Warnings, fmt.Sprintf("quarantining %s: %v", st.Shard.File, mvErr))
			} else {
				rep.Quarantines = append(rep.Quarantines, st.Shard.File+quarantineExt)
			}
		}
		rep.Quarantined = append(rep.Quarantined, st.Shard.Name)
	}

	for _, name := range rep.OrphanTmps {
		if rmErr := os.Remove(filepath.Join(dir, name)); rmErr != nil {
			rep.Warnings = append(rep.Warnings, fmt.Sprintf("removing %s: %v", name, rmErr))
		} else {
			rep.Removed = append(rep.Removed, name)
		}
	}
	for _, name := range rep.OrphanShards {
		if rmErr := os.Remove(filepath.Join(dir, name)); rmErr != nil {
			rep.Warnings = append(rep.Warnings, fmt.Sprintf("removing %s: %v", name, rmErr))
		} else {
			rep.Removed = append(rep.Removed, name)
		}
	}

	if len(rep.Quarantined) > 0 {
		man := manifest{
			Version:    ManifestVersion,
			Dims:       cfg.Dims,
			Encoding:   cfg.Encoding,
			ConfigHash: cfg.ConfigHash,
			Shards:     kept,
		}
		data, err := json.MarshalIndent(man, "", " ")
		if err != nil {
			return nil, fmt.Errorf("ivstore: repairing %s: %w", dir, err)
		}
		path := filepath.Join(dir, manifestName)
		if err := writeFileDurable(path, append(data, '\n'), manifestPoints); err != nil {
			return nil, fmt.Errorf("ivstore: repairing %s: %w", dir, err)
		}
	}
	return rep, nil
}
