// Package ivstore implements the sharded, columnar, on-disk
// interval-vector store behind registry-scale joint phase analysis. A
// store is a directory holding one binary shard file per benchmark
// (that benchmark's interval characteristic vectors plus per-interval
// instruction counts) and a versioned JSON manifest recording the
// shard inventory, the vector dimensionality, the value encoding and
// the configuration hash the vectors were characterized under.
//
// The store exists so the joint clustering pipeline never has to
// materialize the registry-wide interval matrix (122 benchmarks x 10k+
// intervals x 47 columns) in memory: shards are appended one benchmark
// at a time as pipeline workers finish, and the read side streams rows
// shard-by-shard (Reader) through a shared byte-budgeted decoded-shard
// LRU (SetCacheBytes, CacheStats, CachedShard), so repeated clustering
// passes decode each shard once while peak memory stays within the
// budget, not the whole matrix. On unix, RowsMmap serves the same row
// contract straight from mmapped shard files — no decode buffers at
// all, page cache shared across processes — with a read-the-file
// fallback elsewhere.
//
// Two value encodings are supported. Float32 (the default) stores
// each value as an IEEE-754 single — half the bytes of the float64
// vectors it is fed, with a relative rounding error bounded by 2^-24.
// Quant8 stores one byte per value, linearly quantized per column
// against that shard column's [min, max] range; reconstruction error
// is bounded by half a quantization step, (max-min)/510 per value
// (Quant8MaxError), asserted in the package tests.
//
// The manifest's per-shard configuration hashes are what make reruns
// incremental: a caller re-characterizes only the benchmarks whose
// hash or membership changed and adopts the other shards in place
// (Adopt), then commits a manifest covering exactly the new set.
//
// Layout invariant: the global row order of a store is its manifest
// shard order — shard 0's rows first, then shard 1's, exactly the
// concatenation order of the in-memory joint path. Everything the
// differential tests pin (bit-identical joint vocabularies) leans on
// this.
//
// # Durability and failure contract
//
// Every file that can become referenced state — shard files and the
// manifest — is written with the full atomic protocol: payload to a
// temp name, fsync the file, rename into place, fsync the directory.
// A crash at any step therefore leaves either the old state or the
// new state under every committed name, never a torn file; the only
// crash artifacts are unreferenced temp files, which Commit's prune
// and Repair both clear. The fault-injection suite (internal/faults)
// kills a store build at every one of these steps and asserts the
// reopened store is Verify-clean or Repair-recoverable.
//
// A store directory is guarded by an advisory flock (".lock") with
// single-writer/multi-reader semantics: Create and Repair take it
// exclusive, Open takes it shared, and Commit downgrades the builder
// to shared once the manifest is published. Locks are advisory and
// released by Close (or process exit); a conflicting lock is an
// immediate error, never a silent wait.
//
// # Staleness contract
//
// A reader's view is the manifest snapshot it loaded at Open: Row,
// Gather, ReadShard and CachedShard keep serving that shard list even
// if a writer commits a newer manifest to the same directory. The
// snapshot stays readable because a committing writer that cannot
// upgrade its lock past live readers skips pruning ("prune skipped"
// warning) — superseded shard files remain on disk (and, for mmap
// readers on unix, an unlinked mapped file remains valid) until some
// later commit finds no readers holding the lock. Readers are
// therefore consistent but possibly stale; reopen the store to observe
// a newer commit. Decoded shards cached before a re-commit are dropped
// from the cache, never served against the new shard list.
//
// Verify checks a committed store end to end (every shard decoded and
// CRC-checked against its manifest entry, orphan files listed);
// Repair additionally quarantines corrupt shards, drops them from the
// manifest and removes orphaned temp files, after which an
// incremental rerun re-characterizes exactly the dropped benchmarks.
//
// All errors are ordinary wrapped errors naming the store, shard or
// file involved; no API panics on corrupt input (fuzzed), and the
// only panicking paths are the streaming Reader's Row and Gather,
// whose cluster-engine contract requires a pre-validated store — the
// RowErr/GatherErr variants serve the same rows with ordinary errors
// for consumers (serving handlers) that must survive a corrupt shard.
package ivstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"mica/internal/faults"
	"mica/internal/stats"
)

// ManifestVersion is the on-disk format version of the store manifest.
// Open refuses a manifest carrying a different stamp; unknown extra
// JSON fields are tolerated (forward-compatible additions).
const ManifestVersion = 1

// manifestName is the manifest's file name inside the store directory.
const manifestName = "manifest.json"

// shardExt is the extension of shard files; Commit prunes files with
// this extension that no manifest entry references.
const shardExt = ".ivs"

// Encoding names a shard value encoding.
type Encoding string

const (
	// Float32 stores each value as an IEEE-754 single (the default).
	Float32 Encoding = "float32"
	// Quant8 stores one byte per value, linearly quantized per shard
	// column; see Quant8MaxError for the reconstruction bound.
	Quant8 Encoding = "quant8"
)

// valid reports whether e names a known encoding.
func (e Encoding) valid() bool { return e == Float32 || e == Quant8 }

// Config parameterizes a new store.
type Config struct {
	// Dims is the number of columns per row (the characteristic
	// dimensionality). Required.
	Dims int
	// Encoding selects the shard value encoding; the zero value means
	// Float32.
	Encoding Encoding
	// ConfigHash stamps the characterization configuration the vectors
	// are produced under (callers hash their own config). Shards whose
	// stamp no longer matches are what incremental reruns rebuild.
	ConfigHash string
}

// WithDefaults returns c with zero fields replaced by the documented
// defaults — the normalized form stores are created under and the
// form Config{} must match (regression-tested).
func (c Config) WithDefaults() Config {
	if c.Encoding == "" {
		c.Encoding = Float32
	}
	return c
}

// Shard is one manifest entry: a benchmark's rows and where they live.
type Shard struct {
	// Name is the benchmark the shard holds intervals for.
	Name string `json:"name"`
	// File is the shard's file name inside the store directory (a base
	// name, never a path).
	File string `json:"file"`
	// Rows is the shard's row (interval) count.
	Rows int `json:"rows"`
	// Insts is the total dynamic instruction count across the shard's
	// intervals (the per-row counts live in the shard file).
	Insts uint64 `json:"insts"`
	// ConfigHash is the characterization stamp the shard was written
	// under.
	ConfigHash string `json:"config_hash,omitempty"`
}

// manifest is the JSON document persisted as manifest.json.
type manifest struct {
	Version    int      `json:"version"`
	Dims       int      `json:"dims"`
	Encoding   Encoding `json:"encoding"`
	ConfigHash string   `json:"config_hash,omitempty"`
	Shards     []Shard  `json:"shards"`
}

// Store is an interval-vector store rooted at one directory. A store
// is either committed (opened from a manifest, fully readable) or
// building (created empty; WriteShard/Adopt stage shards until Commit
// writes the manifest and makes it readable).
type Store struct {
	dir string
	cfg Config

	mu     sync.Mutex
	staged map[string]Shard // by benchmark name, awaiting Commit
	lk     *dirLock         // advisory store lock; nil after Close

	committed bool
	shards    []Shard
	offsets   []int // len(shards)+1 cumulative row starts

	cacheBytes int64       // requested cache budget; <=0 means default
	cache      *shardCache // shared decoded-shard LRU, built on first use

	mapsMu sync.Mutex
	maps   []*mappedShard // lazily mapped shards, index-aligned with shards
}

// Create prepares an empty store under dir (creating the directory if
// needed) with the given configuration, taking the directory's
// advisory lock exclusive — a second concurrent writer (or a live
// reader) is an immediate error. Nothing is readable until Commit; an
// existing manifest in dir is left untouched until then, so a failed
// build never destroys the previous committed state. Close releases
// the lock.
func Create(dir string, cfg Config) (*Store, error) {
	cfg = cfg.WithDefaults()
	if cfg.Dims <= 0 {
		return nil, fmt.Errorf("ivstore: creating %s: dims %d must be positive", dir, cfg.Dims)
	}
	if !cfg.Encoding.valid() {
		return nil, fmt.Errorf("ivstore: creating %s: unknown encoding %q", dir, cfg.Encoding)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ivstore: creating %s: %w", dir, err)
	}
	lk, err := acquireDirLock(dir, true)
	if err != nil {
		return nil, err
	}
	return &Store{dir: dir, cfg: cfg, staged: make(map[string]Shard), lk: lk}, nil
}

// Open loads a committed store's manifest from dir and validates it,
// taking the directory's advisory lock shared, so no writer can prune
// files from under the reader. Shard files are checked for existence;
// their contents are validated on read (every shard file carries its
// own CRC). Close releases the lock.
func Open(dir string) (*Store, error) {
	cfg, shards, err := Inventory(dir)
	if err != nil {
		return nil, err
	}
	lk, err := acquireDirLock(dir, false)
	if err != nil {
		return nil, err
	}
	for _, sh := range shards {
		if _, err := os.Stat(filepath.Join(dir, sh.File)); err != nil {
			lk.release()
			return nil, fmt.Errorf("ivstore: %s: shard %s: %w", filepath.Join(dir, manifestName), sh.Name, err)
		}
	}
	st := &Store{
		dir:       dir,
		cfg:       cfg,
		staged:    make(map[string]Shard),
		committed: true,
		shards:    shards,
		lk:        lk,
	}
	st.offsets = offsetsOf(shards)
	return st, nil
}

// Close releases the store's advisory lock. The Store's read methods
// keep working (reads are plain file opens), but the store is no
// longer protected from a concurrent writer's prune, and WriteShard /
// Commit must not be used after Close. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	lk := s.lk
	s.lk = nil
	if s.cache != nil {
		s.cache.mu.Lock()
		metCacheBytes.Add(-float64(s.cache.bytes))
		s.cache.mu.Unlock()
	}
	s.cache = nil
	s.mu.Unlock()
	err := lk.release()
	if merr := s.unmapAll(); err == nil {
		err = merr
	}
	return err
}

// Inventory reads and validates a store's manifest without requiring
// the shard files to be present — the reuse-side entry point of
// incremental rebuilds, where a vanished shard file means only that
// benchmark gets re-characterized (Adopt re-checks each file), not
// that the whole store is unusable.
func Inventory(dir string) (Config, []Shard, error) {
	path := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, nil, err
	}
	man, err := decodeManifest(path, data)
	if err != nil {
		return Config{}, nil, err
	}
	return Config{Dims: man.Dims, Encoding: man.Encoding, ConfigHash: man.ConfigHash}, man.Shards, nil
}

// decodeManifest parses and validates a manifest document (path is
// used in error messages only — filesystem checks stay in Open, so
// the fuzz target can drive this on raw bytes). A malformed manifest
// is always an error, never a panic.
func decodeManifest(path string, data []byte) (manifest, error) {
	var man manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return man, fmt.Errorf("ivstore: decoding %s: %w", path, err)
	}
	if man.Version != ManifestVersion {
		return man, fmt.Errorf("ivstore: %s: manifest version %d, want %d", path, man.Version, ManifestVersion)
	}
	if man.Dims <= 0 {
		return man, fmt.Errorf("ivstore: %s: dims %d must be positive", path, man.Dims)
	}
	if !man.Encoding.valid() {
		return man, fmt.Errorf("ivstore: %s: unknown encoding %q", path, man.Encoding)
	}
	seen := make(map[string]bool, len(man.Shards))
	for i, sh := range man.Shards {
		if sh.Name == "" {
			return man, fmt.Errorf("ivstore: %s: shard %d has no benchmark name", path, i)
		}
		if seen[sh.Name] {
			return man, fmt.Errorf("ivstore: %s: duplicate shard for %s", path, sh.Name)
		}
		seen[sh.Name] = true
		if sh.File == "" || sh.File != filepath.Base(sh.File) || sh.File == "." || sh.File == ".." {
			return man, fmt.Errorf("ivstore: %s: shard %s has invalid file name %q", path, sh.Name, sh.File)
		}
		if sh.Rows <= 0 {
			return man, fmt.Errorf("ivstore: %s: shard %s has %d rows", path, sh.Name, sh.Rows)
		}
	}
	return man, nil
}

func offsetsOf(shards []Shard) []int {
	offsets := make([]int, len(shards)+1)
	for i, sh := range shards {
		offsets[i+1] = offsets[i] + sh.Rows
	}
	return offsets
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Dims returns the per-row column count.
func (s *Store) Dims() int { return s.cfg.Dims }

// Encoding returns the store's value encoding.
func (s *Store) Encoding() Encoding { return s.cfg.Encoding }

// ConfigHash returns the store-level characterization stamp.
func (s *Store) ConfigHash() string { return s.cfg.ConfigHash }

// Shards returns the committed shard inventory in row order.
func (s *Store) Shards() []Shard { return s.shards }

// NumRows returns the committed store's total row count.
func (s *Store) NumRows() int {
	if len(s.offsets) == 0 {
		return 0
	}
	return s.offsets[len(s.offsets)-1]
}

// Benchmarks returns the committed shard names in row order.
func (s *Store) Benchmarks() []string {
	names := make([]string, len(s.shards))
	for i, sh := range s.shards {
		names[i] = sh.Name
	}
	return names
}

// ShardIndex returns the committed shard index holding name's rows,
// or false if the store has no shard for that benchmark.
func (s *Store) ShardIndex(name string) (int, bool) {
	for i, sh := range s.shards {
		if sh.Name == name {
			return i, true
		}
	}
	return 0, false
}

// RowRange returns the half-open global row interval [start, end) of
// committed shard i — the rows Reader serves for that benchmark.
func (s *Store) RowRange(i int) (start, end int) {
	return s.offsets[i], s.offsets[i+1]
}

// ShardFileName maps a benchmark name and a configuration stamp to
// the shard's deterministic file name: the sanitized name plus a
// short hash of (name, stamp). Hashing the stamp in means a rebuild
// under a different configuration or encoding writes DIFFERENT files
// — it can never clobber the shards a previously committed manifest
// still references, so an interrupted rebuild leaves the old store
// fully readable. (The sanitized prefix alone could collide between
// distinct benchmarks; the hash cannot.)
func ShardFileName(name, stamp string) string {
	sum := sha256.Sum256([]byte(name + "\x00" + stamp))
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String() + "-" + hex.EncodeToString(sum[:4]) + shardExt
}

// stamp is the configuration discriminator baked into shard file
// names: hash and encoding together, since either changing invalidates
// the bytes on disk.
func (s *Store) stamp() string { return s.cfg.ConfigHash + "\x00" + string(s.cfg.Encoding) }

// WriteShard encodes one benchmark's intervals as a shard file and
// stages it for Commit. insts[i] is interval i's dynamic instruction
// count; vecs row i is its characteristic vector. Safe for concurrent
// use — pipeline workers write shards as they finish.
func (s *Store) WriteShard(name string, insts []uint64, vecs *stats.Matrix) error {
	if name == "" {
		return fmt.Errorf("ivstore: writing shard: empty benchmark name")
	}
	if vecs == nil || vecs.Rows == 0 {
		return fmt.Errorf("ivstore: writing shard %s: no rows", name)
	}
	if vecs.Cols != s.cfg.Dims {
		return fmt.Errorf("ivstore: writing shard %s: %d columns, store has %d", name, vecs.Cols, s.cfg.Dims)
	}
	if len(insts) != vecs.Rows {
		return fmt.Errorf("ivstore: writing shard %s: %d interval counts for %d rows", name, len(insts), vecs.Rows)
	}
	data := encodeShard(s.cfg.Encoding, insts, vecs)
	file := ShardFileName(name, s.stamp())
	// Durable atomic write (tmp + fsync + rename + dir fsync) so a
	// crash at any step can never leave a torn file under a name a
	// manifest might reference, and a completed write survives the
	// crash.
	path := filepath.Join(s.dir, file)
	if err := writeFileDurable(path, data, shardPoints); err != nil {
		return fmt.Errorf("ivstore: writing shard %s: %w", name, err)
	}
	var total uint64
	for _, n := range insts {
		total += n
	}
	sh := Shard{Name: name, File: file, Rows: vecs.Rows, Insts: total, ConfigHash: s.cfg.ConfigHash}
	s.mu.Lock()
	s.staged[name] = sh
	s.mu.Unlock()
	return nil
}

// Adopt stages an existing shard (typically copied from a previously
// committed manifest of the same directory) without rewriting its
// file — the reuse path of incremental reruns. The shard file must
// exist and the entry's stamp must match the store's configuration.
func (s *Store) Adopt(sh Shard) error {
	if sh.ConfigHash != s.cfg.ConfigHash {
		return fmt.Errorf("ivstore: adopting shard %s: config hash %q does not match store %q",
			sh.Name, sh.ConfigHash, s.cfg.ConfigHash)
	}
	if sh.File == "" || sh.File != filepath.Base(sh.File) {
		return fmt.Errorf("ivstore: adopting shard %s: invalid file name %q", sh.Name, sh.File)
	}
	if _, err := os.Stat(filepath.Join(s.dir, sh.File)); err != nil {
		return fmt.Errorf("ivstore: adopting shard %s: %w", sh.Name, err)
	}
	s.mu.Lock()
	s.staged[sh.Name] = sh
	s.mu.Unlock()
	return nil
}

// Staged reports whether a shard for name is staged for Commit.
func (s *Store) Staged(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.staged[name]
	return ok
}

// Commit writes the manifest covering exactly the named shards, in
// that order (which becomes the store's global row order), atomically
// and durably replacing any previous manifest, and prunes shard files
// no entry references. Every name must have been staged via
// WriteShard or Adopt.
//
// The returned warnings report prune problems — files Commit tried to
// remove but could not, or a prune skipped because readers hold the
// store's lock. Warnings never accompany a non-nil error and never
// affect the committed state: a stray file costs disk, not
// correctness, but callers (and the fsck report) get to see it.
//
// After a successful Commit the builder's exclusive lock is
// downgraded to shared, so the store it just published can be opened
// by concurrent readers while the builder is still live.
func (s *Store) Commit(order []string) (warnings []string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	man := manifest{
		Version:    ManifestVersion,
		Dims:       s.cfg.Dims,
		Encoding:   s.cfg.Encoding,
		ConfigHash: s.cfg.ConfigHash,
		Shards:     make([]Shard, 0, len(order)),
	}
	seen := make(map[string]bool, len(order))
	for _, name := range order {
		if seen[name] {
			// The read side (decodeManifest) rejects duplicate names, so
			// committing one would produce a store that can never be
			// reopened.
			return nil, fmt.Errorf("ivstore: committing %s: duplicate shard %s in commit order", s.dir, name)
		}
		seen[name] = true
		sh, ok := s.staged[name]
		if !ok {
			return nil, fmt.Errorf("ivstore: committing %s: no shard staged for %s", s.dir, name)
		}
		man.Shards = append(man.Shards, sh)
	}
	data, err := json.MarshalIndent(man, "", " ")
	if err != nil {
		return nil, fmt.Errorf("ivstore: committing %s: %w", s.dir, err)
	}
	path := filepath.Join(s.dir, manifestName)
	if err := writeFileDurable(path, append(data, '\n'), manifestPoints); err != nil {
		return nil, fmt.Errorf("ivstore: committing %s: %w", s.dir, err)
	}
	s.committed = true
	s.shards = man.Shards
	s.offsets = offsetsOf(man.Shards)
	// The committed inventory changed: drop the decoded-shard cache and
	// any mmapped views keyed to the previous shard list.
	s.cache = nil
	defer s.unmapAll()
	warnings = s.pruneLocked()
	if err := s.lk.downgrade(); err != nil {
		warnings = append(warnings, err.Error())
	}
	return warnings, nil
}

// pruneLocked removes files no committed entry references — shards of
// benchmarks dropped from the set, of re-encoded or re-configured
// runs (whose shards live under different stamped names), and
// abandoned .tmp files of interrupted writes. It requires the
// exclusive lock (no reader may be streaming the files it deletes);
// when the lock is held shared — a re-commit on an already-published
// store with live readers — the prune is skipped with a warning
// instead of yanking files from under them. Removal failures are
// returned as warnings: a stray file costs disk, not correctness.
func (s *Store) pruneLocked() (warnings []string) {
	if s.lk != nil && !s.lk.exclusive {
		if err := s.lk.upgradeNB(); err != nil {
			return []string{fmt.Sprintf("prune skipped: %v", err)}
		}
	}
	referenced := make(map[string]bool, len(s.shards))
	for _, sh := range s.shards {
		referenced[sh.File] = true
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return []string{fmt.Sprintf("prune skipped: listing %s: %v", s.dir, err)}
	}
	for _, e := range entries {
		name := e.Name()
		if !e.Type().IsRegular() || !strayFile(name, referenced) {
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
			warnings = append(warnings, fmt.Sprintf("pruning %s: %v", name, err))
		}
	}
	return warnings
}

// strayFile reports whether a directory entry is prunable: an
// unreferenced shard, an abandoned shard temp file, or an abandoned
// manifest temp file. The lock file, the manifest and quarantined
// shards are never stray.
func strayFile(name string, referenced map[string]bool) bool {
	return strings.HasSuffix(name, shardExt) && !referenced[name] ||
		strings.HasSuffix(name, shardExt+".tmp") ||
		name == manifestName+".tmp"
}

// durablePoints names the fault-injection points of one
// writeFileDurable call chain.
type durablePoints struct {
	write, sync, rename faults.Point
}

var (
	shardPoints    = durablePoints{faults.ShardWrite, faults.ShardSync, faults.ShardRename}
	manifestPoints = durablePoints{faults.ManifestWrite, faults.ManifestSync, faults.ManifestRename}
)

// writeFileDurable writes data to path with the store's full
// durability protocol: payload to path+".tmp", fsync the file, rename
// into place, fsync the parent directory. A crash (or injected fault)
// at any step leaves either the old file or the new file under path —
// never a torn one — plus at worst an unreferenced temp file, which
// prune and Repair clear. Each step carries a fault-injection point;
// a Torn fault persists only half the payload before failing, the
// on-disk shape of a crash mid-write.
func writeFileDurable(path string, data []byte, pts durablePoints) error {
	key := filepath.Base(path)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	payload := data
	var injected error
	if faults.Enabled() {
		if kind, ok := faults.Fire(pts.write, key); ok {
			injected = faults.Errorf(pts.write, key, kind)
			if kind == faults.Torn {
				payload = data[:len(data)/2]
			} else {
				payload = nil
			}
		}
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		return err
	}
	if injected != nil {
		// Simulated crash mid-write: the (possibly partial) bytes were
		// never synced and the rename never happens.
		f.Close()
		return injected
	}
	if faults.Enabled() {
		if kind, ok := faults.Fire(pts.sync, key); ok {
			f.Close()
			return faults.Errorf(pts.sync, key, kind)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if faults.Enabled() {
		if kind, ok := faults.Fire(pts.rename, key); ok {
			return faults.Errorf(pts.rename, key, kind)
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if faults.Enabled() {
		if kind, ok := faults.Fire(faults.DirSync, key); ok {
			return faults.Errorf(faults.DirSync, key, kind)
		}
	}
	return syncDir(filepath.Dir(path))
}

// ShardData is one decoded shard.
type ShardData struct {
	// Name is the benchmark the rows belong to.
	Name string
	// Insts[i] is interval i's dynamic instruction count.
	Insts []uint64
	// Vecs holds the interval vectors, one row per interval, decoded to
	// float64.
	Vecs *stats.Matrix
}

// Starts returns the intervals' starting instruction numbers (the
// prefix sums of Insts — intervals are contiguous by construction).
func (d *ShardData) Starts() []uint64 {
	starts := make([]uint64, len(d.Insts))
	var acc uint64
	for i, n := range d.Insts {
		starts[i] = acc
		acc += n
	}
	return starts
}

// ReadShard decodes committed shard i.
func (s *Store) ReadShard(i int) (*ShardData, error) {
	if i < 0 || i >= len(s.shards) {
		return nil, fmt.Errorf("ivstore: shard index %d out of range [0, %d)", i, len(s.shards))
	}
	sh := s.shards[i]
	path := filepath.Join(s.dir, sh.File)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ivstore: reading shard %s: %w", sh.Name, err)
	}
	insts, vecs, err := decodeShard(raw)
	if err != nil {
		return nil, fmt.Errorf("ivstore: %s: %w", path, err)
	}
	if vecs.Rows != sh.Rows || vecs.Cols != s.cfg.Dims {
		return nil, fmt.Errorf("ivstore: %s: shard is %dx%d, manifest says %dx%d",
			path, vecs.Rows, vecs.Cols, sh.Rows, s.cfg.Dims)
	}
	return &ShardData{Name: sh.Name, Insts: insts, Vecs: vecs}, nil
}

// Reader streams a committed store's rows in global row order. Row(i)
// resolves shards through the store's shared byte-budgeted LRU
// (CachedShard) and pins the current shard locally, so sequential
// scans pay one cache lookup per shard transition, repeated passes hit
// shards already decoded by any reader, and peak memory is bounded by
// the cache budget plus each live reader's pinned shard. Concurrent
// consumers (sweep workers) take one Reader each via Store.Rows.
//
// Reader implements the cluster engines' row-source contract (Len,
// Dim, Row, Gather). The store's files must not be mutated while a
// Reader is live. Row and Gather panic if a shard fails to decode
// mid-stream, since the cluster engines have no error channel — Open
// and the callers' initial full pass surface genuine corruption as
// ordinary errors first. Consumers that can report errors (a serving
// handler answering one request among many) should use RowErr and
// GatherErr instead, which degrade a corrupt shard to an error on the
// affected read.
type Reader struct {
	st   *Store
	cur  int // pinned shard index, -1 when empty
	data *ShardData
}

// Rows returns a fresh streaming row source over the committed store.
func (s *Store) Rows() *Reader { return &Reader{st: s, cur: -1} }

// Len returns the total row count.
func (r *Reader) Len() int { return r.st.NumRows() }

// Dim returns the column count.
func (r *Reader) Dim() int { return r.st.Dims() }

// Row returns global row i, valid until the next Row or Gather call.
// It panics if the shard holding i fails to decode; error-aware
// consumers should use RowErr.
func (r *Reader) Row(i int) []float64 {
	row, err := r.RowErr(i)
	if err != nil {
		panic(fmt.Sprintf("ivstore: streaming read: %v", err))
	}
	return row
}

// RowErr returns global row i, valid until the next Row, RowErr,
// Gather, or GatherErr call. A shard that fails to decode mid-stream
// is reported as an error rather than a panic, so a serving boundary
// can fail the one affected query and keep running.
func (r *Reader) RowErr(i int) ([]float64, error) {
	s := r.shardOf(i)
	if s != r.cur {
		if err := r.load(s); err != nil {
			return nil, err
		}
	}
	return r.data.Vecs.Row(i - r.st.offsets[s]), nil
}

// shardOf locates the shard holding global row i.
func (r *Reader) shardOf(i int) int {
	offs := r.st.offsets
	// sort.Search returns the first shard whose end exceeds i.
	return sort.Search(len(offs)-1, func(s int) bool { return offs[s+1] > i })
}

func (r *Reader) load(s int) error {
	data, err := r.st.CachedShard(s)
	if err != nil {
		return err
	}
	r.cur, r.data = s, data
	return nil
}

// Gather copies the rows named by idx into dst in caller order,
// visiting each distinct shard once per call (reads are executed in
// row order) — the batched random-access path of minibatch k-means.
// It panics if a shard fails to decode; error-aware consumers should
// use GatherErr.
func (r *Reader) Gather(idx []int, dst *stats.Matrix) {
	if err := r.GatherErr(idx, dst); err != nil {
		panic(fmt.Sprintf("ivstore: streaming read: %v", err))
	}
}

// GatherErr copies the rows named by idx into dst in caller order,
// visiting each distinct shard once per call, reporting a mid-stream
// decode failure as an error instead of panicking.
func (r *Reader) GatherErr(idx []int, dst *stats.Matrix) error {
	order := make([]int, len(idx))
	for j := range order {
		order[j] = j
	}
	sort.Slice(order, func(a, b int) bool { return idx[order[a]] < idx[order[b]] })
	for _, j := range order {
		row, err := r.RowErr(idx[j])
		if err != nil {
			return err
		}
		copy(dst.Row(j), row)
	}
	return nil
}
