package ivstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"path/filepath"
	"sort"

	"mica/internal/stats"
)

// mappedShard is a validated, read-only view of one shard file's raw
// bytes — an mmap on unix, a byte slice read from the file elsewhere
// (mapFile decides). Rows are assembled on demand from the columnar
// payload, so a mapped shard costs file-backed pages instead of a
// private decode buffer, and those pages are shared with every other
// process mapping the same store.
type mappedShard struct {
	raw    []byte
	mapped bool // raw came from mmap and needs unmapping
	rows   int
	cols   int
	enc    byte
	// Quant8 per-column scales, decoded once at map time (empty for
	// float32).
	mins  []float64
	steps []float64
}

// openMappedShard maps path and validates it exactly like decodeShard
// (magic, encoding byte, header-implied size, trailing CRC, quant8
// scale finiteness) plus the manifest cross-checks ReadShard performs
// (row/column counts, store encoding). The CRC pass streams the whole
// file once at map time; after that, reads touch only the pages the
// requested rows live on.
func openMappedShard(path string, wantRows, wantCols int, enc Encoding) (*mappedShard, error) {
	raw, mapped, err := mapFile(path)
	if err != nil {
		return nil, fmt.Errorf("ivstore: mapping %s: %w", path, err)
	}
	m := &mappedShard{raw: raw, mapped: mapped}
	if err := m.validate(); err != nil {
		m.close()
		return nil, fmt.Errorf("ivstore: %s: %w", path, err)
	}
	if m.rows != wantRows || m.cols != wantCols {
		m.close()
		return nil, fmt.Errorf("ivstore: %s: shard is %dx%d, manifest says %dx%d",
			path, m.rows, m.cols, wantRows, wantCols)
	}
	if m.enc != encByte(enc) {
		m.close()
		return nil, fmt.Errorf("ivstore: %s: shard encoding byte %d does not match store encoding %q",
			path, m.enc, enc)
	}
	return m, nil
}

// validate checks the mapped bytes against the shard format, mirroring
// decodeShard's validation sequence without materializing the rows.
func (m *mappedShard) validate() error {
	raw := m.raw
	if len(raw) < shardHdrSize+4 {
		return fmt.Errorf("shard truncated at %d bytes", len(raw))
	}
	if string(raw[:8]) != shardMagic {
		return fmt.Errorf("bad shard magic %q", raw[:8])
	}
	enc := raw[8]
	if enc != encByteFloat32 && enc != encByteQuant8 {
		return fmt.Errorf("unknown shard encoding byte %d", enc)
	}
	rows := uint64(binary.LittleEndian.Uint32(raw[12:16]))
	cols := uint64(binary.LittleEndian.Uint32(raw[16:20]))
	if rows == 0 || cols == 0 {
		return fmt.Errorf("empty shard (%d rows x %d cols)", rows, cols)
	}
	payload, ok := payloadSize(enc, rows, cols)
	if !ok || payload > math.MaxUint64-(shardHdrSize+8*rows+4) {
		return fmt.Errorf("shard header implies an impossible size (%d rows x %d cols)", rows, cols)
	}
	want := shardHdrSize + 8*rows + payload + 4
	if uint64(len(raw)) != want {
		return fmt.Errorf("shard is %d bytes, header implies %d (%d rows x %d cols)",
			len(raw), want, rows, cols)
	}
	body, sum := raw[:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return fmt.Errorf("shard checksum %08x does not match stored %08x", got, sum)
	}
	m.rows, m.cols, m.enc = int(rows), int(cols), enc
	if enc == encByteQuant8 {
		m.mins = make([]float64, cols)
		m.steps = make([]float64, cols)
		base := uint64(shardHdrSize) + 8*rows
		for j := uint64(0); j < cols; j++ {
			colBase := base + j*(16+rows)
			lo := math.Float64frombits(binary.LittleEndian.Uint64(raw[colBase : colBase+8]))
			step := math.Float64frombits(binary.LittleEndian.Uint64(raw[colBase+8 : colBase+16]))
			if !isFinite(lo) || !isFinite(step) || step < 0 {
				return fmt.Errorf("column %d has invalid quantization scale (min %v, step %v)", j, lo, step)
			}
			m.mins[j], m.steps[j] = lo, step
		}
	}
	return nil
}

// inst returns interval i's dynamic instruction count.
func (m *mappedShard) inst(i int) uint64 {
	return binary.LittleEndian.Uint64(m.raw[shardHdrSize+8*i:])
}

// rowInto assembles row i from the columnar payload into dst
// (len(dst) >= cols), producing exactly the values decodeShard would.
func (m *mappedShard) rowInto(i int, dst []float64) {
	base := shardHdrSize + 8*m.rows
	if m.enc == encByteQuant8 {
		perCol := 16 + m.rows
		off := base + 16 + i
		for j := 0; j < m.cols; j++ {
			dst[j] = m.mins[j] + float64(m.raw[off])*m.steps[j]
			off += perCol
		}
		return
	}
	off := base + 4*i
	stride := 4 * m.rows
	for j := 0; j < m.cols; j++ {
		dst[j] = float64(math.Float32frombits(binary.LittleEndian.Uint32(m.raw[off : off+4])))
		off += stride
	}
}

// close releases the mapping (a no-op for byte-slice fallbacks).
func (m *mappedShard) close() error {
	if !m.mapped || m.raw == nil {
		return nil
	}
	raw := m.raw
	m.raw, m.mapped = nil, false
	return unmapFile(raw)
}

// mappedShardAt returns committed shard i's mapping, establishing it
// on first use. Mappings are shared by all of the store's MmapReaders
// and released by Close.
func (s *Store) mappedShardAt(i int) (*mappedShard, error) {
	if i < 0 || i >= len(s.shards) {
		return nil, fmt.Errorf("ivstore: shard index %d out of range [0, %d)", i, len(s.shards))
	}
	s.mapsMu.Lock()
	defer s.mapsMu.Unlock()
	if s.maps == nil {
		s.maps = make([]*mappedShard, len(s.shards))
	}
	if m := s.maps[i]; m != nil {
		return m, nil
	}
	sh := s.shards[i]
	m, err := openMappedShard(filepath.Join(s.dir, sh.File), sh.Rows, s.cfg.Dims, s.cfg.Encoding)
	if err != nil {
		return nil, err
	}
	s.maps[i] = m
	return m, nil
}

// unmapAll releases every established shard mapping.
func (s *Store) unmapAll() error {
	s.mapsMu.Lock()
	maps := s.maps
	s.maps = nil
	s.mapsMu.Unlock()
	var errs []error
	for _, m := range maps {
		if m != nil {
			if err := m.close(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}

// MmapReader streams a committed store's rows straight from mapped
// shard files: Row assembles the requested row from the columnar
// payload into a per-reader buffer, so no shard is ever decoded into a
// private float64 matrix. Mappings are established per shard on first
// touch and shared across the store's readers; page residency is
// managed by the OS, so the memory cost is file-backed cache pages,
// not heap.
//
// MmapReader implements the same row-source contract as Reader (Len,
// Dim, Row, Gather) with the same validity rule — a returned row is
// valid until the next Row or Gather call on that reader — and the
// same panic-on-corruption contract for mid-stream failures. Rows are
// bit-identical to Reader's (differential-tested for both encodings).
type MmapReader struct {
	st  *Store
	buf []float64
}

// RowsMmap returns a streaming row source over mapped shard files,
// establishing (and validating) every shard's mapping up front so
// corruption surfaces here as an error rather than a mid-stream panic.
// On non-unix platforms the mapping degrades to reading each shard
// file into memory once, behind the same contract.
func (s *Store) RowsMmap() (*MmapReader, error) {
	for i := range s.shards {
		if _, err := s.mappedShardAt(i); err != nil {
			return nil, err
		}
	}
	return &MmapReader{st: s, buf: make([]float64, s.cfg.Dims)}, nil
}

// Len returns the total row count.
func (r *MmapReader) Len() int { return r.st.NumRows() }

// Dim returns the column count.
func (r *MmapReader) Dim() int { return r.st.Dims() }

// Row returns global row i, valid until the next Row or Gather call.
func (r *MmapReader) Row(i int) []float64 {
	s := r.shardOf(i)
	m, err := r.st.mappedShardAt(s)
	if err != nil {
		panic(fmt.Sprintf("ivstore: mmap read: %v", err))
	}
	m.rowInto(i-r.st.offsets[s], r.buf)
	return r.buf
}

// shardOf locates the shard holding global row i.
func (r *MmapReader) shardOf(i int) int {
	offs := r.st.offsets
	return sort.Search(len(offs)-1, func(s int) bool { return offs[s+1] > i })
}

// Gather copies the rows named by idx into dst in caller order; with
// mapped shards random access needs no read-order sorting.
func (r *MmapReader) Gather(idx []int, dst *stats.Matrix) {
	for j, i := range idx {
		s := r.shardOf(i)
		m, err := r.st.mappedShardAt(s)
		if err != nil {
			panic(fmt.Sprintf("ivstore: mmap read: %v", err))
		}
		m.rowInto(i-r.st.offsets[s], dst.Row(j))
	}
}
