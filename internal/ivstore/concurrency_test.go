package ivstore

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"mica/internal/stats"
)

// TestConcurrentReadersDuringCommitWithPrune exercises the staleness
// contract documented in the package comment: multiple shared-flock
// Readers keep serving Row and Gather from their Open-time manifest
// snapshot while a writer re-creates the store and runs Commit — whose
// prune must be skipped (the readers hold the shared lock), so the
// snapshot's files stay on disk and every concurrent read stays
// bit-identical to the pre-commit reference. Run with -race.
func TestConcurrentReadersDuringCommitWithPrune(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dims: 5, ConfigHash: "v1"}
	buildStore(t, dir, cfg, []string{"a", "b", "c"}, 30)

	// Two independent reader handles, each holding the lock shared.
	readers := make([]*Store, 2)
	for i := range readers {
		opened, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer opened.Close()
		readers[i] = opened
	}
	n := readers[0].NumRows()
	ref := stats.NewMatrix(n, 5)
	refReader := readers[0].Rows()
	for i := 0; i < n; i++ {
		copy(ref.Row(i), refReader.Row(i))
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, rd := range readers {
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(rd *Store, g int) {
				defer wg.Done()
				r := rd.Rows()
				idx := []int{n - 1, 0, n / 2, 3}
				dst := stats.NewMatrix(len(idx), 5)
				for {
					select {
					case <-stop:
						return
					default:
					}
					if g%2 == 0 {
						for i := 0; i < n; i++ {
							if !reflect.DeepEqual(r.Row(i), ref.Row(i)) {
								t.Errorf("reader scan diverged at row %d during commit", i)
								return
							}
						}
					} else {
						r.Gather(idx, dst)
						for j, i := range idx {
							if !reflect.DeepEqual(dst.Row(j), ref.Row(i)) {
								t.Errorf("reader gather diverged at row %d during commit", i)
								return
							}
						}
					}
				}
			}(rd, g)
		}
	}

	// Writer: Create would fail while readers hold the lock shared, so
	// the writer takes the legitimate re-commit path — a builder that
	// committed once (downgraded to shared) stages a replacement set
	// and commits again over the published store.
	recommit, err := openForRecommit(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	insts, m := synthShard(18, 5, 77)
	if err := recommit.WriteShard("d", insts, m); err != nil {
		t.Fatal(err)
	}
	warnings, err := recommit.Commit([]string{"d"})
	if err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	// The prune must have been skipped: readers hold the shared lock.
	found := false
	for _, w := range warnings {
		if strings.Contains(w, "prune skipped") {
			found = true
		}
	}
	if !found {
		t.Fatalf("commit warnings %q do not report the skipped prune", warnings)
	}
	// The superseded files are still on disk, so the stale snapshots
	// keep reading cleanly even after the commit.
	for _, rd := range readers {
		r := rd.Rows()
		for i := 0; i < n; i++ {
			if !reflect.DeepEqual(r.Row(i), ref.Row(i)) {
				t.Fatalf("stale snapshot row %d unreadable after commit", i)
			}
		}
	}
	// A fresh Open observes the new manifest.
	if err := recommit.Close(); err != nil {
		t.Fatal(err)
	}
	fresh, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if got := fresh.Benchmarks(); !reflect.DeepEqual(got, []string{"d"}) {
		t.Fatalf("fresh open sees %v, want the re-committed set", got)
	}
}

// openForRecommit builds a writer handle that skips the exclusive
// Create lock, modeling a builder that already downgraded to shared
// after a first commit and is staging a follow-up while readers are
// live. It shares the lock with the readers exactly as a re-commit on
// a published store does.
func openForRecommit(dir string, cfg Config) (*Store, error) {
	st, err := Open(dir)
	if err != nil {
		return nil, err
	}
	// Open loads the committed state with a shared lock; staging and
	// committing on this handle is the re-commit scenario (Commit's
	// pruneLocked will fail to upgrade past the other readers).
	st.cfg = cfg.WithDefaults()
	return st, nil
}
