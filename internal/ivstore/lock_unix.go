//go:build unix

package ivstore

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockName is the advisory lock file inside a store directory. The
// file exists only to carry flock state; its contents are empty and
// it is never pruned.
const lockName = ".lock"

// dirLock is a BSD flock(2) advisory lock on a store directory's
// lock file, implementing the store's single-writer/multi-reader
// protocol: builders (Create, Repair) hold it exclusive, readers
// (Open) hold it shared, and a committing builder downgrades to
// shared so the store it just published can be opened concurrently.
// Locks are per open file description, so two Store values in one
// process contend exactly like two processes do.
type dirLock struct {
	f         *os.File
	exclusive bool
}

// acquireDirLock takes the directory's advisory lock, non-blocking: a
// held conflicting lock is an immediate, descriptive error rather
// than a silent wait, so a second writer (or a reader racing a
// builder) fails fast.
func acquireDirLock(dir string, exclusive bool) (*dirLock, error) {
	path := filepath.Join(dir, lockName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ivstore: locking %s: %w", dir, err)
	}
	how := syscall.LOCK_SH
	role := "readers"
	if exclusive {
		how = syscall.LOCK_EX
		role = "a writer"
	}
	if err := syscall.Flock(int(f.Fd()), how|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("ivstore: %s is in use (flock as %s failed): %w — another process (or an unclosed Store) holds the store; close it or wait", dir, role, err)
	}
	return &dirLock{f: f, exclusive: exclusive}, nil
}

// downgrade converts an exclusive lock to shared, letting readers in
// while the holder keeps writer-exclusion out of the way.
func (l *dirLock) downgrade() error {
	if l == nil || l.f == nil || !l.exclusive {
		return nil
	}
	if err := syscall.Flock(int(l.f.Fd()), syscall.LOCK_SH); err != nil {
		return fmt.Errorf("ivstore: downgrading store lock: %w", err)
	}
	l.exclusive = false
	return nil
}

// upgradeNB tries to convert a shared lock to exclusive without
// blocking; it fails when other readers hold the lock.
func (l *dirLock) upgradeNB() error {
	if l == nil || l.f == nil {
		return nil
	}
	if l.exclusive {
		return nil
	}
	if err := syscall.Flock(int(l.f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		return fmt.Errorf("ivstore: upgrading store lock: %w", err)
	}
	l.exclusive = true
	return nil
}

// release drops the lock. Safe to call more than once.
func (l *dirLock) release() error {
	if l == nil || l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	// Closing the descriptor releases the flock.
	return f.Close()
}

// syncDir fsyncs a directory so a completed rename inside it is
// durable — without this, a crash can forget the rename itself even
// though the renamed file's bytes were synced.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
