//go:build !unix

package ivstore

// lockName is the advisory lock file inside a store directory.
const lockName = ".lock"

// dirLock is a no-op on platforms without flock(2): the
// single-writer/multi-reader protocol is not enforced there, only
// documented. All of the repo's supported targets are unix.
type dirLock struct{ exclusive bool }

func acquireDirLock(dir string, exclusive bool) (*dirLock, error) {
	return &dirLock{exclusive: exclusive}, nil
}

func (l *dirLock) downgrade() error { return nil }
func (l *dirLock) upgradeNB() error { return nil }
func (l *dirLock) release() error   { return nil }

// syncDir is a no-op where directory fsync is unsupported; file-level
// syncs still run.
func syncDir(dir string) error { return nil }
