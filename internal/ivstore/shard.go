package ivstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"math/bits"

	"mica/internal/stats"
)

// Shard file layout (all integers little-endian):
//
//	offset 0   magic "MICAIVS1" (8 bytes)
//	offset 8   encoding byte (0 = float32, 1 = quant8)
//	offset 9   3 reserved bytes (zero)
//	offset 12  rows  uint32
//	offset 16  cols  uint32
//	offset 20  insts: rows x uint64 (per-interval instruction counts)
//	then       payload, column-major ("columnar"):
//	             float32: cols blocks of rows x float32
//	             quant8:  per column: min float64, step float64,
//	                      then rows x uint8
//	end        crc32 (IEEE) over every preceding byte, uint32
//
// The columnar layout is what makes per-column quantization scales
// natural and keeps same-metric values adjacent on disk. Decoding
// validates the magic, the encoding byte, the exact file length
// implied by the header (computed in 64-bit arithmetic, so oversized
// or truncated headers fail before any allocation) and the trailing
// CRC; a corrupt file is always an error, never a panic.

const (
	shardMagic     = "MICAIVS1"
	shardHdrSize   = 20
	encByteFloat32 = 0 // float32
	encByteQuant8  = 1
)

func encByte(e Encoding) byte {
	if e == Quant8 {
		return encByteQuant8
	}
	return encByteFloat32
}

// payloadSize returns the payload byte count for a rows x cols shard
// under enc, and whether that count is representable without uint64
// overflow — a crafted header whose implied size wraps around must be
// rejected, not allowed to alias a small file's length.
func payloadSize(enc byte, rows, cols uint64) (uint64, bool) {
	if enc == encByteQuant8 {
		perCol := 16 + rows
		if perCol < rows {
			return 0, false
		}
		hi, lo := bits.Mul64(cols, perCol)
		return lo, hi == 0
	}
	hi, lo := bits.Mul64(rows, cols)
	if hi != 0 {
		return 0, false
	}
	hi, lo = bits.Mul64(lo, 4)
	return lo, hi == 0
}

// encodeShard serializes one shard.
func encodeShard(e Encoding, insts []uint64, vecs *stats.Matrix) []byte {
	rows, cols := uint64(vecs.Rows), uint64(vecs.Cols)
	enc := encByte(e)
	payload, _ := payloadSize(enc, rows, cols) // real matrices cannot overflow
	size := shardHdrSize + 8*rows + payload + 4
	buf := make([]byte, 0, size)
	buf = append(buf, shardMagic...)
	buf = append(buf, enc, 0, 0, 0)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rows))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(cols))
	for _, n := range insts {
		buf = binary.LittleEndian.AppendUint64(buf, n)
	}
	switch enc {
	case encByteQuant8:
		for j := 0; j < vecs.Cols; j++ {
			lo, hi := columnRange(vecs, j)
			step := (hi - lo) / 255
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(lo))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(step))
			for i := 0; i < vecs.Rows; i++ {
				buf = append(buf, quantize(vecs.At(i, j), lo, step))
			}
		}
	default:
		for j := 0; j < vecs.Cols; j++ {
			for i := 0; i < vecs.Rows; i++ {
				buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(vecs.At(i, j))))
			}
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

func columnRange(m *stats.Matrix, j int) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := 0; i < m.Rows; i++ {
		v := m.At(i, j)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// quantize maps v into [0, 255] against (lo, step). A zero step
// (constant column) stores 0; decode then reproduces lo exactly.
func quantize(v, lo, step float64) byte {
	if step <= 0 {
		return 0
	}
	q := math.Round((v - lo) / step)
	if q < 0 {
		q = 0
	}
	if q > 255 {
		q = 255
	}
	return byte(q)
}

// Quant8MaxError returns the per-value reconstruction error bound of
// the Quant8 encoding for a column spanning [lo, hi]: half a
// quantization step, (hi-lo)/510.
func Quant8MaxError(lo, hi float64) float64 { return (hi - lo) / 510 }

// decodeShard parses and validates one shard file, returning the
// per-interval instruction counts and the row-major float64 vector
// matrix.
func decodeShard(raw []byte) (insts []uint64, vecs *stats.Matrix, err error) {
	if len(raw) < shardHdrSize+4 {
		return nil, nil, fmt.Errorf("shard truncated at %d bytes", len(raw))
	}
	if string(raw[:8]) != shardMagic {
		return nil, nil, fmt.Errorf("bad shard magic %q", raw[:8])
	}
	enc := raw[8]
	if enc != encByteFloat32 && enc != encByteQuant8 {
		return nil, nil, fmt.Errorf("unknown shard encoding byte %d", enc)
	}
	rows := uint64(binary.LittleEndian.Uint32(raw[12:16]))
	cols := uint64(binary.LittleEndian.Uint32(raw[16:20]))
	if rows == 0 || cols == 0 {
		return nil, nil, fmt.Errorf("empty shard (%d rows x %d cols)", rows, cols)
	}
	// rows and cols come off the wire as uint32, so 8*rows below cannot
	// overflow; the payload product can, and payloadSize reports it.
	payload, ok := payloadSize(enc, rows, cols)
	if !ok || payload > math.MaxUint64-(shardHdrSize+8*rows+4) {
		return nil, nil, fmt.Errorf("shard header implies an impossible size (%d rows x %d cols)", rows, cols)
	}
	want := shardHdrSize + 8*rows + payload + 4
	if uint64(len(raw)) != want {
		return nil, nil, fmt.Errorf("shard is %d bytes, header implies %d (%d rows x %d cols)",
			len(raw), want, rows, cols)
	}
	body, sum := raw[:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, nil, fmt.Errorf("shard checksum %08x does not match stored %08x", got, sum)
	}

	insts = make([]uint64, rows)
	off := uint64(shardHdrSize)
	for i := range insts {
		insts[i] = binary.LittleEndian.Uint64(raw[off : off+8])
		off += 8
	}
	vecs = stats.NewMatrix(int(rows), int(cols))
	switch enc {
	case encByteQuant8:
		for j := uint64(0); j < cols; j++ {
			lo := math.Float64frombits(binary.LittleEndian.Uint64(raw[off : off+8]))
			step := math.Float64frombits(binary.LittleEndian.Uint64(raw[off+8 : off+16]))
			off += 16
			if !isFinite(lo) || !isFinite(step) || step < 0 {
				return nil, nil, fmt.Errorf("column %d has invalid quantization scale (min %v, step %v)", j, lo, step)
			}
			for i := uint64(0); i < rows; i++ {
				vecs.Set(int(i), int(j), lo+float64(raw[off])*step)
				off++
			}
		}
	default:
		for j := uint64(0); j < cols; j++ {
			for i := uint64(0); i < rows; i++ {
				bits := binary.LittleEndian.Uint32(raw[off : off+4])
				vecs.Set(int(i), int(j), float64(math.Float32frombits(bits)))
				off += 4
			}
		}
	}
	return insts, vecs, nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
