//go:build unix

package ivstore

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// mapFile maps path read-only. The returned bool reports whether the
// bytes are an mmap that must be released with unmapFile; on unix it
// is always true for non-empty files. An empty file maps to an empty
// slice without a mapping (mmap of length 0 is an error on Linux, and
// shard validation rejects it anyway with a proper message).
func mapFile(path string) ([]byte, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	size := fi.Size()
	if size == 0 {
		return []byte{}, false, nil
	}
	if size > math.MaxInt32 && ^uint(0)>>32 == 0 {
		return nil, false, fmt.Errorf("file is %d bytes, too large to map on a 32-bit platform", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, fmt.Errorf("mmap: %w", err)
	}
	return data, true, nil
}

// unmapFile releases a mapping produced by mapFile.
func unmapFile(data []byte) error {
	return syscall.Munmap(data)
}
