package ivstore

import "mica/internal/obs"

// Decoded-shard cache metrics on the default registry. Counters sum
// across every store opened by the process; the byte gauges track the
// aggregate resident footprint (and its high-water mark) so a server
// hosting several stores sees its total cache pressure.
var (
	metCacheHits       = obs.Default().Counter("mica_ivstore_cache_hits_total", "Shard lookups served from the decoded-shard cache.")
	metCacheMisses     = obs.Default().Counter("mica_ivstore_cache_misses_total", "Shard lookups that initiated a decode.")
	metCacheDecodes    = obs.Default().Counter("mica_ivstore_cache_decodes_total", "Shard decodes that succeeded.")
	metCacheDecodeErrs = obs.Default().Counter("mica_ivstore_cache_decode_errors_total", "Shard decode attempts that failed.")
	metCacheErrWaits   = obs.Default().Counter("mica_ivstore_cache_error_waits_total", "Lookups that joined an in-flight decode which failed.")
	metCacheEvictions  = obs.Default().Counter("mica_ivstore_cache_evictions_total", "Shards evicted to stay within the cache budget.")
	metCacheBytes      = obs.Default().Gauge("mica_ivstore_cache_bytes", "Decoded bytes resident across all shard caches.")
	metCachePeakBytes  = obs.Default().Gauge("mica_ivstore_cache_peak_bytes", "High-water mark of resident decoded bytes.")
)
