package ivstore

import (
	"sync"
	"testing"

	"mica/internal/stats"
)

// referenceRows decodes every shard directly (bypassing the cache) and
// returns the store's rows in global row order, the comparison oracle
// for the concurrent readers below.
func referenceRows(t *testing.T, st *Store) [][]float64 {
	t.Helper()
	ref := make([][]float64, 0, st.NumRows())
	for i := range st.Shards() {
		data, err := st.ReadShard(i)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < data.Vecs.Rows; r++ {
			row := make([]float64, data.Vecs.Cols)
			copy(row, data.Vecs.Row(r))
			ref = append(ref, row)
		}
	}
	return ref
}

func rowsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStoreConcurrentReadersStress drives N goroutines, each with its
// own Reader doing full scans plus Gather batches over one shared
// store (run under -race in CI). Phase one asserts the singleflight
// property — exactly one decode per shard no matter how many readers
// race on first touch — and the CacheStats invariants. Phase two keeps
// the same traffic running while SetCacheBytes concurrently resets and
// re-budgets the cache, asserting rows stay bit-identical to the
// direct-read oracle and the final counters still satisfy the
// documented relations.
func TestStoreConcurrentReadersStress(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e", "f"}
	st := buildStore(t, t.TempDir(), Config{Dims: 8}, names, 40)
	opened, err := Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()
	ref := referenceRows(t, opened)

	scan := func(g int) error {
		r := opened.Rows()
		for i := 0; i < r.Len(); i++ {
			row, err := r.RowErr(i)
			if err != nil {
				return err
			}
			if !rowsEqual(row, ref[i]) {
				t.Errorf("reader %d: row %d diverges from direct read", g, i)
				return nil
			}
		}
		// A strided Gather that touches every shard in one call.
		idx := make([]int, 0, r.Len()/7+1)
		for i := g % 7; i < r.Len(); i += 7 {
			idx = append(idx, i)
		}
		dst := stats.NewMatrix(len(idx), opened.Dims())
		if err := r.GatherErr(idx, dst); err != nil {
			return err
		}
		for j, i := range idx {
			if !rowsEqual(dst.Row(j), ref[i]) {
				t.Errorf("reader %d: gathered row %d diverges", g, i)
				return nil
			}
		}
		return nil
	}

	// Phase one: all readers race on a cold cache.
	const readers = 8
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			if err := scan(g); err != nil {
				t.Error(err)
			}
		}(g)
	}
	close(start)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	cs := opened.CacheStats()
	if cs.Decodes != uint64(len(names)) {
		t.Fatalf("stats %+v, want exactly one decode per shard (%d)", cs, len(names))
	}
	if cs.DecodeErrors != 0 || cs.ErrorWaits != 0 {
		t.Fatalf("stats %+v: spurious error-path counters", cs)
	}
	if cs.Decodes != cs.Misses-cs.DecodeErrors {
		t.Fatalf("stats %+v: Decodes != Misses - DecodeErrors", cs)
	}
	if cs.Evictions != 0 || cs.Bytes > cs.BudgetBytes || cs.PeakBytes < cs.Bytes {
		t.Fatalf("stats %+v: byte accounting out of bounds", cs)
	}

	// Phase two: the same traffic with concurrent cache resets. Every
	// SetCacheBytes drops the cache mid-flight; readers must keep
	// serving bit-identical rows from whichever cache generation they
	// land on.
	stop := make(chan struct{})
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := scan(g); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	budgets := []int64{1, 0, decodedShardBytes(40, 8) * 2, 0}
	for i := 0; i < 24; i++ {
		opened.SetCacheBytes(budgets[i%len(budgets)])
	}
	close(stop)
	wg.Wait()
	final := opened.CacheStats()
	if final.Decodes != final.Misses-final.DecodeErrors {
		t.Fatalf("final stats %+v: Decodes != Misses - DecodeErrors", final)
	}
	if final.DecodeErrors != 0 {
		t.Fatalf("final stats %+v: decode errors under healthy store", final)
	}
	if final.PeakBytes < final.Bytes {
		t.Fatalf("final stats %+v: peak below resident bytes", final)
	}
}
