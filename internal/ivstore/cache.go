package ivstore

import (
	"container/list"
	"sync"
)

// defaultCacheCap bounds the default decoded-shard cache budget. A
// store whose fully decoded size fits under this cap caches every
// shard (so repeated clustering passes decode each shard exactly once,
// like the in-memory path); a larger store keeps the hottest shards up
// to the cap.
const defaultCacheCap = 1 << 30 // 1 GiB

// cacheOverheadBytes is the accounting overhead charged per cached
// shard on top of its decoded vectors and instruction counts (headers,
// slice descriptors, list/map bookkeeping).
const cacheOverheadBytes = 128

// CacheStats is a snapshot of the decoded-shard cache's counters.
type CacheStats struct {
	// BudgetBytes is the cache's byte budget.
	BudgetBytes int64
	// Bytes is the decoded bytes currently held.
	Bytes int64
	// PeakBytes is the largest value Bytes has reached.
	PeakBytes int64
	// Hits counts lookups served from cache (including lookups that
	// waited on another reader's in-flight decode of the same shard).
	Hits uint64
	// Misses counts lookups that had to decode the shard.
	Misses uint64
	// Decodes counts actual shard decodes; with the cache's in-flight
	// deduplication this equals Misses even under concurrent readers.
	Decodes uint64
	// Evictions counts shards dropped to stay within budget.
	Evictions uint64
}

// decodedShardBytes estimates the resident size of a decoded shard:
// the float64 vector matrix plus the per-interval instruction counts.
func decodedShardBytes(rows, dims int) int64 {
	return int64(rows)*int64(dims)*8 + int64(rows)*8 + cacheOverheadBytes
}

// defaultCacheBudget sizes the cache for a committed shard inventory:
// the total decoded size clamped to defaultCacheCap, floored at the
// largest single shard so sequential scans never thrash on a budget
// too small to hold their working row.
func defaultCacheBudget(shards []Shard, dims int) int64 {
	var total, largest int64
	for _, sh := range shards {
		b := decodedShardBytes(sh.Rows, dims)
		total += b
		if b > largest {
			largest = b
		}
	}
	budget := total
	if budget > defaultCacheCap {
		budget = defaultCacheCap
	}
	if budget < largest {
		budget = largest
	}
	return budget
}

// cacheEntry is one shard's slot in the cache. A just-inserted entry
// has a nil elem and an open ready channel while its owner decodes;
// waiters block on ready and then read data/err. Entries that fail to
// decode are not retained (the next lookup retries).
type cacheEntry struct {
	shard int
	data  *ShardData
	err   error
	bytes int64
	ready chan struct{}
	elem  *list.Element // LRU position; nil while decoding
}

// shardCache is a byte-budgeted LRU over decoded shards, shared by all
// of a committed store's readers. Lookups of the same shard are
// deduplicated: one reader decodes while the rest wait on the entry,
// so N concurrent scans cost one decode per shard, not N. Evicted
// ShardData stays valid for readers still holding it (it is immutable
// and garbage-collected once unreferenced).
type shardCache struct {
	st *Store

	mu        sync.Mutex
	budget    int64
	bytes     int64
	peak      int64
	hits      uint64
	misses    uint64
	decodes   uint64
	evictions uint64
	entries   map[int]*cacheEntry
	lru       *list.List // front = most recently used
}

func newShardCache(st *Store, budget int64) *shardCache {
	if budget <= 0 {
		budget = defaultCacheBudget(st.shards, st.cfg.Dims)
	}
	return &shardCache{
		st:      st,
		budget:  budget,
		entries: make(map[int]*cacheEntry),
		lru:     list.New(),
	}
}

// get returns decoded shard i, from cache or by decoding it.
func (c *shardCache) get(i int) (*ShardData, error) {
	c.mu.Lock()
	if e, ok := c.entries[i]; ok {
		c.hits++
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		c.mu.Unlock()
		<-e.ready
		return e.data, e.err
	}
	e := &cacheEntry{shard: i, ready: make(chan struct{})}
	c.entries[i] = e
	c.misses++
	c.mu.Unlock()

	data, err := c.st.ReadShard(i)

	c.mu.Lock()
	c.decodes++
	e.data, e.err = data, err
	if err != nil {
		// Do not cache failures: a transient read error must not pin
		// the shard unreadable for the cache's lifetime.
		delete(c.entries, i)
	} else {
		e.bytes = decodedShardBytes(data.Vecs.Rows, data.Vecs.Cols)
		c.bytes += e.bytes
		if c.bytes > c.peak {
			c.peak = c.bytes
		}
		e.elem = c.lru.PushFront(e)
		c.evictLocked()
	}
	c.mu.Unlock()
	close(e.ready)
	return data, err
}

// evictLocked drops least-recently-used entries until the cache is
// within budget, always retaining the most recent entry so a single
// over-budget shard still caches (and scans over it do not thrash).
func (c *shardCache) evictLocked() {
	for c.bytes > c.budget && c.lru.Len() > 1 {
		back := c.lru.Back()
		e := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		e.elem = nil
		delete(c.entries, e.shard)
		c.bytes -= e.bytes
		c.evictions++
	}
}

// stats returns a snapshot of the cache counters.
func (c *shardCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		BudgetBytes: c.budget,
		Bytes:       c.bytes,
		PeakBytes:   c.peak,
		Hits:        c.hits,
		Misses:      c.misses,
		Decodes:     c.decodes,
		Evictions:   c.evictions,
	}
}

// cache returns the store's shared decoded-shard cache, creating it on
// first use with the default budget (or the budget set by
// SetCacheBytes before first use).
func (s *Store) cacheHandle() *shardCache {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache == nil {
		s.cache = newShardCache(s, s.cacheBytes)
	}
	return s.cache
}

// SetCacheBytes sets the decoded-shard cache's byte budget. A
// non-positive n selects the default (the full decoded store size
// clamped to 1 GiB, floored at the largest shard). Any cached shards
// are dropped, so the call also serves as a cache reset; counters
// restart from zero.
func (s *Store) SetCacheBytes(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cacheBytes = n
	s.cache = nil
}

// CacheBytes reports the decoded-shard cache's byte budget (resolving
// the default if the cache has not been sized explicitly).
func (s *Store) CacheBytes() int64 {
	return s.cacheHandle().budget
}

// CacheStats snapshots the decoded-shard cache counters.
func (s *Store) CacheStats() CacheStats {
	return s.cacheHandle().stats()
}

// CachedShard returns decoded committed shard i through the store's
// shared byte-budgeted LRU cache. The returned ShardData is immutable
// and remains valid after eviction; concurrent callers of the same
// shard share one decode. Use ReadShard to bypass the cache (fsck and
// verification paths, which must re-read the file).
func (s *Store) CachedShard(i int) (*ShardData, error) {
	return s.cacheHandle().get(i)
}
