package ivstore

import (
	"container/list"
	"sync"
)

// defaultCacheCap bounds the default decoded-shard cache budget. A
// store whose fully decoded size fits under this cap caches every
// shard (so repeated clustering passes decode each shard exactly once,
// like the in-memory path); a larger store keeps the hottest shards up
// to the cap.
const defaultCacheCap = 1 << 30 // 1 GiB

// cacheOverheadBytes is the accounting overhead charged per cached
// shard on top of its decoded vectors and instruction counts (headers,
// slice descriptors, list/map bookkeeping).
const cacheOverheadBytes = 128

// CacheStats is a snapshot of the decoded-shard cache's counters.
// The JSON tags are the field names mica-serve's /stats endpoint
// exposes.
type CacheStats struct {
	// BudgetBytes is the cache's byte budget.
	BudgetBytes int64 `json:"budget_bytes"`
	// Bytes is the decoded bytes currently held.
	Bytes int64 `json:"bytes"`
	// PeakBytes is the largest value Bytes has reached.
	PeakBytes int64 `json:"peak_bytes"`
	// Hits counts lookups served decoded data from the cache,
	// including lookups that waited on another reader's in-flight
	// decode of the same shard and received its successful result.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that initiated a decode of the shard.
	Misses uint64 `json:"misses"`
	// Decodes counts shard decodes that succeeded; with the cache's
	// in-flight deduplication Decodes == Misses - DecodeErrors, so it
	// equals Misses even under concurrent readers as long as no decode
	// fails.
	Decodes uint64 `json:"decodes"`
	// DecodeErrors counts decode attempts that failed. Failed decodes
	// are not cached, so the next lookup of the shard retries.
	DecodeErrors uint64 `json:"decode_errors"`
	// ErrorWaits counts lookups that joined another reader's in-flight
	// decode which then failed; they received the error, not data, and
	// are counted here instead of in Hits.
	ErrorWaits uint64 `json:"error_waits"`
	// Evictions counts shards dropped to stay within budget.
	Evictions uint64 `json:"evictions"`
}

// decodedShardBytes estimates the resident size of a decoded shard:
// the float64 vector matrix plus the per-interval instruction counts.
func decodedShardBytes(rows, dims int) int64 {
	return int64(rows)*int64(dims)*8 + int64(rows)*8 + cacheOverheadBytes
}

// defaultCacheBudget sizes the cache for a committed shard inventory:
// the total decoded size clamped to defaultCacheCap, floored at the
// largest single shard so sequential scans never thrash on a budget
// too small to hold their working row.
func defaultCacheBudget(shards []Shard, dims int) int64 {
	var total, largest int64
	for _, sh := range shards {
		b := decodedShardBytes(sh.Rows, dims)
		total += b
		if b > largest {
			largest = b
		}
	}
	budget := total
	if budget > defaultCacheCap {
		budget = defaultCacheCap
	}
	if budget < largest {
		budget = largest
	}
	return budget
}

// cacheEntry is one shard's slot in the cache. A just-inserted entry
// has a nil elem and an open ready channel while its owner decodes;
// waiters block on ready and then read data/err. Entries that fail to
// decode are not retained (the next lookup retries).
type cacheEntry struct {
	shard   int
	data    *ShardData
	err     error
	bytes   int64
	ready   chan struct{}
	elem    *list.Element // LRU position; nil while decoding
	waiters int           // lookups blocked on ready
}

// shardCache is a byte-budgeted LRU over decoded shards, shared by all
// of a committed store's readers. Lookups of the same shard are
// deduplicated: one reader decodes while the rest wait on the entry,
// so N concurrent scans cost one decode per shard, not N. Evicted
// ShardData stays valid for readers still holding it (it is immutable
// and garbage-collected once unreferenced).
type shardCache struct {
	st *Store

	// decode performs the actual shard decode; it is st.ReadShard
	// except in tests, which substitute a blocking or failing decode
	// to pin the concurrent accounting.
	decode func(int) (*ShardData, error)

	mu           sync.Mutex
	budget       int64
	bytes        int64
	peak         int64
	hits         uint64
	misses       uint64
	decodes      uint64
	decodeErrors uint64
	errorWaits   uint64
	evictions    uint64
	entries      map[int]*cacheEntry
	lru          *list.List // front = most recently used
}

func newShardCache(st *Store, budget int64) *shardCache {
	if budget <= 0 {
		budget = defaultCacheBudget(st.shards, st.cfg.Dims)
	}
	return &shardCache{
		st:      st,
		decode:  st.ReadShard,
		budget:  budget,
		entries: make(map[int]*cacheEntry),
		lru:     list.New(),
	}
}

// get returns decoded shard i, from cache or by decoding it.
func (c *shardCache) get(i int) (*ShardData, error) {
	c.mu.Lock()
	if e, ok := c.entries[i]; ok {
		if e.elem != nil {
			// Resident entry: decoded data is already in cache.
			c.hits++
			metCacheHits.Inc()
			c.lru.MoveToFront(e.elem)
			c.mu.Unlock()
			return e.data, e.err
		}
		// In-flight decode: join it, and classify the lookup only
		// once the outcome is known — a waiter that receives an error
		// must not count as a hit.
		e.waiters++
		c.mu.Unlock()
		<-e.ready
		c.mu.Lock()
		if e.err != nil {
			c.errorWaits++
			metCacheErrWaits.Inc()
		} else {
			c.hits++
			metCacheHits.Inc()
			// The decode succeeded but the entry may have been
			// evicted between close(ready) and here; only touch the
			// LRU if it is still resident.
			if e.elem != nil {
				c.lru.MoveToFront(e.elem)
			}
		}
		c.mu.Unlock()
		return e.data, e.err
	}
	e := &cacheEntry{shard: i, ready: make(chan struct{})}
	c.entries[i] = e
	c.misses++
	metCacheMisses.Inc()
	c.mu.Unlock()

	data, err := c.decode(i)

	c.mu.Lock()
	e.data, e.err = data, err
	if err != nil {
		// Do not cache failures: a transient read error must not pin
		// the shard unreadable for the cache's lifetime. A failed
		// attempt is a DecodeError, not a Decode, so the documented
		// Decodes == Misses - DecodeErrors relation holds.
		c.decodeErrors++
		metCacheDecodeErrs.Inc()
		delete(c.entries, i)
	} else {
		c.decodes++
		metCacheDecodes.Inc()
		e.bytes = decodedShardBytes(data.Vecs.Rows, data.Vecs.Cols)
		c.bytes += e.bytes
		if c.bytes > c.peak {
			c.peak = c.bytes
		}
		metCacheBytes.Add(float64(e.bytes))
		metCachePeakBytes.SetMax(metCacheBytes.Value())
		e.elem = c.lru.PushFront(e)
		c.evictLocked()
	}
	c.mu.Unlock()
	close(e.ready)
	return data, err
}

// evictLocked drops least-recently-used entries until the cache is
// within budget, always retaining the most recent entry so a single
// over-budget shard still caches (and scans over it do not thrash).
func (c *shardCache) evictLocked() {
	for c.bytes > c.budget && c.lru.Len() > 1 {
		back := c.lru.Back()
		e := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		e.elem = nil
		delete(c.entries, e.shard)
		c.bytes -= e.bytes
		c.evictions++
		metCacheEvictions.Inc()
		metCacheBytes.Add(-float64(e.bytes))
	}
}

// stats returns a snapshot of the cache counters.
func (c *shardCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		BudgetBytes:  c.budget,
		Bytes:        c.bytes,
		PeakBytes:    c.peak,
		Hits:         c.hits,
		Misses:       c.misses,
		Decodes:      c.decodes,
		DecodeErrors: c.decodeErrors,
		ErrorWaits:   c.errorWaits,
		Evictions:    c.evictions,
	}
}

// cache returns the store's shared decoded-shard cache, creating it on
// first use with the default budget (or the budget set by
// SetCacheBytes before first use).
func (s *Store) cacheHandle() *shardCache {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache == nil {
		s.cache = newShardCache(s, s.cacheBytes)
	}
	return s.cache
}

// SetCacheBytes sets the decoded-shard cache's byte budget. A
// non-positive n selects the default (the full decoded store size
// clamped to 1 GiB, floored at the largest shard). Any cached shards
// are dropped, so the call also serves as a cache reset; counters
// restart from zero.
func (s *Store) SetCacheBytes(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache != nil {
		// The dropped cache's resident bytes leave the process-wide
		// footprint gauge.
		s.cache.mu.Lock()
		metCacheBytes.Add(-float64(s.cache.bytes))
		s.cache.mu.Unlock()
	}
	s.cacheBytes = n
	s.cache = nil
}

// CacheBytes reports the decoded-shard cache's byte budget (resolving
// the default if the cache has not been sized explicitly).
func (s *Store) CacheBytes() int64 {
	return s.cacheHandle().budget
}

// CacheStats snapshots the decoded-shard cache counters.
func (s *Store) CacheStats() CacheStats {
	return s.cacheHandle().stats()
}

// CachedShard returns decoded committed shard i through the store's
// shared byte-budgeted LRU cache. The returned ShardData is immutable
// and remains valid after eviction; concurrent callers of the same
// shard share one decode. Use ReadShard to bypass the cache (fsck and
// verification paths, which must re-read the file).
func (s *Store) CachedShard(i int) (*ShardData, error) {
	return s.cacheHandle().get(i)
}
