package ivstore

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"mica/internal/stats"
)

// TestMmapReaderMatchesReader: the mmap row source is bit-identical to
// the decoding Reader for both encodings, across Row and Gather.
func TestMmapReaderMatchesReader(t *testing.T) {
	for _, enc := range []Encoding{Float32, Quant8} {
		t.Run(string(enc), func(t *testing.T) {
			st := buildStore(t, t.TempDir(), Config{Dims: 7, Encoding: enc}, []string{"a", "b", "c"}, 33)
			opened, err := Open(st.Dir())
			if err != nil {
				t.Fatal(err)
			}
			defer opened.Close()
			mm, err := opened.RowsMmap()
			if err != nil {
				t.Fatal(err)
			}
			ref := opened.Rows()
			if mm.Len() != ref.Len() || mm.Dim() != ref.Dim() {
				t.Fatalf("mmap reader shape %dx%d, want %dx%d", mm.Len(), mm.Dim(), ref.Len(), ref.Dim())
			}
			for i := 0; i < ref.Len(); i++ {
				if !reflect.DeepEqual(mm.Row(i), ref.Row(i)) {
					t.Fatalf("row %d diverges between mmap and decode", i)
				}
			}
			n := ref.Len()
			idx := []int{n - 1, 0, 40, 40, 7, n - 2}
			want := stats.NewMatrix(len(idx), 7)
			ref.Gather(idx, want)
			got := stats.NewMatrix(len(idx), 7)
			mm.Gather(idx, got)
			if !reflect.DeepEqual(got, want) {
				t.Fatal("mmap Gather diverges from decode Gather")
			}
		})
	}
}

// TestMmapInsts: per-interval instruction counts read through the
// mapping match the decoded shard.
func TestMmapInsts(t *testing.T) {
	st := buildStore(t, t.TempDir(), Config{Dims: 4}, []string{"a"}, 20)
	opened, err := Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()
	sd, err := opened.ReadShard(0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := opened.mappedShardAt(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range sd.Insts {
		if got := m.inst(i); got != want {
			t.Fatalf("inst %d: %d, want %d", i, got, want)
		}
	}
}

// TestMmapRejectsCorruption: every corruption the byte decoder rejects
// is also rejected at map time, surfaced by RowsMmap as an error (not
// a mid-stream panic), and the pristine file still maps after a failed
// attempt.
func TestMmapRejectsCorruption(t *testing.T) {
	st := buildStore(t, t.TempDir(), Config{Dims: 3}, []string{"a"}, 8)
	opened, err := Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()
	path := filepath.Join(st.Dir(), opened.Shards()[0].File)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mangle := map[string][]byte{
		"truncated": good[:len(good)/2],
		"magic":     append([]byte("NOTMICA1"), good[8:]...),
		"crc":       flip(good, len(good)-1, 0xff),
		"encoding":  flip(good, 8, 0x7f),
	}
	for name, raw := range mangle {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			opened.unmapAll() // drop any mapping of the pristine bytes
			if _, err := opened.RowsMmap(); err == nil {
				t.Fatal("corrupt shard mapped without error")
			}
		})
	}
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	opened.unmapAll()
	if _, err := opened.RowsMmap(); err != nil {
		t.Fatalf("pristine shard rejected after repair: %v", err)
	}
}

// TestMmapDecodeEquivalence: for arbitrary synthetic shards, assembling
// rows from the mapped layout equals the full decode — the same
// invariant the fuzz target checks on hostile inputs.
func TestMmapDecodeEquivalence(t *testing.T) {
	for _, enc := range []Encoding{Float32, Quant8} {
		insts, m := synthShard(17, 5, 3)
		raw := encodeShard(enc, insts, m)
		ms := &mappedShard{raw: raw}
		if err := ms.validate(); err != nil {
			t.Fatalf("%s: pristine shard rejected: %v", enc, err)
		}
		wantInsts, wantVecs, err := decodeShard(raw)
		if err != nil {
			t.Fatal(err)
		}
		row := make([]float64, 5)
		for i := 0; i < 17; i++ {
			ms.rowInto(i, row)
			if !reflect.DeepEqual(row, wantVecs.Row(i)) {
				t.Fatalf("%s row %d: mapped assembly diverges from decode", enc, i)
			}
			if ms.inst(i) != wantInsts[i] {
				t.Fatalf("%s inst %d diverges", enc, i)
			}
		}
	}
}

// TestMmapConcurrentReaders: shared mappings under concurrent Row and
// Gather traffic stay identical to the reference scan. Run with -race.
func TestMmapConcurrentReaders(t *testing.T) {
	st := buildStore(t, t.TempDir(), Config{Dims: 6, Encoding: Quant8}, []string{"a", "b", "c"}, 25)
	opened, err := Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()
	n := opened.NumRows()
	ref := stats.NewMatrix(n, 6)
	refReader := opened.Rows()
	for i := 0; i < n; i++ {
		copy(ref.Row(i), refReader.Row(i))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := opened.RowsMmap()
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < n; i++ {
				if !reflect.DeepEqual(r.Row(i), ref.Row(i)) {
					t.Errorf("row %d diverged", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestMmapCloseReleasesMappings: Close unmaps; a fresh Open rebuilds
// mappings from scratch.
func TestMmapCloseReleasesMappings(t *testing.T) {
	st := buildStore(t, t.TempDir(), Config{Dims: 4}, []string{"a", "b"}, 12)
	opened, err := Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := opened.RowsMmap(); err != nil {
		t.Fatal(err)
	}
	if err := opened.Close(); err != nil {
		t.Fatal(err)
	}
	opened.mapsMu.Lock()
	if opened.maps != nil {
		opened.mapsMu.Unlock()
		t.Fatal("Close left mappings live")
	}
	opened.mapsMu.Unlock()
}
