package ivstore

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestValidAuxName(t *testing.T) {
	cases := []struct {
		name string
		ok   bool
	}{
		{"warm.aux.json", true},
		{"state-v2.aux.json", true},
		{".aux.json", false},         // suffix only, no base
		{"warm.json", false},         // wrong suffix
		{"warm.aux.json.bak", false}, // suffix not at the end
		{"sub/warm.aux.json", false}, // path separator
		{"..\\warm.aux.json", false}, // windows separator
		{"", false},
	}
	for _, c := range cases {
		if got := validAuxName(c.name); got != c.ok {
			t.Errorf("validAuxName(%q) = %v, want %v", c.name, got, c.ok)
		}
	}
}

// TestAuxRoundTrip: WriteAux publishes atomically (no temp file left
// behind), ReadAux returns the exact bytes, overwrites replace the
// document, and a missing aux file reads as os.ErrNotExist.
func TestAuxRoundTrip(t *testing.T) {
	st := buildStore(t, t.TempDir(), Config{Dims: 4}, []string{"a"}, 10)
	opened, err := Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()

	if _, err := opened.ReadAux("warm.aux.json"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing aux read err = %v, want os.ErrNotExist", err)
	}
	if err := opened.WriteAux("warm.aux.json", []byte(`{"k":3}`)); err != nil {
		t.Fatal(err)
	}
	got, err := opened.ReadAux("warm.aux.json")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"k":3}` {
		t.Fatalf("aux read back %q", got)
	}
	if err := opened.WriteAux("warm.aux.json", []byte(`{"k":4}`)); err != nil {
		t.Fatal(err)
	}
	if got, _ = opened.ReadAux("warm.aux.json"); string(got) != `{"k":4}` {
		t.Fatalf("overwritten aux read back %q", got)
	}
	if _, err := os.Stat(filepath.Join(st.Dir(), "warm.aux.json.tmp")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind after publish: %v", err)
	}

	for _, bad := range []string{"warm.json", "sub/warm.aux.json", ".aux.json"} {
		if err := opened.WriteAux(bad, nil); err == nil {
			t.Errorf("WriteAux(%q) accepted an invalid name", bad)
		}
		if _, err := opened.ReadAux(bad); err == nil {
			t.Errorf("ReadAux(%q) accepted an invalid name", bad)
		}
	}
}

// TestAuxSurvivesFsck: aux files are advisory sidecars — Verify does
// not flag them as orphans, and Repair leaves them in place even while
// quarantining a corrupt shard.
func TestAuxSurvivesFsck(t *testing.T) {
	st := buildStore(t, t.TempDir(), Config{Dims: 4}, []string{"a", "b"}, 12)
	opened, err := Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if err := opened.WriteAux("warm.aux.json", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}

	rep, err := opened.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("clean store with an aux file verifies dirty:\n%s", rep)
	}
	if bad := rep.Bad(); len(bad) != 0 {
		t.Fatalf("clean store reports bad shards %v", bad)
	}
	if s := rep.String(); !strings.Contains(s, "clean") {
		t.Fatalf("clean report renders as %q", s)
	}
	if err := opened.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt one shard on disk; Verify names it, Repair quarantines it,
	// and the aux file is untouched throughout.
	shardFile := filepath.Join(st.Dir(), opened.Shards()[0].File)
	raw, err := os.ReadFile(shardFile)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(shardFile, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err = Verify(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("corrupt shard verified clean")
	}
	if bad := rep.Bad(); len(bad) != 1 || bad[0] != "a" {
		t.Fatalf("Bad() = %v, want [a]", bad)
	}
	if s := rep.String(); !strings.Contains(s, "bad shard a") {
		t.Fatalf("dirty report renders as %q", s)
	}

	rep, err = Repair(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != "a" {
		t.Fatalf("Repair quarantined %v, want [a]", rep.Quarantined)
	}
	if data, err := os.ReadFile(filepath.Join(st.Dir(), "warm.aux.json")); err != nil || string(data) != `{}` {
		t.Fatalf("aux file after Repair: %q, %v", data, err)
	}

	reopened, err := Open(st.Dir())
	if err != nil {
		t.Fatalf("store does not reopen after Repair: %v", err)
	}
	defer reopened.Close()
	if len(reopened.Shards()) != 1 || reopened.Shards()[0].Name != "b" {
		t.Fatalf("repaired store shards = %+v", reopened.Shards())
	}
}
