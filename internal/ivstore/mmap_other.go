//go:build !unix

package ivstore

import "os"

// mapFile on platforms without flock/mmap support reads the whole file
// into memory once; the returned bool is false (nothing to unmap).
// MmapReader's contract is unchanged — rows are assembled from the
// same validated byte layout — only the page-sharing benefit is lost.
func mapFile(path string) ([]byte, bool, error) {
	data, err := os.ReadFile(path)
	return data, false, err
}

// unmapFile is a no-op for the byte-slice fallback.
func unmapFile([]byte) error { return nil }
