package ivstore

import (
	"encoding/json"
	"testing"
)

// FuzzShardDecode: arbitrary bytes fed to the shard decoder must
// either decode cleanly or return an error — truncated, corrupt and
// oversized-header inputs can never panic or over-allocate (the
// header-implied size is checked against the actual length before any
// allocation).
func FuzzShardDecode(f *testing.F) {
	insts, m := synthShard(5, 3, 1)
	f.Add(encodeShard(Float32, insts, m))
	f.Add(encodeShard(Quant8, insts, m))
	f.Add([]byte(shardMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		ivs, vecs, err := decodeShard(raw)
		if err != nil {
			return
		}
		if vecs == nil || vecs.Rows == 0 || vecs.Cols == 0 || len(ivs) != vecs.Rows {
			t.Fatalf("decode accepted a malformed shard: %d insts, %v matrix", len(ivs), vecs)
		}
	})
}

// FuzzManifestDecode: arbitrary manifest bytes must validate or error,
// never panic; any accepted manifest satisfies the documented
// invariants (version stamp, positive dims, known encoding, base-name
// shard files, unique names, positive row counts).
func FuzzManifestDecode(f *testing.F) {
	valid, _ := json.Marshal(manifest{
		Version:  ManifestVersion,
		Dims:     47,
		Encoding: Float32,
		Shards:   []Shard{{Name: "a/b/c", File: ShardFileName("a/b/c", "h"), Rows: 10, Insts: 1000}},
	})
	f.Add(valid)
	f.Add([]byte(`{"version": 99}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		man, err := decodeManifest("fuzz.json", raw)
		if err != nil {
			return
		}
		if man.Version != ManifestVersion || man.Dims <= 0 || !man.Encoding.valid() {
			t.Fatalf("decode accepted invalid manifest header: %+v", man)
		}
		seen := map[string]bool{}
		for _, sh := range man.Shards {
			if sh.Name == "" || sh.Rows <= 0 || sh.File == "" || seen[sh.Name] {
				t.Fatalf("decode accepted invalid shard entry: %+v", sh)
			}
			seen[sh.Name] = true
		}
	})
}
