package ivstore

import (
	"encoding/json"
	"math"
	"testing"
)

// FuzzShardDecode: arbitrary bytes fed to the shard decoder must
// either decode cleanly or return an error — truncated, corrupt and
// oversized-header inputs can never panic or over-allocate (the
// header-implied size is checked against the actual length before any
// allocation).
func FuzzShardDecode(f *testing.F) {
	insts, m := synthShard(5, 3, 1)
	f.Add(encodeShard(Float32, insts, m))
	f.Add(encodeShard(Quant8, insts, m))
	f.Add([]byte(shardMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		ivs, vecs, err := decodeShard(raw)
		if err != nil {
			return
		}
		if vecs == nil || vecs.Rows == 0 || vecs.Cols == 0 || len(ivs) != vecs.Rows {
			t.Fatalf("decode accepted a malformed shard: %d insts, %v matrix", len(ivs), vecs)
		}
	})
}

// FuzzMmapShardDecode: the mmap-path validator and row assembler must
// agree with the byte decoder on every input — both reject, or both
// accept with identical rows and instruction counts. The seed corpus
// reuses the corrupt/truncated shapes of FuzzShardDecode (pristine
// shards of both encodings, a bare magic, empty bytes) and the fuzzer
// mutates from there.
func FuzzMmapShardDecode(f *testing.F) {
	insts, m := synthShard(5, 3, 1)
	f.Add(encodeShard(Float32, insts, m))
	f.Add(encodeShard(Quant8, insts, m))
	f.Add([]byte(shardMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		ivs, vecs, decErr := decodeShard(raw)
		ms := &mappedShard{raw: raw}
		mapErr := ms.validate()
		if (decErr == nil) != (mapErr == nil) {
			t.Fatalf("decoders disagree: decode err %v, mmap err %v", decErr, mapErr)
		}
		if decErr != nil {
			return
		}
		if ms.rows != vecs.Rows || ms.cols != vecs.Cols {
			t.Fatalf("mmap shape %dx%d, decode %dx%d", ms.rows, ms.cols, vecs.Rows, vecs.Cols)
		}
		row := make([]float64, ms.cols)
		for i := 0; i < ms.rows; i++ {
			if ms.inst(i) != ivs[i] {
				t.Fatalf("inst %d diverges", i)
			}
			ms.rowInto(i, row)
			for j := range row {
				want := vecs.At(i, j)
				if row[j] != want && !(math.IsNaN(row[j]) && math.IsNaN(want)) {
					t.Fatalf("row %d col %d: mmap %v, decode %v", i, j, row[j], want)
				}
			}
		}
	})
}

// FuzzManifestDecode: arbitrary manifest bytes must validate or error,
// never panic; any accepted manifest satisfies the documented
// invariants (version stamp, positive dims, known encoding, base-name
// shard files, unique names, positive row counts).
func FuzzManifestDecode(f *testing.F) {
	valid, _ := json.Marshal(manifest{
		Version:  ManifestVersion,
		Dims:     47,
		Encoding: Float32,
		Shards:   []Shard{{Name: "a/b/c", File: ShardFileName("a/b/c", "h"), Rows: 10, Insts: 1000}},
	})
	f.Add(valid)
	f.Add([]byte(`{"version": 99}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		man, err := decodeManifest("fuzz.json", raw)
		if err != nil {
			return
		}
		if man.Version != ManifestVersion || man.Dims <= 0 || !man.Encoding.valid() {
			t.Fatalf("decode accepted invalid manifest header: %+v", man)
		}
		seen := map[string]bool{}
		for _, sh := range man.Shards {
			if sh.Name == "" || sh.Rows <= 0 || sh.File == "" || seen[sh.Name] {
				t.Fatalf("decode accepted invalid shard entry: %+v", sh)
			}
			seen[sh.Name] = true
		}
	})
}
