package ivstore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// auxSuffix is the required suffix of auxiliary file names. The suffix
// keeps aux files disjoint from everything the store's maintenance
// machinery touches: Commit's prune only removes shard (.ivs) and temp
// files, and Verify/Repair classify only shard, temp and quarantine
// names, so aux files survive prunes, repairs and fsck untouched.
const auxSuffix = ".aux.json"

// validAuxName reports whether name is an acceptable auxiliary file
// name: a plain base name carrying the aux suffix.
func validAuxName(name string) bool {
	return strings.HasSuffix(name, auxSuffix) &&
		len(name) > len(auxSuffix) &&
		name == filepath.Base(name) &&
		!strings.ContainsAny(name, "/\\")
}

// WriteAux durably writes a small auxiliary document (for example,
// warm-start clustering state) into the store directory under name,
// which must end in ".aux.json". The write follows the store's atomic
// protocol — temp file, fsync, rename, directory fsync — so a crash
// leaves either the old document or the new one, never a torn file.
// Aux files are advisory sidecars: they are not referenced by the
// manifest, not validated by Verify, and not removed by prune or
// Repair.
func (s *Store) WriteAux(name string, data []byte) error {
	if !validAuxName(name) {
		return fmt.Errorf("ivstore: aux file name %q must be a base name ending in %q", name, auxSuffix)
	}
	path := filepath.Join(s.dir, name)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("ivstore: writing aux %s: %w", name, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ivstore: writing aux %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ivstore: syncing aux %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ivstore: closing aux %s: %w", name, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ivstore: publishing aux %s: %w", name, err)
	}
	return syncDir(s.dir)
}

// ReadAux reads an auxiliary document previously written by WriteAux.
// A missing file is reported with an error satisfying
// errors.Is(err, os.ErrNotExist), which callers treat as "no aux state
// yet", not a failure.
func (s *Store) ReadAux(name string) ([]byte, error) {
	if !validAuxName(name) {
		return nil, fmt.Errorf("ivstore: aux file name %q must be a base name ending in %q", name, auxSuffix)
	}
	return os.ReadFile(filepath.Join(s.dir, name))
}
