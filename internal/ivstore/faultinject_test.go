package ivstore

import (
	"errors"
	"fmt"
	"io/fs"
	"strings"
	"testing"

	"mica/internal/faults"
)

// faultBuild runs the canonical two-shard build end to end. Any
// injected failure aborts it; a Crash fault's panic is converted to an
// error after the store handle's deferred Close has run — exactly the
// lock release a killed process gets from the OS.
func faultBuild(dir string) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("simulated crash: %v", r)
		}
	}()
	st, err := Create(dir, Config{Dims: 5, ConfigHash: "fi-cfg"})
	if err != nil {
		return err
	}
	defer st.Close()
	instsA, mA := synthShard(8, 5, 101)
	if err := st.WriteShard("fi/a", instsA, mA); err != nil {
		return err
	}
	instsB, mB := synthShard(6, 5, 102)
	if err := st.WriteShard("fi/b", instsB, mB); err != nil {
		return err
	}
	_, err = st.Commit([]string{"fi/a", "fi/b"})
	return err
}

// recoverStore asserts the on-disk state a crashed build left behind
// is either Verify-clean, Repair-recoverable, or has no committed
// manifest at all (a crash before the first commit — nothing to
// recover). It returns once the directory is safe to rebuild into.
func recoverStore(t *testing.T, dir string) {
	t.Helper()
	rep, err := Verify(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return // never committed; the rebuild starts from scratch
	}
	if err != nil {
		t.Fatalf("crashed store unreadable: %v", err)
	}
	if rep.Clean() {
		return
	}
	rrep, err := Repair(dir)
	if err != nil {
		t.Fatalf("repairing crashed store: %v", err)
	}
	vrep, err := Verify(dir)
	if err != nil {
		t.Fatalf("verifying repaired store: %v", err)
	}
	if !vrep.Clean() {
		t.Fatalf("store still dirty after repair:\nbefore: %sreport: %safter: %s",
			rep.String(), rrep.String(), vrep.String())
	}
}

// TestKillAtEveryInjectionPoint is the durability acceptance test: the
// build is first recorded to enumerate every injection point it
// crosses, then re-run once per (address, fault kind) with the fault
// armed there. After every simulated crash the abandoned directory
// must be Verify-clean or Repair-recoverable, and a rebuild into the
// same directory must produce a clean store.
func TestKillAtEveryInjectionPoint(t *testing.T) {
	stop := faults.Record()
	err := faultBuild(t.TempDir())
	addrs := stop()
	if err != nil {
		t.Fatalf("recording build failed: %v", err)
	}
	if len(addrs) == 0 {
		t.Fatal("recording pass crossed no injection points")
	}

	for _, addr := range addrs {
		if !strings.HasPrefix(string(addr.Point), "ivstore.") {
			continue
		}
		for _, kind := range []faults.Kind{faults.Fail, faults.Torn, faults.Crash} {
			t.Run(fmt.Sprintf("%s_%s", addr, kind), func(t *testing.T) {
				dir := t.TempDir()
				disarm := faults.Arm(addr, kind)
				buildErr := faultBuild(dir)
				if fired := disarm(); fired != 1 {
					t.Fatalf("fault at %s fired %d times, want 1 (address drift?)", addr, fired)
				}
				if buildErr == nil {
					t.Fatal("injected fault did not abort the build")
				}
				if kind != faults.Crash && !errors.Is(buildErr, faults.ErrInjected) {
					t.Fatalf("build failed with a non-injected error: %v", buildErr)
				}

				recoverStore(t, dir)

				// The rerun over the crash debris must succeed and leave a
				// clean, fully populated store.
				if err := faultBuild(dir); err != nil {
					t.Fatalf("rebuild after crash at %s: %v", addr, err)
				}
				rep, err := Verify(dir)
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Clean() {
					t.Fatalf("rebuilt store not clean:\n%s", rep.String())
				}
				if len(rep.Shards) != 2 {
					t.Fatalf("rebuilt store has %d shards, want 2", len(rep.Shards))
				}
			})
		}
	}
}

// TestInjectionAddressesCoverAllStorePoints pins the recording pass
// itself: the canonical build must cross every compiled-in ivstore
// injection point, so a refactor that silently bypasses the durability
// protocol (dropping an fsync, renaming without the temp file) fails
// here rather than weakening the kill matrix unnoticed.
func TestInjectionAddressesCoverAllStorePoints(t *testing.T) {
	stop := faults.Record()
	err := faultBuild(t.TempDir())
	addrs := stop()
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[faults.Point]int)
	for _, a := range addrs {
		seen[a.Point]++
	}
	want := map[faults.Point]int{
		faults.ShardWrite:     2, // two shards
		faults.ShardSync:      2,
		faults.ShardRename:    2,
		faults.ManifestWrite:  1,
		faults.ManifestSync:   1,
		faults.ManifestRename: 1,
		faults.DirSync:        3, // two shards + manifest
	}
	for p, n := range want {
		if seen[p] != n {
			t.Errorf("point %s crossed %d times, want %d", p, seen[p], n)
		}
	}
}

// TestTornWriteNeverReachesCommittedName pins the core atomicity
// claim directly: a torn shard write leaves the half-written bytes
// only under the temp name, never under a name a manifest could
// reference, and the committed state after recovery has no trace of
// them.
func TestTornWriteNeverReachesCommittedName(t *testing.T) {
	dir := t.TempDir()
	disarm := faults.Arm(faults.Address{Point: faults.ShardWrite, Key: ShardFileName("fi/b", "fi-cfg\x00float32")}, faults.Torn)
	buildErr := faultBuild(dir)
	if fired := disarm(); fired != 1 {
		t.Fatalf("torn fault fired %d times", fired)
	}
	if buildErr == nil || !errors.Is(buildErr, faults.ErrInjected) {
		t.Fatalf("build error = %v", buildErr)
	}
	// No manifest was committed (the build aborted before Commit), and
	// the only debris is the torn temp file.
	if _, _, err := Inventory(dir); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("aborted build left a manifest: %v", err)
	}
	if err := faultBuild(dir); err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("store not clean after rebuild over torn debris:\n%s", rep.String())
	}
}
