package ivstore

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mica/internal/stats"
)

// synthShard builds a deterministic rows x cols shard with values in
// assorted magnitudes (fractions, counts, a constant column) so the
// encodings see realistic characteristic ranges.
func synthShard(rows, cols int, seed int64) ([]uint64, *stats.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	insts := make([]uint64, rows)
	m := stats.NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		insts[i] = 1000 + uint64(rng.Intn(500))
		for j := 0; j < cols; j++ {
			switch {
			case j == 3: // constant column
				m.Set(i, j, 0.125)
			case j%3 == 0: // fraction-like
				m.Set(i, j, rng.Float64())
			case j%3 == 1: // count-like
				m.Set(i, j, float64(rng.Intn(100000)))
			default: // signed, spread
				m.Set(i, j, (rng.Float64()-0.5)*1e4)
			}
		}
	}
	return insts, m
}

func buildStore(t *testing.T, dir string, cfg Config, names []string, rows int) *Store {
	t.Helper()
	st, err := Create(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		insts, m := synthShard(rows+i, cfg.Dims, int64(100+i))
		if err := st.WriteShard(name, insts, m); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Commit(names); err != nil {
		t.Fatal(err)
	}
	// Release the build handle's lock so the test can freely Create
	// over the directory; the returned Store's read accessors still
	// work after Close.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRoundTripFloat32: a written float32 store reads back exactly the
// float32-rounded source values, through both ReadShard and the
// streaming Reader, with row order equal to commit order.
func TestRoundTripFloat32(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dims: 9, ConfigHash: "h1"}
	names := []string{"suite/a/x", "suite/b/y", "suite/c/z"}
	orig := make(map[string]*stats.Matrix)
	origInsts := make(map[string][]uint64)
	st, err := Create(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		insts, m := synthShard(40+i, 9, int64(i))
		orig[name], origInsts[name] = m, insts
		if err := st.WriteShard(name, insts, m); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Commit(names); err != nil {
		t.Fatal(err)
	}

	opened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := opened.Benchmarks(); !reflect.DeepEqual(got, names) {
		t.Fatalf("benchmarks %v, want %v", got, names)
	}
	if opened.Encoding() != Float32 || opened.Dims() != 9 || opened.ConfigHash() != "h1" {
		t.Fatalf("opened config %v diverges", opened.cfg)
	}
	reader := opened.Rows()
	row := 0
	for si, name := range names {
		sd, err := opened.ReadShard(si)
		if err != nil {
			t.Fatal(err)
		}
		if sd.Name != name || !reflect.DeepEqual(sd.Insts, origInsts[name]) {
			t.Fatalf("shard %d metadata diverges", si)
		}
		want := orig[name]
		for i := 0; i < want.Rows; i++ {
			for j := 0; j < want.Cols; j++ {
				exp := float64(float32(want.At(i, j)))
				if sd.Vecs.At(i, j) != exp {
					t.Fatalf("%s (%d,%d): %v, want float32 round %v", name, i, j, sd.Vecs.At(i, j), exp)
				}
			}
			if got := reader.Row(row); !reflect.DeepEqual(got, sd.Vecs.Row(i)) {
				t.Fatalf("reader row %d diverges from shard row", row)
			}
			row++
		}
		// Starts are the prefix sums of Insts.
		starts := sd.Starts()
		var acc uint64
		for i, n := range sd.Insts {
			if starts[i] != acc {
				t.Fatalf("%s start[%d] = %d, want %d", name, i, starts[i], acc)
			}
			acc += n
		}
	}
	if row != opened.NumRows() {
		t.Fatalf("iterated %d rows, store claims %d", row, opened.NumRows())
	}
}

// TestQuant8ErrorBound: every reconstructed value is within the
// documented half-step bound of its source, and constant columns are
// exact.
func TestQuant8ErrorBound(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, Config{Dims: 12, Encoding: Quant8})
	if err != nil {
		t.Fatal(err)
	}
	insts, m := synthShard(500, 12, 7)
	if err := st.WriteShard("b", insts, m); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit([]string{"b"}); err != nil {
		t.Fatal(err)
	}
	opened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := opened.ReadShard(0)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < m.Cols; j++ {
		lo, hi := columnRange(m, j)
		bound := Quant8MaxError(lo, hi) * (1 + 1e-9)
		for i := 0; i < m.Rows; i++ {
			diff := math.Abs(sd.Vecs.At(i, j) - m.At(i, j))
			if diff > bound {
				t.Fatalf("col %d row %d: |err| %g exceeds bound %g (range [%g, %g])", j, i, diff, bound, lo, hi)
			}
		}
		if lo == hi {
			for i := 0; i < m.Rows; i++ {
				if sd.Vecs.At(i, j) != lo {
					t.Fatalf("constant col %d row %d not exact", j, i)
				}
			}
		}
	}
}

// TestReaderGather: gathered rows land in caller order (including
// duplicates and cross-shard jumps) and match Row-by-Row reads.
func TestReaderGather(t *testing.T) {
	st := buildStore(t, t.TempDir(), Config{Dims: 5}, []string{"a", "b", "c"}, 30)
	opened, err := Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	n := opened.NumRows()
	idx := []int{n - 1, 0, 31, 31, 7, n - 2, 45}
	dst := stats.NewMatrix(len(idx), 5)
	opened.Rows().Gather(idx, dst)
	ref := opened.Rows()
	for j, i := range idx {
		want := append([]float64(nil), ref.Row(i)...)
		if !reflect.DeepEqual(dst.Row(j), want) {
			t.Fatalf("gather slot %d (row %d) diverges", j, i)
		}
	}
}

// TestIncrementalAdoptCommit: a second build over the same directory
// adopts unchanged shards in place (files not rewritten), rebuilds
// only what changed, and prunes dropped shards' files on commit.
func TestIncrementalAdoptCommit(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dims: 6, ConfigHash: "cfg-v1"}
	buildStore(t, dir, cfg, []string{"a", "b", "drop-me"}, 20)
	prev, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Tag shard a's file so we can prove Commit left it untouched.
	aFile := filepath.Join(dir, prev.Shards()[0].File)
	droppedFile := prev.Shards()[2].File
	before, err := os.ReadFile(aFile)
	if err != nil {
		t.Fatal(err)
	}
	// Release prev's shared lock: Create takes the directory lock
	// exclusive. prev's in-memory accessors (Shards) remain usable.
	if err := prev.Close(); err != nil {
		t.Fatal(err)
	}

	next, err := Create(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range prev.Shards()[:2] { // reuse a, b; drop drop-me
		if err := next.Adopt(sh); err != nil {
			t.Fatal(err)
		}
	}
	insts, m := synthShard(25, 6, 99)
	if err := next.WriteShard("new", insts, m); err != nil {
		t.Fatal(err)
	}
	if _, err := next.Commit([]string{"a", "new", "b"}); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := reopened.Benchmarks(); !reflect.DeepEqual(got, []string{"a", "new", "b"}) {
		t.Fatalf("benchmarks after incremental commit: %v", got)
	}
	after, err := os.ReadFile(aFile)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("adopted shard file was rewritten")
	}
	if _, err := os.Stat(filepath.Join(dir, droppedFile)); !os.IsNotExist(err) {
		t.Fatalf("dropped shard not pruned: %v", err)
	}
	// Duplicate names in the commit order are rejected (the read side
	// refuses them, so committing one would brick the store).
	if _, err := next.Commit([]string{"a", "a"}); err == nil {
		t.Fatal("duplicate commit order accepted")
	}
	// Adopting under a different config hash must refuse.
	other, err := Create(t.TempDir(), Config{Dims: 6, ConfigHash: "cfg-v2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Adopt(prev.Shards()[0]); err == nil {
		t.Fatal("adopt across config hashes accepted")
	}
}

// TestCommitRequiresStagedShards: committing an order naming an
// unstaged benchmark fails and leaves no manifest behind.
func TestCommitRequiresStagedShards(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, Config{Dims: 4})
	if err != nil {
		t.Fatal(err)
	}
	insts, m := synthShard(10, 4, 1)
	if err := st.WriteShard("a", insts, m); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit([]string{"a", "missing"}); err == nil {
		t.Fatal("commit with unstaged shard accepted")
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); !os.IsNotExist(err) {
		t.Fatal("failed commit left a manifest")
	}
}

// TestWriteShardValidation rejects malformed appends.
func TestWriteShardValidation(t *testing.T) {
	st, err := Create(t.TempDir(), Config{Dims: 4})
	if err != nil {
		t.Fatal(err)
	}
	insts, m := synthShard(10, 4, 1)
	if err := st.WriteShard("", insts, m); err == nil {
		t.Error("empty name accepted")
	}
	if err := st.WriteShard("b", insts[:5], m); err == nil {
		t.Error("insts/rows mismatch accepted")
	}
	_, wrong := synthShard(10, 5, 1)
	if err := st.WriteShard("b", insts, wrong); err == nil {
		t.Error("wrong dimensionality accepted")
	}
	if err := st.WriteShard("b", nil, stats.NewMatrix(0, 4)); err == nil {
		t.Error("empty shard accepted")
	}
	if _, err := Create(t.TempDir(), Config{Dims: 0}); err == nil {
		t.Error("zero dims accepted")
	}
	if _, err := Create(t.TempDir(), Config{Dims: 3, Encoding: "zstd"}); err == nil {
		t.Error("unknown encoding accepted")
	}
}

// TestConfigZeroValueDefaults: the zero Config (plus required Dims)
// normalizes to the documented defaults — float32 encoding — the same
// zero-value ≡ default contract the phase Config keeps.
func TestConfigZeroValueDefaults(t *testing.T) {
	got := Config{Dims: 47}.WithDefaults()
	want := Config{Dims: 47, Encoding: Float32}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Config{}.WithDefaults() = %+v, want %+v", got, want)
	}
}

// TestOpenRejectsCorruptManifests: every malformed manifest is a
// descriptive error naming the file — never a panic, never a silent
// success.
func TestOpenRejectsCorruptManifests(t *testing.T) {
	valid := func(t *testing.T) string {
		dir := t.TempDir()
		buildStore(t, dir, Config{Dims: 3}, []string{"a"}, 8)
		return dir
	}
	cases := []struct {
		name    string
		mangle  func(t *testing.T, dir string) error
		wantSub string
	}{
		{"version-mismatch", func(t *testing.T, dir string) error {
			return rewriteManifest(dir, `"version": 1`, `"version": 99`)
		}, "manifest version 99, want 1"},
		{"bad-dims", func(t *testing.T, dir string) error {
			return rewriteManifest(dir, `"dims": 3`, `"dims": -1`)
		}, "dims"},
		{"bad-encoding", func(t *testing.T, dir string) error {
			return rewriteManifest(dir, `"encoding": "float32"`, `"encoding": "brotli"`)
		}, "unknown encoding"},
		{"traversal-file", func(t *testing.T, dir string) error {
			return rewriteManifest(dir, shardFileOf(t, dir, "a"), "../escape.ivs")
		}, "invalid file name"},
		{"missing-shard", func(t *testing.T, dir string) error {
			return os.Remove(filepath.Join(dir, shardFileOf(t, dir, "a")))
		}, "shard a"},
		{"not-json", func(t *testing.T, dir string) error {
			return os.WriteFile(filepath.Join(dir, manifestName), []byte("]["), 0o644)
		}, "decoding"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := valid(t)
			if err := tc.mangle(t, dir); err != nil {
				t.Fatal(err)
			}
			_, err := Open(dir)
			if err == nil {
				t.Fatal("corrupt manifest accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
			if !strings.Contains(err.Error(), manifestName) {
				t.Fatalf("error %q does not name the offending file", err)
			}
		})
	}
}

// shardFileOf resolves a benchmark's shard file name from the
// committed manifest (file names embed the configuration stamp, so
// tests read them back rather than recomputing).
func shardFileOf(t *testing.T, dir, name string) string {
	t.Helper()
	_, shards, err := Inventory(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range shards {
		if sh.Name == name {
			return sh.File
		}
	}
	t.Fatalf("no shard for %s in %s", name, dir)
	return ""
}

func rewriteManifest(dir, old, new string) error {
	path := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return os.WriteFile(path, []byte(strings.Replace(string(data), old, new, 1)), 0o644)
}

// TestDecodeShardErrors: corrupt, truncated and oversized shard bytes
// error without panicking.
func TestDecodeShardErrors(t *testing.T) {
	insts, m := synthShard(6, 3, 2)
	good := encodeShard(Float32, insts, m)

	mangled := map[string][]byte{
		"empty":     {},
		"truncated": good[:len(good)/2],
		"magic":     append([]byte("NOTMICA1"), good[8:]...),
		"encoding":  flip(good, 8, 0x7f),
		"crc":       flip(good, len(good)-1, 0xff),
		"zero-rows": reheader(good, 0, 3),
		"oversized": reheader(good, 1<<30, 1<<20),
		// A header whose implied size OVERFLOWS uint64 back to exactly
		// this file's length: rows=2^31, cols=2^31-2 makes the float32
		// payload 2^64-2^34, so header+insts+payload+crc wraps to 24.
		// With a valid CRC this must still be rejected (before any
		// allocation), not panic or OOM.
		"overflow-wrap": withCRC(reheader(good[:20], 1<<31, 1<<31-2)),
	}
	for name, raw := range mangled {
		if _, _, err := decodeShard(raw); err == nil {
			t.Errorf("%s: corrupt shard accepted", name)
		}
	}
	if _, _, err := decodeShard(good); err != nil {
		t.Fatalf("pristine shard rejected: %v", err)
	}
}

// flip returns a copy of raw with byte i xor'd by mask.
func flip(raw []byte, i int, mask byte) []byte {
	out := append([]byte(nil), raw...)
	out[i] ^= mask
	return out
}

// reheader returns a copy of raw with the rows/cols header rewritten
// (CRC deliberately left stale — the size check must fire first).
func reheader(raw []byte, rows, cols uint32) []byte {
	out := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(out[12:16], rows)
	binary.LittleEndian.PutUint32(out[16:20], cols)
	return out
}

// withCRC appends a freshly computed trailing CRC to raw, so a test
// input fails only the check it is aimed at.
func withCRC(raw []byte) []byte {
	return binary.LittleEndian.AppendUint32(raw, crc32.ChecksumIEEE(raw))
}
