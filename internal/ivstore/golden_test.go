package ivstore

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// Golden round-trip: testdata/golden holds a small committed store
// (one float32 and one quant8 shard plus the manifest) written by this
// very package. The test pins both directions of the format:
//
//   - encoder stability: re-encoding the deterministic source shards
//     must reproduce the committed files byte for byte, so any change
//     to the on-disk layout is a reviewed, versioned decision;
//   - decoder correctness: opening the committed store must yield the
//     expected values, so old stores stay readable.
//
// Regenerate (after a deliberate, version-bumped format change) with:
//
//	IVSTORE_UPDATE_GOLDEN=1 go test ./internal/ivstore/ -run Golden
const goldenDir = "testdata/golden"

// goldenStore builds the deterministic store contents.
func goldenStore(t *testing.T, dir string) {
	t.Helper()
	st, err := Create(dir, Config{Dims: 6, Encoding: Float32, ConfigHash: "golden-cfg"})
	if err != nil {
		t.Fatal(err)
	}
	instsA, mA := synthShard(12, 6, 41)
	if err := st.WriteShard("golden/f32/a", instsA, mA); err != nil {
		t.Fatal(err)
	}
	instsB, mB := synthShard(9, 6, 42)
	if err := st.WriteShard("golden/f32/b", instsB, mB); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit([]string{"golden/f32/a", "golden/f32/b"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestGoldenStoreRoundTrip(t *testing.T) {
	if os.Getenv("IVSTORE_UPDATE_GOLDEN") != "" {
		if err := os.RemoveAll(goldenDir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		goldenStore(t, goldenDir)
		t.Log("golden store regenerated")
	}

	// Encoder stability: a fresh build is byte-identical to the
	// committed files.
	fresh := t.TempDir()
	goldenStore(t, fresh)
	all, err := os.ReadDir(goldenDir)
	if err != nil {
		t.Fatalf("golden store missing (run with IVSTORE_UPDATE_GOLDEN=1 to create): %v", err)
	}
	// The advisory lock file is runtime state, not format: a previous
	// Open of the golden dir may have left one behind.
	var entries []os.DirEntry
	for _, e := range all {
		if e.Name() != lockName {
			entries = append(entries, e)
		}
	}
	if len(entries) != 3 { // manifest + 2 shards
		t.Fatalf("golden store has %d files, want 3", len(entries))
	}
	for _, e := range entries {
		want, err := os.ReadFile(filepath.Join(goldenDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(fresh, e.Name()))
		if err != nil {
			t.Fatalf("fresh build lacks golden file %s: %v", e.Name(), err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: fresh encoding diverges from committed golden bytes", e.Name())
		}
	}

	// Decoder correctness: the committed store opens and decodes to the
	// same values as the fresh one.
	gSt, err := Open(goldenDir)
	if err != nil {
		t.Fatal(err)
	}
	fSt, err := Open(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gSt.Benchmarks(), fSt.Benchmarks()) || gSt.NumRows() != fSt.NumRows() {
		t.Fatal("golden store inventory diverges")
	}
	for i := range gSt.Shards() {
		g, err := gSt.ReadShard(i)
		if err != nil {
			t.Fatal(err)
		}
		f, err := fSt.ReadShard(i)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(g, f) {
			t.Errorf("shard %d decodes differently from golden bytes", i)
		}
	}
}

// TestGoldenQuant8Stability pins the quant8 encoding bytes the same
// way, without a separate on-disk store: the encoded bytes of a
// deterministic shard must stay stable, and decode must invert them
// within the documented bound (checked exhaustively in
// TestQuant8ErrorBound).
func TestGoldenQuant8Stability(t *testing.T) {
	insts, m := synthShard(7, 4, 43)
	raw := encodeShard(Quant8, insts, m)
	path := filepath.Join("testdata", "quant8_golden.bin")
	if os.Getenv("IVSTORE_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden quant8 bytes missing (run with IVSTORE_UPDATE_GOLDEN=1): %v", err)
	}
	if !reflect.DeepEqual(raw, want) {
		t.Fatal("quant8 encoding diverges from committed golden bytes")
	}
	gotInsts, gotVecs, err := decodeShard(want)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotInsts, insts) || gotVecs.Rows != m.Rows || gotVecs.Cols != m.Cols {
		t.Fatal("golden quant8 shard decodes to wrong shape")
	}
}
