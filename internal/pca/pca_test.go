package pca

import (
	"math"
	"math/rand"
	"testing"

	"mica/internal/stats"
)

func TestPCARecoversDominantDirection(t *testing.T) {
	// Points along the diagonal y = x with small noise: PC1 should be
	// ~(1/sqrt2, 1/sqrt2) and capture nearly all variance.
	rng := rand.New(rand.NewSource(1))
	rows := make([][]float64, 200)
	for i := range rows {
		v := rng.NormFloat64() * 10
		rows[i] = []float64{v + rng.NormFloat64()*0.1, v + rng.NormFloat64()*0.1}
	}
	res := Fit(stats.FromRows(rows))
	if res.Eigenvalues[0] < res.Eigenvalues[1] {
		t.Fatal("eigenvalues not sorted descending")
	}
	pc1 := res.Components.Row(0)
	ratio := math.Abs(pc1[0] / pc1[1])
	if math.Abs(ratio-1) > 0.05 {
		t.Errorf("PC1 = %v, want ~diagonal", pc1)
	}
	if ev := res.ExplainedVariance(1); ev < 0.99 {
		t.Errorf("PC1 explains %g, want > 0.99", ev)
	}
}

func TestPCAOrthonormalComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows := make([][]float64, 100)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64() * 2, rng.NormFloat64() * 3, rng.NormFloat64()}
	}
	res := Fit(stats.FromRows(rows))
	d := res.Components.Rows
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			dot := 0.0
			for j := 0; j < d; j++ {
				dot += res.Components.At(a, j) * res.Components.At(b, j)
			}
			want := 0.0
			if a == b {
				want = 1.0
			}
			if math.Abs(dot-want) > 1e-8 {
				t.Errorf("components %d . %d = %g, want %g", a, b, dot, want)
			}
		}
	}
}

func TestPCAEigenvaluesMatchVariance(t *testing.T) {
	// Independent axes: eigenvalues should approximate the per-axis
	// variances.
	rng := rand.New(rand.NewSource(3))
	rows := make([][]float64, 5000)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64() * 3, rng.NormFloat64()}
	}
	res := Fit(stats.FromRows(rows))
	if math.Abs(res.Eigenvalues[0]-9) > 0.7 {
		t.Errorf("eigenvalue[0] = %g, want ~9", res.Eigenvalues[0])
	}
	if math.Abs(res.Eigenvalues[1]-1) > 0.2 {
		t.Errorf("eigenvalue[1] = %g, want ~1", res.Eigenvalues[1])
	}
}

func TestTransformPreservesDistancesFullRank(t *testing.T) {
	// A full-rank orthonormal projection preserves Euclidean distances.
	rng := rand.New(rand.NewSource(4))
	rows := make([][]float64, 50)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	m := stats.FromRows(rows)
	res := Fit(m)
	p := res.Transform(m, 3)
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			d0 := stats.Euclidean(m.Row(i), m.Row(j))
			d1 := stats.Euclidean(p.Row(i), p.Row(j))
			if math.Abs(d0-d1) > 1e-8 {
				t.Fatalf("distance (%d,%d) changed: %g -> %g", i, j, d0, d1)
			}
		}
	}
}

func TestComponentsNeeded(t *testing.T) {
	res := Result{Eigenvalues: []float64{8, 1, 0.5, 0.5}}
	if got := res.ComponentsNeeded(0.8); got != 1 {
		t.Errorf("ComponentsNeeded(0.8) = %d, want 1", got)
	}
	if got := res.ComponentsNeeded(0.95); got != 3 {
		t.Errorf("ComponentsNeeded(0.95) = %d, want 3", got)
	}
	if got := res.ComponentsNeeded(1.0); got != 4 {
		t.Errorf("ComponentsNeeded(1.0) = %d, want 4", got)
	}
}

func TestFitPanicsOnTinyInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Fit on 1 row did not panic")
		}
	}()
	Fit(stats.FromRows([][]float64{{1, 2}}))
}
