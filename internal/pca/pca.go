// Package pca implements principal components analysis via cyclic Jacobi
// eigendecomposition of the covariance matrix. PCA is the prior-work
// baseline the paper's Section V-C compares against: it also reduces the
// dimensionality of the workload space, but requires all original
// characteristics to be measured and produces dimensions that are linear
// combinations rather than individual characteristics.
package pca

import (
	"fmt"
	"math"
	"sort"

	"mica/internal/stats"
)

// Result is a fitted PCA model.
type Result struct {
	// Components holds the eigenvectors as rows, sorted by decreasing
	// eigenvalue.
	Components *stats.Matrix
	// Eigenvalues are the corresponding variances, decreasing.
	Eigenvalues []float64
}

// Fit computes the principal components of the rows of m. The input
// should already be normalized (the paper z-scores characteristics
// first); Fit does not normalize.
func Fit(m *stats.Matrix) Result {
	n, d := m.Rows, m.Cols
	if n < 2 {
		panic("pca: need at least two rows")
	}
	// Covariance matrix.
	means := make([]float64, d)
	for j := 0; j < d; j++ {
		means[j] = stats.Mean(m.Column(j))
	}
	cov := stats.NewMatrix(d, d)
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			s := 0.0
			for i := 0; i < n; i++ {
				s += (m.At(i, a) - means[a]) * (m.At(i, b) - means[b])
			}
			s /= float64(n - 1)
			cov.Set(a, b, s)
			cov.Set(b, a, s)
		}
	}

	vals, vecs := jacobiEigen(cov)

	order := make([]int, d)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return vals[order[i]] > vals[order[j]] })

	res := Result{
		Components:  stats.NewMatrix(d, d),
		Eigenvalues: make([]float64, d),
	}
	for r, idx := range order {
		res.Eigenvalues[r] = vals[idx]
		for c := 0; c < d; c++ {
			// Eigenvectors are the columns of vecs.
			res.Components.Set(r, c, vecs.At(c, idx))
		}
	}
	return res
}

// jacobiEigen diagonalizes a symmetric matrix with the cyclic Jacobi
// method, returning eigenvalues and the accumulated rotation matrix whose
// columns are eigenvectors.
func jacobiEigen(a *stats.Matrix) ([]float64, *stats.Matrix) {
	d := a.Rows
	if a.Cols != d {
		panic(fmt.Sprintf("pca: jacobi on non-square %dx%d matrix", a.Rows, a.Cols))
	}
	m := a.Clone()
	v := stats.NewMatrix(d, d)
	for i := 0; i < d; i++ {
		v.Set(i, i, 1)
	}
	for sweep := 0; sweep < 100; sweep++ {
		off := 0.0
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < 1e-20 {
			break
		}
		for p := 0; p < d; p++ {
			for q := p + 1; q < d; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-18 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < d; k++ {
					akp, akq := m.At(k, p), m.At(k, q)
					m.Set(k, p, c*akp-s*akq)
					m.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < d; k++ {
					apk, aqk := m.At(p, k), m.At(q, k)
					m.Set(p, k, c*apk-s*aqk)
					m.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < d; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	vals := make([]float64, d)
	for i := 0; i < d; i++ {
		vals[i] = m.At(i, i)
	}
	return vals, v
}

// Transform projects the rows of m onto the first k principal components.
func (r Result) Transform(m *stats.Matrix, k int) *stats.Matrix {
	d := r.Components.Cols
	if m.Cols != d {
		panic("pca: transform dimensionality mismatch")
	}
	if k > r.Components.Rows {
		k = r.Components.Rows
	}
	out := stats.NewMatrix(m.Rows, k)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for c := 0; c < k; c++ {
			comp := r.Components.Row(c)
			s := 0.0
			for j := 0; j < d; j++ {
				s += row[j] * comp[j]
			}
			out.Set(i, c, s)
		}
	}
	return out
}

// ExplainedVariance returns the fraction of total variance captured by
// the first k components.
func (r Result) ExplainedVariance(k int) float64 {
	if k > len(r.Eigenvalues) {
		k = len(r.Eigenvalues)
	}
	total, top := 0.0, 0.0
	for i, v := range r.Eigenvalues {
		if v > 0 {
			total += v
			if i < k {
				top += v
			}
		}
	}
	if total == 0 {
		return 0
	}
	return top / total
}

// ComponentsNeeded returns the smallest number of components whose
// cumulative explained variance reaches frac.
func (r Result) ComponentsNeeded(frac float64) int {
	for k := 1; k <= len(r.Eigenvalues); k++ {
		if r.ExplainedVariance(k) >= frac {
			return k
		}
	}
	return len(r.Eigenvalues)
}
