// Package phases implements interval-based program phase analysis, the
// extension the paper's related-work section points at (SimPoint-style
// phase classification, Sherwood et al. [18]; Eeckhout et al. [16] use
// the same microarchitecture-independent characteristics per phase): a
// benchmark's trace is split into fixed-length intervals, each interval
// is characterized with the Table II metrics, intervals are clustered
// into phases with k-means + BIC, and one representative interval is
// selected per phase with a weight proportional to the phase's share of
// execution — the recipe for reduced-trace simulation.
//
// The analysis is streaming and bounded-memory: intervals are
// characterized as the VM runs by ONE profiler that is Reset between
// intervals (analyzer tables cleared in place, never reallocated), and
// interval vectors land in one flat row-major matrix. The default
// interval cap is deliberately modest (DefaultConfig: 100 intervals,
// the quick-look grid); paper-scale runs raise MaxIntervals to 10k+
// and memory still grows only with the intervals actually produced,
// never with the trace length. Registry-scale JOINT analysis goes one
// step further: AnalyzeJointStore streams interval vectors
// shard-by-shard out of an on-disk store (internal/ivstore), so not
// even the per-benchmark matrices need to coexist in memory.
package phases

import (
	"errors"
	"fmt"

	"mica/internal/cluster"
	"mica/internal/mica"
	"mica/internal/obs"
	"mica/internal/stats"
	"mica/internal/trace"
)

// metIntervals counts characterized intervals across every pipeline
// (full, cheap-pass reduced, store-backed), batched per benchmark.
var metIntervals = obs.Default().Counter("mica_phases_intervals_total", "Intervals characterized.")

// Config parameterizes phase analysis.
type Config struct {
	// IntervalLen is the interval length in dynamic instructions
	// (default 10k).
	IntervalLen uint64
	// MaxIntervals bounds the trace length. The default is 100
	// intervals — a quick-look grid, NOT the paper-scale setting;
	// registry/paper-scale runs raise it to 10k+ and stay
	// bounded-memory, since storage grows with intervals actually
	// produced, not with the trace length.
	MaxIntervals int
	// MaxK bounds the BIC sweep (default 10).
	MaxK int
	// Seed drives k-means.
	Seed int64
	// Options configures the interval profiler. The zero value measures
	// all 47 characteristics with memory dependencies tracked at the
	// default PPM order.
	Options mica.Options
}

func (c Config) withDefaults() Config { return c.WithDefaults() }

// DefaultConfig returns the documented default configuration, spelled
// out: 10k instructions per interval, a 100-interval quick-look grid,
// BIC sweep to K=10, all 47 characteristics with memory dependencies
// tracked. Config{}.WithDefaults() must equal it exactly — the zero
// value and the documented defaults can never drift apart
// (regression-tested), the same contract mica.Options keeps.
func DefaultConfig() Config {
	return Config{
		IntervalLen:  10_000,
		MaxIntervals: 100,
		MaxK:         10,
	}
}

// WithDefaults returns c with zero fields replaced by the documented
// defaults — the normalized form persisted phase caches are keyed on.
func (c Config) WithDefaults() Config {
	if c.IntervalLen == 0 {
		c.IntervalLen = 10_000
	}
	if c.MaxIntervals == 0 {
		c.MaxIntervals = 100
	}
	if c.MaxK == 0 {
		c.MaxK = 10
	}
	return c
}

// Interval is one characterized trace slice. Its characteristic vector
// lives in the Result's flat Vectors matrix (row Index).
type Interval struct {
	// Index is the interval's position in the trace.
	Index int
	// Start is the dynamic instruction number of the interval's first
	// instruction.
	Start uint64
	// Insts is the interval length (the last interval may be short).
	Insts uint64
}

// Representative is one phase's chosen simulation point.
type Representative struct {
	// Phase is the cluster id.
	Phase int
	// Interval is the index of the interval closest to the phase
	// centroid.
	Interval int
	// Weight is the phase's share of dynamic instructions. Weighting by
	// instructions rather than by interval count keeps a short trailing
	// interval from counting like a full one, so WeightedVector matches
	// what a reduced simulation replaying each representative for its
	// phase's instruction share would reconstruct.
	Weight float64
}

// Result is the outcome of phase analysis for one benchmark.
type Result struct {
	Intervals []Interval
	// Vectors holds the interval characteristic vectors as the rows of
	// one flat matrix, in interval order: row i is interval i's Table II
	// vector.
	Vectors *stats.Matrix
	// Assign maps each interval to its phase.
	Assign []int
	// K is the BIC-selected number of phases.
	K int
	// Representatives holds one weighted simulation point per phase,
	// ordered by descending weight.
	Representatives []Representative
}

// Vector returns interval i's characteristic vector.
func (r *Result) Vector(i int) mica.Vector {
	var v mica.Vector
	copy(v[:], r.Vectors.Row(i))
	return v
}

// TotalInsts returns the number of dynamic instructions across all
// intervals — the profiled trace length.
func (r *Result) TotalInsts() uint64 {
	var n uint64
	for _, iv := range r.Intervals {
		n += iv.Insts
	}
	return n
}

// Analyze runs streaming phase analysis over a source's event stream
// (a freshly instantiated machine or a freshly opened trace replay):
// up to MaxIntervals intervals of IntervalLen instructions each,
// characterized by one profiler reused across all intervals.
func Analyze(m trace.Source, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	return AnalyzeWith(m, mica.NewProfiler(cfg.Options), cfg)
}

// AnalyzeWith is Analyze with a caller-supplied profiler, which must
// have been built from cfg.Options. The profiler is Reset before every
// interval, so a pooled profiler arrives clean no matter what trace it
// measured last — the mechanism registry-wide pipelines use to share
// one profiler's tables across many benchmarks.
func AnalyzeWith(m trace.Source, prof *mica.Profiler, cfg Config) (*Result, error) {
	return analyze(m, cfg.withDefaults(), func() *mica.Profiler {
		prof.Reset()
		return prof
	})
}

// AnalyzeUnpooled is the pre-streaming reference implementation: a
// fresh profiler is allocated for every interval. It produces
// bit-identical results to Analyze/AnalyzeWith and is retained as the
// differential-testing oracle and as the baseline configuration of the
// tracked phase benchmark (BENCH_phases.json).
func AnalyzeUnpooled(m trace.Source, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	return analyze(m, cfg, func() *mica.Profiler {
		return mica.NewProfiler(cfg.Options)
	})
}

// CharacterizeWith is AnalyzeWith without the clustering step: it
// streams intervals through the (Reset) caller-supplied profiler and
// returns a Result whose Intervals and Vectors are filled but whose
// Assign/K/Representatives are empty. Joint cross-benchmark pipelines
// use it to characterize each benchmark before clustering ALL
// intervals at once (AnalyzeJoint).
func CharacterizeWith(m trace.Source, prof *mica.Profiler, cfg Config) (*Result, error) {
	return characterize(m, cfg.withDefaults(), func() *mica.Profiler {
		prof.Reset()
		return prof
	})
}

// analyze streams intervals off the source, drawing the profiler for
// each interval from nextProfiler (a pooled reset or a fresh
// allocation), then clusters them.
func analyze(m trace.Source, cfg Config, nextProfiler func() *mica.Profiler) (*Result, error) {
	res, err := characterize(m, cfg, nextProfiler)
	if err != nil {
		return nil, err
	}
	res.cluster(cfg)
	return res, nil
}

// characterize streams intervals off the source into a Result's flat
// vector matrix, leaving the clustering fields empty.
func characterize(m trace.Source, cfg Config, nextProfiler func() *mica.Profiler) (*Result, error) {
	span := obs.StartSpan("phases.characterize")
	defer span.End()
	res := &Result{}
	var vecs []float64
	var start uint64
	for i := 0; i < cfg.MaxIntervals; i++ {
		prof := nextProfiler()
		n, err := m.Run(cfg.IntervalLen, prof)
		if n > 0 {
			v := prof.Vector()
			vecs = append(vecs, v[:]...)
			res.Intervals = append(res.Intervals, Interval{Index: i, Start: start, Insts: n})
			start += n
		}
		if err == nil {
			break // program halted
		}
		if !errors.Is(err, trace.ErrBudget) {
			return nil, fmt.Errorf("phases: interval %d: %w", i, err)
		}
	}
	if len(res.Intervals) == 0 {
		return nil, fmt.Errorf("phases: program produced no instructions")
	}
	metIntervals.Add(float64(len(res.Intervals)))
	res.Vectors = &stats.Matrix{Rows: len(res.Intervals), Cols: mica.NumChars, Data: vecs}
	return res, nil
}

// cluster groups the characterized intervals into phases and selects
// weighted representatives.
func (res *Result) cluster(cfg Config) {
	// Cluster intervals in the normalized characteristic space.
	nspan := obs.StartSpan("phases.normalize")
	norm := stats.ZScoreNormalize(res.Vectors)
	nspan.End()
	sel := cluster.SelectK(norm, cfg.MaxK, 0.9, cfg.Seed)
	res.Assign = sel.Best.Assign
	res.K = sel.Best.K

	// Pick the interval closest to each centroid as the phase
	// representative (the SimPoint selection rule), weighted by the
	// phase's share of dynamic instructions.
	instsIn := make([]uint64, res.K)
	bestIdx := make([]int, res.K)
	bestDist := make([]float64, res.K)
	for c := range bestDist {
		bestDist[c] = -1
	}
	totalInsts := res.TotalInsts()
	for i, c := range res.Assign {
		instsIn[c] += res.Intervals[i].Insts
		d := stats.Euclidean(norm.Row(i), sel.Best.Centroids.Row(c))
		if bestDist[c] < 0 || d < bestDist[c] {
			bestDist[c], bestIdx[c] = d, i
		}
	}
	for c := 0; c < res.K; c++ {
		if instsIn[c] == 0 {
			continue
		}
		res.Representatives = append(res.Representatives, Representative{
			Phase:    c,
			Interval: bestIdx[c],
			Weight:   float64(instsIn[c]) / float64(totalInsts),
		})
	}
	sortRepsByWeight(res.Representatives, func(r Representative) float64 { return r.Weight })
}

// sortRepsByWeight orders representatives by descending weight
// (insertion sort; K is small). Ties keep ascending phase id: only
// strictly heavier representatives move up. Shared by the
// per-benchmark and joint paths so their orderings coincide exactly.
func sortRepsByWeight[R any](reps []R, weight func(R) float64) {
	for i := 1; i < len(reps); i++ {
		for j := i; j > 0 && weight(reps[j]) > weight(reps[j-1]); j-- {
			reps[j], reps[j-1] = reps[j-1], reps[j]
		}
	}
}

// WeightedVector reconstructs a whole-program characteristic estimate
// from the representatives alone — the quantity a reduced simulation
// would use in place of the full trace.
func (r *Result) WeightedVector() mica.Vector {
	var out mica.Vector
	for _, rep := range r.Representatives {
		v := r.Vectors.Row(rep.Interval)
		for c := range out {
			out[c] += rep.Weight * v[c]
		}
	}
	return out
}

// FullVector is the instruction-weighted mean of all interval vectors:
// the whole-trace estimate the weighted representatives try to
// reconstruct. (For per-instruction metrics — mix fractions,
// probabilities — this is the exact full-trace value; set-valued
// working-set counts are averaged the same way, as SimPoint does.)
func (r *Result) FullVector() mica.Vector {
	var out mica.Vector
	total := r.TotalInsts()
	if total == 0 {
		return out
	}
	for i, iv := range r.Intervals {
		w := float64(iv.Insts) / float64(total)
		row := r.Vectors.Row(i)
		for c := range out {
			out[c] += w * row[c]
		}
	}
	return out
}

// ReconstructionError is the mean absolute per-characteristic
// difference between WeightedVector and FullVector — how much is lost
// by simulating only the representatives.
func (r *Result) ReconstructionError() float64 {
	w, f := r.WeightedVector(), r.FullVector()
	sum := 0.0
	for c := range w {
		d := w[c] - f[c]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(w))
}

// PhaseOf returns the phase of interval i.
func (r *Result) PhaseOf(i int) int { return r.Assign[i] }
