// Package phases implements interval-based program phase analysis, the
// extension the paper's related-work section points at (SimPoint-style
// phase classification, Sherwood et al. [18]; Eeckhout et al. [16] use
// the same microarchitecture-independent characteristics per phase): a
// benchmark's trace is split into fixed-length intervals, each interval
// is characterized with the Table II metrics, intervals are clustered
// into phases with k-means + BIC, and one representative interval is
// selected per phase with a weight proportional to the phase's share of
// execution — the recipe for reduced-trace simulation.
package phases

import (
	"errors"
	"fmt"

	"mica/internal/cluster"
	"mica/internal/mica"
	"mica/internal/stats"
	"mica/internal/vm"
)

// Config parameterizes phase analysis.
type Config struct {
	// IntervalLen is the interval length in dynamic instructions
	// (default 10k).
	IntervalLen uint64
	// MaxIntervals bounds the trace length (default 100 intervals).
	MaxIntervals int
	// MaxK bounds the BIC sweep (default 10).
	MaxK int
	// Seed drives k-means.
	Seed int64
	// Options configures the per-interval profiler.
	Options mica.Options
}

func (c Config) withDefaults() Config {
	if c.IntervalLen == 0 {
		c.IntervalLen = 10_000
	}
	if c.MaxIntervals == 0 {
		c.MaxIntervals = 100
	}
	if c.MaxK == 0 {
		c.MaxK = 10
	}
	return c
}

// Interval is one characterized trace slice.
type Interval struct {
	// Index is the interval's position in the trace.
	Index int
	// Start is the dynamic instruction number of the interval's first
	// instruction.
	Start uint64
	// Insts is the interval length (the last interval may be short).
	Insts uint64
	// Vec is the interval's characteristic vector.
	Vec mica.Vector
}

// Representative is one phase's chosen simulation point.
type Representative struct {
	// Phase is the cluster id.
	Phase int
	// Interval is the index of the interval closest to the phase
	// centroid.
	Interval int
	// Weight is the fraction of intervals belonging to the phase.
	Weight float64
}

// Result is the outcome of phase analysis for one benchmark.
type Result struct {
	Intervals []Interval
	// Assign maps each interval to its phase.
	Assign []int
	// K is the BIC-selected number of phases.
	K int
	// Representatives holds one weighted simulation point per phase,
	// ordered by descending weight.
	Representatives []Representative
}

// Analyze runs phase analysis over a machine's execution: up to
// MaxIntervals intervals of IntervalLen instructions each. The machine
// should be freshly instantiated.
func Analyze(m *vm.Machine, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{}
	var start uint64
	for i := 0; i < cfg.MaxIntervals; i++ {
		prof := mica.NewProfiler(cfg.Options)
		n, err := m.Run(cfg.IntervalLen, prof)
		if n > 0 {
			res.Intervals = append(res.Intervals, Interval{
				Index: i, Start: start, Insts: n, Vec: prof.Vector(),
			})
			start += n
		}
		if err == nil {
			break // program halted
		}
		if !errors.Is(err, vm.ErrBudget) {
			return nil, fmt.Errorf("phases: interval %d: %w", i, err)
		}
	}
	if len(res.Intervals) == 0 {
		return nil, fmt.Errorf("phases: program produced no instructions")
	}

	// Cluster intervals in the normalized characteristic space.
	mtx := stats.NewMatrix(len(res.Intervals), mica.NumChars)
	for i, iv := range res.Intervals {
		copy(mtx.Row(i), iv.Vec[:])
	}
	norm := stats.ZScoreNormalize(mtx)
	sel := cluster.SelectK(norm, cfg.MaxK, 0.9, cfg.Seed)
	res.Assign = sel.Best.Assign
	res.K = sel.Best.K

	// Pick the interval closest to each centroid as the phase
	// representative (the SimPoint selection rule).
	counts := make([]int, res.K)
	bestIdx := make([]int, res.K)
	bestDist := make([]float64, res.K)
	for c := range bestDist {
		bestDist[c] = -1
	}
	for i, c := range res.Assign {
		counts[c]++
		d := stats.Euclidean(norm.Row(i), sel.Best.Centroids.Row(c))
		if bestDist[c] < 0 || d < bestDist[c] {
			bestDist[c], bestIdx[c] = d, i
		}
	}
	total := float64(len(res.Intervals))
	for c := 0; c < res.K; c++ {
		if counts[c] == 0 {
			continue
		}
		res.Representatives = append(res.Representatives, Representative{
			Phase:    c,
			Interval: bestIdx[c],
			Weight:   float64(counts[c]) / total,
		})
	}
	// Order by descending weight (insertion sort; K is small).
	reps := res.Representatives
	for i := 1; i < len(reps); i++ {
		for j := i; j > 0 && reps[j].Weight > reps[j-1].Weight; j-- {
			reps[j], reps[j-1] = reps[j-1], reps[j]
		}
	}
	return res, nil
}

// WeightedVector reconstructs a whole-program characteristic estimate
// from the representatives alone — the quantity a reduced simulation
// would use in place of the full trace.
func (r *Result) WeightedVector() mica.Vector {
	var out mica.Vector
	for _, rep := range r.Representatives {
		v := r.Intervals[rep.Interval].Vec
		for c := range out {
			out[c] += rep.Weight * v[c]
		}
	}
	return out
}

// PhaseOf returns the phase of interval i.
func (r *Result) PhaseOf(i int) int { return r.Assign[i] }
