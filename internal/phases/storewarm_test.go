package phases

import (
	"encoding/json"
	"testing"

	"mica/internal/ivstore"
)

// warmBenches is a fixed benchmark set for the warm-start tests.
func warmBenches() []BenchmarkIntervals {
	return []BenchmarkIntervals{
		synthBench("w/a", 60, 21),
		synthBench("w/b", 45, 22),
		synthBench("w/c", 70, 23),
	}
}

// TestAnalyzeJointStoreWarmMatchesFresh: seeding a re-analysis of the
// same store from its own previous state must report the warm path
// taken and converge to the identical vocabulary (the seeds are
// already the sweep's fixed point).
func TestAnalyzeJointStoreWarmMatchesFresh(t *testing.T) {
	cfg := Config{IntervalLen: 1000, MaxIntervals: 70, MaxK: 6, Seed: 2006}
	st := storeFrom(t, t.TempDir(), ivstore.Float32, warmBenches())

	fresh, err := AnalyzeJointStore(st, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	ws := fresh.WarmState(st.ConfigHash())
	if ws == nil {
		t.Fatal("store-backed result yielded no warm state")
	}
	if ws.K != fresh.K || len(ws.Centroids) != fresh.K {
		t.Fatalf("warm state K=%d with %d centroids, result K=%d", ws.K, len(ws.Centroids), fresh.K)
	}

	warm, used, err := AnalyzeJointStoreWarmCtx(t.Context(), st, cfg, 2, ws)
	if err != nil {
		t.Fatal(err)
	}
	if !used {
		t.Fatal("matching warm state was not used")
	}
	compareJoint(t, "warm vs fresh", warm, fresh)
}

// TestWarmStateJSONRoundTrip: the persisted form (what WriteAux stores)
// survives a JSON round trip and still warm-starts.
func TestWarmStateJSONRoundTrip(t *testing.T) {
	cfg := Config{IntervalLen: 1000, MaxIntervals: 70, MaxK: 6, Seed: 2006}
	st := storeFrom(t, t.TempDir(), ivstore.Float32, warmBenches())
	fresh, err := AnalyzeJointStore(st, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(fresh.WarmState(st.ConfigHash()))
	if err != nil {
		t.Fatal(err)
	}
	var ws JointWarmState
	if err := json.Unmarshal(blob, &ws); err != nil {
		t.Fatal(err)
	}
	warm, used, err := AnalyzeJointStoreWarmCtx(t.Context(), st, cfg, 0, &ws)
	if err != nil {
		t.Fatal(err)
	}
	if !used {
		t.Fatal("round-tripped warm state was not used")
	}
	compareJoint(t, "round-tripped warm vs fresh", warm, fresh)
}

// TestWarmStateFallbacks: a stale or mismatched state silently falls
// back to the fresh path (used == false) and the result is unchanged.
func TestWarmStateFallbacks(t *testing.T) {
	cfg := Config{IntervalLen: 1000, MaxIntervals: 70, MaxK: 6, Seed: 2006}
	st := storeFrom(t, t.TempDir(), ivstore.Float32, warmBenches())
	fresh, err := AnalyzeJointStore(st, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	good := fresh.WarmState(st.ConfigHash())

	cases := map[string]*JointWarmState{
		"nil state":     nil,
		"hash mismatch": func() *JointWarmState { w := *good; w.ConfigHash = "other"; return &w }(),
		"k over budget": func() *JointWarmState { w := *good; w.K = cfg.MaxK + 1; return &w }(),
		"short mean":    func() *JointWarmState { w := *good; w.Mean = w.Mean[:3]; return &w }(),
		"drifted stats": func() *JointWarmState {
			w := *good
			w.Mean = append([]float64(nil), good.Mean...)
			w.Std = append([]float64(nil), good.Std...)
			for j := range w.Mean {
				w.Mean[j] += 50 * (w.Std[j] + 1)
			}
			return &w
		}(),
	}
	for name, ws := range cases {
		got, used, err := AnalyzeJointStoreWarmCtx(t.Context(), st, cfg, 0, ws)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if used {
			t.Errorf("%s: warm state was used, want fallback", name)
		}
		compareJoint(t, name, got, fresh)
	}
}

// TestWarmDriftSensitivity pins the drift metric's two regimes: an
// incremental perturbation (one benchmark's worth of rows shifting the
// statistics) stays far under WarmMaxDrift, while a substantively
// different dataset exceeds it.
func TestWarmDriftSensitivity(t *testing.T) {
	cfg := Config{IntervalLen: 1000, MaxIntervals: 70, MaxK: 6, Seed: 2006}
	base := warmBenches()
	st := storeFrom(t, t.TempDir(), ivstore.Float32, base)
	fresh, err := AnalyzeJointStore(st, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	ws := fresh.WarmState(st.ConfigHash())

	// One of three benchmarks re-characterized with a different seed: the
	// warm state must still be accepted against the changed store.
	changed := append([]BenchmarkIntervals(nil), base...)
	changed[1] = synthBench("w/b", 45, 99)
	st2 := storeFrom(t, t.TempDir(), ivstore.Float32, changed)
	ws2 := *ws
	ws2.ConfigHash = st2.ConfigHash()
	_, used, err := AnalyzeJointStoreWarmCtx(t.Context(), st2, cfg, 0, &ws2)
	if err != nil {
		t.Fatal(err)
	}
	if !used {
		t.Error("incremental one-benchmark change rejected the warm state")
	}
}

// TestWarmStateNilWithoutCapture: results that never captured
// clustering state (the in-memory path stops at deriveFrom, cache
// loads carry nothing) produce no warm state.
func TestWarmStateNilWithoutCapture(t *testing.T) {
	j, err := AnalyzeJoint(warmBenches(), Config{IntervalLen: 1000, MaxIntervals: 70, MaxK: 6, Seed: 2006})
	if err != nil {
		t.Fatal(err)
	}
	if j.WarmState("x") != nil {
		t.Error("in-memory joint result produced a warm state without normalization capture")
	}
	var nilRes *JointResult
	if nilRes.WarmState("x") != nil {
		t.Error("nil result produced a warm state")
	}
}
