package phases

import (
	"fmt"

	"mica/internal/cluster"
	"mica/internal/mica"
	"mica/internal/obs"
	"mica/internal/stats"
)

// BenchmarkIntervals pairs a benchmark's name with its characterized
// intervals — the input rows AnalyzeJoint concatenates. Only the
// Intervals and Vectors fields of Result are consulted; any
// per-benchmark clustering already present is ignored.
type BenchmarkIntervals struct {
	Name   string
	Result *Result
}

// RowRef is the provenance of one row of the joint matrix: which
// benchmark it came from (index into JointResult.Benchmarks) and which
// of that benchmark's intervals it is.
type RowRef struct {
	Bench    int `json:"bench"`
	Interval int `json:"interval"`
}

// JointRepresentative is one shared phase's chosen simulation point in
// a cross-benchmark phase space.
type JointRepresentative struct {
	// Phase is the shared cluster id.
	Phase int
	// Row is the representative's row in the joint matrix.
	Row int
	// Bench and Interval locate the row's source benchmark and
	// interval (Rows[Row] unpacked, kept inline for rendering).
	Bench    int
	Interval int
	// Weight is the phase's share of dynamic instructions across ALL
	// benchmarks in the joint space.
	Weight float64
}

// JointResult is a shared cross-benchmark phase vocabulary: the
// intervals of many benchmarks clustered ONCE in one normalized space,
// so a phase id means the same behavior no matter which benchmark an
// interval came from.
type JointResult struct {
	// Benchmarks names the input benchmarks, in input order.
	Benchmarks []string
	// Rows is the per-row provenance of the joint matrix.
	Rows []RowRef
	// RowInsts is the dynamic instruction count of each row's interval
	// (parallel to Rows) — the weights occupancy and representative
	// shares are computed from.
	RowInsts []uint64
	// Vectors is the concatenated interval-characteristic matrix
	// (raw, un-normalized), rows in Rows order.
	Vectors *stats.Matrix
	// Assign maps each joint row to its shared phase.
	Assign []int
	// K is the BIC-selected number of shared phases.
	K int
	// Representatives holds one weighted cross-benchmark simulation
	// point per phase, ordered by descending weight.
	Representatives []JointRepresentative
	// Occupancy is the benchmarks-by-phases instruction-share matrix:
	// Occupancy[b][c] is the fraction of benchmark b's dynamic
	// instructions spent in shared phase c. Each row sums to 1, so two
	// benchmarks with similar rows spend their time in the same shared
	// behaviors — the cross-benchmark redundancy signal a joint
	// vocabulary exists to expose.
	Occupancy *stats.Matrix

	// Warm-start capture (unexported so the JSON phase caches are
	// untouched): the normalized-space centroids the vocabulary was
	// derived from, and — for store-backed runs — the normalization
	// statistics they live under. WarmState packages them for
	// persistence; a JointResult loaded from a cache has none.
	centroids *stats.Matrix
	normMean  []float64
	normStd   []float64
}

// PhaseShare returns benchmark b's instruction share in shared phase c.
func (j *JointResult) PhaseShare(b, c int) float64 { return j.Occupancy.At(b, c) }

// TotalInsts returns the dynamic instruction count across every
// benchmark's intervals in the joint space.
func (j *JointResult) TotalInsts() uint64 {
	var n uint64
	for _, insts := range j.RowInsts {
		n += insts
	}
	return n
}

// AnalyzeJoint concatenates the interval vectors of many benchmarks
// into one matrix (provenance per row), clusters it once with the same
// normalize + SelectK + representative-selection recipe the
// per-benchmark path uses, and reports per-benchmark phase occupancy
// plus cross-benchmark representatives. Run on a single benchmark it
// is bit-identical to that benchmark's per-benchmark analysis — the
// differential contract the joint path is tested against.
func AnalyzeJoint(benches []BenchmarkIntervals, cfg Config) (*JointResult, error) {
	cfg = cfg.withDefaults()
	if len(benches) == 0 {
		return nil, fmt.Errorf("phases: joint analysis of zero benchmarks")
	}
	rows := 0
	for _, b := range benches {
		if b.Result == nil || len(b.Result.Intervals) == 0 || b.Result.Vectors == nil {
			return nil, fmt.Errorf("phases: joint analysis: %s has no characterized intervals", b.Name)
		}
		if b.Result.Vectors.Rows != len(b.Result.Intervals) || b.Result.Vectors.Cols != mica.NumChars {
			return nil, fmt.Errorf("phases: joint analysis: %s has a %dx%d vector matrix for %d intervals",
				b.Name, b.Result.Vectors.Rows, b.Result.Vectors.Cols, len(b.Result.Intervals))
		}
		rows += len(b.Result.Intervals)
	}

	j := &JointResult{
		Benchmarks: make([]string, len(benches)),
		Rows:       make([]RowRef, 0, rows),
		Vectors:    stats.NewMatrix(rows, mica.NumChars),
		RowInsts:   make([]uint64, 0, rows),
	}
	r := 0
	for bi, b := range benches {
		j.Benchmarks[bi] = b.Name
		copy(j.Vectors.Data[r*mica.NumChars:], b.Result.Vectors.Data)
		for ii, iv := range b.Result.Intervals {
			j.Rows = append(j.Rows, RowRef{Bench: bi, Interval: ii})
			j.RowInsts = append(j.RowInsts, iv.Insts)
		}
		r += len(b.Result.Intervals)
	}

	j.clusterJoint(cfg)
	return j, nil
}

// clusterJoint runs the shared clustering over the concatenated matrix
// and derives occupancy and representatives. Split out so a
// cache-loaded JointResult can be re-clustered under a new Config
// without re-profiling.
func (j *JointResult) clusterJoint(cfg Config) {
	nspan := obs.StartSpan("phases.normalize")
	norm := stats.ZScoreNormalize(j.Vectors)
	nspan.End()
	sel := cluster.SelectK(norm, cfg.MaxK, 0.9, cfg.Seed)
	j.deriveFrom(norm, sel)
}

// deriveFrom fills the clustering-derived half of a JointResult
// (assignment, representatives, occupancy) from a finished sweep over
// the normalized rows. norm may be a materialized matrix (in-memory
// path) or a streaming store view (AnalyzeJointStore); rows are
// consumed one at a time in ascending order, so either source yields
// bit-identical results.
func (j *JointResult) deriveFrom(norm cluster.Rows, sel cluster.Selection) {
	j.Assign = sel.Best.Assign
	j.K = sel.Best.K

	// Representative selection mirrors Result.cluster exactly (same
	// scan order, same strict-less tie-breaking) so a single-benchmark
	// joint run reproduces the per-benchmark representatives bit for
	// bit.
	instsIn := make([]uint64, j.K)
	bestIdx := make([]int, j.K)
	bestDist := make([]float64, j.K)
	for c := range bestDist {
		bestDist[c] = -1
	}
	var totalInsts uint64
	for _, n := range j.RowInsts {
		totalInsts += n
	}
	for i, c := range j.Assign {
		instsIn[c] += j.RowInsts[i]
		d := stats.Euclidean(norm.Row(i), sel.Best.Centroids.Row(c))
		if bestDist[c] < 0 || d < bestDist[c] {
			bestDist[c], bestIdx[c] = d, i
		}
	}
	j.Representatives = j.Representatives[:0]
	for c := 0; c < j.K; c++ {
		if instsIn[c] == 0 {
			continue
		}
		row := bestIdx[c]
		j.Representatives = append(j.Representatives, JointRepresentative{
			Phase:    c,
			Row:      row,
			Bench:    j.Rows[row].Bench,
			Interval: j.Rows[row].Interval,
			Weight:   float64(instsIn[c]) / float64(totalInsts),
		})
	}
	sortRepsByWeight(j.Representatives, func(r JointRepresentative) float64 { return r.Weight })

	// Per-benchmark occupancy: each benchmark's instruction share per
	// shared phase. Instruction counts are accumulated as integers and
	// divided once, so a single-benchmark occupancy row is bit-identical
	// to the per-benchmark representative weights (the joint-reduction
	// differential relies on this).
	j.Occupancy = stats.NewMatrix(len(j.Benchmarks), j.K)
	perBench := make([]uint64, len(j.Benchmarks))
	inPhase := stats.NewMatrix(len(j.Benchmarks), j.K)
	for i, ref := range j.Rows {
		perBench[ref.Bench] += j.RowInsts[i]
		c := j.Assign[i]
		inPhase.Set(ref.Bench, c, inPhase.At(ref.Bench, c)+float64(j.RowInsts[i]))
	}
	for b := range j.Benchmarks {
		for c := 0; c < j.K; c++ {
			j.Occupancy.Set(b, c, inPhase.At(b, c)/float64(perBench[b]))
		}
	}
}
