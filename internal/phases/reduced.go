// Reduced (phase-aware) profiling: the SimPoint-style payoff of phase
// analysis, driven by the paper's own key-characteristic claim. A cheap
// first pass streams the interval grid measuring only a small
// characteristic subset (by default the paper's Table IV GA-selected 8)
// on a sampled prefix of each interval, the intervals are clustered
// into phases with the existing engines, and a second pass re-executes
// the trace paying the full 47-characteristic + EV56/EV67 HPC
// characterization only on a few measured intervals per phase —
// everything else is fast-forwarded at bare-interpreter speed. The
// whole-run characteristic and HPC vectors are then extrapolated as
// phase-weighted sums of the per-phase measurement means, with
// per-metric relative error scored against the exact matched-grid
// full profile (CharacterizeExact).
package phases

import (
	"errors"
	"fmt"
	"math"

	"mica/internal/mica"
	"mica/internal/obs"
	"mica/internal/stats"
	"mica/internal/trace"
	"mica/internal/uarch"
)

// KeyCharacteristics returns the indices of the paper's 8 GA-selected
// key microarchitecture-independent characteristics (Table IV): the
// subset the paper shows positions a workload almost as well as all 47,
// at a fraction of the measurement cost. The reduced pipeline's cheap
// pass measures exactly these by default.
func KeyCharacteristics() []int {
	return []int{
		mica.CharPctLoads,
		mica.CharAvgInputOperands,
		mica.CharDepDistLE8,
		mica.CharLocalLoadStrideLE64,
		mica.CharGlobalLoadStrideLE512,
		mica.CharLocalStoreStrideLE4096,
		mica.CharDWSPages,
		mica.CharILP256,
	}
}

// KeySubset returns KeyCharacteristics as a Subset mask for
// mica.Options.
func KeySubset() []bool {
	s := make([]bool, mica.NumChars)
	for _, c := range KeyCharacteristics() {
		s[c] = true
	}
	return s
}

// DefaultSampleFrac is the fraction of each interval the cheap pass
// observes by default. The sampled prefix is used only to position the
// interval in the phase space; the expensive pass re-measures whole
// intervals, so sampling noise can only affect which intervals are
// chosen, never what is measured on them.
const DefaultSampleFrac = 0.2

// DefaultRepsPerPhase is how many intervals per phase the expensive
// pass measures by default. Averaging a few independent draws per
// phase beats a single simulation point: within-phase variance of the
// extrapolated metrics shrinks with the square root of the count while
// the replay still fast-forwards the overwhelming majority of the
// trace.
const DefaultRepsPerPhase = 3

// ReducedConfig parameterizes reduced profiling.
type ReducedConfig struct {
	// Phase is the interval grid and clustering configuration. Its
	// Options seed the cheap-pass profiler (PPM order, memory-dependence
	// tracking), except that Options.Subset is always replaced by
	// Subset below.
	Phase Config
	// Subset selects the cheap-pass characteristics; nil means
	// KeySubset(), the paper's 8.
	Subset []bool
	// SampleFrac is the fraction of each interval the cheap pass
	// observes (the rest of the interval executes unobserved); 0 means
	// DefaultSampleFrac, 1 observes every instruction.
	SampleFrac float64
	// RepsPerPhase bounds how many intervals per phase the expensive
	// pass measures; 0 means DefaultRepsPerPhase.
	RepsPerPhase int
	// FullOptions configures the expensive-pass profiler; the zero
	// value measures all 47 characteristics at the default PPM order
	// with memory dependencies tracked.
	FullOptions mica.Options
	// SkipHPC disables the EV56/EV67 machine models on the expensive
	// pass.
	SkipHPC bool
}

// WithDefaults returns c with zero fields replaced by the documented
// defaults — the normalized form reduced caches are keyed on.
func (c ReducedConfig) WithDefaults() ReducedConfig {
	c.Phase = c.Phase.WithDefaults()
	if c.Subset == nil {
		c.Subset = KeySubset()
	}
	// Out-of-range knobs are clamped, not trusted: a negative sample
	// fraction or reps count would otherwise survive into slice bounds
	// and uint64 conversions (and into cache keys).
	if c.SampleFrac <= 0 {
		c.SampleFrac = DefaultSampleFrac
	}
	if c.SampleFrac > 1 {
		c.SampleFrac = 1
	}
	if c.RepsPerPhase <= 0 {
		c.RepsPerPhase = DefaultRepsPerPhase
	}
	return c
}

// CheapConfig returns the effective cheap-pass phase configuration:
// Phase with Options.Subset replaced by the reduced subset. This is the
// configuration the cheap vocabulary is clustered — and cached — under.
func (c ReducedConfig) CheapConfig() Config {
	c = c.WithDefaults()
	cfg := c.Phase
	cfg.Options.Subset = c.Subset
	return cfg
}

// sampleLen returns how many instructions of an IntervalLen-instruction
// interval the cheap pass observes.
func (c ReducedConfig) sampleLen() uint64 {
	n := uint64(float64(c.Phase.IntervalLen) * c.SampleFrac)
	if n < 1 {
		n = 1
	}
	if n > c.Phase.IntervalLen {
		n = c.Phase.IntervalLen
	}
	return n
}

// MeasuredInterval is one interval the expensive pass characterized in
// full.
type MeasuredInterval struct {
	// Interval is the interval's index in the grid.
	Interval int
	// Phase is the cheap-pass phase the interval belongs to.
	Phase int
	// Insts is the interval's instruction count.
	Insts uint64
	// Chars is the full 47-characteristic measurement; HPC the machine
	// model metrics (zero when HPC was skipped).
	Chars mica.Vector
	HPC   uarch.HPCVector
}

// ReducedResult is the outcome of reduced profiling for one benchmark.
type ReducedResult struct {
	// Phases is the cheap-pass phase decomposition: interval vectors
	// hold the sampled subset characteristics (zero outside the
	// subset).
	Phases *Result
	// Measured holds the expensive-pass interval measurements, in
	// interval order: up to RepsPerPhase intervals per phase, closest
	// to the phase mean in the cheap space.
	Measured []MeasuredInterval
	// HasHPC reports whether the machine models ran on the expensive
	// pass.
	HasHPC bool
	// Chars and HPC are the whole-run extrapolations: phase-weighted
	// sums of the per-phase measurement means.
	Chars mica.Vector
	HPC   uarch.HPCVector
	// SampledInsts is how many instructions the cheap pass observed.
	SampledInsts uint64
	// MeasuredInsts is how many instructions the expensive pass
	// characterized.
	MeasuredInsts uint64
	// SkippedInsts is how many instructions the expensive pass
	// fast-forwarded unobserved.
	SkippedInsts uint64
}

// TotalInsts returns the trace length covered by the interval grid.
func (r *ReducedResult) TotalInsts() uint64 { return r.Phases.TotalInsts() }

// AnalyzeReduced runs the full two-pass reduced pipeline. cheap and
// replay must be two freshly instantiated sources of the same
// program: the first carries the cheap sampled pass, the second the
// measurement replay (the VM is deterministic, so both traverse the
// identical trace).
func AnalyzeReduced(cheap, replay trace.Source, cfg ReducedConfig) (*ReducedResult, error) {
	cfg = cfg.WithDefaults()
	return AnalyzeReducedWith(cheap, replay,
		mica.NewProfiler(cfg.CheapConfig().Options), mica.NewProfiler(cfg.FullOptions), cfg)
}

// AnalyzeReducedWith is AnalyzeReduced with caller-supplied cheap- and
// full-pass profilers, which must have been built from
// CheapConfig().Options and FullOptions respectively. Both are Reset
// before every interval they observe, so pooled profilers arrive clean
// — the mechanism the registry-wide reduced pipeline uses to share
// analyzer tables across benchmarks.
func AnalyzeReducedWith(cheap, replay trace.Source, cheapProf, fullProf *mica.Profiler, cfg ReducedConfig) (*ReducedResult, error) {
	cfg = cfg.WithDefaults()
	ph, sampled, err := characterizeReduced(cheap, cheapProf, cfg)
	if err != nil {
		return nil, err
	}
	ph.cluster(cfg.CheapConfig())
	rr, err := ReplayReduced(replay, fullProf, ph, cfg)
	if err != nil {
		return nil, err
	}
	rr.SampledInsts = sampled
	return rr, nil
}

// CharacterizeReducedWith is the cheap pass alone: the sampled
// subset-characteristic interval grid, without clustering. Joint
// reduced pipelines use it to characterize each benchmark before
// clustering all intervals at once. The profiler must have been built
// from CheapConfig().Options; it is Reset before every interval.
func CharacterizeReducedWith(m trace.Source, prof *mica.Profiler, cfg ReducedConfig) (*Result, error) {
	cfg = cfg.WithDefaults()
	res, _, err := characterizeReduced(m, prof, cfg)
	return res, err
}

// characterizeReduced streams the interval grid, observing only the
// first sampleLen instructions of each interval with the (Reset) cheap
// profiler and fast-forwarding the rest. With SampleFrac == 1 it is
// bit-identical to the plain streaming characterize, which is what
// lets a cached unsampled phase vocabulary stand in for the cheap
// pass. Interval.Insts always records the interval's full instruction
// count — the quantity weights and the replay grid are built from.
func characterizeReduced(m trace.Source, prof *mica.Profiler, cfg ReducedConfig) (*Result, uint64, error) {
	span := obs.StartSpan("phases.characterize")
	defer span.End()
	pcfg := cfg.Phase
	sample := cfg.sampleLen()
	res := &Result{}
	var vecs []float64
	var start, sampled uint64
	for i := 0; i < pcfg.MaxIntervals; i++ {
		prof.Reset()
		n, err := m.Run(sample, prof)
		sampled += n
		if n == sample && err != nil && errors.Is(err, trace.ErrBudget) && sample < pcfg.IntervalLen {
			var rest uint64
			rest, err = m.Run(pcfg.IntervalLen-sample, nil)
			n += rest
		}
		if n > 0 {
			v := prof.Vector()
			vecs = append(vecs, v[:]...)
			res.Intervals = append(res.Intervals, Interval{Index: i, Start: start, Insts: n})
			start += n
		}
		if err == nil {
			break // program halted
		}
		if !errors.Is(err, trace.ErrBudget) {
			return nil, 0, fmt.Errorf("phases: reduced interval %d: %w", i, err)
		}
	}
	if len(res.Intervals) == 0 {
		return nil, 0, fmt.Errorf("phases: program produced no instructions")
	}
	metIntervals.Add(float64(len(res.Intervals)))
	res.Vectors = &stats.Matrix{Rows: len(res.Intervals), Cols: mica.NumChars, Data: vecs}
	return res, sampled, nil
}

// measureInterval runs one interval under the full profiler (Reset
// first) plus a fresh HPC profiler unless skipped, returning the
// measured vectors. Shared by the per-benchmark replay, the joint
// replay and the exact-grid oracle so the three stay in lockstep — the
// reduced-vs-exact differential depends on them measuring identically.
func measureInterval(m trace.Source, fullProf *mica.Profiler, skipHPC bool, insts uint64) (uint64, mica.Vector, uarch.HPCVector, error) {
	fullProf.Reset()
	var obs trace.Observer = fullProf
	var hpc *uarch.HPCProfiler
	if !skipHPC {
		hpc = uarch.NewHPCProfiler()
		obs = trace.Multi{fullProf, hpc}
	}
	n, err := m.Run(insts, obs)
	var hv uarch.HPCVector
	if hpc != nil {
		hv = hpc.Vector()
	}
	return n, fullProf.Vector(), hv, err
}

// measurementPlan selects which intervals the expensive pass measures:
// for each phase, the reps intervals closest to the phase's mean in
// the z-scored cheap space (ties broken by ascending interval index).
// Returned as a map from interval index to phase.
func measurementPlan(ph *Result, reps int) map[int]int {
	return measurementPlanRows(stats.ZScoreNormalize(ph.Vectors), ph.Assign, ph.K, reps)
}

// ReplayReduced is the expensive pass: it re-executes the trace over
// the cheap pass's interval grid, characterizing only the planned
// intervals (up to RepsPerPhase per phase) with the full profiler plus
// the EV56/EV67 machine models (unless skipped), fast-forwarding every
// other interval, then extrapolates the whole-run vectors as
// phase-weighted sums of the per-phase measurement means. The profiler
// must have been built from cfg.FullOptions; it is Reset before every
// measured interval.
func ReplayReduced(m trace.Source, fullProf *mica.Profiler, ph *Result, cfg ReducedConfig) (*ReducedResult, error) {
	span := obs.StartSpan("phases.replay")
	defer span.End()
	cfg = cfg.WithDefaults()
	rr := &ReducedResult{Phases: ph, HasHPC: !cfg.SkipHPC}
	// Reconstruct the cheap pass's observation count from the grid: it
	// observed min(sampleLen, Insts) of every interval. Replays driven
	// off a cached vocabulary get correct cost accounting this way even
	// though their cheap pass ran in another process.
	sample := cfg.sampleLen()
	for _, iv := range ph.Intervals {
		if iv.Insts < sample {
			rr.SampledInsts += iv.Insts
		} else {
			rr.SampledInsts += sample
		}
	}
	plan := measurementPlan(ph, cfg.RepsPerPhase)
	for i, iv := range ph.Intervals {
		phase, wanted := plan[i]
		if !wanted {
			n, err := m.Run(iv.Insts, nil)
			rr.SkippedInsts += n
			if err := replayCheck(i, iv, n, err); err != nil {
				return nil, err
			}
			continue
		}
		n, chars, hv, err := measureInterval(m, fullProf, cfg.SkipHPC, iv.Insts)
		rr.MeasuredInsts += n
		if err := replayCheck(i, iv, n, err); err != nil {
			return nil, err
		}
		rr.Measured = append(rr.Measured, MeasuredInterval{
			Interval: i, Phase: phase, Insts: iv.Insts, Chars: chars, HPC: hv,
		})
	}
	rr.extrapolate()
	return rr, nil
}

// extrapolate fills the whole-run vectors: each phase's estimate is
// the instruction-weighted mean of its measured intervals, and the
// whole run is the phase-instruction-share-weighted sum of the phase
// estimates.
func (r *ReducedResult) extrapolate() {
	ph := r.Phases
	instsIn := make([]uint64, ph.K)
	for i, c := range ph.Assign {
		instsIn[c] += ph.Intervals[i].Insts
	}
	total := ph.TotalInsts()
	measuredIn := make([]uint64, ph.K)
	for _, mi := range r.Measured {
		measuredIn[mi.Phase] += mi.Insts
	}
	// Phase estimates first (instruction-weighted means of each phase's
	// measured intervals), then the phase-share-weighted sum — the same
	// association order as the joint extrapolation, so a
	// single-benchmark joint reduction is bit-identical to this one.
	phaseChars := make([]mica.Vector, ph.K)
	phaseHPC := make([]uarch.HPCVector, ph.K)
	for _, mi := range r.Measured {
		w := float64(mi.Insts) / float64(measuredIn[mi.Phase])
		for c := range phaseChars[mi.Phase] {
			phaseChars[mi.Phase][c] += w * mi.Chars[c]
		}
		if r.HasHPC {
			for c := range phaseHPC[mi.Phase] {
				phaseHPC[mi.Phase][c] += w * mi.HPC[c]
			}
		}
	}
	r.Chars = mica.Vector{}
	r.HPC = uarch.HPCVector{}
	for p := 0; p < ph.K; p++ {
		if instsIn[p] == 0 {
			continue
		}
		w := float64(instsIn[p]) / float64(total)
		for c := range r.Chars {
			r.Chars[c] += w * phaseChars[p][c]
		}
		if r.HasHPC {
			for c := range r.HPC {
				r.HPC[c] += w * phaseHPC[p][c]
			}
		}
	}
}

// replayCheck verifies the replay pass retired exactly the interval's
// instruction count — the determinism contract between the two passes.
func replayCheck(i int, iv Interval, n uint64, err error) error {
	if err != nil && !errors.Is(err, trace.ErrBudget) {
		return fmt.Errorf("phases: reduced replay interval %d: %w", i, err)
	}
	if n != iv.Insts {
		return fmt.Errorf("phases: reduced replay diverged at interval %d: retired %d instructions, cheap pass saw %d",
			i, n, iv.Insts)
	}
	return nil
}

// ExactProfile is the matched-grid full characterization the reduced
// extrapolation is evaluated against: every interval measured with the
// full profiler and machine models, aggregated as the
// instruction-weighted mean — exactly what the reduced extrapolation
// converges to when every interval is measured.
type ExactProfile struct {
	Chars mica.Vector
	HPC   uarch.HPCVector
	// Intervals is the grid the exact profile was measured over.
	Intervals []Interval
}

// TotalInsts returns the profiled trace length.
func (e *ExactProfile) TotalInsts() uint64 {
	var n uint64
	for _, iv := range e.Intervals {
		n += iv.Insts
	}
	return n
}

// CharacterizeExact measures the exact matched-grid full profile on a
// freshly instantiated machine: the same interval grid as the reduced
// pipeline, with the full 47-characteristic + HPC characterization
// paid on EVERY interval. It is both the differential-test oracle for
// the reduced extrapolation and the cost baseline the tracked
// `mica-bench -reduced` speedup is measured against.
func CharacterizeExact(m trace.Source, cfg ReducedConfig) (*ExactProfile, error) {
	cfg = cfg.WithDefaults()
	pcfg := cfg.Phase
	prof := mica.NewProfiler(cfg.FullOptions)
	ex := &ExactProfile{}
	type weighted struct {
		chars mica.Vector
		hpc   uarch.HPCVector
	}
	var rows []weighted
	var start uint64
	for i := 0; i < pcfg.MaxIntervals; i++ {
		n, chars, hv, err := measureInterval(m, prof, cfg.SkipHPC, pcfg.IntervalLen)
		if n > 0 {
			rows = append(rows, weighted{chars: chars, hpc: hv})
			ex.Intervals = append(ex.Intervals, Interval{Index: i, Start: start, Insts: n})
			start += n
		}
		if err == nil {
			break
		}
		if !errors.Is(err, trace.ErrBudget) {
			return nil, fmt.Errorf("phases: exact interval %d: %w", i, err)
		}
	}
	if len(ex.Intervals) == 0 {
		return nil, fmt.Errorf("phases: program produced no instructions")
	}
	total := ex.TotalInsts()
	for i, iv := range ex.Intervals {
		w := float64(iv.Insts) / float64(total)
		for c := range ex.Chars {
			ex.Chars[c] += w * rows[i].chars[c]
		}
		for c := range ex.HPC {
			ex.HPC[c] += w * rows[i].hpc[c]
		}
	}
	return ex, nil
}

// Relative-error scoring. Metrics come in two shapes, and each gets
// the standard treatment for its shape:
//
//   - fraction-valued metrics (instruction-mix shares, dependence
//     distance and stride distribution buckets, PPM and machine-model
//     miss rates) live on [0, 1]; their error is measured against that
//     full range, so a near-empty bucket (exact 0.002) cannot turn a
//     negligible absolute difference into a huge quotient;
//   - unbounded-magnitude metrics (ILP, operand counts, working-set
//     sizes, IPCs) are measured against the exact value, floored far
//     below any value the profilers produce.
const errorFloor = 1e-9

// fractionChar reports whether characteristic c is fraction-valued.
func fractionChar(c int) bool {
	switch {
	case c >= mica.CharPctLoads && c <= mica.CharPctFP:
		return true // instruction mix shares
	case c >= mica.CharDepDistEq1 && c <= mica.CharDepDistLE64:
		return true // dependence distance distribution
	case c >= mica.CharLocalLoadStride0 && c <= mica.CharGlobalStoreStrideLE4096:
		return true // stride distributions
	case c >= mica.CharPPMGAg && c <= mica.CharPPMPAs:
		return true // PPM miss rates
	}
	return false // ILP, register traffic averages, working sets
}

// fractionHPC reports whether HPC metric c is fraction-valued.
func fractionHPC(c int) bool {
	// Everything except the two IPCs is a rate or a mix share.
	return c != uarch.HPCIPCEV56 && c != uarch.HPCIPCEV67
}

// relErr scores got against want: |got-want| over |want| (floored) for
// unbounded metrics, |got-want| itself for fraction-valued ones (the
// denominator is the unit range).
func relErr(got, want float64, fraction bool) float64 {
	if fraction {
		return math.Abs(got - want)
	}
	den := math.Abs(want)
	if den < errorFloor {
		den = errorFloor
	}
	return math.Abs(got-want) / den
}

// CharRelativeError scores one extrapolated characteristic against its
// exact value.
func CharRelativeError(c int, got, want float64) float64 {
	return relErr(got, want, fractionChar(c))
}

// HPCRelativeError scores one extrapolated HPC metric against its
// exact value.
func HPCRelativeError(c int, got, want float64) float64 {
	return relErr(got, want, fractionHPC(c))
}

// CharErrors returns the per-characteristic relative errors of the
// extrapolated whole-run vector against the exact profile.
func (r *ReducedResult) CharErrors(ex *ExactProfile) [mica.NumChars]float64 {
	var out [mica.NumChars]float64
	for c := range out {
		out[c] = CharRelativeError(c, r.Chars[c], ex.Chars[c])
	}
	return out
}

// HPCErrors returns the per-HPC-metric relative errors of the
// extrapolated whole-run vector against the exact profile.
func (r *ReducedResult) HPCErrors(ex *ExactProfile) [uarch.NumHPCMetrics]float64 {
	var out [uarch.NumHPCMetrics]float64
	for c := range out {
		out[c] = HPCRelativeError(c, r.HPC[c], ex.HPC[c])
	}
	return out
}

// MaxRelativeError returns the worst per-metric relative error of the
// reduced extrapolation across the 47 characteristics and (when HPC
// was measured) the 13 HPC metrics.
func (r *ReducedResult) MaxRelativeError(ex *ExactProfile) float64 {
	worst := 0.0
	for _, e := range r.CharErrors(ex) {
		if e > worst {
			worst = e
		}
	}
	if r.HasHPC {
		for _, e := range r.HPCErrors(ex) {
			if e > worst {
				worst = e
			}
		}
	}
	return worst
}

// JointReduced is the outcome of joint reduced profiling: the shared
// cross-benchmark phase vocabulary's measured intervals characterized
// fully ONCE, and every member benchmark's whole-run vectors
// extrapolated from those shared measurements weighted by its
// occupancy row. This is the cross-benchmark redundancy payoff of the
// joint vocabulary: a handful of full interval characterizations for
// the whole benchmark set instead of per benchmark.
type JointReduced struct {
	Joint *JointResult
	// Measured holds the full measurements of the shared phases'
	// chosen intervals (up to RepsPerPhase per phase), annotated with
	// their source benchmark.
	Measured []JointMeasuredInterval
	// HasHPC reports whether the machine models ran.
	HasHPC bool
	// Chars and HPC are the per-benchmark whole-run extrapolations
	// (indexed like Joint.Benchmarks): occupancy-weighted sums of the
	// shared phase estimates.
	Chars []mica.Vector
	HPC   []uarch.HPCVector
	// MeasuredInsts and SkippedInsts account the replay cost: only
	// benchmarks owning a measured interval are re-executed at all.
	MeasuredInsts uint64
	SkippedInsts  uint64
}

// JointMeasuredInterval is one fully characterized interval of a joint
// reduction.
type JointMeasuredInterval struct {
	// Row is the interval's row in the joint matrix; Bench and
	// Interval unpack its provenance.
	Row      int
	Bench    int
	Interval int
	// Phase is the shared phase the row belongs to.
	Phase int
	// Insts is the interval's instruction count.
	Insts uint64
	Chars mica.Vector
	HPC   uarch.HPCVector
}

// jointMeasurementPlan selects the measured rows of a joint
// vocabulary: per shared phase, the RepsPerPhase rows closest to the
// phase mean in the z-scored joint space (ties by ascending row).
// measurementPlan reads only the vectors, assignment and K, so no
// interval grid needs to be materialized.
func jointMeasurementPlan(j *JointResult, reps int) map[int]int {
	return measurementPlan(&Result{Vectors: j.Vectors, Assign: j.Assign, K: j.K}, reps)
}

// ReplayJoint measures the shared phases' chosen intervals and
// extrapolates every member benchmark. sources must return a fresh
// event source for benchmark bi (indexed like j.Benchmarks); it is
// called only for benchmarks that own a measured interval.
func ReplayJoint(j *JointResult, sources func(bench int) (trace.Source, error), cfg ReducedConfig) (*JointReduced, error) {
	cfg = cfg.WithDefaults()
	if j.Vectors == nil {
		return nil, fmt.Errorf("phases: joint replay: vocabulary carries no vectors (store-backed results replay via ReplayJointStore)")
	}
	return replayJointPlan(j, jointMeasurementPlan(j, cfg.RepsPerPhase), sources, cfg)
}

// replayJointPlan is the replay body shared by the in-memory and
// store-backed joint reductions; plan maps joint row index to phase
// and cfg must already carry its defaults.
func replayJointPlan(j *JointResult, plan map[int]int, sources func(bench int) (trace.Source, error), cfg ReducedConfig) (*JointReduced, error) {
	span := obs.StartSpan("phases.replay")
	defer span.End()
	jr := &JointReduced{
		Joint:  j,
		HasHPC: !cfg.SkipHPC,
		Chars:  make([]mica.Vector, len(j.Benchmarks)),
		HPC:    make([]uarch.HPCVector, len(j.Benchmarks)),
	}

	// Group the planned rows by source benchmark; each owning
	// benchmark is replayed once through its interval prefix up to the
	// last measured interval. Joint rows are appended per benchmark in
	// interval order, so a benchmark's interval lengths can be read
	// back off the provenance.
	type target struct {
		interval, row, phase int
	}
	byBench := make(map[int][]target)
	for row, phase := range plan {
		ref := j.Rows[row]
		byBench[ref.Bench] = append(byBench[ref.Bench], target{ref.Interval, row, phase})
	}
	lens := make(map[int][]uint64)
	for r, ref := range j.Rows {
		if _, owns := byBench[ref.Bench]; owns {
			lens[ref.Bench] = append(lens[ref.Bench], j.RowInsts[r])
		}
	}

	prof := mica.NewProfiler(cfg.FullOptions)
	for bi := range j.Benchmarks {
		targets, owns := byBench[bi]
		if !owns {
			continue
		}
		measure := make(map[int]target, len(targets))
		last := 0
		for _, t := range targets {
			measure[t.interval] = t
			if t.interval > last {
				last = t.interval
			}
		}
		m, err := sources(bi)
		if err != nil {
			return nil, fmt.Errorf("phases: joint replay of %s: %w", j.Benchmarks[bi], err)
		}
		for i := 0; i <= last; i++ {
			iv := Interval{Index: i, Insts: lens[bi][i]}
			tgt, wanted := measure[i]
			if !wanted {
				n, err := m.Run(iv.Insts, nil)
				jr.SkippedInsts += n
				if err := replayCheck(i, iv, n, err); err != nil {
					return nil, fmt.Errorf("%s: %w", j.Benchmarks[bi], err)
				}
				continue
			}
			n, chars, hv, err := measureInterval(m, prof, cfg.SkipHPC, iv.Insts)
			jr.MeasuredInsts += n
			if err := replayCheck(i, iv, n, err); err != nil {
				return nil, fmt.Errorf("%s: %w", j.Benchmarks[bi], err)
			}
			jr.Measured = append(jr.Measured, JointMeasuredInterval{
				Row: tgt.row, Bench: bi, Interval: i, Phase: tgt.phase,
				Insts: iv.Insts, Chars: chars, HPC: hv,
			})
		}
	}

	// Shared phase estimates: instruction-weighted means of each
	// phase's measured intervals; then every benchmark extrapolates as
	// the occupancy-weighted sum. Phases without a measured interval
	// carry zero occupancy everywhere (they are empty), so the sum is
	// complete.
	measuredIn := make([]uint64, j.K)
	for _, mi := range jr.Measured {
		measuredIn[mi.Phase] += mi.Insts
	}
	phaseChars := make([]mica.Vector, j.K)
	phaseHPC := make([]uarch.HPCVector, j.K)
	for _, mi := range jr.Measured {
		w := float64(mi.Insts) / float64(measuredIn[mi.Phase])
		for c := range phaseChars[mi.Phase] {
			phaseChars[mi.Phase][c] += w * mi.Chars[c]
		}
		if jr.HasHPC {
			for c := range phaseHPC[mi.Phase] {
				phaseHPC[mi.Phase][c] += w * mi.HPC[c]
			}
		}
	}
	for bi := range j.Benchmarks {
		for p := 0; p < j.K; p++ {
			w := j.Occupancy.At(bi, p)
			if w == 0 {
				continue
			}
			for c := range jr.Chars[bi] {
				jr.Chars[bi][c] += w * phaseChars[p][c]
			}
			if jr.HasHPC {
				for c := range jr.HPC[bi] {
					jr.HPC[bi][c] += w * phaseHPC[p][c]
				}
			}
		}
	}
	return jr, nil
}
