package phases

import (
	"reflect"
	"strings"
	"testing"

	"mica/internal/cluster"
	"mica/internal/ivstore"
	"mica/internal/mica"
	"mica/internal/stats"
	"mica/internal/trace"
)

// TestMeasurementPlanRowsMatchesMatrix: the generalized planner over a
// streaming store view produces the same plan as the matrix-backed one
// over the same (float32-rounded) data.
func TestMeasurementPlanRowsMatchesMatrix(t *testing.T) {
	benches := []BenchmarkIntervals{
		synthBench("p/a", 50, 31),
		synthBench("p/b", 40, 32),
	}
	cfg := Config{IntervalLen: 1000, MaxIntervals: 50, MaxK: 6, Seed: 2006}
	st := storeFrom(t, t.TempDir(), ivstore.Float32, benches)

	want, err := AnalyzeJoint(roundF32(benches), cfg)
	if err != nil {
		t.Fatal(err)
	}
	planMem := jointMeasurementPlan(want, 2)

	mean, std := cluster.ColumnStats(st.Rows())
	planStore := measurementPlanRows(cluster.Normalized(st.Rows(), mean, std), want.Assign, want.K, 2)
	if !reflect.DeepEqual(planMem, planStore) {
		t.Fatalf("store-backed plan %v differs from matrix plan %v", planStore, planMem)
	}
}

// TestReplayJointStoreMatchesReplayJoint is the store-backed joint
// reduction differential: characterize the two-phase program cheaply,
// push the cheap vectors through a float32 store, cluster and replay
// from the store — and compare bit for bit against the in-memory joint
// replay over the same rounded vectors.
func TestReplayJointStoreMatchesReplayJoint(t *testing.T) {
	cfg := reducedTestConfig()
	ph, err := CharacterizeReducedWith(newMachine(t), mica.NewProfiler(cfg.CheapConfig().Options), cfg)
	if err != nil {
		t.Fatal(err)
	}
	benches := []BenchmarkIntervals{{Name: "twophase", Result: ph}}
	machines := func(int) (trace.Source, error) { return newMachine(t), nil }

	st := storeFrom(t, t.TempDir(), ivstore.Float32, benches)
	jStore, err := AnalyzeJointStore(st, cfg.CheapConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReplayJointStore(st, jStore, machines, cfg)
	if err != nil {
		t.Fatal(err)
	}

	jMem, err := AnalyzeJoint(roundF32(benches), cfg.CheapConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, err := ReplayJoint(jMem, machines, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got.Chars, want.Chars) {
		t.Error("store-backed joint replay extrapolated different characteristic vectors")
	}
	if !reflect.DeepEqual(got.HPC, want.HPC) {
		t.Error("store-backed joint replay extrapolated different HPC vectors")
	}
	if got.MeasuredInsts != want.MeasuredInsts {
		t.Errorf("store replay measured %d insts, in-memory %d", got.MeasuredInsts, want.MeasuredInsts)
	}
}

// TestReplayJointRejectsVectorless: handing a store-backed vocabulary
// (no Vectors matrix) to the in-memory replay fails with an error that
// points at ReplayJointStore.
func TestReplayJointRejectsVectorless(t *testing.T) {
	j := &JointResult{Benchmarks: []string{"x"}, K: 1, Assign: []int{0}}
	_, err := ReplayJoint(j, func(int) (trace.Source, error) { return nil, nil }, reducedTestConfig())
	if err == nil || !strings.Contains(err.Error(), "ReplayJointStore") {
		t.Fatalf("vectorless replay error = %v, want a pointer to ReplayJointStore", err)
	}
}

// TestReplayJointStoreRowMismatch: a vocabulary built for a different
// store (row count mismatch) is rejected up front.
func TestReplayJointStoreRowMismatch(t *testing.T) {
	st := storeFrom(t, t.TempDir(), ivstore.Float32, []BenchmarkIntervals{synthBench("m/a", 20, 41)})
	j := &JointResult{Rows: make([]RowRef, 7)}
	_, err := ReplayJointStore(st, j, func(int) (trace.Source, error) { return nil, nil }, reducedTestConfig())
	if err == nil || !strings.Contains(err.Error(), "rows") {
		t.Fatalf("row-count mismatch error = %v", err)
	}
}

// TestReplayReducedShardMatchesInMemory: lifting a benchmark's cheap
// pass out of a store shard and replaying it is bit-identical to the
// in-memory replay over the same float32-rounded cheap vectors.
func TestReplayReducedShardMatchesInMemory(t *testing.T) {
	cfg := reducedTestConfig()
	ph, err := CharacterizeReducedWith(newMachine(t), mica.NewProfiler(cfg.CheapConfig().Options), cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := storeFrom(t, t.TempDir(), ivstore.Float32, []BenchmarkIntervals{{Name: "twophase", Result: ph}})
	sd, err := st.CachedShard(0)
	if err != nil {
		t.Fatal(err)
	}

	got, err := ReplayReducedShard(newMachine(t), mica.NewProfiler(cfg.FullOptions), sd, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// In-memory analog: the same rounded vectors clustered under the
	// cheap config, replayed the same way.
	rounded := roundF32([]BenchmarkIntervals{{Name: "twophase", Result: ph}})[0].Result
	rounded.cluster(cfg.CheapConfig())
	want, err := ReplayReduced(newMachine(t), mica.NewProfiler(cfg.FullOptions), rounded, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if got.Chars != want.Chars {
		t.Error("shard replay extrapolated a different characteristic vector")
	}
	if got.HPC != want.HPC {
		t.Error("shard replay extrapolated a different HPC vector")
	}
	if got.MeasuredInsts != want.MeasuredInsts || got.SkippedInsts != want.SkippedInsts {
		t.Errorf("shard replay accounting (%d/%d) differs from in-memory (%d/%d)",
			got.MeasuredInsts, got.SkippedInsts, want.MeasuredInsts, want.SkippedInsts)
	}
	if got.Phases.K != want.Phases.K {
		t.Errorf("shard replay clustered K=%d, in-memory K=%d", got.Phases.K, want.Phases.K)
	}
}

// TestResultFromShardGrid: the interval grid rebuilt from a shard's
// instruction counts is the original contiguous grid.
func TestResultFromShardGrid(t *testing.T) {
	bench := synthBench("g/a", 25, 51)
	st := storeFrom(t, t.TempDir(), ivstore.Float32, []BenchmarkIntervals{bench})
	sd, err := st.CachedShard(0)
	if err != nil {
		t.Fatal(err)
	}
	res := ResultFromShard(sd, reducedTestConfig())
	if !reflect.DeepEqual(res.Intervals, bench.Result.Intervals) {
		t.Fatal("rebuilt interval grid differs from the original")
	}
	if res.K < 1 || len(res.Assign) != len(res.Intervals) || len(res.Representatives) == 0 {
		t.Fatalf("rebuilt result not clustered: K=%d, %d assignments", res.K, len(res.Assign))
	}
	var _ *stats.Matrix = res.Vectors
}
