package phases

import (
	"math"
	"reflect"
	"testing"

	"mica/internal/mica"
)

// characterizeKernel runs the streaming characterization (no
// clustering) over one crafted kernel.
func characterizeKernel(t *testing.T, name, src string, cfg Config) *Result {
	t.Helper()
	prof := mica.NewProfiler(cfg.Options)
	res, err := CharacterizeWith(machineFor(t, name, src), prof, cfg)
	if err != nil {
		t.Fatalf("%s: characterize: %v", name, err)
	}
	return res
}

// TestCharacterizeMatchesAnalyze pins the characterize/cluster split:
// CharacterizeWith must produce exactly the intervals and vectors of
// the full analysis, with the clustering fields left empty.
func TestCharacterizeMatchesAnalyze(t *testing.T) {
	cfg := Config{IntervalLen: 2_000, MaxIntervals: 20, MaxK: 4, Seed: 7}
	char := characterizeKernel(t, "twophase", twoPhaseProgram, cfg)
	full, err := Analyze(machineFor(t, "twophase", twoPhaseProgram), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(char.Intervals, full.Intervals) {
		t.Error("characterize intervals diverge from full analysis")
	}
	if !reflect.DeepEqual(char.Vectors.Data, full.Vectors.Data) {
		t.Error("characterize vectors diverge from full analysis")
	}
	if char.Assign != nil || char.K != 0 || char.Representatives != nil {
		t.Error("characterize populated clustering fields")
	}
}

// TestAnalyzeJointSingleBenchmarkBitIdentical is the differential
// contract: a joint analysis over exactly one benchmark must reproduce
// the per-benchmark analysis bit for bit — assignment, K, and
// representatives (with Row == Interval and Bench == 0).
func TestAnalyzeJointSingleBenchmarkBitIdentical(t *testing.T) {
	kernels := []struct{ name, src string }{
		{"twophase", twoPhaseProgram},
		{"strided", stridedProgram},
		{"branchy", branchyProgram},
	}
	cfg := Config{IntervalLen: 2_000, MaxIntervals: 25, MaxK: 4, Seed: 7}
	for _, k := range kernels {
		want, err := Analyze(machineFor(t, k.name, k.src), cfg)
		if err != nil {
			t.Fatal(err)
		}
		joint, err := AnalyzeJoint([]BenchmarkIntervals{
			{Name: k.name, Result: characterizeKernel(t, k.name, k.src, cfg)},
		}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if joint.K != want.K || !reflect.DeepEqual(joint.Assign, want.Assign) {
			t.Errorf("%s: joint assignment diverges (K %d vs %d)", k.name, joint.K, want.K)
		}
		if !reflect.DeepEqual(joint.Vectors.Data, want.Vectors.Data) {
			t.Errorf("%s: joint matrix diverges", k.name)
		}
		if len(joint.Representatives) != len(want.Representatives) {
			t.Fatalf("%s: %d joint representatives vs %d", k.name,
				len(joint.Representatives), len(want.Representatives))
		}
		for i, jr := range joint.Representatives {
			wr := want.Representatives[i]
			if jr.Phase != wr.Phase || jr.Interval != wr.Interval || jr.Weight != wr.Weight ||
				jr.Row != wr.Interval || jr.Bench != 0 {
				t.Errorf("%s: representative %d = %+v, want %+v", k.name, i, jr, wr)
			}
		}
	}
}

// TestAnalyzeJointProvenanceAndOccupancy checks the multi-benchmark
// invariants: rows concatenate in input order with correct provenance,
// occupancy rows sum to 1, and every representative's provenance
// agrees with its row.
func TestAnalyzeJointProvenanceAndOccupancy(t *testing.T) {
	cfg := Config{IntervalLen: 2_000, MaxIntervals: 15, MaxK: 5, Seed: 3}
	inputs := []BenchmarkIntervals{
		{Name: "twophase", Result: characterizeKernel(t, "twophase", twoPhaseProgram, cfg)},
		{Name: "strided", Result: characterizeKernel(t, "strided", stridedProgram, cfg)},
		{Name: "branchy", Result: characterizeKernel(t, "branchy", branchyProgram, cfg)},
	}
	joint, err := AnalyzeJoint(inputs, cfg)
	if err != nil {
		t.Fatal(err)
	}

	wantRows := 0
	for _, in := range inputs {
		wantRows += len(in.Result.Intervals)
	}
	if len(joint.Rows) != wantRows || joint.Vectors.Rows != wantRows ||
		len(joint.Assign) != wantRows || len(joint.RowInsts) != wantRows {
		t.Fatalf("joint shapes: rows=%d vectors=%d assign=%d insts=%d want %d",
			len(joint.Rows), joint.Vectors.Rows, len(joint.Assign), len(joint.RowInsts), wantRows)
	}

	// Provenance: row r of the joint matrix is bench b's interval i,
	// vector and instruction count included.
	r := 0
	for b, in := range inputs {
		for i := range in.Result.Intervals {
			ref := joint.Rows[r]
			if ref.Bench != b || ref.Interval != i {
				t.Fatalf("row %d provenance = %+v, want bench %d interval %d", r, ref, b, i)
			}
			if !reflect.DeepEqual(joint.Vectors.Row(r), in.Result.Vectors.Row(i)) {
				t.Fatalf("row %d vector diverges from %s interval %d", r, in.Name, i)
			}
			if joint.RowInsts[r] != in.Result.Intervals[i].Insts {
				t.Fatalf("row %d insts diverge", r)
			}
			r++
		}
	}

	// Occupancy: one row per benchmark, each summing to 1.
	if joint.Occupancy.Rows != len(inputs) || joint.Occupancy.Cols != joint.K {
		t.Fatalf("occupancy is %dx%d, want %dx%d",
			joint.Occupancy.Rows, joint.Occupancy.Cols, len(inputs), joint.K)
	}
	for b := range inputs {
		sum := 0.0
		for c := 0; c < joint.K; c++ {
			share := joint.PhaseShare(b, c)
			if share < 0 || share > 1+1e-12 {
				t.Errorf("occupancy[%d][%d] = %g out of range", b, c, share)
			}
			sum += share
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("benchmark %d occupancy sums to %g", b, sum)
		}
	}

	// Representatives: weights sum to 1, provenance consistent, sorted
	// by descending weight.
	sum := 0.0
	for i, rep := range joint.Representatives {
		if joint.Rows[rep.Row] != (RowRef{Bench: rep.Bench, Interval: rep.Interval}) {
			t.Errorf("representative %d provenance inconsistent: %+v vs %+v",
				i, rep, joint.Rows[rep.Row])
		}
		if joint.Assign[rep.Row] != rep.Phase {
			t.Errorf("representative %d not a member of its phase", i)
		}
		if i > 0 && rep.Weight > joint.Representatives[i-1].Weight {
			t.Errorf("representatives not sorted by weight")
		}
		sum += rep.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("representative weights sum to %g", sum)
	}

	// The compute-vs-memory contrast that separates phases within one
	// benchmark must survive jointly: twophase's two behaviors may not
	// collapse into one shared phase.
	if joint.K < 2 {
		t.Errorf("joint K = %d for three behaviorally distinct kernels", joint.K)
	}
}

// TestAnalyzeJointSharedVocabulary pins the point of the joint space:
// the SAME phase id is assigned to behaviorally identical intervals
// from different benchmarks. Two copies of the same kernel must have
// identical occupancy rows.
func TestAnalyzeJointSharedVocabulary(t *testing.T) {
	cfg := Config{IntervalLen: 2_000, MaxIntervals: 12, MaxK: 4, Seed: 5}
	a := characterizeKernel(t, "copyA", twoPhaseProgram, cfg)
	b := characterizeKernel(t, "copyB", twoPhaseProgram, cfg)
	joint, err := AnalyzeJoint([]BenchmarkIntervals{
		{Name: "copyA", Result: a}, {Name: "copyB", Result: b},
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nA := len(a.Intervals)
	for i := range b.Intervals {
		if joint.Assign[i] != joint.Assign[nA+i] {
			t.Fatalf("interval %d: identical traces assigned phases %d and %d",
				i, joint.Assign[i], joint.Assign[nA+i])
		}
	}
	for c := 0; c < joint.K; c++ {
		if math.Abs(joint.PhaseShare(0, c)-joint.PhaseShare(1, c)) > 1e-12 {
			t.Fatalf("identical benchmarks have different occupancy of phase %d", c)
		}
	}
}

// TestAnalyzeJointRejectsBadInput: zero benchmarks and benchmarks
// without characterized intervals fail loudly.
func TestAnalyzeJointRejectsBadInput(t *testing.T) {
	if _, err := AnalyzeJoint(nil, Config{}); err == nil {
		t.Error("zero benchmarks accepted")
	}
	if _, err := AnalyzeJoint([]BenchmarkIntervals{{Name: "x", Result: &Result{}}}, Config{}); err == nil {
		t.Error("uncharacterized benchmark accepted")
	}
	if _, err := AnalyzeJoint([]BenchmarkIntervals{{Name: "x", Result: nil}}, Config{}); err == nil {
		t.Error("nil result accepted")
	}
}
