package phases

import (
	"math"
	"reflect"
	"testing"

	"mica/internal/mica"
	"mica/internal/trace"
	"mica/internal/uarch"
)

func reducedTestConfig() ReducedConfig {
	return ReducedConfig{
		Phase: Config{
			IntervalLen:  5_000,
			MaxIntervals: 40,
			MaxK:         6,
			Seed:         1,
		},
	}
}

func TestKeySubsetSelectsPapersEight(t *testing.T) {
	s := KeySubset()
	if len(s) != mica.NumChars {
		t.Fatalf("mask length %d, want %d", len(s), mica.NumChars)
	}
	n := 0
	for _, on := range s {
		if on {
			n++
		}
	}
	if n != 8 {
		t.Fatalf("key subset selects %d characteristics, want the paper's 8", n)
	}
	for _, c := range []int{mica.CharPctLoads, mica.CharILP256, mica.CharDWSPages} {
		if !s[c] {
			t.Errorf("key subset misses characteristic %d (%s)", c, mica.CharName(c))
		}
	}
}

// TestReducedWithinErrorBoundTwoPhase is the core differential
// contract: the two-pass reduced extrapolation must reconstruct the
// exact matched-grid full profile within a small per-metric relative
// error on a genuinely phased workload.
func TestReducedWithinErrorBoundTwoPhase(t *testing.T) {
	cfg := reducedTestConfig()
	rr, err := AnalyzeReduced(newMachine(t), newMachine(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := CharacterizeExact(newMachine(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Intervals) != len(rr.Phases.Intervals) {
		t.Fatalf("exact grid has %d intervals, reduced has %d", len(ex.Intervals), len(rr.Phases.Intervals))
	}
	// The synthetic two-phase program touches a handful of blocks per
	// interval, so integer-quantized working-set counts move in big
	// relative steps between intervals; the bound here is
	// correspondingly loose. The ≤5% acceptance bound is asserted on
	// registry benchmarks at the top level, where working sets are big
	// enough for the quantization to vanish.
	if got := rr.MaxRelativeError(ex); got > 0.25 {
		t.Errorf("max per-metric relative error %.4f exceeds bound", got)
	}
	if !rr.HasHPC {
		t.Fatal("HasHPC false although HPC was not skipped")
	}
	if rr.HPC[0] == 0 {
		t.Error("extrapolated EV56 IPC is zero")
	}
}

// TestReducedAccounting pins the cost bookkeeping the tracked benchmark
// reports: the replay pass partitions the trace into measured and
// skipped instructions, and the cheap pass observes SampleFrac of it.
func TestReducedAccounting(t *testing.T) {
	cfg := reducedTestConfig()
	rr, err := AnalyzeReduced(newMachine(t), newMachine(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := rr.TotalInsts()
	if rr.MeasuredInsts+rr.SkippedInsts != total {
		t.Errorf("measured %d + skipped %d != total %d", rr.MeasuredInsts, rr.SkippedInsts, total)
	}
	if rr.MeasuredInsts == 0 {
		t.Error("no instructions were fully characterized")
	}
	if rr.MeasuredInsts >= total {
		t.Error("replay measured the entire trace; nothing was reduced")
	}
	wantSampled := uint64(float64(total) * DefaultSampleFrac)
	if diff := math.Abs(float64(rr.SampledInsts) - float64(wantSampled)); diff > float64(total)/100 {
		t.Errorf("cheap pass observed %d instructions, want about %d", rr.SampledInsts, wantSampled)
	}
	// Every phase must have at least one measured interval, and no
	// phase more than RepsPerPhase.
	perPhase := make(map[int]int)
	for _, mi := range rr.Measured {
		perPhase[mi.Phase]++
		sum := 0.0
		for _, x := range mi.Chars {
			sum += math.Abs(x)
		}
		if sum == 0 {
			t.Errorf("measured interval %d has a zero vector", mi.Interval)
		}
	}
	for p := 0; p < rr.Phases.K; p++ {
		if n := perPhase[p]; n < 1 || n > DefaultRepsPerPhase {
			t.Errorf("phase %d has %d measured intervals, want 1..%d", p, n, DefaultRepsPerPhase)
		}
	}
}

// TestReducedSampleOneMatchesPlainCharacterize pins the cache-reuse
// contract: with SampleFrac == 1 the cheap pass is bit-identical to the
// plain streaming characterization under the same subset options, so a
// cached unsampled vocabulary can stand in for it.
func TestReducedSampleOneMatchesPlainCharacterize(t *testing.T) {
	cfg := reducedTestConfig()
	cfg.SampleFrac = 1
	got, err := CharacterizeReducedWith(newMachine(t), mica.NewProfiler(cfg.CheapConfig().Options), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := CharacterizeWith(newMachine(t), mica.NewProfiler(cfg.CheapConfig().Options), cfg.CheapConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Intervals, want.Intervals) {
		t.Error("interval grids differ")
	}
	if !reflect.DeepEqual(got.Vectors.Data, want.Vectors.Data) {
		t.Error("sampled pass at SampleFrac=1 is not bit-identical to plain characterization")
	}
}

// TestReducedCheapVectorsRespectSubset: the cheap matrix must be zero
// outside the configured subset (those analyzers never ran).
func TestReducedCheapVectorsRespectSubset(t *testing.T) {
	cfg := reducedTestConfig()
	rr, err := AnalyzeReduced(newMachine(t), newMachine(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Subsetting is analyzer-granular: analyzers with no selected
	// characteristic never run, so their columns must be zero in every
	// cheap row. The key subset selects no branch-predictability
	// characteristic, hence no PPM analyzer — its four columns are the
	// canary.
	mask := KeySubset()
	for i := 0; i < rr.Phases.Vectors.Rows; i++ {
		row := rr.Phases.Vectors.Row(i)
		for c := mica.CharPPMGAg; c <= mica.CharPPMPAs; c++ {
			if row[c] != 0 {
				t.Fatalf("interval %d has non-zero value %g for PPM characteristic %s; the cheap pass ran a skipped analyzer",
					i, row[c], mica.CharName(c))
			}
		}
	}
	// The expensive pass, by contrast, fills the full vector: some
	// non-subset characteristic must be non-zero on a measured
	// interval.
	seen := false
	for _, mi := range rr.Measured {
		for c, x := range mi.Chars {
			if !mask[c] && x != 0 {
				seen = true
			}
		}
	}
	if !seen {
		t.Error("measured intervals carry no non-subset characteristics; full pass did not run")
	}
}

// TestReplayJointSingleBenchmarkMatchesPerBench is the joint reduction
// differential: on a single benchmark, the joint vocabulary is
// bit-identical to the per-benchmark one, so the joint replay must
// reproduce the per-benchmark reduced extrapolation exactly.
func TestReplayJointSingleBenchmarkMatchesPerBench(t *testing.T) {
	cfg := reducedTestConfig()

	ph, err := CharacterizeReducedWith(newMachine(t), mica.NewProfiler(cfg.CheapConfig().Options), cfg)
	if err != nil {
		t.Fatal(err)
	}
	j, err := AnalyzeJoint([]BenchmarkIntervals{{Name: "twophase", Result: ph}}, cfg.CheapConfig())
	if err != nil {
		t.Fatal(err)
	}
	jr, err := ReplayJoint(j, func(int) (trace.Source, error) { return newMachine(t), nil }, cfg)
	if err != nil {
		t.Fatal(err)
	}

	want, err := AnalyzeReduced(newMachine(t), newMachine(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if jr.Chars[0] != want.Chars {
		t.Error("joint extrapolated characteristic vector differs from per-benchmark reduction")
	}
	if jr.HPC[0] != want.HPC {
		t.Error("joint extrapolated HPC vector differs from per-benchmark reduction")
	}
	if jr.MeasuredInsts != want.MeasuredInsts {
		t.Errorf("joint replay measured %d insts, per-benchmark %d", jr.MeasuredInsts, want.MeasuredInsts)
	}
}

// TestReplayJointSharedReps: two copies of the same program share
// phases, so the joint reduction should extrapolate both benchmarks
// while measuring no more representatives than the vocabulary has.
func TestReplayJointSharedReps(t *testing.T) {
	cfg := reducedTestConfig()
	prof := mica.NewProfiler(cfg.CheapConfig().Options)
	var named []BenchmarkIntervals
	for _, name := range []string{"copy-a", "copy-b"} {
		ph, err := CharacterizeReducedWith(machineFor(t, name, twoPhaseProgram), prof, cfg)
		if err != nil {
			t.Fatal(err)
		}
		named = append(named, BenchmarkIntervals{Name: name, Result: ph})
	}
	j, err := AnalyzeJoint(named, cfg.CheapConfig())
	if err != nil {
		t.Fatal(err)
	}
	jr, err := ReplayJoint(j, func(bi int) (trace.Source, error) {
		return machineFor(t, j.Benchmarks[bi], twoPhaseProgram), nil
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Identical programs: the two extrapolations agree.
	if jr.Chars[0] != jr.Chars[1] {
		t.Error("identical benchmarks extrapolate differently from the shared vocabulary")
	}
	ex, err := CharacterizeExact(machineFor(t, "exact", twoPhaseProgram), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The 5k-instruction grid straddles the ~30k-instruction phase
	// halves and the program's working set is a handful of blocks, so
	// integer quantization leaves count metrics coarse; the bound here
	// checks the extrapolation is sane, not paper-tight (the ≤5%
	// acceptance bound is asserted on registry benchmarks at the top
	// level).
	for c := range jr.Chars[0] {
		if e := CharRelativeError(c, jr.Chars[0][c], ex.Chars[c]); e > 0.25 {
			t.Errorf("characteristic %s extrapolates with %.4f relative error", mica.CharName(c), e)
		}
	}
}

func TestWithDefaultsClampsKnobs(t *testing.T) {
	c := ReducedConfig{Phase: Config{IntervalLen: 1000}, SampleFrac: -0.2, RepsPerPhase: -1}.WithDefaults()
	if c.SampleFrac != DefaultSampleFrac {
		t.Errorf("negative SampleFrac survived as %g", c.SampleFrac)
	}
	if c.RepsPerPhase != DefaultRepsPerPhase {
		t.Errorf("negative RepsPerPhase survived as %d", c.RepsPerPhase)
	}
	c = ReducedConfig{Phase: Config{IntervalLen: 1000}, SampleFrac: 3}.WithDefaults()
	if c.SampleFrac != 1 {
		t.Errorf("SampleFrac > 1 survived as %g", c.SampleFrac)
	}
}

func TestSampleLenBounds(t *testing.T) {
	c := ReducedConfig{Phase: Config{IntervalLen: 1000}, SampleFrac: 0.0001}.WithDefaults()
	c.SampleFrac = 0.0001
	if got := c.sampleLen(); got != 1 {
		t.Errorf("tiny fraction: sampleLen = %d, want 1", got)
	}
	c.SampleFrac = 1
	if got := c.sampleLen(); got != 1000 {
		t.Errorf("full fraction: sampleLen = %d, want 1000", got)
	}
}

func TestRelativeErrorScales(t *testing.T) {
	// Unbounded-magnitude metric (ILP-256): scored against the exact
	// value.
	if got := CharRelativeError(mica.CharILP256, 2, 1); got != 1 {
		t.Errorf("ILP error = %g, want 1", got)
	}
	// Fraction-valued metric (a stride bucket): scored against the
	// unit range, so a near-empty bucket cannot explode the quotient.
	if got := CharRelativeError(mica.CharLocalStoreStride0, 0.031, 0.022); math.Abs(got-0.009) > 1e-12 {
		t.Errorf("stride bucket error = %g, want 0.009", got)
	}
	// HPC: IPC is value-relative, miss rates are range-relative.
	if got := HPCRelativeError(uarch.HPCIPCEV56, 1.1, 1.0); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("IPC error = %g, want 0.1", got)
	}
	if got := HPCRelativeError(uarch.HPCL2Miss, 0.003, 0.001); math.Abs(got-0.002) > 1e-12 {
		t.Errorf("L2 miss error = %g, want 0.002", got)
	}
}
