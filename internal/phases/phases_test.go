package phases

import (
	"math"
	"testing"

	"mica/internal/asm"
	"mica/internal/mica"
	"mica/internal/vm"
)

// twoPhaseProgram alternates between a compute-heavy phase and a
// memory-streaming phase, each lasting ~25k instructions, repeated
// indefinitely.
const twoPhaseProgram = `
	.data
arr:	.space 1048576
	.text
main:
outer:	lda	r1, 6000	# compute phase iterations
comp:	addq	r2, 1, r2
	mulq	r2, 17, r3
	xor	r3, r2, r4
	subq	r1, 1, r1
	bgt	r1, comp
	lda	r1, 6000	# memory phase iterations
	lda	r5, arr
mem:	ldq	r6, 0(r5)
	addq	r6, 1, r6
	stq	r6, 0(r5)
	addq	r5, 64, r5
	subq	r1, 1, r1
	bgt	r1, mem
	br	outer
`

func newMachine(t *testing.T) *vm.Machine {
	t.Helper()
	prog, err := asm.Assemble("twophase", twoPhaseProgram)
	if err != nil {
		t.Fatal(err)
	}
	return vm.New(prog)
}

func TestAnalyzeFindsTwoPhases(t *testing.T) {
	m := newMachine(t)
	res, err := Analyze(m, Config{
		IntervalLen:  5_000,
		MaxIntervals: 40,
		MaxK:         6,
		Seed:         1,
		Options:      mica.DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals) != 40 {
		t.Fatalf("got %d intervals, want 40", len(res.Intervals))
	}
	if res.K < 2 {
		t.Errorf("K = %d, want >= 2 distinct phases", res.K)
	}
	// Compute intervals have ~0 loads; memory intervals have many. The
	// clustering must separate the two extremes.
	var loadHeavy, loadLight int
	for i, iv := range res.Intervals {
		if iv.Vec[0] > 0.15 { // pct_loads
			loadHeavy = res.Assign[i]
		} else if iv.Vec[0] < 0.05 {
			loadLight = res.Assign[i]
		}
	}
	if loadHeavy == loadLight {
		t.Error("memory-bound and compute-bound intervals share a phase")
	}
}

func TestRepresentativeWeightsSumToOne(t *testing.T) {
	m := newMachine(t)
	res, err := Analyze(m, Config{IntervalLen: 5_000, MaxIntervals: 30, MaxK: 5, Seed: 2,
		Options: mica.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, rep := range res.Representatives {
		if rep.Weight <= 0 || rep.Weight > 1 {
			t.Errorf("representative weight %g out of range", rep.Weight)
		}
		if rep.Interval < 0 || rep.Interval >= len(res.Intervals) {
			t.Errorf("representative interval %d out of range", rep.Interval)
		}
		if res.Assign[rep.Interval] != rep.Phase {
			t.Error("representative not a member of its phase")
		}
		sum += rep.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %g, want 1", sum)
	}
	// Ordered by descending weight.
	for i := 1; i < len(res.Representatives); i++ {
		if res.Representatives[i].Weight > res.Representatives[i-1].Weight {
			t.Error("representatives not sorted by weight")
		}
	}
}

func TestWeightedVectorApproximatesFullTrace(t *testing.T) {
	m := newMachine(t)
	res, err := Analyze(m, Config{IntervalLen: 5_000, MaxIntervals: 40, MaxK: 6, Seed: 3,
		Options: mica.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	approx := res.WeightedVector()

	// Full-trace measurement over the same instruction count.
	m2 := newMachine(t)
	prof := mica.NewProfiler(mica.DefaultOptions())
	if _, err := m2.Run(200_000, prof); err != vm.ErrBudget {
		t.Fatal(err)
	}
	full := prof.Vector()

	// The phase-weighted mix estimate must track the true mix closely
	// (instruction-mix fractions are linear over intervals).
	for c := 0; c < 6; c++ {
		if math.Abs(approx[c]-full[c]) > 0.05 {
			t.Errorf("%s: weighted %g vs full %g", mica.CharName(c), approx[c], full[c])
		}
	}
}

func TestHaltingProgramStopsEarly(t *testing.T) {
	prog, err := asm.Assemble("short", `
main:	lda  r1, 100
loop:	subq r1, 1, r1
	bgt  r1, loop
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(vm.New(prog), Config{IntervalLen: 50, MaxIntervals: 100, MaxK: 3, Seed: 4,
		Options: mica.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	// 201 instructions -> 5 intervals (last one short).
	if len(res.Intervals) < 4 || len(res.Intervals) > 6 {
		t.Errorf("got %d intervals for a 201-instruction program", len(res.Intervals))
	}
	last := res.Intervals[len(res.Intervals)-1]
	if last.Insts == 0 {
		t.Error("empty trailing interval recorded")
	}
}

func TestEmptyProgramErrors(t *testing.T) {
	prog, err := asm.Assemble("empty", "main:\thalt\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(vm.New(prog), Config{Options: mica.DefaultOptions()}); err == nil {
		t.Error("program with no instructions accepted")
	}
}
