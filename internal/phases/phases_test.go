package phases

import (
	"math"
	"reflect"
	"testing"

	"mica/internal/asm"
	"mica/internal/mica"
	"mica/internal/vm"
)

// twoPhaseProgram alternates between a compute-heavy phase and a
// memory-streaming phase, each lasting ~25k instructions, repeated
// indefinitely.
const twoPhaseProgram = `
	.data
arr:	.space 1048576
	.text
main:
outer:	lda	r1, 6000	# compute phase iterations
comp:	addq	r2, 1, r2
	mulq	r2, 17, r3
	xor	r3, r2, r4
	subq	r1, 1, r1
	bgt	r1, comp
	lda	r1, 6000	# memory phase iterations
	lda	r5, arr
mem:	ldq	r6, 0(r5)
	addq	r6, 1, r6
	stq	r6, 0(r5)
	addq	r5, 64, r5
	subq	r1, 1, r1
	bgt	r1, mem
	br	outer
`

// stridedProgram streams two interleaved store patterns with different
// strides — a memory-dominated single-phase workload.
const stridedProgram = `
	.data
buf:	.space 524288
	.text
main:	lda	r5, buf
	lda	r7, buf
loop:	ldq	r1, 0(r5)
	addq	r1, 3, r1
	stq	r1, 0(r5)
	addq	r5, 8, r5
	stq	r1, 0(r7)
	addq	r7, 4096, r7
	and	r7, 262143, r8
	bgt	r8, noreset
	lda	r7, buf
noreset:	br	loop
`

// branchyProgram exercises data-dependent branches — a
// predictability-limited workload for the PPM analyzers.
const branchyProgram = `
	.text
main:	lda	r1, 0
loop:	addq	r1, 1, r1
	mulq	r1, 2654435761, r2
	srl	r2, 13, r2
	and	r2, 7, r3
	beq	r3, even
	addq	r4, 1, r4
	br	next
even:	subq	r4, 1, r4
next:	and	r1, 1023, r5
	bgt	r5, loop
	xor	r4, r1, r6
	br	loop
`

func machineFor(t *testing.T, name, src string) *vm.Machine {
	t.Helper()
	prog, err := asm.Assemble(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return vm.New(prog)
}

func newMachine(t *testing.T) *vm.Machine {
	return machineFor(t, "twophase", twoPhaseProgram)
}

func TestAnalyzeFindsTwoPhases(t *testing.T) {
	m := newMachine(t)
	res, err := Analyze(m, Config{
		IntervalLen:  5_000,
		MaxIntervals: 40,
		MaxK:         6,
		Seed:         1,
		Options:      mica.DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals) != 40 {
		t.Fatalf("got %d intervals, want 40", len(res.Intervals))
	}
	if res.Vectors.Rows != 40 || res.Vectors.Cols != mica.NumChars {
		t.Fatalf("vector matrix is %dx%d", res.Vectors.Rows, res.Vectors.Cols)
	}
	if res.K < 2 {
		t.Errorf("K = %d, want >= 2 distinct phases", res.K)
	}
	// Compute intervals have ~0 loads; memory intervals have many. The
	// clustering must separate the two extremes.
	var loadHeavy, loadLight int
	for i := range res.Intervals {
		if pctLoads := res.Vectors.At(i, 0); pctLoads > 0.15 {
			loadHeavy = res.Assign[i]
		} else if pctLoads < 0.05 {
			loadLight = res.Assign[i]
		}
	}
	if loadHeavy == loadLight {
		t.Error("memory-bound and compute-bound intervals share a phase")
	}
}

// TestStreamingPooledMatchesUnpooled is the differential contract of
// the streaming rewrite: one profiler reused (Reset) across all
// intervals must produce bit-identical interval vectors, assignments
// and representatives to the reference path that allocates a fresh
// profiler per interval, across kernels with different behaviours.
func TestStreamingPooledMatchesUnpooled(t *testing.T) {
	kernels := []struct{ name, src string }{
		{"twophase", twoPhaseProgram},
		{"strided", stridedProgram},
		{"branchy", branchyProgram},
	}
	cfg := Config{IntervalLen: 2_000, MaxIntervals: 25, MaxK: 4, Seed: 7}
	for _, k := range kernels {
		got, err := Analyze(machineFor(t, k.name, k.src), cfg)
		if err != nil {
			t.Fatalf("%s: streaming: %v", k.name, err)
		}
		want, err := AnalyzeUnpooled(machineFor(t, k.name, k.src), cfg)
		if err != nil {
			t.Fatalf("%s: unpooled: %v", k.name, err)
		}
		if !reflect.DeepEqual(got.Vectors.Data, want.Vectors.Data) {
			t.Errorf("%s: interval vectors diverge from unpooled reference", k.name)
		}
		if !reflect.DeepEqual(got.Intervals, want.Intervals) {
			t.Errorf("%s: interval metadata diverges", k.name)
		}
		if got.K != want.K || !reflect.DeepEqual(got.Assign, want.Assign) {
			t.Errorf("%s: phase assignment diverges (K %d vs %d)", k.name, got.K, want.K)
		}
		if !reflect.DeepEqual(got.Representatives, want.Representatives) {
			t.Errorf("%s: representatives diverge", k.name)
		}
	}
}

// TestPooledProfilerAcrossBenchmarks reuses ONE profiler for several
// different programs in sequence (the registry-pipeline worker pattern)
// and requires results identical to per-program fresh analysis.
func TestPooledProfilerAcrossBenchmarks(t *testing.T) {
	kernels := []struct{ name, src string }{
		{"branchy", branchyProgram},
		{"twophase", twoPhaseProgram},
		{"strided", stridedProgram},
	}
	cfg := Config{IntervalLen: 2_000, MaxIntervals: 15, MaxK: 4, Seed: 11}
	shared := mica.NewProfiler(cfg.Options)
	for _, k := range kernels {
		got, err := AnalyzeWith(machineFor(t, k.name, k.src), shared, cfg)
		if err != nil {
			t.Fatalf("%s: pooled: %v", k.name, err)
		}
		want, err := Analyze(machineFor(t, k.name, k.src), cfg)
		if err != nil {
			t.Fatalf("%s: fresh: %v", k.name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: cross-benchmark pooled result diverges from fresh analysis", k.name)
		}
	}
}

// pingPongProgram serializes every iteration through one memory cell:
// each load reads the previous iteration's store, so the store-to-load
// dependence is the binding constraint on ILP. (Registry kernels never
// make memory deps binding in the unit-latency idealized model, so this
// crafted kernel is the observable for NoMemDeps.)
const pingPongProgram = `
	.data
cell:	.space 64
	.text
main:	lda	r5, cell
loop:	ldq	r1, 0(r5)
	addq	r1, 1, r1
	stq	r1, 0(r5)
	br	loop
`

// TestNoMemDepsHonored pins that Config.Options.NoMemDeps reaches the
// interval profiler: disabling store-to-load tracking must visibly
// raise the measured ILP of a memory-serialized kernel.
func TestNoMemDepsHonored(t *testing.T) {
	cfg := Config{IntervalLen: 2_000, MaxIntervals: 4, MaxK: 2, Seed: 3}
	base, err := Analyze(machineFor(t, "pingpong", pingPongProgram), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Options.NoMemDeps = true
	free, err := Analyze(machineFor(t, "pingpong", pingPongProgram), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range free.Intervals {
		ilpFree, ilpBase := free.Vectors.At(i, 9), base.Vectors.At(i, 9) // ILP-256
		if ilpFree <= ilpBase {
			t.Fatalf("interval %d: ILP %g with mem deps ignored vs %g tracked — option not honored",
				i, ilpFree, ilpBase)
		}
	}
}

func TestRepresentativeWeightsSumToOne(t *testing.T) {
	m := newMachine(t)
	res, err := Analyze(m, Config{IntervalLen: 5_000, MaxIntervals: 30, MaxK: 5, Seed: 2,
		Options: mica.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, rep := range res.Representatives {
		if rep.Weight <= 0 || rep.Weight > 1 {
			t.Errorf("representative weight %g out of range", rep.Weight)
		}
		if rep.Interval < 0 || rep.Interval >= len(res.Intervals) {
			t.Errorf("representative interval %d out of range", rep.Interval)
		}
		if res.Assign[rep.Interval] != rep.Phase {
			t.Error("representative not a member of its phase")
		}
		sum += rep.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %g, want 1", sum)
	}
	// Ordered by descending weight.
	for i := 1; i < len(res.Representatives); i++ {
		if res.Representatives[i].Weight > res.Representatives[i-1].Weight {
			t.Error("representatives not sorted by weight")
		}
	}
}

// shortTailProgram runs ~5k compute instructions, then a short ~1.25k
// memory burst, then halts — so the final (memory) interval is shorter
// than IntervalLen and instruction weighting visibly diverges from
// interval-count weighting.
const shortTailProgram = `
	.data
arr:	.space 65536
	.text
main:	lda	r1, 1000
comp:	addq	r2, 1, r2
	mulq	r2, 17, r3
	xor	r3, r2, r4
	subq	r1, 1, r1
	bgt	r1, comp
	lda	r1, 250
	lda	r5, arr
mem:	ldq	r6, 0(r5)
	stq	r6, 8(r5)
	addq	r5, 16, r5
	subq	r1, 1, r1
	bgt	r1, mem
	halt
`

// TestWeightsAreInstructionFractions pins the representative weighting
// rule: each phase's weight is its share of dynamic INSTRUCTIONS, not
// its share of intervals, so a short trailing interval is not
// over-weighted.
func TestWeightsAreInstructionFractions(t *testing.T) {
	m := machineFor(t, "shorttail", shortTailProgram)
	res, err := Analyze(m, Config{IntervalLen: 2_500, MaxIntervals: 10, MaxK: 3, Seed: 5,
		Options: mica.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	last := res.Intervals[len(res.Intervals)-1]
	if last.Insts >= 2_500 {
		t.Fatalf("test premise broken: trailing interval has %d instructions", last.Insts)
	}

	instsIn := make(map[int]uint64)
	countIn := make(map[int]int)
	var total uint64
	for i, c := range res.Assign {
		instsIn[c] += res.Intervals[i].Insts
		countIn[c]++
		total += res.Intervals[i].Insts
	}
	instWeightDiffers := false
	for _, rep := range res.Representatives {
		want := float64(instsIn[rep.Phase]) / float64(total)
		if rep.Weight != want {
			t.Errorf("phase %d: weight %g, want instruction share %g", rep.Phase, rep.Weight, want)
		}
		byCount := float64(countIn[rep.Phase]) / float64(len(res.Intervals))
		if math.Abs(rep.Weight-byCount) > 1e-9 {
			instWeightDiffers = true
		}
	}
	if res.K >= 2 && !instWeightDiffers {
		t.Error("instruction weighting indistinguishable from interval-count weighting despite short tail")
	}
}

func TestWeightedVectorApproximatesFullTrace(t *testing.T) {
	m := newMachine(t)
	res, err := Analyze(m, Config{IntervalLen: 5_000, MaxIntervals: 40, MaxK: 6, Seed: 3,
		Options: mica.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	approx := res.WeightedVector()

	// Full-trace measurement over the same instruction count.
	m2 := newMachine(t)
	prof := mica.NewProfiler(mica.DefaultOptions())
	if _, err := m2.Run(200_000, prof); err != vm.ErrBudget {
		t.Fatal(err)
	}
	full := prof.Vector()

	// The phase-weighted mix estimate must track the true mix closely
	// (instruction-mix fractions are linear over intervals).
	for c := 0; c < 6; c++ {
		if math.Abs(approx[c]-full[c]) > 0.05 {
			t.Errorf("%s: weighted %g vs full %g", mica.CharName(c), approx[c], full[c])
		}
	}
	// And the in-analysis reconstruction error against the interval
	// aggregate must be small for the linear mix characteristics too.
	fullEst := res.FullVector()
	for c := 0; c < 6; c++ {
		if math.Abs(fullEst[c]-full[c]) > 0.05 {
			t.Errorf("%s: FullVector %g vs measured %g", mica.CharName(c), fullEst[c], full[c])
		}
	}
	if res.ReconstructionError() < 0 {
		t.Error("negative reconstruction error")
	}
}

func TestHaltingProgramStopsEarly(t *testing.T) {
	prog, err := asm.Assemble("short", `
main:	lda  r1, 100
loop:	subq r1, 1, r1
	bgt  r1, loop
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(vm.New(prog), Config{IntervalLen: 50, MaxIntervals: 100, MaxK: 3, Seed: 4,
		Options: mica.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	// 201 instructions -> 5 intervals (last one short).
	if len(res.Intervals) < 4 || len(res.Intervals) > 6 {
		t.Errorf("got %d intervals for a 201-instruction program", len(res.Intervals))
	}
	last := res.Intervals[len(res.Intervals)-1]
	if last.Insts == 0 {
		t.Error("empty trailing interval recorded")
	}
}

func TestEmptyProgramErrors(t *testing.T) {
	prog, err := asm.Assemble("empty", "main:\thalt\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(vm.New(prog), Config{Options: mica.DefaultOptions()}); err == nil {
		t.Error("program with no instructions accepted")
	}
}

// TestConfigZeroValueIsDefault pins the default story the package
// comment tells: the zero Config normalized by WithDefaults IS
// DefaultConfig, knob for knob — including the knobs newer subsystems
// (the reduced pipeline, the interval-vector store) key caches and
// shard stamps on, which hash the normalized form.
func TestConfigZeroValueIsDefault(t *testing.T) {
	got, want := (Config{}).WithDefaults(), DefaultConfig()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Config{}.WithDefaults() = %+v, want DefaultConfig() %+v", got, want)
	}
	if want.IntervalLen != 10_000 || want.MaxIntervals != 100 || want.MaxK != 10 {
		t.Fatalf("DefaultConfig = %+v diverges from the documented defaults", want)
	}
	// The default options measure everything: the zero Options value
	// means all 47 characteristics with memory dependencies tracked.
	if want.Options.NoMemDeps || want.Options.Subset != nil || want.Options.PPMOrder != 0 {
		t.Fatalf("DefaultConfig options %+v are not the measure-everything zero value", want.Options)
	}
}
