package phases

import (
	"context"
	"fmt"
	"math"

	"mica/internal/cluster"
	"mica/internal/ivstore"
	"mica/internal/mica"
	"mica/internal/obs"
	"mica/internal/stats"
)

// AnalyzeJointStore is AnalyzeJoint over a committed interval-vector
// store instead of in-memory characterizations: the registry-scale
// joint path. Rows are streamed shard-by-shard through the store's
// byte-budgeted decoded-shard cache (repeated clustering passes decode
// each shard once while the budget holds), the per-column
// normalization statistics are accumulated in the same order
// stats.ZScoreNormalize uses, and the clustering runs the same engines
// through cluster.SelectKRows — so on data that round-trips the store
// encoding exactly, the resulting vocabulary (assignment, K,
// representatives, occupancy) is bit-identical to AnalyzeJoint on the
// materialized matrix. With the default float32 shards the stored
// rows are the float64 vectors rounded to float32 (relative error
// <= 2^-24); the differential tests pin both facts.
//
// The returned JointResult carries everything except the concatenated
// Vectors matrix, which is exactly what the store exists not to
// materialize — Vectors is nil, and representative vectors can be
// fetched per shard via the store. workers bounds sweep parallelism
// (0 = GOMAXPROCS); workers share the store's decoded-shard cache, so
// peak memory is O(cache budget + k·d).
//
// The store must not be mutated while the analysis runs.
func AnalyzeJointStore(st *ivstore.Store, cfg Config, workers int) (*JointResult, error) {
	return AnalyzeJointStoreCtx(context.Background(), st, cfg, workers)
}

// AnalyzeJointStoreCtx is AnalyzeJointStore with cancellation: the
// clustering sweep stops dispatching per-k runs when ctx is cancelled
// and the call returns ctx's error; a panicking sweep worker (a
// corrupt row surfacing mid-stream) is isolated and returned as an
// error instead of killing the process.
func AnalyzeJointStoreCtx(ctx context.Context, st *ivstore.Store, cfg Config, workers int) (*JointResult, error) {
	j, _, err := analyzeJointStore(ctx, st, cfg, workers, nil)
	return j, err
}

// AnalyzeJointStoreWarmCtx is AnalyzeJointStoreCtx seeded from a
// previous run's warm state: when warm matches the store
// (configuration hash, dimensionality) and the data's normalization
// statistics have drifted less than WarmMaxDrift from the state's, the
// sweep starts every k from the previous centroids (renormalized into
// the current statistics' space) instead of k-means++. The returned
// bool reports whether warm seeding was actually used — a stale,
// mismatched or excessively drifted state silently falls back to the
// fresh path, which is always correct (warm seeding only changes the
// initialization, and engines still iterate to convergence).
func AnalyzeJointStoreWarmCtx(ctx context.Context, st *ivstore.Store, cfg Config, workers int, warm *JointWarmState) (*JointResult, bool, error) {
	return analyzeJointStore(ctx, st, cfg, workers, warm)
}

func analyzeJointStore(ctx context.Context, st *ivstore.Store, cfg Config, workers int, warm *JointWarmState) (*JointResult, bool, error) {
	cfg = cfg.withDefaults()
	shards := st.Shards()
	if len(shards) == 0 {
		return nil, false, fmt.Errorf("phases: joint analysis of an empty store %s", st.Dir())
	}
	if st.Dims() != mica.NumChars {
		return nil, false, fmt.Errorf("phases: store %s has %d-dimensional rows, want %d", st.Dir(), st.Dims(), mica.NumChars)
	}

	// One validating pass over every shard builds the provenance
	// (RowRefs, per-row instruction counts). This is also where a
	// corrupt shard surfaces as an ordinary error, before the
	// streaming passes below (whose Reader has no error channel) start.
	// The pass goes through the decoded-shard cache, so the shards it
	// decodes are the ones the normalization and clustering passes
	// reuse.
	n := st.NumRows()
	j := &JointResult{
		Benchmarks: st.Benchmarks(),
		Rows:       make([]RowRef, 0, n),
		RowInsts:   make([]uint64, 0, n),
	}
	for si := range shards {
		sd, err := st.CachedShard(si)
		if err != nil {
			return nil, false, fmt.Errorf("phases: joint analysis: %w", err)
		}
		for ii, insts := range sd.Insts {
			j.Rows = append(j.Rows, RowRef{Bench: si, Interval: ii})
			j.RowInsts = append(j.RowInsts, insts)
		}
	}

	// Normalization statistics, streamed shard-by-shard in the same
	// accumulation order stats.ZScoreNormalize uses (ColumnStats is
	// pinned bit-identical to it).
	nspan := obs.StartSpan("phases.normalize")
	mean, std := cluster.ColumnStats(st.Rows())
	nspan.End()

	opt := cluster.SweepOptions{Workers: workers}
	warmUsed := false
	if ws := warm.seeds(st, cfg, mean, std); ws != nil {
		opt.Warm = ws
		warmUsed = true
	}

	sel, err := cluster.SelectKRowsCtx(ctx, func() cluster.Rows {
		return cluster.Normalized(st.Rows(), mean, std)
	}, cfg.MaxK, 0.9, cfg.Seed, opt)
	if err != nil {
		return nil, warmUsed, fmt.Errorf("phases: joint clustering of %s: %w", st.Dir(), err)
	}

	j.deriveFrom(cluster.Normalized(st.Rows(), mean, std), sel)
	// The warm-start capture stays store-path-only: in-memory joint
	// results round-trip through the JSON caches by DeepEqual, so they
	// must not carry state the cache does not persist.
	j.centroids = sel.Best.Centroids
	j.normMean, j.normStd = mean, std
	return j, warmUsed, nil
}

// WarmMaxDrift is the normalization-statistic drift above which a warm
// start falls back to fresh seeding. Drift is the root-mean-square,
// over columns, of the mean shift and standard-deviation shift each
// measured in units of the column's spread — an incremental change to
// one benchmark in a hundred moves it by a few percent at most, while
// a substantively different dataset moves it past this bound (both
// regression-tested).
const WarmMaxDrift = 0.25

// JointWarmState is the persistable warm-start state of a store-backed
// joint clustering: the selected centroids in normalized space, the
// normalization statistics that define that space, the per-phase row
// occupancy (so sweeps needing fewer clusters keep the populated
// ones), and the characterization config hash the vocabulary was built
// under. Serialize it as JSON next to the store (ivstore.WriteAux) and
// feed it back through AnalyzeJointStoreWarmCtx on the next run.
type JointWarmState struct {
	// ConfigHash is the store configuration stamp the state was derived
	// under; a mismatch invalidates the state.
	ConfigHash string `json:"config_hash"`
	// K is the number of centroids.
	K int `json:"k"`
	// Mean and Std are the per-column normalization statistics the
	// centroids are expressed under.
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
	// Centroids are the selected clustering's centers in the normalized
	// space, row-major (K rows of Dims values).
	Centroids [][]float64 `json:"centroids"`
	// Counts is the per-phase row occupancy of the selected clustering.
	Counts []int `json:"counts"`
}

// WarmState packages a store-backed joint result's clustering state
// for persistence, stamped with the given configuration hash. Returns
// nil when the result carries no warm-start capture (in-memory or
// cache-loaded results).
func (j *JointResult) WarmState(configHash string) *JointWarmState {
	if j == nil || j.centroids == nil || j.normMean == nil || j.normStd == nil {
		return nil
	}
	ws := &JointWarmState{
		ConfigHash: configHash,
		K:          j.K,
		Mean:       j.normMean,
		Std:        j.normStd,
		Centroids:  make([][]float64, j.centroids.Rows),
		Counts:     make([]int, j.K),
	}
	for c := range ws.Centroids {
		ws.Centroids[c] = append([]float64(nil), j.centroids.Row(c)...)
	}
	for _, c := range j.Assign {
		ws.Counts[c]++
	}
	return ws
}

// seeds validates a warm state against a store and the freshly
// computed normalization statistics, returning a cluster.WarmStart
// with the centroids renormalized into the current statistics' space —
// or nil when the state is absent, mismatched, or drifted past
// WarmMaxDrift.
func (w *JointWarmState) seeds(st *ivstore.Store, cfg Config, mean, std []float64) *cluster.WarmStart {
	d := st.Dims()
	if w == nil || w.K <= 0 || w.K > cfg.MaxK ||
		len(w.Mean) != d || len(w.Std) != d || len(w.Centroids) != w.K {
		return nil
	}
	if w.ConfigHash != "" && w.ConfigHash != st.ConfigHash() {
		return nil
	}
	for _, row := range w.Centroids {
		if len(row) != d {
			return nil
		}
	}
	if warmDrift(w.Mean, w.Std, mean, std) > WarmMaxDrift {
		return nil
	}
	// Renormalize: previous normalized value -> raw -> current
	// normalized space. Columns that were (or became) constant carry a
	// zero coordinate, matching the z-score view's convention.
	cents := make([][]float64, w.K)
	for c, row := range w.Centroids {
		out := make([]float64, d)
		for jc, v := range row {
			raw := v*w.Std[jc] + w.Mean[jc]
			if std[jc] != 0 {
				out[jc] = (raw - mean[jc]) / std[jc]
			}
		}
		cents[c] = out
	}
	counts := w.Counts
	if len(counts) != w.K {
		counts = nil
	}
	return &cluster.WarmStart{Centroids: stats.FromRows(cents), Counts: counts}
}

// warmDrift measures how far the current normalization statistics have
// moved from a warm state's: per column, the mean shift and the
// standard-deviation shift are expressed in units of the column's
// spread (the larger of the two standard deviations; constant columns
// compare means directly against an absolute floor), and the drift is
// the root mean square across columns.
func warmDrift(prevMean, prevStd, mean, std []float64) float64 {
	var acc float64
	for j := range mean {
		scale := prevStd[j]
		if std[j] > scale {
			scale = std[j]
		}
		if scale == 0 {
			if prevMean[j] == mean[j] {
				continue
			}
			scale = math.Max(math.Abs(prevMean[j]), math.Abs(mean[j]))
			if scale == 0 {
				continue
			}
		}
		dm := (mean[j] - prevMean[j]) / scale
		ds := (std[j] - prevStd[j]) / scale
		acc += dm*dm + ds*ds
	}
	return math.Sqrt(acc / float64(len(mean)))
}
