package phases

import (
	"context"
	"fmt"

	"mica/internal/cluster"
	"mica/internal/ivstore"
	"mica/internal/mica"
)

// AnalyzeJointStore is AnalyzeJoint over a committed interval-vector
// store instead of in-memory characterizations: the registry-scale
// joint path. Rows are streamed shard-by-shard (one decoded shard per
// concurrent reader, never the whole matrix), the per-column
// normalization statistics are accumulated in the same order
// stats.ZScoreNormalize uses, and the clustering runs the same engines
// through cluster.SelectKRows — so on data that round-trips the store
// encoding exactly, the resulting vocabulary (assignment, K,
// representatives, occupancy) is bit-identical to AnalyzeJoint on the
// materialized matrix. With the default float32 shards the stored
// rows are the float64 vectors rounded to float32 (relative error
// <= 2^-24); the differential tests pin both facts.
//
// The returned JointResult carries everything except the concatenated
// Vectors matrix, which is exactly what the store exists not to
// materialize — Vectors is nil, and representative vectors can be
// fetched per shard via the store. workers bounds sweep parallelism
// (0 = GOMAXPROCS); every worker streams through its own shard
// reader, so peak memory is O(workers x shard + k·d).
//
// The store must not be mutated while the analysis runs.
func AnalyzeJointStore(st *ivstore.Store, cfg Config, workers int) (*JointResult, error) {
	return AnalyzeJointStoreCtx(context.Background(), st, cfg, workers)
}

// AnalyzeJointStoreCtx is AnalyzeJointStore with cancellation: the
// clustering sweep stops dispatching per-k runs when ctx is cancelled
// and the call returns ctx's error; a panicking sweep worker (a
// corrupt row surfacing mid-stream) is isolated and returned as an
// error instead of killing the process.
func AnalyzeJointStoreCtx(ctx context.Context, st *ivstore.Store, cfg Config, workers int) (*JointResult, error) {
	cfg = cfg.withDefaults()
	shards := st.Shards()
	if len(shards) == 0 {
		return nil, fmt.Errorf("phases: joint analysis of an empty store %s", st.Dir())
	}
	if st.Dims() != mica.NumChars {
		return nil, fmt.Errorf("phases: store %s has %d-dimensional rows, want %d", st.Dir(), st.Dims(), mica.NumChars)
	}

	// One validating pass over every shard builds the provenance
	// (RowRefs, per-row instruction counts). This is also where a
	// corrupt shard surfaces as an ordinary error, before the
	// streaming passes below (whose Reader has no error channel) start.
	n := st.NumRows()
	j := &JointResult{
		Benchmarks: st.Benchmarks(),
		Rows:       make([]RowRef, 0, n),
		RowInsts:   make([]uint64, 0, n),
	}
	for si := range shards {
		sd, err := st.ReadShard(si)
		if err != nil {
			return nil, fmt.Errorf("phases: joint analysis: %w", err)
		}
		for ii, insts := range sd.Insts {
			j.Rows = append(j.Rows, RowRef{Bench: si, Interval: ii})
			j.RowInsts = append(j.RowInsts, insts)
		}
	}

	// Normalization statistics, streamed shard-by-shard in the same
	// accumulation order stats.ZScoreNormalize uses (ColumnStats is
	// pinned bit-identical to it).
	mean, std := cluster.ColumnStats(st.Rows())

	sel, err := cluster.SelectKRowsCtx(ctx, func() cluster.Rows {
		return cluster.Normalized(st.Rows(), mean, std)
	}, cfg.MaxK, 0.9, cfg.Seed, cluster.SweepOptions{Workers: workers})
	if err != nil {
		return nil, fmt.Errorf("phases: joint clustering of %s: %w", st.Dir(), err)
	}

	j.deriveFrom(cluster.Normalized(st.Rows(), mean, std), sel)
	return j, nil
}
