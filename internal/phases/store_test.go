package phases

import (
	"math/rand"
	"reflect"
	"testing"

	"mica/internal/ivstore"
	"mica/internal/mica"
	"mica/internal/stats"
)

// synthBench builds one benchmark's characterized intervals with
// plausible characteristic ranges, deterministic in seed.
func synthBench(name string, intervals int, seed int64) BenchmarkIntervals {
	rng := rand.New(rand.NewSource(seed))
	res := &Result{Vectors: stats.NewMatrix(intervals, mica.NumChars)}
	var start uint64
	for i := 0; i < intervals; i++ {
		insts := uint64(900 + rng.Intn(200))
		res.Intervals = append(res.Intervals, Interval{Index: i, Start: start, Insts: insts})
		start += insts
		row := res.Vectors.Row(i)
		// Three behaviour modes so the clustering has real structure.
		mode := float64(i * 3 / intervals)
		for c := range row {
			switch {
			case c < 8: // mix fractions
				row[c] = 0.1 + 0.2*mode + 0.01*rng.Float64()
			case c < 14: // ILP-ish
				row[c] = 2 + 3*mode + 0.05*rng.Float64()
			default:
				row[c] = 100*mode + rng.Float64()
			}
		}
	}
	return BenchmarkIntervals{Name: name, Result: res}
}

// roundF32 returns a copy of benches with every vector value rounded
// through float32 — the store's default encoding applied in memory.
func roundF32(benches []BenchmarkIntervals) []BenchmarkIntervals {
	out := make([]BenchmarkIntervals, len(benches))
	for i, b := range benches {
		r := &Result{Intervals: b.Result.Intervals, Vectors: b.Result.Vectors.Clone()}
		for k, v := range r.Vectors.Data {
			r.Vectors.Data[k] = float64(float32(v))
		}
		out[i] = BenchmarkIntervals{Name: b.Name, Result: r}
	}
	return out
}

// storeFrom writes benches into a fresh committed store.
func storeFrom(t *testing.T, dir string, enc ivstore.Encoding, benches []BenchmarkIntervals) *ivstore.Store {
	t.Helper()
	st, err := ivstore.Create(dir, ivstore.Config{Dims: mica.NumChars, Encoding: enc, ConfigHash: "test"})
	if err != nil {
		t.Fatal(err)
	}
	order := make([]string, len(benches))
	for i, b := range benches {
		order[i] = b.Name
		insts := make([]uint64, len(b.Result.Intervals))
		for ii, iv := range b.Result.Intervals {
			insts[ii] = iv.Insts
		}
		if err := st.WriteShard(b.Name, insts, b.Result.Vectors); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Commit(order); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	opened, err := ivstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return opened
}

// TestAnalyzeJointStoreBitIdentical is the tentpole differential: the
// store-backed joint vocabulary equals AnalyzeJoint on the same
// benchmark set bit for bit — by construction against the
// float32-rounded in-memory input (which IS what a float32 store
// holds), and as an end-to-end fact against the raw float64 input on
// this data, where the rounding perturbs nothing the clustering sees.
func TestAnalyzeJointStoreBitIdentical(t *testing.T) {
	benches := []BenchmarkIntervals{
		synthBench("s/a/one", 60, 1),
		synthBench("s/b/two", 45, 2),
		synthBench("s/c/three", 70, 3),
	}
	cfg := Config{IntervalLen: 1000, MaxIntervals: 70, MaxK: 6, Seed: 2006}

	st := storeFrom(t, t.TempDir(), ivstore.Float32, benches)
	got, err := AnalyzeJointStore(st, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Vectors != nil {
		t.Error("store-backed result materialized the joint matrix")
	}

	// Exact contract: identical to the in-memory path on the rounded
	// vectors, field for field.
	wantRounded, err := AnalyzeJoint(roundF32(benches), cfg)
	if err != nil {
		t.Fatal(err)
	}
	compareJoint(t, "vs rounded in-memory", got, wantRounded)

	// End-to-end: on this (well-separated) data the float32 round-trip
	// must not move the vocabulary at all relative to raw float64 input.
	wantRaw, err := AnalyzeJoint(benches, cfg)
	if err != nil {
		t.Fatal(err)
	}
	compareJoint(t, "vs raw in-memory", got, wantRaw)

	// Determinism across worker counts.
	again, err := AnalyzeJointStore(st, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	compareJoint(t, "across worker counts", got, again)
}

// compareJoint asserts every clustering-derived field matches
// (Vectors excluded: the store path deliberately never builds it).
func compareJoint(t *testing.T, what string, got, want *JointResult) {
	t.Helper()
	if !reflect.DeepEqual(got.Benchmarks, want.Benchmarks) {
		t.Errorf("%s: benchmarks diverge", what)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) || !reflect.DeepEqual(got.RowInsts, want.RowInsts) {
		t.Errorf("%s: row provenance diverges", what)
	}
	if got.K != want.K {
		t.Fatalf("%s: K = %d, want %d", what, got.K, want.K)
	}
	if !reflect.DeepEqual(got.Assign, want.Assign) {
		t.Errorf("%s: assignment diverges", what)
	}
	if !reflect.DeepEqual(got.Representatives, want.Representatives) {
		t.Errorf("%s: representatives diverge: %+v vs %+v", what, got.Representatives, want.Representatives)
	}
	if !reflect.DeepEqual(got.Occupancy, want.Occupancy) {
		t.Errorf("%s: occupancy diverges", what)
	}
}

// TestAnalyzeJointStoreQuant8: the quantized store yields a structurally
// valid vocabulary whose occupancy stays close to the exact one — the
// documented trade of the 8x smaller encoding.
func TestAnalyzeJointStoreQuant8(t *testing.T) {
	benches := []BenchmarkIntervals{
		synthBench("q/a", 80, 11),
		synthBench("q/b", 60, 12),
	}
	cfg := Config{IntervalLen: 1000, MaxIntervals: 80, MaxK: 5, Seed: 2006}
	exact, err := AnalyzeJoint(benches, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := storeFrom(t, t.TempDir(), ivstore.Quant8, benches)
	got, err := AnalyzeJointStore(st, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.K < 1 || len(got.Assign) != exact.Vectors.Rows {
		t.Fatalf("quantized vocabulary malformed: K=%d, %d assignments", got.K, len(got.Assign))
	}
	if got.K != exact.K {
		t.Fatalf("quantized K %d, exact %d (structure should survive 8-bit quantization on separated data)", got.K, exact.K)
	}
	maxDiff := 0.0
	for b := 0; b < len(benches); b++ {
		for c := 0; c < got.K; c++ {
			if d := abs(got.Occupancy.At(b, c) - exact.Occupancy.At(b, c)); d > maxDiff {
				maxDiff = d
			}
		}
	}
	if maxDiff > 0.05 {
		t.Errorf("quantized occupancy deviates %.4f from exact (want <= 0.05)", maxDiff)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// TestAnalyzeJointStoreRejects: dimensionality and emptiness are
// validated up front with errors naming the store.
func TestAnalyzeJointStoreRejects(t *testing.T) {
	dir := t.TempDir()
	st, err := ivstore.Create(dir, ivstore.Config{Dims: 5})
	if err != nil {
		t.Fatal(err)
	}
	insts := []uint64{100, 100}
	if err := st.WriteShard("x", insts, stats.FromRows([][]float64{{1, 2, 3, 4, 5}, {2, 3, 4, 5, 6}})); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit([]string{"x"}); err != nil {
		t.Fatal(err)
	}
	opened, err := ivstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeJointStore(opened, Config{}, 0); err == nil {
		t.Error("5-dimensional store accepted for 47-dim joint analysis")
	}

	empty, err := ivstore.Create(t.TempDir(), ivstore.Config{Dims: mica.NumChars})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := empty.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeJointStore(empty, Config{}, 0); err == nil {
		t.Error("empty store accepted")
	}
}
