// Store-backed reduced profiling: the cheap pass's key-subset interval
// vectors live in an interval-vector store (one shard per benchmark)
// instead of memory, and the expensive replay gathers only the planned
// representative intervals back through the store's decoded-shard
// cache. The cheap vectors are stored at the full characteristic width
// (columns outside the key subset are exactly zero, which both store
// encodings round-trip losslessly), so the same shard layout, config
// stamping and incremental-adoption machinery serve the plain and
// reduced pipelines alike.
package phases

import (
	"fmt"
	"sort"

	"mica/internal/cluster"
	"mica/internal/ivstore"
	"mica/internal/mica"
	"mica/internal/stats"
	"mica/internal/trace"
)

// measurementPlanRows is measurementPlan over any normalized row
// source: for each phase, the reps rows closest to the phase's mean
// (ties broken by ascending row index), returned as row index ->
// phase. Rows are consumed one at a time in ascending index order in
// both passes, so a streaming store view yields the same plan a
// materialized matrix would, bit for bit, when the underlying values
// match.
func measurementPlanRows(norm cluster.Rows, assign []int, k, reps int) map[int]int {
	n, d := norm.Len(), norm.Dim()
	means := stats.NewMatrix(k, d)
	counts := make([]int, k)
	for i := 0; i < n; i++ {
		c := assign[i]
		counts[c]++
		row := norm.Row(i)
		for j := 0; j < d; j++ {
			means.Set(c, j, means.At(c, j)+row[j])
		}
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		for j := 0; j < d; j++ {
			means.Set(c, j, means.At(c, j)/float64(counts[c]))
		}
	}
	type ranked struct {
		dist float64
		idx  int
	}
	byPhase := make([][]ranked, k)
	for i := 0; i < n; i++ {
		c := assign[i]
		byPhase[c] = append(byPhase[c], ranked{stats.Euclidean(norm.Row(i), means.Row(c)), i})
	}
	plan := make(map[int]int)
	for c, members := range byPhase {
		sort.Slice(members, func(a, b int) bool {
			if members[a].dist != members[b].dist {
				return members[a].dist < members[b].dist
			}
			return members[a].idx < members[b].idx
		})
		take := reps
		if take > len(members) {
			take = len(members)
		}
		for _, r := range members[:take] {
			plan[r.idx] = c
		}
	}
	return plan
}

// ReplayJointStore is ReplayJoint for a store-backed joint vocabulary
// (one whose Vectors matrix was never materialized): the measurement
// plan is computed by streaming the store's rows through the same
// z-score view the clustering used, and the replay itself is the
// shared joint replay. When j carries its clustering's normalization
// statistics (a result of AnalyzeJointStore in this process), they are
// reused; otherwise they are recomputed from the store, which yields
// the identical statistics for an unchanged store.
func ReplayJointStore(st *ivstore.Store, j *JointResult, sources func(bench int) (trace.Source, error), cfg ReducedConfig) (*JointReduced, error) {
	cfg = cfg.WithDefaults()
	if st.NumRows() != len(j.Rows) {
		return nil, fmt.Errorf("phases: joint store replay: store has %d rows, vocabulary has %d", st.NumRows(), len(j.Rows))
	}
	mean, std := j.normMean, j.normStd
	if mean == nil || std == nil {
		mean, std = cluster.ColumnStats(st.Rows())
	}
	norm := cluster.Normalized(st.Rows(), mean, std)
	plan := measurementPlanRows(norm, j.Assign, j.K, cfg.RepsPerPhase)
	return replayJointPlan(j, plan, sources, cfg)
}

// ResultFromShard reconstructs a cheap-pass phase Result from a stored
// shard: the interval grid is rebuilt from the per-interval
// instruction counts (intervals are contiguous by construction) and
// the vectors are the shard's rows, then the intervals are clustered
// under the reduced pipeline's cheap configuration. This is the
// store-backed stand-in for re-running the cheap characterization —
// the difference to the in-memory Result is only the store encoding's
// rounding (float32 by default).
func ResultFromShard(sd *ivstore.ShardData, cfg ReducedConfig) *Result {
	cfg = cfg.WithDefaults()
	res := &Result{
		Intervals: make([]Interval, len(sd.Insts)),
		Vectors:   sd.Vecs,
	}
	var start uint64
	for i, insts := range sd.Insts {
		res.Intervals[i] = Interval{Index: i, Start: start, Insts: insts}
		start += insts
	}
	res.cluster(cfg.CheapConfig())
	return res
}

// ReplayReducedShard runs the expensive reduced replay for one
// benchmark whose cheap pass was loaded from a store shard: the shard
// is lifted back into a phase Result (ResultFromShard) and replayed
// with ReplayReduced. m must be a fresh source for the shard's
// benchmark and fullProf a profiler built from cfg.FullOptions.
func ReplayReducedShard(m trace.Source, fullProf *mica.Profiler, sd *ivstore.ShardData, cfg ReducedConfig) (*ReducedResult, error) {
	cfg = cfg.WithDefaults()
	return ReplayReduced(m, fullProf, ResultFromShard(sd, cfg), cfg)
}
