package mica

import "mica/internal/trace"

// Working-set granularities from Table II (characteristics 20-23).
const (
	wsBlockShift = 5  // 32-byte blocks
	wsPageShift  = 12 // 4KB pages
)

// WorkingSetAnalyzer counts the number of unique 32-byte blocks and unique
// 4KB pages touched by the instruction stream and by the data stream
// (Table II characteristics 20-23).
type WorkingSetAnalyzer struct {
	dBlocks map[uint64]struct{}
	dPages  map[uint64]struct{}
	iBlocks map[uint64]struct{}
	iPages  map[uint64]struct{}
}

// NewWorkingSetAnalyzer returns a ready analyzer.
func NewWorkingSetAnalyzer() *WorkingSetAnalyzer {
	return &WorkingSetAnalyzer{
		dBlocks: make(map[uint64]struct{}),
		dPages:  make(map[uint64]struct{}),
		iBlocks: make(map[uint64]struct{}),
		iPages:  make(map[uint64]struct{}),
	}
}

// Observe implements trace.Observer.
func (a *WorkingSetAnalyzer) Observe(ev *trace.Event) {
	a.iBlocks[ev.PC>>wsBlockShift] = struct{}{}
	a.iPages[ev.PC>>wsPageShift] = struct{}{}
	if ev.MemSize > 0 {
		// A wide access that straddles a block boundary touches both
		// blocks.
		first := ev.MemAddr >> wsBlockShift
		last := (ev.MemAddr + uint64(ev.MemSize) - 1) >> wsBlockShift
		for b := first; b <= last; b++ {
			a.dBlocks[b] = struct{}{}
		}
		a.dPages[ev.MemAddr>>wsPageShift] = struct{}{}
		if lp := (ev.MemAddr + uint64(ev.MemSize) - 1) >> wsPageShift; lp != ev.MemAddr>>wsPageShift {
			a.dPages[lp] = struct{}{}
		}
	}
}

// DataBlocks returns the number of unique 32B blocks in the data stream.
func (a *WorkingSetAnalyzer) DataBlocks() int { return len(a.dBlocks) }

// DataPages returns the number of unique 4KB pages in the data stream.
func (a *WorkingSetAnalyzer) DataPages() int { return len(a.dPages) }

// InstBlocks returns the number of unique 32B blocks in the instruction
// stream.
func (a *WorkingSetAnalyzer) InstBlocks() int { return len(a.iBlocks) }

// InstPages returns the number of unique 4KB pages in the instruction
// stream.
func (a *WorkingSetAnalyzer) InstPages() int { return len(a.iPages) }

// Fill writes characteristics 20-23 into v.
func (a *WorkingSetAnalyzer) Fill(v *Vector) {
	v[CharDWSBlocks] = float64(a.DataBlocks())
	v[CharDWSPages] = float64(a.DataPages())
	v[CharIWSBlocks] = float64(a.InstBlocks())
	v[CharIWSPages] = float64(a.InstPages())
}
