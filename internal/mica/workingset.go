package mica

import (
	"mica/internal/flathash"
	"mica/internal/trace"
)

// Working-set granularities from Table II (characteristics 20-23).
const (
	wsBlockShift = 5  // 32-byte blocks
	wsPageShift  = 12 // 4KB pages
)

// wsNone is a last-seen tag no real block or page number can equal (it
// would need shifted addresses of 2^64-1).
const wsNone = ^uint64(0)

// WorkingSetAnalyzer counts the number of unique 32-byte blocks and unique
// 4KB pages touched by the instruction stream and by the data stream
// (Table II characteristics 20-23).
//
// Uniqueness is tracked in flat open-addressed sets, fronted by
// single-entry last-block/last-page caches: consecutive instructions
// almost always share a 32B code block, and consecutive data accesses
// usually share a block or at least a page, so the common case is one
// compare instead of a hash probe.
type WorkingSetAnalyzer struct {
	lastIBlock uint64
	lastIPage  uint64
	lastDBlock uint64
	lastDPage  uint64

	dBlocks *flathash.U64Set
	dPages  *flathash.U64Set
	iBlocks *flathash.U64Set
	iPages  *flathash.U64Set
}

// NewWorkingSetAnalyzer returns a ready analyzer.
func NewWorkingSetAnalyzer() *WorkingSetAnalyzer {
	return &WorkingSetAnalyzer{
		lastIBlock: wsNone,
		lastIPage:  wsNone,
		lastDBlock: wsNone,
		lastDPage:  wsNone,
		dBlocks:    flathash.NewU64Set(0),
		dPages:     flathash.NewU64Set(0),
		iBlocks:    flathash.NewU64Set(0),
		iPages:     flathash.NewU64Set(0),
	}
}

// Reset returns the analyzer to its initial state. The uniqueness sets
// are cleared in place, so an analyzer recycled across trace intervals
// keeps its table capacity instead of regrowing it from scratch.
func (a *WorkingSetAnalyzer) Reset() {
	a.lastIBlock, a.lastIPage = wsNone, wsNone
	a.lastDBlock, a.lastDPage = wsNone, wsNone
	a.dBlocks.Clear()
	a.dPages.Clear()
	a.iBlocks.Clear()
	a.iPages.Clear()
}

// Observe implements trace.Observer.
func (a *WorkingSetAnalyzer) Observe(ev *trace.Event) {
	if ib := ev.PC >> wsBlockShift; ib != a.lastIBlock {
		a.lastIBlock = ib
		a.iBlocks.Add(ib)
		if ip := ev.PC >> wsPageShift; ip != a.lastIPage {
			a.lastIPage = ip
			a.iPages.Add(ip)
		}
	}
	if ev.MemSize > 0 {
		// A wide access that straddles a block boundary touches both
		// blocks.
		first := ev.MemAddr >> wsBlockShift
		last := (ev.MemAddr + uint64(ev.MemSize) - 1) >> wsBlockShift
		if first != a.lastDBlock || first != last {
			a.lastDBlock = last
			for b := first; b <= last; b++ {
				a.dBlocks.Add(b)
			}
		}
		fp := ev.MemAddr >> wsPageShift
		lp := (ev.MemAddr + uint64(ev.MemSize) - 1) >> wsPageShift
		if fp != a.lastDPage || fp != lp {
			a.lastDPage = lp
			a.dPages.Add(fp)
			if lp != fp {
				a.dPages.Add(lp)
			}
		}
	}
}

// DataBlocks returns the number of unique 32B blocks in the data stream.
func (a *WorkingSetAnalyzer) DataBlocks() int { return a.dBlocks.Len() }

// DataPages returns the number of unique 4KB pages in the data stream.
func (a *WorkingSetAnalyzer) DataPages() int { return a.dPages.Len() }

// InstBlocks returns the number of unique 32B blocks in the instruction
// stream.
func (a *WorkingSetAnalyzer) InstBlocks() int { return a.iBlocks.Len() }

// InstPages returns the number of unique 4KB pages in the instruction
// stream.
func (a *WorkingSetAnalyzer) InstPages() int { return a.iPages.Len() }

// Fill writes characteristics 20-23 into v.
func (a *WorkingSetAnalyzer) Fill(v *Vector) {
	v[CharDWSBlocks] = float64(a.DataBlocks())
	v[CharDWSPages] = float64(a.DataPages())
	v[CharIWSBlocks] = float64(a.InstBlocks())
	v[CharIWSPages] = float64(a.InstPages())
}
