package mica

import "mica/internal/trace"

// Options configures a Profiler.
type Options struct {
	// ILPWindows are the idealized window sizes; nil means the Table II
	// defaults {32, 64, 128, 256}.
	ILPWindows []int
	// NoMemDeps makes the ILP model ignore store-to-load dependencies
	// through memory. The field is inverted so that the zero Options
	// value is the documented default (dependencies honored): callers
	// that set only some fields can no longer silently lose memory
	// dependence tracking.
	NoMemDeps bool
	// PPMOrder is the maximum PPM context order; 0 means
	// DefaultPPMOrder.
	PPMOrder int
	// Subset, when non-nil, selects which characteristics must be
	// measured (true = measure). Whole analyzers are skipped when none
	// of their characteristics are selected — this is exactly the
	// measurement saving the paper's key-characteristic selection
	// delivers (Section V: 8 characteristics are ~3X faster to collect
	// than 47).
	Subset []bool
}

// DefaultOptions returns the configuration used throughout the paper
// reproduction. It is identical to the zero Options value: memory
// dependencies tracked, default PPM order, all 47 characteristics.
func DefaultOptions() Options {
	return Options{PPMOrder: DefaultPPMOrder}
}

// Profiler measures the 47 Table II characteristics in a single pass over
// the dynamic instruction stream. It implements trace.Observer; attach it
// to a vm.Machine run and call Vector when done.
type Profiler struct {
	mix     *MixAnalyzer
	ilp     *ILPAnalyzer
	reg     *RegTrafficAnalyzer
	ws      *WorkingSetAnalyzer
	strides *StrideAnalyzer
	ppm     *PPMAnalyzer
}

// rangeActive reports whether any characteristic in [lo, hi] is selected.
func rangeActive(subset []bool, lo, hi int) bool {
	if subset == nil {
		return true
	}
	for i := lo; i <= hi && i < len(subset); i++ {
		if subset[i] {
			return true
		}
	}
	return false
}

// NewProfiler builds a profiler with the given options.
func NewProfiler(opts Options) *Profiler {
	order := opts.PPMOrder
	if order == 0 {
		order = DefaultPPMOrder
	}
	p := &Profiler{}
	if rangeActive(opts.Subset, CharPctLoads, CharPctFP) {
		p.mix = NewMixAnalyzer()
	}
	if rangeActive(opts.Subset, CharILP32, CharILP256) {
		windows := opts.ILPWindows
		if windows == nil && opts.Subset != nil {
			// Simulate only the selected window sizes.
			for i, w := range DefaultILPWindows {
				c := CharILP32 + i
				if c < len(opts.Subset) && opts.Subset[c] {
					windows = append(windows, w)
				}
			}
		}
		p.ilp = NewILPAnalyzer(windows, !opts.NoMemDeps)
	}
	if rangeActive(opts.Subset, CharAvgInputOperands, CharDepDistLE64) {
		p.reg = NewRegTrafficAnalyzer()
	}
	if rangeActive(opts.Subset, CharDWSBlocks, CharIWSPages) {
		p.ws = NewWorkingSetAnalyzer()
	}
	if rangeActive(opts.Subset, CharLocalLoadStride0, CharGlobalStoreStrideLE4096) {
		p.strides = NewStrideAnalyzer()
	}
	if rangeActive(opts.Subset, CharPPMGAg, CharPPMPAs) {
		var variants []PPMVariant
		if opts.Subset != nil {
			for v := 0; v < NumPPMVariants; v++ {
				c := CharPPMGAg + v
				if c < len(opts.Subset) && opts.Subset[c] {
					variants = append(variants, PPMVariant(v))
				}
			}
		}
		p.ppm = NewPPMAnalyzerVariants(order, variants)
	}
	return p
}

// Observe implements trace.Observer, fanning the event to each active
// analyzer.
func (p *Profiler) Observe(ev *trace.Event) {
	if p.mix != nil {
		p.mix.Observe(ev)
	}
	if p.ilp != nil {
		p.ilp.Observe(ev)
	}
	if p.reg != nil {
		p.reg.Observe(ev)
	}
	if p.ws != nil {
		p.ws.Observe(ev)
	}
	if p.strides != nil {
		p.strides.Observe(ev)
	}
	if p.ppm != nil {
		p.ppm.Observe(ev)
	}
}

// Reset returns the profiler to its initial state so it can be reused
// for another trace: all analyzer tables are cleared in place, keeping
// their allocations. A reset profiler produces bit-identical results to
// a freshly constructed one with the same Options — the property that
// lets phase analysis stream thousands of intervals through one
// profiler and lets registry-wide pipelines pool analyzer state across
// benchmarks instead of rebuilding it per trace.
func (p *Profiler) Reset() {
	if p.mix != nil {
		p.mix.Reset()
	}
	if p.ilp != nil {
		p.ilp.Reset()
	}
	if p.reg != nil {
		p.reg.Reset()
	}
	if p.ws != nil {
		p.ws.Reset()
	}
	if p.strides != nil {
		p.strides.Reset()
	}
	if p.ppm != nil {
		p.ppm.Reset()
	}
}

// Vector assembles the 47-dimensional characteristic vector. Entries of
// analyzers that were disabled by Options.Subset are zero.
func (p *Profiler) Vector() Vector {
	var v Vector
	if p.mix != nil {
		p.mix.Fill(&v)
	}
	if p.ilp != nil {
		p.ilp.Fill(&v)
	}
	if p.reg != nil {
		p.reg.Fill(&v)
	}
	if p.ws != nil {
		p.ws.Fill(&v)
	}
	if p.strides != nil {
		p.strides.Fill(&v)
	}
	if p.ppm != nil {
		p.ppm.Fill(&v)
	}
	return v
}

// Mix exposes the instruction-mix analyzer (nil if disabled); used by the
// HPC characterization, which includes the instruction mix as the paper
// does for Figure 2.
func (p *Profiler) Mix() *MixAnalyzer { return p.mix }
