// Package mica implements the paper's primary contribution: the 47
// microarchitecture-independent program characteristics of Table II,
// measured in a single pass over the dynamic instruction stream, plus the
// orchestration that turns a workload run into a feature vector.
//
// The characteristic indices below follow Table II exactly (0-based where
// the paper is 1-based).
package mica

import "fmt"

// NumChars is the number of microarchitecture-independent characteristics
// (Table II).
const NumChars = 47

// Characteristic indices into a Vector, mirroring Table II rows 1-47.
const (
	// Instruction mix (1-6).
	CharPctLoads = iota
	CharPctStores
	CharPctBranches
	CharPctArith
	CharPctIntMul
	CharPctFP
	// ILP for idealized windows (7-10).
	CharILP32
	CharILP64
	CharILP128
	CharILP256
	// Register traffic (11-19).
	CharAvgInputOperands
	CharAvgDegreeOfUse
	CharDepDistEq1
	CharDepDistLE2
	CharDepDistLE4
	CharDepDistLE8
	CharDepDistLE16
	CharDepDistLE32
	CharDepDistLE64
	// Working set sizes (20-23).
	CharDWSBlocks
	CharDWSPages
	CharIWSBlocks
	CharIWSPages
	// Data stream strides (24-43).
	CharLocalLoadStride0
	CharLocalLoadStrideLE8
	CharLocalLoadStrideLE64
	CharLocalLoadStrideLE512
	CharLocalLoadStrideLE4096
	CharGlobalLoadStride0
	CharGlobalLoadStrideLE8
	CharGlobalLoadStrideLE64
	CharGlobalLoadStrideLE512
	CharGlobalLoadStrideLE4096
	CharLocalStoreStride0
	CharLocalStoreStrideLE8
	CharLocalStoreStrideLE64
	CharLocalStoreStrideLE512
	CharLocalStoreStrideLE4096
	CharGlobalStoreStride0
	CharGlobalStoreStrideLE8
	CharGlobalStoreStrideLE64
	CharGlobalStoreStrideLE512
	CharGlobalStoreStrideLE4096
	// Branch predictability (44-47).
	CharPPMGAg
	CharPPMPAg
	CharPPMGAs
	CharPPMPAs
)

// Vector is one benchmark's 47-dimensional characteristic vector.
type Vector [NumChars]float64

// charNames holds the short names of all characteristics in Table II
// order.
var charNames = [NumChars]string{
	"pct_loads",
	"pct_stores",
	"pct_branches",
	"pct_arith",
	"pct_int_mul",
	"pct_fp",
	"ilp_w32",
	"ilp_w64",
	"ilp_w128",
	"ilp_w256",
	"avg_input_operands",
	"avg_degree_of_use",
	"dep_dist_eq1",
	"dep_dist_le2",
	"dep_dist_le4",
	"dep_dist_le8",
	"dep_dist_le16",
	"dep_dist_le32",
	"dep_dist_le64",
	"dws_32b_blocks",
	"dws_4kb_pages",
	"iws_32b_blocks",
	"iws_4kb_pages",
	"local_load_stride_0",
	"local_load_stride_le8",
	"local_load_stride_le64",
	"local_load_stride_le512",
	"local_load_stride_le4096",
	"global_load_stride_0",
	"global_load_stride_le8",
	"global_load_stride_le64",
	"global_load_stride_le512",
	"global_load_stride_le4096",
	"local_store_stride_0",
	"local_store_stride_le8",
	"local_store_stride_le64",
	"local_store_stride_le512",
	"local_store_stride_le4096",
	"global_store_stride_0",
	"global_store_stride_le8",
	"global_store_stride_le64",
	"global_store_stride_le512",
	"global_store_stride_le4096",
	"ppm_gag",
	"ppm_pag",
	"ppm_gas",
	"ppm_pas",
}

// charCategories maps each characteristic to its Table II category.
var charCategories = [NumChars]string{}

func init() {
	set := func(lo, hi int, cat string) {
		for i := lo; i <= hi; i++ {
			charCategories[i] = cat
		}
	}
	set(CharPctLoads, CharPctFP, "instruction mix")
	set(CharILP32, CharILP256, "ILP")
	set(CharAvgInputOperands, CharDepDistLE64, "register traffic")
	set(CharDWSBlocks, CharIWSPages, "working set size")
	set(CharLocalLoadStride0, CharGlobalStoreStrideLE4096, "data stream strides")
	set(CharPPMGAg, CharPPMPAs, "branch predictability")
}

// CharName returns the short name of characteristic i.
func CharName(i int) string {
	if i < 0 || i >= NumChars {
		return fmt.Sprintf("char(%d)", i)
	}
	return charNames[i]
}

// CharCategory returns the Table II category of characteristic i.
func CharCategory(i int) string {
	if i < 0 || i >= NumChars {
		return "unknown"
	}
	return charCategories[i]
}

// CharNames returns all 47 characteristic names in Table II order.
func CharNames() []string {
	out := make([]string, NumChars)
	copy(out, charNames[:])
	return out
}
