package mica

import (
	"mica/internal/isa"
	"mica/internal/trace"
)

// MixAnalyzer measures the instruction mix (Table II, characteristics
// 1-6): the fraction of loads, stores, control transfers, integer
// arithmetic, integer multiplies and floating-point operations.
type MixAnalyzer struct {
	counts [isa.NumClasses]uint64
	total  uint64
}

// NewMixAnalyzer returns a ready MixAnalyzer.
func NewMixAnalyzer() *MixAnalyzer { return &MixAnalyzer{} }

// Reset returns the analyzer to its initial state.
func (a *MixAnalyzer) Reset() { *a = MixAnalyzer{} }

// Observe implements trace.Observer.
func (a *MixAnalyzer) Observe(ev *trace.Event) {
	a.counts[ev.Class]++
	a.total++
}

// Total returns the number of observed instructions.
func (a *MixAnalyzer) Total() uint64 { return a.total }

// Fraction returns the fraction of instructions in class c, in [0,1].
func (a *MixAnalyzer) Fraction(c isa.Class) float64 {
	if a.total == 0 {
		return 0
	}
	return float64(a.counts[c]) / float64(a.total)
}

// Fill writes characteristics 1-6 into v.
func (a *MixAnalyzer) Fill(v *Vector) {
	v[CharPctLoads] = a.Fraction(isa.ClassLoad)
	v[CharPctStores] = a.Fraction(isa.ClassStore)
	v[CharPctBranches] = a.Fraction(isa.ClassBranch)
	v[CharPctArith] = a.Fraction(isa.ClassIntArith)
	v[CharPctIntMul] = a.Fraction(isa.ClassIntMul)
	v[CharPctFP] = a.Fraction(isa.ClassFP)
}
