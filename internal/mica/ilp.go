package mica

import (
	"mica/internal/isa"
	"mica/internal/trace"
)

// DefaultILPWindows are the idealized instruction-window sizes of Table II
// (characteristics 7-10).
var DefaultILPWindows = []int{32, 64, 128, 256}

// ILPAnalyzer measures the instruction-level parallelism achievable by an
// idealized out-of-order processor: perfect branch prediction, perfect
// caches, infinite functional units, unit latencies — limited only by the
// instruction window size and true data dependencies. This follows the
// paper's ILP definition for window sizes 32/64/128/256.
//
// The model is the standard dataflow-limit simulation: an instruction may
// issue when all its producers have completed and the instruction W
// positions earlier has retired (making window room). Both register
// dependencies and store-to-load memory dependencies are honored; the
// latter can be disabled for ablation.
type ILPAnalyzer struct {
	states []*ilpState
	// TrackMemDeps controls whether store-to-load dependencies through
	// memory constrain issue (default true).
	trackMemDeps bool
}

type ilpState struct {
	win      int
	regReady [isa.NumRegs]uint64
	// ring holds completion cycles of the last win instructions.
	ring    []uint64
	pos     int
	n       uint64
	maxDone uint64
	// memReady maps 8-byte-aligned addresses to the completion cycle of
	// the last store covering them.
	memReady map[uint64]uint64
}

// NewILPAnalyzer builds an analyzer for the given window sizes (nil means
// DefaultILPWindows). trackMemDeps enables store-to-load dependence
// tracking through memory.
func NewILPAnalyzer(windows []int, trackMemDeps bool) *ILPAnalyzer {
	if windows == nil {
		windows = DefaultILPWindows
	}
	a := &ILPAnalyzer{trackMemDeps: trackMemDeps}
	for _, w := range windows {
		if w <= 0 {
			panic("mica: ILP window size must be positive")
		}
		a.states = append(a.states, &ilpState{
			win:      w,
			ring:     make([]uint64, w),
			memReady: make(map[uint64]uint64),
		})
	}
	return a
}

// Observe implements trace.Observer.
func (a *ILPAnalyzer) Observe(ev *trace.Event) {
	for _, s := range a.states {
		s.observe(ev, a.trackMemDeps)
	}
}

func (s *ilpState) observe(ev *trace.Event, memDeps bool) {
	var ready uint64
	for i := uint8(0); i < ev.NSrc; i++ {
		r := ev.Src[i]
		if r.IsZero() {
			continue
		}
		if t := s.regReady[r]; t > ready {
			ready = t
		}
	}
	// Window constraint: the slot becomes free when the instruction W
	// positions back completes.
	if s.n >= uint64(s.win) {
		if t := s.ring[s.pos]; t > ready {
			ready = t
		}
	}
	if memDeps && ev.MemSize > 0 {
		blk := ev.MemAddr >> 3
		if ev.Class == isa.ClassLoad {
			if t := s.memReady[blk]; t > ready {
				ready = t
			}
		}
	}
	done := ready + 1
	if memDeps && ev.MemSize > 0 && ev.Class == isa.ClassStore {
		s.memReady[ev.MemAddr>>3] = done
	}
	if ev.HasDst && !ev.Dst.IsZero() {
		s.regReady[ev.Dst] = done
	}
	s.ring[s.pos] = done
	s.pos++
	if s.pos == s.win {
		s.pos = 0
	}
	if done > s.maxDone {
		s.maxDone = done
	}
	s.n++
}

// IPC returns the achieved instructions-per-cycle for the i-th configured
// window.
func (a *ILPAnalyzer) IPC(i int) float64 {
	s := a.states[i]
	if s.maxDone == 0 {
		return 0
	}
	return float64(s.n) / float64(s.maxDone)
}

// Windows returns the configured window sizes.
func (a *ILPAnalyzer) Windows() []int {
	out := make([]int, len(a.states))
	for i, s := range a.states {
		out[i] = s.win
	}
	return out
}

// Fill writes characteristics 7-10 into v; it requires the analyzer to be
// configured with the four default windows.
func (a *ILPAnalyzer) Fill(v *Vector) {
	for i, s := range a.states {
		switch s.win {
		case 32:
			v[CharILP32] = a.IPC(i)
		case 64:
			v[CharILP64] = a.IPC(i)
		case 128:
			v[CharILP128] = a.IPC(i)
		case 256:
			v[CharILP256] = a.IPC(i)
		}
	}
}
