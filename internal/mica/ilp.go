package mica

import (
	"mica/internal/flathash"
	"mica/internal/isa"
	"mica/internal/trace"
)

// DefaultILPWindows are the idealized instruction-window sizes of Table II
// (characteristics 7-10).
var DefaultILPWindows = []int{32, 64, 128, 256}

// ILPAnalyzer measures the instruction-level parallelism achievable by an
// idealized out-of-order processor: perfect branch prediction, perfect
// caches, infinite functional units, unit latencies — limited only by the
// instruction window size and true data dependencies. This follows the
// paper's ILP definition for window sizes 32/64/128/256.
//
// The model is the standard dataflow-limit simulation: an instruction may
// issue when all its producers have completed and the instruction W
// positions earlier has retired (making window room). Both register
// dependencies and store-to-load memory dependencies are honored; the
// latter can be disabled for ablation.
//
// All window configurations are simulated interleaved in one pass: state
// that the configurations index the same way (per-register and per-block
// completion cycles, the retirement ring) is stored as contiguous
// per-window rows, so one instruction touches one cache line per
// register/block instead of one per window, and store-to-load dependence
// state costs a single flat-hash probe for all windows together.
type ILPAnalyzer struct {
	wins []int
	// TrackMemDeps controls whether store-to-load dependencies through
	// memory constrain issue (default true).
	trackMemDeps bool

	ns     int // number of window configurations
	maxWin int

	// regReady holds, for each register, the completion cycle of its
	// latest producer in each window configuration: row r is
	// regReady[r*ns : (r+1)*ns].
	regReady []uint64
	// ring holds the completion cycles of the last maxWin instructions,
	// one ns-wide row per instruction slot; the entry for instruction
	// k lives at row k%maxWin until overwritten maxWin retirements
	// later, so every window size W <= maxWin can read instruction n-W.
	// wpos is the write row for the current instruction and rpos[j] the
	// read row for window j (both rolled forward each event, avoiding
	// per-event modulo).
	ring []uint64
	wpos int
	rpos []int
	// n is the number of instructions retired; maxDone and ready are
	// per-window completion frontiers and a per-event scratch row.
	n       uint64
	maxDone []uint64
	ready   []uint64

	// memRows maps an 8-byte-aligned address to 1 + the base offset of
	// its row in memVals; row r spans memVals[r : r+ns], entry j
	// holding the completion cycle of the last store covering the
	// block in window configuration j.
	memRows *flathash.U64Map
	memVals []uint64
	zeroRow []uint64
}

// NewILPAnalyzer builds an analyzer for the given window sizes (nil means
// DefaultILPWindows). trackMemDeps enables store-to-load dependence
// tracking through memory.
func NewILPAnalyzer(windows []int, trackMemDeps bool) *ILPAnalyzer {
	if windows == nil {
		windows = DefaultILPWindows
	}
	a := &ILPAnalyzer{trackMemDeps: trackMemDeps, ns: len(windows)}
	for _, w := range windows {
		if w <= 0 {
			panic("mica: ILP window size must be positive")
		}
		a.wins = append(a.wins, w)
		if w > a.maxWin {
			a.maxWin = w
		}
	}
	a.regReady = make([]uint64, isa.NumRegs*a.ns)
	a.ring = make([]uint64, a.maxWin*a.ns)
	a.rpos = make([]int, a.ns)
	for j, w := range a.wins {
		// Row of instruction n-w once n >= w: starts at maxWin-w and
		// rolls forward in lockstep with wpos.
		a.rpos[j] = a.maxWin - w
	}
	a.maxDone = make([]uint64, a.ns)
	a.ready = make([]uint64, a.ns)
	a.memRows = flathash.NewU64Map(0)
	a.zeroRow = make([]uint64, a.ns)
	return a
}

// Reset returns the analyzer to its initial state, keeping all
// allocations: the per-register and ring completion tables are zeroed in
// place, the store-to-load dependence table is cleared, and its row
// arena is truncated for refilling.
func (a *ILPAnalyzer) Reset() {
	clear(a.regReady)
	clear(a.ring)
	a.wpos = 0
	for j, w := range a.wins {
		a.rpos[j] = a.maxWin - w
	}
	a.n = 0
	clear(a.maxDone)
	clear(a.ready)
	a.memRows.Clear()
	a.memVals = a.memVals[:0]
}

// Observe implements trace.Observer.
func (a *ILPAnalyzer) Observe(ev *trace.Event) {
	if a.ns == 4 {
		// The Table II configuration; fixed-width rows let the compiler
		// drop bounds checks and keep the scratch row in registers.
		a.observe4(ev)
		return
	}
	ns := a.ns
	ready := a.ready
	copy(ready, a.zeroRow)

	// Register dependencies.
	for i := uint8(0); i < ev.NDepSrc; i++ {
		base := int(ev.DepSrc[i]) * ns
		row := a.regReady[base : base+ns]
		for j, t := range row {
			if t > ready[j] {
				ready[j] = t
			}
		}
	}

	// Window constraint: the slot becomes free when the instruction W
	// positions back completes.
	for j, w := range a.wins {
		if a.n >= uint64(w) {
			if t := a.ring[a.rpos[j]*ns+j]; t > ready[j] {
				ready[j] = t
			}
		}
		a.rpos[j]++
		if a.rpos[j] == a.maxWin {
			a.rpos[j] = 0
		}
	}

	// Store-to-load dependencies through memory.
	var memRow []uint64
	isLoad := false
	if a.trackMemDeps && ev.MemSize > 0 {
		blk := ev.MemAddr >> 3
		if isLoad = ev.Class == isa.ClassLoad; isLoad {
			// Loads only read dependence state: a block no store has
			// touched needs no row (its ready cycles are all zero), and
			// materializing one per loaded block would blow the table
			// up to the data working set on read-heavy workloads.
			if off, ok := a.memRows.Get(blk); ok {
				memRow = a.memVals[off-1 : off-1+uint64(ns)]
				for j := 0; j < ns; j++ {
					if t := memRow[j]; t > ready[j] {
						ready[j] = t
					}
				}
			}
		} else {
			ref := a.memRows.Ref(blk)
			if *ref == 0 {
				*ref = uint64(len(a.memVals)) + 1
				a.memVals = append(a.memVals, a.zeroRow...)
			}
			memRow = a.memVals[*ref-1 : *ref-1+uint64(ns)]
		}
	}

	// Completion: unit latency on top of readiness, then publish to the
	// ring, the destination register and (for stores) the memory row.
	slot := a.ring[a.wpos*ns : a.wpos*ns+ns]
	a.wpos++
	if a.wpos == a.maxWin {
		a.wpos = 0
	}
	var dstRow []uint64
	if ev.HasDepDst {
		base := int(ev.DepDst) * ns
		dstRow = a.regReady[base : base+ns]
	}
	for j, r := range ready {
		done := r + 1
		slot[j] = done
		if dstRow != nil {
			dstRow[j] = done
		}
		if memRow != nil && !isLoad {
			memRow[j] = done
		}
		if done > a.maxDone[j] {
			a.maxDone[j] = done
		}
	}
	a.n++
}

// observe4 is Observe specialized for exactly four window
// configurations, with the per-window row unrolled into locals.
func (a *ILPAnalyzer) observe4(ev *trace.Event) {
	var r0, r1, r2, r3 uint64

	// Register dependencies.
	for i := uint8(0); i < ev.NDepSrc; i++ {
		base := int(ev.DepSrc[i]) * 4
		row := a.regReady[base : base+4 : base+4]
		r0 = max(r0, row[0])
		r1 = max(r1, row[1])
		r2 = max(r2, row[2])
		r3 = max(r3, row[3])
	}

	// Window constraint: the slot becomes free when the instruction W
	// positions back completes.
	ring, rpos := a.ring, a.rpos
	if a.n >= uint64(a.wins[0]) {
		r0 = max(r0, ring[rpos[0]*4])
	}
	if a.n >= uint64(a.wins[1]) {
		r1 = max(r1, ring[rpos[1]*4+1])
	}
	if a.n >= uint64(a.wins[2]) {
		r2 = max(r2, ring[rpos[2]*4+2])
	}
	if a.n >= uint64(a.wins[3]) {
		r3 = max(r3, ring[rpos[3]*4+3])
	}
	for j := 0; j < 4; j++ {
		rpos[j]++
		if rpos[j] == a.maxWin {
			rpos[j] = 0
		}
	}

	// Store-to-load dependencies through memory.
	var memRow []uint64
	isLoad := false
	if a.trackMemDeps && ev.MemSize > 0 {
		blk := ev.MemAddr >> 3
		if isLoad = ev.Class == isa.ClassLoad; isLoad {
			if off, ok := a.memRows.Get(blk); ok {
				memRow = a.memVals[off-1 : off+3 : off+3]
				r0 = max(r0, memRow[0])
				r1 = max(r1, memRow[1])
				r2 = max(r2, memRow[2])
				r3 = max(r3, memRow[3])
			}
		} else {
			ref := a.memRows.Ref(blk)
			if *ref == 0 {
				*ref = uint64(len(a.memVals)) + 1
				a.memVals = append(a.memVals, a.zeroRow...)
			}
			memRow = a.memVals[*ref-1 : *ref+3 : *ref+3]
		}
	}

	r0++
	r1++
	r2++
	r3++

	slot := a.ring[a.wpos*4 : a.wpos*4+4 : a.wpos*4+4]
	slot[0], slot[1], slot[2], slot[3] = r0, r1, r2, r3
	a.wpos++
	if a.wpos == a.maxWin {
		a.wpos = 0
	}
	if ev.HasDepDst {
		base := int(ev.DepDst) * 4
		row := a.regReady[base : base+4 : base+4]
		row[0], row[1], row[2], row[3] = r0, r1, r2, r3
	}
	if memRow != nil && !isLoad {
		memRow[0], memRow[1], memRow[2], memRow[3] = r0, r1, r2, r3
	}
	md := a.maxDone
	md[0] = max(md[0], r0)
	md[1] = max(md[1], r1)
	md[2] = max(md[2], r2)
	md[3] = max(md[3], r3)
	a.n++
}

// IPC returns the achieved instructions-per-cycle for the i-th configured
// window.
func (a *ILPAnalyzer) IPC(i int) float64 {
	if a.maxDone[i] == 0 {
		return 0
	}
	return float64(a.n) / float64(a.maxDone[i])
}

// Windows returns the configured window sizes.
func (a *ILPAnalyzer) Windows() []int {
	out := make([]int, len(a.wins))
	copy(out, a.wins)
	return out
}

// Fill writes characteristics 7-10 into v; it requires the analyzer to be
// configured with the four default windows.
func (a *ILPAnalyzer) Fill(v *Vector) {
	for i, w := range a.wins {
		switch w {
		case 32:
			v[CharILP32] = a.IPC(i)
		case 64:
			v[CharILP64] = a.IPC(i)
		case 128:
			v[CharILP128] = a.IPC(i)
		case 256:
			v[CharILP256] = a.IPC(i)
		}
	}
}
