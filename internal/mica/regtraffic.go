package mica

import (
	"math/bits"

	"mica/internal/isa"
	"mica/internal/trace"
)

// DepDistBuckets are the register dependency distance buckets of Table II
// (characteristics 13-19): P(dist = 1) and P(dist <= 2, 4, 8, 16, 32, 64).
var DepDistBuckets = []uint64{1, 2, 4, 8, 16, 32, 64}

// RegTrafficAnalyzer measures the register traffic characteristics of
// Table II (11-19), following Franklin & Sohi's register traffic analysis:
//
//   - the average number of register input operands per instruction,
//   - the average degree of use (reads per register instance), and
//   - the cumulative distribution of register dependency distances, where
//     the distance is the number of dynamic instructions between a
//     register write and a read of that instance.
//
// Hardwired zero registers are excluded: they carry no true dependencies.
type RegTrafficAnalyzer struct {
	// lastWrite[r] is the dynamic sequence number of the instruction
	// that produced the current instance of r, or noProducer.
	lastWrite [isa.NumRegs]uint64
	seq       uint64

	totalInsts   uint64
	totalSrcRegs uint64
	totalWrites  uint64
	totalReads   uint64

	// distCounts[b] counts distances in bucket b exactly: the buckets
	// are (2^(b-1), 2^b], so b = bits.Len64(dist-1) — one increment per
	// read, with the cumulative Table II view prefix-summed in
	// DepDistCDF.
	distCounts []uint64
	distTotal  uint64
}

const noProducer = ^uint64(0)

// NewRegTrafficAnalyzer returns a ready analyzer.
func NewRegTrafficAnalyzer() *RegTrafficAnalyzer {
	a := &RegTrafficAnalyzer{distCounts: make([]uint64, len(DepDistBuckets))}
	for i := range a.lastWrite {
		a.lastWrite[i] = noProducer
	}
	return a
}

// Reset returns the analyzer to its initial state, keeping its
// allocations.
func (a *RegTrafficAnalyzer) Reset() {
	for i := range a.lastWrite {
		a.lastWrite[i] = noProducer
	}
	a.seq = 0
	a.totalInsts, a.totalSrcRegs = 0, 0
	a.totalWrites, a.totalReads = 0, 0
	clear(a.distCounts)
	a.distTotal = 0
}

// Observe implements trace.Observer.
func (a *RegTrafficAnalyzer) Observe(ev *trace.Event) {
	a.totalInsts++
	a.totalSrcRegs += uint64(ev.NDepSrc)
	for i := uint8(0); i < ev.NDepSrc; i++ {
		r := ev.DepSrc[i]
		if w := a.lastWrite[r]; w != noProducer {
			a.totalReads++
			dist := a.seq - w
			a.distTotal++
			if b := bits.Len64(dist - 1); b < len(a.distCounts) {
				a.distCounts[b]++
			}
		}
	}
	if ev.HasDepDst {
		a.totalWrites++
		a.lastWrite[ev.DepDst] = a.seq
	}
	a.seq++
}

// AvgInputOperands returns the average number of register source operands
// per instruction.
func (a *RegTrafficAnalyzer) AvgInputOperands() float64 {
	if a.totalInsts == 0 {
		return 0
	}
	return float64(a.totalSrcRegs) / float64(a.totalInsts)
}

// AvgDegreeOfUse returns the average number of reads per register
// instance (register write).
func (a *RegTrafficAnalyzer) AvgDegreeOfUse() float64 {
	if a.totalWrites == 0 {
		return 0
	}
	return float64(a.totalReads) / float64(a.totalWrites)
}

// DepDistCDF returns P(dependency distance <= DepDistBuckets[i]) for each
// bucket. The first bucket is P(dist = 1) since distances are >= 1.
func (a *RegTrafficAnalyzer) DepDistCDF() []float64 {
	out := make([]float64, len(DepDistBuckets))
	if a.distTotal == 0 {
		return out
	}
	var cum uint64
	for i, c := range a.distCounts {
		cum += c
		out[i] = float64(cum) / float64(a.distTotal)
	}
	return out
}

// Fill writes characteristics 11-19 into v.
func (a *RegTrafficAnalyzer) Fill(v *Vector) {
	v[CharAvgInputOperands] = a.AvgInputOperands()
	v[CharAvgDegreeOfUse] = a.AvgDegreeOfUse()
	cdf := a.DepDistCDF()
	for i, p := range cdf {
		v[CharDepDistEq1+i] = p
	}
}
