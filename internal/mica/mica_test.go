package mica

import (
	"math"
	"testing"

	"mica/internal/isa"
	"mica/internal/trace"
)

// evStream is a tiny helper for feeding hand-built events to analyzers.
type evStream struct {
	seq uint64
	pc  uint64
}

func newStream() *evStream { return &evStream{pc: isa.CodeBase} }

func (s *evStream) next(op isa.Op) trace.Event {
	ev := trace.Event{Seq: s.seq, PC: s.pc, Op: op, Class: op.Class()}
	s.seq++
	s.pc += isa.InstBytes
	return ev
}

// alu builds an ALU event dst = f(srcs...).
func (s *evStream) alu(dst isa.Reg, srcs ...isa.Reg) trace.Event {
	ev := s.next(isa.OpAddQ)
	for i, r := range srcs {
		ev.Src[i] = r
	}
	ev.NSrc = uint8(len(srcs))
	ev.Dst, ev.HasDst = dst, true
	ev.DeriveDeps()
	return ev
}

func (s *evStream) load(dst isa.Reg, base isa.Reg, addr uint64) trace.Event {
	ev := s.next(isa.OpLdQ)
	ev.Src[0] = base
	ev.NSrc = 1
	ev.Dst, ev.HasDst = dst, true
	ev.MemAddr, ev.MemSize = addr, 8
	ev.DeriveDeps()
	return ev
}

func (s *evStream) store(val, base isa.Reg, addr uint64) trace.Event {
	ev := s.next(isa.OpStQ)
	ev.Src[0], ev.Src[1] = base, val
	ev.NSrc = 2
	ev.MemAddr, ev.MemSize = addr, 8
	ev.DeriveDeps()
	return ev
}

// branch builds a conditional branch event at a fixed PC (so per-address
// predictors see one static branch).
func (s *evStream) branchAt(pc uint64, taken bool) trace.Event {
	ev := trace.Event{Seq: s.seq, PC: pc, Op: isa.OpBne, Class: isa.ClassBranch,
		Conditional: true, Taken: taken}
	s.seq++
	return ev
}

func TestMixFractions(t *testing.T) {
	a := NewMixAnalyzer()
	s := newStream()
	feed := func(ev trace.Event) { a.Observe(&ev) }
	feed(s.alu(isa.IntReg(1), isa.IntReg(2)))
	feed(s.load(isa.IntReg(1), isa.IntReg(2), 0x100))
	feed(s.load(isa.IntReg(1), isa.IntReg(2), 0x108))
	feed(s.store(isa.IntReg(1), isa.IntReg(2), 0x110))
	if got := a.Fraction(isa.ClassLoad); got != 0.5 {
		t.Errorf("load fraction = %g, want 0.5", got)
	}
	if got := a.Fraction(isa.ClassStore); got != 0.25 {
		t.Errorf("store fraction = %g, want 0.25", got)
	}
	if got := a.Fraction(isa.ClassIntArith); got != 0.25 {
		t.Errorf("arith fraction = %g, want 0.25", got)
	}
	var v Vector
	a.Fill(&v)
	if v[CharPctLoads] != 0.5 || v[CharPctStores] != 0.25 {
		t.Error("Fill wrote wrong mix values")
	}
}

func TestMixEmpty(t *testing.T) {
	a := NewMixAnalyzer()
	if a.Fraction(isa.ClassLoad) != 0 {
		t.Error("empty analyzer fraction not 0")
	}
}

func TestILPSerialChain(t *testing.T) {
	// r1 = r1 + r1 repeated: fully serial, IPC -> 1 regardless of window.
	a := NewILPAnalyzer([]int{32, 256}, true)
	s := newStream()
	for i := 0; i < 1000; i++ {
		ev := s.alu(isa.IntReg(1), isa.IntReg(1))
		a.Observe(&ev)
	}
	for i := range a.Windows() {
		if got := a.IPC(i); math.Abs(got-1.0) > 0.01 {
			t.Errorf("window %d serial IPC = %g, want ~1", a.Windows()[i], got)
		}
	}
}

func TestILPIndependentLimitedByWindow(t *testing.T) {
	// Fully independent instructions rotating over many destination
	// registers: ILP is limited only by the window size W (W issue in
	// the first cycle, then one slot frees per retire -> IPC ~ W in the
	// idealized unit-latency model since every cycle all W slots clear).
	a := NewILPAnalyzer([]int{32, 64}, true)
	s := newStream()
	for i := 0; i < 64000; i++ {
		dst := isa.IntReg(i % 16)
		ev := s.alu(dst) // no sources: independent
		a.Observe(&ev)
	}
	ipc32, ipc64 := a.IPC(0), a.IPC(1)
	if ipc64 <= ipc32 {
		t.Errorf("independent stream: IPC(64)=%g not greater than IPC(32)=%g", ipc64, ipc32)
	}
	if math.Abs(ipc32-32) > 1 {
		t.Errorf("IPC(32) = %g, want ~32", ipc32)
	}
	if math.Abs(ipc64-64) > 2 {
		t.Errorf("IPC(64) = %g, want ~64", ipc64)
	}
}

func TestILPWindowMonotonicity(t *testing.T) {
	// Mixed dependency pattern: wider windows can never hurt.
	a := NewILPAnalyzer(nil, true)
	s := newStream()
	for i := 0; i < 20000; i++ {
		var ev trace.Event
		if i%7 == 0 {
			ev = s.alu(isa.IntReg(1), isa.IntReg(1)) // serial link
		} else {
			ev = s.alu(isa.IntReg(2+i%8), isa.IntReg(1))
		}
		a.Observe(&ev)
	}
	prev := 0.0
	for i, w := range a.Windows() {
		ipc := a.IPC(i)
		if ipc+1e-9 < prev {
			t.Errorf("IPC not monotone in window: w=%d ipc=%g < prev %g", w, ipc, prev)
		}
		prev = ipc
	}
}

func TestILPMemoryDependence(t *testing.T) {
	// store r1 -> A; load r2 <- A chain. With memory dependence
	// tracking the loads serialize on the stores; without it they
	// don't.
	build := func(track bool) float64 {
		a := NewILPAnalyzer([]int{64}, track)
		s := newStream()
		for i := 0; i < 5000; i++ {
			st := s.store(isa.IntReg(1), isa.RegZero, 0x1000)
			a.Observe(&st)
			ld := s.load(isa.IntReg(1), isa.RegZero, 0x1000)
			a.Observe(&ld)
		}
		return a.IPC(0)
	}
	with := build(true)
	without := build(false)
	if with >= without {
		t.Errorf("memory deps ignored: IPC with=%g, without=%g", with, without)
	}
	if math.Abs(with-1.0) > 0.05 {
		t.Errorf("fully memory-serialized IPC = %g, want ~1", with)
	}
}

func TestRegTrafficOperandsAndDegree(t *testing.T) {
	a := NewRegTrafficAnalyzer()
	s := newStream()
	// write r1; then read it 3 times.
	w := s.alu(isa.IntReg(1))
	a.Observe(&w)
	for i := 0; i < 3; i++ {
		r := s.alu(isa.IntReg(2+i), isa.IntReg(1))
		a.Observe(&r)
	}
	if got := a.AvgDegreeOfUse(); math.Abs(got-3.0/4.0) > 1e-12 {
		t.Errorf("degree of use = %g, want 0.75 (3 reads / 4 writes)", got)
	}
	if got := a.AvgInputOperands(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("avg input operands = %g, want 0.75", got)
	}
}

func TestRegTrafficDepDistance(t *testing.T) {
	a := NewRegTrafficAnalyzer()
	s := newStream()
	// Producer, then a consumer exactly 1 instruction later and another
	// 5 instructions later.
	p := s.alu(isa.IntReg(1))
	a.Observe(&p)
	c1 := s.alu(isa.IntReg(2), isa.IntReg(1)) // dist 1
	a.Observe(&c1)
	for i := 0; i < 3; i++ {
		f := s.alu(isa.IntReg(3))
		a.Observe(&f)
	}
	c2 := s.alu(isa.IntReg(4), isa.IntReg(1)) // dist 5
	a.Observe(&c2)
	cdf := a.DepDistCDF()
	// Two distances observed: 1 and 5.
	if cdf[0] != 0.5 { // = 1
		t.Errorf("P(dist=1) = %g, want 0.5", cdf[0])
	}
	if cdf[2] != 0.5 { // <= 4
		t.Errorf("P(dist<=4) = %g, want 0.5", cdf[2])
	}
	if cdf[3] != 1.0 { // <= 8
		t.Errorf("P(dist<=8) = %g, want 1", cdf[3])
	}
	if cdf[len(cdf)-1] != 1.0 {
		t.Errorf("P(dist<=64) = %g, want 1", cdf[len(cdf)-1])
	}
}

func TestRegTrafficIgnoresZeroRegs(t *testing.T) {
	a := NewRegTrafficAnalyzer()
	s := newStream()
	ev := s.alu(isa.RegZero, isa.RegZero)
	a.Observe(&ev)
	if a.AvgInputOperands() != 0 || a.AvgDegreeOfUse() != 0 {
		t.Error("zero register traffic was counted")
	}
}

func TestWorkingSetCounts(t *testing.T) {
	a := NewWorkingSetAnalyzer()
	s := newStream()
	// 4 loads in one 32B block; 1 load in a different page.
	for i := uint64(0); i < 4; i++ {
		ev := s.load(isa.IntReg(1), isa.RegZero, 0x1000+i*8)
		a.Observe(&ev)
	}
	far := s.load(isa.IntReg(1), isa.RegZero, 0x100000)
	a.Observe(&far)
	if got := a.DataBlocks(); got != 2 {
		t.Errorf("data blocks = %d, want 2", got)
	}
	if got := a.DataPages(); got != 2 {
		t.Errorf("data pages = %d, want 2", got)
	}
	// 5 sequential PCs: they fit in one 32B block (4B each)? 5*4=20 < 32
	// but may straddle depending on base; CodeBase is 32B aligned so
	// they occupy exactly 1 block and 1 page.
	if got := a.InstBlocks(); got != 1 {
		t.Errorf("inst blocks = %d, want 1", got)
	}
	if got := a.InstPages(); got != 1 {
		t.Errorf("inst pages = %d, want 1", got)
	}
}

func TestWorkingSetStraddle(t *testing.T) {
	a := NewWorkingSetAnalyzer()
	s := newStream()
	// 8-byte access at block-boundary-minus-4 touches two blocks.
	ev := s.load(isa.IntReg(1), isa.RegZero, 32-4)
	a.Observe(&ev)
	if got := a.DataBlocks(); got != 2 {
		t.Errorf("straddling access blocks = %d, want 2", got)
	}
}

func TestStridesSequentialLoads(t *testing.T) {
	a := NewStrideAnalyzer()
	pc := isa.CodeBase
	for i := uint64(0); i < 100; i++ {
		ev := trace.Event{PC: pc, Op: isa.OpLdQ, Class: isa.ClassLoad,
			MemAddr: 0x1000 + i*8, MemSize: 8}
		a.Observe(&ev)
	}
	ll := a.LocalLoadCDF()
	if ll[0] != 0 { // stride 8, never 0
		t.Errorf("P(local load stride=0) = %g, want 0", ll[0])
	}
	if ll[1] != 1 { // all strides are 8
		t.Errorf("P(local load stride<=8) = %g, want 1", ll[1])
	}
	gl := a.GlobalLoadCDF()
	if gl[1] != 1 {
		t.Errorf("P(global load stride<=8) = %g, want 1", gl[1])
	}
}

func TestStridesLocalVsGlobal(t *testing.T) {
	// Two static loads interleaved: one walks array A, the other array
	// B far away. Local strides are small; global strides alternate
	// between huge jumps.
	a := NewStrideAnalyzer()
	pcA, pcB := isa.CodeBase, isa.CodeBase+4
	baseA, baseB := uint64(0x10000), uint64(0x900000)
	for i := uint64(0); i < 200; i++ {
		evA := trace.Event{PC: pcA, Op: isa.OpLdQ, Class: isa.ClassLoad, MemAddr: baseA + i*8, MemSize: 8}
		a.Observe(&evA)
		evB := trace.Event{PC: pcB, Op: isa.OpLdQ, Class: isa.ClassLoad, MemAddr: baseB + i*8, MemSize: 8}
		a.Observe(&evB)
	}
	ll := a.LocalLoadCDF()
	if ll[1] != 1 {
		t.Errorf("local strides should all be 8, CDF le8 = %g", ll[1])
	}
	gl := a.GlobalLoadCDF()
	if gl[4] > 0.01 {
		t.Errorf("global strides should be huge, CDF le4096 = %g", gl[4])
	}
}

func TestStridesStoreZero(t *testing.T) {
	a := NewStrideAnalyzer()
	pc := isa.CodeBase
	for i := 0; i < 50; i++ {
		ev := trace.Event{PC: pc, Op: isa.OpStQ, Class: isa.ClassStore, MemAddr: 0x2000, MemSize: 8}
		a.Observe(&ev)
	}
	ls := a.LocalStoreCDF()
	if ls[0] != 1 {
		t.Errorf("P(local store stride=0) = %g, want 1", ls[0])
	}
	gs := a.GlobalStoreCDF()
	if gs[0] != 1 {
		t.Errorf("P(global store stride=0) = %g, want 1", gs[0])
	}
	// No loads at all: load CDFs are zero.
	if a.LocalLoadCDF()[4] != 0 {
		t.Error("load CDF nonzero without loads")
	}
}

func TestPPMAlwaysTaken(t *testing.T) {
	a := NewPPMAnalyzer(4)
	s := newStream()
	for i := 0; i < 1000; i++ {
		ev := s.branchAt(isa.CodeBase, true)
		a.Observe(&ev)
	}
	for v := PPMVariant(0); v < numPPMVariants; v++ {
		if acc := a.Accuracy(v); acc < 0.99 {
			t.Errorf("%s accuracy on always-taken = %g, want ~1", v, acc)
		}
	}
}

func TestPPMAlternatingPattern(t *testing.T) {
	// T,N,T,N...: trivially predictable from 1 bit of history once
	// warmed up.
	a := NewPPMAnalyzer(4)
	s := newStream()
	for i := 0; i < 2000; i++ {
		ev := s.branchAt(isa.CodeBase, i%2 == 0)
		a.Observe(&ev)
	}
	if acc := a.Accuracy(PPMGAg); acc < 0.95 {
		t.Errorf("GAg accuracy on alternating = %g, want > 0.95", acc)
	}
	if acc := a.Accuracy(PPMPAs); acc < 0.95 {
		t.Errorf("PAs accuracy on alternating = %g, want > 0.95", acc)
	}
}

func TestPPMRandomNearHalf(t *testing.T) {
	a := NewPPMAnalyzer(4)
	s := newStream()
	// Deterministic pseudo-random outcomes.
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 20000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		ev := s.branchAt(isa.CodeBase, x&1 == 1)
		a.Observe(&ev)
	}
	for v := PPMVariant(0); v < numPPMVariants; v++ {
		acc := a.Accuracy(v)
		if acc < 0.4 || acc > 0.62 {
			t.Errorf("%s accuracy on random = %g, want ~0.5", v, acc)
		}
	}
}

func TestPPMPerAddressBeatsGlobalOnInterleaved(t *testing.T) {
	// Two branches with private alternating phases, interleaved with a
	// noise branch: per-address history isolates each branch's pattern.
	a := NewPPMAnalyzer(6)
	s := newStream()
	x := uint64(12345)
	for i := 0; i < 4000; i++ {
		b1 := s.branchAt(isa.CodeBase, i%2 == 0)
		a.Observe(&b1)
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		noise := s.branchAt(isa.CodeBase+8, x&1 == 1)
		a.Observe(&noise)
		b2 := s.branchAt(isa.CodeBase+4, i%3 == 0)
		a.Observe(&b2)
	}
	pas, gag := a.Accuracy(PPMPAs), a.Accuracy(PPMGAg)
	if pas <= gag {
		t.Errorf("PAs (%g) should beat GAg (%g) on interleaved private patterns", pas, gag)
	}
}

func TestPPMIgnoresUnconditional(t *testing.T) {
	a := NewPPMAnalyzer(4)
	ev := trace.Event{PC: isa.CodeBase, Op: isa.OpBr, Class: isa.ClassBranch, Taken: true}
	a.Observe(&ev)
	if a.Branches() != 0 {
		t.Error("unconditional branch was scored")
	}
}

func TestProfilerFullVector(t *testing.T) {
	p := NewProfiler(DefaultOptions())
	s := newStream()
	for i := 0; i < 500; i++ {
		ld := s.load(isa.IntReg(1), isa.IntReg(2), 0x1000+uint64(i%64)*8)
		p.Observe(&ld)
		add := s.alu(isa.IntReg(3), isa.IntReg(1), isa.IntReg(3))
		p.Observe(&add)
		st := s.store(isa.IntReg(3), isa.IntReg(2), 0x8000+uint64(i%64)*8)
		p.Observe(&st)
		br := s.branchAt(isa.CodeBase, i%4 != 0)
		p.Observe(&br)
	}
	v := p.Vector()
	if math.Abs(v[CharPctLoads]-0.25) > 1e-9 {
		t.Errorf("pct loads = %g, want 0.25", v[CharPctLoads])
	}
	if v[CharILP256] < v[CharILP32] {
		t.Error("ILP decreases with window")
	}
	if v[CharDWSBlocks] == 0 || v[CharIWSBlocks] == 0 {
		t.Error("working sets empty")
	}
	if v[CharPPMGAg] == 0 {
		t.Error("PPM accuracy zero")
	}
}

func TestProfilerSubsetSkipsAnalyzers(t *testing.T) {
	subset := make([]bool, NumChars)
	subset[CharPctLoads] = true
	opts := DefaultOptions()
	opts.Subset = subset
	p := NewProfiler(opts)
	if p.ilp != nil || p.ppm != nil || p.ws != nil || p.strides != nil || p.reg != nil {
		t.Error("subset profiler instantiated unneeded analyzers")
	}
	if p.mix == nil {
		t.Fatal("subset profiler missing the mix analyzer")
	}
	s := newStream()
	ld := s.load(isa.IntReg(1), isa.IntReg(2), 0x100)
	p.Observe(&ld)
	v := p.Vector()
	if v[CharPctLoads] != 1.0 {
		t.Errorf("pct loads = %g, want 1", v[CharPctLoads])
	}
	if v[CharILP32] != 0 {
		t.Error("disabled analyzer wrote a value")
	}
}

func TestCharMetadata(t *testing.T) {
	if len(CharNames()) != NumChars {
		t.Fatal("CharNames length mismatch")
	}
	seen := map[string]bool{}
	for i := 0; i < NumChars; i++ {
		n := CharName(i)
		if n == "" || seen[n] {
			t.Errorf("characteristic %d has empty/duplicate name %q", i, n)
		}
		seen[n] = true
		if CharCategory(i) == "" {
			t.Errorf("characteristic %d (%s) has no category", i, n)
		}
	}
	if CharName(CharPPMPAs) != "ppm_pas" {
		t.Error("last characteristic misnamed")
	}
	if CharCategory(CharDWSBlocks) != "working set size" {
		t.Errorf("category of dws_32b_blocks = %q", CharCategory(CharDWSBlocks))
	}
	if CharName(-1) == "" || CharCategory(99) != "unknown" {
		t.Error("out-of-range metadata handling wrong")
	}
}
