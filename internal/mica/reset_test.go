package mica

import (
	"testing"
	"testing/quick"

	"mica/internal/isa"
	"mica/internal/trace"
)

// feed delivers a prebuilt event stream to a profiler.
func feed(p *Profiler, events []trace.Event) {
	for i := range events {
		p.Observe(&events[i])
	}
}

// TestPropertyResetEquivalentToFresh is the Reset lifecycle contract:
// profiling stream A, resetting, then profiling stream B must produce a
// vector bit-identical to a freshly constructed profiler measuring
// stream B. This is the property that makes pooled phase analysis
// (one profiler reused across all intervals of a trace, and across
// benchmarks in registry-wide pipelines) exact rather than approximate.
func TestPropertyResetEquivalentToFresh(t *testing.T) {
	f := func(seedA, seedB uint64) bool {
		warm := randomEventStream(seedA, 2500)
		probe := randomEventStream(seedB, 2500)

		pooled := NewProfiler(DefaultOptions())
		feed(pooled, warm)
		pooled.Reset()
		feed(pooled, probe)

		fresh := NewProfiler(DefaultOptions())
		feed(fresh, probe)

		if pooled.Vector() != fresh.Vector() {
			t.Logf("seedA=%d seedB=%d: pooled vector diverges from fresh", seedA, seedB)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestResetRepeatedReuse pins multi-round reuse: N profile/reset rounds
// over distinct streams each match a fresh profiler on that stream, so
// no state leaks accumulate across rounds (the table-capacity growth a
// pooled profiler keeps must never change results).
func TestResetRepeatedReuse(t *testing.T) {
	pooled := NewProfiler(DefaultOptions())
	for round := uint64(0); round < 6; round++ {
		stream := randomEventStream(1000+round, 3000)
		pooled.Reset()
		feed(pooled, stream)

		fresh := NewProfiler(DefaultOptions())
		feed(fresh, stream)
		if pooled.Vector() != fresh.Vector() {
			t.Fatalf("round %d: pooled vector diverges from fresh", round)
		}
	}
}

// TestResetWithSubset verifies Reset composes with Options.Subset: the
// skipped analyzers stay skipped and the measured ones still match a
// fresh subset profiler after reuse.
func TestResetWithSubset(t *testing.T) {
	subset := make([]bool, NumChars)
	for _, c := range []int{CharPctLoads, CharILP128, CharDWSPages, CharPPMPAs, CharLocalLoadStride0} {
		subset[c] = true
	}
	opts := DefaultOptions()
	opts.Subset = subset

	pooled := NewProfiler(opts)
	feed(pooled, randomEventStream(7, 2000))
	pooled.Reset()
	probe := randomEventStream(8, 2000)
	feed(pooled, probe)

	fresh := NewProfiler(opts)
	feed(fresh, probe)
	if pooled.Vector() != fresh.Vector() {
		t.Fatal("subset profiler diverges from fresh after Reset")
	}
}

// TestZeroOptionsMatchesDefault pins the inverted NoMemDeps field: the
// zero Options value must measure exactly what DefaultOptions measures,
// and NoMemDeps must actually change the ILP result on a stream with
// store-to-load dependencies.
func TestZeroOptionsMatchesDefault(t *testing.T) {
	stream := randomEventStream(42, 4000)
	zero := NewProfiler(Options{})
	def := NewProfiler(DefaultOptions())
	feed(zero, stream)
	feed(def, stream)
	if zero.Vector() != def.Vector() {
		t.Error("zero Options diverges from DefaultOptions")
	}

	// A store/load ping-pong on one address: the store-to-load chain is
	// the only dependence, so disabling tracking must raise the ILP.
	deps := make([]trace.Event, 0, 2000)
	for i := 0; i < 1000; i++ {
		st := trace.Event{Op: isa.OpStQ, Class: isa.ClassStore, MemAddr: 0x2000, MemSize: 8}
		st.Src[0], st.Src[1], st.NSrc = isa.IntReg(1), isa.IntReg(2), 2
		st.DeriveDeps()
		ld := trace.Event{Op: isa.OpLdQ, Class: isa.ClassLoad, MemAddr: 0x2000, MemSize: 8}
		ld.Src[0], ld.NSrc = isa.IntReg(3), 1
		ld.Dst, ld.HasDst = isa.IntReg(4+i%8), true
		ld.DeriveDeps()
		deps = append(deps, st, ld)
	}
	opts := DefaultOptions()
	opts.NoMemDeps = true
	nodeps, tracked := NewProfiler(opts), NewProfiler(DefaultOptions())
	feed(nodeps, deps)
	feed(tracked, deps)
	if nodeps.Vector()[CharILP256] <= tracked.Vector()[CharILP256] {
		t.Error("NoMemDeps had no effect on a stream with store-to-load dependencies")
	}
}
