package mica

import (
	"math"
	"testing"
	"testing/quick"

	"mica/internal/isa"
	"mica/internal/trace"
)

// randomEventStream builds a deterministic pseudo-random instruction
// stream from a seed, covering ALU ops, loads, stores and branches.
func randomEventStream(seed uint64, n int) []trace.Event {
	out := make([]trace.Event, 0, n)
	x := seed | 1
	next := func(mod int) int {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return int(x % uint64(mod))
	}
	pc := isa.CodeBase
	for i := 0; i < n; i++ {
		ev := trace.Event{Seq: uint64(i), PC: pc}
		switch next(10) {
		case 0, 1:
			ev.Op, ev.Class = isa.OpLdQ, isa.ClassLoad
			ev.Src[0], ev.NSrc = isa.IntReg(next(30)), 1
			ev.Dst, ev.HasDst = isa.IntReg(next(30)), true
			ev.MemAddr, ev.MemSize = uint64(0x10000+next(1<<18)), 8
		case 2:
			ev.Op, ev.Class = isa.OpStQ, isa.ClassStore
			ev.Src[0], ev.Src[1], ev.NSrc = isa.IntReg(next(30)), isa.IntReg(next(30)), 2
			ev.MemAddr, ev.MemSize = uint64(0x10000+next(1<<18)), 8
		case 3:
			ev.Op, ev.Class = isa.OpBne, isa.ClassBranch
			ev.Src[0], ev.NSrc = isa.IntReg(next(30)), 1
			ev.Conditional = true
			ev.Taken = next(2) == 1
		default:
			ev.Op, ev.Class = isa.OpAddQ, isa.ClassIntArith
			ev.Src[0], ev.Src[1], ev.NSrc = isa.IntReg(next(30)), isa.IntReg(next(30)), 2
			ev.Dst, ev.HasDst = isa.IntReg(next(30)), true
		}
		ev.DeriveDeps()
		out = append(out, ev)
		pc += isa.InstBytes
	}
	return out
}

// TestPropertyVectorBounds checks invariants that must hold on the
// characteristic vector of ANY instruction stream: probabilities in
// [0,1], mix summing to 1, monotone CDFs, ILP monotone in window size.
func TestPropertyVectorBounds(t *testing.T) {
	f := func(seed uint64) bool {
		events := randomEventStream(seed, 3000)
		p := NewProfiler(DefaultOptions())
		for i := range events {
			p.Observe(&events[i])
		}
		v := p.Vector()

		// Mix fractions sum to 1.
		mix := v[CharPctLoads] + v[CharPctStores] + v[CharPctBranches] +
			v[CharPctArith] + v[CharPctIntMul] + v[CharPctFP]
		if math.Abs(mix-1) > 1e-9 {
			t.Logf("mix sum %g", mix)
			return false
		}
		// All probability-valued characteristics in [0,1].
		probRanges := [][2]int{
			{CharPctLoads, CharPctFP},
			{CharDepDistEq1, CharDepDistLE64},
			{CharLocalLoadStride0, CharGlobalStoreStrideLE4096},
			{CharPPMGAg, CharPPMPAs},
		}
		for _, r := range probRanges {
			for c := r[0]; c <= r[1]; c++ {
				if v[c] < 0 || v[c] > 1+1e-12 {
					t.Logf("%s = %g out of [0,1]", CharName(c), v[c])
					return false
				}
			}
		}
		// Dependency-distance CDF is nondecreasing.
		for c := CharDepDistEq1; c < CharDepDistLE64; c++ {
			if v[c+1]+1e-12 < v[c] {
				t.Logf("dep dist CDF decreasing at %s", CharName(c))
				return false
			}
		}
		// Stride CDFs are nondecreasing within each group of 5.
		for _, base := range []int{CharLocalLoadStride0, CharGlobalLoadStride0,
			CharLocalStoreStride0, CharGlobalStoreStride0} {
			for k := 0; k < 4; k++ {
				if v[base+k+1]+1e-12 < v[base+k] {
					t.Logf("stride CDF decreasing at %s", CharName(base+k))
					return false
				}
			}
		}
		// ILP monotone in window size, and at least 1 instruction/cycle
		// cannot be exceeded by a serial chain bound of n.
		if v[CharILP32] > v[CharILP64]+1e-9 || v[CharILP64] > v[CharILP128]+1e-9 ||
			v[CharILP128] > v[CharILP256]+1e-9 {
			t.Log("ILP not monotone")
			return false
		}
		if v[CharILP32] <= 0 {
			t.Log("ILP zero on nonempty stream")
			return false
		}
		// Working sets bounded by access counts.
		if v[CharIWSBlocks] > 3000 || v[CharDWSBlocks] > 2*3000 {
			t.Log("working sets exceed stream length")
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyWindowNeverHurts: for random streams, a larger ILP window
// never reduces achievable IPC.
func TestPropertyWindowNeverHurts(t *testing.T) {
	f := func(seed uint64) bool {
		events := randomEventStream(seed, 2000)
		a := NewILPAnalyzer([]int{16, 48, 96}, true)
		for i := range events {
			a.Observe(&events[i])
		}
		return a.IPC(0) <= a.IPC(1)+1e-9 && a.IPC(1) <= a.IPC(2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPPMAccuracyBounds: accuracies are always in [0,1] and all
// four variants see the same branch count.
func TestPropertyPPMAccuracyBounds(t *testing.T) {
	f := func(seed uint64) bool {
		events := randomEventStream(seed, 2000)
		a := NewPPMAnalyzer(6)
		for i := range events {
			a.Observe(&events[i])
		}
		for v := PPMVariant(0); v < numPPMVariants; v++ {
			acc := a.Accuracy(v)
			if acc < 0 || acc > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyProfilerOrderIndependentAnalyzers: feeding the same stream
// twice into two fresh profilers gives identical vectors (analyzers hold
// no global state).
func TestPropertyProfilerDeterministic(t *testing.T) {
	f := func(seed uint64) bool {
		events := randomEventStream(seed, 1500)
		v := [2]Vector{}
		for trial := 0; trial < 2; trial++ {
			p := NewProfiler(DefaultOptions())
			for i := range events {
				p.Observe(&events[i])
			}
			v[trial] = p.Vector()
		}
		return v[0] == v[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestPropertySubsetVectorIsProjection: profiling with a subset yields
// exactly the full vector's values on selected characteristics within
// the same analyzer group.
func TestPropertySubsetVectorIsProjection(t *testing.T) {
	events := randomEventStream(99, 4000)
	full := NewProfiler(DefaultOptions())
	for i := range events {
		full.Observe(&events[i])
	}
	fv := full.Vector()

	subset := make([]bool, NumChars)
	for _, c := range []int{CharPctLoads, CharILP256, CharDWSPages, CharPPMGAs} {
		subset[c] = true
	}
	opts := DefaultOptions()
	opts.Subset = subset
	part := NewProfiler(opts)
	for i := range events {
		part.Observe(&events[i])
	}
	pv := part.Vector()
	for _, c := range []int{CharPctLoads, CharILP256, CharDWSPages, CharPPMGAs} {
		if math.Abs(pv[c]-fv[c]) > 1e-12 {
			t.Errorf("%s: subset %g vs full %g", CharName(c), pv[c], fv[c])
		}
	}
}
