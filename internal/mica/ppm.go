package mica

import (
	"fmt"

	"mica/internal/trace"
)

// PPMVariant selects one of the four Prediction-by-Partial-Matching
// branch predictability metrics of Table II (characteristics 44-47),
// following Chen et al.'s taxonomy: the first letter selects the history
// (Global or Per-address), the second whether the prediction table is
// shared by all branches ('g') or separate per branch ('s').
type PPMVariant uint8

// The four PPM variants used in the paper.
const (
	PPMGAg PPMVariant = iota // global history, shared table
	PPMPAg                   // per-address history, shared table
	PPMGAs                   // global history, per-branch tables
	PPMPAs                   // per-address history, per-branch tables
	numPPMVariants
)

// NumPPMVariants is the number of PPM predictor variants.
const NumPPMVariants = int(numPPMVariants)

// String returns the conventional predictor name.
func (v PPMVariant) String() string {
	switch v {
	case PPMGAg:
		return "GAg"
	case PPMPAg:
		return "PAg"
	case PPMGAs:
		return "GAs"
	case PPMPAs:
		return "PAs"
	default:
		return fmt.Sprintf("ppm(%d)", uint8(v))
	}
}

// DefaultPPMOrder is the default maximum PPM context order (history
// length in bits). The PPM predictor is to be seen as a theoretical upper
// bound on branch predictability, not a hardware design; order 8 is deep
// enough to capture loop and correlation patterns while remaining cheap
// to measure. The ablation bench sweeps this parameter.
const DefaultPPMOrder = 8

type ppmKey struct {
	order uint8
	pc    uint64 // 0 for shared ('g') tables
	hist  uint64
}

// ppmPredictor is one PPM predictor instance.
type ppmPredictor struct {
	variant  PPMVariant
	maxOrder int

	globalHist uint64
	localHist  map[uint64]uint64 // pc -> history

	table map[ppmKey]*[2]uint32

	correct uint64
	total   uint64

	// scratch buffer of per-order count entries, reused across branches.
	chain []*[2]uint32
}

func newPPMPredictor(variant PPMVariant, maxOrder int) *ppmPredictor {
	if maxOrder < 0 || maxOrder > 32 {
		panic("mica: PPM order out of range")
	}
	return &ppmPredictor{
		variant:   variant,
		maxOrder:  maxOrder,
		localHist: make(map[uint64]uint64),
		table:     make(map[ppmKey]*[2]uint32),
		chain:     make([]*[2]uint32, maxOrder+1),
	}
}

// observe predicts the branch at pc, scores the prediction against taken,
// and updates the model.
func (p *ppmPredictor) observe(pc uint64, taken bool) {
	var hist uint64
	perAddr := p.variant == PPMPAg || p.variant == PPMPAs
	if perAddr {
		hist = p.localHist[pc]
	} else {
		hist = p.globalHist
	}
	var tablePC uint64
	if p.variant == PPMGAs || p.variant == PPMPAs {
		tablePC = pc
	}

	// Walk orders from longest to shortest; remember each order's count
	// cell (allocating on first touch) and predict from the longest
	// context that has been seen before.
	predicted := true // static default: predict taken
	decided := false
	for k := p.maxOrder; k >= 0; k-- {
		key := ppmKey{order: uint8(k), pc: tablePC, hist: hist & (1<<uint(k) - 1)}
		cell := p.table[key]
		if cell == nil {
			cell = new([2]uint32)
			p.table[key] = cell
		}
		p.chain[k] = cell
		if !decided && cell[0]+cell[1] > 0 {
			predicted = cell[1] >= cell[0]
			decided = true
		}
	}

	p.total++
	if predicted == taken {
		p.correct++
	}
	outcome := 0
	if taken {
		outcome = 1
	}
	for k := 0; k <= p.maxOrder; k++ {
		p.chain[k][outcome]++
	}

	// Shift the outcome into the history.
	bit := uint64(0)
	if taken {
		bit = 1
	}
	if perAddr {
		p.localHist[pc] = hist<<1 | bit
	} else {
		p.globalHist = hist<<1 | bit
	}
}

// accuracy returns the fraction of correctly predicted branches.
func (p *ppmPredictor) accuracy() float64 {
	if p.total == 0 {
		return 0
	}
	return float64(p.correct) / float64(p.total)
}

// PPMAnalyzer measures branch predictability with a configurable set of
// PPM variants. Only conditional branches are scored; unconditional
// transfers are perfectly predictable and excluded, as in the paper's
// methodology.
type PPMAnalyzer struct {
	preds  [NumPPMVariants]*ppmPredictor
	active []*ppmPredictor
}

// NewPPMAnalyzer returns an analyzer with all four variants at the given
// maximum order (use DefaultPPMOrder).
func NewPPMAnalyzer(maxOrder int) *PPMAnalyzer {
	return NewPPMAnalyzerVariants(maxOrder, nil)
}

// NewPPMAnalyzerVariants measures only the listed variants (nil means all
// four). Measuring fewer variants is proportionally cheaper — the
// per-characteristic saving the paper's key-subset methodology banks on.
func NewPPMAnalyzerVariants(maxOrder int, variants []PPMVariant) *PPMAnalyzer {
	if variants == nil {
		variants = []PPMVariant{PPMGAg, PPMPAg, PPMGAs, PPMPAs}
	}
	a := &PPMAnalyzer{}
	for _, v := range variants {
		if a.preds[v] == nil {
			a.preds[v] = newPPMPredictor(v, maxOrder)
			a.active = append(a.active, a.preds[v])
		}
	}
	return a
}

// Observe implements trace.Observer.
func (a *PPMAnalyzer) Observe(ev *trace.Event) {
	if !ev.Conditional {
		return
	}
	for _, p := range a.active {
		p.observe(ev.PC, ev.Taken)
	}
}

// Accuracy returns the prediction accuracy of a variant (0 when the
// variant was not configured).
func (a *PPMAnalyzer) Accuracy(v PPMVariant) float64 {
	if a.preds[v] == nil {
		return 0
	}
	return a.preds[v].accuracy()
}

// Branches returns the number of conditional branches scored.
func (a *PPMAnalyzer) Branches() uint64 {
	if len(a.active) == 0 {
		return 0
	}
	return a.active[0].total
}

// Fill writes characteristics 44-47 into v.
func (a *PPMAnalyzer) Fill(v *Vector) {
	v[CharPPMGAg] = a.Accuracy(PPMGAg)
	v[CharPPMPAg] = a.Accuracy(PPMPAg)
	v[CharPPMGAs] = a.Accuracy(PPMGAs)
	v[CharPPMPAs] = a.Accuracy(PPMPAs)
}
