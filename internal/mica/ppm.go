package mica

import (
	"fmt"

	"mica/internal/flathash"
	"mica/internal/trace"
)

// PPMVariant selects one of the four Prediction-by-Partial-Matching
// branch predictability metrics of Table II (characteristics 44-47),
// following Chen et al.'s taxonomy: the first letter selects the history
// (Global or Per-address), the second whether the prediction table is
// shared by all branches ('g') or separate per branch ('s').
type PPMVariant uint8

// The four PPM variants used in the paper.
const (
	PPMGAg PPMVariant = iota // global history, shared table
	PPMPAg                   // per-address history, shared table
	PPMGAs                   // global history, per-branch tables
	PPMPAs                   // per-address history, per-branch tables
	numPPMVariants
)

// NumPPMVariants is the number of PPM predictor variants.
const NumPPMVariants = int(numPPMVariants)

// String returns the conventional predictor name.
func (v PPMVariant) String() string {
	switch v {
	case PPMGAg:
		return "GAg"
	case PPMPAg:
		return "PAg"
	case PPMGAs:
		return "GAs"
	case PPMPAs:
		return "PAs"
	default:
		return fmt.Sprintf("ppm(%d)", uint8(v))
	}
}

// DefaultPPMOrder is the default maximum PPM context order (history
// length in bits). The PPM predictor is to be seen as a theoretical upper
// bound on branch predictability, not a hardware design; order 8 is deep
// enough to capture loop and correlation patterns while remaining cheap
// to measure. The ablation bench sweeps this parameter.
const DefaultPPMOrder = 8

// ppmPredictor is one PPM predictor instance.
//
// The model state is one flat open-addressed table per context order,
// keyed by (pc << 32) | masked history — pc is 0 for shared ('g')
// variants and the history mask is at most 32 bits, so the pair packs
// into one uint64 key. The two direction counters of a context live
// inline in the table value ([2]uint32 packed into a uint64), so scoring
// a branch touches maxOrder+1 flat slots with no pointer chasing and no
// allocation in steady state.
type ppmPredictor struct {
	variant  PPMVariant
	maxOrder int

	globalHist uint64
	localHist  *flathash.U64Map // pc -> history (PAg/PAs)

	// tables[k] maps an order-k context to its packed counters:
	// not-taken count in the low 32 bits, taken count in the high 32.
	tables []*flathash.U64Map

	correct uint64
	total   uint64

	// ctxCache is a direct-mapped cache of recently resolved slot
	// chains, keyed by branch PC. A hit requires the same PC, the same
	// maximum-order masked history (every order's table key is a
	// function of it) and an unchanged table growth generation — under
	// those conditions the cached pointers are exactly what the probes
	// would return, so steady-state biased branches skip all maxOrder+1
	// hash probes. genSum is monotonically nondecreasing, so equality
	// means no table grew.
	ctxCache  []ppmCtxEntry
	ctxChains []*uint64 // arena backing the cache entries' chains
	maxMask   uint64
	// curGen caches genSum(): tables only grow inside the refill loop,
	// so the sum is refreshed there and the per-branch hit check is one
	// compare instead of maxOrder+1 pointer loads.
	curGen uint64
}

// ppmCtxBits sizes the context cache (1<<ppmCtxBits entries).
const ppmCtxBits = 8

type ppmCtxEntry struct {
	pc     uint64
	hist   uint64 // masked to maxMask
	genSum uint64
	valid  bool
	chain  []*uint64
}

func newPPMPredictor(variant PPMVariant, maxOrder int) *ppmPredictor {
	if maxOrder < 0 || maxOrder > 32 {
		panic("mica: PPM order out of range")
	}
	p := &ppmPredictor{
		variant:   variant,
		maxOrder:  maxOrder,
		localHist: flathash.NewU64Map(0),
		tables:    make([]*flathash.U64Map, maxOrder+1),
	}
	for k := range p.tables {
		// An order-k table holds at most 2^k contexts per branch PC;
		// seeding capacity with that (clamped) skips the first few
		// rehash doublings of every trace.
		hint := 1 << k
		if hint > 4096 {
			hint = 4096
		}
		p.tables[k] = flathash.NewU64Map(hint)
	}
	p.maxMask = 1<<uint(maxOrder) - 1
	p.ctxCache = make([]ppmCtxEntry, 1<<ppmCtxBits)
	p.ctxChains = make([]*uint64, (maxOrder+1)<<ppmCtxBits)
	for i := range p.ctxCache {
		p.ctxCache[i].chain = p.ctxChains[i*(maxOrder+1) : (i+1)*(maxOrder+1)]
	}
	return p
}

// reset returns the predictor to its initial state. Order tables and
// the local history are cleared in place (keeping their grown
// capacity), the context cache is invalidated wholesale, and curGen is
// re-derived from the post-clear generations so the cache hit check
// stays sound.
func (p *ppmPredictor) reset() {
	p.globalHist = 0
	p.localHist.Clear()
	for _, t := range p.tables {
		t.Clear()
	}
	p.correct, p.total = 0, 0
	for i := range p.ctxCache {
		p.ctxCache[i].valid = false
	}
	p.curGen = p.genSum()
}

// genSum is the combined growth generation of all order tables.
func (p *ppmPredictor) genSum() uint64 {
	var s uint64
	for _, t := range p.tables {
		s += t.Gen()
	}
	return s
}

// observe predicts the branch at pc, scores the prediction against taken,
// and updates the model.
func (p *ppmPredictor) observe(pc uint64, taken bool) {
	if pc >= 1<<32 {
		// The packed (pc, history) table key reserves 32 bits for the
		// PC; the VM's code segment (CodeBase + 4*index) cannot reach
		// this for any representable program.
		panic("mica: PPM branch PC exceeds 32 bits")
	}
	var hist uint64
	var histSlot *uint64
	perAddr := p.variant == PPMPAg || p.variant == PPMPAs
	if perAddr {
		histSlot = p.localHist.Ref(pc)
		hist = *histSlot
	} else {
		hist = p.globalHist
	}
	var pcBits uint64
	if p.variant == PPMGAs || p.variant == PPMPAs {
		pcBits = pc << 32
	}

	// Resolve each order's counter slot: from the context cache when
	// this branch repeats its masked history and no table has grown, or
	// by walking the order tables (inserting zero cells on first touch)
	// and refreshing the cache.
	mh := hist & p.maxMask
	e := &p.ctxCache[pc&(1<<ppmCtxBits-1)]
	chain := e.chain
	if !e.valid || e.pc != pc || e.hist != mh || e.genSum != p.curGen {
		for k := p.maxOrder; k >= 0; k-- {
			chain[k] = p.tables[k].Ref(pcBits | mh&(1<<uint(k)-1))
		}
		// genSum is taken after the probes: any growth they caused is
		// included, and the pointers are valid as of now. Refs happen
		// only here, so curGen stays correct between refills.
		p.curGen = p.genSum()
		e.pc, e.hist, e.genSum, e.valid = pc, mh, p.curGen, true
	}

	// Predict from the longest context that has been seen before.
	predicted := true // static default: predict taken
	for k := p.maxOrder; k >= 0; k-- {
		if c := *chain[k]; c != 0 {
			// taken count (high half) >= not-taken count (low half)
			predicted = uint32(c>>32) >= uint32(c)
			break
		}
	}

	p.total++
	if predicted == taken {
		p.correct++
	}
	// The packed halves saturate instead of wrapping so a pathological
	// 2^32-repetition context cannot carry into its neighbor count.
	if taken {
		for _, slot := range chain {
			if *slot < 0xFFFFFFFF<<32 {
				*slot += 1 << 32
			}
		}
	} else {
		for _, slot := range chain {
			if uint32(*slot) != 0xFFFFFFFF {
				*slot++
			}
		}
	}

	// Shift the outcome into the history.
	bit := uint64(0)
	if taken {
		bit = 1
	}
	if perAddr {
		*histSlot = hist<<1 | bit
	} else {
		p.globalHist = hist<<1 | bit
	}
}

// accuracy returns the fraction of correctly predicted branches.
func (p *ppmPredictor) accuracy() float64 {
	if p.total == 0 {
		return 0
	}
	return float64(p.correct) / float64(p.total)
}

// PPMAnalyzer measures branch predictability with a configurable set of
// PPM variants. Only conditional branches are scored; unconditional
// transfers are perfectly predictable and excluded, as in the paper's
// methodology.
type PPMAnalyzer struct {
	preds  [NumPPMVariants]*ppmPredictor
	active []*ppmPredictor
}

// NewPPMAnalyzer returns an analyzer with all four variants at the given
// maximum order (use DefaultPPMOrder).
func NewPPMAnalyzer(maxOrder int) *PPMAnalyzer {
	return NewPPMAnalyzerVariants(maxOrder, nil)
}

// NewPPMAnalyzerVariants measures only the listed variants (nil means all
// four). Measuring fewer variants is proportionally cheaper — the
// per-characteristic saving the paper's key-subset methodology banks on.
func NewPPMAnalyzerVariants(maxOrder int, variants []PPMVariant) *PPMAnalyzer {
	if variants == nil {
		variants = []PPMVariant{PPMGAg, PPMPAg, PPMGAs, PPMPAs}
	}
	a := &PPMAnalyzer{}
	for _, v := range variants {
		if a.preds[v] == nil {
			a.preds[v] = newPPMPredictor(v, maxOrder)
			a.active = append(a.active, a.preds[v])
		}
	}
	return a
}

// Reset returns every configured predictor to its initial state,
// keeping the grown table capacity.
func (a *PPMAnalyzer) Reset() {
	for _, p := range a.active {
		p.reset()
	}
}

// Observe implements trace.Observer.
func (a *PPMAnalyzer) Observe(ev *trace.Event) {
	if !ev.Conditional {
		return
	}
	for _, p := range a.active {
		p.observe(ev.PC, ev.Taken)
	}
}

// Accuracy returns the prediction accuracy of a variant (0 when the
// variant was not configured).
func (a *PPMAnalyzer) Accuracy(v PPMVariant) float64 {
	if a.preds[v] == nil {
		return 0
	}
	return a.preds[v].accuracy()
}

// Branches returns the number of conditional branches scored.
func (a *PPMAnalyzer) Branches() uint64 {
	if len(a.active) == 0 {
		return 0
	}
	return a.active[0].total
}

// Fill writes characteristics 44-47 into v.
func (a *PPMAnalyzer) Fill(v *Vector) {
	v[CharPPMGAg] = a.Accuracy(PPMGAg)
	v[CharPPMPAg] = a.Accuracy(PPMPAg)
	v[CharPPMGAs] = a.Accuracy(PPMGAs)
	v[CharPPMPAs] = a.Accuracy(PPMPAs)
}
