package mica

import (
	"testing"

	"mica/internal/isa"
)

// refPPM is the original map-based PPM predictor the flat-table
// implementation must reproduce exactly: per-(order, pc, history) count
// cells, predict from the longest previously-seen context, update every
// order, shift the outcome into the (global or per-address) history.
type refPPM struct {
	variant    PPMVariant
	maxOrder   int
	globalHist uint64
	localHist  map[uint64]uint64
	table      map[[3]uint64]*[2]uint32
	correct    uint64
	total      uint64
}

func newRefPPM(v PPMVariant, maxOrder int) *refPPM {
	return &refPPM{
		variant:   v,
		maxOrder:  maxOrder,
		localHist: make(map[uint64]uint64),
		table:     make(map[[3]uint64]*[2]uint32),
	}
}

func (p *refPPM) observe(pc uint64, taken bool) {
	var hist uint64
	perAddr := p.variant == PPMPAg || p.variant == PPMPAs
	if perAddr {
		hist = p.localHist[pc]
	} else {
		hist = p.globalHist
	}
	var tablePC uint64
	if p.variant == PPMGAs || p.variant == PPMPAs {
		tablePC = pc
	}
	predicted := true
	decided := false
	chain := make([]*[2]uint32, p.maxOrder+1)
	for k := p.maxOrder; k >= 0; k-- {
		key := [3]uint64{uint64(k), tablePC, hist & (1<<uint(k) - 1)}
		cell := p.table[key]
		if cell == nil {
			cell = new([2]uint32)
			p.table[key] = cell
		}
		chain[k] = cell
		if !decided && cell[0]+cell[1] > 0 {
			predicted = cell[1] >= cell[0]
			decided = true
		}
	}
	p.total++
	if predicted == taken {
		p.correct++
	}
	outcome := 0
	if taken {
		outcome = 1
	}
	for k := 0; k <= p.maxOrder; k++ {
		chain[k][outcome]++
	}
	bit := uint64(0)
	if taken {
		bit = 1
	}
	if perAddr {
		p.localHist[pc] = hist<<1 | bit
	} else {
		p.globalHist = hist<<1 | bit
	}
}

// TestPPMDifferentialAgainstReference drives the flat-table predictor and
// the reference map implementation with identical branch streams mixing
// biased loop branches (which exercise the context cache), patterned
// branches and noise, and requires identical correct/total counts for
// every variant and several orders.
func TestPPMDifferentialAgainstReference(t *testing.T) {
	for _, order := range []int{1, 4, 8} {
		for v := PPMVariant(0); v < numPPMVariants; v++ {
			v, order := v, order
			t.Run(v.String(), func(t *testing.T) {
				opt := newPPMPredictor(v, order)
				ref := newRefPPM(v, order)
				x := uint64(0xBEEF + uint64(order)*31 + uint64(v))
				rnd := func() uint64 {
					x ^= x << 13
					x ^= x >> 7
					x ^= x << 17
					return x
				}
				pcs := make([]uint64, 37)
				for i := range pcs {
					pcs[i] = isa.CodeBase + uint64(i)*4
				}
				for i := 0; i < 60_000; i++ {
					pc := pcs[rnd()%uint64(len(pcs))]
					var taken bool
					switch pc % 3 {
					case 0: // heavily biased
						taken = rnd()%16 != 0
					case 1: // short repeating pattern
						taken = i%3 != 0
					default: // noise
						taken = rnd()%2 == 0
					}
					opt.observe(pc, taken)
					ref.observe(pc, taken)
				}
				if opt.correct != ref.correct || opt.total != ref.total {
					t.Fatalf("correct/total = %d/%d, reference %d/%d",
						opt.correct, opt.total, ref.correct, ref.total)
				}
			})
		}
	}
}

// TestILPDifferentialSharedRows pins the interleaved multi-window ILP
// simulation to an independent single-window run: simulating windows
// {32, 64, 128, 256} together must give exactly the IPC of simulating
// each window alone. This also pins the specialized observe4 path
// (taken when ns == 4) against the generic Observe path (taken by the
// single-window analyzers), so the two implementations cannot drift.
func TestILPDifferentialSharedRows(t *testing.T) {
	events := randomEventStream(4242, 30_000)
	combined := NewILPAnalyzer(nil, true)
	for i := range events {
		combined.Observe(&events[i])
	}
	for i, w := range combined.Windows() {
		single := NewILPAnalyzer([]int{w}, true)
		for j := range events {
			single.Observe(&events[j])
		}
		if got, want := combined.IPC(i), single.IPC(0); got != want {
			t.Errorf("window %d: combined IPC %v, standalone %v", w, got, want)
		}
	}
}

// TestWorkingSetDifferential pins the cached flat-set working-set counts
// to a builtin-map reference over a random event stream.
func TestWorkingSetDifferential(t *testing.T) {
	events := randomEventStream(99991, 50_000)
	a := NewWorkingSetAnalyzer()
	iBlocks := map[uint64]struct{}{}
	iPages := map[uint64]struct{}{}
	dBlocks := map[uint64]struct{}{}
	dPages := map[uint64]struct{}{}
	for i := range events {
		ev := &events[i]
		a.Observe(ev)
		iBlocks[ev.PC>>wsBlockShift] = struct{}{}
		iPages[ev.PC>>wsPageShift] = struct{}{}
		if ev.MemSize > 0 {
			first := ev.MemAddr >> wsBlockShift
			last := (ev.MemAddr + uint64(ev.MemSize) - 1) >> wsBlockShift
			for b := first; b <= last; b++ {
				dBlocks[b] = struct{}{}
			}
			dPages[ev.MemAddr>>wsPageShift] = struct{}{}
			dPages[(ev.MemAddr+uint64(ev.MemSize)-1)>>wsPageShift] = struct{}{}
		}
	}
	if a.InstBlocks() != len(iBlocks) || a.InstPages() != len(iPages) {
		t.Errorf("I-stream: got %d/%d blocks/pages, want %d/%d",
			a.InstBlocks(), a.InstPages(), len(iBlocks), len(iPages))
	}
	if a.DataBlocks() != len(dBlocks) || a.DataPages() != len(dPages) {
		t.Errorf("D-stream: got %d/%d blocks/pages, want %d/%d",
			a.DataBlocks(), a.DataPages(), len(dBlocks), len(dPages))
	}
}
