package mica

import (
	"mica/internal/flathash"
	"mica/internal/isa"
	"mica/internal/trace"
)

// StrideBuckets are the data stride buckets of Table II (characteristics
// 24-43): P(stride = 0) and P(|stride| <= 8, 64, 512, 4096).
var StrideBuckets = []uint64{0, 8, 64, 512, 4096}

// strideDist accumulates the stride distribution for one (local/global,
// load/store) combination. counts[i] is the number of strides falling in
// bucket i exactly (stride == 0, (0,8], (8,64], (64,512], (512,4096]);
// the cumulative view of Table II is produced by prefix-summing in cdf,
// keeping the per-access hot path at one increment.
type strideDist struct {
	counts [5]uint64
	total  uint64
}

func (d *strideDist) add(stride uint64) {
	d.total++
	switch {
	case stride == 0:
		d.counts[0]++
	case stride <= 8:
		d.counts[1]++
	case stride <= 64:
		d.counts[2]++
	case stride <= 512:
		d.counts[3]++
	case stride <= 4096:
		d.counts[4]++
	}
}

// cdf returns the cumulative probabilities, zero when no strides were
// observed.
func (d *strideDist) cdf() [5]float64 {
	var out [5]float64
	if d.total == 0 {
		return out
	}
	var cum uint64
	for i, c := range d.counts {
		cum += c
		out[i] = float64(cum) / float64(d.total)
	}
	return out
}

// StrideAnalyzer measures the data-stream stride characteristics of Table
// II (24-43). A global stride is the absolute address difference between
// temporally adjacent memory accesses (loads and stores tracked
// separately, as the paper distinguishes load and store streams). A local
// stride is the same quantity restricted to accesses issued by one static
// instruction (tracked per PC). The first access of a stream defines no
// stride.
type StrideAnalyzer struct {
	lastGlobalLoad  uint64
	haveGlobalLoad  bool
	lastGlobalStore uint64
	haveGlobalStore bool

	// lastLocal maps a memory instruction's PC to its last address.
	// Static memory PCs number in the hundreds, so the flat table stays
	// small and cache-resident.
	lastLocal *flathash.U64Map

	localLoad   strideDist
	globalLoad  strideDist
	localStore  strideDist
	globalStore strideDist
}

// NewStrideAnalyzer returns a ready analyzer.
func NewStrideAnalyzer() *StrideAnalyzer {
	return &StrideAnalyzer{lastLocal: flathash.NewU64Map(0)}
}

// Reset returns the analyzer to its initial state, clearing the
// per-PC last-address table in place.
func (a *StrideAnalyzer) Reset() {
	a.lastGlobalLoad, a.haveGlobalLoad = 0, false
	a.lastGlobalStore, a.haveGlobalStore = 0, false
	a.lastLocal.Clear()
	a.localLoad = strideDist{}
	a.globalLoad = strideDist{}
	a.localStore = strideDist{}
	a.globalStore = strideDist{}
}

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

// Observe implements trace.Observer.
func (a *StrideAnalyzer) Observe(ev *trace.Event) {
	if ev.MemSize == 0 {
		return
	}
	addr := ev.MemAddr
	// One probe resolves both the previous address and its update slot;
	// a Len change distinguishes a first access (which defines no
	// stride) from a revisit.
	before := a.lastLocal.Len()
	slot := a.lastLocal.Ref(ev.PC)
	if a.lastLocal.Len() == before {
		s := absDiff(addr, *slot)
		if ev.Class == isa.ClassLoad {
			a.localLoad.add(s)
		} else {
			a.localStore.add(s)
		}
	}
	*slot = addr

	if ev.Class == isa.ClassLoad {
		if a.haveGlobalLoad {
			a.globalLoad.add(absDiff(addr, a.lastGlobalLoad))
		}
		a.lastGlobalLoad, a.haveGlobalLoad = addr, true
	} else {
		if a.haveGlobalStore {
			a.globalStore.add(absDiff(addr, a.lastGlobalStore))
		}
		a.lastGlobalStore, a.haveGlobalStore = addr, true
	}
}

// LocalLoadCDF returns the cumulative local load stride distribution.
func (a *StrideAnalyzer) LocalLoadCDF() [5]float64 { return a.localLoad.cdf() }

// GlobalLoadCDF returns the cumulative global load stride distribution.
func (a *StrideAnalyzer) GlobalLoadCDF() [5]float64 { return a.globalLoad.cdf() }

// LocalStoreCDF returns the cumulative local store stride distribution.
func (a *StrideAnalyzer) LocalStoreCDF() [5]float64 { return a.localStore.cdf() }

// GlobalStoreCDF returns the cumulative global store stride distribution.
func (a *StrideAnalyzer) GlobalStoreCDF() [5]float64 { return a.globalStore.cdf() }

// Fill writes characteristics 24-43 into v.
func (a *StrideAnalyzer) Fill(v *Vector) {
	ll, gl := a.localLoad.cdf(), a.globalLoad.cdf()
	ls, gs := a.localStore.cdf(), a.globalStore.cdf()
	for i := 0; i < 5; i++ {
		v[CharLocalLoadStride0+i] = ll[i]
		v[CharGlobalLoadStride0+i] = gl[i]
		v[CharLocalStoreStride0+i] = ls[i]
		v[CharGlobalStoreStride0+i] = gs[i]
	}
}
