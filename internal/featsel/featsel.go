// Package featsel implements the paper's two methods for identifying key
// microarchitecture-independent characteristics (Section V): correlation
// elimination and genetic-algorithm subset selection with fitness
// f = rho * (1 - n/N), where rho is the Pearson correlation between the
// benchmark-tuple distances in the full and the reduced workload space.
package featsel

import (
	"math"
	"sort"

	"mica/internal/ga"
	"mica/internal/stats"
)

// DistanceCache precomputes, for every unordered benchmark pair, the
// per-characteristic squared differences, so that the pairwise distances
// of any characteristic subset can be computed with one pass of adds.
// This is what makes GA fitness evaluation cheap.
type DistanceCache struct {
	nRows int
	nCols int
	// colSq[j] holds the squared difference of characteristic j for
	// every pair, in canonical pair order.
	colSq [][]float64
	// full holds the distances using all characteristics.
	full []float64
}

// NewDistanceCache builds the cache from a (normalized) benchmark-by-
// characteristic matrix.
func NewDistanceCache(m *stats.Matrix) *DistanceCache {
	pairs := stats.NumPairs(m.Rows)
	c := &DistanceCache{nRows: m.Rows, nCols: m.Cols}
	c.colSq = make([][]float64, m.Cols)
	for j := range c.colSq {
		c.colSq[j] = make([]float64, pairs)
	}
	p := 0
	for i := 0; i < m.Rows; i++ {
		for k := i + 1; k < m.Rows; k++ {
			for j := 0; j < m.Cols; j++ {
				d := m.At(i, j) - m.At(k, j)
				c.colSq[j][p] = d * d
			}
			p++
		}
	}
	c.full = c.distancesMask(nil)
	return c
}

// distancesMask computes pair distances over the selected columns; nil
// selects all columns.
func (c *DistanceCache) distancesMask(mask []bool) []float64 {
	pairs := len(c.full)
	if pairs == 0 {
		pairs = stats.NumPairs(c.nRows)
	}
	sum := make([]float64, pairs)
	for j := 0; j < c.nCols; j++ {
		if mask != nil && !mask[j] {
			continue
		}
		col := c.colSq[j]
		for p := range sum {
			sum[p] += col[p]
		}
	}
	for p := range sum {
		sum[p] = math.Sqrt(sum[p])
	}
	return sum
}

// FullDistances returns the pairwise distances in the full space.
func (c *DistanceCache) FullDistances() []float64 {
	out := make([]float64, len(c.full))
	copy(out, c.full)
	return out
}

// SubsetDistances returns the pairwise distances using only the listed
// characteristics.
func (c *DistanceCache) SubsetDistances(cols []int) []float64 {
	mask := make([]bool, c.nCols)
	for _, j := range cols {
		mask[j] = true
	}
	return c.distancesMask(mask)
}

// Rho returns the Pearson correlation between the full-space distances
// and the distances in the subset space selected by mask — the rho of the
// GA fitness function and of Figure 5.
func (c *DistanceCache) Rho(mask []bool) float64 {
	return stats.Pearson(c.full, c.distancesMask(mask))
}

// RhoSubset is Rho for an explicit column list.
func (c *DistanceCache) RhoSubset(cols []int) float64 {
	return stats.Pearson(c.full, c.SubsetDistances(cols))
}

// Cols returns the number of characteristics in the cache.
func (c *DistanceCache) Cols() int { return c.nCols }

// CEResult records the outcome of correlation elimination.
type CEResult struct {
	// RemovalOrder lists characteristic indices in the order they were
	// eliminated (most-correlated first).
	RemovalOrder []int
}

// Retained returns the k characteristics that survive after eliminating
// all but k, in ascending index order.
func (r CEResult) Retained(k int) []int {
	n := len(r.RemovalOrder) + 1 // total characteristics
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	removed := make(map[int]bool, n-k)
	for _, j := range r.RemovalOrder[:n-k] {
		removed[j] = true
	}
	out := make([]int, 0, k)
	for j := 0; j < n; j++ {
		if !removed[j] {
			out = append(out, j)
		}
	}
	return out
}

// CorrelationElimination implements Section V-A: repeatedly compute, for
// each remaining characteristic, the average absolute Pearson correlation
// with all other remaining characteristics, and remove the characteristic
// with the highest average (it carries the least additional information).
// The process runs until a single characteristic remains; callers pick
// any intermediate subset size via Retained.
func CorrelationElimination(m *stats.Matrix) CEResult {
	n := m.Cols
	cols := make([][]float64, n)
	for j := 0; j < n; j++ {
		cols[j] = m.Column(j)
	}
	// Pairwise correlation table, computed once.
	corr := make([][]float64, n)
	for a := range corr {
		corr[a] = make([]float64, n)
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			r := math.Abs(stats.Pearson(cols[a], cols[b]))
			corr[a][b], corr[b][a] = r, r
		}
	}

	alive := make([]bool, n)
	for j := range alive {
		alive[j] = true
	}
	var order []int
	for remaining := n; remaining > 1; remaining-- {
		worst, worstAvg := -1, -1.0
		for a := 0; a < n; a++ {
			if !alive[a] {
				continue
			}
			sum := 0.0
			for b := 0; b < n; b++ {
				if b != a && alive[b] {
					sum += corr[a][b]
				}
			}
			avg := sum / float64(remaining-1)
			if avg > worstAvg {
				worst, worstAvg = a, avg
			}
		}
		alive[worst] = false
		order = append(order, worst)
	}
	return CEResult{RemovalOrder: order}
}

// GAConfig configures GA-based selection; it wraps ga.Config minus the
// gene count (implied by the data).
type GAConfig struct {
	PopSize          int
	MaxGenerations   int
	StallGenerations int
	Seed             int64
}

// GAResult is the outcome of GA-based key-characteristic selection.
type GAResult struct {
	// Selected lists the retained characteristic indices, ascending.
	Selected []int
	// Rho is the distance correlation of the selected subset versus the
	// full space.
	Rho float64
	// Fitness is rho * (1 - n/N).
	Fitness float64
	// Generations is how many generations the GA ran.
	Generations int
}

// GASelect runs the Section V-B genetic algorithm on a (normalized)
// characteristic matrix and returns the best subset found.
func GASelect(m *stats.Matrix, cfg GAConfig) GAResult {
	cache := NewDistanceCache(m)
	n := m.Cols
	fitness := func(genes []bool) float64 {
		k := 0
		for _, g := range genes {
			if g {
				k++
			}
		}
		if k == 0 {
			return -1
		}
		rho := cache.Rho(genes)
		return rho * (1 - float64(k)/float64(n))
	}
	res := ga.Run(ga.Config{
		Genes:            n,
		PopSize:          cfg.PopSize,
		MaxGenerations:   cfg.MaxGenerations,
		StallGenerations: cfg.StallGenerations,
		Seed:             cfg.Seed,
	}, fitness)

	var sel []int
	for j, g := range res.Best.Genes {
		if g {
			sel = append(sel, j)
		}
	}
	sort.Ints(sel)
	return GAResult{
		Selected:    sel,
		Rho:         cache.RhoSubset(sel),
		Fitness:     res.Best.Fitness,
		Generations: res.Generations,
	}
}

// CECurve evaluates the correlation-elimination method at every retained
// subset size, returning rho for sizes 1..N in index order (the data of
// Figure 5's CE series).
func CECurve(m *stats.Matrix) []float64 {
	cache := NewDistanceCache(m)
	ce := CorrelationElimination(m)
	out := make([]float64, m.Cols)
	for k := 1; k <= m.Cols; k++ {
		out[k-1] = cache.RhoSubset(ce.Retained(k))
	}
	return out
}
