package featsel

import (
	"math"
	"math/rand"
	"testing"

	"mica/internal/stats"
)

// redundantData builds a dataset with three independent signal columns
// and redundant/noise columns derived from them:
//
//	col 0: signal A
//	col 1: signal B
//	col 2: signal C
//	col 3: copy of A (+tiny noise)     <- redundant
//	col 4: copy of B (+tiny noise)     <- redundant
//	col 5: 0.5*A + 0.5*B               <- redundant combination
func redundantData(n int, seed int64) *stats.Matrix {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		a, b, c := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		rows[i] = []float64{
			a, b, c,
			a + rng.NormFloat64()*0.01,
			b + rng.NormFloat64()*0.01,
			0.5*a + 0.5*b,
		}
	}
	return stats.ZScoreNormalize(stats.FromRows(rows))
}

func TestDistanceCacheMatchesDirect(t *testing.T) {
	m := redundantData(20, 1)
	cache := NewDistanceCache(m)
	direct := stats.PairwiseDistances(m)
	cached := cache.FullDistances()
	if len(direct) != len(cached) {
		t.Fatal("length mismatch")
	}
	for i := range direct {
		if math.Abs(direct[i]-cached[i]) > 1e-9 {
			t.Fatalf("pair %d: %g vs %g", i, direct[i], cached[i])
		}
	}
}

func TestSubsetDistancesMatchSelectColumns(t *testing.T) {
	m := redundantData(15, 2)
	cache := NewDistanceCache(m)
	cols := []int{0, 2, 5}
	got := cache.SubsetDistances(cols)
	want := stats.PairwiseDistances(m.SelectColumns(cols))
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("pair %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestRhoFullIsOne(t *testing.T) {
	m := redundantData(25, 3)
	cache := NewDistanceCache(m)
	all := make([]int, m.Cols)
	for j := range all {
		all[j] = j
	}
	if rho := cache.RhoSubset(all); math.Abs(rho-1) > 1e-12 {
		t.Errorf("rho of full subset = %g, want 1", rho)
	}
}

func TestCorrelationEliminationDropsRedundantFirst(t *testing.T) {
	m := redundantData(100, 4)
	ce := CorrelationElimination(m)
	if len(ce.RemovalOrder) != m.Cols-1 {
		t.Fatalf("removal order has %d entries, want %d", len(ce.RemovalOrder), m.Cols-1)
	}
	// The first three removals must all be redundant columns (0,1,3,4,5
	// are correlated; 2 is independent and must survive long).
	for _, j := range ce.RemovalOrder[:3] {
		if j == 2 {
			t.Errorf("independent column 2 removed early (order %v)", ce.RemovalOrder)
		}
	}
	// Retained(3) should keep column 2.
	kept := ce.Retained(3)
	found := false
	for _, j := range kept {
		if j == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("Retained(3) = %v does not keep independent column 2", kept)
	}
}

func TestRetainedBounds(t *testing.T) {
	m := redundantData(30, 5)
	ce := CorrelationElimination(m)
	if got := ce.Retained(0); len(got) != 1 {
		t.Errorf("Retained(0) = %v, want 1 column", got)
	}
	if got := ce.Retained(100); len(got) != m.Cols {
		t.Errorf("Retained(100) = %v, want all columns", got)
	}
}

func TestCECurveIncreasesWithSubsetSize(t *testing.T) {
	m := redundantData(60, 6)
	curve := CECurve(m)
	if len(curve) != m.Cols {
		t.Fatal("curve length wrong")
	}
	if curve[m.Cols-1] < 0.999 {
		t.Errorf("rho with all columns = %g, want ~1", curve[m.Cols-1])
	}
	// Broad trend: the best achievable rho at size 3 must be high for
	// this dataset (3 true signals).
	if curve[2] < 0.9 {
		t.Errorf("rho at 3 retained = %g, want > 0.9 (3 true signals)", curve[2])
	}
}

func TestGASelectFindsCompactAccurateSubset(t *testing.T) {
	m := redundantData(80, 7)
	res := GASelect(m, GAConfig{Seed: 17})
	if len(res.Selected) == 0 {
		t.Fatal("GA selected nothing")
	}
	if len(res.Selected) > 4 {
		t.Errorf("GA selected %d of 6 columns (%v), want <= 4 given redundancy", len(res.Selected), res.Selected)
	}
	// With N=6 each extra column costs 1/6 of fitness, so the optimum
	// trades some rho for compactness; 0.9 is the right bar here.
	if res.Rho < 0.9 {
		t.Errorf("GA subset rho = %g, want > 0.9", res.Rho)
	}
	wantFit := res.Rho * (1 - float64(len(res.Selected))/float64(m.Cols))
	if math.Abs(res.Fitness-wantFit) > 1e-9 {
		t.Errorf("fitness = %g, want rho*(1-n/N) = %g", res.Fitness, wantFit)
	}
}

func TestGASelectDeterministic(t *testing.T) {
	m := redundantData(40, 8)
	a := GASelect(m, GAConfig{Seed: 9})
	b := GASelect(m, GAConfig{Seed: 9})
	if len(a.Selected) != len(b.Selected) || a.Rho != b.Rho {
		t.Error("same seed gave different GA selections")
	}
}

func TestGABeatsCEAtSameCardinality(t *testing.T) {
	// The paper's headline comparison (Figure 5): at the GA's chosen
	// subset size, the GA subset correlates at least as well as the CE
	// subset of the same size.
	m := redundantData(80, 10)
	cache := NewDistanceCache(m)
	gaRes := GASelect(m, GAConfig{Seed: 21})
	ce := CorrelationElimination(m)
	ceRho := cache.RhoSubset(ce.Retained(len(gaRes.Selected)))
	if gaRes.Rho+1e-9 < ceRho {
		t.Errorf("GA rho %g below CE rho %g at equal cardinality %d",
			gaRes.Rho, ceRho, len(gaRes.Selected))
	}
}
