// Package cache implements set-associative caches and TLBs with LRU
// replacement for the microarchitecture timing models. These are the
// reproduction's substitute for the cache hierarchy of the Alpha machines
// whose hardware performance counters the paper reads.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	// Name identifies the cache in reports ("L1D", "L2", ...).
	Name string
	// SizeBytes is the total capacity.
	SizeBytes int
	// LineBytes is the line (block) size; must be a power of two.
	LineBytes int
	// Assoc is the set associativity; Assoc*LineBytes must divide
	// SizeBytes.
	Assoc int
}

type line struct {
	tag   uint64
	valid bool
	lru   uint64
}

// Cache is a set-associative cache with true-LRU replacement. It models
// hit/miss behavior only (no dirty-writeback timing), which is what the
// miss-rate counters need.
type Cache struct {
	cfg       Config
	sets      [][]line
	lineShift uint
	setMask   uint64
	clock     uint64

	accesses uint64
	misses   uint64
}

// New builds a cache. It panics on malformed configurations (these are
// compile-time machine descriptions, not user input).
func New(cfg Config) *Cache {
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic(fmt.Sprintf("cache %s: line size %d not a power of two", cfg.Name, cfg.LineBytes))
	}
	if cfg.Assoc <= 0 || cfg.SizeBytes%(cfg.LineBytes*cfg.Assoc) != 0 {
		panic(fmt.Sprintf("cache %s: size %d not divisible by assoc %d x line %d",
			cfg.Name, cfg.SizeBytes, cfg.Assoc, cfg.LineBytes))
	}
	nSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	if nSets&(nSets-1) != 0 {
		panic(fmt.Sprintf("cache %s: %d sets is not a power of two", cfg.Name, nSets))
	}
	c := &Cache{cfg: cfg, setMask: uint64(nSets - 1)}
	for s := cfg.LineBytes; s > 1; s >>= 1 {
		c.lineShift++
	}
	c.sets = make([][]line, nSets)
	backing := make([]line, nSets*cfg.Assoc)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Access looks up addr, updating LRU state and filling the line on a
// miss. It returns true on a hit.
func (c *Cache) Access(addr uint64) bool {
	c.clock++
	c.accesses++
	blk := addr >> c.lineShift
	set := c.sets[blk&c.setMask]
	tag := blk >> uint(popcount(c.setMask))

	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.clock
			return true
		}
		// Invalid lines have lru 0 and are preferred victims.
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	c.misses++
	set[victim] = line{tag: tag, valid: true, lru: c.clock}
	return false
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Accesses returns the number of lookups performed.
func (c *Cache) Accesses() uint64 { return c.accesses }

// Misses returns the number of misses.
func (c *Cache) Misses() uint64 { return c.misses }

// MissRate returns misses per access, 0 when idle.
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = line{}
		}
	}
	c.clock, c.accesses, c.misses = 0, 0, 0
}

// NewTLB builds a TLB as a fully-associative page-granularity cache with
// the given number of entries and page size.
func NewTLB(name string, entries, pageBytes int) *Cache {
	return New(Config{
		Name:      name,
		SizeBytes: entries * pageBytes,
		LineBytes: pageBytes,
		Assoc:     entries,
	})
}
