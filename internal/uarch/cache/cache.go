// Package cache implements set-associative caches and TLBs with LRU
// replacement for the microarchitecture timing models. These are the
// reproduction's substitute for the cache hierarchy of the Alpha machines
// whose hardware performance counters the paper reads.
package cache

import (
	"fmt"

	"mica/internal/flathash"
)

// Config describes one cache level.
type Config struct {
	// Name identifies the cache in reports ("L1D", "L2", ...).
	Name string
	// SizeBytes is the total capacity.
	SizeBytes int
	// LineBytes is the line (block) size; must be a power of two.
	LineBytes int
	// Assoc is the set associativity; Assoc*LineBytes must divide
	// SizeBytes.
	Assoc int
}

// line is one cache line. A line is valid iff lru != 0: the clock is
// pre-incremented before any stamp, so a real stamp is never zero, and
// zero-filled lines read as invalid with the most-preferred victim age.
type line struct {
	tag uint64
	lru uint64
}

// Cache is a set-associative cache with true-LRU replacement. It models
// hit/miss behavior only (no dirty-writeback timing), which is what the
// miss-rate counters need.
//
// A last-line shortcut makes back-to-back accesses to one block (the
// overwhelmingly common case for I-streams and fully-associative TLBs)
// cost one compare: if the previous access touched the same block, that
// line is necessarily still resident with maximal LRU age, so the lookup
// can update it directly without scanning the set.
type Cache struct {
	cfg Config
	// lines holds all sets flattened: set s spans
	// lines[s*Assoc : (s+1)*Assoc].
	lines     []line
	lineShift uint
	setMask   uint64
	tagShift  uint
	clock     uint64

	lastBlk  uint64
	lastLine *line

	// tagIndex, for fully-associative caches (TLBs), maps a resident
	// block number to its slot+1 in the single set, replacing the
	// O(assoc) hit scan with one hash probe. Entries for evicted blocks
	// go stale rather than being deleted; a stale entry is detected by
	// re-checking the slot's tag. Alongside it, lruPrev/lruNext keep the
	// set's slots in an exact LRU list (head = MRU, tail = LRU), so the
	// victim on a miss is the tail — no O(assoc) stamp scan. Both
	// structures reproduce the stamp-based reference behavior
	// bit-for-bit: hits and misses are decided identically, and the
	// eviction order equals the minimum-stamp/first-index rule because
	// slots start in index order and move to the head on every touch.
	tagIndex *flathash.U64Map
	lruPrev  []int32
	lruNext  []int32
	lruHead  int32
	lruTail  int32

	// The access count IS the LRU clock: both advance exactly once per
	// Access, so only the clock is stored (this also keeps the Access
	// fast path within the inlining budget).
	misses uint64
}

// tagIndexMinAssoc is the associativity at which a hash index in front
// of the hit scan pays for itself; below it the scan is a few compares.
const tagIndexMinAssoc = 8

// noBlock is the last-block tag for "nothing cached"; unreachable for
// real block numbers (it would need byte addresses beyond 2^64).
const noBlock = ^uint64(0)

// New builds a cache. It panics on malformed configurations (these are
// compile-time machine descriptions, not user input).
func New(cfg Config) *Cache {
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic(fmt.Sprintf("cache %s: line size %d not a power of two", cfg.Name, cfg.LineBytes))
	}
	if cfg.Assoc <= 0 || cfg.SizeBytes%(cfg.LineBytes*cfg.Assoc) != 0 {
		panic(fmt.Sprintf("cache %s: size %d not divisible by assoc %d x line %d",
			cfg.Name, cfg.SizeBytes, cfg.Assoc, cfg.LineBytes))
	}
	nSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	if nSets&(nSets-1) != 0 {
		panic(fmt.Sprintf("cache %s: %d sets is not a power of two", cfg.Name, nSets))
	}
	c := &Cache{cfg: cfg, setMask: uint64(nSets - 1), lastBlk: noBlock}
	for s := cfg.LineBytes; s > 1; s >>= 1 {
		c.lineShift++
	}
	c.tagShift = uint(popcount(c.setMask))
	if nSets == 1 && cfg.Assoc >= tagIndexMinAssoc {
		c.tagIndex = flathash.NewU64Map(2 * cfg.Assoc)
		c.initLRUList()
	}
	c.lines = make([]line, nSets*cfg.Assoc)
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Access looks up addr, updating LRU state and filling the line on a
// miss. It returns true on a hit.
func (c *Cache) Access(addr uint64) bool {
	blk := addr >> c.lineShift
	if blk == c.lastBlk {
		// The immediately preceding access touched this block, so its
		// line is necessarily still resident and already the most
		// recently used: nothing has to move. The LRU stamp is synced
		// lazily in accessSlow (stamps are only ever read there), which
		// keeps this path small enough to inline into the models'
		// Observe loops.
		c.clock++
		return true
	}
	return c.accessSlow(blk)
}

// accessSlow is the full set lookup for accesses that miss the last-line
// shortcut.
func (c *Cache) accessSlow(blk uint64) bool {
	if c.lastLine != nil {
		// Stamp the departing line with its last touch (the current
		// clock): equivalent to stamping on every fast-path hit.
		c.lastLine.lru = c.clock
	}
	c.clock++
	base := int(blk&c.setMask) * c.cfg.Assoc
	set := c.lines[base : base+c.cfg.Assoc]
	tag := blk >> c.tagShift

	if c.tagIndex != nil {
		// Hash-indexed hit path: one probe instead of an O(assoc) scan.
		if s, ok := c.tagIndex.Get(blk); ok {
			if ln := &set[s-1]; ln.lru != 0 && ln.tag == tag {
				ln.lru = c.clock
				c.lruTouch(int32(s - 1))
				c.lastBlk, c.lastLine = blk, ln
				return true
			}
			// Stale entry: blk was evicted since it was indexed.
		}
		victim := c.lruTail
		c.misses++
		set[victim] = line{tag: tag, lru: c.clock}
		c.lruTouch(victim)
		c.tagIndex.Put(blk, uint64(victim)+1)
		c.lastBlk, c.lastLine = blk, &set[victim]
		return false
	}

	victim := 0
	for i := range set {
		if set[i].tag == tag && set[i].lru != 0 {
			set[i].lru = c.clock
			c.lastBlk, c.lastLine = blk, &set[i]
			return true
		}
		// Invalid lines have lru 0 and are preferred victims.
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	c.misses++
	set[victim] = line{tag: tag, lru: c.clock}
	c.lastBlk, c.lastLine = blk, &set[victim]
	return false
}

// initLRUList links the single set's slots so that untouched slots are
// evicted in index order, matching the stamp scan's first-lowest-index
// tie-break: tail = slot 0, head = the highest slot.
func (c *Cache) initLRUList() {
	n := c.cfg.Assoc
	c.lruPrev = make([]int32, n)
	c.lruNext = make([]int32, n)
	for i := 0; i < n; i++ {
		// Head-to-tail order is n-1, n-2, ..., 1, 0.
		c.lruPrev[i] = int32(i + 1)
		c.lruNext[i] = int32(i - 1)
	}
	c.lruPrev[n-1] = -1
	c.lruNext[0] = -1
	c.lruHead = int32(n - 1)
	c.lruTail = 0
}

// lruTouch moves slot i to the MRU head of the list. prev links point
// toward the head, next links toward the tail.
func (c *Cache) lruTouch(i int32) {
	if i == c.lruHead {
		return
	}
	// Unlink; i != head, so prev[i] is a real slot.
	p, nx := c.lruPrev[i], c.lruNext[i]
	c.lruNext[p] = nx
	if nx >= 0 {
		c.lruPrev[nx] = p
	} else {
		c.lruTail = p // i was the tail
	}
	// Relink at head.
	c.lruPrev[i] = -1
	c.lruNext[i] = c.lruHead
	c.lruPrev[c.lruHead] = i
	c.lruHead = i
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Accesses returns the number of lookups performed.
func (c *Cache) Accesses() uint64 { return c.clock }

// Misses returns the number of misses.
func (c *Cache) Misses() uint64 { return c.misses }

// MissRate returns misses per access, 0 when idle.
func (c *Cache) MissRate() float64 {
	if c.clock == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.clock)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.clock, c.misses = 0, 0
	c.lastBlk, c.lastLine = noBlock, nil
	if c.tagIndex != nil {
		c.tagIndex = flathash.NewU64Map(2 * c.cfg.Assoc)
		c.initLRUList()
	}
}

// NewTLB builds a TLB as a fully-associative page-granularity cache with
// the given number of entries and page size.
func NewTLB(name string, entries, pageBytes int) *Cache {
	return New(Config{
		Name:      name,
		SizeBytes: entries * pageBytes,
		LineBytes: pageBytes,
		Assoc:     entries,
	})
}
