package cache

import (
	"testing"
	"testing/quick"
)

func TestDirectMappedConflict(t *testing.T) {
	// 1KB direct-mapped, 32B lines -> 32 sets. Two addresses 1KB apart
	// map to the same set and evict each other.
	c := New(Config{Name: "t", SizeBytes: 1024, LineBytes: 32, Assoc: 1})
	if c.Access(0) {
		t.Error("cold access hit")
	}
	if !c.Access(0) {
		t.Error("second access missed")
	}
	if c.Access(1024) {
		t.Error("conflicting access hit")
	}
	if c.Access(0) {
		t.Error("evicted line still present")
	}
}

func TestAssociativityAvoidsConflict(t *testing.T) {
	// Same two conflicting addresses fit in a 2-way cache.
	c := New(Config{Name: "t", SizeBytes: 2048, LineBytes: 32, Assoc: 2})
	c.Access(0)
	c.Access(2048) // same set in a 32-set 2-way cache
	if !c.Access(0) || !c.Access(2048) {
		t.Error("2-way cache evicted one of two conflicting lines")
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way set: touch A, B, re-touch A, then C evicts B (the LRU).
	c := New(Config{Name: "t", SizeBytes: 64, LineBytes: 32, Assoc: 2}) // 1 set
	a, b, x := uint64(0), uint64(64), uint64(128)
	c.Access(a)
	c.Access(b)
	c.Access(a) // A is now MRU
	c.Access(x) // evicts B
	if !c.Access(a) {
		t.Error("MRU line was evicted")
	}
	if c.Access(b) {
		t.Error("LRU line was not evicted")
	}
}

func TestSameLineHits(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 1024, LineBytes: 32, Assoc: 1})
	c.Access(100)
	for off := uint64(96); off < 128; off++ {
		if !c.Access(off) {
			t.Errorf("offset %d in cached line missed", off)
		}
	}
}

func TestMissRateAccounting(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 1024, LineBytes: 32, Assoc: 1})
	for i := 0; i < 10; i++ {
		c.Access(0)
	}
	if c.Accesses() != 10 || c.Misses() != 1 {
		t.Errorf("accesses=%d misses=%d, want 10/1", c.Accesses(), c.Misses())
	}
	if got := c.MissRate(); got != 0.1 {
		t.Errorf("miss rate = %g, want 0.1", got)
	}
}

func TestStreamingMissRate(t *testing.T) {
	// Sequential walk over 64KB through a 1KB cache: one miss per line.
	c := New(Config{Name: "t", SizeBytes: 1024, LineBytes: 32, Assoc: 2})
	for addr := uint64(0); addr < 64<<10; addr += 8 {
		c.Access(addr)
	}
	// 8-byte steps, 32-byte lines: 1 miss per 4 accesses.
	if got := c.MissRate(); got < 0.24 || got > 0.26 {
		t.Errorf("streaming miss rate = %g, want ~0.25", got)
	}
}

func TestWorkingSetFitsAfterWarmup(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 4096, LineBytes: 32, Assoc: 4})
	// Working set 2KB < 4KB capacity: after one pass, all hits.
	for pass := 0; pass < 3; pass++ {
		for addr := uint64(0); addr < 2048; addr += 32 {
			c.Access(addr)
		}
	}
	// 64 cold misses, 128 warm hits.
	if c.Misses() != 64 {
		t.Errorf("misses = %d, want 64 cold misses only", c.Misses())
	}
}

func TestReset(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 1024, LineBytes: 32, Assoc: 1})
	c.Access(0)
	c.Reset()
	if c.Accesses() != 0 || c.Misses() != 0 {
		t.Error("counters not reset")
	}
	if c.Access(0) {
		t.Error("contents not reset")
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB("DTLB", 4, 4096)
	// 4 pages fit; a 5th evicts the LRU.
	for p := uint64(0); p < 4; p++ {
		tlb.Access(p * 4096)
	}
	if !tlb.Access(0) {
		t.Error("TLB entry evicted too early")
	}
	tlb.Access(4 * 4096) // evicts page 1 (LRU)
	if tlb.Access(1 * 4096) {
		t.Error("LRU page not evicted")
	}
	if !tlb.Access(0) {
		t.Error("recently used page evicted")
	}
}

func TestBadConfigPanics(t *testing.T) {
	cases := []Config{
		{Name: "line-not-pow2", SizeBytes: 1024, LineBytes: 33, Assoc: 1},
		{Name: "size-mismatch", SizeBytes: 1000, LineBytes: 32, Assoc: 1},
		{Name: "zero-assoc", SizeBytes: 1024, LineBytes: 32, Assoc: 0},
	}
	for _, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %s did not panic", cfg.Name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestHitImpliesSubsequentHit(t *testing.T) {
	// Property: accessing the same address twice in a row always hits
	// the second time, whatever came before.
	c := New(Config{Name: "t", SizeBytes: 2048, LineBytes: 32, Assoc: 2})
	f := func(addrs []uint64, probe uint64) bool {
		for _, a := range addrs {
			c.Access(a % (1 << 20))
		}
		probe %= 1 << 20
		c.Access(probe)
		return c.Access(probe)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// refCache is the straightforward stamp-scan LRU model the optimized
// Cache must reproduce bit-for-bit: per-access clock, hit scan over the
// set, victim = minimum-stamp line with lowest-index tie-break.
type refCache struct {
	tags      []uint64
	valid     []bool
	stamp     []uint64
	assoc     int
	lineShift uint
	setMask   uint64
	tagShift  uint
	clock     uint64
	misses    uint64
}

func newRefCache(cfg Config) *refCache {
	nSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	r := &refCache{
		tags:    make([]uint64, nSets*cfg.Assoc),
		valid:   make([]bool, nSets*cfg.Assoc),
		stamp:   make([]uint64, nSets*cfg.Assoc),
		assoc:   cfg.Assoc,
		setMask: uint64(nSets - 1),
	}
	for s := cfg.LineBytes; s > 1; s >>= 1 {
		r.lineShift++
	}
	for m := r.setMask; m != 0; m &= m - 1 {
		r.tagShift++
	}
	return r
}

func (r *refCache) access(addr uint64) bool {
	r.clock++
	blk := addr >> r.lineShift
	base := int(blk&r.setMask) * r.assoc
	tag := blk >> r.tagShift
	victim := base
	for i := base; i < base+r.assoc; i++ {
		if r.valid[i] && r.tags[i] == tag {
			r.stamp[i] = r.clock
			return true
		}
		if r.stamp[i] < r.stamp[victim] {
			victim = i
		}
	}
	r.misses++
	r.tags[victim], r.valid[victim], r.stamp[victim] = tag, true, r.clock
	return false
}

// TestDifferentialAgainstReference drives the optimized cache and the
// reference model with identical pseudo-random access streams (sequential
// runs, strided sweeps, hot-set reuse, uniform noise) across every
// organization the machine models use, including the fully-associative
// TLB shapes that take the tag-index/LRU-list path.
func TestDifferentialAgainstReference(t *testing.T) {
	configs := []Config{
		{Name: "dm", SizeBytes: 8 << 10, LineBytes: 32, Assoc: 1},
		{Name: "2way", SizeBytes: 64 << 10, LineBytes: 64, Assoc: 2},
		{Name: "3way", SizeBytes: 96 << 10, LineBytes: 64, Assoc: 3},
		{Name: "tlb64", SizeBytes: 64 * 8192, LineBytes: 8192, Assoc: 64},
		{Name: "tlb128", SizeBytes: 128 * 8192, LineBytes: 8192, Assoc: 128},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			c := New(cfg)
			r := newRefCache(cfg)
			x := uint64(0x1234567 + cfg.SizeBytes)
			rnd := func() uint64 {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				return x
			}
			addr := uint64(0)
			for i := 0; i < 300_000; i++ {
				switch rnd() % 8 {
				case 0: // jump to a new region
					addr = rnd() % (1 << 26)
				case 1: // strided sweep step
					addr += uint64(cfg.LineBytes) * (1 + rnd()%4)
				case 2: // hot-set reuse
					addr = (rnd() % 16) * uint64(cfg.LineBytes)
				default: // sequential bytes (same-line runs)
					addr += 1 + rnd()%16
				}
				got, want := c.Access(addr), r.access(addr)
				if got != want {
					t.Fatalf("access %d (addr %#x): hit=%v, reference %v", i, addr, got, want)
				}
			}
			if c.Accesses() != r.clock || c.Misses() != r.misses {
				t.Fatalf("counters: got %d/%d, reference %d/%d",
					c.Accesses(), c.Misses(), r.clock, r.misses)
			}
		})
	}
}
