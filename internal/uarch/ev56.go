// Package uarch implements cycle-approximate timing models of the two
// Alpha machines whose hardware performance counters the paper collects
// with DCPI: the in-order dual-issue 21164A (EV56) and the out-of-order
// four-wide 21264A (EV67). These models are the reproduction's substitute
// for the real machines: they project the same dynamic instruction stream
// onto a fixed microarchitecture and report the counter values the paper
// uses (IPC, branch misprediction rate, L1 D/I miss rates, L2 miss rate,
// D-TLB miss rate).
package uarch

import (
	"mica/internal/trace"
	"mica/internal/uarch/bpred"
	"mica/internal/uarch/cache"
)

// EV56Config holds the cache and penalty parameters of the in-order
// model. Defaults follow the Alpha 21164A: 8KB direct-mapped L1 caches
// with 32B lines, a 96KB 3-way on-chip L2 with 64B lines, a 64-entry
// fully-associative DTLB, and a 2K-entry branch history table.
type EV56Config struct {
	IssueWidth       int
	L1I, L1D, L2     cache.Config
	DTLBEntries      int
	PageBytes        int
	BpredEntries     int
	L2LatencyCycles  int
	MemLatencyCycles int
	TLBMissCycles    int
	MispredictCycles int
}

// DefaultEV56Config returns the 21164A-like parameters.
func DefaultEV56Config() EV56Config {
	return EV56Config{
		IssueWidth:       2,
		L1I:              cache.Config{Name: "L1I", SizeBytes: 8 << 10, LineBytes: 32, Assoc: 1},
		L1D:              cache.Config{Name: "L1D", SizeBytes: 8 << 10, LineBytes: 32, Assoc: 1},
		L2:               cache.Config{Name: "L2", SizeBytes: 96 << 10, LineBytes: 64, Assoc: 3},
		DTLBEntries:      64,
		PageBytes:        8 << 10, // Alpha 8KB pages
		BpredEntries:     2048,
		L2LatencyCycles:  8,
		MemLatencyCycles: 60,
		TLBMissCycles:    30,
		MispredictCycles: 5,
	}
}

// EV56 is the in-order dual-issue timing model. It implements
// trace.Observer; attach it to a VM run and read the counters afterwards.
//
// The timing model is the standard in-order miss-penalty accounting used
// by back-of-envelope CPI stacks: base cycles = instructions / issue
// width, plus fixed penalties per L1/L2 miss, DTLB miss and branch
// misprediction. In-order machines overlap little of these penalties,
// which makes the additive model a good approximation for an EV56-class
// pipeline.
type EV56 struct {
	cfg  EV56Config
	l1i  *cache.Cache
	l1d  *cache.Cache
	l2   *cache.Cache
	dtlb *cache.Cache
	bp   bpred.Predictor

	insts       uint64
	memOps      uint64
	branches    uint64
	stallCycles uint64
}

// NewEV56 builds the in-order model.
func NewEV56(cfg EV56Config) *EV56 {
	return &EV56{
		cfg:  cfg,
		l1i:  cache.New(cfg.L1I),
		l1d:  cache.New(cfg.L1D),
		l2:   cache.New(cfg.L2),
		dtlb: cache.NewTLB("DTLB", cfg.DTLBEntries, cfg.PageBytes),
		bp:   bpred.NewBimodal(cfg.BpredEntries),
	}
}

// Observe implements trace.Observer.
func (m *EV56) Observe(ev *trace.Event) {
	m.insts++

	// Instruction fetch: one L1I lookup per instruction, so the I-cache
	// miss rate is misses per instruction fetched (the DCPI counter).
	if !m.l1i.Access(ev.PC) {
		if m.l2.Access(ev.PC) {
			m.stallCycles += uint64(m.cfg.L2LatencyCycles)
		} else {
			m.stallCycles += uint64(m.cfg.MemLatencyCycles)
		}
	}

	if ev.MemSize > 0 {
		m.memOps++
		if !m.dtlb.Access(ev.MemAddr) {
			m.stallCycles += uint64(m.cfg.TLBMissCycles)
		}
		if !m.l1d.Access(ev.MemAddr) {
			if m.l2.Access(ev.MemAddr) {
				m.stallCycles += uint64(m.cfg.L2LatencyCycles)
			} else {
				m.stallCycles += uint64(m.cfg.MemLatencyCycles)
			}
		}
	}

	if ev.Conditional {
		m.branches++
		pred := m.bp.Predict(ev.PC, ev.Taken)
		if pred != ev.Taken {
			m.stallCycles += uint64(m.cfg.MispredictCycles)
		}
	}
}

// Cycles returns the modeled total cycle count.
func (m *EV56) Cycles() uint64 {
	base := (m.insts + uint64(m.cfg.IssueWidth) - 1) / uint64(m.cfg.IssueWidth)
	return base + m.stallCycles
}

// IPC returns modeled instructions per cycle.
func (m *EV56) IPC() float64 {
	c := m.Cycles()
	if c == 0 {
		return 0
	}
	return float64(m.insts) / float64(c)
}

// BranchMispredictRate returns mispredictions per conditional branch.
func (m *EV56) BranchMispredictRate() float64 {
	if m.bp.Branches() == 0 {
		return 0
	}
	return float64(m.bp.Mispredicts()) / float64(m.bp.Branches())
}

// L1DMissRate returns L1 D-cache misses per data access.
func (m *EV56) L1DMissRate() float64 { return m.l1d.MissRate() }

// L1IMissRate returns L1 I-cache misses per fetch-line access.
func (m *EV56) L1IMissRate() float64 { return m.l1i.MissRate() }

// L2MissRate returns unified L2 misses per L2 access.
func (m *EV56) L2MissRate() float64 { return m.l2.MissRate() }

// DTLBMissRate returns DTLB misses per data access.
func (m *EV56) DTLBMissRate() float64 { return m.dtlb.MissRate() }

// Insts returns the number of instructions observed.
func (m *EV56) Insts() uint64 { return m.insts }
