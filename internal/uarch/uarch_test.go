package uarch

import (
	"testing"

	"mica/internal/asm"
	"mica/internal/isa"
	"mica/internal/trace"
	"mica/internal/vm"
)

// runProgram executes src and feeds the stream to obs.
func runProgram(t *testing.T, src string, budget uint64, obs trace.Observer) {
	t.Helper()
	prog, err := asm.Assemble(t.Name(), src)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(prog)
	if _, err := m.Run(budget, obs); err != nil && err != vm.ErrBudget {
		t.Fatal(err)
	}
}

// tightLoop is a small, cache-resident, predictable kernel.
const tightLoop = `
main:	lda  r1, 200000
loop:	addq r2, 1, r2
	addq r3, r2, r3
	subq r1, 1, r1
	bgt  r1, loop
	halt
`

// pointerChase walks a large array with a data-dependent stride, built to
// miss in the caches.
const pointerChase = `
	.data
arr:	.space 2097152
	.text
main:	lda  r1, arr
	lda  r2, 100000      # iterations
	lda  r3, 0           # index
loop:	s8addq r3, r1, r4
	ldq  r5, 0(r4)
	addq r5, r3, r5
	mulq r3, 40503, r3   # pseudo-random next index
	addq r3, 9973, r3
	srl  r3, 3, r6
	and  r6, 262143, r3
	subq r2, 1, r2
	bgt  r2, loop
	halt
`

func TestEV56TightLoopHighIPC(t *testing.T) {
	m := NewEV56(DefaultEV56Config())
	runProgram(t, tightLoop, 0, m)
	if ipc := m.IPC(); ipc < 1.2 {
		t.Errorf("tight loop EV56 IPC = %g, want > 1.2 (dual issue, all hits)", ipc)
	}
	if mr := m.L1DMissRate(); mr != 0 {
		t.Errorf("tight loop has no memory ops but L1D miss rate = %g", mr)
	}
	if mr := m.L1IMissRate(); mr > 0.01 {
		t.Errorf("tiny loop L1I miss rate = %g, want ~0", mr)
	}
	if br := m.BranchMispredictRate(); br > 0.01 {
		t.Errorf("loop branch mispredict rate = %g, want ~0", br)
	}
}

func TestEV56PointerChaseLowIPC(t *testing.T) {
	hostile := NewEV56(DefaultEV56Config())
	runProgram(t, pointerChase, 400_000, hostile)
	friendly := NewEV56(DefaultEV56Config())
	runProgram(t, tightLoop, 400_000, friendly)
	if hostile.IPC() >= friendly.IPC() {
		t.Errorf("pointer chase IPC (%g) should be below tight loop IPC (%g)",
			hostile.IPC(), friendly.IPC())
	}
	if mr := hostile.L1DMissRate(); mr < 0.2 {
		t.Errorf("random walk over 2MB: L1D miss rate = %g, want > 0.2", mr)
	}
	if mr := hostile.DTLBMissRate(); mr < 0.1 {
		t.Errorf("random walk over 256 pages: DTLB miss rate = %g, want > 0.1", mr)
	}
}

func TestEV67OutperformsEV56OnILP(t *testing.T) {
	// Independent work: the 4-wide OoO machine should beat the 2-wide
	// in-order one.
	src := `
main:	lda  r1, 100000
loop:	addq r2, 1, r2
	addq r3, 1, r3
	addq r4, 1, r4
	addq r5, 1, r5
	addq r6, 1, r6
	addq r7, 1, r7
	subq r1, 1, r1
	bgt  r1, loop
	halt
`
	e56 := NewEV56(DefaultEV56Config())
	runProgram(t, src, 0, e56)
	e67 := NewEV67(DefaultEV67Config())
	runProgram(t, src, 0, e67)
	if e67.IPC() <= e56.IPC() {
		t.Errorf("EV67 IPC (%g) should exceed EV56 IPC (%g) on independent work",
			e67.IPC(), e56.IPC())
	}
	if e67.IPC() > 4.0 {
		t.Errorf("EV67 IPC = %g exceeds issue width", e67.IPC())
	}
}

func TestEV67OverlapsMisses(t *testing.T) {
	// Independent streaming misses: the OoO machine overlaps them, the
	// in-order one serializes. Compare slowdowns relative to each
	// machine's tight-loop IPC.
	stream := `
	.data
arr:	.space 4194304
	.text
main:	lda  r1, arr
	lda  r2, 60000
loop:	ldq  r3, 0(r1)
	ldq  r4, 64(r1)
	ldq  r5, 128(r1)
	ldq  r6, 192(r1)
	addq r1, 256, r1
	subq r2, 1, r2
	bgt  r2, loop
	halt
`
	e56s := NewEV56(DefaultEV56Config())
	runProgram(t, stream, 300_000, e56s)
	e67s := NewEV67(DefaultEV67Config())
	runProgram(t, stream, 300_000, e67s)
	e56t := NewEV56(DefaultEV56Config())
	runProgram(t, tightLoop, 300_000, e56t)
	e67t := NewEV67(DefaultEV67Config())
	runProgram(t, tightLoop, 300_000, e67t)

	slow56 := e56t.IPC() / e56s.IPC()
	slow67 := e67t.IPC() / e67s.IPC()
	if slow67 >= slow56 {
		t.Errorf("EV67 slowdown (%gx) should be smaller than EV56 slowdown (%gx) on independent misses",
			slow67, slow56)
	}
}

func TestEV56MispredictsCostCycles(t *testing.T) {
	// Data-dependent random branches vs a biased branch.
	random := `
main:	lda  r1, 50000
	lda  r2, 12345
loop:	mulq r2, 1103515245, r2
	addq r2, 12345, r2
	srl  r2, 16, r3
	blbs r3, skip
	addq r4, 1, r4
skip:	subq r1, 1, r1
	bgt  r1, loop
	halt
`
	m := NewEV56(DefaultEV56Config())
	runProgram(t, random, 0, m)
	if br := m.BranchMispredictRate(); br < 0.15 {
		t.Errorf("random branch mispredict rate = %g, want > 0.15", br)
	}
}

func TestHPCProfilerVector(t *testing.T) {
	p := NewHPCProfiler()
	runProgram(t, pointerChase, 200_000, p)
	v := p.Vector()
	if v[HPCIPCEV56] <= 0 || v[HPCIPCEV67] <= 0 {
		t.Error("IPC metrics not populated")
	}
	if v[HPCL1DMiss] == 0 {
		t.Error("L1D miss rate zero on hostile workload")
	}
	mixSum := v[HPCPctLoads] + v[HPCPctStores] + v[HPCPctBranches] +
		v[HPCPctArith] + v[HPCPctIntMul] + v[HPCPctFP]
	if mixSum < 0.999 || mixSum > 1.001 {
		t.Errorf("instruction mix sums to %g, want 1", mixSum)
	}
}

func TestHPCMetricNames(t *testing.T) {
	names := HPCMetricNames()
	if len(names) != NumHPCMetrics {
		t.Fatal("name count mismatch")
	}
	seen := map[string]bool{}
	for i, n := range names {
		if n == "" || seen[n] {
			t.Errorf("metric %d has bad name %q", i, n)
		}
		seen[n] = true
	}
	if HPCMetricName(HPCIPCEV56) != "ipc_ev56" {
		t.Error("metric name mapping wrong")
	}
	if HPCMetricName(-1) == "" {
		t.Error("out of range name empty")
	}
}

func TestEV56CyclesMonotoneInInsts(t *testing.T) {
	m := NewEV56(DefaultEV56Config())
	var prev uint64
	ev := trace.Event{PC: isa.CodeBase, Op: isa.OpAddQ, Class: isa.ClassIntArith}
	for i := 0; i < 100; i++ {
		m.Observe(&ev)
		if c := m.Cycles(); c < prev {
			t.Fatalf("cycles decreased: %d -> %d", prev, c)
		} else {
			prev = c
		}
	}
	if m.Insts() != 100 {
		t.Errorf("insts = %d, want 100", m.Insts())
	}
}
