package uarch

import (
	"fmt"

	"mica/internal/isa"
	"mica/internal/trace"
)

// NumHPCMetrics is the dimensionality of the hardware-performance-counter
// characterization: the six EV56 counters of Section III-B, the EV67 IPC,
// and the six instruction-mix fractions the paper folds into the HPC
// characterization for Figure 2.
const NumHPCMetrics = 13

// NumHPCCounterMetrics is the number of true performance-counter metrics
// (the first 7: both IPCs and the five miss/mispredict rates). The
// paper's distance analysis (Figure 1, Table III, Figure 4) is computed
// over these; the instruction-mix tail is used only for the Figure 2
// comparison.
const NumHPCCounterMetrics = 7

// HPC metric indices.
const (
	HPCIPCEV56 = iota
	HPCIPCEV67
	HPCBranchMispredict
	HPCL1DMiss
	HPCL1IMiss
	HPCL2Miss
	HPCDTLBMiss
	HPCPctLoads
	HPCPctStores
	HPCPctBranches
	HPCPctArith
	HPCPctIntMul
	HPCPctFP
)

// HPCVector is one benchmark's microarchitecture-dependent metric vector.
type HPCVector [NumHPCMetrics]float64

var hpcNames = [NumHPCMetrics]string{
	"ipc_ev56",
	"ipc_ev67",
	"branch_mispredict_rate",
	"l1d_miss_rate",
	"l1i_miss_rate",
	"l2_miss_rate",
	"dtlb_miss_rate",
	"pct_loads",
	"pct_stores",
	"pct_branches",
	"pct_arith",
	"pct_int_mul",
	"pct_fp",
}

// HPCMetricName returns the name of HPC metric i.
func HPCMetricName(i int) string {
	if i < 0 || i >= NumHPCMetrics {
		return fmt.Sprintf("hpc(%d)", i)
	}
	return hpcNames[i]
}

// HPCMetricNames returns all HPC metric names in index order.
func HPCMetricNames() []string {
	out := make([]string, NumHPCMetrics)
	copy(out, hpcNames[:])
	return out
}

// HPCProfiler runs both machine models and the instruction-mix counters
// over one dynamic instruction stream in a single pass. It is the
// reproduction's DCPI: attach it to a VM run and call Vector.
type HPCProfiler struct {
	ev56 *EV56
	ev67 *EV67

	classCounts [isa.NumClasses]uint64
	total       uint64
}

// NewHPCProfiler builds a profiler with default machine configurations.
func NewHPCProfiler() *HPCProfiler {
	return &HPCProfiler{ev56: NewEV56(DefaultEV56Config()), ev67: NewEV67(DefaultEV67Config())}
}

// Observe implements trace.Observer.
func (p *HPCProfiler) Observe(ev *trace.Event) {
	p.ev56.Observe(ev)
	p.ev67.Observe(ev)
	p.classCounts[ev.Class]++
	p.total++
}

// EV56 returns the in-order machine model.
func (p *HPCProfiler) EV56() *EV56 { return p.ev56 }

// EV67 returns the out-of-order machine model.
func (p *HPCProfiler) EV67() *EV67 { return p.ev67 }

// Vector assembles the 13-dimensional HPC metric vector.
func (p *HPCProfiler) Vector() HPCVector {
	var v HPCVector
	v[HPCIPCEV56] = p.ev56.IPC()
	v[HPCIPCEV67] = p.ev67.IPC()
	v[HPCBranchMispredict] = p.ev56.BranchMispredictRate()
	v[HPCL1DMiss] = p.ev56.L1DMissRate()
	v[HPCL1IMiss] = p.ev56.L1IMissRate()
	v[HPCL2Miss] = p.ev56.L2MissRate()
	v[HPCDTLBMiss] = p.ev56.DTLBMissRate()
	if p.total > 0 {
		tot := float64(p.total)
		v[HPCPctLoads] = float64(p.classCounts[isa.ClassLoad]) / tot
		v[HPCPctStores] = float64(p.classCounts[isa.ClassStore]) / tot
		v[HPCPctBranches] = float64(p.classCounts[isa.ClassBranch]) / tot
		v[HPCPctArith] = float64(p.classCounts[isa.ClassIntArith]) / tot
		v[HPCPctIntMul] = float64(p.classCounts[isa.ClassIntMul]) / tot
		v[HPCPctFP] = float64(p.classCounts[isa.ClassFP]) / tot
	}
	return v
}
