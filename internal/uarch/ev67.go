package uarch

import (
	"mica/internal/flathash"
	"mica/internal/isa"
	"mica/internal/trace"
	"mica/internal/uarch/bpred"
	"mica/internal/uarch/cache"
)

// EV67Config holds the parameters of the out-of-order model. Defaults
// follow the Alpha 21264A: four-wide, ~80-entry instruction window,
// 64KB 2-way L1 caches, tournament branch predictor.
type EV67Config struct {
	IssueWidth       int
	WindowSize       int
	L1I, L1D, L2     cache.Config
	DTLBEntries      int
	PageBytes        int
	L1DLatency       int // load-to-use latency on an L1 hit
	L2LatencyCycles  int
	MemLatencyCycles int
	TLBMissCycles    int
	MispredictCycles int
	IntMulLatency    int
	FPLatency        int
}

// DefaultEV67Config returns the 21264A-like parameters.
func DefaultEV67Config() EV67Config {
	return EV67Config{
		IssueWidth:       4,
		WindowSize:       80,
		L1I:              cache.Config{Name: "L1I", SizeBytes: 64 << 10, LineBytes: 64, Assoc: 2},
		L1D:              cache.Config{Name: "L1D", SizeBytes: 64 << 10, LineBytes: 64, Assoc: 2},
		L2:               cache.Config{Name: "L2", SizeBytes: 2 << 20, LineBytes: 64, Assoc: 1},
		DTLBEntries:      128,
		PageBytes:        8 << 10,
		L1DLatency:       3,
		L2LatencyCycles:  12,
		MemLatencyCycles: 80,
		TLBMissCycles:    30,
		MispredictCycles: 7,
		IntMulLatency:    7,
		FPLatency:        4,
	}
}

// EV67 is the out-of-order four-wide timing model. It runs a
// window-constrained dataflow simulation: an instruction dispatches when
// (i) the fetch stream has delivered it (issue-width instructions per
// cycle, stalling after mispredicted branches), (ii) a window slot is
// free, and (iii) its register and memory producers have completed. Its
// completion time adds the functional-unit or memory latency. This
// captures the essential difference from the EV56: independent long-
// latency misses overlap.
type EV67 struct {
	cfg  EV67Config
	l1i  *cache.Cache
	l1d  *cache.Cache
	l2   *cache.Cache
	dtlb *cache.Cache
	bp   bpred.Predictor

	regReady [isa.NumRegs]uint64
	memReady *flathash.U64Map
	ring     []uint64
	pos      int
	n        uint64
	maxDone  uint64

	fetchCycle   uint64 // earliest cycle the next instruction can dispatch
	fetchInCycle int    // instructions already dispatched at fetchCycle
}

// NewEV67 builds the out-of-order model.
func NewEV67(cfg EV67Config) *EV67 {
	return &EV67{
		cfg:      cfg,
		l1i:      cache.New(cfg.L1I),
		l1d:      cache.New(cfg.L1D),
		l2:       cache.New(cfg.L2),
		dtlb:     cache.NewTLB("DTLB", cfg.DTLBEntries, cfg.PageBytes),
		bp:       bpred.NewTournament(),
		memReady: flathash.NewU64Map(0),
		ring:     make([]uint64, cfg.WindowSize),
	}
}

// Observe implements trace.Observer.
func (m *EV67) Observe(ev *trace.Event) {
	// Front end: instruction cache and fetch bandwidth.
	if !m.l1i.Access(ev.PC) {
		lat := uint64(m.cfg.MemLatencyCycles)
		if m.l2.Access(ev.PC) {
			lat = uint64(m.cfg.L2LatencyCycles)
		}
		m.fetchCycle += lat
		m.fetchInCycle = 0
	}
	dispatch := m.fetchCycle

	// Window slot: wait for the instruction WindowSize back to finish.
	if m.n >= uint64(m.cfg.WindowSize) {
		if t := m.ring[m.pos]; t > dispatch {
			dispatch = t
		}
	}

	// Register dependencies.
	for i := uint8(0); i < ev.NDepSrc; i++ {
		if t := m.regReady[ev.DepSrc[i]]; t > dispatch {
			dispatch = t
		}
	}

	// Latency by class, including the memory hierarchy for loads.
	lat := uint64(1)
	switch {
	case ev.MemSize > 0:
		if !m.dtlb.Access(ev.MemAddr) {
			lat += uint64(m.cfg.TLBMissCycles)
		}
		if ev.Class == isa.ClassLoad {
			if blkReady, _ := m.memReady.Get(ev.MemAddr >> 3); blkReady > dispatch {
				dispatch = blkReady // store-to-load forwarding delay
			}
			switch {
			case m.l1d.Access(ev.MemAddr):
				lat += uint64(m.cfg.L1DLatency - 1)
			case m.l2.Access(ev.MemAddr):
				lat += uint64(m.cfg.L2LatencyCycles)
			default:
				lat += uint64(m.cfg.MemLatencyCycles)
			}
		} else {
			// Stores retire quickly; they occupy the hierarchy but
			// rarely stall the window.
			if !m.l1d.Access(ev.MemAddr) {
				m.l2.Access(ev.MemAddr)
			}
		}
	case ev.Class == isa.ClassIntMul:
		lat = uint64(m.cfg.IntMulLatency)
	case ev.Class == isa.ClassFP:
		lat = uint64(m.cfg.FPLatency)
	}

	done := dispatch + lat

	if ev.Conditional {
		pred := m.bp.Predict(ev.PC, ev.Taken)
		if pred != ev.Taken {
			// Fetch restarts after the branch resolves plus the
			// redirect penalty.
			m.fetchCycle = done + uint64(m.cfg.MispredictCycles)
			m.fetchInCycle = 0
		}
	}

	if ev.MemSize > 0 && ev.Class == isa.ClassStore {
		m.memReady.Put(ev.MemAddr>>3, done)
	}
	if ev.HasDepDst {
		m.regReady[ev.DepDst] = done
	}
	m.ring[m.pos] = done
	m.pos++
	if m.pos == m.cfg.WindowSize {
		m.pos = 0
	}
	if done > m.maxDone {
		m.maxDone = done
	}
	m.n++

	// Fetch bandwidth: IssueWidth instructions per cycle.
	m.fetchInCycle++
	if m.fetchInCycle >= m.cfg.IssueWidth {
		m.fetchCycle++
		m.fetchInCycle = 0
	}
}

// Cycles returns the modeled total cycle count.
func (m *EV67) Cycles() uint64 { return m.maxDone }

// IPC returns modeled instructions per cycle.
func (m *EV67) IPC() float64 {
	if m.maxDone == 0 {
		return 0
	}
	return float64(m.n) / float64(m.maxDone)
}

// BranchMispredictRate returns mispredictions per conditional branch.
func (m *EV67) BranchMispredictRate() float64 {
	if m.bp.Branches() == 0 {
		return 0
	}
	return float64(m.bp.Mispredicts()) / float64(m.bp.Branches())
}

// Insts returns the number of instructions observed.
func (m *EV67) Insts() uint64 { return m.n }
