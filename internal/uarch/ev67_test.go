package uarch

import (
	"testing"

	"mica/internal/isa"
	"mica/internal/trace"
)

// aluEvent builds an independent single-cycle instruction. PCs cycle
// through a small loop footprint so the I-cache behaves like a warm loop
// body rather than a cold straight-line sweep.
func aluEvent(seq uint64, dst isa.Reg, srcs ...isa.Reg) trace.Event {
	ev := trace.Event{Seq: seq, PC: isa.CodeBase + (seq%64)*4, Op: isa.OpAddQ, Class: isa.ClassIntArith}
	for i, r := range srcs {
		ev.Src[i] = r
	}
	ev.NSrc = uint8(len(srcs))
	ev.Dst, ev.HasDst = dst, true
	ev.DeriveDeps()
	return ev
}

func TestEV67IssueWidthBoundsIPC(t *testing.T) {
	m := NewEV67(DefaultEV67Config())
	for i := uint64(0); i < 10_000; i++ {
		ev := aluEvent(i, isa.IntReg(int(i%8)))
		m.Observe(&ev)
	}
	ipc := m.IPC()
	if ipc > float64(m.cfg.IssueWidth)+1e-9 {
		t.Errorf("IPC %g exceeds issue width %d", ipc, m.cfg.IssueWidth)
	}
	if ipc < float64(m.cfg.IssueWidth)*0.8 {
		t.Errorf("independent ALU stream IPC = %g, want near %d", ipc, m.cfg.IssueWidth)
	}
}

func TestEV67SerialChainIsOneIPC(t *testing.T) {
	m := NewEV67(DefaultEV67Config())
	for i := uint64(0); i < 10_000; i++ {
		ev := aluEvent(i, isa.IntReg(1), isa.IntReg(1))
		m.Observe(&ev)
	}
	if ipc := m.IPC(); ipc > 1.05 {
		t.Errorf("serial chain IPC = %g, want <= ~1", ipc)
	}
}

func TestEV67MulLatencySlowsSerialChain(t *testing.T) {
	run := func(op isa.Op, class isa.Class) float64 {
		m := NewEV67(DefaultEV67Config())
		for i := uint64(0); i < 5_000; i++ {
			ev := trace.Event{Seq: i, PC: isa.CodeBase + (i%64)*4, Op: op, Class: class}
			ev.Src[0], ev.NSrc = isa.IntReg(1), 1
			ev.Dst, ev.HasDst = isa.IntReg(1), true
			ev.DeriveDeps()
			m.Observe(&ev)
		}
		return m.IPC()
	}
	add := run(isa.OpAddQ, isa.ClassIntArith)
	mul := run(isa.OpMulQ, isa.ClassIntMul)
	if mul >= add/3 {
		t.Errorf("serial multiply IPC %g not much below serial add IPC %g", mul, add)
	}
}

func TestEV67MispredictStallsFetch(t *testing.T) {
	run := func(random bool) float64 {
		m := NewEV67(DefaultEV67Config())
		x := uint64(777)
		for i := uint64(0); i < 20_000; i++ {
			taken := true
			if random {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				taken = x&1 == 1
			}
			ev := trace.Event{Seq: i, PC: isa.CodeBase, Op: isa.OpBne,
				Class: isa.ClassBranch, Conditional: true, Taken: taken}
			ev.Src[0], ev.NSrc = isa.IntReg(2), 1
			ev.DeriveDeps()
			m.Observe(&ev)
			alu := aluEvent(i, isa.IntReg(int(i%4)))
			m.Observe(&alu)
		}
		return m.IPC()
	}
	predictable := run(false)
	random := run(true)
	if random >= predictable {
		t.Errorf("random-branch IPC %g not below predictable-branch IPC %g", random, predictable)
	}
}

func TestEV67LoadMissLatencyOverlaps(t *testing.T) {
	// Independent loads to distinct far-apart lines all miss; the OoO
	// window must overlap their latencies, keeping IPC well above the
	// serial-miss bound of 1/MemLatency.
	m := NewEV67(DefaultEV67Config())
	for i := uint64(0); i < 20_000; i++ {
		ev := trace.Event{Seq: i, PC: isa.CodeBase + (i%64)*4, Op: isa.OpLdQ, Class: isa.ClassLoad}
		ev.Src[0], ev.NSrc = isa.IntReg(2), 1
		ev.Dst, ev.HasDst = isa.IntReg(int(3+i%20)), true
		ev.MemAddr, ev.MemSize = 0x100000+i*4096, 8
		ev.DeriveDeps()
		m.Observe(&ev)
	}
	serialBound := 1.0 / float64(m.cfg.MemLatencyCycles)
	if ipc := m.IPC(); ipc < 5*serialBound {
		t.Errorf("independent-miss IPC %g; misses apparently serialized (bound %g)", ipc, serialBound)
	}
}

func TestEV67StoreToLoadForwardingDelays(t *testing.T) {
	// load depends on a just-executed store to the same address: its
	// dispatch is held back.
	m := NewEV67(DefaultEV67Config())
	seq := uint64(0)
	for i := 0; i < 5_000; i++ {
		st := trace.Event{Seq: seq, PC: isa.CodeBase, Op: isa.OpStQ, Class: isa.ClassStore,
			MemAddr: 0x2000, MemSize: 8}
		st.Src[0], st.Src[1], st.NSrc = isa.IntReg(1), isa.IntReg(2), 2
		st.DeriveDeps()
		m.Observe(&st)
		seq++
		ld := trace.Event{Seq: seq, PC: isa.CodeBase + 4, Op: isa.OpLdQ, Class: isa.ClassLoad,
			MemAddr: 0x2000, MemSize: 8}
		ld.Src[0], ld.NSrc = isa.IntReg(1), 1
		ld.Dst, ld.HasDst = isa.IntReg(2), true
		ld.DeriveDeps()
		m.Observe(&ld)
		seq++
	}
	// Every pair serializes store->load: IPC must sit near 2 insts per
	// (1 store + load latency) cycles, clearly below issue width.
	if ipc := m.IPC(); ipc > 1.5 {
		t.Errorf("store-load chain IPC = %g, expected well below issue width", ipc)
	}
}

func TestEV67CountersExposed(t *testing.T) {
	m := NewEV67(DefaultEV67Config())
	ev := aluEvent(0, isa.IntReg(1))
	m.Observe(&ev)
	if m.Insts() != 1 {
		t.Errorf("insts = %d", m.Insts())
	}
	if m.Cycles() == 0 {
		t.Error("cycles = 0 after an instruction")
	}
	if m.BranchMispredictRate() != 0 {
		t.Error("mispredict rate nonzero without branches")
	}
}
