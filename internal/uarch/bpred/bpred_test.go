package bpred

import "testing"

func TestCounter2Saturation(t *testing.T) {
	c := counter2(0)
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 || !c.taken() {
		t.Errorf("counter = %d after saturating up", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c != 0 || c.taken() {
		t.Errorf("counter = %d after saturating down", c)
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(64)
	pc := uint64(0x1000)
	for i := 0; i < 100; i++ {
		b.Predict(pc, true)
	}
	// After warmup, always-taken is predicted perfectly: at most the
	// first 2 predictions wrong.
	if b.Mispredicts() > 2 {
		t.Errorf("mispredicts = %d on always-taken, want <= 2", b.Mispredicts())
	}
	if b.Branches() != 100 {
		t.Errorf("branches = %d, want 100", b.Branches())
	}
}

func TestBimodalAlternatingIsHard(t *testing.T) {
	// A bimodal predictor cannot learn T,N,T,N; it hovers near 50%.
	b := NewBimodal(64)
	pc := uint64(0x1000)
	n := 1000
	for i := 0; i < n; i++ {
		b.Predict(pc, i%2 == 0)
	}
	rate := float64(b.Mispredicts()) / float64(n)
	if rate < 0.4 {
		t.Errorf("bimodal mispredict rate on alternating = %g, want >= 0.4", rate)
	}
}

func TestBimodalAliasing(t *testing.T) {
	// Two branches mapping to different entries do not interfere.
	b := NewBimodal(1024)
	for i := 0; i < 200; i++ {
		b.Predict(0x1000, true)
		b.Predict(0x1010, false)
	}
	if b.Mispredicts() > 4 {
		t.Errorf("mispredicts = %d with two biased branches, want <= 4", b.Mispredicts())
	}
}

func TestTournamentLearnsAlternating(t *testing.T) {
	// The EV67 local history component learns per-branch patterns the
	// bimodal cannot.
	p := NewTournament()
	pc := uint64(0x1000)
	n := 2000
	for i := 0; i < n; i++ {
		p.Predict(pc, i%2 == 0)
	}
	rate := float64(p.Mispredicts()) / float64(n)
	if rate > 0.1 {
		t.Errorf("tournament mispredict rate on alternating = %g, want < 0.1", rate)
	}
}

func TestTournamentLearnsGlobalCorrelation(t *testing.T) {
	// Branch B's outcome equals branch A's previous outcome: global
	// history captures this.
	p := NewTournament()
	x := uint64(98765)
	n := 4000
	wrongB := uint64(0)
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		a := x&1 == 1
		p.Predict(0x1000, a)
		before := p.Mispredicts()
		p.Predict(0x2000, a) // perfectly correlated with previous outcome
		wrongB += p.Mispredicts() - before
	}
	rate := float64(wrongB) / float64(n)
	if rate > 0.15 {
		t.Errorf("correlated-branch mispredict rate = %g, want < 0.15", rate)
	}
}

func TestTournamentRandomNearHalf(t *testing.T) {
	p := NewTournament()
	x := uint64(424242)
	n := 20000
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		p.Predict(0x1000, x&1 == 1)
	}
	rate := float64(p.Mispredicts()) / float64(n)
	if rate < 0.35 || rate > 0.65 {
		t.Errorf("random mispredict rate = %g, want ~0.5", rate)
	}
}

func TestBimodalBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBimodal(100) did not panic")
		}
	}()
	NewBimodal(100)
}
