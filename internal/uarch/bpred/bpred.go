// Package bpred implements the hardware branch predictors of the two
// modeled Alpha machines: the bimodal predictor of the 21164A (EV56) and
// the local/global tournament predictor of the 21264A (EV67). Unlike the
// PPM predictability metrics in package mica, these are finite hardware
// structures and therefore microarchitecture-dependent by design.
package bpred

// Predictor predicts conditional branch outcomes and learns from the
// actual outcome.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc and
	// updates the predictor state with the actual outcome.
	Predict(pc uint64, taken bool) bool
	// Mispredicts returns the number of wrong predictions so far.
	Mispredicts() uint64
	// Branches returns the number of predicted branches.
	Branches() uint64
}

// counter2 is a saturating 2-bit counter; values 0-1 predict not-taken,
// 2-3 predict taken.
type counter2 uint8

func (c counter2) taken() bool { return c >= 2 }

func (c counter2) update(taken bool) counter2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Bimodal is a PC-indexed table of 2-bit counters, as in the EV56's
// instruction-cache-coupled branch history table.
type Bimodal struct {
	table []counter2
	mask  uint64

	branches    uint64
	mispredicts uint64
}

// NewBimodal builds a bimodal predictor with the given number of entries
// (a power of two).
func NewBimodal(entries int) *Bimodal {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("bpred: bimodal entries must be a power of two")
	}
	return &Bimodal{table: make([]counter2, entries), mask: uint64(entries - 1)}
}

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64, taken bool) bool {
	idx := (pc >> 2) & b.mask
	pred := b.table[idx].taken()
	b.table[idx] = b.table[idx].update(taken)
	b.branches++
	if pred != taken {
		b.mispredicts++
	}
	return pred
}

// Mispredicts implements Predictor.
func (b *Bimodal) Mispredicts() uint64 { return b.mispredicts }

// Branches implements Predictor.
func (b *Bimodal) Branches() uint64 { return b.branches }

// counter3 is a saturating 3-bit counter used by the EV67 local
// predictor; values 0-3 predict not-taken, 4-7 taken.
type counter3 uint8

func (c counter3) taken() bool { return c >= 4 }

func (c counter3) update(taken bool) counter3 {
	if taken {
		if c < 7 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Tournament models the EV67 (21264) predictor: a 1K x 10-bit local
// history table feeding 1K 3-bit counters, a 4K 2-bit global predictor
// indexed by 12 bits of global history, and a 4K 2-bit chooser that picks
// between them per branch.
type Tournament struct {
	localHist  []uint16 // 10-bit local histories
	localPred  []counter3
	globalPred []counter2
	chooser    []counter2
	ghist      uint64

	branches    uint64
	mispredicts uint64
}

// Tournament structure sizes (the EV67 values).
const (
	localHistEntries = 1024
	localHistBits    = 10
	globalEntries    = 4096
	globalHistBits   = 12
)

// NewTournament builds the EV67 tournament predictor.
func NewTournament() *Tournament {
	return &Tournament{
		localHist:  make([]uint16, localHistEntries),
		localPred:  make([]counter3, localHistEntries),
		globalPred: make([]counter2, globalEntries),
		chooser:    make([]counter2, globalEntries),
	}
}

// Predict implements Predictor.
func (t *Tournament) Predict(pc uint64, taken bool) bool {
	lhIdx := (pc >> 2) & (localHistEntries - 1)
	lh := t.localHist[lhIdx] & (1<<localHistBits - 1)
	localPred := t.localPred[lh&(localHistEntries-1)].taken()

	gIdx := t.ghist & (globalEntries - 1)
	globalPred := t.globalPred[gIdx].taken()

	useGlobal := t.chooser[gIdx].taken()
	pred := localPred
	if useGlobal {
		pred = globalPred
	}

	// Update chooser toward whichever component was right (when they
	// disagree).
	if localPred != globalPred {
		t.chooser[gIdx] = t.chooser[gIdx].update(globalPred == taken)
	}
	t.localPred[lh&(localHistEntries-1)] = t.localPred[lh&(localHistEntries-1)].update(taken)
	t.globalPred[gIdx] = t.globalPred[gIdx].update(taken)

	bit := uint16(0)
	if taken {
		bit = 1
	}
	t.localHist[lhIdx] = (t.localHist[lhIdx]<<1 | bit) & (1<<localHistBits - 1)
	gbit := uint64(0)
	if taken {
		gbit = 1
	}
	t.ghist = (t.ghist<<1 | gbit) & (1<<globalHistBits - 1)

	t.branches++
	if pred != taken {
		t.mispredicts++
	}
	return pred
}

// Mispredicts implements Predictor.
func (t *Tournament) Mispredicts() uint64 { return t.mispredicts }

// Branches implements Predictor.
func (t *Tournament) Branches() uint64 { return t.branches }
