package isa

import (
	"testing"
	"testing/quick"
)

func TestRegNaming(t *testing.T) {
	cases := []struct {
		reg  Reg
		want string
	}{
		{IntReg(0), "r0"},
		{IntReg(31), "r31"},
		{FPReg(0), "f0"},
		{FPReg(31), "f31"},
		{RegSP, "r30"},
		{RegRA, "r26"},
	}
	for _, c := range cases {
		if got := c.reg.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", c.reg, got, c.want)
		}
	}
}

func TestRegZero(t *testing.T) {
	if !RegZero.IsZero() || !RegFZero.IsZero() {
		t.Error("hardwired zero registers not recognized")
	}
	if IntReg(5).IsZero() || FPReg(7).IsZero() {
		t.Error("ordinary registers reported as zero registers")
	}
	if RegZero.IsFP() {
		t.Error("r31 reported as FP")
	}
	if !RegFZero.IsFP() {
		t.Error("f31 not reported as FP")
	}
}

func TestRegIndexRoundTrip(t *testing.T) {
	f := func(n uint8) bool {
		i := int(n % 32)
		return IntReg(i).Index() == i && FPReg(i).Index() == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntRegPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("IntReg(32) did not panic")
		}
	}()
	IntReg(32)
}

func TestOpClasses(t *testing.T) {
	cases := []struct {
		op   Op
		want Class
	}{
		{OpAddQ, ClassIntArith},
		{OpLda, ClassIntArith},
		{OpMulQ, ClassIntMul},
		{OpDivQ, ClassIntMul},
		{OpAddT, ClassFP},
		{OpSqrtT, ClassFP},
		{OpItofT, ClassFP},
		{OpLdQ, ClassLoad},
		{OpLdT, ClassLoad},
		{OpStB, ClassStore},
		{OpBeq, ClassBranch},
		{OpJsr, ClassBranch},
		{OpRet, ClassBranch},
		{OpHalt, ClassOther},
	}
	for _, c := range cases {
		if got := c.op.Class(); got != c.want {
			t.Errorf("%s.Class() = %s, want %s", c.op, got, c.want)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpLdQ.IsLoad() || OpLdQ.IsStore() {
		t.Error("ldq load/store predicates wrong")
	}
	if !OpStT.IsStore() || OpStT.IsLoad() {
		t.Error("stt load/store predicates wrong")
	}
	if !OpBeq.IsConditional() || OpBr.IsConditional() {
		t.Error("conditional predicates wrong")
	}
	if !OpJmp.IsBranch() {
		t.Error("jmp not a branch")
	}
}

func TestOpMemSizes(t *testing.T) {
	cases := map[Op]uint8{
		OpLdQ: 8, OpLdL: 4, OpLdWU: 2, OpLdBU: 1,
		OpStQ: 8, OpStL: 4, OpStW: 2, OpStB: 1,
		OpLdT: 8, OpLdS: 4, OpStT: 8, OpStS: 4,
		OpAddQ: 0, OpBeq: 0,
	}
	for op, want := range cases {
		if got := op.MemSize(); got != want {
			t.Errorf("%s.MemSize() = %d, want %d", op, got, want)
		}
	}
}

func TestOpByNameCoversAllOps(t *testing.T) {
	for op := Op(1); op < numOps; op++ {
		got, ok := OpByName(op.Name())
		if !ok {
			t.Errorf("OpByName(%q) not found", op.Name())
			continue
		}
		if got != op {
			t.Errorf("OpByName(%q) = %v, want %v", op.Name(), got, op)
		}
	}
	if _, ok := OpByName("bogus"); ok {
		t.Error(`OpByName("bogus") succeeded`)
	}
}

func TestPCIndexRoundTrip(t *testing.T) {
	f := func(n uint16) bool {
		i := int(n)
		return IndexForPC(PCForIndex(i)) == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSrcDstRegs(t *testing.T) {
	cases := []struct {
		name    string
		inst    Inst
		wantSrc []Reg
		wantDst Reg
		hasDst  bool
	}{
		{
			name:    "operate reg form",
			inst:    Inst{Op: OpAddQ, Ra: IntReg(1), Rb: IntReg(2), Rc: IntReg(3)},
			wantSrc: []Reg{IntReg(1), IntReg(2)},
			wantDst: IntReg(3), hasDst: true,
		},
		{
			name:    "operate imm form",
			inst:    Inst{Op: OpAddQ, Ra: IntReg(1), Rc: IntReg(3), Imm: 7, HasImm: true},
			wantSrc: []Reg{IntReg(1)},
			wantDst: IntReg(3), hasDst: true,
		},
		{
			name:    "load",
			inst:    Inst{Op: OpLdQ, Ra: IntReg(4), Rb: IntReg(5), Imm: 8},
			wantSrc: []Reg{IntReg(5)},
			wantDst: IntReg(4), hasDst: true,
		},
		{
			name:    "store",
			inst:    Inst{Op: OpStQ, Ra: IntReg(4), Rb: IntReg(5), Imm: 8},
			wantSrc: []Reg{IntReg(5), IntReg(4)},
			hasDst:  false,
		},
		{
			name:    "conditional branch",
			inst:    Inst{Op: OpBne, Ra: IntReg(6), Target: 3},
			wantSrc: []Reg{IntReg(6)},
			hasDst:  false,
		},
		{
			name:    "unconditional branch links",
			inst:    Inst{Op: OpBr, Ra: RegZero, Target: 3},
			wantSrc: nil,
			wantDst: RegZero, hasDst: true,
		},
		{
			name:    "jsr",
			inst:    Inst{Op: OpJsr, Ra: RegRA, Rb: IntReg(9)},
			wantSrc: []Reg{IntReg(9)},
			wantDst: RegRA, hasDst: true,
		},
		{
			name:    "fp unary",
			inst:    Inst{Op: OpSqrtT, Rb: FPReg(1), Rc: FPReg(2)},
			wantSrc: []Reg{FPReg(1)},
			wantDst: FPReg(2), hasDst: true,
		},
		{
			name:    "lea from zero has no sources",
			inst:    Inst{Op: OpLda, Ra: IntReg(1), Rb: RegZero, Imm: 100},
			wantSrc: nil,
			wantDst: IntReg(1), hasDst: true,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			src := c.inst.SrcRegs(nil)
			if len(src) != len(c.wantSrc) {
				t.Fatalf("SrcRegs = %v, want %v", src, c.wantSrc)
			}
			for i := range src {
				if src[i] != c.wantSrc[i] {
					t.Fatalf("SrcRegs = %v, want %v", src, c.wantSrc)
				}
			}
			dst, ok := c.inst.DstReg()
			if ok != c.hasDst {
				t.Fatalf("DstReg ok = %v, want %v", ok, c.hasDst)
			}
			if ok && dst != c.wantDst {
				t.Fatalf("DstReg = %v, want %v", dst, c.wantDst)
			}
		})
	}
}

func TestInstString(t *testing.T) {
	in := Inst{Op: OpAddQ, Ra: IntReg(1), Imm: 5, HasImm: true, Rc: IntReg(2)}
	if got, want := in.String(), "addq r1, 5, r2"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	ld := Inst{Op: OpLdQ, Ra: IntReg(3), Rb: IntReg(4), Imm: 16}
	if got, want := ld.String(), "ldq r3, 16(r4)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestProgramSymbols(t *testing.T) {
	p := &Program{Name: "t", Symbols: map[string]uint64{"x": 42}}
	if addr, err := p.Symbol("x"); err != nil || addr != 42 {
		t.Errorf("Symbol(x) = %d, %v", addr, err)
	}
	if _, err := p.Symbol("y"); err == nil {
		t.Error("Symbol(y) did not fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSymbol on missing label did not panic")
		}
	}()
	p.MustSymbol("y")
}
