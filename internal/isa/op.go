package isa

import "fmt"

// Class categorizes an instruction for the purposes of the paper's
// instruction-mix characterization (Table II, characteristics 1-6).
type Class uint8

// Instruction classes. Control transfers cover conditional branches,
// unconditional branches, indirect jumps, calls and returns. Integer
// multiplies are split from other integer arithmetic exactly as the paper
// splits "percentage integer multiplies" from "percentage arithmetic
// operations".
const (
	ClassIntArith Class = iota // integer ALU, address computation, compares
	ClassIntMul                // integer multiply/divide
	ClassFP                    // floating-point operations
	ClassLoad                  // memory loads (integer and FP)
	ClassStore                 // memory stores (integer and FP)
	ClassBranch                // control transfers
	ClassOther                 // halt and other non-mix instructions
	numClasses
)

// NumClasses is the number of instruction classes.
const NumClasses = int(numClasses)

// String returns a short human-readable class name.
func (c Class) String() string {
	switch c {
	case ClassIntArith:
		return "arith"
	case ClassIntMul:
		return "imul"
	case ClassFP:
		return "fp"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	case ClassOther:
		return "other"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Format describes the operand encoding of an opcode.
type Format uint8

// Operand formats.
const (
	FmtOperate Format = iota // rc = ra OP (rb | imm)
	FmtFPUnary               // fc = OP fb (sqrt, cvt, mov)
	FmtMem                   // ra, disp(rb): loads and stores
	FmtLea                   // lda ra, disp(rb) or lda ra, symbol
	FmtBranch                // conditional/unconditional PC-relative branch
	FmtJump                  // jmp/jsr/ret via register
	FmtMisc                  // halt, nop
)

// Op enumerates the opcodes of the synthetic ISA.
type Op uint8

// Opcodes. The mnemonics follow Alpha conventions: the Q suffix means
// 64-bit ("quadword"), L means 32-bit ("longword"), T means IEEE double
// ("T floating").
const (
	OpInvalid Op = iota

	// Integer arithmetic (ClassIntArith).
	OpAddQ
	OpSubQ
	OpAnd
	OpBic // and-not
	OpOr
	OpOrnot
	OpXor
	OpSll
	OpSrl
	OpSra
	OpCmpEq
	OpCmpLt
	OpCmpLe
	OpCmpULt
	OpCmpULe
	OpS4AddQ // scaled add: rc = 4*ra + rb
	OpS8AddQ // scaled add: rc = 8*ra + rb
	OpLda    // address/immediate computation
	OpSextL  // sign-extend low 32 bits

	// Integer multiply / divide (ClassIntMul).
	OpMulQ
	OpUMulH // high 64 bits of unsigned 128-bit product
	OpDivQ  // quotient (not on real Alpha; classed with multiplies)
	OpRemQ  // remainder

	// Floating point (ClassFP).
	OpAddT
	OpSubT
	OpMulT
	OpDivT
	OpSqrtT
	OpCmpTEq
	OpCmpTLt
	OpCmpTLe
	OpCvtQT // int -> double (fc = double(rb as int bits from fb))
	OpCvtTQ // double -> int (truncate)
	OpFMov  // fc = fb
	OpFNeg  // fc = -fb
	OpFAbs  // fc = |fb|
	OpItofT // fc = bits of rb (int reg -> fp reg move, as on EV6)
	OpFtoiT // rc = bits of fb (fp reg -> int reg move)

	// Loads (ClassLoad).
	OpLdQ  // 64-bit integer load
	OpLdL  // 32-bit sign-extending integer load
	OpLdBU // 8-bit zero-extending load
	OpLdWU // 16-bit zero-extending load
	OpLdT  // 64-bit FP load
	OpLdS  // 32-bit FP load

	// Stores (ClassStore).
	OpStQ
	OpStL
	OpStB
	OpStW
	OpStT
	OpStS

	// Control transfers (ClassBranch).
	OpBeq  // branch if ra == 0
	OpBne  // branch if ra != 0
	OpBlt  // branch if ra < 0 (signed)
	OpBle  // branch if ra <= 0
	OpBgt  // branch if ra > 0
	OpBge  // branch if ra >= 0
	OpBlbc // branch if low bit clear
	OpBlbs // branch if low bit set
	OpFBeq // branch if fa == 0.0
	OpFBne // branch if fa != 0.0
	OpFBlt // branch if fa < 0.0
	OpFBge // branch if fa >= 0.0
	OpBr   // unconditional branch, ra gets return address
	OpBsr  // branch subroutine (same as br; kept for readability)
	OpJmp  // indirect jump via rb
	OpJsr  // indirect call via rb, ra gets return address
	OpRet  // return via rb

	// Miscellaneous (ClassOther).
	OpHalt
	OpNop

	numOps
)

// NumOps is the number of defined opcodes (excluding OpInvalid).
const NumOps = int(numOps)

type opInfo struct {
	name   string
	class  Class
	format Format
	// memSize is the access width in bytes for loads/stores, else 0.
	memSize uint8
	// fp marks operate-format instructions whose register operands live
	// in the FP register file.
	fp bool
}

var opTable = [numOps]opInfo{
	OpInvalid: {"invalid", ClassOther, FmtMisc, 0, false},

	OpAddQ:   {"addq", ClassIntArith, FmtOperate, 0, false},
	OpSubQ:   {"subq", ClassIntArith, FmtOperate, 0, false},
	OpAnd:    {"and", ClassIntArith, FmtOperate, 0, false},
	OpBic:    {"bic", ClassIntArith, FmtOperate, 0, false},
	OpOr:     {"or", ClassIntArith, FmtOperate, 0, false},
	OpOrnot:  {"ornot", ClassIntArith, FmtOperate, 0, false},
	OpXor:    {"xor", ClassIntArith, FmtOperate, 0, false},
	OpSll:    {"sll", ClassIntArith, FmtOperate, 0, false},
	OpSrl:    {"srl", ClassIntArith, FmtOperate, 0, false},
	OpSra:    {"sra", ClassIntArith, FmtOperate, 0, false},
	OpCmpEq:  {"cmpeq", ClassIntArith, FmtOperate, 0, false},
	OpCmpLt:  {"cmplt", ClassIntArith, FmtOperate, 0, false},
	OpCmpLe:  {"cmple", ClassIntArith, FmtOperate, 0, false},
	OpCmpULt: {"cmpult", ClassIntArith, FmtOperate, 0, false},
	OpCmpULe: {"cmpule", ClassIntArith, FmtOperate, 0, false},
	OpS4AddQ: {"s4addq", ClassIntArith, FmtOperate, 0, false},
	OpS8AddQ: {"s8addq", ClassIntArith, FmtOperate, 0, false},
	OpLda:    {"lda", ClassIntArith, FmtLea, 0, false},
	OpSextL:  {"sextl", ClassIntArith, FmtOperate, 0, false},

	OpMulQ:  {"mulq", ClassIntMul, FmtOperate, 0, false},
	OpUMulH: {"umulh", ClassIntMul, FmtOperate, 0, false},
	OpDivQ:  {"divq", ClassIntMul, FmtOperate, 0, false},
	OpRemQ:  {"remq", ClassIntMul, FmtOperate, 0, false},

	OpAddT:   {"addt", ClassFP, FmtOperate, 0, true},
	OpSubT:   {"subt", ClassFP, FmtOperate, 0, true},
	OpMulT:   {"mult", ClassFP, FmtOperate, 0, true},
	OpDivT:   {"divt", ClassFP, FmtOperate, 0, true},
	OpSqrtT:  {"sqrtt", ClassFP, FmtFPUnary, 0, true},
	OpCmpTEq: {"cmpteq", ClassFP, FmtOperate, 0, true},
	OpCmpTLt: {"cmptlt", ClassFP, FmtOperate, 0, true},
	OpCmpTLe: {"cmptle", ClassFP, FmtOperate, 0, true},
	OpCvtQT:  {"cvtqt", ClassFP, FmtFPUnary, 0, true},
	OpCvtTQ:  {"cvttq", ClassFP, FmtFPUnary, 0, true},
	OpFMov:   {"fmov", ClassFP, FmtFPUnary, 0, true},
	OpFNeg:   {"fneg", ClassFP, FmtFPUnary, 0, true},
	OpFAbs:   {"fabs", ClassFP, FmtFPUnary, 0, true},
	OpItofT:  {"itoft", ClassFP, FmtFPUnary, 0, true},
	OpFtoiT:  {"ftoit", ClassFP, FmtFPUnary, 0, true},

	OpLdQ:  {"ldq", ClassLoad, FmtMem, 8, false},
	OpLdL:  {"ldl", ClassLoad, FmtMem, 4, false},
	OpLdBU: {"ldbu", ClassLoad, FmtMem, 1, false},
	OpLdWU: {"ldwu", ClassLoad, FmtMem, 2, false},
	OpLdT:  {"ldt", ClassLoad, FmtMem, 8, true},
	OpLdS:  {"lds", ClassLoad, FmtMem, 4, true},

	OpStQ: {"stq", ClassStore, FmtMem, 8, false},
	OpStL: {"stl", ClassStore, FmtMem, 4, false},
	OpStB: {"stb", ClassStore, FmtMem, 1, false},
	OpStW: {"stw", ClassStore, FmtMem, 2, false},
	OpStT: {"stt", ClassStore, FmtMem, 8, true},
	OpStS: {"sts", ClassStore, FmtMem, 4, true},

	OpBeq:  {"beq", ClassBranch, FmtBranch, 0, false},
	OpBne:  {"bne", ClassBranch, FmtBranch, 0, false},
	OpBlt:  {"blt", ClassBranch, FmtBranch, 0, false},
	OpBle:  {"ble", ClassBranch, FmtBranch, 0, false},
	OpBgt:  {"bgt", ClassBranch, FmtBranch, 0, false},
	OpBge:  {"bge", ClassBranch, FmtBranch, 0, false},
	OpBlbc: {"blbc", ClassBranch, FmtBranch, 0, false},
	OpBlbs: {"blbs", ClassBranch, FmtBranch, 0, false},
	OpFBeq: {"fbeq", ClassBranch, FmtBranch, 0, true},
	OpFBne: {"fbne", ClassBranch, FmtBranch, 0, true},
	OpFBlt: {"fblt", ClassBranch, FmtBranch, 0, true},
	OpFBge: {"fbge", ClassBranch, FmtBranch, 0, true},
	OpBr:   {"br", ClassBranch, FmtBranch, 0, false},
	OpBsr:  {"bsr", ClassBranch, FmtBranch, 0, false},
	OpJmp:  {"jmp", ClassBranch, FmtJump, 0, false},
	OpJsr:  {"jsr", ClassBranch, FmtJump, 0, false},
	OpRet:  {"ret", ClassBranch, FmtJump, 0, false},

	OpHalt: {"halt", ClassOther, FmtMisc, 0, false},
	OpNop:  {"nop", ClassOther, FmtMisc, 0, false},
}

// Name returns the assembler mnemonic of op.
func (op Op) Name() string {
	if op >= numOps {
		return fmt.Sprintf("op(%d)", uint8(op))
	}
	return opTable[op].name
}

// String implements fmt.Stringer.
func (op Op) String() string { return op.Name() }

// Class returns the instruction-mix class of op.
func (op Op) Class() Class {
	if op >= numOps {
		return ClassOther
	}
	return opTable[op].class
}

// Format returns the operand format of op.
func (op Op) Format() Format {
	if op >= numOps {
		return FmtMisc
	}
	return opTable[op].format
}

// MemSize returns the memory access width in bytes for loads and stores,
// and 0 for all other opcodes.
func (op Op) MemSize() uint8 {
	if op >= numOps {
		return 0
	}
	return opTable[op].memSize
}

// IsFPRegs reports whether the opcode's register operands live in the FP
// register file.
func (op Op) IsFPRegs() bool {
	if op >= numOps {
		return false
	}
	return opTable[op].fp
}

// IsLoad reports whether op reads memory.
func (op Op) IsLoad() bool { return op.Class() == ClassLoad }

// IsStore reports whether op writes memory.
func (op Op) IsStore() bool { return op.Class() == ClassStore }

// IsBranch reports whether op is a control transfer.
func (op Op) IsBranch() bool { return op.Class() == ClassBranch }

// IsConditional reports whether op is a conditional control transfer.
func (op Op) IsConditional() bool {
	switch op {
	case OpBeq, OpBne, OpBlt, OpBle, OpBgt, OpBge, OpBlbc, OpBlbs,
		OpFBeq, OpFBne, OpFBlt, OpFBge:
		return true
	}
	return false
}

// OpByName maps an assembler mnemonic to its opcode. The second result is
// false if the mnemonic is unknown.
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}

var opsByName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op := Op(1); op < numOps; op++ {
		m[opTable[op].name] = op
	}
	return m
}()
