// Package isa defines the synthetic 64-bit Alpha-style RISC instruction set
// executed by the VM substrate. The instruction set is deliberately close in
// spirit to the Alpha ISA used in the paper: a load/store architecture with
// 32 integer and 32 floating-point registers, register-zero hardwired to
// zero, and instruction classes that map one-to-one onto the paper's
// instruction-mix categories (loads, stores, control transfers, integer
// arithmetic, integer multiplies, floating-point operations).
package isa

import "fmt"

// Reg identifies a register in a unified namespace: values 0..31 are the
// integer registers r0..r31, values 32..63 are the floating-point registers
// f0..f31. r31 and f31 read as zero and ignore writes, as on Alpha.
type Reg uint8

// NumIntRegs and NumFPRegs give the architectural register file sizes.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
	NumRegs    = NumIntRegs + NumFPRegs
)

// Distinguished registers.
const (
	// RegZero is the hardwired integer zero register (r31).
	RegZero Reg = 31
	// RegFZero is the hardwired floating-point zero register (f31).
	RegFZero Reg = 63
	// RegSP is the conventional stack pointer (r30).
	RegSP Reg = 30
	// RegRA is the conventional return-address register (r26), matching
	// Alpha calling conventions.
	RegRA Reg = 26
	// RegInvalid marks an absent register operand.
	RegInvalid Reg = 255
)

// IntReg returns the Reg for integer register i (0..31).
func IntReg(i int) Reg {
	if i < 0 || i >= NumIntRegs {
		panic(fmt.Sprintf("isa: integer register index %d out of range", i))
	}
	return Reg(i)
}

// FPReg returns the Reg for floating-point register i (0..31).
func FPReg(i int) Reg {
	if i < 0 || i >= NumFPRegs {
		panic(fmt.Sprintf("isa: fp register index %d out of range", i))
	}
	return Reg(NumIntRegs + i)
}

// IsFP reports whether r names a floating-point register.
func (r Reg) IsFP() bool { return r >= NumIntRegs && r < NumRegs }

// IsZero reports whether r is one of the hardwired zero registers.
func (r Reg) IsZero() bool { return r == RegZero || r == RegFZero }

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// Index returns the index of r within its register file (0..31).
func (r Reg) Index() int {
	if r.IsFP() {
		return int(r) - NumIntRegs
	}
	return int(r)
}

// String returns the assembler name of the register ("r7", "f12").
func (r Reg) String() string {
	switch {
	case !r.Valid():
		return "r?"
	case r.IsFP():
		return fmt.Sprintf("f%d", r.Index())
	default:
		return fmt.Sprintf("r%d", r.Index())
	}
}
