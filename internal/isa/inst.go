package isa

import (
	"fmt"
	"strings"
	"sync"
)

// CodeBase is the byte address of the first instruction. Instruction i
// lives at CodeBase + 4*i, giving the instruction stream a realistic byte
// address layout for working-set analysis (32-byte blocks, 4KB pages).
const CodeBase uint64 = 0x0000_0000_0001_0000

// InstBytes is the encoded size of one instruction.
const InstBytes = 4

// PCForIndex returns the byte address of the instruction at index i.
func PCForIndex(i int) uint64 { return CodeBase + uint64(i)*InstBytes }

// IndexForPC returns the instruction index for a code byte address.
func IndexForPC(pc uint64) int { return int((pc - CodeBase) / InstBytes) }

// Inst is one decoded instruction. Operand meaning depends on the opcode
// format:
//
//   - FmtOperate: Rc = Ra op (Rb or Imm if HasImm)
//   - FmtFPUnary: Rc = op Rb
//   - FmtMem:     Ra <-> memory[Rb + Imm]
//   - FmtLea:     Ra = Rb + Imm (Rb may be RegZero for absolute addresses)
//   - FmtBranch:  test Ra, target instruction index Target
//   - FmtJump:    jump to Rb, link in Ra
type Inst struct {
	Op     Op
	Ra     Reg
	Rb     Reg
	Rc     Reg
	Imm    int64
	HasImm bool
	// Target is the branch target as an instruction index, resolved by
	// the assembler.
	Target int
	// Line is the 1-based source line the instruction came from, for
	// diagnostics; 0 when built programmatically.
	Line int
	// Meta is the decode-time metadata, filled by Program.Finalize (the
	// assembler and vm.New both call it). The interpreter and the
	// per-retired-instruction event stream copy these fields instead of
	// re-deriving them once per dynamic instruction.
	Meta InstMeta
}

// InstMeta caches every per-static-instruction property the hot path
// needs: operand registers, class, format and memory width. It is
// derived entirely from the architectural fields by Decode.
type InstMeta struct {
	// Src and NSrc are the architectural source registers, as produced
	// by SrcRegs.
	Src  [3]Reg
	NSrc uint8
	// Dst and HasDst are the destination register, as produced by
	// DstReg.
	Dst    Reg
	HasDst bool
	// DepSrc and NDepSrc are the source registers that carry true
	// dependencies: Src with the hardwired zero registers filtered out.
	DepSrc  [3]Reg
	NDepSrc uint8
	// DepDst is the destination register when it carries a true
	// dependency (HasDst with zero registers filtered), else RegInvalid
	// with HasDepDst false.
	DepDst    Reg
	HasDepDst bool
	// Class caches Op.Class(), Fmt caches Op.Format().
	Class Class
	Fmt   Format
	// MemSize caches Op.MemSize(): access width in bytes, 0 for
	// non-memory instructions.
	MemSize uint8
	// Conditional caches Op.IsConditional().
	Conditional bool
	// FPRegs caches Op.IsFPRegs().
	FPRegs bool
	// Load caches Op.IsLoad().
	Load bool
}

// Decode fills in.Meta from the architectural fields. It is idempotent;
// Program.Finalize applies it to every instruction.
func (in *Inst) Decode() {
	m := &in.Meta
	m.Src = [3]Reg{}
	srcs := in.SrcRegs(m.Src[:0])
	m.NSrc = uint8(len(srcs))
	if dst, ok := in.DstReg(); ok {
		m.Dst, m.HasDst = dst, true
	} else {
		m.Dst, m.HasDst = RegInvalid, false
	}
	m.DepSrc = [3]Reg{}
	m.NDepSrc = 0
	for _, r := range srcs {
		if !r.IsZero() {
			m.DepSrc[m.NDepSrc] = r
			m.NDepSrc++
		}
	}
	if m.HasDst && !m.Dst.IsZero() {
		m.DepDst, m.HasDepDst = m.Dst, true
	} else {
		m.DepDst, m.HasDepDst = RegInvalid, false
	}
	m.Class = in.Op.Class()
	m.Fmt = in.Op.Format()
	m.MemSize = in.Op.MemSize()
	m.Conditional = in.Op.IsConditional()
	m.FPRegs = in.Op.IsFPRegs()
	m.Load = in.Op.IsLoad()
}

// SrcRegs appends the source registers of the instruction to buf and
// returns the extended slice. Hardwired zero registers are included (they
// are architecturally read); callers that care about true dependencies
// filter them with Reg.IsZero.
func (in *Inst) SrcRegs(buf []Reg) []Reg {
	switch in.Op.Format() {
	case FmtOperate:
		buf = append(buf, in.Ra)
		if !in.HasImm {
			buf = append(buf, in.Rb)
		}
	case FmtFPUnary:
		buf = append(buf, in.Rb)
	case FmtMem:
		buf = append(buf, in.Rb) // base address
		if in.Op.IsStore() {
			buf = append(buf, in.Ra) // stored value
		}
	case FmtLea:
		if in.Rb != RegZero {
			buf = append(buf, in.Rb)
		}
	case FmtBranch:
		if in.Op.IsConditional() {
			buf = append(buf, in.Ra)
		}
	case FmtJump:
		buf = append(buf, in.Rb)
	}
	return buf
}

// DstReg returns the destination register of the instruction and whether
// one exists. Writes to the zero registers are reported (the instruction
// still architecturally names them); callers filter with Reg.IsZero.
func (in *Inst) DstReg() (Reg, bool) {
	switch in.Op.Format() {
	case FmtOperate, FmtFPUnary:
		return in.Rc, true
	case FmtMem:
		if in.Op.IsLoad() {
			return in.Ra, true
		}
		return RegInvalid, false
	case FmtLea:
		return in.Ra, true
	case FmtBranch:
		if in.Op == OpBr || in.Op == OpBsr {
			return in.Ra, true
		}
		return RegInvalid, false
	case FmtJump:
		if in.Op == OpJsr {
			return in.Ra, true
		}
		return RegInvalid, false
	}
	return RegInvalid, false
}

// String renders the instruction in assembler syntax.
func (in *Inst) String() string {
	var b strings.Builder
	b.WriteString(in.Op.Name())
	switch in.Op.Format() {
	case FmtOperate:
		if in.HasImm {
			fmt.Fprintf(&b, " %s, %d, %s", in.Ra, in.Imm, in.Rc)
		} else {
			fmt.Fprintf(&b, " %s, %s, %s", in.Ra, in.Rb, in.Rc)
		}
	case FmtFPUnary:
		fmt.Fprintf(&b, " %s, %s", in.Rb, in.Rc)
	case FmtMem:
		fmt.Fprintf(&b, " %s, %d(%s)", in.Ra, in.Imm, in.Rb)
	case FmtLea:
		fmt.Fprintf(&b, " %s, %d(%s)", in.Ra, in.Imm, in.Rb)
	case FmtBranch:
		if in.Op.IsConditional() {
			fmt.Fprintf(&b, " %s, @%d", in.Ra, in.Target)
		} else {
			fmt.Fprintf(&b, " @%d", in.Target)
		}
	case FmtJump:
		if in.Op == OpJsr {
			fmt.Fprintf(&b, " %s, (%s)", in.Ra, in.Rb)
		} else {
			fmt.Fprintf(&b, " (%s)", in.Rb)
		}
	}
	return b.String()
}

// Program is an assembled program: its instructions, initialized data
// segment, and symbol table.
type Program struct {
	// Name identifies the program for diagnostics.
	Name string
	// Insts is the instruction sequence; execution starts at Entry.
	Insts []Inst
	// Entry is the instruction index where execution starts.
	Entry int
	// Data is the initialized data segment, loaded at DataBase.
	Data []byte
	// DataBase is the load address of the data segment.
	DataBase uint64
	// Symbols maps labels (both code and data) to byte addresses.
	Symbols map[string]uint64

	// finalizeOnce guards Finalize: kernel programs are shared by every
	// Machine instantiated from them, and profiling runs machines in
	// parallel, so the metadata decode must happen exactly once.
	finalizeOnce sync.Once
}

// DefaultDataBase is the default load address of the data segment, placed
// well away from the code so instruction and data working sets do not
// alias at page granularity.
const DefaultDataBase uint64 = 0x0000_0000_1000_0000

// Finalize decodes every instruction's metadata. The assembler calls it
// on assembled programs and vm.New calls it again, so hand-built Program
// literals in tests and generators are covered too. The decode runs
// exactly once per Program (concurrent callers block until it is done):
// kernel programs are shared across all machines instantiated from them,
// including machines running in parallel profiling workers.
func (p *Program) Finalize() {
	p.finalizeOnce.Do(func() {
		for i := range p.Insts {
			p.Insts[i].Decode()
		}
	})
}

// Symbol returns the address of a label, or an error naming the program
// and label if it is not defined.
func (p *Program) Symbol(name string) (uint64, error) {
	addr, ok := p.Symbols[name]
	if !ok {
		return 0, fmt.Errorf("isa: program %q has no symbol %q", p.Name, name)
	}
	return addr, nil
}

// MustSymbol is Symbol but panics on unknown labels. Intended for kernel
// setup code where a missing label is a programming error.
func (p *Program) MustSymbol(name string) uint64 {
	addr, err := p.Symbol(name)
	if err != nil {
		panic(err)
	}
	return addr
}
