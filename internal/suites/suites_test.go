package suites

import (
	"errors"
	"sync"
	"testing"

	"mica/internal/kernels"
	"mica/internal/vm"
)

func TestExactly122Benchmarks(t *testing.T) {
	if Count() != 122 {
		t.Fatalf("registry has %d benchmarks, Table I has 122", Count())
	}
}

func TestSuiteSizesMatchTableI(t *testing.T) {
	want := map[string]int{
		BioInfoMark:        12,
		BioMetricsWorkload: 8,
		CommBench:          12,
		MediaBench:         12,
		MiBench:            30,
		SPEC:               48,
	}
	total := 0
	for suite, n := range want {
		got := len(BySuite(suite))
		if got != n {
			t.Errorf("%s has %d benchmarks, want %d", suite, got, n)
		}
		total += got
	}
	if total != Count() {
		t.Errorf("suite sizes sum to %d, registry has %d", total, Count())
	}
}

func TestNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range All() {
		n := b.Name()
		if seen[n] {
			t.Errorf("duplicate benchmark name %q", n)
		}
		seen[n] = true
	}
}

func TestAllKernelsExistAndSizesValid(t *testing.T) {
	for _, b := range All() {
		k, err := kernels.ByName(b.Kernel)
		if err != nil {
			t.Errorf("%s: %v", b.Name(), err)
			continue
		}
		if b.Size < 1 || b.Size > k.MaxSize {
			t.Errorf("%s: size %d outside kernel %s range [1, %d]",
				b.Name(), b.Size, k.Name, k.MaxSize)
		}
		if b.PaperICountM <= 0 {
			t.Errorf("%s: missing Table I instruction count", b.Name())
		}
	}
}

func TestSeedsDifferAcrossBenchmarks(t *testing.T) {
	// Benchmarks sharing a kernel must still get different inputs.
	a, err := ByName("SPEC2000/gzip/log")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ByName("SPEC2000/gzip/source")
	if err != nil {
		t.Fatal(err)
	}
	if a.seed() == b.seed() {
		t.Error("two distinct benchmarks derived the same seed")
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("nope/nope/nope"); err == nil {
		t.Error("unknown name accepted")
	}
	got, err := ByName("SPEC2000/mcf/ref")
	if err != nil || got.Kernel != "pointerchase" {
		t.Errorf("ByName(mcf) = %+v, %v", got, err)
	}
}

// TestEveryBenchmarkRuns instantiates and runs every registry entry for a
// short budget. This is the suite-level integration smoke test.
func TestEveryBenchmarkRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("122 instantiations; skipped in -short")
	}
	for _, b := range All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			m, err := b.Instantiate()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Run(20_000, nil); !errors.Is(err, vm.ErrBudget) {
				t.Fatalf("stopped early: %v", err)
			}
		})
	}
}

func TestAllReturnsCopy(t *testing.T) {
	a := All()
	a[0].Program = "mutated"
	if All()[0].Program == "mutated" {
		t.Error("All exposes internal registry storage")
	}
}

func TestBySuiteReturnsCopy(t *testing.T) {
	a := BySuite(SPEC)
	if len(a) == 0 {
		t.Fatal("no SPEC benchmarks")
	}
	a[0].Program = "mutated"
	if BySuite(SPEC)[0].Program == "mutated" {
		t.Error("BySuite exposes internal registry storage")
	}
}

// TestConcurrentInstantiateSharedKernel instantiates and runs benchmarks
// that share one kernel program from many goroutines at once, as
// ProfileBenchmarks' worker pool does. Program.Finalize must be safe
// under this concurrency (run with -race in CI).
func TestConcurrentInstantiateSharedKernel(t *testing.T) {
	// Both entries are backed by the smithwaterman kernel.
	names := []string{"BioInfoMark/ce/ce", "BioInfoMark/hmmer/search-artemia"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, name := range names {
				b, err := ByName(name)
				if err != nil {
					t.Error(err)
					return
				}
				m, err := b.Instantiate()
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := m.Run(2_000, nil); !errors.Is(err, vm.ErrBudget) {
					t.Errorf("%s stopped early: %v", name, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
