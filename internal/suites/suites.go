// Package suites defines the 122-benchmark registry mirroring Table I of
// the paper: six suites (BioInfoMark, BioMetricsWorkload, CommBench,
// MediaBench, MiBench, SPEC CPU2000) with one entry per benchmark/input
// pair. Each entry is backed by a workload kernel whose algorithm matches
// the benchmark's domain (sequence alignment for clustalw, hash-chain
// compression for gzip/bzip2, dependent pointer chasing for mcf, ...),
// parameterized so that working-set sizes, instruction mixes and branch
// behaviours are spread the way the paper's suites are.
//
// PaperICountM preserves Table I's dynamic instruction counts (millions)
// as documentation and as relative trace-length scale factors; the
// reproduction runs each benchmark for a configurable budget instead of
// the full count.
package suites

import (
	"fmt"

	"mica/internal/kernels"
	"mica/internal/vm"
)

// Suite names, as in Table I.
const (
	BioInfoMark        = "BioInfoMark"
	BioMetricsWorkload = "BioMetricsWorkload"
	CommBench          = "CommBench"
	MediaBench         = "MediaBench"
	MiBench            = "MiBench"
	SPEC               = "SPEC2000"
)

// SuiteNames lists the six suites in Table I order.
var SuiteNames = []string{
	BioInfoMark, BioMetricsWorkload, CommBench, MediaBench, MiBench, SPEC,
}

// Benchmark is one Table I row.
type Benchmark struct {
	Suite   string
	Program string
	Input   string
	// Kernel names the backing workload kernel.
	Kernel string
	// Size and Variant parameterize the kernel.
	Size    int
	Variant int
	// PaperICountM is the dynamic instruction count from Table I, in
	// millions.
	PaperICountM int64
}

// Name returns the canonical "suite/program/input" identifier.
func (b Benchmark) Name() string {
	return fmt.Sprintf("%s/%s/%s", b.Suite, b.Program, b.Input)
}

// seed derives a deterministic per-benchmark input seed from the name.
func (b Benchmark) seed() uint64 {
	h := uint64(14695981039346656037)
	for _, c := range []byte(b.Name()) {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// Instantiate builds a ready-to-run machine for the benchmark.
func (b Benchmark) Instantiate() (*vm.Machine, error) {
	k, err := kernels.ByName(b.Kernel)
	if err != nil {
		return nil, fmt.Errorf("suites: %s: %w", b.Name(), err)
	}
	return k.Instantiate(kernels.Params{Size: b.Size, Seed: b.seed(), Variant: b.Variant})
}

// all is the Table I registry. Order follows the paper's table.
var all = []Benchmark{
	// --- BioInfoMark (bioinformatics) ---
	{BioInfoMark, "blast", "protein", "kmercount", 262144, 1, 81092},
	{BioInfoMark, "ce", "ce", "smithwaterman", 2048, 0, 4816},
	{BioInfoMark, "clustalw", "clustalw", "smithwaterman", 16384, 0, 884859},
	{BioInfoMark, "fasta", "fasta34", "smithwaterman", 8192, 0, 759654},
	{BioInfoMark, "glimmer", "004663", "kmercount", 65536, 0, 26610},
	{BioInfoMark, "hmmer", "build", "likelihood", 2048, 0, 321},
	{BioInfoMark, "hmmer", "calibrate", "likelihood", 8192, 1, 43048},
	{BioInfoMark, "hmmer", "search-artemia", "smithwaterman", 1024, 0, 47},
	{BioInfoMark, "hmmer", "search-sprot", "smithwaterman", 65536, 0, 1785862},
	{BioInfoMark, "phylip", "dnapenny", "parsimony", 512, 0, 184557},
	{BioInfoMark, "phylip", "promlk", "likelihood", 4096, 1, 557514},
	{BioInfoMark, "predator", "predator", "likelihood", 16384, 0, 804859},

	// --- BioMetricsWorkload (biometrics) ---
	{BioMetricsWorkload, "csu", "Bayesian-project", "matmul", 48, 1, 403313},
	{BioMetricsWorkload, "csu", "Bayesian-train", "matmul", 96, 1, 28158},
	{BioMetricsWorkload, "csu", "PreprocessNormalize", "susan", 384, 1, 4059},
	{BioMetricsWorkload, "csu", "SubspaceProject-LDA", "matmul", 64, 1, 6054},
	{BioMetricsWorkload, "csu", "SubspaceProject-PCA", "matmul", 80, 1, 6098},
	{BioMetricsWorkload, "csu", "SubspaceTrain-LDA", "neural", 512, 0, 51297},
	{BioMetricsWorkload, "csu", "SubspaceTrain-PCA", "neural", 1024, 0, 41729},
	{BioMetricsWorkload, "speak", "decode", "neural", 256, 0, 46648},

	// --- CommBench (telecommunication) ---
	{CommBench, "cast", "decode", "blowfish", 8192, 0, 130},
	{CommBench, "cast", "encode", "blowfish", 16384, 0, 130},
	{CommBench, "drr", "drr", "drr", 256, 0, 235},
	{CommBench, "frag", "frag", "fragment", 65536, 0, 49},
	{CommBench, "jpeg", "decode", "huffman", 4096, 0, 238},
	{CommBench, "jpeg", "encode", "dct8", 2048, 0, 339},
	{CommBench, "reed", "decode", "reedsolomon", 16384, 1, 1298},
	{CommBench, "reed", "encode", "reedsolomon", 32768, 0, 912},
	{CommBench, "rtr", "rtr", "pointerchase", 16384, 0, 1137},
	{CommBench, "tcp", "tcp", "crc32", 16384, 0, 58},
	{CommBench, "zip", "decode", "huffman", 2048, 0, 50},
	{CommBench, "zip", "encode", "lz77", 65536, 0, 322},

	// --- MediaBench (multimedia) ---
	{MediaBench, "epic", "test1", "stencil5", 64, 0, 205},
	{MediaBench, "epic", "test2", "stencil5", 128, 0, 2296},
	{MediaBench, "unepic", "test1", "huffman", 1024, 0, 35},
	{MediaBench, "unepic", "test2", "huffman", 2048, 0, 876},
	{MediaBench, "g721", "decode", "adpcm", 32768, 1, 323},
	{MediaBench, "g721", "encode", "adpcm", 32768, 0, 343},
	{MediaBench, "ghostscript", "gs", "susan", 512, 0, 868},
	{MediaBench, "mesa", "mipmap", "matmul", 32, 0, 32},
	{MediaBench, "mesa", "osdemo", "nbody", 128, 0, 10},
	{MediaBench, "mesa", "texgen", "matmul", 128, 0, 86},
	{MediaBench, "mpeg2", "decode", "huffman", 8192, 0, 149},
	{MediaBench, "mpeg2", "encode", "motionest", 2048, 0, 1528},

	// --- MiBench (embedded) ---
	{MiBench, "CRC32", "large", "crc32", 131072, 0, 612},
	{MiBench, "FFT", "fft-large", "fft", 4096, 0, 237},
	{MiBench, "FFT", "fftinv-large", "fft", 8192, 0, 217},
	{MiBench, "adpcm", "rawcaudio", "adpcm", 65536, 0, 758},
	{MiBench, "adpcm", "rawdaudio", "adpcm", 65536, 1, 639},
	{MiBench, "basicmath", "large", "nbody", 64, 0, 1523},
	{MiBench, "bitcount", "large", "bitcount", 16384, 0, 681},
	{MiBench, "blowfish", "decode", "blowfish", 8192, 0, 495},
	{MiBench, "blowfish", "encode", "blowfish", 8192, 1, 498},
	{MiBench, "dijkstra", "large", "dijkstra", 256, 0, 252},
	{MiBench, "ghostscript", "large", "susan", 448, 0, 868},
	{MiBench, "ispell", "large", "stringsearch", 65536, 0, 1027},
	{MiBench, "jpeg", "cjpeg", "dct8", 4096, 0, 121},
	{MiBench, "jpeg", "djpeg", "huffman", 4096, 1, 24},
	{MiBench, "lame", "large", "fft", 2048, 0, 1199},
	{MiBench, "mad", "large", "fft", 1024, 0, 345},
	{MiBench, "patricia", "large", "pointerchase", 65536, 0, 399},
	{MiBench, "pgp", "decode", "bignum", 64, 0, 111},
	{MiBench, "pgp", "encode", "bignum", 128, 0, 48},
	{MiBench, "qsort", "large", "qsort", 32768, 0, 512},
	{MiBench, "rsynth", "say-large", "fft", 512, 0, 775},
	{MiBench, "sha", "large", "sha", 2048, 0, 114},
	{MiBench, "susan", "corners-large", "susan", 384, 0, 29},
	{MiBench, "susan", "edges-large", "susan", 256, 0, 73},
	{MiBench, "susan", "smoothing-large", "susan", 512, 1, 300},
	{MiBench, "tiff", "2bw", "susan", 320, 1, 143},
	{MiBench, "tiff", "2rgba", "fragment", 131072, 1, 268},
	{MiBench, "tiff", "dither", "susan", 320, 0, 1228},
	{MiBench, "tiff", "median", "susan", 256, 1, 763},
	{MiBench, "typeset", "lout", "stringsearch", 131072, 1, 609},

	// --- SPEC CPU2000 (general purpose) ---
	{SPEC, "ammp", "ref", "nbody", 512, 0, 388534},
	{SPEC, "applu", "ref", "stencil5", 96, 0, 336798},
	{SPEC, "apsi", "ref", "stencil5", 160, 0, 361955},
	{SPEC, "art", "ref-110", "neural", 1024, 0, 77067},
	{SPEC, "art", "ref-470", "neural", 2048, 0, 84660},
	{SPEC, "bzip2", "graphic", "lz77", 131072, 0, 157003},
	{SPEC, "bzip2", "program", "lz77", 65536, 0, 136389},
	{SPEC, "bzip2", "source", "lz77", 98304, 0, 122267},
	{SPEC, "crafty", "ref", "interp", 16384, 0, 194311},
	{SPEC, "eon", "cook", "nbody", 256, 0, 100552},
	{SPEC, "eon", "kajiya", "nbody", 384, 0, 131268},
	{SPEC, "eon", "rushmeier", "nbody", 512, 0, 73139},
	{SPEC, "equake", "ref", "neural", 768, 0, 158071},
	{SPEC, "facerec", "ref", "matmul", 112, 0, 249735},
	{SPEC, "fma3d", "ref", "nbody", 1024, 0, 312960},
	{SPEC, "galgel", "ref", "matmul", 128, 0, 326916},
	{SPEC, "gap", "ref", "interp", 32768, 0, 310323},
	{SPEC, "gcc", "166", "interp", 8192, 0, 46614},
	{SPEC, "gcc", "200", "interp", 12288, 0, 106339},
	{SPEC, "gcc", "expr", "interp", 16384, 0, 11847},
	{SPEC, "gcc", "integrate", "interp", 20480, 0, 13019},
	{SPEC, "gcc", "scilab", "interp", 24576, 0, 60784},
	{SPEC, "gzip", "graphic", "lz77", 49152, 0, 113400},
	{SPEC, "gzip", "log", "lz77", 16384, 0, 42506},
	{SPEC, "gzip", "program", "lz77", 32768, 0, 161726},
	{SPEC, "gzip", "random", "lz77", 131072, 0, 91961},
	{SPEC, "gzip", "source", "lz77", 24576, 0, 84366},
	{SPEC, "lucas", "ref", "fft", 8192, 0, 134753},
	{SPEC, "mcf", "ref", "pointerchase", 1048576, 0, 59800},
	{SPEC, "mesa", "ref", "matmul", 96, 0, 314449},
	{SPEC, "mgrid", "ref", "stencil5", 128, 0, 440934},
	{SPEC, "parser", "ref", "stringsearch", 131072, 0, 530784},
	{SPEC, "perlbmk", "splitmail.535", "interp", 24576, 0, 69857},
	{SPEC, "perlbmk", "splitmail.704", "interp", 24576, 0, 73966},
	{SPEC, "perlbmk", "splitmail.850", "interp", 28672, 0, 142509},
	{SPEC, "perlbmk", "splitmail.957", "interp", 28672, 0, 122893},
	{SPEC, "perlbmk", "diffmail", "interp", 12288, 0, 43327},
	{SPEC, "perlbmk", "makerand", "interp", 4096, 0, 2055},
	{SPEC, "perlbmk", "perfect", "interp", 8192, 0, 29791},
	{SPEC, "sixtrack", "ref", "stencil5", 224, 0, 452446},
	{SPEC, "swim", "ref", "stencil5", 256, 0, 221868},
	{SPEC, "twolf", "ref", "dijkstra", 384, 0, 397222},
	{SPEC, "vortex", "ref1", "drr", 2048, 0, 129793},
	{SPEC, "vortex", "ref2", "drr", 3072, 0, 151475},
	{SPEC, "vortex", "ref3", "drr", 4096, 0, 145113},
	{SPEC, "vpr", "place", "qsort", 49152, 0, 117001},
	{SPEC, "vpr", "route", "dijkstra", 448, 0, 82351},
	{SPEC, "wupwise", "ref", "matmul", 120, 0, 337770},
}

// All returns the 122 benchmarks in Table I order. The slice is a copy;
// callers may reorder it.
func All() []Benchmark {
	out := make([]Benchmark, len(all))
	copy(out, all)
	return out
}

// BySuite returns the benchmarks of one suite in table order.
func BySuite(suite string) []Benchmark {
	var out []Benchmark
	for _, b := range all {
		if b.Suite == suite {
			out = append(out, b)
		}
	}
	return out
}

// ByName finds a benchmark by its canonical name.
func ByName(name string) (Benchmark, error) {
	for _, b := range all {
		if b.Name() == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("suites: unknown benchmark %q", name)
}

// Count returns the number of registered benchmarks (122).
func Count() int { return len(all) }
