// Package suites defines the 122-benchmark registry mirroring Table I of
// the paper: six suites (BioInfoMark, BioMetricsWorkload, CommBench,
// MediaBench, MiBench, SPEC CPU2000) with one entry per benchmark/input
// pair. Each entry is backed by a workload kernel whose algorithm matches
// the benchmark's domain (sequence alignment for clustalw, hash-chain
// compression for gzip/bzip2, dependent pointer chasing for mcf, ...),
// parameterized so that working-set sizes, instruction mixes and branch
// behaviours are spread the way the paper's suites are.
//
// PaperICountM preserves Table I's dynamic instruction counts (millions)
// as documentation and as relative trace-length scale factors; the
// reproduction runs each benchmark for a configurable budget instead of
// the full count.
package suites

import (
	"fmt"
	"path/filepath"
	"strings"

	"mica/internal/kernels"
	"mica/internal/trace"
	"mica/internal/vm"
)

// Suite names, as in Table I.
const (
	BioInfoMark        = "BioInfoMark"
	BioMetricsWorkload = "BioMetricsWorkload"
	CommBench          = "CommBench"
	MediaBench         = "MediaBench"
	MiBench            = "MiBench"
	SPEC               = "SPEC2000"
)

// SuiteNames lists the six suites in Table I order.
var SuiteNames = []string{
	BioInfoMark, BioMetricsWorkload, CommBench, MediaBench, MiBench, SPEC,
}

// Benchmark is one characterizable workload: a Table I row backed by an
// embedded kernel, or an external recorded trace (TracePath set) that
// replays through the same pipelines.
type Benchmark struct {
	Suite   string
	Program string
	Input   string
	// Kernel names the backing workload kernel.
	Kernel string
	// Size and Variant parameterize the kernel.
	Size    int
	Variant int
	// PaperICountM is the dynamic instruction count from Table I, in
	// millions.
	PaperICountM int64
	// TracePath, when set, backs the benchmark with a recorded trace
	// file instead of an embedded kernel: Source replays the file and
	// Instantiate refuses (there is no machine to build).
	TracePath string
}

// Name returns the canonical "suite/program/input" identifier.
func (b Benchmark) Name() string {
	return fmt.Sprintf("%s/%s/%s", b.Suite, b.Program, b.Input)
}

// seed derives a deterministic per-benchmark input seed from the name.
func (b Benchmark) seed() uint64 {
	h := uint64(14695981039346656037)
	for _, c := range []byte(b.Name()) {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// Instantiate builds a ready-to-run machine for the benchmark. It only
// works for kernel-backed entries; trace-backed benchmarks have no
// machine and must be run through Source.
func (b Benchmark) Instantiate() (*vm.Machine, error) {
	if b.TracePath != "" {
		return nil, fmt.Errorf("suites: %s: trace-backed benchmark has no embedded VM (use Source)", b.Name())
	}
	k, err := kernels.ByName(b.Kernel)
	if err != nil {
		return nil, fmt.Errorf("suites: %s: %w", b.Name(), err)
	}
	return k.Instantiate(kernels.Params{Size: b.Size, Seed: b.seed(), Variant: b.Variant})
}

// Source returns a fresh event source for the benchmark: a ready-to-run
// machine for kernel-backed entries, a trace replay for trace-backed
// ones. Every call returns an independent source positioned at the
// start of the execution, which is what the two-pass reduced pipeline
// relies on.
func (b Benchmark) Source() (trace.Source, error) {
	if b.TracePath != "" {
		r, err := trace.Open(b.TracePath)
		if err != nil {
			return nil, fmt.Errorf("suites: %s: %w", b.Name(), err)
		}
		return r, nil
	}
	return b.Instantiate()
}

// TraceBenchmark builds a trace-backed registry entry for the recorded
// trace at path. name may be a full canonical "suite/program/input"
// identifier; anything else becomes "trace/<name>/<file base>" so trace
// entries sort and render alongside the kernel-backed rows.
func TraceBenchmark(name, path string) Benchmark {
	b := Benchmark{TracePath: path}
	if parts := strings.Split(name, "/"); len(parts) == 3 &&
		parts[0] != "" && parts[1] != "" && parts[2] != "" {
		b.Suite, b.Program, b.Input = parts[0], parts[1], parts[2]
		return b
	}
	if name == "" {
		name = "recorded"
	}
	b.Suite, b.Program, b.Input = "trace", name, filepath.Base(path)
	return b
}

// row builds one kernel-backed Table I registry entry.
func row(suite, program, input, kernel string, size, variant int, icountM int64) Benchmark {
	return Benchmark{
		Suite: suite, Program: program, Input: input,
		Kernel: kernel, Size: size, Variant: variant, PaperICountM: icountM,
	}
}

// all is the Table I registry. Order follows the paper's table.
var all = []Benchmark{
	// --- BioInfoMark (bioinformatics) ---
	row(BioInfoMark, "blast", "protein", "kmercount", 262144, 1, 81092),
	row(BioInfoMark, "ce", "ce", "smithwaterman", 2048, 0, 4816),
	row(BioInfoMark, "clustalw", "clustalw", "smithwaterman", 16384, 0, 884859),
	row(BioInfoMark, "fasta", "fasta34", "smithwaterman", 8192, 0, 759654),
	row(BioInfoMark, "glimmer", "004663", "kmercount", 65536, 0, 26610),
	row(BioInfoMark, "hmmer", "build", "likelihood", 2048, 0, 321),
	row(BioInfoMark, "hmmer", "calibrate", "likelihood", 8192, 1, 43048),
	row(BioInfoMark, "hmmer", "search-artemia", "smithwaterman", 1024, 0, 47),
	row(BioInfoMark, "hmmer", "search-sprot", "smithwaterman", 65536, 0, 1785862),
	row(BioInfoMark, "phylip", "dnapenny", "parsimony", 512, 0, 184557),
	row(BioInfoMark, "phylip", "promlk", "likelihood", 4096, 1, 557514),
	row(BioInfoMark, "predator", "predator", "likelihood", 16384, 0, 804859),

	// --- BioMetricsWorkload (biometrics) ---
	row(BioMetricsWorkload, "csu", "Bayesian-project", "matmul", 48, 1, 403313),
	row(BioMetricsWorkload, "csu", "Bayesian-train", "matmul", 96, 1, 28158),
	row(BioMetricsWorkload, "csu", "PreprocessNormalize", "susan", 384, 1, 4059),
	row(BioMetricsWorkload, "csu", "SubspaceProject-LDA", "matmul", 64, 1, 6054),
	row(BioMetricsWorkload, "csu", "SubspaceProject-PCA", "matmul", 80, 1, 6098),
	row(BioMetricsWorkload, "csu", "SubspaceTrain-LDA", "neural", 512, 0, 51297),
	row(BioMetricsWorkload, "csu", "SubspaceTrain-PCA", "neural", 1024, 0, 41729),
	row(BioMetricsWorkload, "speak", "decode", "neural", 256, 0, 46648),

	// --- CommBench (telecommunication) ---
	row(CommBench, "cast", "decode", "blowfish", 8192, 0, 130),
	row(CommBench, "cast", "encode", "blowfish", 16384, 0, 130),
	row(CommBench, "drr", "drr", "drr", 256, 0, 235),
	row(CommBench, "frag", "frag", "fragment", 65536, 0, 49),
	row(CommBench, "jpeg", "decode", "huffman", 4096, 0, 238),
	row(CommBench, "jpeg", "encode", "dct8", 2048, 0, 339),
	row(CommBench, "reed", "decode", "reedsolomon", 16384, 1, 1298),
	row(CommBench, "reed", "encode", "reedsolomon", 32768, 0, 912),
	row(CommBench, "rtr", "rtr", "pointerchase", 16384, 0, 1137),
	row(CommBench, "tcp", "tcp", "crc32", 16384, 0, 58),
	row(CommBench, "zip", "decode", "huffman", 2048, 0, 50),
	row(CommBench, "zip", "encode", "lz77", 65536, 0, 322),

	// --- MediaBench (multimedia) ---
	row(MediaBench, "epic", "test1", "stencil5", 64, 0, 205),
	row(MediaBench, "epic", "test2", "stencil5", 128, 0, 2296),
	row(MediaBench, "unepic", "test1", "huffman", 1024, 0, 35),
	row(MediaBench, "unepic", "test2", "huffman", 2048, 0, 876),
	row(MediaBench, "g721", "decode", "adpcm", 32768, 1, 323),
	row(MediaBench, "g721", "encode", "adpcm", 32768, 0, 343),
	row(MediaBench, "ghostscript", "gs", "susan", 512, 0, 868),
	row(MediaBench, "mesa", "mipmap", "matmul", 32, 0, 32),
	row(MediaBench, "mesa", "osdemo", "nbody", 128, 0, 10),
	row(MediaBench, "mesa", "texgen", "matmul", 128, 0, 86),
	row(MediaBench, "mpeg2", "decode", "huffman", 8192, 0, 149),
	row(MediaBench, "mpeg2", "encode", "motionest", 2048, 0, 1528),

	// --- MiBench (embedded) ---
	row(MiBench, "CRC32", "large", "crc32", 131072, 0, 612),
	row(MiBench, "FFT", "fft-large", "fft", 4096, 0, 237),
	row(MiBench, "FFT", "fftinv-large", "fft", 8192, 0, 217),
	row(MiBench, "adpcm", "rawcaudio", "adpcm", 65536, 0, 758),
	row(MiBench, "adpcm", "rawdaudio", "adpcm", 65536, 1, 639),
	row(MiBench, "basicmath", "large", "nbody", 64, 0, 1523),
	row(MiBench, "bitcount", "large", "bitcount", 16384, 0, 681),
	row(MiBench, "blowfish", "decode", "blowfish", 8192, 0, 495),
	row(MiBench, "blowfish", "encode", "blowfish", 8192, 1, 498),
	row(MiBench, "dijkstra", "large", "dijkstra", 256, 0, 252),
	row(MiBench, "ghostscript", "large", "susan", 448, 0, 868),
	row(MiBench, "ispell", "large", "stringsearch", 65536, 0, 1027),
	row(MiBench, "jpeg", "cjpeg", "dct8", 4096, 0, 121),
	row(MiBench, "jpeg", "djpeg", "huffman", 4096, 1, 24),
	row(MiBench, "lame", "large", "fft", 2048, 0, 1199),
	row(MiBench, "mad", "large", "fft", 1024, 0, 345),
	row(MiBench, "patricia", "large", "pointerchase", 65536, 0, 399),
	row(MiBench, "pgp", "decode", "bignum", 64, 0, 111),
	row(MiBench, "pgp", "encode", "bignum", 128, 0, 48),
	row(MiBench, "qsort", "large", "qsort", 32768, 0, 512),
	row(MiBench, "rsynth", "say-large", "fft", 512, 0, 775),
	row(MiBench, "sha", "large", "sha", 2048, 0, 114),
	row(MiBench, "susan", "corners-large", "susan", 384, 0, 29),
	row(MiBench, "susan", "edges-large", "susan", 256, 0, 73),
	row(MiBench, "susan", "smoothing-large", "susan", 512, 1, 300),
	row(MiBench, "tiff", "2bw", "susan", 320, 1, 143),
	row(MiBench, "tiff", "2rgba", "fragment", 131072, 1, 268),
	row(MiBench, "tiff", "dither", "susan", 320, 0, 1228),
	row(MiBench, "tiff", "median", "susan", 256, 1, 763),
	row(MiBench, "typeset", "lout", "stringsearch", 131072, 1, 609),

	// --- SPEC CPU2000 (general purpose) ---
	row(SPEC, "ammp", "ref", "nbody", 512, 0, 388534),
	row(SPEC, "applu", "ref", "stencil5", 96, 0, 336798),
	row(SPEC, "apsi", "ref", "stencil5", 160, 0, 361955),
	row(SPEC, "art", "ref-110", "neural", 1024, 0, 77067),
	row(SPEC, "art", "ref-470", "neural", 2048, 0, 84660),
	row(SPEC, "bzip2", "graphic", "lz77", 131072, 0, 157003),
	row(SPEC, "bzip2", "program", "lz77", 65536, 0, 136389),
	row(SPEC, "bzip2", "source", "lz77", 98304, 0, 122267),
	row(SPEC, "crafty", "ref", "interp", 16384, 0, 194311),
	row(SPEC, "eon", "cook", "nbody", 256, 0, 100552),
	row(SPEC, "eon", "kajiya", "nbody", 384, 0, 131268),
	row(SPEC, "eon", "rushmeier", "nbody", 512, 0, 73139),
	row(SPEC, "equake", "ref", "neural", 768, 0, 158071),
	row(SPEC, "facerec", "ref", "matmul", 112, 0, 249735),
	row(SPEC, "fma3d", "ref", "nbody", 1024, 0, 312960),
	row(SPEC, "galgel", "ref", "matmul", 128, 0, 326916),
	row(SPEC, "gap", "ref", "interp", 32768, 0, 310323),
	row(SPEC, "gcc", "166", "interp", 8192, 0, 46614),
	row(SPEC, "gcc", "200", "interp", 12288, 0, 106339),
	row(SPEC, "gcc", "expr", "interp", 16384, 0, 11847),
	row(SPEC, "gcc", "integrate", "interp", 20480, 0, 13019),
	row(SPEC, "gcc", "scilab", "interp", 24576, 0, 60784),
	row(SPEC, "gzip", "graphic", "lz77", 49152, 0, 113400),
	row(SPEC, "gzip", "log", "lz77", 16384, 0, 42506),
	row(SPEC, "gzip", "program", "lz77", 32768, 0, 161726),
	row(SPEC, "gzip", "random", "lz77", 131072, 0, 91961),
	row(SPEC, "gzip", "source", "lz77", 24576, 0, 84366),
	row(SPEC, "lucas", "ref", "fft", 8192, 0, 134753),
	row(SPEC, "mcf", "ref", "pointerchase", 1048576, 0, 59800),
	row(SPEC, "mesa", "ref", "matmul", 96, 0, 314449),
	row(SPEC, "mgrid", "ref", "stencil5", 128, 0, 440934),
	row(SPEC, "parser", "ref", "stringsearch", 131072, 0, 530784),
	row(SPEC, "perlbmk", "splitmail.535", "interp", 24576, 0, 69857),
	row(SPEC, "perlbmk", "splitmail.704", "interp", 24576, 0, 73966),
	row(SPEC, "perlbmk", "splitmail.850", "interp", 28672, 0, 142509),
	row(SPEC, "perlbmk", "splitmail.957", "interp", 28672, 0, 122893),
	row(SPEC, "perlbmk", "diffmail", "interp", 12288, 0, 43327),
	row(SPEC, "perlbmk", "makerand", "interp", 4096, 0, 2055),
	row(SPEC, "perlbmk", "perfect", "interp", 8192, 0, 29791),
	row(SPEC, "sixtrack", "ref", "stencil5", 224, 0, 452446),
	row(SPEC, "swim", "ref", "stencil5", 256, 0, 221868),
	row(SPEC, "twolf", "ref", "dijkstra", 384, 0, 397222),
	row(SPEC, "vortex", "ref1", "drr", 2048, 0, 129793),
	row(SPEC, "vortex", "ref2", "drr", 3072, 0, 151475),
	row(SPEC, "vortex", "ref3", "drr", 4096, 0, 145113),
	row(SPEC, "vpr", "place", "qsort", 49152, 0, 117001),
	row(SPEC, "vpr", "route", "dijkstra", 448, 0, 82351),
	row(SPEC, "wupwise", "ref", "matmul", 120, 0, 337770),
}

// All returns the 122 benchmarks in Table I order. The slice is a copy;
// callers may reorder it.
func All() []Benchmark {
	out := make([]Benchmark, len(all))
	copy(out, all)
	return out
}

// BySuite returns the benchmarks of one suite in table order.
func BySuite(suite string) []Benchmark {
	var out []Benchmark
	for _, b := range all {
		if b.Suite == suite {
			out = append(out, b)
		}
	}
	return out
}

// ByName finds a benchmark by its canonical name.
func ByName(name string) (Benchmark, error) {
	for _, b := range all {
		if b.Name() == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("suites: unknown benchmark %q", name)
}

// Count returns the number of registered benchmarks (122).
func Count() int { return len(all) }
