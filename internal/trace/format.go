// On-disk trace format.
//
// A trace file is a versioned, CRC32-checked container for one Event
// stream, packed so that the dominant cost of replay is the observer,
// not the decode. The layout:
//
//	header:  magic "MICATRC\x00" (8) | version u32le | reserved u32le (0)
//	blocks:  length u32le | crc32(payload) u32le | payload
//	trailer: 0xFFFFFFFF u32le | total events u64le
//
// Each block payload is
//
//	uvarint nStatic | nStatic static records | uvarint nEvents | events
//
// A static record defines one static instruction, keyed by its code
// index (PC = isa.CodeBase + 4*index), the first time the stream
// touches it:
//
//	uvarint pcIndex | op u8 | flags u8 | NSrc source regs | dst reg if any
//
// flags packs HasDst (bit 0) and NSrc (bits 1-2); the remaining bits
// must be zero. Everything else an Event carries — Class, MemSize,
// Conditional, the dependence-carrying operand views — is derived from
// the opcode and the operand registers at decode time, exactly as the
// VM derives it from isa.InstMeta, so the replayed events are
// bit-identical to the recorded ones.
//
// An event record is a reference to its static record plus only the
// dynamic bits of that instruction kind:
//
//	zigzag uvarint delta of the static id (runs of the same loop body
//	  encode in one byte each)
//	loads/stores: zigzag uvarint delta of MemAddr against the previous
//	  memory access (strided access patterns encode in 1-2 bytes)
//	conditional branches: uvarint t — 0 is not-taken (the target is the
//	  fall-through, implied), t-1 the zigzag delta of the taken target's
//	  code index against fall-through
//	unconditional branches and jumps: zigzag uvarint delta of the
//	  target's code index against fall-through
//
// Sequence numbers are implicit (events are stored in order, starting
// at 0) and branch fall-through addresses are derived from the static
// record, so the common straight-line instruction costs one byte.
package trace

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"mica/internal/isa"
)

// Magic identifies a trace file; Version is the current format
// version. Decoders reject other versions with an error naming the
// file, matching the version-mismatch contract of the phase caches and
// the ivstore manifest.
const (
	Magic   = "MICATRC\x00"
	Version = 1
)

const (
	headerLen = 16
	// endMarker in the block-length slot terminates the block sequence.
	endMarker = 0xFFFFFFFF
	// maxBlockLen bounds a single block payload so corrupt headers
	// cannot demand absurd allocations.
	maxBlockLen = 1 << 24
	// maxPCIndex bounds static code indexes (16M instructions of code).
	maxPCIndex = 1 << 24
	// blockTarget is the payload size the Writer flushes at.
	blockTarget = 64 << 10
)

// Static-instruction kinds, derived from the opcode format; they select
// which dynamic fields an event record carries.
const (
	kindPlain  = iota // no dynamic fields beyond the sequence number
	kindMem           // loads/stores: MemAddr
	kindCond          // conditional branches: Taken + Target
	kindUncond        // unconditional branches, jumps: Target
)

// staticFlags packs the static-record flag byte.
func staticFlags(hasDst bool, nsrc uint8) uint8 {
	f := nsrc << 1
	if hasDst {
		f |= 1
	}
	return f
}

// buildStatic validates one static instruction's encodable fields and
// returns the replay template — a fully derived Event with the dynamic
// fields zeroed — plus its kind. Writer and Reader both build templates
// through here, which is what makes recording self-verifying: the
// Writer compares every incoming event against the template the Reader
// will reconstruct.
func buildStatic(pcIndex uint64, op isa.Op, src [3]isa.Reg, nsrc uint8, dst isa.Reg, hasDst bool) (Event, uint8, error) {
	if pcIndex > maxPCIndex {
		return Event{}, 0, fmt.Errorf("code index %d out of range", pcIndex)
	}
	if op == isa.OpInvalid || int(op) >= isa.NumOps {
		return Event{}, 0, fmt.Errorf("invalid opcode %d", uint8(op))
	}
	if nsrc > uint8(len(src)) {
		return Event{}, 0, fmt.Errorf("source register count %d out of range", nsrc)
	}
	for i := uint8(0); i < nsrc; i++ {
		if !src[i].Valid() {
			return Event{}, 0, fmt.Errorf("invalid source register %d", uint8(src[i]))
		}
	}
	if hasDst && !dst.Valid() {
		return Event{}, 0, fmt.Errorf("invalid destination register %d", uint8(dst))
	}
	if !hasDst {
		dst = isa.RegInvalid
	}
	tmpl := Event{
		PC:          isa.PCForIndex(int(pcIndex)),
		Op:          op,
		Class:       op.Class(),
		Src:         src,
		NSrc:        nsrc,
		Dst:         dst,
		HasDst:      hasDst,
		MemSize:     op.MemSize(),
		Conditional: op.IsConditional(),
	}
	tmpl.DeriveDeps()
	kind := uint8(kindPlain)
	switch op.Format() {
	case isa.FmtMem:
		kind = kindMem
	case isa.FmtBranch:
		if tmpl.Conditional {
			kind = kindCond
		} else {
			kind = kindUncond
		}
	case isa.FmtJump:
		kind = kindUncond
	}
	return tmpl, kind, nil
}

// zigzag maps signed deltas onto small unsigned varints.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// checkHeader validates the fixed file header, naming the trace in
// every error. name is the path (or an upload label) for diagnostics.
func checkHeader(data []byte, name string) error {
	if len(data) < headerLen {
		return fmt.Errorf("trace: %s: truncated header (%d bytes)", name, len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return fmt.Errorf("trace: %s: not a trace file (bad magic)", name)
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != Version {
		return fmt.Errorf("trace: %s: trace format version %d, want %d", name, v, Version)
	}
	if r := binary.LittleEndian.Uint32(data[12:]); r != 0 {
		return fmt.Errorf("trace: %s: nonzero reserved header field %#x", name, r)
	}
	return nil
}

// appendHeader appends the fixed file header to buf.
func appendHeader(buf []byte) []byte {
	buf = append(buf, Magic...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	return binary.LittleEndian.AppendUint32(buf, 0)
}

// SaveBytes durably writes an already encoded trace to path using the
// same tmp -> fsync -> rename protocol the Writer (and ivstore) use,
// after checking that the bytes carry a current trace header. It is how
// the serving layer persists validated uploads.
func SaveBytes(path string, data []byte) error {
	if err := checkHeader(data, path); err != nil {
		return err
	}
	return writeFileDurable(path, data)
}

// writeFileDurable writes data to path via a temporary file in the same
// directory, fsyncing the file before the rename and the directory
// after, so a crash leaves either the old content or the new, never a
// torn file under the committed name.
func writeFileDurable(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a preceding rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
