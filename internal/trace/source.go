package trace

import "errors"

// ErrBudget is returned by Source.Run when the instruction budget is
// reached before the event stream ends. It is an expected, non-fatal
// outcome: workload kernels are written as long-running loops and the
// budget plays the role of the trace length. The VM and the trace-file
// Reader both return this same sentinel, so budget handling is uniform
// across sources (vm.ErrBudget aliases it for compatibility).
var ErrBudget = errors.New("trace: instruction budget exhausted")

// Source produces a dynamic instruction event stream. The embedded VM
// (*vm.Machine) and the trace-file *Reader both implement it; every
// analyzer pipeline consumes this interface instead of a concrete
// producer, which is what lets recorded traces flow through
// Profile/AnalyzePhases/reduced profiling unchanged.
//
// Run delivers up to budget events to obs (budget <= 0 means
// unlimited; obs may be nil to skip delivery) and returns the number of
// events produced by this call. It returns nil when the stream ended —
// the program halted or the trace ran out — and ErrBudget when the
// budget stopped it first. State persists across calls: a second Run
// continues where the first stopped, which is how interval-based phase
// profiling slices one execution into fixed-length windows. Sources are
// not safe for concurrent use.
//
// A Source is re-runnable only by obtaining a fresh instance (a new VM
// from Benchmark.Instantiate, a fresh Reader via Open or Reset); the
// reduced-profiling replay pass relies on that.
type Source interface {
	Run(budget uint64, obs Observer) (uint64, error)
}
