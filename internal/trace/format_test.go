package trace_test

// The format tests live in an external test package so they can drive
// the real event producer (internal/vm imports trace; importing it
// back from an internal test would cycle).

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mica/internal/suites"
	"mica/internal/trace"
)

// recordBenchmark records budget instructions of a registry benchmark
// into dir and returns the trace path.
func recordBenchmark(t testing.TB, dir, name string, budget uint64) string {
	t.Helper()
	b, err := suites.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	m, err := b.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "bench.trc")
	n, err := trace.Record(m, path, budget)
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	if n != budget {
		t.Fatalf("recorded %d events, want %d", n, budget)
	}
	return path
}

// collect replays src in budget-sized slices, returning every event and
// the terminal error of each slice.
func collect(t *testing.T, src trace.Source, slice uint64) []trace.Event {
	t.Helper()
	var evs []trace.Event
	obs := trace.ObserverFunc(func(ev *trace.Event) { evs = append(evs, *ev) })
	for {
		n, err := src.Run(slice, obs)
		if err == nil {
			return evs
		}
		if !errors.Is(err, trace.ErrBudget) {
			t.Fatalf("Run: %v", err)
		}
		if n != slice {
			t.Fatalf("budgeted Run returned %d events, want %d", n, slice)
		}
	}
}

// TestRoundTripMatchesLiveVM is the core differential guarantee at the
// event level: replaying a recorded run yields the identical event
// sequence, event by event and field by field, whether replayed in one
// pass or sliced into interval-sized budgets like the phase pipelines
// do.
func TestRoundTripMatchesLiveVM(t *testing.T) {
	const budget = 30_000
	for _, name := range []string{
		"MiBench/sha/large", // crypto: mixed int/branch
		"CommBench/drr/drr", // scheduling: heavy control flow
		"SPEC2000/ammp/ref", // FP
		"CommBench/rtr/rtr", // pointer chasing: irregular loads
	} {
		t.Run(name, func(t *testing.T) {
			b, err := suites.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			m, err := b.Instantiate()
			if err != nil {
				t.Fatal(err)
			}
			var live []trace.Event
			_, err = m.Run(budget, trace.ObserverFunc(func(ev *trace.Event) {
				live = append(live, *ev)
			}))
			if err != nil && !errors.Is(err, trace.ErrBudget) {
				t.Fatal(err)
			}

			path := recordBenchmark(t, t.TempDir(), name, budget)
			r, err := trace.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			replayed := collect(t, r, 0)
			if len(replayed) != len(live) {
				t.Fatalf("replayed %d events, live VM produced %d", len(replayed), len(live))
			}
			for i := range live {
				if live[i] != replayed[i] {
					t.Fatalf("event %d differs:\nlive:   %+v\nreplay: %+v", i, live[i], replayed[i])
				}
			}

			// Sliced replay (the phase pipelines' interval pattern) and
			// a Reset pass must both reproduce the same stream.
			r2, err := trace.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			sliced := collect(t, r2, 777)
			if len(sliced) != len(live) {
				t.Fatalf("sliced replay yielded %d events, want %d", len(sliced), len(live))
			}
			for i := range live {
				if live[i] != sliced[i] {
					t.Fatalf("sliced event %d differs", i)
				}
			}
			r2.Reset()
			again := collect(t, r2, 0)
			if len(again) != len(live) {
				t.Fatalf("post-Reset replay yielded %d events, want %d", len(again), len(live))
			}
			for i := range live {
				if live[i] != again[i] {
					t.Fatalf("post-Reset event %d differs", i)
				}
			}
		})
	}
}

// TestReaderBudgetContract pins the Source semantics the pipelines
// depend on: ErrBudget exactly when the budget stops delivery, nil at
// end of trace, sequence numbers continuing across calls.
func TestReaderBudgetContract(t *testing.T) {
	path := recordBenchmark(t, t.TempDir(), "MiBench/sha/large", 1000)
	r, err := trace.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := r.Run(400, nil)
	if n != 400 || !errors.Is(err, trace.ErrBudget) {
		t.Fatalf("Run(400) = %d, %v; want 400, ErrBudget", n, err)
	}
	var first, last uint64 = ^uint64(0), 0
	n, err = r.Run(0, trace.ObserverFunc(func(ev *trace.Event) {
		if first == ^uint64(0) {
			first = ev.Seq
		}
		last = ev.Seq
	}))
	if n != 600 || err != nil {
		t.Fatalf("Run(0) after budget = %d, %v; want 600, nil", n, err)
	}
	if first != 400 || last != 999 {
		t.Fatalf("continuation seq range [%d, %d], want [400, 999]", first, last)
	}
	if n, err := r.Run(0, nil); n != 0 || err != nil {
		t.Fatalf("Run at end of trace = %d, %v; want 0, nil", n, err)
	}
	if r.Retired() != 1000 {
		t.Fatalf("Retired() = %d, want 1000", r.Retired())
	}
}

// TestRecordBudgetIsNotAnError pins Record's contract: a budget-bounded
// recording succeeds, and the file holds exactly the budget.
func TestRecordBudgetIsNotAnError(t *testing.T) {
	dir := t.TempDir()
	path := recordBenchmark(t, dir, "CommBench/drr/drr", 5000)
	ev, err := trace.Validate(mustRead(t, path))
	if err != nil {
		t.Fatal(err)
	}
	if ev != 5000 {
		t.Fatalf("trace holds %d events, want 5000", ev)
	}
}

// TestWriterRejectsInconsistentStream: a stream whose metadata changes
// under one PC (impossible from the VM, possible from a buggy hand
// producer) is rejected at record time, and the target path never
// appears.
func TestWriterRejectsInconsistentStream(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.trc")
	w, err := trace.NewWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	ev := trace.Event{Seq: 0, PC: 0x10000, Op: 1, Class: 0}
	ev.DeriveDeps()
	ev.Class = ev.Op.Class()
	w.Observe(&ev)
	ev2 := ev
	ev2.Seq = 1
	ev2.NSrc = 2 // metadata changed under the same PC
	w.Observe(&ev2)
	if err := w.Close(); err == nil {
		t.Fatal("Close accepted an inconsistent stream")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("rejected recording left a file behind: %v", err)
	}
}

// TestVersionMismatchNamesFile: the version error carries the file name
// and the "version N, want M" wording shared with the phase caches and
// the ivstore manifest.
func TestVersionMismatchNamesFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "future.trc")
	data := mustRead(t, recordBenchmark(t, dir, "MiBench/sha/large", 100))
	data[8] = 99 // version field
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := trace.Open(path)
	if err == nil {
		t.Fatal("Open accepted a future version")
	}
	for _, want := range []string{path, "version 99, want 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("version error %q does not mention %q", err, want)
		}
	}
}

func mustRead(t testing.TB, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSaveBytesRoundTrip: SaveBytes commits validated bytes under the
// durable-rename protocol and refuses bytes that do not carry a trace
// header, so the serving layer can never persist garbage under a .trc
// name.
func TestSaveBytesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := recordBenchmark(t, dir, "MiBench/sha/large", 500)
	raw := mustRead(t, src)

	dst := filepath.Join(dir, "copy.trc")
	if err := trace.SaveBytes(dst, raw); err != nil {
		t.Fatal(err)
	}
	if got := mustRead(t, dst); string(got) != string(raw) {
		t.Fatal("SaveBytes did not preserve the trace bytes")
	}
	if _, err := os.Stat(dst + ".tmp"); !os.IsNotExist(err) {
		t.Error("SaveBytes left its temporary file behind")
	}
	r, err := trace.Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != dst {
		t.Errorf("reader name %q, want the path %q", r.Name(), dst)
	}

	if err := trace.SaveBytes(filepath.Join(dir, "bad.trc"), []byte("not a trace")); err == nil {
		t.Error("SaveBytes accepted headerless bytes")
	}
	if err := trace.SaveBytes(filepath.Join(dir, "missing", "deep", "x.trc"), raw); err == nil {
		t.Error("SaveBytes wrote into a nonexistent directory")
	}
}

// TestOpenAndRecordErrorPaths: the file-level failure modes surface as
// errors, not panics or partial files.
func TestOpenAndRecordErrorPaths(t *testing.T) {
	dir := t.TempDir()
	if _, err := trace.Open(filepath.Join(dir, "nope.trc")); err == nil {
		t.Error("Open accepted a missing file")
	}
	b, err := suites.ByName("MiBench/sha/large")
	if err != nil {
		t.Fatal(err)
	}
	m, err := b.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Record(m, filepath.Join(dir, "no", "such", "dir.trc"), 100); err == nil {
		t.Error("Record accepted an uncreatable path")
	}
}

// TestWriterEventsCounter: Events tracks the recorded count as the
// stream flows, matching what Record returns and what the trailer
// commits.
func TestWriterEventsCounter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "n.trc")
	w, err := trace.NewWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := suites.ByName("MiBench/sha/large")
	if err != nil {
		t.Fatal(err)
	}
	m, err := b.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(250, w); !errors.Is(err, trace.ErrBudget) {
		t.Fatalf("Run: %v", err)
	}
	if w.Events() != 250 {
		t.Errorf("Events() = %d mid-stream, want 250", w.Events())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := trace.Validate(mustRead(t, path))
	if err != nil {
		t.Fatal(err)
	}
	if n != 250 {
		t.Errorf("committed trace replays %d events, want 250", n)
	}
}
