package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"mica/internal/isa"
)

// Reader replays a recorded trace as a Source. It mirrors the VM's Run
// contract exactly — budget <= 0 is unlimited, ErrBudget when the
// budget stops delivery, nil when the trace ends (the replayed
// program's halt), sequence numbers continuing across calls — so every
// pipeline built on Source behaves identically over a Reader and a
// live machine.
//
// The whole file is held in memory (traces are megabytes; uploads are
// size-bounded) and decoded incrementally, so opening is cheap, replay
// touches no I/O, and Reset rewinds for a second pass without reopening
// the file. A Reader is not safe for concurrent use; replay passes that
// need independent cursors open the file twice.
//
// Decoding is defensive: lengths, CRCs, register numbers, opcodes and
// indexes are validated before use, so corrupt, truncated or oversized
// inputs return errors and never panic (FuzzTraceDecode pins this).
// Decode errors are sticky — once the stream is bad, every further Run
// fails.
type Reader struct {
	name string
	data []byte

	// Static instruction state, grown as blocks define records.
	templates []Event
	kinds     []uint8
	base      []uint64 // fall-through code index per static

	off     int // next block header offset in data
	evOff   int // next event byte in the current block
	evEnd   int // end of the current block's event bytes
	evLeft  int // events remaining in the current block
	seen    uint64
	retired uint64
	done    bool

	prevStatic  uint32
	prevMemAddr uint64

	err error
}

// Open reads the trace file at path into memory and prepares it for
// replay. Only the header is validated here; block checksums are
// verified as replay reaches them.
func Open(path string) (*Reader, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return NewReader(data, path)
}

// NewReader prepares an in-memory encoded trace for replay. name labels
// the trace in error messages (Open passes the file path; the serving
// layer passes an upload label).
func NewReader(data []byte, name string) (*Reader, error) {
	if err := checkHeader(data, name); err != nil {
		return nil, err
	}
	return &Reader{name: name, data: data, off: headerLen}, nil
}

// Name returns the label the trace was opened under.
func (r *Reader) Name() string { return r.name }

// Retired returns the number of events replayed so far.
func (r *Reader) Retired() uint64 { return r.retired }

// Reset rewinds the reader to the start of the trace for another
// replay pass.
func (r *Reader) Reset() {
	r.templates = r.templates[:0]
	r.kinds = r.kinds[:0]
	r.base = r.base[:0]
	r.off = headerLen
	r.evOff, r.evEnd, r.evLeft = 0, 0, 0
	r.seen, r.retired = 0, 0
	r.done = false
	r.prevStatic, r.prevMemAddr = 0, 0
	r.err = nil
}

// corrupt builds and stickies a decode error.
func (r *Reader) corrupt(format string, args ...any) error {
	err := fmt.Errorf("trace: %s: %s", r.name, fmt.Sprintf(format, args...))
	if r.err == nil {
		r.err = err
	}
	return err
}

// Run implements Source, replaying up to budget events into obs.
func (r *Reader) Run(budget uint64, obs Observer) (uint64, error) {
	if r.err != nil {
		return 0, r.err
	}
	var (
		n    uint64
		ev   Event
		d    = r.data
		i    = r.evOff
		prev = r.prevStatic
	)
	defer func() {
		r.evOff = i
		r.prevStatic = prev
		r.retired += n
		metEventsDecoded.Add(float64(n))
	}()
	for {
		if budget > 0 && n >= budget {
			return n, ErrBudget
		}
		if r.evLeft == 0 {
			r.evOff = i
			if err := r.nextBlock(); err != nil {
				return n, err
			}
			i = r.evOff
			if r.done {
				return n, nil
			}
			continue
		}

		v, sz := binary.Uvarint(d[i:r.evEnd])
		if sz <= 0 {
			return n, r.corrupt("truncated event record at byte %d", i)
		}
		i += sz
		id := int64(prev) + unzigzag(v)
		if id < 0 || id >= int64(len(r.templates)) {
			return n, r.corrupt("event references undefined static record %d", id)
		}
		prev = uint32(id)

		ev = r.templates[id]
		ev.Seq = r.retired + n
		switch r.kinds[id] {
		case kindMem:
			v, sz = binary.Uvarint(d[i:r.evEnd])
			if sz <= 0 {
				return n, r.corrupt("truncated memory-address delta at byte %d", i)
			}
			i += sz
			r.prevMemAddr += uint64(unzigzag(v))
			ev.MemAddr = r.prevMemAddr
		case kindCond:
			v, sz = binary.Uvarint(d[i:r.evEnd])
			if sz <= 0 {
				return n, r.corrupt("truncated branch record at byte %d", i)
			}
			i += sz
			if v == 0 {
				ev.Target = isa.PCForIndex(int(r.base[id]))
			} else {
				t := int64(r.base[id]) + unzigzag(v-1)
				if t < 0 || t > maxPCIndex {
					return n, r.corrupt("branch target index %d out of range", t)
				}
				ev.Taken = true
				ev.Target = isa.PCForIndex(int(t))
			}
		case kindUncond:
			v, sz = binary.Uvarint(d[i:r.evEnd])
			if sz <= 0 {
				return n, r.corrupt("truncated jump record at byte %d", i)
			}
			i += sz
			t := int64(r.base[id]) + unzigzag(v)
			if t < 0 || t > maxPCIndex {
				return n, r.corrupt("jump target index %d out of range", t)
			}
			ev.Taken = true
			ev.Target = isa.PCForIndex(int(t))
		}
		if obs != nil {
			obs.Observe(&ev)
		}
		r.evLeft--
		n++
	}
}

// nextBlock frames and validates the next block (or the trailer),
// parsing its static records and positioning the event cursor.
func (r *Reader) nextBlock() error {
	if r.evOff != r.evEnd {
		return r.corrupt("block has %d trailing bytes after its events", r.evEnd-r.evOff)
	}
	d := r.data
	if r.off+4 > len(d) {
		return r.corrupt("truncated block header at byte %d", r.off)
	}
	bl := binary.LittleEndian.Uint32(d[r.off:])
	if bl == endMarker {
		if r.off+12 > len(d) {
			return r.corrupt("truncated trailer at byte %d", r.off)
		}
		total := binary.LittleEndian.Uint64(d[r.off+4:])
		if r.off+12 != len(d) {
			return r.corrupt("%d trailing bytes after trailer", len(d)-r.off-12)
		}
		if total != r.seen {
			return r.corrupt("trailer claims %d events, stream holds %d", total, r.seen)
		}
		r.done = true
		return nil
	}
	if bl > maxBlockLen {
		return r.corrupt("block length %d exceeds limit %d", bl, maxBlockLen)
	}
	if r.off+8+int(bl) > len(d) {
		return r.corrupt("truncated block at byte %d (%d byte payload)", r.off, bl)
	}
	want := binary.LittleEndian.Uint32(d[r.off+4:])
	payload := d[r.off+8 : r.off+8+int(bl)]
	if got := crc32.ChecksumIEEE(payload); got != want {
		return r.corrupt("block at byte %d fails its checksum (%08x != %08x)", r.off, got, want)
	}
	r.off += 8 + int(bl)
	metBytesRead.Add(float64(8 + int(bl)))

	p := 0
	nStatic, sz := binary.Uvarint(payload)
	if sz <= 0 {
		return r.corrupt("unreadable static-record count")
	}
	p += sz
	// Each static record is at least 3 bytes, so the count is bounded
	// by the payload; reject inflated counts before growing anything.
	if nStatic > uint64(len(payload)-p)/3+1 {
		return r.corrupt("static-record count %d exceeds block size", nStatic)
	}
	for s := uint64(0); s < nStatic; s++ {
		pcIndex, sz := binary.Uvarint(payload[p:])
		if sz <= 0 {
			return r.corrupt("truncated static record %d", s)
		}
		p += sz
		if p+2 > len(payload) {
			return r.corrupt("truncated static record %d", s)
		}
		op := isa.Op(payload[p])
		flags := payload[p+1]
		p += 2
		if flags&^0b111 != 0 {
			return r.corrupt("static record %d has unknown flags %#x", s, flags)
		}
		hasDst := flags&1 != 0
		nsrc := flags >> 1
		var src [3]isa.Reg
		if p+int(nsrc) > len(payload) {
			return r.corrupt("truncated static record %d", s)
		}
		for i := uint8(0); i < nsrc; i++ {
			src[i] = isa.Reg(payload[p])
			p++
		}
		dst := isa.RegInvalid
		if hasDst {
			if p >= len(payload) {
				return r.corrupt("truncated static record %d", s)
			}
			dst = isa.Reg(payload[p])
			p++
		}
		tmpl, kind, err := buildStatic(pcIndex, op, src, nsrc, dst, hasDst)
		if err != nil {
			return r.corrupt("static record %d: %v", s, err)
		}
		r.templates = append(r.templates, tmpl)
		r.kinds = append(r.kinds, kind)
		r.base = append(r.base, pcIndex+1)
	}

	nEvents, sz := binary.Uvarint(payload[p:])
	if sz <= 0 {
		return r.corrupt("unreadable event count")
	}
	p += sz
	if nEvents > uint64(len(payload)-p) {
		return r.corrupt("event count %d exceeds block size", nEvents)
	}
	r.evOff = r.off - int(bl) + p
	r.evEnd = r.off
	r.evLeft = int(nEvents)
	r.seen += nEvents
	return nil
}

// Validate decodes an in-memory encoded trace end to end with no
// observer attached, returning the number of events it holds. The
// serving layer runs every upload through it before accepting the
// trace.
func Validate(data []byte) (uint64, error) {
	r, err := NewReader(data, "upload")
	if err != nil {
		return 0, err
	}
	return r.Run(0, nil)
}
