package trace

import "mica/internal/obs"

// Replay metrics on the default registry, batched per Run call and
// per block — never per event.
var (
	metEventsDecoded = obs.Default().Counter("mica_trace_events_decoded_total", "Events decoded from trace replay.")
	metBytesRead     = obs.Default().Counter("mica_trace_bytes_read_total", "Trace container bytes consumed (block framing + payload).")
)
