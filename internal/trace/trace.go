// Package trace defines the dynamic instruction event stream the
// analyzers consume, and the sources that produce it. It is the
// reproduction's substitute for ATOM binary instrumentation: where the
// paper instruments an Alpha binary so that analysis routines run per
// retired instruction, here a Source delivers one Event per retired
// instruction to every registered Observer in a single pass.
//
// Two producers implement Source. The embedded VM (internal/vm)
// interprets a kernel and emits events live; it is how the 122 registry
// benchmarks run. The Reader in this package replays a previously
// recorded trace file, so any event stream — a VM run captured with
// Record or a Writer, or a trace converted from an external tool — can
// be characterized without re-executing the program. The on-disk format
// (see format.go) is versioned, CRC-checked and delta-packed; replay
// decodes tens of millions of events per second, so trace-backed
// characterization is bounded by the analyzers, not by interpretation.
package trace

import "mica/internal/isa"

// Event describes one dynamically executed (retired) instruction.
// Events are delivered by pointer and must not be retained by observers;
// copy any needed fields.
type Event struct {
	// Seq is the zero-based dynamic instruction number.
	Seq uint64
	// PC is the byte address of the instruction.
	PC uint64
	// Op is the opcode; Class caches Op.Class().
	Op    isa.Op
	Class isa.Class

	// Src holds the architectural source registers (zero registers
	// included); NSrc is how many entries are valid.
	Src  [3]isa.Reg
	NSrc uint8
	// Dst is the destination register; HasDst reports whether the
	// instruction writes a register.
	Dst    isa.Reg
	HasDst bool

	// DepSrc/NDepSrc and DepDst/HasDepDst are the dependence-carrying
	// views of the operands: the same registers with the hardwired
	// zeros filtered out at decode time, so dependence-tracking
	// observers skip the per-instruction filtering.
	DepSrc    [3]isa.Reg
	NDepSrc   uint8
	DepDst    isa.Reg
	HasDepDst bool

	// MemAddr and MemSize describe the memory access of loads and
	// stores; MemSize is 0 otherwise.
	MemAddr uint64
	MemSize uint8

	// Taken, Conditional and Target are the branch outcome, valid when
	// Class == ClassBranch. Taken is always true for unconditional
	// transfers; Conditional marks conditional branches. Target is the
	// byte address actually transferred to when taken; for not-taken
	// branches it is the fall-through address.
	Taken       bool
	Conditional bool
	Target      uint64
}

// DeriveDeps fills the dependence-carrying operand view (DepSrc, NDepSrc,
// DepDst, HasDepDst) from the architectural fields. The VM copies both
// views from decode-time metadata; this helper is for event producers
// that build events by hand (generators, tests).
func (ev *Event) DeriveDeps() {
	ev.NDepSrc = 0
	for i := uint8(0); i < ev.NSrc; i++ {
		if r := ev.Src[i]; !r.IsZero() {
			ev.DepSrc[ev.NDepSrc] = r
			ev.NDepSrc++
		}
	}
	if ev.HasDst && !ev.Dst.IsZero() {
		ev.DepDst, ev.HasDepDst = ev.Dst, true
	} else {
		ev.DepDst, ev.HasDepDst = isa.RegInvalid, false
	}
}

// Observer consumes the dynamic instruction stream.
type Observer interface {
	// Observe is called once per retired instruction in program order.
	Observe(ev *Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(ev *Event)

// Observe calls f(ev).
func (f ObserverFunc) Observe(ev *Event) { f(ev) }

// Multi fans one event stream out to several observers in order.
type Multi []Observer

// Observe delivers ev to each observer in sequence.
func (m Multi) Observe(ev *Event) {
	for _, o := range m {
		o.Observe(ev)
	}
}

// Counter counts events per instruction class; it is the simplest useful
// observer and handy in tests.
type Counter struct {
	Total   uint64
	ByClass [isa.NumClasses]uint64
}

// Observe implements Observer.
func (c *Counter) Observe(ev *Event) {
	c.Total++
	c.ByClass[ev.Class]++
}
