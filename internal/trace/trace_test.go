package trace

import (
	"testing"

	"mica/internal/isa"
)

func TestObserverFunc(t *testing.T) {
	var got []uint64
	obs := ObserverFunc(func(ev *Event) { got = append(got, ev.Seq) })
	for i := uint64(0); i < 3; i++ {
		obs.Observe(&Event{Seq: i})
	}
	if len(got) != 3 || got[2] != 2 {
		t.Errorf("observed %v", got)
	}
}

func TestMultiFanOutOrder(t *testing.T) {
	var order []string
	mk := func(name string) Observer {
		return ObserverFunc(func(*Event) { order = append(order, name) })
	}
	m := Multi{mk("a"), mk("b"), mk("c")}
	m.Observe(&Event{})
	if len(order) != 3 || order[0] != "a" || order[2] != "c" {
		t.Errorf("delivery order %v", order)
	}
}

func TestMultiEmpty(t *testing.T) {
	var m Multi
	m.Observe(&Event{}) // must not panic
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Observe(&Event{Class: isa.ClassLoad})
	c.Observe(&Event{Class: isa.ClassLoad})
	c.Observe(&Event{Class: isa.ClassFP})
	if c.Total != 3 {
		t.Errorf("total = %d", c.Total)
	}
	if c.ByClass[isa.ClassLoad] != 2 || c.ByClass[isa.ClassFP] != 1 {
		t.Errorf("class counts = %v", c.ByClass)
	}
}
