package trace_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"mica/internal/trace"
)

// goldenPath is a small committed trace (MiBench/sha/large, 2000
// instructions) recorded by this very package. It pins both directions
// of the format: re-recording the deterministic kernel must reproduce
// the committed bytes exactly (encoder stability — any on-disk layout
// change is a reviewed, versioned decision), and the committed file
// must replay to the expected event count (decoder compatibility — old
// traces stay readable).
//
// Regenerate (after a deliberate, version-bumped format change) with:
//
//	MICATRACE_UPDATE_GOLDEN=1 go test ./internal/trace/ -run Golden
const goldenPath = "testdata/golden.trc"

const goldenBench = "MiBench/sha/large"
const goldenBudget = 2_000

func TestGoldenTraceRoundTrip(t *testing.T) {
	fresh := recordBenchmark(t, t.TempDir(), goldenBench, goldenBudget)
	freshBytes := mustRead(t, fresh)

	if os.Getenv("MICATRACE_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := trace.SaveBytes(goldenPath, freshBytes); err != nil {
			t.Fatal(err)
		}
		t.Log("golden trace regenerated")
	}

	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden trace missing (run with MICATRACE_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(golden, freshBytes) {
		t.Fatalf("recording %s no longer reproduces the committed golden trace "+
			"(%d bytes vs %d committed) — if the format changed deliberately, bump "+
			"Version and regenerate", goldenBench, len(freshBytes), len(golden))
	}
	n, err := trace.Validate(golden)
	if err != nil {
		t.Fatalf("committed golden trace no longer validates: %v", err)
	}
	if n != goldenBudget {
		t.Fatalf("golden trace replays %d events, want %d", n, goldenBudget)
	}
}

// FuzzTraceDecode: arbitrary bytes fed to the trace decoder must either
// replay cleanly or return an error — truncation, bit flips, corrupt
// block lengths and oversized counts can never panic or over-allocate.
// Anything Validate accepts must then actually replay through a Reader
// to the same event count, twice (Reset is part of the decode
// contract: phase analysis replays every trace twice).
func FuzzTraceDecode(f *testing.F) {
	valid := mustRead(f, recordBenchmark(f, f.TempDir(), goldenBench, 500))
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("MICATRC\x00")) // bare magic, no version/trailer
	truncated := valid[:len(valid)/2]
	f.Add(truncated)
	badVersion := bytes.Clone(valid)
	badVersion[8] = 99
	f.Add(badVersion)
	flipped := bytes.Clone(valid)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, raw []byte) {
		n, err := trace.Validate(raw)
		if err != nil {
			return
		}
		r, err := trace.NewReader(raw, "fuzz")
		if err != nil {
			t.Fatalf("Validate accepted what NewReader rejects: %v", err)
		}
		for pass := 0; pass < 2; pass++ {
			got, err := r.Run(0, nil)
			if err != nil {
				t.Fatalf("pass %d: Validate accepted what Run rejects after %d events: %v", pass, got, err)
			}
			if got != n {
				t.Fatalf("pass %d replayed %d events, Validate counted %d", pass, got, n)
			}
			r.Reset()
		}
	})
}
