package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"mica/internal/isa"
)

// Writer is a recording Observer: attach it to any Source (typically a
// VM run, possibly alongside profilers via Multi) and it streams the
// events into the on-disk trace format. The file is written through the
// tmp -> fsync -> rename protocol, so the committed name only ever
// holds a complete trace; until Close succeeds nothing exists at path.
//
// Writer verifies as it encodes: every event is compared against the
// exact Event the Reader will reconstruct, so a stream that is not
// representable (static instruction metadata changing under one PC,
// non-sequential sequence numbers, invalid registers) is rejected at
// record time instead of replaying wrong. Observe cannot return an
// error, so failures are sticky and surface from Close.
type Writer struct {
	path string
	tmp  string
	f    *os.File
	bw   *bufio.Writer

	statics   map[uint64]uint32 // pcIndex -> static id
	templates []Event
	kinds     []uint8
	base      []uint64 // fall-through code index (pcIndex+1) per static

	staticBuf []byte // encoded static records pending in this block
	eventBuf  []byte // encoded event records pending in this block
	nStatics  int    // static records pending in this block
	nEvents   int    // events pending in this block

	prevStatic  uint32
	prevMemAddr uint64
	count       uint64

	err    error
	closed bool
}

// NewWriter creates a trace writer targeting path. The data goes to
// path+".tmp" until Close renames it into place.
func NewWriter(path string) (*Writer, error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	w := &Writer{
		path:    path,
		tmp:     tmp,
		f:       f,
		bw:      bufio.NewWriterSize(f, 256<<10),
		statics: make(map[uint64]uint32),
	}
	if _, err := w.bw.Write(appendHeader(nil)); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	return w, nil
}

// Events returns the number of events recorded so far.
func (w *Writer) Events() uint64 { return w.count }

// fail records the first error; later events are dropped.
func (w *Writer) fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

// Observe implements Observer, encoding one event.
func (w *Writer) Observe(ev *Event) {
	if w.err != nil || w.closed {
		return
	}
	if ev.Seq != w.count {
		w.fail(fmt.Errorf("trace: %s: event sequence %d, want %d (record from a fresh source)", w.path, ev.Seq, w.count))
		return
	}
	if ev.PC < isa.CodeBase || (ev.PC-isa.CodeBase)%isa.InstBytes != 0 {
		w.fail(fmt.Errorf("trace: %s: event %d at non-code address %#x", w.path, ev.Seq, ev.PC))
		return
	}
	pcIndex := (ev.PC - isa.CodeBase) / isa.InstBytes
	id, ok := w.statics[pcIndex]
	if !ok {
		var err error
		id, err = w.addStatic(pcIndex, ev)
		if err != nil {
			w.fail(fmt.Errorf("trace: %s: event %d: %w", w.path, ev.Seq, err))
			return
		}
	}

	// Reconstruct the event exactly as the Reader will and require the
	// input to match: the template plus this kind's dynamic fields.
	expected := w.templates[id]
	expected.Seq = ev.Seq
	kind := w.kinds[id]
	switch kind {
	case kindMem:
		expected.MemAddr = ev.MemAddr
	case kindCond:
		expected.Taken = ev.Taken
		if ev.Taken {
			expected.Target = ev.Target
		} else {
			expected.Target = isa.PCForIndex(int(w.base[id]))
		}
	case kindUncond:
		expected.Taken = true
		expected.Target = ev.Target
	}
	if expected != *ev {
		w.fail(fmt.Errorf("trace: %s: event %d at pc %#x does not match its static instruction record", w.path, ev.Seq, ev.PC))
		return
	}

	w.eventBuf = binary.AppendUvarint(w.eventBuf, zigzag(int64(id)-int64(w.prevStatic)))
	w.prevStatic = id
	switch kind {
	case kindMem:
		w.eventBuf = binary.AppendUvarint(w.eventBuf, zigzag(int64(ev.MemAddr-w.prevMemAddr)))
		w.prevMemAddr = ev.MemAddr
	case kindCond:
		if !ev.Taken {
			w.eventBuf = append(w.eventBuf, 0)
		} else {
			d, err := w.targetDelta(id, ev)
			if err != nil {
				return
			}
			w.eventBuf = binary.AppendUvarint(w.eventBuf, zigzag(d)+1)
		}
	case kindUncond:
		d, err := w.targetDelta(id, ev)
		if err != nil {
			return
		}
		w.eventBuf = binary.AppendUvarint(w.eventBuf, zigzag(d))
	}
	w.count++
	w.nEvents++
	if len(w.eventBuf)+len(w.staticBuf) >= blockTarget {
		w.flushBlock()
	}
}

// targetDelta encodes a taken-branch target as a code-index delta
// against the fall-through; it fails the writer on non-code targets.
func (w *Writer) targetDelta(id uint32, ev *Event) (int64, error) {
	if ev.Target < isa.CodeBase || (ev.Target-isa.CodeBase)%isa.InstBytes != 0 {
		err := fmt.Errorf("trace: %s: event %d branches to non-code address %#x", w.path, ev.Seq, ev.Target)
		w.fail(err)
		return 0, err
	}
	tIdx := (ev.Target - isa.CodeBase) / isa.InstBytes
	if tIdx > maxPCIndex {
		err := fmt.Errorf("trace: %s: event %d branch target index %d out of range", w.path, ev.Seq, tIdx)
		w.fail(err)
		return 0, err
	}
	return int64(tIdx) - int64(w.base[id]), nil
}

// addStatic registers the static instruction behind ev and appends its
// encoded record to the pending block.
func (w *Writer) addStatic(pcIndex uint64, ev *Event) (uint32, error) {
	dst := ev.Dst
	if !ev.HasDst {
		dst = isa.RegInvalid
	}
	tmpl, kind, err := buildStatic(pcIndex, ev.Op, ev.Src, ev.NSrc, dst, ev.HasDst)
	if err != nil {
		return 0, err
	}
	id := uint32(len(w.templates))
	w.statics[pcIndex] = id
	w.templates = append(w.templates, tmpl)
	w.kinds = append(w.kinds, kind)
	w.base = append(w.base, pcIndex+1)

	w.nStatics++
	w.staticBuf = binary.AppendUvarint(w.staticBuf, pcIndex)
	w.staticBuf = append(w.staticBuf, uint8(ev.Op), staticFlags(ev.HasDst, ev.NSrc))
	for i := uint8(0); i < ev.NSrc; i++ {
		w.staticBuf = append(w.staticBuf, uint8(ev.Src[i]))
	}
	if ev.HasDst {
		w.staticBuf = append(w.staticBuf, uint8(ev.Dst))
	}
	return id, nil
}

// flushBlock frames the pending statics and events as one CRC-checked
// block and hands it to the buffered file.
func (w *Writer) flushBlock() {
	if w.err != nil || (len(w.staticBuf) == 0 && w.nEvents == 0) {
		return
	}
	payload := binary.AppendUvarint(nil, uint64(w.nStatics))
	payload = append(payload, w.staticBuf...)
	payload = binary.AppendUvarint(payload, uint64(w.nEvents))
	payload = append(payload, w.eventBuf...)

	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		w.fail(err)
		return
	}
	if _, err := w.bw.Write(payload); err != nil {
		w.fail(err)
		return
	}
	w.staticBuf = w.staticBuf[:0]
	w.eventBuf = w.eventBuf[:0]
	w.nStatics = 0
	w.nEvents = 0
}

// Discard abandons the recording and removes the temporary file. It is
// safe to call after a failed run instead of Close.
func (w *Writer) Discard() {
	if w.closed {
		return
	}
	w.closed = true
	w.f.Close()
	os.Remove(w.tmp)
}

// Close flushes the final block, writes the trailer, fsyncs and renames
// the file into place (fsyncing the directory after). If any event
// failed to encode, Close removes the temporary file and returns that
// error; path is untouched.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.flushBlock()
	if w.err != nil {
		w.Discard()
		return w.err
	}
	w.closed = true
	var trailer [12]byte
	binary.LittleEndian.PutUint32(trailer[:4], endMarker)
	binary.LittleEndian.PutUint64(trailer[4:], w.count)
	_, err := w.bw.Write(trailer[:])
	if err == nil {
		err = w.bw.Flush()
	}
	if err == nil {
		err = w.f.Sync()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(w.tmp, w.path)
	}
	if err == nil {
		err = syncDir(filepath.Dir(w.path))
	}
	if err != nil {
		os.Remove(w.tmp)
		w.err = err
	}
	return err
}

// Record runs src to completion (or through budget instructions) while
// recording every event to path, and returns the number of events
// recorded. Hitting the budget is the normal way to bound a trace and
// is not an error; any other source failure discards the partial file.
func Record(src Source, path string, budget uint64) (uint64, error) {
	w, err := NewWriter(path)
	if err != nil {
		return 0, err
	}
	n, err := src.Run(budget, w)
	if err != nil && !errors.Is(err, ErrBudget) {
		w.Discard()
		return n, err
	}
	if err := w.Close(); err != nil {
		return n, err
	}
	return n, nil
}
