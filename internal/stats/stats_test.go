package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("mean = %g, want 5", got)
	}
	if got := Std(xs); got != 2 {
		t.Errorf("std = %g, want 2", got)
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Error("empty inputs should give 0")
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 6)
	if m.At(0, 0) != 1 || m.At(1, 2) != 6 {
		t.Error("At/Set round trip failed")
	}
	row := m.Row(1)
	row[0] = 9
	if m.At(1, 0) != 9 {
		t.Error("Row is not a view")
	}
	col := m.Column(0)
	if col[0] != 1 || col[1] != 9 {
		t.Errorf("Column = %v", col)
	}
	c := m.Clone()
	c.Set(0, 0, 100)
	if m.At(0, 0) == 100 {
		t.Error("Clone shares storage")
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.Rows != 2 || m.Cols != 2 || m.At(1, 0) != 3 {
		t.Error("FromRows wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestSelectColumns(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	s := m.SelectColumns([]int{2, 0})
	if s.Cols != 2 || s.At(0, 0) != 3 || s.At(1, 1) != 4 {
		t.Errorf("SelectColumns wrong: %+v", s)
	}
}

func TestZScoreNormalize(t *testing.T) {
	m := FromRows([][]float64{{1, 10, 5}, {2, 20, 5}, {3, 30, 5}})
	z := ZScoreNormalize(m)
	for j := 0; j < 2; j++ {
		col := z.Column(j)
		if math.Abs(Mean(col)) > 1e-12 {
			t.Errorf("column %d mean = %g, want 0", j, Mean(col))
		}
		if math.Abs(Std(col)-1) > 1e-12 {
			t.Errorf("column %d std = %g, want 1", j, Std(col))
		}
	}
	// Constant column becomes zeros, not NaN.
	for i := 0; i < 3; i++ {
		if z.At(i, 2) != 0 {
			t.Errorf("constant column z-score = %g, want 0", z.At(i, 2))
		}
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, y); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect correlation = %g, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %g, want -1", got)
	}
	if got := Pearson(x, []float64{5, 5, 5, 5, 5}); got != 0 {
		t.Errorf("correlation with constant = %g, want 0", got)
	}
	if Pearson(x, []float64{1, 2}) != 0 {
		t.Error("length mismatch should give 0")
	}
}

func TestPearsonBounded(t *testing.T) {
	f := func(xs, ys []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		// Constrain magnitudes so intermediate products cannot
		// overflow; characteristic data is normalized anyway.
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = math.Mod(xs[i], 1e6)
			y[i] = math.Mod(ys[i], 1e6)
			if math.IsNaN(x[i]) {
				x[i] = 0
			}
			if math.IsNaN(y[i]) {
				y[i] = 0
			}
		}
		r := Pearson(x, y)
		return r >= -1.0000001 && r <= 1.0000001 && !math.IsNaN(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpearman(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	// Monotone nonlinear transform: Spearman sees perfect correlation,
	// Pearson does not.
	y := []float64{1, 8, 27, 64, 125}
	if got := Spearman(x, y); math.Abs(got-1) > 1e-12 {
		t.Errorf("Spearman on monotone data = %g, want 1", got)
	}
	if p := Pearson(x, y); p >= 1-1e-9 {
		t.Errorf("Pearson on cubic data = %g, expected < 1", p)
	}
	rev := []float64{5, 4, 3, 2, 1}
	if got := Spearman(x, rev); math.Abs(got+1) > 1e-12 {
		t.Errorf("Spearman on reversed = %g, want -1", got)
	}
	if Spearman(x, []float64{1}) != 0 {
		t.Error("length mismatch should give 0")
	}
}

func TestSpearmanTies(t *testing.T) {
	// Ties get averaged ranks; correlation with self remains 1.
	x := []float64{1, 2, 2, 3}
	if got := Spearman(x, x); math.Abs(got-1) > 1e-12 {
		t.Errorf("Spearman(x,x) with ties = %g, want 1", got)
	}
	r := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}

func TestEuclidean(t *testing.T) {
	if got := Euclidean([]float64{0, 0}, []float64{3, 4}); got != 5 {
		t.Errorf("distance = %g, want 5", got)
	}
	if got := Euclidean([]float64{1}, []float64{1}); got != 0 {
		t.Errorf("self distance = %g", got)
	}
}

func TestPairwiseDistancesAndIndex(t *testing.T) {
	m := FromRows([][]float64{{0}, {1}, {3}, {6}})
	d := PairwiseDistances(m)
	if len(d) != NumPairs(4) {
		t.Fatalf("got %d pairs, want 6", len(d))
	}
	want := map[[2]int]float64{
		{0, 1}: 1, {0, 2}: 3, {0, 3}: 6,
		{1, 2}: 2, {1, 3}: 5,
		{2, 3}: 3,
	}
	for pair, dist := range want {
		idx := PairIndex(4, pair[0], pair[1])
		if d[idx] != dist {
			t.Errorf("distance(%d,%d) = %g at index %d, want %g", pair[0], pair[1], d[idx], idx, dist)
		}
		// Symmetric index.
		if PairIndex(4, pair[1], pair[0]) != idx {
			t.Error("PairIndex not symmetric")
		}
	}
}

func TestPairIndexCoversAll(t *testing.T) {
	n := 17
	seen := make([]bool, NumPairs(n))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			idx := PairIndex(n, i, j)
			if idx < 0 || idx >= len(seen) || seen[idx] {
				t.Fatalf("PairIndex(%d,%d,%d) = %d invalid or duplicate", n, i, j, idx)
			}
			seen[idx] = true
		}
	}
}

func TestMax(t *testing.T) {
	if Max([]float64{3, 9, 1}) != 9 {
		t.Error("Max wrong")
	}
	if Max(nil) != 0 {
		t.Error("Max of empty should be 0")
	}
}

func TestMinMaxNormalizeColumns(t *testing.T) {
	m := FromRows([][]float64{{0, 7}, {5, 7}, {10, 7}})
	n := MinMaxNormalizeColumns(m)
	if n.At(0, 0) != 0 || n.At(1, 0) != 0.5 || n.At(2, 0) != 1 {
		t.Errorf("column 0 normalized wrong: %v", n.Column(0))
	}
	for i := 0; i < 3; i++ {
		if n.At(i, 1) != 0.5 {
			t.Errorf("constant column -> %g, want 0.5", n.At(i, 1))
		}
	}
}
