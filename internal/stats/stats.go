package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mu := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - mu
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// ZScoreNormalize returns a copy of m with every column scaled to zero
// mean and unit standard deviation across the rows — the paper's
// normalization step that puts all characteristics on a common scale.
// Constant columns (zero standard deviation) become all-zero.
func ZScoreNormalize(m *Matrix) *Matrix {
	out := m.Clone()
	for j := 0; j < m.Cols; j++ {
		col := m.Column(j)
		mu, sd := Mean(col), Std(col)
		for i := 0; i < m.Rows; i++ {
			if sd == 0 {
				out.Set(i, j, 0)
			} else {
				out.Set(i, j, (m.At(i, j)-mu)/sd)
			}
		}
	}
	return out
}

// Pearson returns the Pearson correlation coefficient of x and y. It is 0
// when either input is constant or the lengths differ.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) == 0 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation of x and y: the Pearson
// correlation of their ranks. It is robust to monotone nonlinearity and
// is used as an ablation alternative to Pearson in the
// distance-correlation analyses.
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) || len(x) == 0 {
		return 0
	}
	return Pearson(ranks(x), ranks(y))
}

// ranks returns fractional ranks (ties averaged).
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		r := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = r
		}
		i = j + 1
	}
	return out
}

// Euclidean returns the Euclidean distance between two equal-length
// vectors.
func Euclidean(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: distance between vectors of length %d and %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// NumPairs returns the number of unordered benchmark tuples for n rows.
func NumPairs(n int) int { return n * (n - 1) / 2 }

// PairIndex returns the canonical index of pair (i, j), i < j, in the
// vector produced by PairwiseDistances.
func PairIndex(n, i, j int) int {
	if i > j {
		i, j = j, i
	}
	// Pairs are emitted in row-major upper-triangle order.
	return i*(2*n-i-1)/2 + (j - i - 1)
}

// PairwiseDistances returns the Euclidean distances between all unordered
// row pairs of m, in canonical (PairIndex) order. This is the "distance
// between all benchmark tuples" of Figures 1 and 5.
func PairwiseDistances(m *Matrix) []float64 {
	out := make([]float64, 0, NumPairs(m.Rows))
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		for j := i + 1; j < m.Rows; j++ {
			out = append(out, Euclidean(ri, m.Row(j)))
		}
	}
	return out
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// MinMaxNormalizeColumns scales every column of m into [0, 1] by its
// observed min and max; constant columns become 0.5. Used for kiviat
// plotting where axes must share a bounded range.
func MinMaxNormalizeColumns(m *Matrix) *Matrix {
	out := m.Clone()
	for j := 0; j < m.Cols; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < m.Rows; i++ {
			v := m.At(i, j)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		for i := 0; i < m.Rows; i++ {
			if hi == lo {
				out.Set(i, j, 0.5)
			} else {
				out.Set(i, j, (m.At(i, j)-lo)/(hi-lo))
			}
		}
	}
	return out
}
