// Package stats provides the statistical machinery of the paper's
// workload-space analysis: matrices of benchmark characteristics, z-score
// normalization, Pearson correlation, and Euclidean distances between
// benchmark tuples.
package stats

import "fmt"

// Matrix is a dense row-major matrix; rows are benchmarks, columns are
// characteristics.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("stats: bad matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all have equal
// length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("stats: row %d has %d columns, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// Len returns the number of rows; with Dim and Row it lets a Matrix
// serve as a row source for streaming consumers (cluster.Rows) without
// an adapter.
func (m *Matrix) Len() int { return m.Rows }

// Dim returns the number of columns.
func (m *Matrix) Dim() int { return m.Cols }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (not a copy).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Column returns a copy of column j.
func (m *Matrix) Column(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// SelectColumns returns a new matrix containing only the listed columns,
// in the given order.
func (m *Matrix) SelectColumns(cols []int) *Matrix {
	out := NewMatrix(m.Rows, len(cols))
	for i := 0; i < m.Rows; i++ {
		for k, j := range cols {
			out.Set(i, k, m.At(i, j))
		}
	}
	return out
}
