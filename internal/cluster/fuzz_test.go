package cluster

import (
	"math"
	"math/rand"
	"testing"

	"mica/internal/stats"
)

// FuzzBIC drives BIC with random matrices and clusterings derived
// deterministically from the fuzz inputs, checking its numeric
// contract: no NaN, never +Inf, -Inf exactly when the clustering has
// at least as many clusters as rows, and strictly decreasing when an
// empty cluster is added (the parameter penalty grows and the variance
// estimate loosens while the log-likelihood cannot improve).
//
// The seed corpus runs as an ordinary test in CI (`go test` executes
// fuzz seeds without -fuzz); `go test -fuzz=FuzzBIC ./internal/cluster`
// explores further.
func FuzzBIC(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(3), uint8(2))
	f.Add(int64(2006), uint8(64), uint8(8), uint8(10))
	f.Add(int64(-7), uint8(2), uint8(1), uint8(2))
	f.Add(int64(0), uint8(5), uint8(4), uint8(5))
	f.Add(int64(99), uint8(33), uint8(2), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, dRaw, kRaw uint8) {
		n := 1 + int(nRaw)%64
		d := 1 + int(dRaw)%8
		k := 1 + int(kRaw)%12
		rng := rand.New(rand.NewSource(seed))
		m := stats.NewMatrix(n, d)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64() * float64(1+int(dRaw)%5)
		}

		res := KMeans(m, k, seed)
		score := BIC(m, res)
		if math.IsNaN(score) {
			t.Fatalf("BIC is NaN for n=%d d=%d k=%d", n, d, res.K)
		}
		if math.IsInf(score, 1) {
			t.Fatalf("BIC is +Inf for n=%d d=%d k=%d", n, d, res.K)
		}
		if n <= res.K {
			if !math.IsInf(score, -1) {
				t.Fatalf("BIC finite (%g) with n=%d <= k=%d", score, n, res.K)
			}
			return
		}
		if math.IsInf(score, -1) {
			t.Fatalf("BIC -Inf with n=%d > k=%d", n, res.K)
		}

		// Monotonicity under model inflation: the same partition
		// presented as k+1 clusters (one empty) must score strictly
		// lower — the penalty term grows with k and the per-point
		// variance estimate only loosens.
		if n > res.K+1 {
			inflated := Result{
				K:         res.K + 1,
				Assign:    res.Assign,
				Centroids: stats.NewMatrix(res.K+1, d),
				SSE:       res.SSE,
			}
			worse := BIC(m, inflated)
			if !(worse < score) {
				t.Fatalf("BIC did not decrease under empty-cluster inflation: %g -> %g (n=%d d=%d k=%d)",
					score, worse, n, d, res.K)
			}
		}
	})
}

// FuzzBICStatsConsistency checks that the sufficient-statistics path
// the sweep uses (bicStats) agrees exactly with the public
// Result-based BIC.
func FuzzBICStatsConsistency(f *testing.F) {
	f.Add(int64(3), uint8(20), uint8(3), uint8(4))
	f.Add(int64(11), uint8(50), uint8(6), uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, dRaw, kRaw uint8) {
		n := 2 + int(nRaw)%48
		d := 1 + int(dRaw)%6
		k := 1 + int(kRaw)%8
		rng := rand.New(rand.NewSource(seed))
		m := stats.NewMatrix(n, d)
		for i := range m.Data {
			m.Data[i] = rng.Float64()*10 - 5
		}
		res := KMeans(m, k, seed)
		counts := make([]int, res.K)
		for _, c := range res.Assign {
			counts[c]++
		}
		a, b := BIC(m, res), bicStats(n, d, res.K, res.SSE, counts)
		if a != b && !(math.IsInf(a, -1) && math.IsInf(b, -1)) {
			t.Fatalf("BIC %g != bicStats %g", a, b)
		}
	})
}
