package cluster

import (
	"math/rand"

	"mica/internal/stats"
)

// SyntheticBlobs builds a deterministic rows x d Gaussian-blob matrix:
// `centers` cluster centers with per-coordinate std ctrStd, and points
// scattered around a uniformly chosen center with per-coordinate std
// noise. It is the shared fixture of the engine-quality tests and the
// tracked cluster benchmarks, kept in one place so test and harness
// always measure the same data recipe.
func SyntheticBlobs(rows, d, centers int, ctrStd, noise float64, seed int64) *stats.Matrix {
	rng := rand.New(rand.NewSource(seed))
	ctr := stats.NewMatrix(centers, d)
	for c := 0; c < centers; c++ {
		row := ctr.Row(c)
		for j := range row {
			row[j] = rng.NormFloat64() * ctrStd
		}
	}
	m := stats.NewMatrix(rows, d)
	for i := 0; i < rows; i++ {
		src := ctr.Row(rng.Intn(centers))
		row := m.Row(i)
		for j := range row {
			row[j] = src[j] + rng.NormFloat64()*noise
		}
	}
	return m
}

// SyntheticPhaseBlobs is SyntheticBlobs shaped like a z-score
// normalized 47-characteristic phase-interval space: cluster spread
// smaller than within-cluster noise, so clusters overlap the way real
// interval vectors do. (Well-separated blobs make Lloyd converge in a
// handful of iterations and understate the exact sweep's cost on real
// phase matrices, where it routinely runs to the iteration cap.)
func SyntheticPhaseBlobs(rows, centers int, seed int64) *stats.Matrix {
	return SyntheticBlobs(rows, 47, centers, 0.8, 1.5, seed)
}
