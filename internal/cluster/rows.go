package cluster

import (
	"math"

	"mica/internal/stats"
)

// Rows is the row-access abstraction the clustering engines run on. A
// *stats.Matrix satisfies it directly; out-of-core sources (the
// interval-vector store's shard reader) satisfy it by decoding one
// shard at a time, which is what lets a registry-scale sweep run in
// O(shard + k·d) memory instead of materializing a flat matrix.
//
// The slice returned by Row is only guaranteed valid until the next
// Row or Gather call on the same source: buffering sources (a
// normalized view, a shard cache) reuse their storage. Every engine
// honors this by holding at most one live row at a time.
type Rows interface {
	// Len returns the number of rows.
	Len() int
	// Dim returns the number of columns.
	Dim() int
	// Row returns row i, valid until the next Row/Gather call.
	Row(i int) []float64
}

// Gatherer is an optional Rows refinement for sources where random
// row access is expensive (a sharded on-disk store): Gather copies the
// rows named by idx into dst (dst row j = source row idx[j]),
// reordering its *reads* for locality while preserving the caller's
// row order. The minibatch engine gathers each random batch up front
// so a store-backed batch touches every needed shard once instead of
// once per row.
type Gatherer interface {
	Gather(idx []int, dst *stats.Matrix)
}

// gather copies the rows named by idx into dst, using the source's
// Gather when it has one and a plain row loop otherwise. dst must be
// len(idx) x src.Dim().
func gather(src Rows, idx []int, dst *stats.Matrix) {
	if g, ok := src.(Gatherer); ok {
		g.Gather(idx, dst)
		return
	}
	for j, i := range idx {
		copy(dst.Row(j), src.Row(i))
	}
}

// normalizedRows is a z-score view over a row source: Row(i) returns
// (x - mean) / std per column, 0 where std is 0 — the same expression
// stats.ZScoreNormalize materializes, applied lazily, so a clustering
// over Normalized(src, mean, std) is bit-identical to one over the
// materialized normalized matrix.
type normalizedRows struct {
	src       Rows
	mean, std []float64
	buf       []float64
	gbuf      *stats.Matrix // scratch for Gather forwarding
}

// Normalized wraps src in a lazy z-score view with the given
// per-column statistics (len(mean) == len(std) == src.Dim()). Rows
// returned by the view live in a reused buffer.
func Normalized(src Rows, mean, std []float64) Rows {
	return &normalizedRows{src: src, mean: mean, std: std, buf: make([]float64, src.Dim())}
}

func (n *normalizedRows) Len() int { return n.src.Len() }
func (n *normalizedRows) Dim() int { return n.src.Dim() }

func (n *normalizedRows) Row(i int) []float64 {
	n.normalizeInto(n.buf, n.src.Row(i))
	return n.buf
}

func (n *normalizedRows) normalizeInto(dst, raw []float64) {
	for j, v := range raw {
		if n.std[j] == 0 {
			dst[j] = 0
		} else {
			dst[j] = (v - n.mean[j]) / n.std[j]
		}
	}
}

// Gather forwards to the underlying source's locality-aware gather
// (falling back to the row loop) and normalizes dst in place, so a
// normalized view never costs the wrapped store its batched access
// pattern.
func (n *normalizedRows) Gather(idx []int, dst *stats.Matrix) {
	gather(n.src, idx, dst)
	for j := range idx {
		row := dst.Row(j)
		n.normalizeInto(row, row)
	}
}

// ColumnStats computes the per-column mean and population standard
// deviation of a row source in one streaming pass per statistic,
// accumulating each column's sum in row order — exactly the order
// stats.Mean/stats.Std use — so Normalized(src, ColumnStats(src)) is
// bit-identical to stats.ZScoreNormalize on the materialized matrix.
func ColumnStats(src Rows) (mean, std []float64) {
	n, d := src.Len(), src.Dim()
	mean = make([]float64, d)
	std = make([]float64, d)
	if n == 0 {
		return mean, std
	}
	for i := 0; i < n; i++ {
		row := src.Row(i)
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	for i := 0; i < n; i++ {
		row := src.Row(i)
		for j, v := range row {
			dv := v - mean[j]
			std[j] += dv * dv
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(n))
	}
	return mean, std
}
