package cluster

import (
	"math"
	"reflect"
	"testing"

	"mica/internal/stats"
)

// volatileRows serves matrix rows through a single reused buffer, the
// row-validity contract of the Rows interface taken literally. Any
// engine that holds one row across a Row call would corrupt its
// results here — the property store-backed shard readers rely on.
type volatileRows struct {
	m   *stats.Matrix
	buf []float64
}

func newVolatile(m *stats.Matrix) *volatileRows {
	return &volatileRows{m: m, buf: make([]float64, m.Cols)}
}

func (v *volatileRows) Len() int { return v.m.Rows }
func (v *volatileRows) Dim() int { return v.m.Cols }
func (v *volatileRows) Row(i int) []float64 {
	copy(v.buf, v.m.Row(i))
	return v.buf
}

// reverseGatherRows additionally implements Gather with a deliberately
// reordered read schedule (descending row index), the way a shard
// reader batches reads for locality — the values must land in caller
// order regardless.
type reverseGatherRows struct{ volatileRows }

func (r *reverseGatherRows) Gather(idx []int, dst *stats.Matrix) {
	for j := len(idx) - 1; j >= 0; j-- {
		copy(dst.Row(j), r.m.Row(idx[j]))
	}
}

// TestEnginesOnVolatileRows: every engine must produce bit-identical
// results whether rows come from a stable matrix or a buffer-reusing
// source.
func TestEnginesOnVolatileRows(t *testing.T) {
	m := SyntheticPhaseBlobs(600, 5, 11)
	for _, eng := range []Engine{EngineLloyd, EngineElkan, EngineMiniBatch} {
		want := ownAssign(kmeansRun(m, 4, 42, eng, SweepOptions{}.withDefaults(), newScratch()))
		got := ownAssign(kmeansRun(newVolatile(m), 4, 42, eng, SweepOptions{}.withDefaults(), newScratch()))
		if !reflect.DeepEqual(want, got) {
			t.Errorf("engine %d diverges on a volatile row source", eng)
		}
	}
}

// TestSelectKRowsMatchesSelectK: the row-source sweep is bit-identical
// to the matrix sweep, for the exact engines and — through the gather
// path — for minibatch above the auto-switch threshold.
func TestSelectKRowsMatchesSelectK(t *testing.T) {
	small := SyntheticPhaseBlobs(500, 4, 7)
	big := SyntheticPhaseBlobs(9000, 6, 7) // above defaultMiniBatchRows: EngineAuto picks minibatch
	for _, tc := range []struct {
		name string
		m    *stats.Matrix
	}{{"small-exact", small}, {"big-minibatch", big}} {
		want := SelectK(tc.m, 6, 0.9, 2006)
		for _, open := range []func() Rows{
			func() Rows { return newVolatile(tc.m) },
			func() Rows { return &reverseGatherRows{*newVolatile(tc.m)} },
		} {
			got := SelectKRows(open, 6, 0.9, 2006, SweepOptions{})
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s: SelectKRows diverges from SelectK", tc.name)
			}
		}
	}
}

// TestNormalizedMatchesZScore: the lazy z-score view is bit-identical,
// element for element, to the materialized normalization, including
// the zeroed constant-column convention.
func TestNormalizedMatchesZScore(t *testing.T) {
	m := SyntheticPhaseBlobs(300, 3, 5)
	// Plant a constant column to exercise the std == 0 branch.
	for i := 0; i < m.Rows; i++ {
		m.Set(i, 7, 3.25)
	}
	want := stats.ZScoreNormalize(m)
	mean, std := ColumnStats(m)
	view := Normalized(newVolatile(m), mean, std)
	if view.Len() != m.Rows || view.Dim() != m.Cols {
		t.Fatalf("view shape %dx%d, want %dx%d", view.Len(), view.Dim(), m.Rows, m.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		row := view.Row(i)
		for j := 0; j < m.Cols; j++ {
			if row[j] != want.At(i, j) {
				t.Fatalf("view(%d,%d) = %v, want %v", i, j, row[j], want.At(i, j))
			}
		}
	}
	// Gather through the view must match too (and preserve caller order).
	idx := []int{42, 0, 299, 42, 7}
	dst := stats.NewMatrix(len(idx), m.Cols)
	view.(Gatherer).Gather(idx, dst)
	for j, i := range idx {
		for c := 0; c < m.Cols; c++ {
			if dst.At(j, c) != want.At(i, c) {
				t.Fatalf("gathered(%d,%d) = %v, want row %d", j, c, dst.At(j, c), i)
			}
		}
	}
}

// TestColumnStatsMatchesStats: streaming per-column statistics equal
// stats.Mean/stats.Std on the materialized columns bit for bit.
func TestColumnStatsMatchesStats(t *testing.T) {
	m := SyntheticPhaseBlobs(257, 4, 9)
	mean, std := ColumnStats(m)
	for j := 0; j < m.Cols; j++ {
		col := m.Column(j)
		if mean[j] != stats.Mean(col) {
			t.Errorf("col %d: mean %v != stats.Mean %v", j, mean[j], stats.Mean(col))
		}
		if std[j] != stats.Std(col) {
			t.Errorf("col %d: std %v != stats.Std %v", j, std[j], stats.Std(col))
		}
	}
	// Empty source: defined, all-zero statistics.
	mean, std = ColumnStats(stats.NewMatrix(0, 3))
	for j := range mean {
		if mean[j] != 0 || std[j] != 0 || math.IsNaN(mean[j]) {
			t.Fatalf("empty source stats not zero: %v %v", mean, std)
		}
	}
}
