package cluster

import (
	"math/rand"
	"sort"

	"mica/internal/stats"
)

// WarmStart carries centroids from a previous clustering so a re-run
// over slightly-changed data can refine instead of reseeding from
// scratch. Engines treat warm centroids as the initialization and
// still iterate to convergence, so a warm run on unchanged data lands
// on (at least) as good a local optimum as the seeds themselves;
// SelectK sweeps adapt the seed set to each swept k (truncating by
// occupancy, extending by the k-means++ rule).
//
// Callers own the fallback decision: warm-starting is only a seeding
// hint, so when the data has drifted too far from what produced the
// centroids (the phases layer checks normalization-statistic drift),
// drop the WarmStart and let the sweep reseed fresh.
type WarmStart struct {
	// Centroids are the previous run's cluster centers, in the same
	// (normalized) space as the rows being clustered. Required.
	Centroids *stats.Matrix
	// Counts optionally holds the previous per-cluster occupancy,
	// index-aligned with Centroids rows. When a sweep needs fewer
	// clusters than provided, the most populated ones are kept; without
	// Counts, the first rows win.
	Counts []int
}

// usable reports whether w can seed a clustering of d-dimensional rows.
func (w *WarmStart) usable(d int) bool {
	return w != nil && w.Centroids != nil && w.Centroids.Rows > 0 && w.Centroids.Cols == d
}

// warmSeeds builds a k-row seed matrix from warm centroids: an exact
// copy when k matches, the k most-populated centroids when fewer are
// needed, and a k-means++ extension (seeded against the existing
// centers, so new seeds land in uncovered regions) when more are.
// The returned matrix is freshly allocated — engines mutate their
// seed matrix in place, and the caller's warm state must survive the
// sweep's many runs.
func warmSeeds(m Rows, k int, w *WarmStart, rng *rand.Rand, sc *scratch) *stats.Matrix {
	prev := w.Centroids
	d := prev.Cols
	cents := stats.NewMatrix(k, d)
	switch {
	case k == prev.Rows:
		copy(cents.Data, prev.Data)
	case k < prev.Rows:
		order := make([]int, prev.Rows)
		for i := range order {
			order[i] = i
		}
		if len(w.Counts) == prev.Rows {
			sort.SliceStable(order, func(a, b int) bool {
				return w.Counts[order[a]] > w.Counts[order[b]]
			})
		}
		for c := 0; c < k; c++ {
			copy(cents.Row(c), prev.Row(order[c]))
		}
	default: // k > prev.Rows: keep all, extend with the k-means++ rule
		copy(cents.Data[:prev.Rows*d], prev.Data)
		n := m.Len()
		minD := floats(&sc.minD, n)
		for i := range minD {
			minD[i] = sqDist(m.Row(i), cents.Row(0))
			for c := 1; c < prev.Rows; c++ {
				if dd := sqDist(m.Row(i), cents.Row(c)); dd < minD[i] {
					minD[i] = dd
				}
			}
		}
		for c := prev.Rows; c < k; c++ {
			total := 0.0
			for _, dd := range minD {
				total += dd
			}
			var pick int
			if total == 0 {
				pick = rng.Intn(n)
			} else {
				r := rng.Float64() * total
				acc := 0.0
				for i, dd := range minD {
					acc += dd
					if acc >= r {
						pick = i
						break
					}
				}
			}
			copy(cents.Row(c), m.Row(pick))
			for i := range minD {
				if dd := sqDist(m.Row(i), cents.Row(c)); dd < minD[i] {
					minD[i] = dd
				}
			}
		}
	}
	return cents
}

// KMeansSeeded clusters m's rows into len(seeds) clusters starting
// from the given seed centroids (exact Lloyd refinement). The seed
// matrix is not mutated. Deterministic: identical inputs give
// identical results, with no randomness involved.
func KMeansSeeded(m *stats.Matrix, seeds *stats.Matrix) Result {
	k := seeds.Rows
	if deg, ok := degenerate(m, k); ok {
		return deg
	}
	sc := newScratch()
	cents := stats.NewMatrix(k, seeds.Cols)
	copy(cents.Data, seeds.Data)
	return ownAssign(lloydFrom(m, cents, sc))
}
