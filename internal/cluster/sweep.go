package cluster

import (
	"context"
	"math"

	"mica/internal/obs"
	"mica/internal/pool"
	"mica/internal/stats"
)

// metRowsClustered counts rows entering a k-sweep (per sweep, not per
// swept k).
var metRowsClustered = obs.Default().Counter("mica_cluster_rows_total", "Rows entering BIC k-sweeps.")

// Engine selects the k-means engine a sweep runs per k.
type Engine int

const (
	// EngineAuto uses exact Lloyd below SweepOptions.MiniBatchRows rows
	// and minibatch at or above it — exact where exact is cheap,
	// sampled where full passes dominate.
	EngineAuto Engine = iota
	// EngineLloyd forces the exact reference engine.
	EngineLloyd
	// EngineElkan forces exact Lloyd with Elkan's triangle-inequality
	// acceleration.
	EngineElkan
	// EngineMiniBatch forces sampled minibatch updates (with the
	// documented exact fallback on tiny inputs).
	EngineMiniBatch
)

// SweepOptions parameterize SelectKOpt.
type SweepOptions struct {
	// Engine picks the per-k clustering engine (default EngineAuto).
	Engine Engine
	// Workers bounds sweep parallelism over the fixed worker pool
	// (0 = GOMAXPROCS). Each worker owns one scratch buffer reused
	// across every k it processes.
	Workers int
	// MiniBatchRows is the row threshold at which EngineAuto switches
	// to minibatch (default 8192).
	MiniBatchRows int
	// BatchSize is the minibatch sample size per iteration (default
	// 1024).
	BatchSize int
	// Warm optionally seeds every swept k from a previous clustering's
	// centroids instead of k-means++ (see WarmStart). Engines still
	// iterate to convergence; ignored when the centroid dimensionality
	// does not match the rows.
	Warm *WarmStart
}

func (o SweepOptions) withDefaults() SweepOptions {
	if o.MiniBatchRows <= 0 {
		o.MiniBatchRows = defaultMiniBatchRows
	}
	if o.BatchSize <= 0 {
		o.BatchSize = defaultBatchSize
	}
	return o
}

// Selection holds the outcome of BIC-based K selection.
type Selection struct {
	// Best is the clustering at the chosen K.
	Best Result
	// Scores maps K (1-based index position K-1) to its BIC score.
	Scores []float64
	// SSEs maps K (same indexing) to that clustering's final SSE —
	// the quantity engine-quality comparisons (exact vs minibatch) are
	// made on.
	SSEs []float64
	// MaxScore is the maximum BIC over the swept K values.
	MaxScore float64
}

// SelectK sweeps K in [1, maxK], scores each clustering with BIC, and
// returns the smallest K whose score reaches frac (the paper uses 0.9)
// of the way from the lowest to the highest score across the sweep —
// the SimPoint "90% of max BIC" rule, which operates on the score range
// so it is well defined for negative log-likelihood-based scores.
//
// The sweep runs in parallel over the fixed worker pool with the
// default engine policy (exact Lloyd for small matrices, minibatch
// above the row threshold); SelectKOpt exposes the knobs.
func SelectK(m *stats.Matrix, maxK int, frac float64, seed int64) Selection {
	return SelectKOpt(m, maxK, frac, seed, SweepOptions{})
}

// SelectKOpt is SelectK with explicit engine, parallelism and
// minibatch options. Results are deterministic in (m, maxK, frac,
// seed, Engine, MiniBatchRows, BatchSize): per-k runs use independent
// seeds derived from seed (see the package comment), so neither the
// worker count nor scheduling order can change any outcome.
func SelectKOpt(m *stats.Matrix, maxK int, frac float64, seed int64, opt SweepOptions) Selection {
	return SelectKRows(func() Rows { return m }, maxK, frac, seed, opt)
}

// SelectKRows is SelectKOpt over an arbitrary row source — the entry
// point of store-backed clustering, where rows are streamed
// shard-by-shard off disk instead of materialized in one flat matrix.
// open is called once per sweep worker (plus once for the sizing and
// final materialization passes), so sources with internal caches — a
// shard reader — are never shared between goroutines; an in-memory
// matrix source can return the same *stats.Matrix every time. Results
// are bit-identical to SelectKOpt on the materialized matrix: the
// engines run the same floating-point operations in the same order,
// only the row fetches differ.
//
// SelectKRows cannot be cancelled and re-panics any per-k worker
// panic after the pool has drained; SelectKRowsCtx is the
// fault-tolerant form.
func SelectKRows(open func() Rows, maxK int, frac float64, seed int64, opt SweepOptions) Selection {
	sel, err := SelectKRowsCtx(context.Background(), open, maxK, frac, seed, opt)
	if err != nil {
		// Without a cancellable context the only possible failure is a
		// per-k panic (a corrupt row source, an injected fault), which
		// this legacy form surfaces exactly as the pre-pool code did:
		// by crashing, after every other k finished cleanly.
		panic(err)
	}
	return sel
}

// SelectKOptCtx is SelectKOpt with cancellation and error reporting:
// the sweep stops dispatching per-k runs when ctx is cancelled
// (in-flight runs drain), and a panicking run is isolated by the
// worker pool and returned as an error attributing the k instead of
// killing the process.
func SelectKOptCtx(ctx context.Context, m *stats.Matrix, maxK int, frac float64, seed int64, opt SweepOptions) (Selection, error) {
	return SelectKRowsCtx(ctx, func() Rows { return m }, maxK, frac, seed, opt)
}

// SelectKRowsCtx is the context-aware, error-returning form of
// SelectKRows — the entry point registry-scale store-backed pipelines
// cancel through. On any error (cancellation, per-k panic) the
// returned Selection is zero; per-k errors carry the item (k-1) and
// worker via pool.ItemError.
func SelectKRowsCtx(ctx context.Context, open func() Rows, maxK int, frac float64, seed int64, opt SweepOptions) (Selection, error) {
	span := obs.StartSpan("cluster.sweep-k")
	defer span.End()
	opt = opt.withDefaults()
	main := open()
	n, d := main.Len(), main.Dim()
	metRowsClustered.Add(float64(n))
	if maxK > n {
		maxK = n
	}
	if maxK < 1 {
		return Selection{MaxScore: math.Inf(-1)}, nil
	}

	// Per-k sufficient statistics: centroids (O(k·d)), SSE and cluster
	// occupancy. The O(n) assignment stays in per-worker scratch and is
	// re-derived below for the single chosen k.
	type runStats struct {
		k      int
		cents  *stats.Matrix
		sse    float64
		counts []int
	}
	runs := make([]runStats, maxK)
	scores := make([]float64, maxK)
	sses := make([]float64, maxK)

	// Clamp once and hand pool.Run the clamped count, so the scratch
	// slice and the pool's worker-id range share one invariant.
	workers := opt.Workers
	if workers <= 0 || workers > maxK {
		workers = maxK
	}
	scratches := make([]*scratch, workers)
	sources := make([]Rows, workers)
	err := pool.RunCtx(ctx, maxK, workers, func(_ context.Context, worker, i int) error {
		if scratches[worker] == nil {
			scratches[worker] = newScratch()
			sources[worker] = open()
		}
		sc := scratches[worker]
		k := i + 1
		res := kmeansRun(sources[worker], k, deriveSeed(seed, k), opt.Engine, opt, sc)
		runs[i] = runStats{
			k:      res.K,
			cents:  res.Centroids,
			sse:    res.SSE,
			counts: append([]int(nil), sc.counts[:res.K]...),
		}
		scores[i] = bicStats(n, d, res.K, res.SSE, runs[i].counts)
		sses[i] = res.SSE
		return nil
	})
	if err != nil {
		return Selection{}, err
	}

	best, worst := math.Inf(-1), math.Inf(1)
	for _, s := range scores {
		if s > best {
			best = s
		}
		if s < worst {
			worst = s
		}
	}
	cut := worst + frac*(best-worst)
	chosen := maxK - 1
	for i := range scores {
		if scores[i] >= cut {
			chosen = i
			break
		}
	}

	// Materialize the chosen clustering: one assignment pass over its
	// stored centroids, bit-identical to the engine's own final pass
	// (both are assignAll with the shared tie-breaking scan).
	r := runs[chosen]
	assign := make([]int, n)
	counts := make([]int, r.k)
	assignAll(main, r.cents, assign, counts)
	return Selection{
		Best:     Result{K: r.k, Assign: assign, Centroids: r.cents, SSE: r.sse},
		Scores:   scores,
		SSEs:     sses,
		MaxScore: best,
	}, nil
}

// SelectKNaive is the pre-scaling reference sweep: one fresh, serial,
// exact Lloyd run per k with no scratch reuse and no parallelism. It
// uses the same derived per-k seeds as SelectKOpt, so SelectKOpt with
// EngineLloyd is bit-identical to it — the differential contract the
// parallel sweep is tested against, and the baseline configuration of
// the tracked cluster benchmark (mica-bench -cluster).
func SelectKNaive(m *stats.Matrix, maxK int, frac float64, seed int64) Selection {
	if maxK > m.Rows {
		maxK = m.Rows
	}
	if maxK < 1 {
		return Selection{MaxScore: math.Inf(-1)}
	}
	results := make([]Result, maxK)
	scores := make([]float64, maxK)
	sses := make([]float64, maxK)
	best, worst := math.Inf(-1), math.Inf(1)
	for k := 1; k <= maxK; k++ {
		results[k-1] = KMeans(m, k, deriveSeed(seed, k))
		scores[k-1] = BIC(m, results[k-1])
		sses[k-1] = results[k-1].SSE
		if scores[k-1] > best {
			best = scores[k-1]
		}
		if scores[k-1] < worst {
			worst = scores[k-1]
		}
	}
	cut := worst + frac*(best-worst)
	for k := 1; k <= maxK; k++ {
		if scores[k-1] >= cut {
			return Selection{Best: results[k-1], Scores: scores, SSEs: sses, MaxScore: best}
		}
	}
	return Selection{Best: results[maxK-1], Scores: scores, SSEs: sses, MaxScore: best}
}
