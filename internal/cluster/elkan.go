package cluster

import (
	"math"

	"mica/internal/stats"
)

// KMeansElkan is KMeans accelerated with Elkan's triangle-inequality
// bounds: identical k-means++ seeding and Lloyd-style centroid
// updates, but per-point upper/lower distance bounds let most
// point-center distance computations be skipped once clusters
// stabilize. The algorithm is exact — every skipped computation is
// provably unable to change the point's nearest centroid — so it is a
// drop-in Result-compatible replacement for KMeans on matrices where
// the O(n·k·d) assignment pass dominates.
func KMeansElkan(m *stats.Matrix, k int, seed int64) Result {
	sc := newScratch()
	return ownAssign(kmeansRun(m, k, seed, EngineElkan, SweepOptions{}.withDefaults(), sc))
}

// elkanFrom runs Elkan-accelerated Lloyd iterations from the given
// seeded centroids. Bounds live in true (not squared) distance space,
// which the triangle inequality requires. The returned Result's Assign
// aliases sc.assign and is made consistent with the final centroids by
// a closing assignAll pass (which also rules out any floating-point
// tie resolving differently from the shared nearest scan).
func elkanFrom(m Rows, cents *stats.Matrix, sc *scratch) Result {
	n, d := m.Len(), m.Dim()
	k := cents.Rows
	assign := ints(&sc.assign, n)
	counts := ints(&sc.counts, k)
	upper := floats(&sc.upper, n)
	lower := floats(&sc.lower, n*k)
	ccDist := floats(&sc.ccDist, k*k)
	ccHalf := floats(&sc.ccHalf, k)
	drift := floats(&sc.drift, k)
	prev := floats(&sc.prev, k*d)

	// Initial pass: exact distances to every center seed the bounds.
	for i := 0; i < n; i++ {
		row := m.Row(i)
		best, bestD := 0, math.Inf(1)
		for c := 0; c < k; c++ {
			dd := math.Sqrt(sqDist(row, cents.Row(c)))
			lower[i*k+c] = dd
			if dd < bestD {
				best, bestD = c, dd
			}
		}
		assign[i] = best
		upper[i] = bestD
	}

	for iter := 0; iter < maxIters; iter++ {
		// Center-center distances and each center's half-distance to its
		// nearest neighbor: a point whose upper bound is below its
		// center's half-distance cannot move anywhere.
		for a := 0; a < k; a++ {
			ccHalf[a] = math.Inf(1)
			for b := 0; b < k; b++ {
				if a == b {
					ccDist[a*k+b] = 0
					continue
				}
				dd := math.Sqrt(sqDist(cents.Row(a), cents.Row(b)))
				ccDist[a*k+b] = dd
				if h := dd / 2; h < ccHalf[a] {
					ccHalf[a] = h
				}
			}
		}

		changed := false
		for i := 0; i < n; i++ {
			a := assign[i]
			u := upper[i]
			if u <= ccHalf[a] {
				continue
			}
			row := m.Row(i)
			tight := false
			for c := 0; c < k; c++ {
				if c == a {
					continue
				}
				// Candidate c can only win if it beats both the lower
				// bound and half the distance between the two centers.
				bound := lower[i*k+c]
				if h := ccDist[a*k+c] / 2; h > bound {
					bound = h
				}
				if u <= bound {
					continue
				}
				if !tight {
					u = math.Sqrt(sqDist(row, cents.Row(a)))
					upper[i] = u
					lower[i*k+a] = u
					tight = true
					if u <= bound {
						continue
					}
				}
				dc := math.Sqrt(sqDist(row, cents.Row(c)))
				lower[i*k+c] = dc
				if dc < u {
					a, u = c, dc
					assign[i] = c
					upper[i] = dc
					changed = true
				}
			}
		}
		if !changed && iter > 0 {
			break
		}

		copy(prev, cents.Data)
		updateCentroids(m, cents, assign, counts)
		// Bound maintenance: each center's movement loosens every upper
		// bound attached to it and tightens every lower bound toward it.
		// An empty-cluster re-seed is just a large movement here, so the
		// bounds stay valid through it.
		for c := 0; c < k; c++ {
			drift[c] = math.Sqrt(sqDist(prev[c*d:(c+1)*d], cents.Row(c)))
		}
		for i := 0; i < n; i++ {
			upper[i] += drift[assign[i]]
			li := lower[i*k : (i+1)*k]
			for c := 0; c < k; c++ {
				if drift[c] != 0 {
					if li[c] -= drift[c]; li[c] < 0 {
						li[c] = 0
					}
				}
			}
		}
	}

	sse := assignAll(m, cents, assign, counts)
	return Result{K: k, Assign: assign, Centroids: cents, SSE: sse}
}
