// Package cluster implements the k-means clustering and Bayesian
// Information Criterion model selection the paper uses for Figure 6 —
// k-means for K in 1..70, keeping the smallest K whose BIC score is
// within 90% of the maximum — scaled up for interval-phase matrices
// with 100k+ rows.
//
// Three Result-compatible engines are available:
//
//   - KMeans: Lloyd iterations with k-means++ seeding, the exact
//     reference engine.
//   - KMeansElkan: exact Lloyd accelerated with Elkan's
//     triangle-inequality bounds; skips point-center distance
//     computations that provably cannot change an assignment.
//   - MiniBatchKMeans: Sculley-style sampled minibatch updates with
//     center-drift convergence and a short full-data polish, for
//     matrices where full Lloyd passes dominate phase-analysis wall
//     time.
//
// SelectK sweeps K in parallel over the fixed worker pool
// (internal/pool), choosing the engine per SweepOptions (exact for
// small matrices, minibatch above a row threshold) and reusing per-k
// scratch buffers so a sweep's steady-state allocation is the O(k·d)
// centroids per k, not fresh O(n) slices per run.
//
// Seeding scheme: every per-k run inside a sweep uses an independent
// seed derived from the sweep seed by a splitmix64 finalizer
// (deriveSeed), not seed+k. Consecutive integer seeds fed to
// math/rand sources produce correlated first draws, which used to make
// adjacent k runs start from near-identical k-means++ centroid
// prefixes and bias the BIC curve; the finalizer decorrelates them
// while keeping the sweep fully deterministic in (seed, k).
package cluster

import (
	"math"
	"math/rand"

	"mica/internal/stats"
)

// maxIters bounds Lloyd/Elkan/minibatch iteration counts.
const maxIters = 100

// Result is one k-means clustering outcome.
type Result struct {
	K int
	// Assign maps each row to its cluster id in [0, K).
	Assign []int
	// Centroids holds the K cluster centers.
	Centroids *stats.Matrix
	// SSE is the total within-cluster sum of squared distances.
	SSE float64
}

// KMeans clusters the rows of m into k clusters using k-means++ seeding
// and Lloyd iterations. It is deterministic for a given seed.
func KMeans(m *stats.Matrix, k int, seed int64) Result {
	return ownAssign(kmeansRun(m, k, seed, EngineLloyd, SweepOptions{}.withDefaults(), newScratch()))
}

// KMeansNaiveSeed is KMeans with first-K-rows seeding instead of
// k-means++; kept for the seeding ablation benchmark.
func KMeansNaiveSeed(m *stats.Matrix, k int, seed int64) Result {
	sc := newScratch()
	n, d := m.Rows, m.Cols
	if deg, ok := degenerate(m, k); ok {
		return deg
	}
	if k > n {
		k = n
	}
	cents := stats.NewMatrix(k, d)
	for c := 0; c < k; c++ {
		copy(cents.Row(c), m.Row(c))
	}
	return ownAssign(lloydFrom(m, cents, sc))
}

// ownAssign gives a Result returned from a scratch-backed engine its
// own Assign storage (engines alias the scratch buffer so sweeps can
// recycle it across k values).
func ownAssign(r Result) Result {
	r.Assign = append([]int(nil), r.Assign...)
	return r
}

// degenerate handles the k <= 0 / empty-matrix edge cases shared by
// every engine.
func degenerate(m Rows, k int) (Result, bool) {
	if k <= 0 || m.Len() == 0 {
		return Result{K: k, Assign: make([]int, m.Len()), Centroids: stats.NewMatrix(0, m.Dim())}, true
	}
	return Result{}, false
}

// scratch holds the reusable buffers of k-means runs. A sweep keeps
// one scratch per worker and reuses it for every k that worker
// processes, so per-k allocation is the centroids (O(k·d)), not fresh
// O(n) working slices — the difference between 100k-row sweeps
// thrashing the allocator and not.
type scratch struct {
	assign    []int     // n: current assignment
	counts    []int     // k: cluster occupancy
	minD      []float64 // n: k-means++ shortest-distance table
	prev      []float64 // k*d: previous centroids (drift tracking)
	batch     []int     // minibatch sample indices
	upd       []int     // k: minibatch per-center update counts
	sample    []float64 // minibatch seeding sample rows
	sampleIdx []int     // minibatch seeding sample row indices
	gat       []float64 // batch*d: gathered minibatch rows
	upper     []float64 // n: Elkan upper bounds
	lower     []float64 // n*k: Elkan lower bounds
	ccDist    []float64 // k*k: Elkan center-center distances
	ccHalf    []float64 // k: Elkan half-distance to nearest other center
	drift     []float64 // k: per-center movement
}

func newScratch() *scratch { return &scratch{} }

// ints returns a length-n int slice backed by *buf, growing it as
// needed and reusing its capacity otherwise.
func ints(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func floats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// nearest returns the index of the centroid closest to row, and the
// squared distance. Ties break to the lowest centroid index (strict
// less-than scan), the invariant every engine and assignAll share.
func nearest(row []float64, cents *stats.Matrix) (int, float64) {
	best, bestD := 0, math.Inf(1)
	for c := 0; c < cents.Rows; c++ {
		if d := sqDist(row, cents.Row(c)); d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}

// assignAll assigns every row of m to its nearest centroid, filling
// assign and counts, and returns the total SSE. It is the single
// shared assignment routine, so an assignment re-derived from stored
// centroids (Selection materialization) is bit-identical to the
// engine's own final pass.
func assignAll(m Rows, cents *stats.Matrix, assign []int, counts []int) float64 {
	for c := range counts {
		counts[c] = 0
	}
	sse := 0.0
	for i := 0; i < m.Len(); i++ {
		c, d := nearest(m.Row(i), cents)
		assign[i] = c
		counts[c]++
		sse += d
	}
	return sse
}

// updateCentroids recomputes cents as the mean of each cluster's
// members under assign, re-seeding any empty cluster at the point
// farthest from its current centroid (which also reassigns that
// point).
func updateCentroids(m Rows, cents *stats.Matrix, assign, counts []int) {
	k, d := cents.Rows, cents.Cols
	for c := 0; c < k; c++ {
		counts[c] = 0
		row := cents.Row(c)
		for j := 0; j < d; j++ {
			row[j] = 0
		}
	}
	for i := 0; i < m.Len(); i++ {
		c := assign[i]
		counts[c]++
		row, crow := m.Row(i), cents.Row(c)
		for j := 0; j < d; j++ {
			crow[j] += row[j]
		}
	}
	// Normalize every non-empty centroid first: the empty-cluster
	// reseed below measures point-to-centroid distances, which must be
	// against true means, not the raw sums still sitting in
	// later-indexed rows mid-loop (a single interleaved pass would make
	// the farthest-point scan see a populated cluster's ~count-times
	// oversized sum and deterministically raid the largest
	// later-indexed cluster).
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		crow := cents.Row(c)
		inv := 1 / float64(counts[c])
		for j := 0; j < d; j++ {
			crow[j] *= inv
		}
	}
	for c := 0; c < k; c++ {
		if counts[c] != 0 {
			continue
		}
		// Re-seed an empty cluster at the point farthest from its
		// centroid.
		far, farD := 0, -1.0
		for i := 0; i < m.Len(); i++ {
			dist := sqDist(m.Row(i), cents.Row(assign[i]))
			if dist > farD {
				far, farD = i, dist
			}
		}
		copy(cents.Row(c), m.Row(far))
		assign[far] = c
	}
}

// lloydFrom runs Lloyd iterations from the given seeded centroids. The
// returned Result's Assign aliases sc.assign and is consistent with
// the returned centroids: Assign is exactly assignAll(cents) and SSE
// and sc.counts are computed from that assignment.
func lloydFrom(m Rows, cents *stats.Matrix, sc *scratch) Result {
	n := m.Len()
	k := cents.Rows
	assign := ints(&sc.assign, n)
	counts := ints(&sc.counts, k)
	for i := range assign {
		assign[i] = 0
	}

	converged := false
	for iter := 0; iter < maxIters; iter++ {
		changed := false
		for i := 0; i < n; i++ {
			best, _ := nearest(m.Row(i), cents)
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			converged = true
			break
		}
		updateCentroids(m, cents, assign, counts)
	}

	var sse float64
	if converged {
		// Assign already equals assignAll(cents); compute SSE and counts
		// in one O(n·d) pass instead of repeating the O(n·k·d) scan.
		for c := range counts {
			counts[c] = 0
		}
		for i := 0; i < n; i++ {
			counts[assign[i]]++
			sse += sqDist(m.Row(i), cents.Row(assign[i]))
		}
	} else {
		// Iteration cap hit: the last centroid update ran after the last
		// assignment pass, so re-derive a consistent assignment.
		sse = assignAll(m, cents, assign, counts)
	}
	return Result{K: k, Assign: assign, Centroids: cents, SSE: sse}
}

// seedPlusPlus picks k initial centroids with the k-means++ rule,
// reusing sc.minD for the shortest-distance table.
func seedPlusPlus(m Rows, k int, rng *rand.Rand, sc *scratch) *stats.Matrix {
	n, d := m.Len(), m.Dim()
	cents := stats.NewMatrix(k, d)
	first := rng.Intn(n)
	copy(cents.Row(0), m.Row(first))

	minD := floats(&sc.minD, n)
	for i := range minD {
		minD[i] = sqDist(m.Row(i), cents.Row(0))
	}
	for c := 1; c < k; c++ {
		total := 0.0
		for _, dd := range minD {
			total += dd
		}
		var pick int
		if total == 0 {
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			acc := 0.0
			for i, dd := range minD {
				acc += dd
				if acc >= r {
					pick = i
					break
				}
			}
		}
		copy(cents.Row(c), m.Row(pick))
		for i := range minD {
			if dd := sqDist(m.Row(i), cents.Row(c)); dd < minD[i] {
				minD[i] = dd
			}
		}
	}
	return cents
}

// kmeansRun dispatches one clustering run to an engine. The returned
// Result's Assign aliases sc.assign; callers that retain it across
// runs must copy (ownAssign). sc.counts holds the per-cluster
// occupancy of the returned assignment.
func kmeansRun(m Rows, k int, seed int64, eng Engine, opt SweepOptions, sc *scratch) Result {
	if deg, ok := degenerate(m, k); ok {
		return deg
	}
	if k > m.Len() {
		k = m.Len()
	}
	if eng == EngineAuto {
		if m.Len() >= opt.MiniBatchRows {
			eng = EngineMiniBatch
		} else {
			eng = EngineLloyd
		}
	}
	rng := rand.New(rand.NewSource(seed))
	if opt.Warm.usable(m.Dim()) {
		seeds := warmSeeds(m, k, opt.Warm, rng, sc)
		switch eng {
		case EngineElkan:
			return elkanFrom(m, seeds, sc)
		case EngineMiniBatch:
			return miniBatchFrom(m, seeds, rng, opt, sc)
		default:
			return lloydFrom(m, seeds, sc)
		}
	}
	switch eng {
	case EngineElkan:
		return elkanFrom(m, seedPlusPlus(m, k, rng, sc), sc)
	case EngineMiniBatch:
		return miniBatchRun(m, k, rng, opt, sc)
	default:
		return lloydFrom(m, seedPlusPlus(m, k, rng, sc), sc)
	}
}

// BIC scores a clustering with the Bayesian Information Criterion under
// the identical-spherical-Gaussian model of Pelleg & Moore (the scoring
// SimPoint adopted and the paper cites via [18]). Larger is better.
func BIC(m *stats.Matrix, res Result) float64 {
	counts := make([]int, res.K)
	for _, c := range res.Assign {
		counts[c]++
	}
	return bicStats(m.Rows, m.Cols, res.K, res.SSE, counts)
}

// bicStats is BIC computed from sufficient statistics (row count,
// dimensionality, SSE and per-cluster occupancy), so a sweep can score
// a run without retaining its O(n) assignment.
func bicStats(n, d, k int, sse float64, counts []int) float64 {
	if n <= k {
		return math.Inf(-1)
	}
	variance := sse / float64(d*(n-k))
	if variance <= 0 {
		variance = 1e-12
	}
	ll := 0.0
	for _, rn := range counts {
		if rn == 0 {
			continue
		}
		r := float64(rn)
		ll += r*math.Log(r) -
			r*math.Log(float64(n)) -
			r*float64(d)/2*math.Log(2*math.Pi*variance) -
			(r-1)*float64(d)/2
	}
	params := float64(k-1) + float64(k*d) + 1
	return ll - params/2*math.Log(float64(n))
}

// deriveSeed maps (sweep seed, k) to an independent per-run seed with
// a splitmix64 finalizer. See the package comment for why seed+k is
// not used.
func deriveSeed(seed int64, k int) int64 {
	z := uint64(seed) + uint64(k)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
