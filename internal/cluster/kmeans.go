// Package cluster implements k-means clustering and the Bayesian
// Information Criterion model selection the paper uses for Figure 6:
// k-means for K in 1..70, keeping the smallest K whose BIC score is
// within 90% of the maximum.
package cluster

import (
	"math"
	"math/rand"

	"mica/internal/stats"
)

// Result is one k-means clustering outcome.
type Result struct {
	K int
	// Assign maps each row to its cluster id in [0, K).
	Assign []int
	// Centroids holds the K cluster centers.
	Centroids *stats.Matrix
	// SSE is the total within-cluster sum of squared distances.
	SSE float64
}

// KMeans clusters the rows of m into k clusters using k-means++ seeding
// and Lloyd iterations. It is deterministic for a given seed.
func KMeans(m *stats.Matrix, k int, seed int64) Result {
	return kmeans(m, k, seed, true)
}

// KMeansNaiveSeed is KMeans with first-K-rows seeding instead of
// k-means++; kept for the seeding ablation benchmark.
func KMeansNaiveSeed(m *stats.Matrix, k int, seed int64) Result {
	return kmeans(m, k, seed, false)
}

func kmeans(m *stats.Matrix, k int, seed int64, plusplus bool) Result {
	n, d := m.Rows, m.Cols
	if k <= 0 || n == 0 {
		return Result{K: k, Assign: make([]int, n), Centroids: stats.NewMatrix(0, d)}
	}
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))

	var cents *stats.Matrix
	if plusplus {
		cents = seedPlusPlus(m, k, rng)
	} else {
		cents = stats.NewMatrix(k, d)
		for c := 0; c < k; c++ {
			copy(cents.Row(c), m.Row(c))
		}
	}
	assign := make([]int, n)
	counts := make([]int, k)

	for iter := 0; iter < 100; iter++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				dist := sqDist(m.Row(i), cents.Row(c))
				if dist < bestD {
					best, bestD = c, dist
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		for c := 0; c < k; c++ {
			counts[c] = 0
			for j := 0; j < d; j++ {
				cents.Set(c, j, 0)
			}
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			row := m.Row(i)
			for j := 0; j < d; j++ {
				cents.Set(c, j, cents.At(c, j)+row[j])
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest
				// from its centroid.
				far, farD := 0, -1.0
				for i := 0; i < n; i++ {
					dist := sqDist(m.Row(i), cents.Row(assign[i]))
					if dist > farD {
						far, farD = i, dist
					}
				}
				copy(cents.Row(c), m.Row(far))
				assign[far] = c
				continue
			}
			for j := 0; j < d; j++ {
				cents.Set(c, j, cents.At(c, j)/float64(counts[c]))
			}
		}
	}

	sse := 0.0
	for i := 0; i < n; i++ {
		sse += sqDist(m.Row(i), cents.Row(assign[i]))
	}
	return Result{K: k, Assign: assign, Centroids: cents, SSE: sse}
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// seedPlusPlus picks k initial centroids with the k-means++ rule.
func seedPlusPlus(m *stats.Matrix, k int, rng *rand.Rand) *stats.Matrix {
	n, d := m.Rows, m.Cols
	cents := stats.NewMatrix(k, d)
	first := rng.Intn(n)
	copy(cents.Row(0), m.Row(first))

	minD := make([]float64, n)
	for i := range minD {
		minD[i] = sqDist(m.Row(i), cents.Row(0))
	}
	for c := 1; c < k; c++ {
		total := 0.0
		for _, dd := range minD {
			total += dd
		}
		var pick int
		if total == 0 {
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			acc := 0.0
			for i, dd := range minD {
				acc += dd
				if acc >= r {
					pick = i
					break
				}
			}
		}
		copy(cents.Row(c), m.Row(pick))
		for i := range minD {
			if dd := sqDist(m.Row(i), cents.Row(c)); dd < minD[i] {
				minD[i] = dd
			}
		}
	}
	return cents
}

// BIC scores a clustering with the Bayesian Information Criterion under
// the identical-spherical-Gaussian model of Pelleg & Moore (the scoring
// SimPoint adopted and the paper cites via [18]). Larger is better.
func BIC(m *stats.Matrix, res Result) float64 {
	n, d := m.Rows, m.Cols
	k := res.K
	if n <= k {
		return math.Inf(-1)
	}
	variance := res.SSE / float64(d*(n-k))
	if variance <= 0 {
		variance = 1e-12
	}
	counts := make([]int, k)
	for _, c := range res.Assign {
		counts[c]++
	}
	ll := 0.0
	for _, rn := range counts {
		if rn == 0 {
			continue
		}
		r := float64(rn)
		ll += r*math.Log(r) -
			r*math.Log(float64(n)) -
			r*float64(d)/2*math.Log(2*math.Pi*variance) -
			(r-1)*float64(d)/2
	}
	params := float64(k-1) + float64(k*d) + 1
	return ll - params/2*math.Log(float64(n))
}

// Selection holds the outcome of BIC-based K selection.
type Selection struct {
	// Best is the clustering at the chosen K.
	Best Result
	// Scores maps K (1-based index position K-1) to its BIC score.
	Scores []float64
	// MaxScore is the maximum BIC over the swept K values.
	MaxScore float64
}

// SelectK sweeps K in [1, maxK], scores each clustering with BIC, and
// returns the smallest K whose score reaches frac (the paper uses 0.9) of
// the way from the lowest to the highest score across the sweep — the
// SimPoint "90% of max BIC" rule, which operates on the score range so it
// is well defined for negative log-likelihood-based scores.
func SelectK(m *stats.Matrix, maxK int, frac float64, seed int64) Selection {
	if maxK > m.Rows {
		maxK = m.Rows
	}
	results := make([]Result, maxK)
	scores := make([]float64, maxK)
	best, worst := math.Inf(-1), math.Inf(1)
	for k := 1; k <= maxK; k++ {
		results[k-1] = KMeans(m, k, seed+int64(k))
		scores[k-1] = BIC(m, results[k-1])
		if scores[k-1] > best {
			best = scores[k-1]
		}
		if scores[k-1] < worst {
			worst = scores[k-1]
		}
	}
	cut := worst + frac*(best-worst)
	for k := 1; k <= maxK; k++ {
		if scores[k-1] >= cut {
			return Selection{Best: results[k-1], Scores: scores, MaxScore: best}
		}
	}
	return Selection{Best: results[maxK-1], Scores: scores, MaxScore: best}
}
