package cluster

import (
	"math/rand"
	"reflect"
	"testing"

	"mica/internal/stats"
)

// TestKMeansSeededFixedPoint: seeding an exact refinement with
// already-converged centroids reproduces the same clustering (the
// seeds are a Lloyd fixed point), and the caller's seed matrix is not
// mutated.
func TestKMeansSeededFixedPoint(t *testing.T) {
	m, _ := threeBlobs(30, 5)
	ref := KMeans(m, 3, 42)
	seeds := stats.NewMatrix(3, m.Cols)
	copy(seeds.Data, ref.Centroids.Data)
	before := append([]float64(nil), seeds.Data...)
	res := KMeansSeeded(m, seeds)
	if !reflect.DeepEqual(res.Assign, ref.Assign) {
		t.Fatal("seeding with converged centroids changed the assignment")
	}
	if res.SSE > ref.SSE*(1+1e-12) {
		t.Fatalf("warm SSE %v worse than the seeds' %v", res.SSE, ref.SSE)
	}
	if !reflect.DeepEqual(seeds.Data, before) {
		t.Fatal("KMeansSeeded mutated the caller's seed matrix")
	}
}

// TestWarmSweepMatchesFreshK: a sweep warm-started from a previous
// selection's centroids chooses the same K as a fresh sweep on the
// same (well-separated) data, with an SSE at the chosen K no worse
// than the warm seeds allow.
func TestWarmSweepMatchesFreshK(t *testing.T) {
	m, _ := threeBlobs(40, 9)
	fresh := SelectK(m, 6, 0.9, 42)
	warm := SelectKOpt(m, 6, 0.9, 42, SweepOptions{Warm: &WarmStart{
		Centroids: fresh.Best.Centroids,
		Counts:    occupancy(fresh.Best),
	}})
	if warm.Best.K != fresh.Best.K {
		t.Fatalf("warm sweep chose K=%d, fresh chose K=%d", warm.Best.K, fresh.Best.K)
	}
	if warm.Best.SSE > fresh.Best.SSE*(1+1e-9) {
		t.Fatalf("warm SSE %v worse than fresh %v at the same K", warm.Best.SSE, fresh.Best.SSE)
	}
}

// TestWarmSweepDeterministic: the warm path is as deterministic as the
// fresh one.
func TestWarmSweepDeterministic(t *testing.T) {
	m, _ := threeBlobs(25, 11)
	prev := SelectK(m, 5, 0.9, 7)
	w := &WarmStart{Centroids: prev.Best.Centroids, Counts: occupancy(prev.Best)}
	a := SelectKOpt(m, 5, 0.9, 7, SweepOptions{Warm: w})
	b := SelectKOpt(m, 5, 0.9, 7, SweepOptions{Warm: w})
	if !reflect.DeepEqual(a.Best.Assign, b.Best.Assign) || a.Best.K != b.Best.K {
		t.Fatal("warm sweep is not deterministic")
	}
}

// TestWarmSeedsShapes: truncation keeps the most-populated centroids,
// extension keeps every previous centroid and adds distinct new ones,
// and an exact match is a verbatim copy.
func TestWarmSeedsShapes(t *testing.T) {
	m, _ := threeBlobs(20, 3)
	prev := stats.FromRows([][]float64{{0, 0}, {10, 10}, {-10, 10}})
	w := &WarmStart{Centroids: prev, Counts: []int{5, 50, 20}}
	rng := rand.New(rand.NewSource(1))
	sc := newScratch()

	same := warmSeeds(m, 3, w, rng, sc)
	if !reflect.DeepEqual(same.Data, prev.Data) {
		t.Fatal("k == K0 is not a verbatim copy")
	}
	trunc := warmSeeds(m, 2, w, rng, sc)
	if !reflect.DeepEqual(trunc.Row(0), prev.Row(1)) || !reflect.DeepEqual(trunc.Row(1), prev.Row(2)) {
		t.Fatalf("truncation kept %v, want the two most-populated centroids", trunc.Data)
	}
	ext := warmSeeds(m, 5, w, rng, sc)
	for c := 0; c < 3; c++ {
		if !reflect.DeepEqual(ext.Row(c), prev.Row(c)) {
			t.Fatalf("extension rewrote previous centroid %d", c)
		}
	}
	for c := 3; c < 5; c++ {
		for p := 0; p < 3; p++ {
			if reflect.DeepEqual(ext.Row(c), prev.Row(p)) {
				t.Fatalf("extension duplicated previous centroid %d", p)
			}
		}
	}
	// Without Counts, truncation keeps the first k rows.
	noCounts := warmSeeds(m, 2, &WarmStart{Centroids: prev}, rng, sc)
	if !reflect.DeepEqual(noCounts.Row(0), prev.Row(0)) || !reflect.DeepEqual(noCounts.Row(1), prev.Row(1)) {
		t.Fatal("count-less truncation did not keep the first rows")
	}
}

// TestWarmMismatchedDimsFallsBack: a warm start whose centroids do not
// match the data's dimensionality is ignored — the sweep is
// bit-identical to a fresh one.
func TestWarmMismatchedDimsFallsBack(t *testing.T) {
	m, _ := threeBlobs(20, 4)
	bad := &WarmStart{Centroids: stats.NewMatrix(3, 7)}
	fresh := SelectK(m, 4, 0.9, 13)
	got := SelectKOpt(m, 4, 0.9, 13, SweepOptions{Warm: bad})
	if !reflect.DeepEqual(got.Best.Assign, fresh.Best.Assign) || got.Best.K != fresh.Best.K {
		t.Fatal("mismatched warm centroids perturbed the sweep")
	}
}

// TestWarmMiniBatchEngine: the warm minibatch path (sampled refinement
// without restarts) recovers the blob partition when seeded from a
// previous exact run.
func TestWarmMiniBatchEngine(t *testing.T) {
	m, _ := bigBlobs(2000, 2) // above the fallback threshold: real sampled path
	prev := KMeans(m, 3, 42)
	sel := SelectKOpt(m, 3, 0.9, 42, SweepOptions{
		Engine: EngineMiniBatch,
		Warm:   &WarmStart{Centroids: prev.Centroids, Counts: occupancy(prev)},
	})
	if sel.Best.K != 3 {
		t.Fatalf("warm minibatch sweep chose K=%d, want 3", sel.Best.K)
	}
	if !samePartition(prev.Assign, sel.Best.Assign) {
		t.Fatal("warm minibatch diverged from the seeded partition on separated blobs")
	}
}

// occupancy derives per-cluster row counts from a Result.
func occupancy(r Result) []int {
	counts := make([]int, r.K)
	for _, c := range r.Assign {
		counts[c]++
	}
	return counts
}

// samePartition reports whether two assignments induce the same
// partition up to label renaming.
func samePartition(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := map[int]int{}
	rev := map[int]int{}
	for i := range a {
		if m, ok := fwd[a[i]]; ok && m != b[i] {
			return false
		}
		if m, ok := rev[b[i]]; ok && m != a[i] {
			return false
		}
		fwd[a[i]], rev[b[i]] = b[i], a[i]
	}
	return true
}
