package cluster

import (
	"testing"

	"mica/internal/stats"
)

func TestHierarchicalRecoversBlobs(t *testing.T) {
	m, truth := threeBlobs(15, 11)
	for _, linkage := range []Linkage{CompleteLinkage, SingleLinkage, AverageLinkage} {
		d := Hierarchical(m, linkage)
		if len(d.Merges) != m.Rows-1 {
			t.Fatalf("linkage %d: %d merges, want %d", linkage, len(d.Merges), m.Rows-1)
		}
		assign := d.Cut(3)
		mapping := map[int]int{}
		ok := true
		for i, tc := range truth {
			if got, seen := mapping[tc]; seen {
				if got != assign[i] {
					ok = false
				}
			} else {
				mapping[tc] = assign[i]
			}
		}
		if !ok || len(mapping) != 3 {
			t.Errorf("linkage %d did not recover the three blobs", linkage)
		}
	}
}

func TestMergeDistancesNondecreasingComplete(t *testing.T) {
	m, _ := threeBlobs(10, 12)
	d := Hierarchical(m, CompleteLinkage)
	// Complete linkage is monotone: merge distances never decrease.
	for i := 1; i < len(d.Merges); i++ {
		if d.Merges[i].Distance+1e-9 < d.Merges[i-1].Distance {
			t.Fatalf("merge %d at %g after %g", i, d.Merges[i].Distance, d.Merges[i-1].Distance)
		}
	}
}

func TestCutExtremes(t *testing.T) {
	m, _ := threeBlobs(5, 13)
	d := Hierarchical(m, CompleteLinkage)
	one := d.Cut(1)
	for _, c := range one {
		if c != 0 {
			t.Fatal("Cut(1) not a single cluster")
		}
	}
	all := d.Cut(m.Rows)
	seen := map[int]bool{}
	for _, c := range all {
		seen[c] = true
	}
	if len(seen) != m.Rows {
		t.Fatalf("Cut(n) gave %d clusters, want %d", len(seen), m.Rows)
	}
	if got := d.Cut(0); len(got) != m.Rows {
		t.Error("Cut(0) should clamp to 1 cluster over all leaves")
	}
	if got := d.Cut(m.Rows + 5); len(got) != m.Rows {
		t.Error("Cut beyond n should clamp")
	}
}

func TestCutAtDistance(t *testing.T) {
	// Two tight pairs far apart: cutting between the scales gives 2
	// clusters.
	m := stats.FromRows([][]float64{{0}, {0.1}, {100}, {100.1}})
	d := Hierarchical(m, CompleteLinkage)
	assign := d.CutAtDistance(1.0)
	if assign[0] != assign[1] || assign[2] != assign[3] || assign[0] == assign[2] {
		t.Errorf("CutAtDistance(1) = %v", assign)
	}
	if got := d.CutAtDistance(1e9); got[0] != got[3] {
		t.Error("huge threshold should give one cluster")
	}
}

func TestHierarchicalEmpty(t *testing.T) {
	d := Hierarchical(stats.NewMatrix(0, 2), CompleteLinkage)
	if d.N != 0 || len(d.Merges) != 0 {
		t.Error("empty input mishandled")
	}
}

func TestSingleVsCompleteOnChain(t *testing.T) {
	// A chain of equidistant points: single linkage chains them into
	// one cluster early, complete linkage resists.
	rows := make([][]float64, 8)
	for i := range rows {
		rows[i] = []float64{float64(i)}
	}
	m := stats.FromRows(rows)
	single := Hierarchical(m, SingleLinkage)
	complete := Hierarchical(m, CompleteLinkage)
	// Final merge distance: single = 1 (all merges at distance 1),
	// complete = 7 (full diameter).
	if got := single.Merges[len(single.Merges)-1].Distance; got != 1 {
		t.Errorf("single final merge at %g, want 1", got)
	}
	if got := complete.Merges[len(complete.Merges)-1].Distance; got != 7 {
		t.Errorf("complete final merge at %g, want 7", got)
	}
}
