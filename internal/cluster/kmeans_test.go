package cluster

import (
	"math"
	"math/rand"
	"testing"

	"mica/internal/stats"
)

// threeBlobs builds three well-separated Gaussian-ish clusters.
func threeBlobs(perCluster int, seed int64) (*stats.Matrix, []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	rows := make([][]float64, 0, 3*perCluster)
	truth := make([]int, 0, 3*perCluster)
	for c, ctr := range centers {
		for i := 0; i < perCluster; i++ {
			rows = append(rows, []float64{
				ctr[0] + rng.NormFloat64()*0.5,
				ctr[1] + rng.NormFloat64()*0.5,
			})
			truth = append(truth, c)
		}
	}
	return stats.FromRows(rows), truth
}

func TestKMeansRecoversBlobs(t *testing.T) {
	m, truth := threeBlobs(30, 1)
	res := KMeans(m, 3, 42)
	// Every true cluster must map to exactly one k-means cluster.
	mapping := map[int]int{}
	for i, tc := range truth {
		if got, ok := mapping[tc]; ok {
			if got != res.Assign[i] {
				t.Fatalf("true cluster %d split across k-means clusters", tc)
			}
		} else {
			mapping[tc] = res.Assign[i]
		}
	}
	if len(mapping) != 3 {
		t.Error("clusters merged")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	m, _ := threeBlobs(20, 2)
	a := KMeans(m, 3, 7)
	b := KMeans(m, 3, 7)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
}

func TestKMeansSSEDecreasesWithK(t *testing.T) {
	m, _ := threeBlobs(20, 3)
	prev := math.Inf(1)
	for k := 1; k <= 6; k++ {
		res := KMeans(m, k, 11)
		if res.SSE > prev+1e-9 {
			t.Errorf("SSE increased at k=%d: %g > %g", k, res.SSE, prev)
		}
		prev = res.SSE
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	m := stats.FromRows([][]float64{{0}, {1}, {2}})
	res := KMeans(m, 3, 5)
	if res.SSE > 1e-12 {
		t.Errorf("k=n SSE = %g, want 0", res.SSE)
	}
	seen := map[int]bool{}
	for _, c := range res.Assign {
		seen[c] = true
	}
	if len(seen) != 3 {
		t.Error("k=n did not give singleton clusters")
	}
}

func TestKMeansKGreaterThanN(t *testing.T) {
	m := stats.FromRows([][]float64{{0}, {1}})
	res := KMeans(m, 10, 5)
	if res.K != 2 {
		t.Errorf("K clamped to %d, want 2", res.K)
	}
}

func TestBICPrefersTrueK(t *testing.T) {
	m, _ := threeBlobs(40, 4)
	best, bestK := math.Inf(-1), 0
	for k := 1; k <= 8; k++ {
		res := KMeans(m, k, 13+int64(k))
		s := BIC(m, res)
		if s > best {
			best, bestK = s, k
		}
	}
	if bestK != 3 {
		t.Errorf("BIC-best K = %d, want 3", bestK)
	}
}

func TestSelectKNinetyPercentRule(t *testing.T) {
	m, _ := threeBlobs(40, 5)
	sel := SelectK(m, 10, 0.9, 99)
	if sel.Best.K < 2 || sel.Best.K > 5 {
		t.Errorf("selected K = %d for 3 blobs, want near 3", sel.Best.K)
	}
	if len(sel.Scores) != 10 {
		t.Errorf("scores for %d K values, want 10", len(sel.Scores))
	}
	if sel.MaxScore == math.Inf(-1) {
		t.Error("max score not computed")
	}
}

func TestSelectKSingletonData(t *testing.T) {
	m := stats.FromRows([][]float64{{1, 2}, {1.1, 2.1}, {0.9, 1.9}})
	sel := SelectK(m, 10, 0.9, 1)
	if sel.Best.K < 1 || sel.Best.K > 3 {
		t.Errorf("selected K = %d out of range", sel.Best.K)
	}
}

func TestKMeansEmptyInput(t *testing.T) {
	m := stats.NewMatrix(0, 3)
	res := KMeans(m, 3, 1)
	if len(res.Assign) != 0 {
		t.Error("empty input gave assignments")
	}
}
