package cluster

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"mica/internal/stats"
)

// engines lists the Result-compatible clustering engines under their
// property-test names.
var engines = []struct {
	name string
	run  func(m *stats.Matrix, k int, seed int64) Result
}{
	{"lloyd", KMeans},
	{"elkan", KMeansElkan},
	{"minibatch", MiniBatchKMeans},
}

// bigBlobs builds well-separated blobs with enough rows to exercise
// the real (non-fallback) minibatch path.
func bigBlobs(perCluster int, seed int64) (*stats.Matrix, []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := [][]float64{{0, 0, 0}, {12, 12, 0}, {-12, 12, 6}}
	rows := make([][]float64, 0, 3*perCluster)
	truth := make([]int, 0, 3*perCluster)
	for c, ctr := range centers {
		for i := 0; i < perCluster; i++ {
			rows = append(rows, []float64{
				ctr[0] + rng.NormFloat64()*0.5,
				ctr[1] + rng.NormFloat64()*0.5,
				ctr[2] + rng.NormFloat64()*0.5,
			})
			truth = append(truth, c)
		}
	}
	return stats.FromRows(rows), truth
}

// TestEnginesRecoverBlobsUpToPermutation is the label-equivalence
// property: on well-separated blobs every engine must produce the same
// partition as Lloyd's, up to a renaming of cluster ids.
func TestEnginesRecoverBlobsUpToPermutation(t *testing.T) {
	m, truth := bigBlobs(2000, 1) // 6000 rows: above the minibatch fallback, real sampled path
	want := KMeans(m, 3, 42)
	for _, eng := range engines {
		res := eng.run(m, 3, 42)
		if res.K != 3 {
			t.Fatalf("%s: K = %d, want 3", eng.name, res.K)
		}
		// Build the permutation from want's labels to res's labels; it
		// must be a consistent bijection over every row.
		perm := map[int]int{}
		used := map[int]bool{}
		for i := range truth {
			w, g := want.Assign[i], res.Assign[i]
			if mapped, ok := perm[w]; ok {
				if mapped != g {
					t.Fatalf("%s: rows with Lloyd label %d split across labels %d and %d",
						eng.name, w, mapped, g)
				}
				continue
			}
			if used[g] {
				t.Fatalf("%s: label %d claimed by two Lloyd clusters", eng.name, g)
			}
			perm[w], used[g] = g, true
		}
		if len(perm) != 3 {
			t.Errorf("%s: only %d clusters recovered", eng.name, len(perm))
		}
	}
}

// TestEnginesSSEWithinFivePercent pins the engine-quality contract on
// blob fixtures: minibatch and Elkan SSE within 5% of exact Lloyd's.
func TestEnginesSSEWithinFivePercent(t *testing.T) {
	m, _ := bigBlobs(2000, 2)
	for _, k := range []int{2, 3, 5} {
		exact := KMeans(m, k, 7)
		for _, eng := range engines[1:] {
			res := eng.run(m, k, 7)
			if res.SSE > exact.SSE*1.05 {
				t.Errorf("%s k=%d: SSE %.1f exceeds exact %.1f by more than 5%%",
					eng.name, k, res.SSE, exact.SSE)
			}
		}
	}
}

// TestMiniBatchSSEWithinFivePercentOverlapping is the SSE-quality
// assertion on the kind of matrix the minibatch engine exists for:
// overlapping blobs shaped like a z-scored phase-interval space, large
// enough (16k x 16) to take the real sampled path, swept across k.
func TestMiniBatchSSEWithinFivePercentOverlapping(t *testing.T) {
	m := SyntheticBlobs(16384, 16, 8, 0.8, 1.5, 9)
	for _, k := range []int{2, 4, 8} {
		seed := deriveSeed(2006, k)
		exact := KMeans(m, k, seed)
		mini := MiniBatchKMeans(m, k, seed)
		if mini.SSE > exact.SSE*1.05 {
			t.Errorf("k=%d: minibatch SSE %.1f exceeds exact %.1f by more than 5%%",
				k, mini.SSE, exact.SSE)
		}
	}
}

// TestEnginesDeterministic: same input + same seed = bit-identical
// Result, for every engine.
func TestEnginesDeterministic(t *testing.T) {
	m, _ := bigBlobs(1800, 3)
	for _, eng := range engines {
		a := eng.run(m, 4, 11)
		b := eng.run(m, 4, 11)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different clusterings", eng.name)
		}
	}
}

// TestEnginesEdgeCasesMatchLloyd pins k>=n, k>n, singleton and empty
// inputs to Lloyd's documented behavior for every engine.
func TestEnginesEdgeCasesMatchLloyd(t *testing.T) {
	for _, eng := range engines {
		// k == n: every point its own cluster, SSE 0.
		m := stats.FromRows([][]float64{{0}, {5}, {10}})
		res := eng.run(m, 3, 5)
		if res.SSE > 1e-12 {
			t.Errorf("%s: k=n SSE = %g, want 0", eng.name, res.SSE)
		}
		seen := map[int]bool{}
		for _, c := range res.Assign {
			seen[c] = true
		}
		if len(seen) != 3 {
			t.Errorf("%s: k=n did not give singleton clusters", eng.name)
		}

		// k > n: clamped to n.
		res = eng.run(stats.FromRows([][]float64{{0}, {1}}), 10, 5)
		if res.K != 2 {
			t.Errorf("%s: K clamped to %d, want 2", eng.name, res.K)
		}

		// Singleton input.
		res = eng.run(stats.FromRows([][]float64{{3, 4}}), 1, 5)
		if res.K != 1 || len(res.Assign) != 1 || res.Assign[0] != 0 || res.SSE != 0 {
			t.Errorf("%s: singleton input mishandled: %+v", eng.name, res)
		}

		// Empty input.
		res = eng.run(stats.NewMatrix(0, 3), 3, 1)
		if len(res.Assign) != 0 {
			t.Errorf("%s: empty input gave assignments", eng.name)
		}

		// k <= 0.
		res = eng.run(stats.FromRows([][]float64{{0}, {1}}), 0, 1)
		if res.K != 0 || len(res.Assign) != 2 {
			t.Errorf("%s: k=0 mishandled: %+v", eng.name, res)
		}
	}
}

// TestElkanMatchesLloydSSEClosely: Elkan is exact, so on a converged
// clustering its SSE should essentially coincide with Lloyd's from the
// same seed (identical seeding, identical update rule; only the order
// distance computations are skipped in differs).
func TestElkanMatchesLloydSSEClosely(t *testing.T) {
	m, _ := bigBlobs(500, 4)
	for _, k := range []int{2, 3, 4, 6} {
		ll := KMeans(m, k, 13)
		el := KMeansElkan(m, k, 13)
		if rel := math.Abs(el.SSE-ll.SSE) / ll.SSE; rel > 1e-9 {
			t.Errorf("k=%d: Elkan SSE %.6f vs Lloyd %.6f (rel %g)", k, el.SSE, ll.SSE, rel)
		}
		if !reflect.DeepEqual(el.Assign, ll.Assign) {
			t.Errorf("k=%d: Elkan assignment differs from Lloyd", k)
		}
	}
}

// TestSelectKOptLloydMatchesNaive is the differential contract of the
// parallel sweep: with the exact engine it must be bit-identical to
// the serial reference sweep, regardless of worker count.
func TestSelectKOptLloydMatchesNaive(t *testing.T) {
	m, _ := bigBlobs(60, 5)
	want := SelectKNaive(m, 8, 0.9, 99)
	for _, workers := range []int{1, 4} {
		got := SelectKOpt(m, 8, 0.9, 99, SweepOptions{Engine: EngineLloyd, Workers: workers})
		if got.Best.K != want.Best.K {
			t.Fatalf("workers=%d: K %d vs naive %d", workers, got.Best.K, want.Best.K)
		}
		if !reflect.DeepEqual(got.Best.Assign, want.Best.Assign) {
			t.Errorf("workers=%d: Best.Assign diverges from naive sweep", workers)
		}
		if !reflect.DeepEqual(got.Scores, want.Scores) {
			t.Errorf("workers=%d: BIC scores diverge from naive sweep", workers)
		}
		if !reflect.DeepEqual(got.SSEs, want.SSEs) {
			t.Errorf("workers=%d: SSEs diverge from naive sweep", workers)
		}
		if got.Best.SSE != want.Best.SSE {
			t.Errorf("workers=%d: Best.SSE %g vs %g", workers, got.Best.SSE, want.Best.SSE)
		}
	}
}

// TestSelectKParallelDeterministic: the parallel sweep's outcome must
// not depend on worker count or scheduling, for the auto engine too.
func TestSelectKParallelDeterministic(t *testing.T) {
	m, _ := bigBlobs(50, 6)
	base := SelectKOpt(m, 6, 0.9, 17, SweepOptions{Workers: 1})
	for _, workers := range []int{2, 5} {
		got := SelectKOpt(m, 6, 0.9, 17, SweepOptions{Workers: workers})
		if !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d: sweep outcome differs from serial", workers)
		}
	}
}

// TestSelectKSSEsPopulated: Selection.SSEs carries one final SSE per
// swept k, positive and generally decreasing on clusterable data.
func TestSelectKSSEsPopulated(t *testing.T) {
	m, _ := bigBlobs(40, 7)
	sel := SelectK(m, 6, 0.9, 3)
	if len(sel.SSEs) != 6 {
		t.Fatalf("SSEs has %d entries, want 6", len(sel.SSEs))
	}
	for i, sse := range sel.SSEs {
		if sse < 0 || math.IsNaN(sse) {
			t.Errorf("SSE[%d] = %g", i, sse)
		}
	}
	if sel.SSEs[5] >= sel.SSEs[0] {
		t.Errorf("SSE did not decrease across the sweep: %v", sel.SSEs)
	}
}

// TestSelectKDegenerate: empty matrix and maxK < 1 return an empty
// Selection instead of panicking (the pre-rework code indexed
// results[-1]).
func TestSelectKDegenerate(t *testing.T) {
	sel := SelectK(stats.NewMatrix(0, 5), 10, 0.9, 1)
	if len(sel.Scores) != 0 || sel.Best.Centroids != nil {
		t.Errorf("empty-matrix sweep returned %+v", sel)
	}
	sel = SelectKNaive(stats.NewMatrix(0, 5), 10, 0.9, 1)
	if len(sel.Scores) != 0 {
		t.Errorf("empty-matrix naive sweep returned %+v", sel)
	}
}

// TestDeriveSeedIndependence is the regression test for the seeding
// fix: per-k seeds must be pairwise distinct, not form the correlated
// seed+k ladder, and differ from one another in roughly half their
// bits (avalanche) so adjacent k runs draw independent k-means++
// sequences.
func TestDeriveSeedIndependence(t *testing.T) {
	const base = 2006
	seen := map[int64]bool{}
	totalBits := 0
	n := 0
	prev := deriveSeed(base, 1)
	for k := 1; k <= 70; k++ {
		s := deriveSeed(base, k)
		if seen[s] {
			t.Fatalf("derived seed for k=%d collides", k)
		}
		seen[s] = true
		if s == base+int64(k) {
			t.Errorf("k=%d: derived seed equals the old correlated seed+k scheme", k)
		}
		if k > 1 {
			diff := uint64(s ^ prev)
			bits := 0
			for diff != 0 {
				bits += int(diff & 1)
				diff >>= 1
			}
			totalBits += bits
			n++
		}
		prev = s
	}
	if avg := float64(totalBits) / float64(n); avg < 24 || avg > 40 {
		t.Errorf("adjacent derived seeds differ in %.1f bits on average, want ~32", avg)
	}
}

// TestDeriveSeedDistinctBaseSeeds: different sweep seeds produce
// different derived ladders.
func TestDeriveSeedDistinctBaseSeeds(t *testing.T) {
	if deriveSeed(1, 3) == deriveSeed(2, 3) {
		t.Error("different base seeds share a derived seed at the same k")
	}
}
