package cluster

import (
	"math/rand"

	"mica/internal/stats"
)

const (
	// defaultBatchSize is the minibatch sample size per iteration.
	defaultBatchSize = 1024
	// defaultMiniBatchRows is the row count at which EngineAuto switches
	// from exact Lloyd to minibatch inside a sweep.
	defaultMiniBatchRows = 8192
	// polishIters caps the full-data Lloyd refinement rounds run after
	// the minibatch phase: they pin down centroid means, repair any
	// cluster the sampling left empty, and leave the assignment
	// consistent with the centroids. Polish stops early once the
	// assignment is stable, so it usually costs 2-4 passes — minibatch
	// centers start near a Lloyd fixed point.
	polishIters = 10
	// miniBatchIters caps the sampled-update iterations per attempt;
	// quality past this point comes from the full-data polish, which
	// converges from near-fixed-point centers in a few passes.
	miniBatchIters = 50
	// miniBatchMinIters is the floor before drift-based early exit.
	miniBatchMinIters = 10
	// miniBatchRestarts is the number of independent seeding + minibatch
	// attempts per run; the attempt with the lowest sample SSE is
	// polished. Restarts are nearly free next to a single full-data
	// pass and squeeze out most of the local-optimum variance that
	// separates one sampled run from exact Lloyd — with several
	// attempts, the polished winner usually matches or beats a single
	// exact run's basin.
	miniBatchRestarts = 3
)

// MiniBatchKMeans clusters the rows of m with sampled minibatch k-means
// (Sculley, WWW 2010): k-means++ seeding on a sample, then per-center
// streaming-mean updates from random batches until the centers stop
// drifting, then a short full-data polish. It trades a bounded SSE gap
// (a few percent versus exact Lloyd) for touching only a fraction of
// the rows per iteration — the enabling engine for BIC sweeps over
// 100k+-interval phase matrices. Deterministic for a given seed.
//
// Small inputs (where a full Lloyd pass is already cheap, or where k
// approaches n and sampling would starve clusters) fall back to the
// exact engine, so edge-case behavior matches KMeans.
func MiniBatchKMeans(m *stats.Matrix, k int, seed int64) Result {
	sc := newScratch()
	return ownAssign(kmeansRun(m, k, seed, EngineMiniBatch, SweepOptions{}.withDefaults(), sc))
}

// miniBatchRun is the engine body; rng is already seeded and sc
// provides the reusable buffers. Assign in the returned Result aliases
// sc.assign.
//
// Random row access goes through gather: indices for the seeding
// sample and for every minibatch are drawn first, the rows are copied
// into a scratch matrix in one batched read, and the update loop runs
// over the copies in draw order. For an in-memory matrix this is just
// a copy; for a sharded store source it turns 1024 random row reads
// into one visit per touched shard — without changing a single
// floating-point operation or rng draw, so results stay bit-identical
// to the pre-gather engine.
func miniBatchRun(m Rows, k int, rng *rand.Rand, opt SweepOptions, sc *scratch) Result {
	n, d := m.Len(), m.Dim()
	batch := opt.BatchSize
	if n <= 4*batch || 8*k >= n {
		// Exact fallback: the batch would cover most of the data anyway,
		// or clusters are small enough that sampling could starve them.
		return lloydFrom(m, seedPlusPlus(m, k, rng, sc), sc)
	}

	// One shared random sample serves k-means++ seeding (full-data
	// seeding costs k passes over all n rows, exactly the cost
	// minibatch exists to avoid) and restart scoring.
	sampleN := 2 * batch
	if sampleN < 8*k {
		sampleN = 8 * k
	}
	if sampleN > n {
		sampleN = n
	}
	sampleIdx := ints(&sc.sampleIdx, sampleN)
	for j := range sampleIdx {
		sampleIdx[j] = rng.Intn(n)
	}
	sampleData := floats(&sc.sample, sampleN*d)
	sample := &stats.Matrix{Rows: sampleN, Cols: d, Data: sampleData}
	gather(m, sampleIdx, sample)
	scale := 0.0
	for _, v := range sampleData {
		scale += v * v
	}
	// Drift tolerance scales with the data's mean squared row norm, so
	// convergence detection behaves the same for normalized and raw
	// characteristic spaces.
	tol := 1e-6 * (1 + scale/float64(sampleN)) * float64(k)

	upd := ints(&sc.upd, k)
	idx := ints(&sc.batch, batch)
	prev := floats(&sc.prev, k*d)
	batchRows := &stats.Matrix{Rows: batch, Cols: d, Data: floats(&sc.gat, batch*d)}

	var cents *stats.Matrix
	bestScore := 0.0
	for attempt := 0; attempt < miniBatchRestarts; attempt++ {
		try := seedPlusPlus(sample, k, rng, sc)
		for c := range upd {
			upd[c] = 0
		}
		for iter := 0; iter < miniBatchIters; iter++ {
			copy(prev, try.Data)
			for j := range idx {
				idx[j] = rng.Intn(n)
			}
			gather(m, idx, batchRows)
			for j := range idx {
				row := batchRows.Row(j)
				c, _ := nearest(row, try)
				upd[c]++
				eta := 1 / float64(upd[c])
				crow := try.Row(c)
				for j := 0; j < d; j++ {
					crow[j] += eta * (row[j] - crow[j])
				}
			}
			drift := 0.0
			for c := 0; c < k; c++ {
				drift += sqDist(prev[c*d:(c+1)*d], try.Row(c))
			}
			if drift <= tol && iter+1 >= miniBatchMinIters {
				break
			}
		}
		// Score the attempt on the sample (a full-data pass would cost
		// what the restarts are meant to stay below).
		score := 0.0
		for i := 0; i < sampleN; i++ {
			_, dd := nearest(sample.Row(i), try)
			score += dd
		}
		if cents == nil || score < bestScore {
			cents, bestScore = try, score
		}
	}

	// Full-data polish of the winning attempt: Lloyd rounds until the
	// assignment stabilizes (or the cap), repairing empty clusters,
	// settling centroid means, and ending with an assignment consistent
	// with the centroids.
	return miniBatchPolish(m, cents, sc)
}

// miniBatchPolish runs the bounded full-data Lloyd tail shared by the
// restart path and the warm path.
func miniBatchPolish(m Rows, cents *stats.Matrix, sc *scratch) Result {
	n, k := m.Len(), cents.Rows
	assign := ints(&sc.assign, n)
	counts := ints(&sc.counts, k)
	var sse, prevSSE float64
	for p := 0; ; p++ {
		sse = assignAll(m, cents, assign, counts)
		if p >= polishIters || (p > 0 && sse >= prevSSE) {
			break
		}
		prevSSE = sse
		updateCentroids(m, cents, assign, counts)
	}
	return Result{K: k, Assign: assign, Centroids: cents, SSE: sse}
}

// miniBatchFrom is the warm-start variant of miniBatchRun: the seed
// centroids are already data-informed (a previous run's centers), so
// the k-means++ restarts are skipped in favor of one sampled
// refinement pass from the seeds, followed by the standard full-data
// polish. Small inputs fall back to exact refinement, mirroring
// miniBatchRun's fallback. cents is refined in place (callers pass a
// private copy).
func miniBatchFrom(m Rows, cents *stats.Matrix, rng *rand.Rand, opt SweepOptions, sc *scratch) Result {
	n, d := m.Len(), m.Dim()
	k := cents.Rows
	batch := opt.BatchSize
	if n <= 4*batch || 8*k >= n {
		return lloydFrom(m, cents, sc)
	}

	// Drift tolerance from a sample's mean squared row norm, as in
	// miniBatchRun.
	sampleN := 2 * batch
	if sampleN > n {
		sampleN = n
	}
	sampleIdx := ints(&sc.sampleIdx, sampleN)
	for j := range sampleIdx {
		sampleIdx[j] = rng.Intn(n)
	}
	sampleData := floats(&sc.sample, sampleN*d)
	sample := &stats.Matrix{Rows: sampleN, Cols: d, Data: sampleData}
	gather(m, sampleIdx, sample)
	scale := 0.0
	for _, v := range sampleData {
		scale += v * v
	}
	tol := 1e-6 * (1 + scale/float64(sampleN)) * float64(k)

	upd := ints(&sc.upd, k)
	for c := range upd {
		upd[c] = 0
	}
	idx := ints(&sc.batch, batch)
	prev := floats(&sc.prev, k*d)
	batchRows := &stats.Matrix{Rows: batch, Cols: d, Data: floats(&sc.gat, batch*d)}
	for iter := 0; iter < miniBatchIters; iter++ {
		copy(prev, cents.Data)
		for j := range idx {
			idx[j] = rng.Intn(n)
		}
		gather(m, idx, batchRows)
		for j := range idx {
			row := batchRows.Row(j)
			c, _ := nearest(row, cents)
			upd[c]++
			eta := 1 / float64(upd[c])
			crow := cents.Row(c)
			for j := 0; j < d; j++ {
				crow[j] += eta * (row[j] - crow[j])
			}
		}
		drift := 0.0
		for c := 0; c < k; c++ {
			drift += sqDist(prev[c*d:(c+1)*d], cents.Row(c))
		}
		if drift <= tol && iter+1 >= miniBatchMinIters {
			break
		}
	}
	return miniBatchPolish(m, cents, sc)
}
