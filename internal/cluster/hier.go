package cluster

import (
	"math"

	"mica/internal/stats"
)

// Linkage selects the inter-cluster distance rule for hierarchical
// clustering.
type Linkage uint8

// Linkage rules.
const (
	// CompleteLinkage merges on the maximum pairwise distance — the
	// rule used by the workload-similarity prior work the paper builds
	// on (Phansalkar et al., ISPASS 2005).
	CompleteLinkage Linkage = iota
	// SingleLinkage merges on the minimum pairwise distance.
	SingleLinkage
	// AverageLinkage merges on the mean pairwise distance (UPGMA).
	AverageLinkage
)

// Merge records one agglomeration step: clusters A and B (identified by
// dendrogram node ids) joined at the given distance into node Parent.
// Leaves are nodes 0..n-1; internal nodes are n..2n-2.
type Merge struct {
	A, B     int
	Parent   int
	Distance float64
}

// Dendrogram is the full agglomeration history of n points.
type Dendrogram struct {
	N      int
	Merges []Merge
}

// Hierarchical builds a dendrogram over the rows of m by agglomerative
// clustering with the given linkage, using the Lance-Williams update.
func Hierarchical(m *stats.Matrix, linkage Linkage) *Dendrogram {
	n := m.Rows
	d := &Dendrogram{N: n}
	if n == 0 {
		return d
	}
	// Active cluster distance matrix, updated in place.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			e := stats.Euclidean(m.Row(i), m.Row(j))
			dist[i][j], dist[j][i] = e, e
		}
	}
	active := make([]bool, n)
	node := make([]int, n) // dendrogram node id of slot i
	size := make([]int, n) // cluster size of slot i
	for i := 0; i < n; i++ {
		active[i], node[i], size[i] = true, i, 1
	}

	next := n
	for step := 0; step < n-1; step++ {
		// Find the closest active pair.
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if active[j] && dist[i][j] < best {
					bi, bj, best = i, j, dist[i][j]
				}
			}
		}
		d.Merges = append(d.Merges, Merge{A: node[bi], B: node[bj], Parent: next, Distance: best})
		// Merge bj into bi; update distances per linkage.
		for k := 0; k < n; k++ {
			if !active[k] || k == bi || k == bj {
				continue
			}
			var nd float64
			switch linkage {
			case SingleLinkage:
				nd = math.Min(dist[bi][k], dist[bj][k])
			case AverageLinkage:
				wi, wj := float64(size[bi]), float64(size[bj])
				nd = (wi*dist[bi][k] + wj*dist[bj][k]) / (wi + wj)
			default: // CompleteLinkage
				nd = math.Max(dist[bi][k], dist[bj][k])
			}
			dist[bi][k], dist[k][bi] = nd, nd
		}
		active[bj] = false
		size[bi] += size[bj]
		node[bi] = next
		next++
	}
	return d
}

// Cut flattens the dendrogram into exactly k clusters by undoing the last
// k-1 merges, returning an assignment of leaves to cluster ids 0..k-1.
func (d *Dendrogram) Cut(k int) []int {
	n := d.N
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	// Union-find over leaves, replaying merges except the last k-1.
	parent := make([]int, 2*n-1)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	stop := len(d.Merges) - (k - 1)
	for i := 0; i < stop; i++ {
		mg := d.Merges[i]
		parent[find(mg.A)] = mg.Parent
		parent[find(mg.B)] = mg.Parent
	}
	ids := map[int]int{}
	out := make([]int, n)
	for leaf := 0; leaf < n; leaf++ {
		root := find(leaf)
		id, ok := ids[root]
		if !ok {
			id = len(ids)
			ids[root] = id
		}
		out[leaf] = id
	}
	return out
}

// CutAtDistance flattens the dendrogram by cutting all merges above the
// given distance threshold.
func (d *Dendrogram) CutAtDistance(threshold float64) []int {
	k := 1
	for _, mg := range d.Merges {
		if mg.Distance > threshold {
			k++
		}
	}
	return d.Cut(k)
}
