package mica

import (
	"context"
	"errors"
	"strings"
	"testing"

	"mica/internal/faults"
	"mica/internal/pool"
)

// epBenchmarks returns two working benchmarks around one that cannot
// instantiate (unknown kernel) — the standard fixture for the error
// propagation contract: the bad one is named, the good ones complete.
func epBenchmarks(t *testing.T) (bs []Benchmark, bad Benchmark) {
	t.Helper()
	good1, err := BenchmarkByName("MiBench/sha/large")
	if err != nil {
		t.Fatal(err)
	}
	good2, err := BenchmarkByName("CommBench/drr/drr")
	if err != nil {
		t.Fatal(err)
	}
	bad = Benchmark{Suite: "Synthetic", Program: "broken", Input: "bad", Kernel: "no-such-kernel", Size: 64}
	return []Benchmark{good1, bad, good2}, bad
}

func epPhaseCfg() PhasePipelineConfig {
	return PhasePipelineConfig{
		Phase:   PhaseConfig{IntervalLen: 500, MaxIntervals: 4, MaxK: 2, Seed: 1},
		Workers: 2,
	}
}

// TestPipelineErrorsNameOffendingBenchmark is the table-driven
// contract test over every top-level context-aware pipeline variant:
// a benchmark that fails mid-pipeline yields an error that names it
// (with the pool's item attribution preserved in the chain), and the
// variants documented to return partial results deliver the other
// benchmarks' results complete.
func TestPipelineErrorsNameOffendingBenchmark(t *testing.T) {
	bs, bad := epBenchmarks(t)
	pcfg := epPhaseCfg()
	rcfg := ReducedPipelineConfig{Reduced: ReducedConfig{Phase: pcfg.Phase}, Workers: 2}

	cases := []struct {
		name string
		// run executes the variant and reports which of the three
		// benchmarks produced a usable result (nil when the variant
		// documents no partial results).
		run func(ctx context.Context) (partial []bool, err error)
	}{
		{"ProfileBenchmarksCtx", func(ctx context.Context) ([]bool, error) {
			cfg := DefaultConfig()
			cfg.InstBudget = 2_000
			cfg.SkipHPC = true
			res, err := ProfileBenchmarksCtx(ctx, bs, cfg)
			if len(res) != len(bs) {
				t.Fatalf("got %d results for %d benchmarks", len(res), len(bs))
			}
			return []bool{res[0].Insts > 0, res[1].Insts > 0, res[2].Insts > 0}, err
		}},
		{"AnalyzePhasesBenchmarksCtx", func(ctx context.Context) ([]bool, error) {
			res, err := AnalyzePhasesBenchmarksCtx(ctx, bs, pcfg)
			if len(res) != len(bs) {
				t.Fatalf("got %d results for %d benchmarks", len(res), len(bs))
			}
			return []bool{res[0].Result != nil, res[1].Result != nil, res[2].Result != nil}, err
		}},
		{"AnalyzeReducedBenchmarksCtx", func(ctx context.Context) ([]bool, error) {
			res, err := AnalyzeReducedBenchmarksCtx(ctx, bs, rcfg)
			if len(res) != len(bs) {
				t.Fatalf("got %d results for %d benchmarks", len(res), len(bs))
			}
			return []bool{res[0].Result != nil, res[1].Result != nil, res[2].Result != nil}, err
		}},
		{"AnalyzePhasesJointCtx", func(ctx context.Context) ([]bool, error) {
			j, err := AnalyzePhasesJointCtx(ctx, bs, pcfg)
			if j != nil {
				t.Error("joint result must be nil when any benchmark fails (a shrunken vocabulary would be silently wrong)")
			}
			return nil, err
		}},
		{"AnalyzeReducedJointCtx", func(ctx context.Context) ([]bool, error) {
			jr, err := AnalyzeReducedJointCtx(ctx, bs, rcfg)
			if jr != nil {
				t.Error("joint reduced result must be nil when any benchmark fails")
			}
			return nil, err
		}},
		{"CharacterizeToStoreCtx", func(ctx context.Context) ([]bool, error) {
			st, stats, err := CharacterizeToStoreCtx(ctx, bs, pcfg, StoreOptions{Dir: t.TempDir()})
			if st != nil {
				defer st.Close()
			}
			if len(stats.Failed) != 1 || stats.Failed[0] != bad.Name() {
				t.Errorf("stats.Failed = %v, want exactly %q", stats.Failed, bad.Name())
			}
			done := make(map[string]bool, len(stats.Characterized))
			for _, n := range stats.Characterized {
				done[n] = true
			}
			return []bool{done[bs[0].Name()], done[bs[1].Name()], done[bs[2].Name()]}, err
		}},
		{"AnalyzePhasesJointStoreCtx", func(ctx context.Context) ([]bool, error) {
			j, stats, err := AnalyzePhasesJointStoreCtx(ctx, bs, pcfg, StoreOptions{Dir: t.TempDir()})
			if j != nil {
				t.Error("store-backed joint result must be nil when any benchmark fails")
			}
			if len(stats.Failed) != 1 || stats.Failed[0] != bad.Name() {
				t.Errorf("stats.Failed = %v, want exactly %q", stats.Failed, bad.Name())
			}
			return nil, err
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			partial, err := tc.run(context.Background())
			if err == nil {
				t.Fatal("bad benchmark did not surface as an error")
			}
			if !strings.Contains(err.Error(), bad.Name()) {
				t.Errorf("error does not name the offending benchmark %q:\n%v", bad.Name(), err)
			}
			var ie *pool.ItemError
			if !errors.As(err, &ie) {
				t.Errorf("pool item attribution missing from error chain:\n%v", err)
			} else if ie.Item != 1 {
				t.Errorf("attributed to item %d, want 1", ie.Item)
			}
			if partial != nil {
				want := []bool{true, false, true}
				for i := range want {
					if partial[i] != want[i] {
						t.Errorf("benchmark %d usable = %v, want %v (one failure must not stop the others)",
							i, partial[i], want[i])
					}
				}
			}
		})
	}
}

// TestPipelinePanicIsolation: a panicking benchmark is recovered on
// its worker, converted into an error naming it (with the panic value
// and stack preserved), and the other benchmarks complete.
func TestPipelinePanicIsolation(t *testing.T) {
	var bs []Benchmark
	for _, n := range []string{"MiBench/sha/large", "CommBench/drr/drr", "SPEC2000/gzip/program"} {
		b, err := BenchmarkByName(n)
		if err != nil {
			t.Fatal(err)
		}
		bs = append(bs, b)
	}
	cfg := epPhaseCfg()
	cfg.Workers = 1 // the keyless Nth-occurrence address below counts pool items globally

	// The very first pool item dispatched is pipeline item 0 (inner
	// clustering sweeps only run later, inside fn), so this address
	// panics bs[0]'s worker before its analysis starts.
	disarm := faults.Arm(faults.Address{Point: faults.PoolItem, Nth: 0}, faults.Crash)
	res, err := AnalyzePhasesBenchmarksCtx(context.Background(), bs, cfg)
	if fired := disarm(); fired != 1 {
		t.Fatalf("crash fired %d times, want 1", fired)
	}
	if err == nil {
		t.Fatal("panicking benchmark did not surface as an error")
	}
	if !strings.Contains(err.Error(), bs[0].Name()) {
		t.Errorf("error does not name the panicking benchmark:\n%v", err)
	}
	var pe *pool.PanicError
	if !errors.As(err, &pe) {
		t.Errorf("panic value/stack missing from error chain:\n%v", err)
	} else if !strings.Contains(pe.Error(), "injected crash") {
		t.Errorf("recovered panic value lost: %v", pe.Value)
	}
	if res[0].Result != nil {
		t.Error("panicked benchmark has a result")
	}
	if res[1].Result == nil || res[2].Result == nil {
		t.Error("one panic stopped the other benchmarks")
	}
}

// TestPipelineCancellationIsPrompt: a pre-cancelled context returns
// immediately with ctx.Err in the chain and no benchmark dispatched.
func TestPipelineCancellationIsPrompt(t *testing.T) {
	bs, _ := epBenchmarks(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	res, err := AnalyzePhasesBenchmarksCtx(ctx, bs, epPhaseCfg())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	for i, r := range res {
		if r.Result != nil {
			t.Errorf("benchmark %d ran despite pre-cancelled context", i)
		}
	}

	if _, err := ProfileBenchmarksCtx(ctx, bs, DefaultConfig()); !errors.Is(err, context.Canceled) {
		t.Errorf("ProfileBenchmarksCtx err = %v, want context.Canceled", err)
	}
	if _, err := AnalyzeReducedBenchmarksCtx(ctx, bs, ReducedPipelineConfig{Reduced: ReducedConfig{Phase: epPhaseCfg().Phase}}); !errors.Is(err, context.Canceled) {
		t.Errorf("AnalyzeReducedBenchmarksCtx err = %v, want context.Canceled", err)
	}
}
