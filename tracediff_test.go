package mica

import (
	"path/filepath"
	"reflect"
	"testing"
)

// The tentpole proof obligation: every pipeline produces bit-identical
// results from a trace-backed benchmark and from the live embedded VM
// it was recorded from. The trace-backed benchmarks reuse the live
// benchmarks' three-part names, so config stamps, store shard names
// and joint row provenance line up exactly and reflect.DeepEqual can
// compare whole result structs.

// tracePair records b at budget and returns the trace-backed twin.
func tracePair(t *testing.T, b Benchmark, budget uint64) Benchmark {
	t.Helper()
	path := filepath.Join(t.TempDir(), "b.trc")
	n, err := RecordTrace(b, path, budget)
	if err != nil {
		t.Fatalf("recording %s: %v", b.Name(), err)
	}
	if n != budget {
		t.Fatalf("recorded %d instructions of %s, want %d", n, b.Name(), budget)
	}
	return TraceBenchmark(b.Name(), path)
}

var diffPhaseCfg = PhaseConfig{IntervalLen: 2_000, MaxIntervals: 10, MaxK: 3, Seed: 42}

const diffBudget = 2_000 * 10 // IntervalLen * MaxIntervals: both sides see every window

func TestTraceProfileMatchesLiveVM(t *testing.T) {
	live, err := BenchmarkByName("MiBench/sha/large")
	if err != nil {
		t.Fatal(err)
	}
	replay := tracePair(t, live, diffBudget)

	cfg := DefaultConfig()
	cfg.InstBudget = diffBudget
	want, err := Profile(live, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Profile(replay, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Insts != want.Insts {
		t.Errorf("replay profiled %d instructions, live %d", got.Insts, want.Insts)
	}
	if got.Chars != want.Chars {
		t.Error("47-characteristic vectors diverge between replay and live VM")
	}
	if got.HPC != want.HPC {
		t.Error("HPC vectors diverge between replay and live VM")
	}
}

func TestTracePhasesMatchLiveVM(t *testing.T) {
	live, err := BenchmarkByName("SPEC2000/twolf/ref")
	if err != nil {
		t.Fatal(err)
	}
	replay := tracePair(t, live, diffBudget)

	want, err := AnalyzePhases(live, diffPhaseCfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AnalyzePhases(replay, diffPhaseCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("phase decomposition diverges: replay K=%d/%d intervals, live K=%d/%d",
			got.K, len(got.Intervals), want.K, len(want.Intervals))
	}
}

func TestTraceReducedMatchesLiveVM(t *testing.T) {
	live, err := BenchmarkByName("CommBench/drr/drr")
	if err != nil {
		t.Fatal(err)
	}
	replay := tracePair(t, live, diffBudget)

	cfg := ReducedConfig{Phase: diffPhaseCfg}
	want, err := AnalyzeReduced(live, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AnalyzeReduced(replay, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("reduced profile diverges: replay chars %v, live %v", got.Chars, want.Chars)
	}
}

// TestTraceJointStoreMatchesLiveVM drives the deepest pipeline — the
// store-backed joint analysis — once from live benchmarks and once
// from their recorded traces, through separate stores, and requires
// the identical shared-phase vocabulary.
func TestTraceJointStoreMatchesLiveVM(t *testing.T) {
	names := []string{"MiBench/sha/large", "CommBench/drr/drr"}
	var lives, replays []Benchmark
	for _, n := range names {
		b, err := BenchmarkByName(n)
		if err != nil {
			t.Fatal(err)
		}
		lives = append(lives, b)
		replays = append(replays, tracePair(t, b, diffBudget))
	}

	cfg := PhasePipelineConfig{Phase: diffPhaseCfg, Workers: 2}
	want, _, err := AnalyzePhasesJointStore(lives, cfg, StoreOptions{Dir: filepath.Join(t.TempDir(), "live")})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := AnalyzePhasesJointStore(replays, cfg, StoreOptions{Dir: filepath.Join(t.TempDir(), "replay")})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("store-backed joint analysis diverges: replay K=%d over %d rows, live K=%d over %d rows",
			got.K, len(got.Rows), want.K, len(want.Rows))
	}
}
