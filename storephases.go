package mica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"

	"mica/internal/ivstore"
	micachar "mica/internal/mica"
	"mica/internal/phases"
	"mica/internal/trace"
)

// IVStore is the sharded, columnar, on-disk interval-vector store
// behind registry-scale joint phase analysis: one binary shard per
// benchmark plus a versioned JSON manifest. See internal/ivstore for
// the format.
type IVStore = ivstore.Store

// IVCacheStats is the store's decoded-shard cache accounting (budget,
// resident and peak bytes, hits, decodes, evictions). See
// ivstore.CacheStats.
type IVCacheStats = ivstore.CacheStats

// StoreOptions parameterizes the store-backed joint pipelines. The
// zero value (plus a Dir) is the documented default: float32 shards,
// full rebuild.
type StoreOptions struct {
	// Dir is the store directory.
	Dir string
	// Quantize selects the 8-bit quantized shard encoding instead of
	// float32 — 4x smaller shards for a reconstruction error bounded by
	// half a per-column quantization step (ivstore.Quant8MaxError).
	Quantize bool
	// Incremental reuses shards of an existing store in Dir whose
	// benchmark name and configuration stamp still match, so a rerun
	// re-characterizes only the benchmarks whose configuration hash or
	// membership changed (a missing or dropped shard counts as
	// changed). Without it the whole set is re-characterized.
	Incremental bool
	// CacheBytes bounds the store's decoded-shard cache (bytes of
	// decoded rows held in memory across the analysis passes). Zero
	// keeps the store's default budget: all shards decoded, clamped to
	// 1 GiB and floored at one shard. See ivstore.SetCacheBytes.
	CacheBytes int64
	// WarmStart seeds the joint clustering from the warm state a
	// previous store-backed run persisted next to the store (and
	// persists this run's state for the next one). A missing, stale or
	// drifted state silently falls back to fresh seeding;
	// StoreBuildStats.WarmStarted reports what happened.
	WarmStart bool
}

// encoding maps the option to the store encoding.
func (o StoreOptions) encoding() ivstore.Encoding {
	if o.Quantize {
		return ivstore.Quant8
	}
	return ivstore.Float32
}

// StoreBuildStats reports what a CharacterizeToStore run did per
// benchmark — the incremental contract made observable (and
// regression-tested: an incremental rerun that changes one benchmark
// re-characterizes exactly that one).
type StoreBuildStats struct {
	// Characterized lists the benchmarks whose shards were (re)built
	// this run, in pipeline order. With CharacterizeToStoreCtx a
	// benchmark appears here only if its shard was actually written —
	// failed and never-dispatched benchmarks land in Failed/Skipped.
	Characterized []string
	// Reused lists the benchmarks whose existing shards were adopted
	// unchanged.
	Reused []string
	// Failed lists the benchmarks whose characterization or shard
	// write failed this run (bs order). They are absent from the
	// committed manifest; an incremental rerun re-characterizes
	// exactly them.
	Failed []string
	// Skipped lists the benchmarks never dispatched because the
	// context was cancelled first (bs order). Like Failed they are
	// absent from the committed manifest and picked up by a rerun.
	Skipped []string
	// CommitWarnings carries the non-fatal problems Commit reported
	// (stray files it could not prune, a failed lock downgrade).
	CommitWarnings []string
	// Cache is the store's decoded-shard cache accounting at the end of
	// the analysis (peak resident bytes, hits, decodes, evictions) —
	// populated by the joint/reduced store pipelines that close the
	// store internally, zero for a bare CharacterizeToStore.
	Cache IVCacheStats
	// WarmStarted reports whether the joint clustering was actually
	// seeded from a persisted warm state (StoreOptions.WarmStart
	// requested AND the state matched the store).
	WarmStarted bool
}

// CharacterizeToStore characterizes every benchmark's intervals into
// an on-disk interval-vector store: the sharded pooled pipeline (one
// profiler per worker, Reset between intervals and benchmarks) feeds
// one shard per benchmark, written as each worker finishes, so peak
// memory is bounded by the in-flight benchmarks — never the
// registry-wide matrix. The committed store's row order is bs order,
// exactly the concatenation order of the in-memory joint path.
//
// With opt.Incremental, shards of an existing store in opt.Dir are
// reused in place when their benchmark name and configuration stamp
// (the hash of the normalized phase configuration) still match and
// their file is still present; only changed benchmarks pay
// re-characterization, and benchmarks dropped from bs are pruned on
// commit. A directory that holds an unreadable store is an error,
// never silently overwritten. cfg.Progress is invoked once per
// benchmark actually characterized (not for reused shards).
func CharacterizeToStore(bs []Benchmark, cfg PhasePipelineConfig, opt StoreOptions) (*IVStore, *StoreBuildStats, error) {
	st, stats, err := CharacterizeToStoreCtx(context.Background(), bs, cfg, opt)
	if err != nil {
		// Legacy all-or-nothing contract: no store handle on error. The
		// partial commit (if any) is still on disk for incremental
		// reruns; only the open handle and its lock are released.
		if st != nil {
			st.Close()
		}
		return nil, nil, err
	}
	return st, stats, nil
}

// CharacterizeToStoreCtx is CharacterizeToStore with cancellation and
// per-benchmark fault isolation — the resumable form. A failing or
// panicking benchmark is skipped (named in the joined error and in
// stats.Failed) while the others complete; cancelling ctx stops
// dispatching new benchmarks and drains in-flight ones (never
// dispatched ones land in stats.Skipped). In both cases every shard
// that WAS successfully staged — reused or just characterized — is
// still committed, so the partial store is durable and a subsequent
// Incremental rerun adopts those shards and re-characterizes exactly
// the failed/skipped benchmarks. If nothing was staged, nothing is
// committed and a previously committed store in opt.Dir is left
// untouched.
//
// On success the returned store is committed and open (holding a
// shared lock); the caller owns it and should Close it. When err is
// non-nil the store is returned too whenever it exists — possibly
// committed with partial contents, possibly uncommitted if the commit
// itself failed — so the caller can inspect it; Close it either way.
func CharacterizeToStoreCtx(ctx context.Context, bs []Benchmark, cfg PhasePipelineConfig, opt StoreOptions) (*IVStore, *StoreBuildStats, error) {
	cfg.Phase = cfg.Phase.WithDefaults()
	return characterizeToStoreCtx(ctx, bs, cfg, opt, phaseConfigHash(cfg.Phase), "store characterization of",
		func(m trace.Source, prof *micachar.Profiler) (*phases.Result, error) {
			return phases.CharacterizeWith(m, prof, cfg.Phase)
		})
}

// characterizeToStoreCtx is the shared store-build engine behind the
// plain and reduced store pipelines: shard reuse inventory, the pooled
// characterization (characterize produces each benchmark's interval
// grid; the profiler it receives was built from cfg.Phase.Options),
// per-benchmark fault accounting and the partial-work commit. hash is
// the configuration stamp shards are keyed on — the plain and reduced
// pipelines stamp differently, so their shards never cross-adopt.
func characterizeToStoreCtx(ctx context.Context, bs []Benchmark, cfg PhasePipelineConfig, opt StoreOptions,
	hash, what string, characterize func(m trace.Source, prof *micachar.Profiler) (*phases.Result, error)) (*IVStore, *StoreBuildStats, error) {
	if len(bs) == 0 {
		return nil, nil, fmt.Errorf("mica: characterizing zero benchmarks to a store")
	}
	if opt.Dir == "" {
		return nil, nil, fmt.Errorf("mica: store characterization needs a directory")
	}
	enc := opt.encoding()

	// Inventory the existing store when reuse is requested (the
	// manifest alone — a vanished shard file only invalidates its own
	// benchmark, via the Adopt fallback below). A missing store means a
	// fresh build; a present-but-unusable one is surfaced, mirroring
	// the JSON caches' refusal to clobber.
	reusable := make(map[string]ivstore.Shard)
	prevCfg, prevShards, err := ivstore.Inventory(opt.Dir)
	switch {
	case err == nil:
		if opt.Incremental && prevCfg.Dims == NumChars && prevCfg.Encoding == enc && prevCfg.ConfigHash == hash {
			for _, sh := range prevShards {
				if sh.ConfigHash == hash {
					reusable[sh.Name] = sh
				}
			}
		}
	case errors.Is(err, fs.ErrNotExist):
		// No store yet; build from scratch.
	default:
		return nil, nil, fmt.Errorf("mica: %s exists but is not a usable interval-vector store (delete it or pass another path): %w", opt.Dir, err)
	}

	st, err := ivstore.Create(opt.Dir, ivstore.Config{Dims: NumChars, Encoding: enc, ConfigHash: hash})
	if err != nil {
		return nil, nil, err
	}
	if opt.CacheBytes > 0 {
		st.SetCacheBytes(opt.CacheBytes)
	}

	stats := &StoreBuildStats{}
	var toBuild []Benchmark
	for _, b := range bs {
		if sh, ok := reusable[b.Name()]; ok {
			if err := st.Adopt(sh); err == nil {
				stats.Reused = append(stats.Reused, b.Name())
				continue
			}
			// A vanished or renamed shard file counts as a changed
			// benchmark: fall through to re-characterization.
		}
		toBuild = append(toBuild, b)
	}

	built := make([]bool, len(toBuild))
	pipeErr := phasePipelineCtx(ctx, toBuild, cfg, what, func(m trace.Source, prof *micachar.Profiler, i int) error {
		res, err := characterize(m, prof)
		if err != nil {
			return err
		}
		insts := make([]uint64, len(res.Intervals))
		for ii, iv := range res.Intervals {
			insts[ii] = iv.Insts
		}
		if err := st.WriteShard(toBuild[i].Name(), insts, res.Vectors); err != nil {
			return err
		}
		built[i] = true
		return nil
	})

	// Split the non-built benchmarks into failed (the pool attributed
	// an error to them) and skipped (never dispatched — cancellation),
	// and record what actually got (re)characterized.
	failed := failedItems(pipeErr)
	for i, b := range toBuild {
		switch {
		case built[i]:
			stats.Characterized = append(stats.Characterized, b.Name())
		case failed[i]:
			stats.Failed = append(stats.Failed, b.Name())
		default:
			stats.Skipped = append(stats.Skipped, b.Name())
		}
	}

	// Commit every staged shard — reused or built — in bs order, so
	// partial work survives a failure or cancellation and an
	// incremental rerun re-characterizes exactly the rest. With nothing
	// staged there is nothing worth committing, and skipping the commit
	// keeps the invariant that a (wholly) failed build never destroys a
	// previously committed store.
	var order []string
	for _, b := range bs {
		if st.Staged(b.Name()) {
			order = append(order, b.Name())
		}
	}
	if len(order) == 0 {
		return st, stats, pipeErr
	}
	warnings, commitErr := st.Commit(order)
	stats.CommitWarnings = warnings
	if commitErr != nil {
		return st, stats, errors.Join(pipeErr, commitErr)
	}
	return st, stats, pipeErr
}

// AnalyzePhasesJointStore is AnalyzePhasesJoint through the
// interval-vector store: every benchmark is characterized into (or
// reused from) the store in opt.Dir, then the registry-wide joint
// vocabulary is clustered by streaming rows shard-by-shard —
// bit-identical to the in-memory path on data that round-trips the
// shard encoding, with peak memory O(workers x shard + k·d) instead
// of O(benchmarks x intervals x 47). The returned result's Vectors
// matrix is nil by design; everything else (assignment, K,
// representatives, occupancy, provenance) is fully populated.
func AnalyzePhasesJointStore(bs []Benchmark, cfg PhasePipelineConfig, opt StoreOptions) (*PhaseJointResult, *StoreBuildStats, error) {
	return AnalyzePhasesJointStoreCtx(context.Background(), bs, cfg, opt)
}

// AnalyzePhasesJointStoreCtx is AnalyzePhasesJointStore with
// cancellation and fault isolation. The characterization half has
// CharacterizeToStoreCtx's resumable semantics — whatever was staged
// before a failure or cancellation is committed for the next
// incremental run — but like the in-memory joint path, any
// characterization failure is fatal to the joint RESULT: a vocabulary
// silently built over a shrunken set would not be the requested one.
// The returned stats (non-nil whenever the build started) say exactly
// which benchmarks were characterized, reused, failed or skipped. The
// internally opened store is always closed before returning.
func AnalyzePhasesJointStoreCtx(ctx context.Context, bs []Benchmark, cfg PhasePipelineConfig, opt StoreOptions) (*PhaseJointResult, *StoreBuildStats, error) {
	st, stats, err := CharacterizeToStoreCtx(ctx, bs, cfg, opt)
	if st != nil {
		defer st.Close()
	}
	if err != nil {
		return nil, stats, err
	}
	var warm *phases.JointWarmState
	if opt.WarmStart {
		warm = loadWarmState(st)
	}
	j, warmUsed, err := phases.AnalyzeJointStoreWarmCtx(ctx, st, cfg.Phase, cfg.Workers, warm)
	if stats != nil {
		stats.WarmStarted = warmUsed
	}
	captureCacheStats(st, stats)
	if err != nil {
		return nil, stats, err
	}
	saveWarmState(st, j)
	return j, stats, nil
}

// AnalyzePhasesJointOpenStoreCtx clusters the joint cross-benchmark
// vocabulary of an ALREADY-OPEN committed store, characterizing
// nothing — the serving-side entry point: mica-serve opens its store
// once at startup and answers phase and similarity queries from it.
// Warm-start state is read from and saved back to the store's aux
// files exactly as the build pipelines do (best-effort both ways).
// The caller keeps ownership of st; warmUsed reports whether a prior
// run's state actually seeded the clustering.
func AnalyzePhasesJointOpenStoreCtx(ctx context.Context, st *IVStore, cfg PhaseConfig, workers int, warmStart bool) (j *PhaseJointResult, warmUsed bool, err error) {
	cfg = cfg.WithDefaults()
	var warm *phases.JointWarmState
	if warmStart {
		warm = loadWarmState(st)
	}
	j, warmUsed, err = phases.AnalyzeJointStoreWarmCtx(ctx, st, cfg, workers, warm)
	if err != nil {
		return nil, warmUsed, err
	}
	saveWarmState(st, j)
	return j, warmUsed, nil
}

// warmAuxName is the auxiliary file the joint store pipelines persist
// their warm-start state under, next to the store's shards.
const warmAuxName = "warm.aux.json"

// loadWarmState reads the persisted warm-start state next to a store.
// Absence or an unreadable file is a silent fresh start — warm seeding
// is an optimization, never a correctness dependency.
func loadWarmState(st *IVStore) *phases.JointWarmState {
	data, err := st.ReadAux(warmAuxName)
	if err != nil {
		return nil
	}
	var ws phases.JointWarmState
	if json.Unmarshal(data, &ws) != nil {
		return nil
	}
	return &ws
}

// saveWarmState persists a joint result's warm state next to the
// store, best-effort: a failed write costs the next run its warm
// start, nothing else.
func saveWarmState(st *IVStore, j *PhaseJointResult) {
	ws := j.WarmState(st.ConfigHash())
	if ws == nil {
		return
	}
	if data, err := json.Marshal(ws); err == nil {
		_ = st.WriteAux(warmAuxName, data)
	}
}

// captureCacheStats snapshots the store's decoded-shard cache
// accounting into the build stats; the store pipelines call it just
// before closing the store they opened internally.
func captureCacheStats(st *IVStore, stats *StoreBuildStats) {
	if st != nil && stats != nil {
		stats.Cache = st.CacheStats()
	}
}

// OpenIVStore opens an existing committed interval-vector store —
// the read-only entry point for tools that analyze a store built by
// an earlier run (mica-phases -store without re-characterizing, or a
// direct phases.AnalyzeJointStore call).
func OpenIVStore(dir string) (*IVStore, error) { return ivstore.Open(dir) }

// IVStoreFsckReport is the result of an interval-vector store
// integrity check or repair. See ivstore.FsckReport.
type IVStoreFsckReport = ivstore.FsckReport

// VerifyIVStore checks the integrity of the store at dir without
// modifying it: the manifest parses, every manifest shard is present
// with an intact CRC, and no crash artifacts (orphaned tmp files,
// shards absent from the manifest) remain. The report's Clean method
// says whether the store needs Repair.
func VerifyIVStore(dir string) (*IVStoreFsckReport, error) { return ivstore.Verify(dir) }

// RepairIVStore restores the store at dir to a consistent state:
// corrupt or truncated shards are quarantined (renamed aside and
// dropped from the manifest) and crash artifacts are removed. The
// store stays usable; an incremental rerun re-characterizes exactly
// the quarantined benchmarks.
func RepairIVStore(dir string) (*IVStoreFsckReport, error) { return ivstore.Repair(dir) }
